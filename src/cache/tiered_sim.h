/**
 * @file
 * Trace replay through a byte-budgeted embedding cache. TieredCacheSim is
 * the measurement half of the Bandana-style methodology the paper points
 * academics at: feed a recorded workload::AccessTrace through a DRAM-tier
 * cache and read off per-table hit/miss/eviction counts, instead of
 * trusting the closed-form skew curve in dc/paging. The resulting
 * CacheSimResult feeds CachedLookupModel, which converts hit rates into
 * the per-lookup cost coefficients the serving simulation consumes.
 */
#pragma once

#include <memory>
#include <vector>

#include "cache/admission.h"
#include "cache/embedding_cache.h"
#include "model/model_spec.h"
#include "workload/access_trace.h"

namespace dri::cache {

/** Replay configuration. */
struct TieredCacheConfig
{
    Policy policy = Policy::Lru;
    /** DRAM-tier byte budget. */
    std::int64_t capacity_bytes = 0;
    /**
     * Leading fraction of the trace replayed to warm the cache before
     * counters engage, removing compulsory-miss bias from the reported
     * rates (0 = cold start; 0.5 is typical for stationarity studies).
     */
    double warmup_fraction = 0.0;
    /** Admission filter wrapped around the eviction policy. */
    Admission admission = Admission::None;
    /** TinyLFU doorkeeper parameters (used when admission == TinyLfu). */
    TinyLfuConfig tinylfu;
    /** Window + doorkeeper parameters (used when admission == WTinyLfu). */
    WTinyLfuConfig wtinylfu;
};

/** Post-warmup replay statistics. */
struct CacheSimResult
{
    CacheStats total;
    /** Indexed by table id; tables never accessed stay all-zero. */
    std::vector<CacheStats> per_table;

    double
    hitRate(int table) const
    {
        if (table < 0 || static_cast<std::size_t>(table) >= per_table.size())
            return 0.0;
        return per_table[static_cast<std::size_t>(table)].hitRate();
    }

    double overallHitRate() const { return total.hitRate(); }
};

/**
 * Replays access traces against one cache instance. The cache's resident
 * set persists across replay() calls (counters reset each call), so a
 * trace can be replayed twice for an explicit warm-start measurement.
 */
class TieredCacheSim
{
  public:
    TieredCacheSim(const model::ModelSpec &spec, TieredCacheConfig config);

    /** Replay the trace; returns post-warmup per-table statistics. */
    CacheSimResult replay(const workload::AccessTrace &trace);

    const EmbeddingCache &cache() const { return *cache_; }

  private:
    TieredCacheConfig config_;
    /** Stored row bytes per table id, copied from the spec. */
    std::vector<std::int64_t> row_bytes_;
    std::unique_ptr<EmbeddingCache> cache_;
};

/**
 * One-shot replay: build a cold cache of the given policy and byte budget,
 * replay the trace, return the post-warmup statistics. The single entry
 * point the bench, example, and property tests share, so their hit-rate
 * curves stay cross-comparable by construction.
 */
CacheSimResult replayTrace(const model::ModelSpec &spec,
                           const workload::AccessTrace &trace,
                           Policy policy, std::int64_t capacity_bytes,
                           double warmup_fraction = 0.5,
                           Admission admission = Admission::None);

} // namespace dri::cache
