/**
 * @file
 * Hit-rate → cost conversion. A CachedLookupModel owns one number per
 * table — the DRAM-tier hit rate, measured by TieredCacheSim or supplied
 * analytically — plus the tier costs, and blends them into the expected
 * per-lookup nanoseconds that dc/paging and core/serving consume:
 *
 *   lookup_ns(t) = h(t) * hit_ns + (1 - h(t)) * miss_ns
 *
 * The analytic constructor makes the closed-form skew curve of dc::hitRate
 * a degenerate case of the same pipeline, which is exactly what the cache
 * benches exploit to validate the simulator against the formula.
 */
#pragma once

#include <vector>

#include "cache/tiered_sim.h"

namespace dri::cache {

/** Cost of one row gather by the tier that satisfies it. */
struct TierCosts
{
    /** Row resident in the cache tier (DRAM gather). */
    double hit_ns = 25.0;
    /** Row fetched from the backing tier (NVMe page-in or remote shard). */
    double miss_ns = 90000.0;
};

/** Per-table blended lookup-cost model. */
class CachedLookupModel
{
  public:
    CachedLookupModel() = default;

    /** Build from measured replay statistics. */
    CachedLookupModel(const CacheSimResult &sim, TierCosts costs);

    /**
     * Degenerate analytic model: every one of `num_tables` tables gets the
     * same externally computed hit rate (e.g. dc::hitRate(f, skew)).
     */
    static CachedLookupModel fromHitRate(std::size_t num_tables,
                                         double hit_rate, TierCosts costs);

    /**
     * A copy with every table's hit rate scaled by `factor` (clamped to
     * [0, 1]); tables without data stay without data. The fleet
     * simulator uses this to model cold caches on freshly provisioned
     * replicas: during the post-reconfiguration warmup window a
     * scaled-up shard serves at a fraction of its steady-state hit rate.
     */
    CachedLookupModel scaled(double factor) const;

    /** Whether the model has data (any accesses) for this table. */
    bool hasTable(int table) const;

    /** Measured hit rate for the table; 0 when absent. */
    double hitRate(int table) const;

    /** Access-weighted overall hit rate. */
    double overallHitRate() const { return overall_; }

    const TierCosts &costs() const { return costs_; }

    /**
     * Blended per-lookup cost using the model's own hit cost. A table the
     * model has no data for (hasTable(table) == false) is priced
     * pessimistically at the full miss cost — callers wanting a different
     * fallback (core/serving falls back to its flat coefficient) must
     * check hasTable() first.
     */
    double lookupNs(int table) const;

    /**
     * Blend with a caller-calibrated hit cost — core/serving passes its
     * platform-specific per-table DRAM gather cost here so only the miss
     * path comes from the model.
     */
    double lookupNs(int table, double hit_ns) const;

  private:
    TierCosts costs_;
    /** Hit rate per table id; negative = no data. */
    std::vector<double> rates_;
    double overall_ = 0.0;
};

} // namespace dri::cache
