#include "cache/embedding_cache.h"

#include <algorithm>
#include <cassert>
#include <list>
#include <map>
#include <unordered_map>
#include <utility>

#include "stats/hash.h"

namespace dri::cache {

namespace {

/** Cache key: one row of one table. */
struct Key
{
    int table = 0;
    std::int64_t row = 0;

    bool
    operator==(const Key &other) const
    {
        return table == other.table && row == other.row;
    }
};

struct KeyHash
{
    std::size_t
    operator()(const Key &k) const
    {
        // splitmix64 finalizer over the packed (table, row) pair.
        return static_cast<std::size_t>(stats::mix64(
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.table))
             << 48) ^
            static_cast<std::uint64_t>(k.row)));
    }
};

/** Shared budget/stats plumbing. */
class CacheBase : public EmbeddingCache
{
  public:
    CacheBase(Policy policy, std::int64_t capacity_bytes)
        : policy_(policy), capacity_(capacity_bytes > 0 ? capacity_bytes : 0)
    {
    }

    std::int64_t capacityBytes() const override { return capacity_; }
    std::int64_t usedBytes() const override { return used_; }
    const CacheStats &stats() const override { return stats_; }
    void resetStats() override { stats_ = CacheStats{}; }
    Policy policy() const override { return policy_; }

    void
    setCapacityBytes(std::int64_t capacity_bytes) override
    {
        // Lazy shrink: every eviction loop reads capacity_ live, so the
        // resident set trims itself on the next insert.
        capacity_ = capacity_bytes > 0 ? capacity_bytes : 0;
    }

    void
    setEvictionHook(
        std::function<void(int, std::int64_t, std::int64_t)> hook) override
    {
        eviction_hook_ = std::move(hook);
    }

  protected:
    void
    evicted(const Key &key, std::int64_t bytes)
    {
        used_ -= bytes;
        ++stats_.evictions;
        if (eviction_hook_)
            eviction_hook_(key.table, key.row, bytes);
    }

    Policy policy_;
    std::int64_t capacity_ = 0;
    std::int64_t used_ = 0;
    CacheStats stats_;
    std::function<void(int, std::int64_t, std::int64_t)> eviction_hook_;
};

// ---------------------------------------------------------------------------
// LRU: one recency list, evict the tail.
// ---------------------------------------------------------------------------
class LruCache : public CacheBase
{
  public:
    using CacheBase::CacheBase;

    bool
    access(int table, std::int64_t row, std::int64_t row_bytes) override
    {
        ++stats_.accesses;
        const Key key{table, row};
        auto it = index_.find(key);
        if (it != index_.end()) {
            ++stats_.hits;
            lru_.splice(lru_.begin(), lru_, it->second);
            return true;
        }
        ++stats_.misses;
        if (row_bytes > capacity_)
            return false; // unadmittable: larger than the whole budget
        while (used_ + row_bytes > capacity_) {
            const Entry &victim = lru_.back();
            index_.erase(victim.key);
            evicted(victim.key, victim.bytes);
            lru_.pop_back();
        }
        lru_.push_front(Entry{key, row_bytes});
        index_[key] = lru_.begin();
        used_ += row_bytes;
        return false;
    }

    bool
    contains(int table, std::int64_t row) const override
    {
        return index_.count(Key{table, row}) > 0;
    }

    std::size_t residentRows() const override { return index_.size(); }

  private:
    struct Entry
    {
        Key key;
        std::int64_t bytes;
    };
    std::list<Entry> lru_; //!< front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
};

// ---------------------------------------------------------------------------
// LFU: frequency buckets; evict the least-recently-used entry of the
// least-frequent bucket (classic O(1) LFU with an ordered bucket map).
// ---------------------------------------------------------------------------
class LfuCache : public CacheBase
{
  public:
    using CacheBase::CacheBase;

    bool
    access(int table, std::int64_t row, std::int64_t row_bytes) override
    {
        ++stats_.accesses;
        const Key key{table, row};
        auto it = index_.find(key);
        if (it != index_.end()) {
            ++stats_.hits;
            bump(it->second, key);
            return true;
        }
        ++stats_.misses;
        if (row_bytes > capacity_)
            return false;
        while (used_ + row_bytes > capacity_)
            evictColdest();
        Info info;
        info.bytes = row_bytes;
        info.freq = 1;
        auto &bucket = buckets_[1];
        bucket.push_back(key);
        info.pos = std::prev(bucket.end());
        index_[key] = info;
        used_ += row_bytes;
        return false;
    }

    bool
    contains(int table, std::int64_t row) const override
    {
        return index_.count(Key{table, row}) > 0;
    }

    std::size_t residentRows() const override { return index_.size(); }

  private:
    struct Info
    {
        std::int64_t bytes = 0;
        std::int64_t freq = 0;
        std::list<Key>::iterator pos;
    };

    void
    bump(Info &info, const Key &key)
    {
        auto bucket_it = buckets_.find(info.freq);
        bucket_it->second.erase(info.pos);
        if (bucket_it->second.empty())
            buckets_.erase(bucket_it);
        ++info.freq;
        auto &next = buckets_[info.freq];
        next.push_back(key);
        info.pos = std::prev(next.end());
    }

    void
    evictColdest()
    {
        assert(!buckets_.empty());
        auto bucket_it = buckets_.begin(); // least-frequent bucket
        const Key victim = bucket_it->second.front();
        bucket_it->second.pop_front(); // oldest within the bucket
        if (bucket_it->second.empty())
            buckets_.erase(bucket_it);
        auto idx = index_.find(victim);
        const std::int64_t bytes = idx->second.bytes;
        index_.erase(idx);
        evicted(victim, bytes);
    }

    /** freq -> keys at that freq, oldest first. */
    std::map<std::int64_t, std::list<Key>> buckets_;
    std::unordered_map<Key, Info, KeyHash> index_;
};

// ---------------------------------------------------------------------------
// TwoQueue: scan-resistant 2Q. New rows enter the A1in FIFO (targeted at
// 1/4 of the byte budget); a hit there — or a miss whose key is remembered
// in the A1out ghost list — promotes to the protected Am LRU. One-touch
// scan rows flow through A1in and the ghost list without ever displacing
// the Am hot set.
// ---------------------------------------------------------------------------
class TwoQueueCache : public CacheBase
{
  public:
    using CacheBase::CacheBase;

    bool
    access(int table, std::int64_t row, std::int64_t row_bytes) override
    {
        ++stats_.accesses;
        const Key key{table, row};
        auto it = index_.find(key);
        if (it != index_.end()) {
            ++stats_.hits;
            if (it->second.where == Where::In) {
                // Re-referenced while on probation: promote to Am.
                Entry entry = *it->second.pos;
                in_bytes_ -= entry.bytes;
                a1in_.erase(it->second.pos);
                am_.push_front(entry);
                it->second.where = Where::Main;
                it->second.pos = am_.begin();
            } else {
                am_.splice(am_.begin(), am_, it->second.pos);
            }
            return true;
        }
        ++stats_.misses;
        if (row_bytes > capacity_)
            return false;
        const bool remembered = eraseGhost(key);
        if (remembered) {
            am_.push_front(Entry{key, row_bytes});
            index_[key] = Info{Where::Main, am_.begin()};
        } else {
            a1in_.push_back(Entry{key, row_bytes});
            index_[key] = Info{Where::In, std::prev(a1in_.end())};
            in_bytes_ += row_bytes;
        }
        used_ += row_bytes;
        while (used_ > capacity_)
            evictOne();
        return false;
    }

    bool
    contains(int table, std::int64_t row) const override
    {
        return index_.count(Key{table, row}) > 0;
    }

    std::size_t residentRows() const override { return index_.size(); }

  private:
    enum class Where
    {
        In,
        Main,
    };

    struct Entry
    {
        Key key;
        std::int64_t bytes;
    };

    struct Info
    {
        Where where;
        std::list<Entry>::iterator pos;
    };

    std::int64_t inTargetBytes() const { return capacity_ / 4; }
    std::int64_t ghostBudgetBytes() const { return capacity_ / 2; }

    void
    evictOne()
    {
        if (!a1in_.empty() && (in_bytes_ > inTargetBytes() || am_.empty())) {
            // Probation victim: drop the payload, remember the identity.
            const Entry victim = a1in_.front();
            a1in_.pop_front();
            in_bytes_ -= victim.bytes;
            index_.erase(victim.key);
            evicted(victim.key, victim.bytes);
            rememberGhost(victim);
        } else {
            assert(!am_.empty());
            const Entry victim = am_.back();
            am_.pop_back();
            index_.erase(victim.key);
            evicted(victim.key, victim.bytes);
        }
    }

    void
    rememberGhost(const Entry &entry)
    {
        ghost_.push_back(entry);
        ghost_index_[entry.key] = std::prev(ghost_.end());
        ghost_bytes_ += entry.bytes;
        while (ghost_bytes_ > ghostBudgetBytes() && !ghost_.empty()) {
            const Entry &old = ghost_.front();
            ghost_bytes_ -= old.bytes;
            ghost_index_.erase(old.key);
            ghost_.pop_front();
        }
    }

    bool
    eraseGhost(const Key &key)
    {
        auto it = ghost_index_.find(key);
        if (it == ghost_index_.end())
            return false;
        ghost_bytes_ -= it->second->bytes;
        ghost_.erase(it->second);
        ghost_index_.erase(it);
        return true;
    }

    std::list<Entry> a1in_; //!< probation FIFO, front = oldest
    std::list<Entry> am_;   //!< protected LRU, front = most recent
    std::int64_t in_bytes_ = 0;

    /** A1out: identities of recent probation victims (no payload bytes). */
    std::list<Entry> ghost_;
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash>
        ghost_index_;
    std::int64_t ghost_bytes_ = 0;

    std::unordered_map<Key, Info, KeyHash> index_;

  public:
    std::int64_t ghostBytes() const override { return ghost_bytes_; }
};

// ---------------------------------------------------------------------------
// Arc: adaptive replacement, generalized to byte budgets. Resident rows
// live in T1 (seen once since admission) or T2 (seen at least twice);
// evicted identities are remembered in the ghost lists B1 (evicted from
// T1) and B2 (evicted from T2). A miss that hits B1 means recency was
// evicting rows it should have kept, so the adaptive target p (T1's byte
// share of the budget) grows; a B2 hit shrinks it. The REPLACE rule then
// evicts from whichever resident list exceeds its share, so the cache
// continuously re-balances between LRU-like and LFU-like behavior.
// Invariants maintained per access: t1 + t2 <= capacity,
// t1 + b1 <= capacity (+ one row transiently), total history
// t1 + t2 + b1 + b2 <= 2x capacity, 0 <= p <= capacity.
// ---------------------------------------------------------------------------
class ArcCache : public CacheBase
{
  public:
    using CacheBase::CacheBase;

    bool
    access(int table, std::int64_t row, std::int64_t row_bytes) override
    {
        ++stats_.accesses;
        const Key key{table, row};
        auto it = index_.find(key);
        if (it != index_.end()) {
            // Resident hit: any re-reference promotes to T2's MRU end.
            ++stats_.hits;
            Entry entry = *it->second.pos;
            if (it->second.where == Where::T1) {
                t1_.erase(it->second.pos);
                t1_bytes_ -= entry.bytes;
                t2_.push_front(entry);
                t2_bytes_ += entry.bytes;
                it->second.where = Where::T2;
                it->second.pos = t2_.begin();
            } else {
                t2_.splice(t2_.begin(), t2_, it->second.pos);
            }
            return true;
        }
        ++stats_.misses;
        if (row_bytes > capacity_)
            return false;

        auto ghost = ghost_index_.find(key);
        if (ghost != ghost_index_.end() &&
            ghost->second.where == Where::B1) {
            // B1 hit: recency was right about this row — grow T1's target
            // share, proportionally harder when B1 is the smaller list.
            const double ratio =
                b1_bytes_ > 0 ? std::max(1.0, static_cast<double>(b2_bytes_) /
                                                  static_cast<double>(b1_bytes_))
                              : 1.0;
            p_ = std::min<std::int64_t>(
                capacity_,
                p_ + static_cast<std::int64_t>(
                         ratio * static_cast<double>(row_bytes)));
            eraseGhost(ghost);
            makeRoom(row_bytes, /*from_b2=*/false);
            insertResident(key, row_bytes, Where::T2);
            return false;
        }
        if (ghost != ghost_index_.end()) {
            // B2 hit: frequency was right — shrink T1's target share.
            const double ratio =
                b2_bytes_ > 0 ? std::max(1.0, static_cast<double>(b1_bytes_) /
                                                  static_cast<double>(b2_bytes_))
                              : 1.0;
            p_ = std::max<std::int64_t>(
                0, p_ - static_cast<std::int64_t>(
                            ratio * static_cast<double>(row_bytes)));
            eraseGhost(ghost);
            makeRoom(row_bytes, /*from_b2=*/true);
            insertResident(key, row_bytes, Where::T2);
            return false;
        }

        // Cold miss: bound the L1 = T1 + B1 history at one capacity and
        // the total history at two capacities before admitting to T1.
        while (t1_bytes_ + b1_bytes_ + row_bytes > capacity_ && !b1_.empty())
            dropGhostLru(Where::B1);
        while (t1_bytes_ + t2_bytes_ + b1_bytes_ + b2_bytes_ + row_bytes >
                   2 * capacity_ &&
               !b2_.empty())
            dropGhostLru(Where::B2);
        makeRoom(row_bytes, /*from_b2=*/false);
        insertResident(key, row_bytes, Where::T1);
        return false;
    }

    bool
    contains(int table, std::int64_t row) const override
    {
        return index_.count(Key{table, row}) > 0;
    }

    std::size_t residentRows() const override { return index_.size(); }

    std::int64_t ghostBytes() const override
    {
        return b1_bytes_ + b2_bytes_;
    }

  private:
    enum class Where
    {
        T1,
        T2,
        B1,
        B2,
    };

    struct Entry
    {
        Key key;
        std::int64_t bytes;
    };

    struct Info
    {
        Where where;
        std::list<Entry>::iterator pos;
    };

    struct GhostInfo
    {
        Where where;
        std::list<Entry>::iterator pos;
    };

    void
    insertResident(const Key &key, std::int64_t bytes, Where where)
    {
        if (where == Where::T1) {
            t1_.push_front(Entry{key, bytes});
            t1_bytes_ += bytes;
            index_[key] = Info{Where::T1, t1_.begin()};
        } else {
            t2_.push_front(Entry{key, bytes});
            t2_bytes_ += bytes;
            index_[key] = Info{Where::T2, t2_.begin()};
        }
        used_ += bytes;
    }

    /** Evict until the new row fits; ARC's REPLACE rule picks the list. */
    void
    makeRoom(std::int64_t row_bytes, bool from_b2)
    {
        while (t1_bytes_ + t2_bytes_ + row_bytes > capacity_) {
            const bool prefer_t1 =
                !t1_.empty() &&
                (t1_bytes_ > p_ || (from_b2 && t1_bytes_ >= p_) ||
                 t2_.empty());
            evictResidentLru(prefer_t1 ? Where::T1 : Where::T2);
        }
    }

    void
    evictResidentLru(Where where)
    {
        auto &list = where == Where::T1 ? t1_ : t2_;
        auto &bytes = where == Where::T1 ? t1_bytes_ : t2_bytes_;
        assert(!list.empty());
        const Entry victim = list.back();
        list.pop_back();
        bytes -= victim.bytes;
        index_.erase(victim.key);
        evicted(victim.key, victim.bytes);
        rememberGhost(victim, where == Where::T1 ? Where::B1 : Where::B2);
    }

    void
    rememberGhost(const Entry &entry, Where where)
    {
        auto &list = where == Where::B1 ? b1_ : b2_;
        auto &bytes = where == Where::B1 ? b1_bytes_ : b2_bytes_;
        list.push_front(entry);
        bytes += entry.bytes;
        ghost_index_[entry.key] = GhostInfo{where, list.begin()};
        // Keep each ghost list within one capacity of identity bytes.
        while (b1_bytes_ > capacity_ && !b1_.empty())
            dropGhostLru(Where::B1);
        while (b2_bytes_ > capacity_ && !b2_.empty())
            dropGhostLru(Where::B2);
    }

    void
    dropGhostLru(Where where)
    {
        auto &list = where == Where::B1 ? b1_ : b2_;
        auto &bytes = where == Where::B1 ? b1_bytes_ : b2_bytes_;
        assert(!list.empty());
        const Entry &old = list.back();
        bytes -= old.bytes;
        ghost_index_.erase(old.key);
        list.pop_back();
    }

    void
    eraseGhost(
        std::unordered_map<Key, GhostInfo, KeyHash>::iterator ghost)
    {
        auto &list = ghost->second.where == Where::B1 ? b1_ : b2_;
        auto &bytes =
            ghost->second.where == Where::B1 ? b1_bytes_ : b2_bytes_;
        bytes -= ghost->second.pos->bytes;
        list.erase(ghost->second.pos);
        ghost_index_.erase(ghost);
    }

    std::list<Entry> t1_; //!< once-referenced residents, front = MRU
    std::list<Entry> t2_; //!< re-referenced residents, front = MRU
    std::list<Entry> b1_; //!< ghosts of T1 evictions, front = MRU
    std::list<Entry> b2_; //!< ghosts of T2 evictions, front = MRU
    std::int64_t t1_bytes_ = 0, t2_bytes_ = 0;
    std::int64_t b1_bytes_ = 0, b2_bytes_ = 0;
    /** Adaptive target for T1's byte share of the budget. */
    std::int64_t p_ = 0;

    std::unordered_map<Key, Info, KeyHash> index_;
    std::unordered_map<Key, GhostInfo, KeyHash> ghost_index_;
};

} // namespace

std::string
policyName(Policy policy)
{
    switch (policy) {
    case Policy::Lru:
        return "lru";
    case Policy::Lfu:
        return "lfu";
    case Policy::TwoQueue:
        return "2q";
    case Policy::Arc:
        return "arc";
    }
    return "unknown";
}

std::unique_ptr<EmbeddingCache>
makeCache(Policy policy, std::int64_t capacity_bytes)
{
    switch (policy) {
    case Policy::Lru:
        return std::make_unique<LruCache>(policy, capacity_bytes);
    case Policy::Lfu:
        return std::make_unique<LfuCache>(policy, capacity_bytes);
    case Policy::TwoQueue:
        return std::make_unique<TwoQueueCache>(policy, capacity_bytes);
    case Policy::Arc:
        return std::make_unique<ArcCache>(policy, capacity_bytes);
    }
    return nullptr;
}

} // namespace dri::cache
