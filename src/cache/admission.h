/**
 * @file
 * Composable cache-admission control (the TinyLFU direction): an
 * AdmissionFilter decides whether a missed row is worth caching at all,
 * independently of which eviction policy manages the resident set.
 *
 * Embedding traffic is heavy-tailed: a large fraction of rows are touched
 * once and never again, and admitting them evicts rows that will be
 * re-referenced. The TinyLFU answer is a frequency-sketch doorkeeper — a
 * tiny 4-bit count-min sketch over recent accesses; a missed row is
 * admitted under byte pressure only when the sketch has seen it before.
 * Periodic halving of every counter ages the sketch, so the frequency
 * estimate tracks the recent window rather than all of history, and the
 * 4-bit width keeps estimates bounded regardless of trace length.
 *
 * withAdmission() wraps ANY EmbeddingCache in a filter, so the policy x
 * admission design space is a full grid (the TieredCacheSim sweep).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/embedding_cache.h"

namespace dri::cache {

/** Admission-policy selector for sweeps and labels. */
enum class Admission
{
    None,
    TinyLfu,
    /** TinyLFU behind a small LRU admission window (W-TinyLFU). */
    WTinyLfu,
};

/** Human-readable admission name ("none", "tinylfu", "wtinylfu"). */
std::string admissionName(Admission admission);

/**
 * Interface of an admission policy. Implementations observe every access
 * (hits included — frequency must count them) and veto the admission of
 * cold rows when caching them would force evictions.
 */
class AdmissionFilter
{
  public:
    virtual ~AdmissionFilter() = default;

    /** Record one access to (table, row); called for hits and misses. */
    virtual void onAccess(int table, std::int64_t row) = 0;

    /**
     * Should a missed row be admitted? Consulted only when the cache is
     * under byte pressure (admitting would evict); when free space
     * remains, admission is unconditional — a filter can only ever
     * protect the resident set, not starve an empty cache.
     */
    virtual bool admit(int table, std::int64_t row,
                       std::int64_t row_bytes) = 0;

    virtual std::string name() const = 0;
};

/** TinyLFU doorkeeper parameters. */
struct TinyLfuConfig
{
    /**
     * Counters per sketch row (rounded up to a power of two). Sized like
     * a Bloom filter: a few counters per expected hot row keeps the
     * over-estimate from hash collisions small.
     */
    std::size_t counters = 1 << 16;
    /** Independent hash rows of the count-min sketch. */
    int depth = 4;
    /**
     * Accesses between halvings of every counter (the aging window).
     * 0 derives the classic TinyLFU sample size of ~16x the counter
     * count.
     */
    std::uint64_t sample_period = 0;
    /**
     * Minimum sketch estimate (post-increment) required to admit a row
     * under pressure. The default 2 means: seen at least twice within
     * the recent window — exactly the one-hit-wonder test.
     */
    int admit_threshold = 2;
};

/**
 * 4-bit count-min sketch doorkeeper. Counters saturate at 15; every
 * sample_period recorded accesses all counters halve, so estimates decay
 * toward the recent window (and are bounded by construction).
 */
class TinyLfuFilter : public AdmissionFilter
{
  public:
    explicit TinyLfuFilter(TinyLfuConfig config = {});

    void onAccess(int table, std::int64_t row) override;
    bool admit(int table, std::int64_t row,
               std::int64_t row_bytes) override;
    std::string name() const override { return "tinylfu"; }

    /** Current sketch estimate for (table, row); <= 15 by construction. */
    int estimate(int table, std::int64_t row) const;

    /** Halvings performed so far (one per elapsed sample period). */
    std::uint64_t agings() const { return agings_; }

    const TinyLfuConfig &config() const { return config_; }

  private:
    std::uint64_t hashFor(int table, std::int64_t row, int i) const;
    int counterAt(std::uint64_t h) const;

    TinyLfuConfig config_;
    std::size_t mask_ = 0;       //!< counters-per-row - 1 (power of two)
    std::uint64_t accesses_ = 0; //!< since the last halving
    std::uint64_t agings_ = 0;
    /** Packed 4-bit counters, two per byte, depth rows concatenated. */
    std::vector<std::uint8_t> sketch_;
};

/** Construct a TinyLFU doorkeeper. */
std::unique_ptr<TinyLfuFilter> makeTinyLfu(TinyLfuConfig config = {});

/**
 * W-TinyLFU parameters: a small LRU *window* carved out of the byte
 * budget, sitting in front of the doorkeeper. Every missed row is
 * admitted into the window unconditionally; only rows *evicted from the
 * window* face the TinyLFU admission test into the main cache. The
 * window is what fixes the doorkeeper's known failure mode on drifting
 * recency traffic: a fresh row used to pay one guaranteed extra miss (the
 * sketch had never seen it), while with the window it serves its reuse
 * immediately and reaches the doorkeeper only once its recent frequency
 * is on record.
 */
struct WTinyLfuConfig
{
    /**
     * Initial fraction of the total byte budget given to the admission
     * window. Classic W-TinyLFU uses ~1%; embedding traffic with a
     * drifting working set needs the window to hold a row until its
     * second access, so the default starts larger and the climber
     * adapts from there.
     */
    double window_fraction = 0.3;
    /**
     * Adaptive window sizing (the Caffeine refinement): every
     * climb_period accesses the composite compares its hit rate over the
     * last period against the period before, and moves the window
     * fraction by climb_step in the direction that last improved it
     * (reversing when it got worse). Recency-dominated traffic climbs
     * the window up toward LRU behaviour; frequency-dominated traffic
     * climbs it down toward the pure doorkeeper. 0 disables adaptation
     * (static window_fraction).
     */
    std::uint64_t climb_period = 2000;
    double climb_step = 0.05;
    double min_window_fraction = 0.02;
    double max_window_fraction = 0.8;
    /** Doorkeeper between the window and the main cache. */
    TinyLfuConfig tinylfu;
};

/**
 * Wrap a cache in a W-TinyLFU admission window: `inner` (already sized to
 * the *main* budget) receives only rows evicted from the window that pass
 * the doorkeeper; an LRU window of total_bytes - inner capacity absorbs
 * first-touch rows. The composite holds its *total* byte budget constant
 * while the adaptive climber shifts bytes between window and main.
 */
std::unique_ptr<EmbeddingCache>
withWindowedAdmission(std::unique_ptr<EmbeddingCache> inner,
                      std::int64_t window_bytes,
                      std::shared_ptr<AdmissionFilter> filter,
                      const WTinyLfuConfig &config = {});

/**
 * Wrap a cache in an admission filter. The wrapper delegates residency
 * and budget bookkeeping to the inner cache and keeps its own counters:
 * a vetoed miss counts as a miss (and an admission_reject) but inserts
 * nothing. Passing a null filter returns the inner cache unchanged.
 */
std::unique_ptr<EmbeddingCache>
withAdmission(std::unique_ptr<EmbeddingCache> inner,
              std::shared_ptr<AdmissionFilter> filter);

/**
 * makeCache + optional admission wrap in one step (grid sweeps). For
 * Admission::WTinyLfu the byte budget is split between the window and the
 * main cache per `wtinylfu.window_fraction`, so every admission variant
 * competes at the identical total budget.
 */
std::unique_ptr<EmbeddingCache>
makeCacheWithAdmission(Policy policy, std::int64_t capacity_bytes,
                       Admission admission,
                       const TinyLfuConfig &tinylfu = {},
                       const WTinyLfuConfig &wtinylfu = {});

} // namespace dri::cache
