#include "cache/admission.h"

#include <algorithm>
#include <utility>

#include "stats/hash.h"

namespace dri::cache {

namespace {

using stats::mix64;

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

/**
 * Admission decorator: owns the inner cache and a filter, keeps its own
 * hit/miss/reject counters (the inner cache's counters only see the
 * accesses that were allowed through, so the wrapper's are authoritative).
 */
class AdmittingCache : public EmbeddingCache
{
  public:
    AdmittingCache(std::unique_ptr<EmbeddingCache> inner,
                   std::shared_ptr<AdmissionFilter> filter)
        : inner_(std::move(inner)), filter_(std::move(filter))
    {
    }

    bool
    access(int table, std::int64_t row, std::int64_t row_bytes) override
    {
        ++stats_.accesses;
        filter_->onAccess(table, row);
        if (inner_->contains(table, row)) {
            ++stats_.hits;
            inner_->access(table, row, row_bytes); // recency/freq bump
            return true;
        }
        ++stats_.misses;
        const bool pressure =
            inner_->usedBytes() + row_bytes > inner_->capacityBytes();
        if (pressure && !filter_->admit(table, row, row_bytes)) {
            ++stats_.admission_rejects;
            return false; // bypass: the row is not worth an eviction
        }
        inner_->access(table, row, row_bytes);
        return false;
    }

    bool
    contains(int table, std::int64_t row) const override
    {
        return inner_->contains(table, row);
    }

    std::int64_t capacityBytes() const override
    {
        return inner_->capacityBytes();
    }
    void setCapacityBytes(std::int64_t capacity_bytes) override
    {
        inner_->setCapacityBytes(capacity_bytes);
    }
    std::int64_t usedBytes() const override { return inner_->usedBytes(); }
    std::size_t residentRows() const override
    {
        return inner_->residentRows();
    }
    std::int64_t ghostBytes() const override
    {
        return inner_->ghostBytes();
    }

    const CacheStats &
    stats() const override
    {
        // Evictions happen inside the inner cache; surface them through
        // the wrapper's otherwise-authoritative counters.
        stats_.evictions = inner_->stats().evictions;
        return stats_;
    }

    void
    resetStats() override
    {
        stats_ = CacheStats{};
        inner_->resetStats();
    }

    void
    setEvictionHook(std::function<void(int, std::int64_t, std::int64_t)>
                        hook) override
    {
        inner_->setEvictionHook(std::move(hook));
    }

    Policy policy() const override { return inner_->policy(); }

  private:
    std::unique_ptr<EmbeddingCache> inner_;
    std::shared_ptr<AdmissionFilter> filter_;
    mutable CacheStats stats_;
};

/**
 * W-TinyLFU decorator: a small LRU window absorbs every missed row; rows
 * the window evicts are candidates for the main cache and face the
 * doorkeeper only there (and only under byte pressure). The window is
 * where drifting-recency rows serve their reuse without waiting for the
 * sketch to have seen them twice. A hill climber re-splits the constant
 * total budget between window and main every climb_period accesses,
 * following the hit-rate gradient: recency-dominated traffic grows the
 * window toward LRU behaviour, frequency-dominated traffic shrinks it
 * toward the pure doorkeeper.
 */
class WindowedAdmittingCache : public EmbeddingCache
{
  public:
    WindowedAdmittingCache(std::unique_ptr<EmbeddingCache> main,
                           std::int64_t window_bytes,
                           std::shared_ptr<AdmissionFilter> filter,
                           const WTinyLfuConfig &config)
        : main_(std::move(main)),
          window_(makeCache(Policy::Lru, window_bytes)),
          filter_(std::move(filter)), config_(config),
          total_bytes_(main_->capacityBytes() + window_bytes)
    {
        fraction_ = total_bytes_ > 0
                        ? static_cast<double>(window_bytes) /
                              static_cast<double>(total_bytes_)
                        : 0.0;
        // Window evictions are promotion candidates, not cache exits —
        // unless the doorkeeper vetoes them under main-cache pressure.
        window_->setEvictionHook(
            [this](int table, std::int64_t row, std::int64_t row_bytes) {
                promote(table, row, row_bytes);
            });
        main_->setEvictionHook(
            [this](int table, std::int64_t row, std::int64_t row_bytes) {
                if (hook_)
                    hook_(table, row, row_bytes);
            });
    }

    bool
    access(int table, std::int64_t row, std::int64_t row_bytes) override
    {
        ++stats_.accesses;
        filter_->onAccess(table, row);
        const bool hit = serve(table, row, row_bytes);
        if (hit)
            ++stats_.hits;
        else
            ++stats_.misses;
        climb(hit);
        return hit;
    }

    bool
    contains(int table, std::int64_t row) const override
    {
        return main_->contains(table, row) || window_->contains(table, row);
    }

    std::int64_t capacityBytes() const override
    {
        return main_->capacityBytes() + window_->capacityBytes();
    }
    std::int64_t usedBytes() const override
    {
        return main_->usedBytes() + window_->usedBytes();
    }
    std::size_t residentRows() const override
    {
        return main_->residentRows() + window_->residentRows();
    }
    std::int64_t ghostBytes() const override
    {
        return main_->ghostBytes() + window_->ghostBytes();
    }

    const CacheStats &
    stats() const override
    {
        // A composite eviction is a row leaving the cache entirely: a
        // main-cache eviction, or a window eviction the doorkeeper vetoed.
        stats_.evictions = main_->stats().evictions + dropped_;
        return stats_;
    }

    void
    resetStats() override
    {
        stats_ = CacheStats{};
        dropped_ = 0;
        main_->resetStats();
        window_->resetStats();
    }

    void
    setEvictionHook(std::function<void(int, std::int64_t, std::int64_t)>
                        hook) override
    {
        hook_ = std::move(hook);
    }

    Policy policy() const override { return main_->policy(); }

    void
    setCapacityBytes(std::int64_t capacity_bytes) override
    {
        total_bytes_ = capacity_bytes > 0 ? capacity_bytes : 0;
        applySplit();
    }

    /** Current window share of the total budget (the climber's state). */
    double windowFraction() const { return fraction_; }

  private:
    bool
    serve(int table, std::int64_t row, std::int64_t row_bytes)
    {
        if (main_->contains(table, row)) {
            main_->access(table, row, row_bytes); // recency/freq bump
            return true;
        }
        if (window_->contains(table, row)) {
            window_->access(table, row, row_bytes); // LRU bump
            return true;
        }
        if (row_bytes > window_->capacityBytes()) {
            // A row the window cannot hold at all skips straight to the
            // main-cache admission test instead of silently bypassing.
            promote(table, row, row_bytes);
            return false;
        }
        window_->access(table, row, row_bytes);
        return false;
    }

    void
    promote(int table, std::int64_t row, std::int64_t row_bytes)
    {
        const bool pressure =
            main_->usedBytes() + row_bytes > main_->capacityBytes();
        if (pressure && !filter_->admit(table, row, row_bytes)) {
            ++stats_.admission_rejects;
            ++dropped_;
            if (hook_)
                hook_(table, row, row_bytes); // the row leaves the cache
            return;
        }
        main_->access(table, row, row_bytes);
    }

    /**
     * Hill-climb the window/main split on the period hit rate. Own
     * counters (not stats_): warmup-boundary resetStats() must not
     * perturb the climber's gradient estimate.
     */
    void
    climb(bool hit)
    {
        if (config_.climb_period == 0)
            return;
        period_accesses_ += 1;
        period_hits_ += hit ? 1 : 0;
        if (period_accesses_ < config_.climb_period)
            return;
        const double rate = static_cast<double>(period_hits_) /
                            static_cast<double>(period_accesses_);
        period_accesses_ = 0;
        period_hits_ = 0;
        if (last_rate_ >= 0.0 && rate < last_rate_)
            direction_ = -direction_; // the last move made things worse
        last_rate_ = rate;
        fraction_ = std::clamp(
            fraction_ + direction_ * config_.climb_step,
            std::min(config_.min_window_fraction,
                     config_.max_window_fraction),
            std::max(config_.min_window_fraction,
                     config_.max_window_fraction));
        applySplit();
    }

    void
    applySplit()
    {
        const auto window_bytes = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(
                   fraction_ * static_cast<double>(total_bytes_)));
        window_->setCapacityBytes(window_bytes);
        main_->setCapacityBytes(total_bytes_ - window_bytes);
    }

    std::unique_ptr<EmbeddingCache> main_;
    std::unique_ptr<EmbeddingCache> window_;
    std::shared_ptr<AdmissionFilter> filter_;
    WTinyLfuConfig config_;
    std::function<void(int, std::int64_t, std::int64_t)> hook_;
    mutable CacheStats stats_;
    std::int64_t dropped_ = 0; //!< window evictions vetoed by the filter

    // Climber state.
    std::int64_t total_bytes_ = 0;
    double fraction_ = 0.0;
    double direction_ = 1.0;
    double last_rate_ = -1.0;
    std::uint64_t period_accesses_ = 0;
    std::uint64_t period_hits_ = 0;
};

} // namespace

std::string
admissionName(Admission admission)
{
    switch (admission) {
    case Admission::None:
        return "none";
    case Admission::TinyLfu:
        return "tinylfu";
    case Admission::WTinyLfu:
        return "wtinylfu";
    }
    return "unknown";
}

TinyLfuFilter::TinyLfuFilter(TinyLfuConfig config) : config_(config)
{
    config_.depth = std::max(1, config_.depth);
    const std::size_t width =
        roundUpPow2(std::max<std::size_t>(16, config_.counters));
    config_.counters = width;
    mask_ = width - 1;
    if (config_.sample_period == 0)
        config_.sample_period = static_cast<std::uint64_t>(width) * 16;
    // Two 4-bit counters per byte, depth independent rows.
    sketch_.assign(static_cast<std::size_t>(config_.depth) * width / 2, 0);
}

std::uint64_t
TinyLfuFilter::hashFor(int table, std::int64_t row, int i) const
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(table))
         << 48) ^
        static_cast<std::uint64_t>(row);
    // Independent rows via a per-row odd multiplier over the mixed key.
    return mix64(key + 0x9e3779b97f4a7c15ULL *
                           static_cast<std::uint64_t>(i + 1));
}

int
TinyLfuFilter::counterAt(std::uint64_t h) const
{
    const std::size_t slot = static_cast<std::size_t>(h);
    const std::uint8_t byte = sketch_[slot / 2];
    return (slot & 1) ? (byte >> 4) & 0xf : byte & 0xf;
}

void
TinyLfuFilter::onAccess(int table, std::int64_t row)
{
    // Conservative increment: only the minimal counters grow, which keeps
    // the count-min over-estimate as tight as 4 bits allow.
    int min_est = 15;
    for (int i = 0; i < config_.depth; ++i) {
        const std::size_t base =
            static_cast<std::size_t>(i) * config_.counters;
        min_est = std::min(
            min_est, counterAt(base + (hashFor(table, row, i) & mask_)));
    }
    if (min_est < 15) {
        for (int i = 0; i < config_.depth; ++i) {
            const std::size_t base =
                static_cast<std::size_t>(i) * config_.counters;
            const std::size_t slot =
                base + (hashFor(table, row, i) & mask_);
            if (counterAt(slot) == min_est) {
                std::uint8_t &byte = sketch_[slot / 2];
                if (slot & 1)
                    byte = static_cast<std::uint8_t>(
                        (byte & 0x0f) |
                        static_cast<std::uint8_t>((min_est + 1) << 4));
                else
                    byte = static_cast<std::uint8_t>(
                        (byte & 0xf0) |
                        static_cast<std::uint8_t>(min_est + 1));
            }
        }
    }
    if (++accesses_ >= config_.sample_period) {
        // Aging: halve every counter so the sketch tracks the recent
        // window (and dead rows decay back toward zero).
        for (auto &byte : sketch_)
            byte = static_cast<std::uint8_t>(((byte >> 1) & 0x77));
        accesses_ = 0;
        ++agings_;
    }
}

int
TinyLfuFilter::estimate(int table, std::int64_t row) const
{
    int min_est = 15;
    for (int i = 0; i < config_.depth; ++i) {
        const std::size_t base =
            static_cast<std::size_t>(i) * config_.counters;
        min_est = std::min(
            min_est, counterAt(base + (hashFor(table, row, i) & mask_)));
    }
    return min_est;
}

bool
TinyLfuFilter::admit(int table, std::int64_t row, std::int64_t)
{
    return estimate(table, row) >= config_.admit_threshold;
}

std::unique_ptr<TinyLfuFilter>
makeTinyLfu(TinyLfuConfig config)
{
    return std::make_unique<TinyLfuFilter>(config);
}

std::unique_ptr<EmbeddingCache>
withAdmission(std::unique_ptr<EmbeddingCache> inner,
              std::shared_ptr<AdmissionFilter> filter)
{
    if (!filter)
        return inner;
    return std::make_unique<AdmittingCache>(std::move(inner),
                                            std::move(filter));
}

std::unique_ptr<EmbeddingCache>
withWindowedAdmission(std::unique_ptr<EmbeddingCache> inner,
                      std::int64_t window_bytes,
                      std::shared_ptr<AdmissionFilter> filter,
                      const WTinyLfuConfig &config)
{
    if (!filter)
        return inner;
    return std::make_unique<WindowedAdmittingCache>(
        std::move(inner), window_bytes, std::move(filter), config);
}

std::unique_ptr<EmbeddingCache>
makeCacheWithAdmission(Policy policy, std::int64_t capacity_bytes,
                       Admission admission, const TinyLfuConfig &tinylfu,
                       const WTinyLfuConfig &wtinylfu)
{
    if (admission == Admission::WTinyLfu) {
        // Split the budget so every admission variant competes at the
        // identical total byte budget.
        const double f = std::clamp(wtinylfu.window_fraction, 0.0, 0.9);
        const auto window_bytes = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(
                   f * static_cast<double>(capacity_bytes)));
        auto main = makeCache(policy, capacity_bytes - window_bytes);
        return withWindowedAdmission(std::move(main), window_bytes,
                                     makeTinyLfu(wtinylfu.tinylfu),
                                     wtinylfu);
    }
    auto cache = makeCache(policy, capacity_bytes);
    if (admission == Admission::TinyLfu)
        return withAdmission(std::move(cache), makeTinyLfu(tinylfu));
    return cache;
}

} // namespace dri::cache
