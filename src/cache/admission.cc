#include "cache/admission.h"

#include <algorithm>
#include <utility>

#include "stats/hash.h"

namespace dri::cache {

namespace {

using stats::mix64;

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

/**
 * Admission decorator: owns the inner cache and a filter, keeps its own
 * hit/miss/reject counters (the inner cache's counters only see the
 * accesses that were allowed through, so the wrapper's are authoritative).
 */
class AdmittingCache : public EmbeddingCache
{
  public:
    AdmittingCache(std::unique_ptr<EmbeddingCache> inner,
                   std::shared_ptr<AdmissionFilter> filter)
        : inner_(std::move(inner)), filter_(std::move(filter))
    {
    }

    bool
    access(int table, std::int64_t row, std::int64_t row_bytes) override
    {
        ++stats_.accesses;
        filter_->onAccess(table, row);
        if (inner_->contains(table, row)) {
            ++stats_.hits;
            inner_->access(table, row, row_bytes); // recency/freq bump
            return true;
        }
        ++stats_.misses;
        const bool pressure =
            inner_->usedBytes() + row_bytes > inner_->capacityBytes();
        if (pressure && !filter_->admit(table, row, row_bytes)) {
            ++stats_.admission_rejects;
            return false; // bypass: the row is not worth an eviction
        }
        inner_->access(table, row, row_bytes);
        return false;
    }

    bool
    contains(int table, std::int64_t row) const override
    {
        return inner_->contains(table, row);
    }

    std::int64_t capacityBytes() const override
    {
        return inner_->capacityBytes();
    }
    std::int64_t usedBytes() const override { return inner_->usedBytes(); }
    std::size_t residentRows() const override
    {
        return inner_->residentRows();
    }
    std::int64_t ghostBytes() const override
    {
        return inner_->ghostBytes();
    }

    const CacheStats &
    stats() const override
    {
        // Evictions happen inside the inner cache; surface them through
        // the wrapper's otherwise-authoritative counters.
        stats_.evictions = inner_->stats().evictions;
        return stats_;
    }

    void
    resetStats() override
    {
        stats_ = CacheStats{};
        inner_->resetStats();
    }

    void
    setEvictionHook(std::function<void(int, std::int64_t, std::int64_t)>
                        hook) override
    {
        inner_->setEvictionHook(std::move(hook));
    }

    Policy policy() const override { return inner_->policy(); }

  private:
    std::unique_ptr<EmbeddingCache> inner_;
    std::shared_ptr<AdmissionFilter> filter_;
    mutable CacheStats stats_;
};

} // namespace

std::string
admissionName(Admission admission)
{
    switch (admission) {
    case Admission::None:
        return "none";
    case Admission::TinyLfu:
        return "tinylfu";
    }
    return "unknown";
}

TinyLfuFilter::TinyLfuFilter(TinyLfuConfig config) : config_(config)
{
    config_.depth = std::max(1, config_.depth);
    const std::size_t width =
        roundUpPow2(std::max<std::size_t>(16, config_.counters));
    config_.counters = width;
    mask_ = width - 1;
    if (config_.sample_period == 0)
        config_.sample_period = static_cast<std::uint64_t>(width) * 16;
    // Two 4-bit counters per byte, depth independent rows.
    sketch_.assign(static_cast<std::size_t>(config_.depth) * width / 2, 0);
}

std::uint64_t
TinyLfuFilter::hashFor(int table, std::int64_t row, int i) const
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(table))
         << 48) ^
        static_cast<std::uint64_t>(row);
    // Independent rows via a per-row odd multiplier over the mixed key.
    return mix64(key + 0x9e3779b97f4a7c15ULL *
                           static_cast<std::uint64_t>(i + 1));
}

int
TinyLfuFilter::counterAt(std::uint64_t h) const
{
    const std::size_t slot = static_cast<std::size_t>(h);
    const std::uint8_t byte = sketch_[slot / 2];
    return (slot & 1) ? (byte >> 4) & 0xf : byte & 0xf;
}

void
TinyLfuFilter::onAccess(int table, std::int64_t row)
{
    // Conservative increment: only the minimal counters grow, which keeps
    // the count-min over-estimate as tight as 4 bits allow.
    int min_est = 15;
    for (int i = 0; i < config_.depth; ++i) {
        const std::size_t base =
            static_cast<std::size_t>(i) * config_.counters;
        min_est = std::min(
            min_est, counterAt(base + (hashFor(table, row, i) & mask_)));
    }
    if (min_est < 15) {
        for (int i = 0; i < config_.depth; ++i) {
            const std::size_t base =
                static_cast<std::size_t>(i) * config_.counters;
            const std::size_t slot =
                base + (hashFor(table, row, i) & mask_);
            if (counterAt(slot) == min_est) {
                std::uint8_t &byte = sketch_[slot / 2];
                if (slot & 1)
                    byte = static_cast<std::uint8_t>(
                        (byte & 0x0f) |
                        static_cast<std::uint8_t>((min_est + 1) << 4));
                else
                    byte = static_cast<std::uint8_t>(
                        (byte & 0xf0) |
                        static_cast<std::uint8_t>(min_est + 1));
            }
        }
    }
    if (++accesses_ >= config_.sample_period) {
        // Aging: halve every counter so the sketch tracks the recent
        // window (and dead rows decay back toward zero).
        for (auto &byte : sketch_)
            byte = static_cast<std::uint8_t>(((byte >> 1) & 0x77));
        accesses_ = 0;
        ++agings_;
    }
}

int
TinyLfuFilter::estimate(int table, std::int64_t row) const
{
    int min_est = 15;
    for (int i = 0; i < config_.depth; ++i) {
        const std::size_t base =
            static_cast<std::size_t>(i) * config_.counters;
        min_est = std::min(
            min_est, counterAt(base + (hashFor(table, row, i) & mask_)));
    }
    return min_est;
}

bool
TinyLfuFilter::admit(int table, std::int64_t row, std::int64_t)
{
    return estimate(table, row) >= config_.admit_threshold;
}

std::unique_ptr<TinyLfuFilter>
makeTinyLfu(TinyLfuConfig config)
{
    return std::make_unique<TinyLfuFilter>(config);
}

std::unique_ptr<EmbeddingCache>
withAdmission(std::unique_ptr<EmbeddingCache> inner,
              std::shared_ptr<AdmissionFilter> filter)
{
    if (!filter)
        return inner;
    return std::make_unique<AdmittingCache>(std::move(inner),
                                            std::move(filter));
}

std::unique_ptr<EmbeddingCache>
makeCacheWithAdmission(Policy policy, std::int64_t capacity_bytes,
                       Admission admission, const TinyLfuConfig &tinylfu)
{
    auto cache = makeCache(policy, capacity_bytes);
    if (admission == Admission::TinyLfu)
        return withAdmission(std::move(cache), makeTinyLfu(tinylfu));
    return cache;
}

} // namespace dri::cache
