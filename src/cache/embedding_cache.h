/**
 * @file
 * Byte-budgeted embedding-row caches with pluggable eviction policies
 * (Section IX's trace-driven direction: "explorations [of] table placement
 * and frequency-based caching are also valuable directions enabled with
 * trace-based analyses" — the Bandana line of work).
 *
 * An EmbeddingCache models the DRAM tier of a paged or tiered deployment:
 * rows are admitted on miss and evicted under a byte budget according to
 * the configured policy. Three policies cover the design space the
 * literature argues over for embedding traffic:
 *
 *  - LRU: recency only; the classic baseline, vulnerable to scans.
 *  - LFU: frequency only; near-optimal for static Zipf popularity but slow
 *    to adapt when the hot set drifts.
 *  - TwoQueue: scan-resistant 2Q — new rows enter a small FIFO probation
 *    queue and must be re-referenced to reach the protected LRU main
 *    queue, so one-touch scans cannot flush the hot set.
 *  - Arc: adaptive replacement — two resident lists (T1 once-referenced,
 *    T2 re-referenced) plus two ghost lists (B1/B2) remembering recent
 *    evictions from each. A ghost hit shifts the adaptive target between
 *    recency and frequency, so ARC tracks whichever of LRU/LFU the live
 *    workload currently rewards without a tuning knob.
 *
 * Eviction can be composed with an AdmissionFilter (cache/admission.h):
 * the filter vetoes the admission of cold rows when the cache is under
 * byte pressure, protecting any policy's resident set from one-hit
 * wonders (the TinyLFU doorkeeper).
 *
 * Caches are purely functional simulators: they track row *identities* and
 * byte sizes, never payloads, so replaying billion-access traces is cheap.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace dri::cache {

/** Eviction policy selector. */
enum class Policy
{
    Lru,
    Lfu,
    TwoQueue,
    Arc,
};

/** Human-readable policy name ("lru", "lfu", "2q", "arc"). */
std::string policyName(Policy policy);

/** Hit/miss/eviction counters. */
struct CacheStats
{
    std::int64_t accesses = 0;
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    /**
     * Misses whose admission an AdmissionFilter vetoed (the row was not
     * cached). Zero for unwrapped caches.
     */
    std::int64_t admission_rejects = 0;

    double
    hitRate() const
    {
        return accesses > 0
                   ? static_cast<double>(hits) / static_cast<double>(accesses)
                   : 0.0;
    }

    void
    merge(const CacheStats &other)
    {
        accesses += other.accesses;
        hits += other.hits;
        misses += other.misses;
        evictions += other.evictions;
        admission_rejects += other.admission_rejects;
    }
};

/**
 * Interface of a byte-budgeted (table, row) cache. Implementations are
 * obtained from makeCache(); all enforce usedBytes() <= capacityBytes()
 * after every access.
 */
class EmbeddingCache
{
  public:
    virtual ~EmbeddingCache() = default;

    /**
     * Record one access to `row` of `table`, whose stored size is
     * `row_bytes`. Returns true on hit. On miss the row is admitted (and
     * colder rows evicted until the budget holds) unless it alone exceeds
     * the whole budget, in which case it bypasses the cache.
     */
    virtual bool access(int table, std::int64_t row,
                        std::int64_t row_bytes) = 0;

    /** Whether (table, row) is currently resident. */
    virtual bool contains(int table, std::int64_t row) const = 0;

    virtual std::int64_t capacityBytes() const = 0;
    virtual std::int64_t usedBytes() const = 0;
    virtual std::size_t residentRows() const = 0;

    /**
     * Adjust the byte budget in place. Shrinking is lazy: the resident
     * set is trimmed by the next access's eviction loop (which reads the
     * budget live), not eagerly — usedBytes() may exceed the new budget
     * until then. The W-TinyLFU adaptive window uses this to shift bytes
     * between its window and main caches without flushing either.
     */
    virtual void setCapacityBytes(std::int64_t capacity_bytes) = 0;

    virtual const CacheStats &stats() const = 0;
    /** Zero the counters; resident rows are untouched (warmup support). */
    virtual void resetStats() = 0;

    /**
     * Install a callback invoked on every eviction with (table, row,
     * row_bytes) — how TieredCacheSim attributes evictions per table.
     */
    virtual void
    setEvictionHook(std::function<void(int, std::int64_t, std::int64_t)>
                        hook) = 0;

    virtual Policy policy() const = 0;

    /**
     * Bytes of evicted-row *identities* remembered by the policy's ghost
     * list(s) — 2Q's A1out, ARC's B1 + B2. Zero for policies without
     * history. Ghost entries store no payload; the byte figure is the
     * stored size of the remembered rows, the unit the ghost budgets are
     * expressed in (2Q: <= capacity/2; ARC: <= 2x capacity).
     */
    virtual std::int64_t ghostBytes() const { return 0; }
};

/** Construct a cache with the given policy and byte budget. */
std::unique_ptr<EmbeddingCache> makeCache(Policy policy,
                                          std::int64_t capacity_bytes);

} // namespace dri::cache
