#include "cache/lookup_model.h"

#include <algorithm>

namespace dri::cache {

CachedLookupModel::CachedLookupModel(const CacheSimResult &sim,
                                     TierCosts costs)
    : costs_(costs), overall_(sim.overallHitRate())
{
    rates_.reserve(sim.per_table.size());
    for (const auto &ts : sim.per_table)
        rates_.push_back(ts.accesses > 0 ? ts.hitRate() : -1.0);
}

CachedLookupModel
CachedLookupModel::fromHitRate(std::size_t num_tables, double hit_rate,
                               TierCosts costs)
{
    CachedLookupModel model;
    model.costs_ = costs;
    const double h = std::clamp(hit_rate, 0.0, 1.0);
    model.rates_.assign(num_tables, h);
    model.overall_ = h;
    return model;
}

CachedLookupModel
CachedLookupModel::scaled(double factor) const
{
    const double f = std::clamp(factor, 0.0, 1.0);
    CachedLookupModel model = *this;
    for (auto &r : model.rates_)
        if (r >= 0.0)
            r *= f;
    model.overall_ *= f;
    return model;
}

bool
CachedLookupModel::hasTable(int table) const
{
    return table >= 0 && static_cast<std::size_t>(table) < rates_.size() &&
           rates_[static_cast<std::size_t>(table)] >= 0.0;
}

double
CachedLookupModel::hitRate(int table) const
{
    return hasTable(table) ? rates_[static_cast<std::size_t>(table)] : 0.0;
}

double
CachedLookupModel::lookupNs(int table) const
{
    return lookupNs(table, costs_.hit_ns);
}

double
CachedLookupModel::lookupNs(int table, double hit_ns) const
{
    const double h = hitRate(table);
    return h * hit_ns + (1.0 - h) * costs_.miss_ns;
}

} // namespace dri::cache
