#include "cache/tiered_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dri::cache {

TieredCacheSim::TieredCacheSim(const model::ModelSpec &spec,
                               TieredCacheConfig config)
    : config_(config)
{
    row_bytes_.reserve(spec.tables.size());
    for (const auto &t : spec.tables)
        row_bytes_.push_back(t.storedRowBytes());
    cache_ = makeCacheWithAdmission(config_.policy, config_.capacity_bytes,
                                    config_.admission, config_.tinylfu,
                                    config_.wtinylfu);
}

CacheSimResult
TieredCacheSim::replay(const workload::AccessTrace &trace)
{
    CacheSimResult result;
    result.per_table.resize(row_bytes_.size());

    // Attribute evictions to the table losing the row.
    std::vector<std::int64_t> evictions(row_bytes_.size(), 0);
    cache_->setEvictionHook(
        [&evictions](int table, std::int64_t, std::int64_t) {
            if (table >= 0 &&
                static_cast<std::size_t>(table) < evictions.size())
                ++evictions[static_cast<std::size_t>(table)];
        });

    const auto &records = trace.records();
    const double clamped_warmup =
        std::clamp(config_.warmup_fraction, 0.0, 1.0);
    const std::size_t warm = static_cast<std::size_t>(
        std::llround(clamped_warmup * static_cast<double>(records.size())));

    cache_->resetStats();
    for (std::size_t i = 0; i < records.size(); ++i) {
        const auto &rec = records[i];
        if (i == warm && i > 0) {
            // Warmup boundary: discard counters, keep the resident set.
            cache_->resetStats();
            std::fill(evictions.begin(), evictions.end(), 0);
        }
        if (rec.table_id < 0 ||
            static_cast<std::size_t>(rec.table_id) >= row_bytes_.size())
            continue; // trace rows for tables this model does not define
        const auto t = static_cast<std::size_t>(rec.table_id);
        const bool hit = cache_->access(rec.table_id, rec.row, row_bytes_[t]);
        if (i < warm)
            continue; // warm the resident set without counting
        auto &ts = result.per_table[t];
        ++ts.accesses;
        if (hit)
            ++ts.hits;
        else
            ++ts.misses;
    }
    cache_->setEvictionHook(nullptr);
    if (warm >= records.size()) {
        // The whole trace was warmup: the boundary reset never fired, so
        // discard the warmup-window evictions too — the post-warmup
        // window is empty and must report all-zero statistics.
        std::fill(evictions.begin(), evictions.end(), 0);
    }

    for (std::size_t t = 0; t < result.per_table.size(); ++t) {
        result.per_table[t].evictions = evictions[t];
        result.total.merge(result.per_table[t]);
    }
    // Admission vetoes are tracked by the (possibly wrapped) cache, not
    // per table; counters were reset at the warmup boundary, so this is
    // the post-warmup figure (zero when the whole trace was warmup).
    if (warm < records.size())
        result.total.admission_rejects = cache_->stats().admission_rejects;
    return result;
}

CacheSimResult
replayTrace(const model::ModelSpec &spec,
            const workload::AccessTrace &trace, Policy policy,
            std::int64_t capacity_bytes, double warmup_fraction,
            Admission admission)
{
    TieredCacheConfig config;
    config.policy = policy;
    config.capacity_bytes = capacity_bytes;
    config.warmup_fraction = warmup_fraction;
    config.admission = admission;
    TieredCacheSim sim(spec, config);
    return sim.replay(trace);
}

} // namespace dri::cache
