/**
 * @file
 * Dense compute kernels for the operator graph: GEMM-backed fully-connected
 * layers, activations, concatenation, and the DLRM dot-product feature
 * interaction. Reference implementations — clarity over speed; the DES cost
 * model, not wall-clock, provides timing.
 */
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace dri::tensor {

/**
 * Fully-connected layer: out = in * weight^T + bias.
 *
 * @param in     [batch, in_dim]
 * @param weight [out_dim, in_dim]
 * @param bias   [out_dim]
 * @param out    resized to [batch, out_dim]
 */
void fullyConnected(const Tensor &in, const Tensor &weight,
                    const Tensor &bias, Tensor &out);

/** Elementwise max(0, x), in place. */
void reluInPlace(Tensor &t);

/** Elementwise logistic sigmoid, in place. */
void sigmoidInPlace(Tensor &t);

/**
 * Concatenate rank-2 tensors along the column (feature) dimension. All
 * inputs must share the same row count.
 */
void concatColumns(const std::vector<const Tensor *> &inputs, Tensor &out);

/**
 * DLRM-style dot-product feature interaction.
 *
 * Treats each input as a [batch, dim] feature block; for every batch row,
 * emits the upper triangle (i < j) of pairwise dot products between blocks,
 * concatenated after the first block's raw features (as in DLRM's
 * interaction with skip connection).
 *
 * @param blocks  feature blocks, each [batch, dim] with a common dim
 * @param out     resized to [batch, dim + nC2] where n = blocks.size()
 */
void dotInteraction(const std::vector<const Tensor *> &blocks, Tensor &out);

/** Elementwise sum of equally shaped tensors into out. */
void sumTensors(const std::vector<const Tensor *> &inputs, Tensor &out);

/** Total absolute difference between two same-shaped tensors. */
double l1Distance(const Tensor &a, const Tensor &b);

} // namespace dri::tensor
