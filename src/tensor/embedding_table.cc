#include "tensor/embedding_table.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

namespace dri::tensor {

namespace {

/** SplitMix64 hash used for row placement, value synthesis, and pruning. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Deterministic value in roughly [-0.1, 0.1] for (seed, row, col). */
float
syntheticValue(std::uint64_t seed, std::int64_t row, std::int64_t col)
{
    const std::uint64_t h =
        mix64(seed ^ mix64(static_cast<std::uint64_t>(row) * 0x100000001b3ULL +
                           static_cast<std::uint64_t>(col)));
    const double unit =
        static_cast<double>(h >> 11) /
        static_cast<double>(1ULL << 53); // [0, 1)
    return static_cast<float>((unit - 0.5) * 0.2);
}

} // namespace

std::int64_t
rowBytes(Precision precision, std::int64_t dim)
{
    switch (precision) {
      case Precision::Fp32:
        return dim * 4;
      case Precision::Int8:
        // 1 byte/element + fp32 scale and bias per row.
        return dim + 8;
      case Precision::Int4:
        return (dim + 1) / 2 + 8;
    }
    return dim * 4;
}

VirtualEmbeddingTable::VirtualEmbeddingTable(std::int64_t logical_rows,
                                             std::int64_t dim,
                                             std::uint64_t seed,
                                             std::int64_t physical_rows)
    : logical_rows_(logical_rows), dim_(dim),
      physical_rows_(std::min(physical_rows, logical_rows)), seed_(seed)
{
    assert(logical_rows > 0 && dim > 0 && physical_rows > 0);
    backing_.resize(static_cast<std::size_t>(physical_rows_ * dim_));
    for (std::int64_t r = 0; r < physical_rows_; ++r)
        for (std::int64_t c = 0; c < dim_; ++c)
            backing_[static_cast<std::size_t>(r * dim_ + c)] =
                syntheticValue(seed, r, c);
}

std::int64_t
VirtualEmbeddingTable::logicalBytes() const
{
    const double kept = 1.0 - pruned_fraction_;
    const double rows = static_cast<double>(logical_rows_) * kept;
    return static_cast<std::int64_t>(rows *
                                     static_cast<double>(rowBytes(precision_,
                                                                  dim_)));
}

std::int64_t
VirtualEmbeddingTable::physicalIndex(std::int64_t row) const
{
    return static_cast<std::int64_t>(
        mix64(seed_ ^ static_cast<std::uint64_t>(row)) %
        static_cast<std::uint64_t>(physical_rows_));
}

bool
VirtualEmbeddingTable::isPruned(std::int64_t row) const
{
    if (pruned_fraction_ <= 0.0)
        return false;
    const std::uint64_t h =
        mix64(seed_ * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(row));
    const double unit = static_cast<double>(h >> 11) /
                        static_cast<double>(1ULL << 53);
    return unit < pruned_fraction_;
}

void
VirtualEmbeddingTable::readRow(std::int64_t row, float *dst) const
{
    assert(row >= 0 && row < logical_rows_);
    if (isPruned(row)) {
        std::fill(dst, dst + dim_, 0.0f);
        return;
    }
    const float *src =
        backing_.data() + physicalIndex(row) * dim_;
    std::memcpy(dst, src, static_cast<std::size_t>(dim_) * sizeof(float));
}

void
VirtualEmbeddingTable::sls(const std::vector<std::int64_t> &indices,
                           const std::vector<std::int32_t> &lengths,
                           Tensor &out) const
{
    const auto segments = static_cast<std::int64_t>(lengths.size());
    out = Tensor(segments, dim_);
    std::vector<float> scratch(static_cast<std::size_t>(dim_));
    std::size_t cursor = 0;
    for (std::int64_t s = 0; s < segments; ++s) {
        float *dst = out.row(s);
        const auto len = static_cast<std::size_t>(lengths[static_cast<std::size_t>(s)]);
        for (std::size_t k = 0; k < len; ++k) {
            assert(cursor < indices.size());
            readRow(indices[cursor++], scratch.data());
            for (std::int64_t c = 0; c < dim_; ++c)
                dst[c] += scratch[static_cast<std::size_t>(c)];
        }
    }
    assert(cursor == indices.size());
}

void
VirtualEmbeddingTable::quantize(Precision precision)
{
    if (precision == precision_ || precision == Precision::Fp32) {
        precision_ = precision;
        return;
    }
    const int levels = precision == Precision::Int8 ? 255 : 15;
    for (std::int64_t r = 0; r < physical_rows_; ++r) {
        float *row = backing_.data() + r * dim_;
        float lo = std::numeric_limits<float>::max();
        float hi = std::numeric_limits<float>::lowest();
        for (std::int64_t c = 0; c < dim_; ++c) {
            lo = std::min(lo, row[c]);
            hi = std::max(hi, row[c]);
        }
        const float scale = (hi - lo) / static_cast<float>(levels);
        if (scale <= 0.0f)
            continue;
        for (std::int64_t c = 0; c < dim_; ++c) {
            const float q = std::round((row[c] - lo) / scale);
            row[c] = lo + q * scale;
        }
    }
    precision_ = precision;
}

void
VirtualEmbeddingTable::prune(double fraction)
{
    assert(fraction >= 0.0 && fraction < 1.0);
    pruned_fraction_ = fraction;
}

} // namespace dri::tensor
