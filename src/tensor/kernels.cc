#include "tensor/kernels.h"

#include <cassert>
#include <cmath>
#include <cstdlib>

namespace dri::tensor {

void
fullyConnected(const Tensor &in, const Tensor &weight, const Tensor &bias,
               Tensor &out)
{
    assert(in.rank() == 2 && weight.rank() == 2);
    const std::int64_t batch = in.dim(0);
    const std::int64_t in_dim = in.dim(1);
    const std::int64_t out_dim = weight.dim(0);
    assert(weight.dim(1) == in_dim);
    assert(bias.numel() == out_dim);

    out = Tensor(batch, out_dim);
    for (std::int64_t b = 0; b < batch; ++b) {
        const float *x = in.row(b);
        float *y = out.row(b);
        for (std::int64_t o = 0; o < out_dim; ++o) {
            const float *w = weight.row(o);
            float acc = bias.at(o);
            for (std::int64_t i = 0; i < in_dim; ++i)
                acc += x[i] * w[i];
            y[o] = acc;
        }
    }
}

void
reluInPlace(Tensor &t)
{
    float *p = t.data();
    const std::int64_t n = t.numel();
    for (std::int64_t i = 0; i < n; ++i)
        p[i] = p[i] > 0.0f ? p[i] : 0.0f;
}

void
sigmoidInPlace(Tensor &t)
{
    float *p = t.data();
    const std::int64_t n = t.numel();
    for (std::int64_t i = 0; i < n; ++i)
        p[i] = 1.0f / (1.0f + std::exp(-p[i]));
}

void
concatColumns(const std::vector<const Tensor *> &inputs, Tensor &out)
{
    assert(!inputs.empty());
    const std::int64_t batch = inputs.front()->rows();
    std::int64_t total_cols = 0;
    for (const auto *t : inputs) {
        assert(t->rank() == 2);
        assert(t->rows() == batch);
        total_cols += t->cols();
    }
    out = Tensor(batch, total_cols);
    for (std::int64_t b = 0; b < batch; ++b) {
        float *dst = out.row(b);
        for (const auto *t : inputs) {
            const float *src = t->row(b);
            for (std::int64_t c = 0; c < t->cols(); ++c)
                *dst++ = src[c];
        }
    }
}

void
dotInteraction(const std::vector<const Tensor *> &blocks, Tensor &out)
{
    assert(!blocks.empty());
    const std::int64_t batch = blocks.front()->rows();
    const std::int64_t dim = blocks.front()->cols();
    for (const auto *b : blocks) {
        assert(b->rows() == batch && b->cols() == dim);
        (void)b;
    }
    const std::int64_t n = static_cast<std::int64_t>(blocks.size());
    const std::int64_t pairs = n * (n - 1) / 2;
    out = Tensor(batch, dim + pairs);
    for (std::int64_t b = 0; b < batch; ++b) {
        float *dst = out.row(b);
        // Skip connection: first block's raw features pass through.
        const float *first = blocks[0]->row(b);
        for (std::int64_t c = 0; c < dim; ++c)
            dst[c] = first[c];
        std::int64_t k = dim;
        for (std::int64_t i = 0; i < n; ++i) {
            const float *xi = blocks[static_cast<std::size_t>(i)]->row(b);
            for (std::int64_t j = i + 1; j < n; ++j) {
                const float *xj = blocks[static_cast<std::size_t>(j)]->row(b);
                float acc = 0.0f;
                for (std::int64_t c = 0; c < dim; ++c)
                    acc += xi[c] * xj[c];
                dst[k++] = acc;
            }
        }
    }
}

void
sumTensors(const std::vector<const Tensor *> &inputs, Tensor &out)
{
    assert(!inputs.empty());
    out = *inputs.front();
    for (std::size_t i = 1; i < inputs.size(); ++i) {
        assert(inputs[i]->sameShape(out));
        const float *src = inputs[i]->data();
        float *dst = out.data();
        const std::int64_t n = out.numel();
        for (std::int64_t j = 0; j < n; ++j)
            dst[j] += src[j];
    }
}

double
l1Distance(const Tensor &a, const Tensor &b)
{
    assert(a.sameShape(b));
    double acc = 0.0;
    const std::int64_t n = a.numel();
    for (std::int64_t i = 0; i < n; ++i)
        acc += std::abs(static_cast<double>(a.at(i)) -
                        static_cast<double>(b.at(i)));
    return acc;
}

} // namespace dri::tensor
