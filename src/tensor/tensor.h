/**
 * @file
 * A small dense float tensor. The operator graph computes real values on
 * these tensors; only *timing* is simulated. Supporting rank <= 2 keeps the
 * implementation honest and auditable — recommendation inference needs
 * nothing higher for the dense path.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dri::tensor {

/** Dense row-major float tensor of rank 1 or 2. */
class Tensor
{
  public:
    Tensor() = default;

    /** Rank-1 tensor of the given length, zero-filled. */
    explicit Tensor(std::int64_t n);

    /** Rank-2 tensor (rows x cols), zero-filled. */
    Tensor(std::int64_t rows, std::int64_t cols);

    static Tensor fromVector(std::vector<float> values);
    static Tensor fromMatrix(std::int64_t rows, std::int64_t cols,
                             std::vector<float> values);

    std::int64_t rank() const { return static_cast<std::int64_t>(shape_.size()); }
    std::int64_t numel() const;
    std::int64_t dim(std::size_t i) const { return shape_.at(i); }
    const std::vector<std::int64_t> &shape() const { return shape_; }

    /** Rows for rank-2, numel for rank-1. */
    std::int64_t rows() const;
    /** Cols for rank-2, 1 for rank-1. */
    std::int64_t cols() const;

    float &at(std::int64_t i) { return data_.at(static_cast<std::size_t>(i)); }
    float at(std::int64_t i) const
    {
        return data_.at(static_cast<std::size_t>(i));
    }
    float &at(std::int64_t r, std::int64_t c);
    float at(std::int64_t r, std::int64_t c) const;

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Pointer to the start of row r (rank-2 only). */
    float *row(std::int64_t r);
    const float *row(std::int64_t r) const;

    /** Reinterpret the buffer with a new shape of identical numel. */
    void reshape(std::vector<std::int64_t> shape);

    /** Fill with a constant. */
    void fill(float v);

    /** Logical size in bytes (FP32). */
    std::int64_t bytes() const { return numel() * 4; }

    bool sameShape(const Tensor &other) const { return shape_ == other.shape_; }

    std::string shapeString() const;

  private:
    std::vector<std::int64_t> shape_;
    std::vector<float> data_;
};

} // namespace dri::tensor
