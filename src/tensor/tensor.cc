#include "tensor/tensor.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <numeric>
#include <sstream>

namespace dri::tensor {

Tensor::Tensor(std::int64_t n)
    : shape_{n}, data_(static_cast<std::size_t>(n), 0.0f)
{
    assert(n >= 0);
}

Tensor::Tensor(std::int64_t rows, std::int64_t cols)
    : shape_{rows, cols},
      data_(static_cast<std::size_t>(rows * cols), 0.0f)
{
    assert(rows >= 0 && cols >= 0);
}

Tensor
Tensor::fromVector(std::vector<float> values)
{
    Tensor t;
    t.shape_ = {static_cast<std::int64_t>(values.size())};
    t.data_ = std::move(values);
    return t;
}

Tensor
Tensor::fromMatrix(std::int64_t rows, std::int64_t cols,
                   std::vector<float> values)
{
    assert(static_cast<std::int64_t>(values.size()) == rows * cols);
    Tensor t;
    t.shape_ = {rows, cols};
    t.data_ = std::move(values);
    return t;
}

std::int64_t
Tensor::numel() const
{
    return std::accumulate(shape_.begin(), shape_.end(),
                           static_cast<std::int64_t>(1),
                           std::multiplies<std::int64_t>());
}

std::int64_t
Tensor::rows() const
{
    return rank() == 2 ? shape_[0] : numel();
}

std::int64_t
Tensor::cols() const
{
    return rank() == 2 ? shape_[1] : 1;
}

float &
Tensor::at(std::int64_t r, std::int64_t c)
{
    assert(rank() == 2);
    return data_.at(static_cast<std::size_t>(r * shape_[1] + c));
}

float
Tensor::at(std::int64_t r, std::int64_t c) const
{
    assert(rank() == 2);
    return data_.at(static_cast<std::size_t>(r * shape_[1] + c));
}

float *
Tensor::row(std::int64_t r)
{
    assert(rank() == 2);
    assert(r >= 0 && r < shape_[0]);
    return data_.data() + r * shape_[1];
}

const float *
Tensor::row(std::int64_t r) const
{
    assert(rank() == 2);
    assert(r >= 0 && r < shape_[0]);
    return data_.data() + r * shape_[1];
}

void
Tensor::reshape(std::vector<std::int64_t> shape)
{
    const auto n = std::accumulate(shape.begin(), shape.end(),
                                   static_cast<std::int64_t>(1),
                                   std::multiplies<std::int64_t>());
    assert(n == numel());
    (void)n;
    shape_ = std::move(shape);
}

void
Tensor::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

std::string
Tensor::shapeString() const
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < shape_.size(); ++i)
        os << (i ? ", " : "") << shape_[i];
    os << "]";
    return os.str();
}

} // namespace dri::tensor
