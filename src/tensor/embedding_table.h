/**
 * @file
 * Virtual embedding tables with SparseLengthsSum (SLS) pooling.
 *
 * The paper's models carry 138-200 GB of embedding tables (Fig. 5); holding
 * them resident is neither possible nor necessary here. A
 * VirtualEmbeddingTable keeps the *logical* geometry (rows x dim, at paper
 * scale) for capacity-driven sharding while backing lookups with a small
 * hashed physical store, so pooling still performs real arithmetic and
 * row-split sharding can be verified numerically.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace dri::tensor {

/** Numeric storage precision of an embedding table. */
enum class Precision { Fp32, Int8, Int4 };

/** Bytes per embedding row for a given precision and dimension. */
std::int64_t rowBytes(Precision precision, std::int64_t dim);

/**
 * An embedding table with paper-scale logical geometry and a hashed,
 * deterministic physical backing store.
 *
 * Logical row r maps to physical row hash(r) mod physical_rows; the backing
 * values are a pure function of (seed, physical row, column), so any two
 * tables constructed with identical parameters agree exactly — the property
 * row-split sharding correctness tests rely on.
 */
class VirtualEmbeddingTable
{
  public:
    /**
     * @param logical_rows  Row count at paper scale (may be billions).
     * @param dim           Embedding dimension.
     * @param seed          Determines backing values.
     * @param physical_rows Size of the hashed backing store.
     */
    VirtualEmbeddingTable(std::int64_t logical_rows, std::int64_t dim,
                          std::uint64_t seed,
                          std::int64_t physical_rows = 2048);

    std::int64_t logicalRows() const { return logical_rows_; }
    std::int64_t dim() const { return dim_; }
    std::int64_t physicalRows() const { return physical_rows_; }
    std::uint64_t seed() const { return seed_; }

    /** Logical capacity in bytes at the current precision. */
    std::int64_t logicalBytes() const;

    Precision precision() const { return precision_; }

    /**
     * Fraction of logical rows pruned away (treated as zero vectors and
     * excluded from the capacity footprint). Set by the compression pass.
     */
    double prunedFraction() const { return pruned_fraction_; }

    /** Whether the given logical row is pruned under the current setting. */
    bool isPruned(std::int64_t row) const;

    /**
     * Read one logical row into dst[0..dim). Applies pruning (zeros) and
     * quantization error exactly as the serving path would observe them.
     */
    void readRow(std::int64_t row, float *dst) const;

    /**
     * SparseLengthsSum: segment i pools (sums) the rows named by
     * indices[offset_i .. offset_i + lengths[i]). Output is
     * [lengths.size(), dim]. Empty segments yield zero vectors.
     */
    void sls(const std::vector<std::int64_t> &indices,
             const std::vector<std::int32_t> &lengths, Tensor &out) const;

    /**
     * Apply row-wise linear quantization at the given precision. Values are
     * re-encoded (so readRow reflects quantization error) and logicalBytes()
     * shrinks accordingly. Idempotent per precision.
     */
    void quantize(Precision precision);

    /**
     * Prune the given fraction of logical rows (selected by hash, so the
     * choice is deterministic and uniform).
     */
    void prune(double fraction);

  private:
    std::int64_t logical_rows_;
    std::int64_t dim_;
    std::int64_t physical_rows_;
    std::uint64_t seed_;
    Precision precision_ = Precision::Fp32;
    double pruned_fraction_ = 0.0;

    /** Backing values, always materialized as float for compute. */
    std::vector<float> backing_;

    std::int64_t physicalIndex(std::int64_t row) const;
};

} // namespace dri::tensor
