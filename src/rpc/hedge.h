/**
 * @file
 * Hedged (backup) requests against sparse-shard stragglers.
 *
 * The paper's scale-out finding is that a request's latency is bounded by
 * its *slowest* sparse RPC (Section IV-B attributes the embedded portion to
 * the bounding shard), so the P99 of a fan-out deployment is set by replica
 * stragglers — a transiently deep queue on one replica delays every request
 * routed there. The classic tail-at-scale mitigation is the hedged request:
 * when a primary RPC has been outstanding longer than a quantile of recent
 * RPC latencies, issue a backup to a *different* replica and take whichever
 * response returns first, cancelling the loser. The hedge deadline tracks
 * the measured latency distribution (a sliding window), so the policy
 * self-tunes as load shifts; a budget caps the fraction of RPCs that may be
 * hedged so duplicate work stays bounded at low load.
 *
 * Fault masking. The same mechanism is the serving tier's first line of
 * defense against replica CRASHES, not just stragglers: an attempt sent
 * to a dead replica never completes, so it blows through the hedge
 * deadline like any straggler and the backup — resolved against a
 * different replica — carries the request. This window matters because
 * discovery health updates lag the fault (ServingSimulation's
 * PerturbationConfig::discovery_lag_ns): between the crash and the
 * directory reacting, the balancer keeps routing primaries at the dead
 * server, and hedging is the only thing standing between those requests
 * and an rpc_timeout_ns stall followed by a failover retry. The chaos
 * suite (fleet/fault_schedule.h, examples/chaos_study) measures exactly
 * this: with hedging on, a replica crash is masked to a fraction of the
 * blast radius the unhedged fleet eats.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace dri::rpc {

/** When and how aggressively to hedge sparse-shard RPCs. */
struct HedgeConfig
{
    /** Master switch; everything below is inert while false. */
    bool enabled = false;
    /**
     * Hedge deadline quantile: a backup launches when the primary has been
     * outstanding longer than this quantile of recently observed RPC
     * latencies (dispatch to response at the client).
     */
    double quantile = 0.95;
    /** Observed completions required before any hedge may launch. */
    std::size_t min_samples = 64;
    /** Sliding-window size of the latency tracker. */
    std::size_t window = 512;
    /**
     * Hedge budget: backups may be at most this fraction of primary
     * dispatches (the tail-at-scale "hedge no more than ~5%" rule).
     * Bounds wasted duplicate work when the latency distribution is tight
     * and the quantile deadline sits near the median.
     */
    double max_hedge_fraction = 0.05;
    /** Floor on the hedge deadline (avoid hedging trivially fast RPCs). */
    sim::Duration min_deadline_ns = 0;
    /**
     * Queue-aware suppression: skip the backup when the chosen backup
     * replica already has more than this many outstanding requests
     * (0 = no constraint). A backup that would sit behind a deep queue
     * cannot outrun the primary — it only adds load exactly when the
     * tier has no headroom to spare. The live LoadProbe the load-aware
     * balancing policies install is what answers the question.
     */
    std::size_t max_backup_outstanding = 0;
    /**
     * Track latency quantiles per sparse *shard* instead of one global
     * window. Shards differ legitimately in RPC latency — pooling is
     * routed unevenly, so a heavy shard's honest P95 sits far above the
     * global quantile and the global deadline hedges it constantly while
     * barely ever hedging the light shards. Per-shard trackers give each
     * shard its own deadline (and its own min_samples gate), narrowing
     * the hedge-rate spread across shards.
     */
    bool per_shard_deadline = false;
};

/** Aggregate hedging outcome counters of one simulation run. */
struct HedgeStats
{
    std::uint64_t primary_rpcs = 0; //!< primaries dispatched
    std::uint64_t hedges = 0;       //!< backups launched
    std::uint64_t wins = 0;         //!< backup answered first
    std::uint64_t losses = 0;       //!< backup executed but lost the race
    std::uint64_t cancelled = 0;    //!< backup cancelled before executing
    /**
     * Hedge deadlines that expired but launched no backup (budget
     * exhausted or queue-aware suppression) — makes under-hedging
     * visible instead of silently shrinking the hedge rate.
     */
    std::uint64_t suppressed = 0;
    /** Replica-pool busy time consumed by losing attempts. */
    double wasted_busy_ns = 0.0;
    /** Total replica-pool busy time (denominator for wastedFraction). */
    double total_busy_ns = 0.0;

    /** Backups per primary dispatch. */
    double hedgeRate() const
    {
        return primary_rpcs == 0
                   ? 0.0
                   : static_cast<double>(hedges) /
                         static_cast<double>(primary_rpcs);
    }

    /** Fraction of sparse-tier busy time that was duplicate (wasted) work. */
    double wastedFraction() const
    {
        return total_busy_ns <= 0.0 ? 0.0 : wasted_busy_ns / total_busy_ns;
    }
};

/**
 * Sliding-window latency tracker answering quantile queries for the hedge
 * deadline. Keeps the last `window` samples in a ring plus a sorted
 * mirror maintained incrementally on add(), so the per-dispatch quantile
 * query is a single indexed read instead of a scratch-copy-and-select
 * over the window. Values are exact nearest-rank order statistics —
 * identical to what a full sort of the window would return.
 */
class LatencyTracker
{
  public:
    explicit LatencyTracker(std::size_t window = 512);

    /** Record one observed RPC latency. */
    void add(sim::Duration latency_ns);

    /** Samples currently in the window. */
    std::size_t count() const { return samples_.size(); }

    /** Lifetime samples observed (monotone; count() saturates at window). */
    std::uint64_t observed() const { return observed_; }

    /**
     * Quantile of the windowed samples (nearest-rank); q clamped to
     * [0, 1]. Returns 0 while the window is empty.
     */
    sim::Duration quantile(double q) const;

    /**
     * The hedge deadline this window implies: the q-quantile, floored at
     * `floor_ns` (HedgeConfig::min_deadline_ns). The one place the
     * quantile-vs-floor rule lives, so the serving engine and any
     * offline analysis agree on the armed deadline.
     */
    sim::Duration deadline(double q, sim::Duration floor_ns) const;

  private:
    std::size_t window_;
    std::size_t next_ = 0; //!< ring write cursor once the window is full
    std::uint64_t observed_ = 0;
    std::vector<sim::Duration> samples_; //!< arrival-order ring
    std::vector<sim::Duration> sorted_;  //!< same multiset, kept sorted
};

} // namespace dri::rpc
