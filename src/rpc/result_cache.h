/**
 * @file
 * Main-shard pooled-result cache: memoize whole sparse-RPC responses.
 *
 * Row-level caches (src/cache) cut the cost of a gather on the shard that
 * executes it; the pooled-result cache removes the RPC altogether. The
 * main shard keys each fan-out request by (net, table group, batch
 * signature) — the group's identity plus the batch shape that determines
 * the pooled SLS response — and on a hit serves the pooled vectors from
 * local memory: no serialization, no network, no remote queueing, no
 * remote gather. Under production traffic the same ranking contexts
 * recur within short horizons, so hit rates are workload-given rather
 * than policy-tuned.
 *
 * Staleness: embedding tables are periodically refreshed by training.
 * Entries therefore carry a TTL (config.ttl_ns) and the owner can drop
 * everything at a refresh boundary via invalidate() — the hook
 * core::ServingSimulation::invalidateResultCache() exposes.
 *
 * Like the row caches this is a *simulation* cache: it tracks identities
 * and byte sizes, not payloads.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "stats/flat_hash.h"
#include "stats/hash.h"

namespace dri::rpc {

/** Pooled-result cache configuration (off by default). */
struct ResultCacheConfig
{
    bool enabled = false;
    /** Byte budget over cached pooled-response payloads (0 = unbounded). */
    std::int64_t capacity_bytes = 64LL << 20;
    /**
     * Entry lifetime on the simulation clock; 0 = no expiry. Models the
     * embedding-refresh staleness bound: a pooled result computed from
     * the previous snapshot must not outlive the refresh interval.
     */
    sim::Duration ttl_ns = 0;
};

/** Hit/miss/byte accounting of one simulation run. */
struct ResultCacheStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t expirations = 0; //!< entries dropped by TTL at lookup
    std::uint64_t evictions = 0;   //!< entries dropped by the byte budget
    std::uint64_t invalidations = 0;
    /** Response bytes served locally instead of re-fetched over RPC. */
    std::int64_t bytes_saved = 0;

    double
    hitRate() const
    {
        return lookups > 0 ? static_cast<double>(hits) /
                                 static_cast<double>(lookups)
                           : 0.0;
    }
};

/**
 * Signature of one sparse fan-out request: the batch shape routed at a
 * group (item count + pooled lookup count). Two batches with equal
 * signatures at the same (net, group) produce the same pooled response
 * under a fixed embedding snapshot, which is what the TTL bounds.
 */
inline std::uint64_t
resultSignature(std::int64_t batch_items, std::int64_t lookups)
{
    // splitmix64 over the packed shape; collisions across distinct
    // shapes are astronomically unlikely at simulation scales.
    return stats::mix64(static_cast<std::uint64_t>(batch_items) *
                            0x9e3779b97f4a7c15ULL ^
                        static_cast<std::uint64_t>(lookups));
}

/**
 * Content-addressed signature: the shape signature folded with the
 * request's feature-vector hash (workload::Request::content_hash) and
 * the batch's index within the request's wave split. Identical feature
 * vectors across users share entries (same content, same split => same
 * keys); distinct vectors of equal shape do not. A zero content hash
 * (hand-built requests with no content identity) degrades to the
 * shape-only signature, preserving the pre-content-addressing sharing
 * semantics.
 */
inline std::uint64_t
resultSignature(std::int64_t batch_items, std::int64_t lookups,
                std::uint64_t content_hash, int batch_id)
{
    const std::uint64_t shape = resultSignature(batch_items, lookups);
    if (content_hash == 0)
        return shape; // no content identity: legacy shape-only keying
    // Fold the request's content identity and the batch's position in
    // its wave split into the signature: batch b of two content-equal
    // requests covers the same item slice (same key), while two distinct
    // feature vectors of equal shape never alias.
    return stats::mix64(
        shape ^ stats::mix64(content_hash +
                             static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(batch_id))));
}

/** LRU + TTL cache of pooled sparse responses, keyed per (net, group). */
class ResultCache
{
  public:
    explicit ResultCache(ResultCacheConfig config);

    struct Key
    {
        int net = 0;
        int group = 0;
        std::uint64_t signature = 0;

        bool
        operator==(const Key &o) const
        {
            return net == o.net && group == o.group &&
                   signature == o.signature;
        }
    };

    /**
     * Hash over all three key fields via mix64 chaining. An earlier
     * shift-packing scheme (`signature ^ (net << 40) ^ (group << 20)`)
     * collided structurally before any mixing happened: group occupied
     * bits 20..51 and net bits 40..63, so e.g. (net=1, group=0) and
     * (net=0, group=2^20) XOR-packed to the same word for every
     * signature, and group ids with bit 20+k set aliased net bit k.
     * Chaining each field through a full finalizer round leaves no
     * algebraic relation between key fields and hash collisions.
     */
    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            std::uint64_t h = stats::mix64(k.signature);
            h = stats::mix64(
                h ^ (static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(k.net)) |
                     (static_cast<std::uint64_t>(
                          static_cast<std::uint32_t>(k.group))
                      << 32)));
            return static_cast<std::size_t>(h);
        }
    };

    /**
     * Probe for a fresh entry at simulated time `now`; a stale entry is
     * dropped and reported as a miss. On a hit the entry's recency is
     * bumped and its response bytes are credited to bytes_saved.
     */
    bool lookup(const Key &key, sim::SimTime now);

    /**
     * Memoize a pooled response observed at `now` (no-op if disabled).
     * `dispatch_epoch` is the epoch() the caller read when it DISPATCHED
     * the RPC: a response computed from the pre-invalidation embedding
     * snapshot (its dispatch epoch predates an invalidate()) is dropped
     * instead of repopulating the cache with stale pooled vectors.
     */
    void insert(const Key &key, std::int64_t response_bytes,
                sim::SimTime now, std::uint64_t dispatch_epoch);

    /** Drop everything — the embedding-refresh invalidation hook. */
    void invalidate();

    /**
     * Snapshot generation: bumped by every invalidate(). Read at RPC
     * dispatch and passed back to insert() so in-flight responses cannot
     * leak a stale snapshot past an invalidation.
     */
    std::uint64_t epoch() const { return epoch_; }

    const ResultCacheStats &stats() const { return stats_; }
    bool enabled() const { return config_.enabled; }
    std::size_t entries() const { return entries_.size(); }
    std::int64_t usedBytes() const { return used_bytes_; }

  private:
    static constexpr std::uint32_t kNil = 0xffffffffu;

    /**
     * One cached entry, doubly linked into the recency list by arena
     * index. Indices stay valid across arena growth (unlike pointers or
     * std::list iterators would across a vector reallocation), and
     * recycling through free_ means steady-state insert/evict churn
     * allocates nothing.
     */
    struct Node
    {
        Key key;
        std::int64_t bytes = 0;
        sim::SimTime inserted = 0;
        std::uint32_t prev = kNil;
        std::uint32_t next = kNil;
    };

    void unlink(std::uint32_t idx);
    void pushFront(std::uint32_t idx);
    void touch(std::uint32_t idx);
    void eraseNode(std::uint32_t idx);

    ResultCacheConfig config_;
    ResultCacheStats stats_;
    std::vector<Node> nodes_;          //!< entry arena, recycled via free_
    std::vector<std::uint32_t> free_;  //!< indices of vacated arena slots
    std::uint32_t head_ = kNil;        //!< most recently used
    std::uint32_t tail_ = kNil;        //!< least recently used
    stats::FlatHashMap<Key, std::uint32_t, KeyHash> entries_;
    std::int64_t used_bytes_ = 0;
    std::uint64_t epoch_ = 0;
};

} // namespace dri::rpc
