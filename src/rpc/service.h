/**
 * @file
 * Thrift-like RPC service cost model.
 *
 * Every shard — main and sparse — runs a full service handler plus an ML
 * framework instance (Section III-A2). The measurable costs the paper's
 * tracing attributes to this stack are: request/response serialization
 * ("RPC Ser/De", proportional to payload bytes), fixed handler boilerplate
 * ("RPC Service Function"), framework net-scheduling overhead ("Caffe2 Net
 * Overhead"), and the client-side cost of issuing asynchronous RPC ops.
 */
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/time.h"

namespace dri::rpc {

/** Cost coefficients for one service instance. */
struct ServiceConfig
{
    /** Fixed handler boilerplate per served request (CPU). */
    sim::Duration handler_fixed_ns = 40 * sim::kMicrosecond;
    /** Serialization/deserialization CPU cost per payload byte. */
    double serde_ns_per_byte = 0.08;
    /** Framework scheduling overhead per net execution (CPU). */
    sim::Duration net_overhead_ns = 30 * sim::kMicrosecond;
    /** Extra framework bookkeeping per asynchronous op in a net (CPU). */
    sim::Duration async_op_overhead_ns = 4 * sim::kMicrosecond;
    /** Client-side CPU to construct and dispatch one RPC request. */
    sim::Duration client_dispatch_ns = 6 * sim::kMicrosecond;
};

/** Evaluates service-stack costs. */
class ServiceCostModel
{
  public:
    explicit ServiceCostModel(ServiceConfig config) : config_(config) {}

    /** CPU to (de)serialize a payload of the given size. */
    sim::Duration
    serdeNs(std::int64_t bytes) const
    {
        return static_cast<sim::Duration>(std::llround(
            config_.serde_ns_per_byte * static_cast<double>(bytes)));
    }

    /** Fixed per-request handler CPU. */
    sim::Duration handlerNs() const { return config_.handler_fixed_ns; }

    /** Framework overhead for executing a net with the given async ops. */
    sim::Duration
    netOverheadNs(std::int64_t async_ops) const
    {
        return config_.net_overhead_ns +
               async_ops * config_.async_op_overhead_ns;
    }

    /** Client-side CPU for dispatching one RPC. */
    sim::Duration clientDispatchNs() const
    {
        return config_.client_dispatch_ns;
    }

    const ServiceConfig &config() const { return config_; }

  private:
    ServiceConfig config_;
};

} // namespace dri::rpc
