#include "rpc/service.h"

#include <cmath>

namespace dri::rpc {

sim::Duration
ServiceCostModel::serdeNs(std::int64_t bytes) const
{
    return static_cast<sim::Duration>(
        std::llround(config_.serde_ns_per_byte * static_cast<double>(bytes)));
}

sim::Duration
ServiceCostModel::netOverheadNs(std::int64_t async_ops) const
{
    return config_.net_overhead_ns + async_ops * config_.async_op_overhead_ns;
}

} // namespace dri::rpc
