#include "rpc/hedge.h"

#include <algorithm>

namespace dri::rpc {

LatencyTracker::LatencyTracker(std::size_t window)
    : window_(std::max<std::size_t>(1, window))
{
    samples_.reserve(window_);
}

void
LatencyTracker::add(sim::Duration latency_ns)
{
    ++observed_;
    if (samples_.size() < window_) {
        samples_.push_back(latency_ns);
        return;
    }
    samples_[next_] = latency_ns;
    next_ = (next_ + 1) % window_;
}

sim::Duration
LatencyTracker::quantile(double q) const
{
    // Enforced unconditionally (not assert-only): this is public API and
    // an empty-window query in a Release build must not read OOB.
    if (samples_.empty())
        return 0;
    q = std::min(1.0, std::max(0.0, q));
    scratch_ = samples_;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(scratch_.size() - 1) + 0.5);
    std::nth_element(scratch_.begin(),
                     scratch_.begin() + static_cast<std::ptrdiff_t>(rank),
                     scratch_.end());
    return scratch_[rank];
}

sim::Duration
LatencyTracker::deadline(double q, sim::Duration floor_ns) const
{
    return std::max(floor_ns, quantile(q));
}

} // namespace dri::rpc
