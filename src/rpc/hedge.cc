#include "rpc/hedge.h"

#include <algorithm>

namespace dri::rpc {

LatencyTracker::LatencyTracker(std::size_t window)
    : window_(std::max<std::size_t>(1, window))
{
    samples_.reserve(window_);
    sorted_.reserve(window_);
}

void
LatencyTracker::add(sim::Duration latency_ns)
{
    ++observed_;
    if (samples_.size() < window_) {
        samples_.push_back(latency_ns);
        sorted_.insert(
            std::upper_bound(sorted_.begin(), sorted_.end(), latency_ns),
            latency_ns);
        return;
    }
    // Window full: the incoming sample replaces the oldest one in the
    // sorted mirror with a single element rotation (one shift of the
    // span between the two positions, not an erase plus an insert).
    const sim::Duration evicted = samples_[next_];
    samples_[next_] = latency_ns;
    next_ = (next_ + 1) % window_;
    const auto out = std::lower_bound(sorted_.begin(), sorted_.end(), evicted);
    const auto in =
        std::upper_bound(sorted_.begin(), sorted_.end(), latency_ns);
    if (in > out) {
        std::move(out + 1, in, out);
        *(in - 1) = latency_ns;
    } else {
        std::move_backward(in, out, out + 1);
        *in = latency_ns;
    }
}

sim::Duration
LatencyTracker::quantile(double q) const
{
    // Enforced unconditionally (not assert-only): this is public API and
    // an empty-window query in a Release build must not read OOB.
    if (sorted_.empty())
        return 0;
    q = std::min(1.0, std::max(0.0, q));
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted_.size() - 1) + 0.5);
    return sorted_[rank];
}

sim::Duration
LatencyTracker::deadline(double q, sim::Duration floor_ns) const
{
    return std::max(floor_ns, quantile(q));
}

} // namespace dri::rpc
