#include "rpc/discovery.h"

#include <algorithm>

namespace dri::rpc {

const char *
policyName(LoadBalancePolicy policy)
{
    switch (policy) {
    case LoadBalancePolicy::RoundRobin:
        return "round-robin";
    case LoadBalancePolicy::LeastOutstanding:
        return "least-outstanding";
    case LoadBalancePolicy::PowerOfTwoChoices:
        return "power-of-two";
    }
    return "unknown";
}

void
ServiceDirectory::registerReplica(int shard_id, int server_id)
{
    replicas_[shard_id].push_back(server_id);
}

std::size_t
ServiceDirectory::replicaCount(int shard_id) const
{
    auto it = replicas_.find(shard_id);
    return it == replicas_.end() ? 0 : it->second.size();
}

void
ServiceDirectory::setPolicy(LoadBalancePolicy policy, std::uint64_t seed)
{
    policy_ = policy;
    rng_ = stats::Rng(seed);
}

void
ServiceDirectory::setLoadProbe(LoadProbe probe)
{
    probe_ = std::move(probe);
}

int
ServiceDirectory::pickRoundRobin(int shard_id, const std::vector<int> &servers)
{
    const std::size_t idx = next_[shard_id] % servers.size();
    next_[shard_id] = idx + 1;
    return servers[idx];
}

int
ServiceDirectory::pickLeastOutstanding(const std::vector<int> &servers) const
{
    // Ties break toward the lowest replica index: the strict `<` keeps the
    // earliest-registered server, so equal loads resolve identically on
    // every platform (hedging depends on a reproducible second choice).
    int best = servers.front();
    std::size_t best_load = probe_(best);
    for (std::size_t i = 1; i < servers.size(); ++i) {
        const std::size_t load = probe_(servers[i]);
        if (load < best_load) {
            best = servers[i];
            best_load = load;
        }
    }
    return best;
}

int
ServiceDirectory::pickPowerOfTwo(const std::vector<int> &servers)
{
    const auto n = static_cast<std::int64_t>(servers.size());
    const auto a = static_cast<std::size_t>(rng_.uniformInt(0, n - 1));
    // Second choice drawn from the remaining n-1, so a != b always.
    auto b = static_cast<std::size_t>(rng_.uniformInt(0, n - 2));
    if (b >= a)
        ++b;
    const std::size_t load_a = probe_(servers[a]);
    const std::size_t load_b = probe_(servers[b]);
    if (load_a != load_b)
        return load_b < load_a ? servers[b] : servers[a];
    // Equal loads: take the lower replica index, not the first sample, so
    // the outcome depends only on *which* pair was drawn.
    return servers[std::min(a, b)];
}

/**
 * The shard's replicas minus an optionally excluded server and any
 * unhealthy servers, in registration order (which the tie-breaks depend
 * on). The common no-exclusion all-healthy path returns the stored
 * vector directly; only exclusion (the hedge/failover paths) or an
 * unhealthy server somewhere in the fleet materializes a filtered copy
 * into `scratch`. Null when the shard is unknown or filtering removes
 * every candidate.
 */
const std::vector<int> *
ServiceDirectory::candidates(int shard_id, int exclude_server,
                             std::vector<int> &scratch) const
{
    auto it = replicas_.find(shard_id);
    if (it == replicas_.end() || it->second.empty())
        return nullptr;
    if (exclude_server < 0 && unhealthy_.empty())
        return &it->second;
    scratch.clear();
    scratch.reserve(it->second.size());
    for (int s : it->second)
        if (s != exclude_server && unhealthy_.count(s) == 0)
            scratch.push_back(s);
    return scratch.empty() ? nullptr : &scratch;
}

void
ServiceDirectory::setServerHealth(int server_id, bool healthy)
{
    if (healthy)
        unhealthy_.erase(server_id);
    else
        unhealthy_.insert(server_id);
}

bool
ServiceDirectory::serverHealthy(int server_id) const
{
    return unhealthy_.count(server_id) == 0;
}

std::size_t
ServiceDirectory::healthyReplicaCount(int shard_id) const
{
    auto it = replicas_.find(shard_id);
    if (it == replicas_.end())
        return 0;
    if (unhealthy_.empty())
        return it->second.size();
    std::size_t n = 0;
    for (int s : it->second)
        n += unhealthy_.count(s) == 0 ? 1 : 0;
    return n;
}

std::optional<int>
ServiceDirectory::resolve(int shard_id, int exclude_server)
{
    std::vector<int> scratch;
    const std::vector<int> *servers =
        candidates(shard_id, exclude_server, scratch);
    if (!servers)
        return std::nullopt;
    if (servers->size() == 1)
        return servers->front();

    switch (policy_) {
    case LoadBalancePolicy::LeastOutstanding:
        if (probe_)
            return pickLeastOutstanding(*servers);
        break;
    case LoadBalancePolicy::PowerOfTwoChoices:
        if (probe_)
            return pickPowerOfTwo(*servers);
        break;
    case LoadBalancePolicy::RoundRobin:
        break;
    }
    return pickRoundRobin(shard_id, *servers);
}

std::optional<int>
ServiceDirectory::resolveBackup(int shard_id, int exclude_server)
{
    std::vector<int> scratch;
    const std::vector<int> *servers =
        candidates(shard_id, exclude_server, scratch);
    if (!servers)
        return std::nullopt;
    if (servers->size() == 1)
        return servers->front();
    if (!probe_)
        return resolve(shard_id, exclude_server);
    return pickLeastOutstanding(*servers);
}

const std::vector<int> &
ServiceDirectory::replicas(int shard_id) const
{
    static const std::vector<int> kEmpty;
    auto it = replicas_.find(shard_id);
    return it == replicas_.end() ? kEmpty : it->second;
}

} // namespace dri::rpc
