#include "rpc/discovery.h"

#include <cassert>

namespace dri::rpc {

void
ServiceDirectory::registerReplica(int shard_id, int server_id)
{
    replicas_[shard_id].push_back(server_id);
}

std::size_t
ServiceDirectory::replicaCount(int shard_id) const
{
    auto it = replicas_.find(shard_id);
    return it == replicas_.end() ? 0 : it->second.size();
}

int
ServiceDirectory::resolve(int shard_id)
{
    auto it = replicas_.find(shard_id);
    assert(it != replicas_.end() && !it->second.empty());
    const std::size_t idx = next_[shard_id] % it->second.size();
    next_[shard_id] = idx + 1;
    return it->second[idx];
}

const std::vector<int> &
ServiceDirectory::replicas(int shard_id) const
{
    auto it = replicas_.find(shard_id);
    assert(it != replicas_.end());
    return it->second;
}

} // namespace dri::rpc
