#include "rpc/result_cache.h"

#include "stats/hash.h"

namespace dri::rpc {

std::uint64_t
resultSignature(std::int64_t batch_items, std::int64_t lookups)
{
    // splitmix64 over the packed shape; collisions across distinct
    // shapes are astronomically unlikely at simulation scales.
    return stats::mix64(static_cast<std::uint64_t>(batch_items) *
                            0x9e3779b97f4a7c15ULL ^
                        static_cast<std::uint64_t>(lookups));
}

std::uint64_t
resultSignature(std::int64_t batch_items, std::int64_t lookups,
                std::uint64_t content_hash, int batch_id)
{
    const std::uint64_t shape = resultSignature(batch_items, lookups);
    if (content_hash == 0)
        return shape; // no content identity: legacy shape-only keying
    // Fold the request's content identity and the batch's position in
    // its wave split into the signature: batch b of two content-equal
    // requests covers the same item slice (same key), while two distinct
    // feature vectors of equal shape never alias.
    return stats::mix64(
        shape ^ stats::mix64(content_hash +
                             static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(batch_id))));
}

ResultCache::ResultCache(ResultCacheConfig config) : config_(config) {}

bool
ResultCache::lookup(const Key &key, sim::SimTime now)
{
    if (!config_.enabled)
        return false;
    ++stats_.lookups;
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++stats_.misses;
        return false;
    }
    if (config_.ttl_ns > 0 &&
        now - it->second->inserted > config_.ttl_ns) {
        // Stale: the embedding snapshot it was pooled from has been
        // refreshed since.
        erase(it->second);
        ++stats_.expirations;
        ++stats_.misses;
        return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    stats_.bytes_saved += it->second->bytes;
    return true;
}

void
ResultCache::insert(const Key &key, std::int64_t response_bytes,
                    sim::SimTime now, std::uint64_t dispatch_epoch)
{
    if (!config_.enabled)
        return;
    if (dispatch_epoch != epoch_)
        return; // pooled from a snapshot invalidated while on the wire
    if (config_.capacity_bytes > 0 &&
        response_bytes > config_.capacity_bytes)
        return; // larger than the whole budget
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        // Refresh in place (a concurrent miss raced this insertion).
        used_bytes_ += response_bytes - it->second->bytes;
        it->second->bytes = response_bytes;
        it->second->inserted = now;
        lru_.splice(lru_.begin(), lru_, it->second);
    } else {
        lru_.push_front(Entry{key, response_bytes, now});
        entries_[key] = lru_.begin();
        used_bytes_ += response_bytes;
        ++stats_.insertions;
    }
    while (config_.capacity_bytes > 0 &&
           used_bytes_ > config_.capacity_bytes && !lru_.empty()) {
        erase(std::prev(lru_.end()));
        ++stats_.evictions;
    }
}

void
ResultCache::invalidate()
{
    if (!config_.enabled)
        return;
    ++stats_.invalidations;
    ++epoch_;
    lru_.clear();
    entries_.clear();
    used_bytes_ = 0;
}

void
ResultCache::erase(std::list<Entry>::iterator it)
{
    used_bytes_ -= it->bytes;
    entries_.erase(it->key);
    lru_.erase(it);
}

} // namespace dri::rpc
