#include "rpc/result_cache.h"

#include "stats/hash.h"

namespace dri::rpc {

ResultCache::ResultCache(ResultCacheConfig config) : config_(config) {}

bool
ResultCache::lookup(const Key &key, sim::SimTime now)
{
    if (!config_.enabled)
        return false;
    ++stats_.lookups;
    const std::uint32_t *slot = entries_.find(key);
    if (slot == nullptr) {
        ++stats_.misses;
        return false;
    }
    const std::uint32_t idx = *slot;
    if (config_.ttl_ns > 0 &&
        now - nodes_[idx].inserted > config_.ttl_ns) {
        // Stale: the embedding snapshot it was pooled from has been
        // refreshed since.
        eraseNode(idx);
        ++stats_.expirations;
        ++stats_.misses;
        return false;
    }
    touch(idx);
    ++stats_.hits;
    stats_.bytes_saved += nodes_[idx].bytes;
    return true;
}

void
ResultCache::insert(const Key &key, std::int64_t response_bytes,
                    sim::SimTime now, std::uint64_t dispatch_epoch)
{
    if (!config_.enabled)
        return;
    if (dispatch_epoch != epoch_)
        return; // pooled from a snapshot invalidated while on the wire
    if (config_.capacity_bytes > 0 &&
        response_bytes > config_.capacity_bytes)
        return; // larger than the whole budget
    const std::uint32_t *slot = entries_.find(key);
    if (slot != nullptr) {
        // Refresh in place (a concurrent miss raced this insertion).
        Node &n = nodes_[*slot];
        used_bytes_ += response_bytes - n.bytes;
        n.bytes = response_bytes;
        n.inserted = now;
        touch(*slot);
    } else {
        std::uint32_t idx;
        if (!free_.empty()) {
            idx = free_.back();
            free_.pop_back();
        } else {
            idx = static_cast<std::uint32_t>(nodes_.size());
            nodes_.emplace_back();
        }
        Node &n = nodes_[idx];
        n.key = key;
        n.bytes = response_bytes;
        n.inserted = now;
        pushFront(idx);
        entries_.insert(key, idx);
        used_bytes_ += response_bytes;
        ++stats_.insertions;
    }
    while (config_.capacity_bytes > 0 &&
           used_bytes_ > config_.capacity_bytes && tail_ != kNil) {
        eraseNode(tail_);
        ++stats_.evictions;
    }
}

void
ResultCache::invalidate()
{
    if (!config_.enabled)
        return;
    ++stats_.invalidations;
    ++epoch_;
    nodes_.clear();
    free_.clear();
    head_ = tail_ = kNil;
    entries_.clear();
    used_bytes_ = 0;
}

void
ResultCache::unlink(std::uint32_t idx)
{
    Node &n = nodes_[idx];
    if (n.prev != kNil)
        nodes_[n.prev].next = n.next;
    else
        head_ = n.next;
    if (n.next != kNil)
        nodes_[n.next].prev = n.prev;
    else
        tail_ = n.prev;
    n.prev = kNil;
    n.next = kNil;
}

void
ResultCache::pushFront(std::uint32_t idx)
{
    Node &n = nodes_[idx];
    n.prev = kNil;
    n.next = head_;
    if (head_ != kNil)
        nodes_[head_].prev = idx;
    head_ = idx;
    if (tail_ == kNil)
        tail_ = idx;
}

void
ResultCache::touch(std::uint32_t idx)
{
    if (head_ == idx)
        return;
    unlink(idx);
    pushFront(idx);
}

void
ResultCache::eraseNode(std::uint32_t idx)
{
    used_bytes_ -= nodes_[idx].bytes;
    entries_.erase(nodes_[idx].key);
    unlink(idx);
    free_.push_back(idx);
}

} // namespace dri::rpc
