/**
 * @file
 * Universal service-discovery stub: maps a logical shard id to one of its
 * replica server instances (Section III-C routes intermediate requests via
 * a universal service discovery protocol). Statelessness lets consecutive
 * requests land on different replicas, which is what makes the replica-
 * selection policy a free design axis: the directory supports blind
 * round-robin plus two load-aware policies (least-outstanding-requests and
 * power-of-two-choices) driven by a caller-installed load probe.
 *
 * Load ties are broken deterministically toward the lowest replica index
 * (registration order), so a given seed resolves identically on every
 * platform — which is what makes hedging's second-choice replica
 * reproducible. resolve() optionally excludes one server, the hedged
 * request's primary, so a backup never lands on the replica it is trying
 * to outrun.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "stats/rng.h"

namespace dri::rpc {

/** Replica-selection policy used by ServiceDirectory::resolve. */
enum class LoadBalancePolicy
{
    /** Blind rotation across replicas (the paper's baseline). */
    RoundRobin,
    /** Pick the replica with the fewest in-flight + queued requests. */
    LeastOutstanding,
    /** Sample two distinct replicas uniformly, pick the less loaded. */
    PowerOfTwoChoices,
};

/** Short lower-case policy name for labels and JSON rows. */
const char *policyName(LoadBalancePolicy policy);

/** Replica registry and pluggable load-balancing resolver. */
class ServiceDirectory
{
  public:
    /**
     * Live load of a server instance (in-flight + queued requests).
     * Installed by the simulation; load-aware policies fall back to
     * round-robin while no probe is set.
     */
    using LoadProbe = std::function<std::size_t(int server_id)>;

    /** Register a replica server instance for a logical shard. */
    void registerReplica(int shard_id, int server_id);

    /** Number of replicas registered for the shard (0 if unknown). */
    std::size_t replicaCount(int shard_id) const;

    /**
     * Resolve the shard to a server id under the configured policy.
     * Returns std::nullopt if the shard has no registered replicas
     * (unknown shards are a caller error but must not crash the library).
     *
     * `exclude_server` (default: exclude nothing) removes one server from
     * consideration — the hedging path's "a different replica than the
     * primary". Returns std::nullopt if exclusion empties the candidate
     * set (single-replica shards cannot be hedged).
     */
    std::optional<int> resolve(int shard_id, int exclude_server = -1);

    /**
     * Resolve a *backup* (hedge) target: the least-outstanding replica of
     * the shard other than `exclude_server`, regardless of the primary
     * policy — the load probe power-of-two installs is exactly the signal
     * the hedger needs, and a backup that lands blindly on another deep
     * queue cannot outrun anything. Falls back to the configured policy
     * when no probe is installed. Returns std::nullopt when no other
     * replica exists.
     */
    std::optional<int> resolveBackup(int shard_id, int exclude_server);

    /**
     * All server ids registered for a shard; empty for unknown shards.
     */
    const std::vector<int> &replicas(int shard_id) const;

    /** Select the replica-choice policy (round-robin by default). */
    void setPolicy(LoadBalancePolicy policy, std::uint64_t seed = 0x10ad);

    LoadBalancePolicy policy() const { return policy_; }

    /** Install (or clear, with nullptr) the live-load probe. */
    void setLoadProbe(LoadProbe probe);

    /**
     * Mark a server in or out of rotation — the health propagation hook
     * the fault layer calls after its discovery lag. Unhealthy servers
     * are excluded from every resolve()/resolveBackup() under every
     * policy; resolving a shard whose replicas are all unhealthy returns
     * std::nullopt (a graceful resolution error, never an assert).
     * Health state is orthogonal to registration: a restored server
     * rejoins rotation in its original registration slot.
     */
    void setServerHealth(int server_id, bool healthy);

    /** Whether a server is currently in rotation (default: healthy). */
    bool serverHealthy(int server_id) const;

    /** Healthy replicas currently resolvable for the shard. */
    std::size_t healthyReplicaCount(int shard_id) const;

  private:
    const std::vector<int> *candidates(int shard_id, int exclude_server,
                                       std::vector<int> &scratch) const;
    int pickLeastOutstanding(const std::vector<int> &servers) const;
    int pickPowerOfTwo(const std::vector<int> &servers);
    int pickRoundRobin(int shard_id, const std::vector<int> &servers);

    std::map<int, std::vector<int>> replicas_;
    std::map<int, std::size_t> next_;
    /**
     * Out-of-rotation servers. Kept as a (normally empty) set so the
     * all-healthy fast path in candidates() stays zero-copy and the
     * health feature is byte-invisible to fault-free replays.
     */
    std::set<int> unhealthy_;
    LoadBalancePolicy policy_ = LoadBalancePolicy::RoundRobin;
    LoadProbe probe_;
    stats::Rng rng_{0x10ad};
};

} // namespace dri::rpc
