/**
 * @file
 * Universal service-discovery stub: maps a logical shard id to one of its
 * replica server instances (Section III-C routes intermediate requests via
 * a universal service discovery protocol). Selection is round-robin, which
 * is what makes stateless shards a hard requirement — consecutive requests
 * may land on different replicas.
 */
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace dri::rpc {

/** Replica registry and round-robin resolver. */
class ServiceDirectory
{
  public:
    /** Register a replica server instance for a logical shard. */
    void registerReplica(int shard_id, int server_id);

    /** Number of replicas registered for the shard (0 if unknown). */
    std::size_t replicaCount(int shard_id) const;

    /**
     * Resolve the shard to a server id, rotating across replicas.
     * Asserts if the shard has no replicas.
     */
    int resolve(int shard_id);

    /** All server ids registered for a shard. */
    const std::vector<int> &replicas(int shard_id) const;

  private:
    std::map<int, std::vector<int>> replicas_;
    std::map<int, std::size_t> next_;
};

} // namespace dri::rpc
