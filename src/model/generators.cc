#include "model/generators.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace dri::model {

namespace {

using graph::OpClass;

double
ladderTotal(std::size_t n, double largest, double s)
{
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        total += largest * std::pow(static_cast<double>(i + 1), -s);
    return total;
}

/** Smallest k >= 3 coprime with n, used for deterministic permutations. */
std::size_t
coprimeStep(std::size_t n)
{
    for (std::size_t k = 3;; k += 2)
        if (std::gcd(k, n) == 1)
            return k;
}

/**
 * Build one net's worth of tables: sizes follow a power-law ladder
 * (largest first) and pooling follows its own ladder assigned through a
 * permutation, so table size and table hotness are uncorrelated — the
 * property that makes capacity-balanced and load-balanced sharding differ
 * (Table II).
 */
void
addNetTables(ModelSpec &spec, int net_id, std::size_t count,
             double total_gib, double largest_gib, double total_pooling,
             double pooling_concentration)
{
    const auto sizes = powerLawLadder(count, largest_gib * kGiB,
                                      total_gib * kGiB);
    const auto pooling = powerLawLadder(
        count, total_pooling * pooling_concentration, total_pooling);
    const std::size_t step = coprimeStep(count);

    const int first_id = static_cast<int>(spec.tables.size());
    for (std::size_t i = 0; i < count; ++i) {
        TableSpec t;
        t.id = first_id + static_cast<int>(i);
        t.name = spec.name + "_net" + std::to_string(net_id) + "_t" +
                 std::to_string(i);
        t.net_id = net_id;
        // Mild dim variety keyed off the index; all power-of-two like
        // production tables.
        t.dim = (i % 7 == 0) ? 64 : (i % 3 == 0 ? 16 : 32);
        t.rows = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(sizes[i] / (4.0 * t.dim)));
        // Pooling rank is a permuted size rank; convert request-level
        // pooling to per-item by the model's mean request size.
        const std::size_t pool_rank = (i * step + 1) % count;
        t.pooling_per_item = pooling[pool_rank] / spec.mean_items;
        spec.tables.push_back(t);
    }
}

/**
 * Derive per-net dense CPU coefficients so that sparse operators account
 * for exactly `sparse_share` of operator compute at the mean request size
 * (the Fig. 4 calibration), then split the dense time across nets.
 */
void
calibrateDense(ModelSpec &spec, double sparse_share,
               const std::vector<double> &net_dense_split,
               double fixed_ns_per_batch)
{
    const double pooling_per_item =
        spec.expectedPoolingPerRequest() / spec.mean_items;
    const double sparse_ns_per_item = pooling_per_item * kNsPerLookup;
    const double dense_ns_per_item =
        sparse_ns_per_item * (1.0 - sparse_share) / sparse_share;
    assert(net_dense_split.size() == spec.nets.size());
    for (std::size_t i = 0; i < spec.nets.size(); ++i) {
        spec.nets[i].dense_ns_per_item =
            dense_ns_per_item * net_dense_split[i];
        spec.nets[i].dense_fixed_ns = fixed_ns_per_batch;
    }
}

} // namespace

std::vector<double>
powerLawLadder(std::size_t n, double largest, double total)
{
    assert(n > 0 && largest > 0.0);
    assert(total >= largest * 0.999);
    assert(total <= largest * static_cast<double>(n) * 1.001);
    if (n == 1)
        return {largest};

    // ladderTotal is monotone decreasing in s; bisect.
    double lo = 0.0, hi = 50.0;
    for (int iter = 0; iter < 200; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (ladderTotal(n, largest, mid) > total)
            lo = mid;
        else
            hi = mid;
    }
    const double s = 0.5 * (lo + hi);
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = largest * std::pow(static_cast<double>(i + 1), -s);
    return out;
}

ModelSpec
makeDrm1()
{
    ModelSpec spec;
    spec.name = "DRM1";
    spec.mean_items = 200.0;
    spec.items_alpha = 2.0;
    spec.items_min = 100.0;
    spec.items_max = 4000.0;
    spec.default_batch_size = 64;
    spec.request_bytes_per_item = 512.0;
    spec.nets = {{0, "net1", 0.0, 0.0}, {1, "net2", 0.0, 0.0}};

    // Net 1: small but hot — 72 tables, 33.58 GiB, ~94% of pooling work.
    addNetTables(spec, 0, 72, 33.58, 2.0, 126652.7, 0.12);
    // Net 2: large but cold — 185 tables, 160.47 GiB (largest table 3.6 GB).
    addNetTables(spec, 1, 185, 160.47, 3.6 * 1e9 / kGiB, 8010.7, 0.10);

    spec.compute_attribution = {
        {OpClass::Dense, 0.470},
        {OpClass::MemoryTransform, 0.160},
        {OpClass::FeatureTransform, 0.120},
        {OpClass::Sparse, 0.097},
        {OpClass::Activations, 0.060},
        {OpClass::ScaleClip, 0.050},
        {OpClass::Fill, 0.025},
        {OpClass::Hash, 0.018},
    };
    calibrateDense(spec, 0.097, {0.40, 0.60}, 50000.0);
    return spec;
}

ModelSpec
makeDrm2()
{
    ModelSpec spec;
    spec.name = "DRM2";
    spec.mean_items = 100.0;
    spec.items_alpha = 2.0;
    spec.items_min = 50.0;
    spec.items_max = 2000.0;
    spec.default_batch_size = 64;
    spec.request_bytes_per_item = 512.0;
    spec.nets = {{0, "net1", 0.0, 0.0}, {1, "net2", 0.0, 0.0}};

    // 133 tables, 138 GB total, largest 6.7 GB (in the cold net).
    addNetTables(spec, 0, 40, 24.0, 1.5, 51000.0, 0.15);
    addNetTables(spec, 1, 93, 114.53, 6.7 * 1e9 / kGiB, 9000.0, 0.10);

    spec.compute_attribution = {
        {OpClass::Dense, 0.490},
        {OpClass::MemoryTransform, 0.150},
        {OpClass::FeatureTransform, 0.110},
        {OpClass::Sparse, 0.096},
        {OpClass::Activations, 0.060},
        {OpClass::ScaleClip, 0.050},
        {OpClass::Fill, 0.026},
        {OpClass::Hash, 0.018},
    };
    calibrateDense(spec, 0.096, {0.40, 0.60}, 50000.0);
    return spec;
}

ModelSpec
makeDrm3()
{
    ModelSpec spec;
    spec.name = "DRM3";
    spec.mean_items = 60.0;
    spec.items_alpha = 2.0;
    spec.items_min = 30.0;
    spec.items_max = 1000.0;
    // Requests are small enough for one batch at the production default.
    spec.default_batch_size = 256;
    spec.request_bytes_per_item = 512.0;
    spec.nets = {{0, "net1", 0.0, 0.0}};

    // The dominant table: 178.8 GB, pooling factor 1 per *request*.
    TableSpec dominant;
    dominant.id = 0;
    dominant.name = "DRM3_net0_dominant";
    dominant.net_id = 0;
    dominant.dim = 32;
    dominant.rows = static_cast<std::int64_t>(178.8e9 / (4.0 * 32));
    dominant.pooling_per_item = 1.0;
    dominant.pooling_per_request = true;
    spec.tables.push_back(dominant);

    // 38 smaller tables totalling ~21.2 GiB.
    addNetTables(spec, 0, 38, 21.25, 3.0, 3100.0, 0.15);

    spec.compute_attribution = {
        {OpClass::Dense, 0.620},
        {OpClass::MemoryTransform, 0.100},
        {OpClass::FeatureTransform, 0.070},
        {OpClass::Sparse, 0.031},
        {OpClass::Activations, 0.080},
        {OpClass::ScaleClip, 0.060},
        {OpClass::Fill, 0.020},
        {OpClass::Hash, 0.019},
    };
    calibrateDense(spec, 0.031, {1.0}, 50000.0);
    return spec;
}

std::vector<ModelSpec>
makeAllModels()
{
    return {makeDrm1(), makeDrm2(), makeDrm3()};
}

ModelSpec
makeCacheStudySpec()
{
    ModelSpec spec;
    spec.name = "cache-study";
    spec.mean_items = 64.0;
    spec.items_alpha = 1.3;
    spec.items_min = 16.0;
    spec.items_max = 256.0;
    spec.nets = {{0, "net", 1.0, 0.0}};
    TableSpec t;
    t.id = 0;
    t.name = "emb";
    t.rows = 200000;
    t.dim = 32;
    t.pooling_per_item = 2.0;
    spec.tables.push_back(t);
    return spec;
}

ModelSpec
makeShardedCacheStudySpec()
{
    ModelSpec spec;
    spec.name = "sharded-cache-study";
    spec.mean_items = 64.0;
    spec.items_alpha = 1.3;
    spec.items_min = 16.0;
    spec.items_max = 256.0;
    spec.nets = {{0, "net", 1.0, 0.0}};
    for (int i = 0; i < 8; ++i) {
        TableSpec t;
        t.id = i;
        t.name = "emb" + std::to_string(i);
        t.rows = 50000;
        t.dim = 32;
        t.pooling_per_item = 2.0;
        spec.tables.push_back(t);
    }
    return spec;
}

std::vector<GrowthPoint>
modelGrowthSeries()
{
    // Three years of quarterly growth: features ~10x, capacity ~20x
    // (capacity grows faster because embedding dimensions and hash sizes
    // grow alongside feature count).
    std::vector<GrowthPoint> series;
    const int quarters = 13;
    for (int q = 0; q < quarters; ++q) {
        const double f = static_cast<double>(q) /
                         static_cast<double>(quarters - 1);
        GrowthPoint p;
        p.year_quarter = q;
        p.num_features = 1.0 * std::pow(10.0, f);
        p.capacity_gb = 12.0 * std::pow(20.0, f);
        series.push_back(p);
    }
    return series;
}

} // namespace dri::model
