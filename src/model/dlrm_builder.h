/**
 * @file
 * Functional DLRM construction: turns a ModelSpec into executable
 * graph::NetDefs with real weights and (scaled-down) embedding tables.
 *
 * The builder produces the *singular* (non-distributed) form of Fig. 2a:
 * per net, a bottom dense stack, one SparseLengthsSum per table, dot-product
 * feature interaction, and a top dense stack; successive nets consume the
 * previous net's output (DRM1/DRM2's user net feeds the content net). The
 * core partitioner rewrites these nets into the distributed form of Fig. 2b.
 *
 * Physical scale is independent of the spec's logical scale: tables are
 * materialized with a small common embedding dimension and hashed backing so
 * 200 GB models remain executable in tests.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/net.h"
#include "graph/workspace.h"
#include "model/model_spec.h"

namespace dri::model {

/** Blob-naming conventions shared with the partitioner. */
std::string idsBlobName(const TableSpec &table);
std::string embBlobName(const TableSpec &table);
std::string netOutputBlobName(int net_id);

/** A functional, runnable model. */
struct BuiltModel
{
    const ModelSpec *spec = nullptr;
    /** One executable net per NetSpec, in execution order. */
    std::vector<graph::NetDef> nets;
    /** Table objects indexed by TableSpec::id. */
    std::vector<std::shared_ptr<tensor::VirtualEmbeddingTable>> tables;

    int dense_input_dim = 0;
    int embedding_dim = 0;

    /** Register tables and parameter blobs into a workspace. */
    void prepareWorkspace(graph::Workspace &ws) const;

    /** Name of the model's final output blob. */
    std::string outputBlob() const;

  private:
    friend class DlrmBuilder;
    /** Parameter blobs (weights/biases) to install into workspaces. */
    std::vector<std::pair<std::string, tensor::Tensor>> params_;
};

/** Builds functional models from specifications. */
class DlrmBuilder
{
  public:
    /**
     * @param spec           Model specification (borrowed; must outlive the
     *                       BuiltModel).
     * @param dense_input_dim Width of the dense-feature input.
     * @param embedding_dim  Common physical embedding dimension.
     * @param hidden_dim     Width of dense hidden layers.
     * @param seed           Deterministic parameter/table initialization.
     */
    DlrmBuilder(const ModelSpec &spec, int dense_input_dim = 16,
                int embedding_dim = 8, int hidden_dim = 24,
                std::uint64_t seed = 0x5eed);

    BuiltModel build() const;

  private:
    const ModelSpec &spec_;
    int dense_input_dim_;
    int embedding_dim_;
    int hidden_dim_;
    std::uint64_t seed_;
};

} // namespace dri::model
