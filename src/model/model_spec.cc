#include "model/model_spec.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dri::model {

std::int64_t
ModelSpec::totalCapacityBytes() const
{
    std::int64_t total = 0;
    for (const auto &t : tables)
        total += t.logicalBytes();
    return total;
}

std::int64_t
ModelSpec::largestTableBytes() const
{
    std::int64_t largest = 0;
    for (const auto &t : tables)
        largest = std::max(largest, t.logicalBytes());
    return largest;
}

std::vector<const TableSpec *>
ModelSpec::tablesForNet(int net_id) const
{
    std::vector<const TableSpec *> out;
    for (const auto &t : tables)
        if (t.net_id == net_id)
            out.push_back(&t);
    return out;
}

double
ModelSpec::expectedPoolingPerRequest() const
{
    double total = 0.0;
    for (const auto &t : tables)
        total += t.expectedLookups(mean_items);
    return total;
}

double
ModelSpec::expectedPoolingPerRequest(int net_id) const
{
    double total = 0.0;
    for (const auto &t : tables)
        if (t.net_id == net_id)
            total += t.expectedLookups(mean_items);
    return total;
}

double
ModelSpec::sparseComputeShare() const
{
    auto it = compute_attribution.find(graph::OpClass::Sparse);
    return it == compute_attribution.end() ? 0.0 : it->second;
}

bool
ModelSpec::validate(std::string *error) const
{
    std::ostringstream err;
    bool ok = true;
    if (nets.empty() || tables.empty()) {
        err << "model must have nets and tables; ";
        ok = false;
    }
    for (const auto &t : tables) {
        bool net_found = false;
        for (const auto &n : nets)
            net_found = net_found || n.id == t.net_id;
        if (!net_found) {
            err << "table " << t.name << " references unknown net "
                << t.net_id << "; ";
            ok = false;
        }
        if (t.rows <= 0 || t.dim <= 0) {
            err << "table " << t.name << " has non-positive geometry; ";
            ok = false;
        }
        if (t.pooling_per_item < 0.0) {
            err << "table " << t.name << " has negative pooling; ";
            ok = false;
        }
    }
    if (!compute_attribution.empty()) {
        double sum = 0.0;
        for (const auto &kv : compute_attribution)
            sum += kv.second;
        if (std::abs(sum - 1.0) > 1e-6) {
            err << "compute attribution sums to " << sum << ", not 1; ";
            ok = false;
        }
    }
    if (mean_items <= 0.0 || items_min <= 0.0 || items_max < items_min) {
        err << "bad request-size distribution; ";
        ok = false;
    }
    if (default_batch_size <= 0) {
        err << "bad batch size; ";
        ok = false;
    }
    if (error)
        *error = err.str();
    return ok;
}

} // namespace dri::model
