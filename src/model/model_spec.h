/**
 * @file
 * Declarative model specification: the metadata that drives capacity-driven
 * sharding and the request-level cost profiles. A ModelSpec captures every
 * model attribute the paper identifies as relevant (Section V-A): number of
 * nets, table count/size/pooling distributions, request size distribution,
 * batch sizing, and operator compute attribution.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/operators.h"
#include "tensor/embedding_table.h"

namespace dri::model {

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

/**
 * One embedding table's static attributes. Sizes are logical (paper scale).
 */
struct TableSpec
{
    int id = 0;
    std::string name;
    int net_id = 0;          //!< owning net (DRM1/DRM2 have 2 nets)
    std::int64_t rows = 0;
    std::int64_t dim = 32;

    /**
     * Expected embedding lookups contributed by this table. For item-scaled
     * tables this is per ranked item; for per-request tables (e.g. DRM3's
     * dominant user table, pooling factor 1) it is per request regardless of
     * request size.
     */
    double pooling_per_item = 0.0;
    bool pooling_per_request = false;

    /** Storage precision; compression passes lower it (Table III). */
    tensor::Precision precision = tensor::Precision::Fp32;
    /** Fraction of rows removed by magnitude pruning. */
    double prune_fraction = 0.0;

    std::int64_t
    logicalBytes() const
    {
        const double kept_rows =
            static_cast<double>(rows) * (1.0 - prune_fraction);
        return static_cast<std::int64_t>(
            kept_rows *
            static_cast<double>(tensor::rowBytes(precision, dim)));
    }

    /** Bytes of one stored row at the current precision. */
    std::int64_t storedRowBytes() const
    {
        return tensor::rowBytes(precision, dim);
    }

    /** Expected lookups for a request with the given item count. */
    double expectedLookups(double items) const
    {
        return pooling_per_request ? pooling_per_item
                                   : pooling_per_item * items;
    }
};

/** One net's dense-path attributes. */
struct NetSpec
{
    int id = 0;
    std::string name;

    /**
     * Non-sparse (dense + transform + activation) CPU nanoseconds per ranked
     * item attributed to this net, on the reference platform.
     */
    double dense_ns_per_item = 0.0;

    /** Fixed per-batch CPU nanoseconds (net setup, small fixed layers). */
    double dense_fixed_ns = 0.0;
};

/** Full model specification. */
struct ModelSpec
{
    std::string name;
    std::vector<NetSpec> nets;
    std::vector<TableSpec> tables;

    /** Request-size (ranked items) distribution: bounded Pareto. */
    double mean_items = 256.0;
    double items_alpha = 1.15;
    double items_min = 16.0;
    double items_max = 4096.0;

    /** Production-default batch size (items per inference batch). */
    int default_batch_size = 64;

    /** Per-item dense-feature payload bytes in the request. */
    double request_bytes_per_item = 512.0;

    /**
     * Operator compute attribution (Fig. 4): fraction of non-distributed
     * operator CPU per op class. Fractions sum to 1.
     */
    std::map<graph::OpClass, double> compute_attribution;

    // -- Derived helpers ---------------------------------------------------

    std::int64_t totalCapacityBytes() const;
    std::int64_t largestTableBytes() const;
    std::size_t tableCount() const { return tables.size(); }

    /** Tables belonging to the given net. */
    std::vector<const TableSpec *> tablesForNet(int net_id) const;

    /** Expected total lookups per mean-sized request. */
    double expectedPoolingPerRequest() const;

    /** Expected lookups per mean-sized request for one net. */
    double expectedPoolingPerRequest(int net_id) const;

    /** Fraction of operator compute attributed to sparse ops. */
    double sparseComputeShare() const;

    /** Validate internal consistency (ids, fractions, positivity). */
    bool validate(std::string *error = nullptr) const;
};

} // namespace dri::model
