#include "model/dlrm_builder.h"

#include <cassert>
#include <cmath>

#include "stats/rng.h"

namespace dri::model {

std::string
idsBlobName(const TableSpec &table)
{
    return "ids_" + table.name;
}

std::string
embBlobName(const TableSpec &table)
{
    return "emb_" + table.name;
}

std::string
netOutputBlobName(int net_id)
{
    return "output_net" + std::to_string(net_id);
}

void
BuiltModel::prepareWorkspace(graph::Workspace &ws) const
{
    assert(spec);
    for (std::size_t i = 0; i < tables.size(); ++i)
        ws.addTable(spec->tables[i].name, tables[i]);
    for (const auto &kv : params_)
        ws.createTensor(kv.first) = kv.second;
}

std::string
BuiltModel::outputBlob() const
{
    assert(spec && !spec->nets.empty());
    return netOutputBlobName(spec->nets.back().id);
}

DlrmBuilder::DlrmBuilder(const ModelSpec &spec, int dense_input_dim,
                         int embedding_dim, int hidden_dim,
                         std::uint64_t seed)
    : spec_(spec), dense_input_dim_(dense_input_dim),
      embedding_dim_(embedding_dim), hidden_dim_(hidden_dim), seed_(seed)
{
    assert(dense_input_dim > 0 && embedding_dim > 0 && hidden_dim > 0);
}

namespace {

tensor::Tensor
randomMatrix(std::int64_t rows, std::int64_t cols, stats::Rng &rng)
{
    tensor::Tensor t(rows, cols);
    const double scale = 1.0 / std::sqrt(static_cast<double>(cols));
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t.at(i) = static_cast<float>(rng.gaussian(0.0, scale));
    return t;
}

tensor::Tensor
zeroVector(std::int64_t n)
{
    return tensor::Tensor(n);
}

} // namespace

BuiltModel
DlrmBuilder::build() const
{
    BuiltModel built;
    built.spec = &spec_;
    built.dense_input_dim = dense_input_dim_;
    built.embedding_dim = embedding_dim_;

    stats::Rng rng(seed_);

    // Materialize tables at physical scale: the logical geometry stays in
    // the spec; here every table gets the common embedding dimension.
    built.tables.reserve(spec_.tables.size());
    for (const auto &t : spec_.tables) {
        const std::int64_t physical_rows = 256;
        built.tables.push_back(
            std::make_shared<tensor::VirtualEmbeddingTable>(
                t.rows, embedding_dim_,
                seed_ ^ static_cast<std::uint64_t>(t.id) * 0x9e37ULL,
                physical_rows));
    }

    std::string prev_output; // previous net's output blob, if any
    for (std::size_t ni = 0; ni < spec_.nets.size(); ++ni) {
        const NetSpec &net_spec = spec_.nets[ni];
        graph::NetDef net("net" + std::to_string(net_spec.id));
        const std::string prefix = "n" + std::to_string(net_spec.id) + "_";

        // -- Bottom dense stack -------------------------------------------
        // Input: dense features, concatenated with the previous net's
        // output for chained nets (user net feeds content net).
        std::string bottom_in = "dense_input";
        net.declareInput("dense_input");
        if (!prev_output.empty()) {
            net.emplace<graph::ConcatOp>(
                std::vector<std::string>{"dense_input", prev_output},
                prefix + "bottom_in");
            bottom_in = prefix + "bottom_in";
            net.declareInput(prev_output);
        }
        const std::int64_t bottom_in_dim =
            dense_input_dim_ + (prev_output.empty() ? 0 : 1);

        const std::string w0 = prefix + "w_bottom0";
        const std::string b0 = prefix + "b_bottom0";
        built.params_.emplace_back(
            w0, randomMatrix(hidden_dim_, bottom_in_dim, rng));
        built.params_.emplace_back(b0, zeroVector(hidden_dim_));
        net.emplace<graph::FullyConnectedOp>(bottom_in, w0, b0,
                                             prefix + "h0");
        net.emplace<graph::ReluOp>(prefix + "h0");

        const std::string w1 = prefix + "w_bottom1";
        const std::string b1 = prefix + "b_bottom1";
        built.params_.emplace_back(
            w1, randomMatrix(embedding_dim_, hidden_dim_, rng));
        built.params_.emplace_back(b1, zeroVector(embedding_dim_));
        net.emplace<graph::FullyConnectedOp>(prefix + "h0", w1, b1,
                                             prefix + "dense_block");
        net.emplace<graph::ReluOp>(prefix + "dense_block");

        // -- Sparse lookups -----------------------------------------------
        std::vector<std::string> blocks{prefix + "dense_block"};
        for (const auto &t : spec_.tables) {
            if (t.net_id != net_spec.id)
                continue;
            net.declareInput(idsBlobName(t));
            net.emplace<graph::SparseLengthsSumOp>(t.name, idsBlobName(t),
                                                   embBlobName(t));
            blocks.push_back(embBlobName(t));
        }

        // -- Feature interaction + top dense stack ------------------------
        net.emplace<graph::DotInteractionOp>(blocks, prefix + "interact");
        const std::int64_t n_blocks = static_cast<std::int64_t>(blocks.size());
        const std::int64_t interact_dim =
            embedding_dim_ + n_blocks * (n_blocks - 1) / 2;

        const std::string wt = prefix + "w_top0";
        const std::string bt = prefix + "b_top0";
        built.params_.emplace_back(
            wt, randomMatrix(hidden_dim_, interact_dim, rng));
        built.params_.emplace_back(bt, zeroVector(hidden_dim_));
        net.emplace<graph::FullyConnectedOp>(prefix + "interact", wt, bt,
                                             prefix + "top0");
        net.emplace<graph::ReluOp>(prefix + "top0");

        const std::string wo = prefix + "w_out";
        const std::string bo = prefix + "b_out";
        built.params_.emplace_back(wo, randomMatrix(1, hidden_dim_, rng));
        built.params_.emplace_back(bo, zeroVector(1));
        const std::string out = netOutputBlobName(net_spec.id);
        net.emplace<graph::FullyConnectedOp>(prefix + "top0", wo, bo, out);
        net.emplace<graph::SigmoidOp>(out);
        net.declareOutput(out);

        prev_output = out;
        built.nets.push_back(std::move(net));
    }
    return built;
}

} // namespace dri::model
