/**
 * @file
 * Generators for the three production-like models the paper evaluates
 * (Section V-A), plus the historical growth series of Fig. 1.
 *
 * Every published attribute is reproduced:
 *  - DRM1: 200 GB, 257 tables, largest 3.6 GB, long-tail sizes, two nets;
 *    sparse ops are 9.7% of operator compute; Net 1 holds ~33.6 GiB but
 *    ~94% of pooling work, Net 2 holds ~160 GiB with low pooling.
 *  - DRM2: 138 GB, 133 tables, largest 6.7 GB, two nets, smaller requests;
 *    sparse ops 9.6% of compute.
 *  - DRM3: 200 GB, 39 tables, single net, dominated by one 178.8 GB table
 *    with pooling factor 1; sparse ops 3.1% of compute.
 */
#pragma once

#include <vector>

#include "model/model_spec.h"

namespace dri::model {

/** Reference cost of one embedding-row gather, used for calibration. */
constexpr double kNsPerLookup = 25.0;

ModelSpec makeDrm1();
ModelSpec makeDrm2();
ModelSpec makeDrm3();

/** All three models, in order. */
std::vector<ModelSpec> makeAllModels();

/**
 * Single-table model for trace-driven cache studies: 200k rows x dim 32,
 * Zipf-distributed item counts. One table keeps per-policy behavior
 * legible, and the cache bench, example, and property tests must all
 * measure the same spec for their hit-rate curves to cross-validate.
 */
ModelSpec makeCacheStudySpec();

/**
 * Multi-table sibling of makeCacheStudySpec for per-shard trace-slicing
 * studies: eight equal tables (50k rows x dim 32, uniform pooling) on one
 * net, so a capacity-balanced plan routes statistically identical slices
 * to every shard (the uniform-sharding baseline) while a hand-skewed plan
 * concentrates traffic (the divergence case).
 */
ModelSpec makeShardedCacheStudySpec();

/**
 * Power-law size ladder: n positive values with the given maximum and total
 * (largest first). Solves for the exponent by bisection; requires
 * largest <= total <= n * largest.
 */
std::vector<double> powerLawLadder(std::size_t n, double largest,
                                   double total);

/** One point of the Fig. 1 historical growth trajectory. */
struct GrowthPoint
{
    int year_quarter;      //!< quarters since the series start
    double num_features;   //!< sparse-feature count, relative
    double capacity_gb;    //!< total embedding capacity
};

/**
 * Synthetic model-growth trajectory (substitution for Fig. 1's production
 * history): both feature count and capacity grow by roughly an order of
 * magnitude across three years, capacity faster than features.
 */
std::vector<GrowthPoint> modelGrowthSeries();

} // namespace dri::model
