/**
 * @file
 * Model compression: row-wise linear quantization plus magnitude pruning,
 * the techniques deployed on production models (Section VII-D, Table III).
 * All tables quantize to at least 8 bits; sufficiently large tables go to
 * 4 bits; pruning removes rows selected by the model architect (here: a
 * per-policy fraction on large tables). Compression composes with — and
 * does not replace — distributed inference: the paper's point is that even
 * a 5.56x size reduction leaves models too large for commodity servers.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "model/model_spec.h"

namespace dri::compress {

/** Quantization/pruning policy knobs. */
struct CompressionPolicy
{
    /** Precision for tables below the large-table threshold. */
    tensor::Precision small_table_precision = tensor::Precision::Int8;
    /** Precision for tables at or above the threshold. */
    tensor::Precision large_table_precision = tensor::Precision::Int4;
    /** Logical-byte threshold separating small from large tables. */
    std::int64_t large_table_threshold_bytes = 512LL * 1024 * 1024;
    /** Row fraction pruned from large tables. */
    double large_table_prune_fraction = 0.20;
    /** Row fraction pruned from small tables. */
    double small_table_prune_fraction = 0.05;
};

/** Outcome summary of a compression pass. */
struct CompressionReport
{
    std::int64_t uncompressed_bytes = 0;
    std::int64_t compressed_bytes = 0;
    std::size_t tables_int8 = 0;
    std::size_t tables_int4 = 0;

    double ratio() const
    {
        return compressed_bytes > 0
                   ? static_cast<double>(uncompressed_bytes) /
                         static_cast<double>(compressed_bytes)
                   : 0.0;
    }
};

/**
 * Apply the policy to a model spec in place (precision + prune fields of
 * each TableSpec), returning the before/after accounting.
 */
CompressionReport compressSpec(model::ModelSpec &spec,
                               const CompressionPolicy &policy);

/**
 * Apply the same policy to materialized tables (functional path): physical
 * values are re-encoded with quantization error and pruned rows read as
 * zero.
 */
void compressTables(
    const model::ModelSpec &spec,
    std::vector<std::shared_ptr<tensor::VirtualEmbeddingTable>> &tables,
    const CompressionPolicy &policy);

} // namespace dri::compress
