#include "compress/compression.h"

#include <cassert>

namespace dri::compress {

namespace {

bool
isLarge(const model::TableSpec &table, const CompressionPolicy &policy)
{
    // Judge size at the uncompressed footprint so the decision is stable
    // across repeated passes.
    return table.rows * table.dim * 4 >= policy.large_table_threshold_bytes;
}

} // namespace

CompressionReport
compressSpec(model::ModelSpec &spec, const CompressionPolicy &policy)
{
    CompressionReport report;
    for (auto &t : spec.tables) {
        report.uncompressed_bytes += t.rows * t.dim * 4;
        if (isLarge(t, policy)) {
            t.precision = policy.large_table_precision;
            t.prune_fraction = policy.large_table_prune_fraction;
        } else {
            t.precision = policy.small_table_precision;
            t.prune_fraction = policy.small_table_prune_fraction;
        }
        if (t.precision == tensor::Precision::Int4)
            ++report.tables_int4;
        else if (t.precision == tensor::Precision::Int8)
            ++report.tables_int8;
        report.compressed_bytes += t.logicalBytes();
    }
    return report;
}

void
compressTables(
    const model::ModelSpec &spec,
    std::vector<std::shared_ptr<tensor::VirtualEmbeddingTable>> &tables,
    const CompressionPolicy &policy)
{
    assert(tables.size() == spec.tables.size());
    for (std::size_t i = 0; i < tables.size(); ++i) {
        const auto &t = spec.tables[i];
        auto &table = tables[i];
        if (isLarge(t, policy)) {
            table->quantize(policy.large_table_precision);
            table->prune(policy.large_table_prune_fraction);
        } else {
            table->quantize(policy.small_table_precision);
            table->prune(policy.small_table_prune_fraction);
        }
    }
}

} // namespace dri::compress
