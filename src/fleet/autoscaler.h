/**
 * @file
 * Fleet autoscaling policies: who decides the per-epoch replica vector.
 *
 * An Autoscaler is consulted once per load epoch, *before* the epoch
 * runs, and returns the sparse-shard replica vector the fleet should
 * serve that epoch with. Three policies span the operational design
 * space:
 *
 *  - StaticPeak: provision once for the diurnal peak forecast and never
 *    reconfigure. The paper's single-operating-point sizing applied to a
 *    diurnal world: every off-peak machine-hour is waste, but the SLO is
 *    safe by construction.
 *  - Reactive: classic feedback scaling on *measured* signals — scale up
 *    when the last epoch's utilization or P99 crossed the high
 *    watermark, scale down when utilization sat under the low watermark
 *    with latency slack. Hysteresis (the watermark gap) prevents
 *    flapping; a cooldown bounds reconfiguration frequency; scale-ups
 *    are never cooldown-blocked (capacity emergencies outrank churn).
 *  - Predictive: provision epoch t from the load model's *forecast* for
 *    epoch t by invoking the capacity planner at the SLO boundary — the
 *    composition of sched::ProvisionLoop (load-proportional replica
 *    vector from measured per-shard demand) and sched::CapacitySearch
 *    (verify the vector actually sustains the target under the SLO,
 *    bumping replicas until it does).
 *
 * Every policy produces vectors the FleetSim applies through the same
 * reconfiguration machinery (provisioning lag, cold caches, result-cache
 * invalidation), so their FleetStats ledgers are directly comparable.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/serving.h"
#include "core/sharding_plan.h"
#include "model/model_spec.h"
#include "obs/slo_monitor.h"
#include "sched/capacity_search.h"
#include "workload/diurnal.h"

namespace dri::fleet {

/** What a policy may observe about the epoch that just finished. */
struct EpochObservation
{
    int epoch = 0;
    /** Replica vector the epoch actually served with. */
    std::vector<int> replicas;
    double offered_qps = 0.0;
    double p99_ms = 0.0;
    double shed_rate = 0.0;
    /** Mean worker-pool utilization per sparse shard. */
    std::vector<double> shard_utilization;
    double max_shard_utilization = 0.0;

    // ---- Event counts behind the rates (what error-budget accounting
    //      needs: a burn rate is bad events over total events, not a
    //      quantile). Zero for policies that predate them.
    /** Requests offered this epoch (served + shed). */
    std::int64_t requests = 0;
    std::int64_t shed_requests = 0;
    /** SERVED requests whose e2e latency exceeded the SLO P99 target. */
    std::int64_t over_latency_target = 0;
};

/** Per-epoch replica-vector policy. */
class Autoscaler
{
  public:
    virtual ~Autoscaler() = default;

    virtual std::string name() const = 0;

    /**
     * The replica vector for `epoch`, decided before it runs. `last` is
     * the previous epoch's observation (null before the first epoch).
     * The load model's forecast is visible; its realized (burst) rate is
     * not — that is the information asymmetry the policies differ on.
     */
    virtual std::vector<int> decide(int epoch,
                                    const workload::DiurnalLoadModel &load,
                                    const EpochObservation *last) = 0;
};

/** Shared planner parameters (StaticPeak + Predictive). */
struct PlannerConfig
{
    sched::SloSpec slo;
    /** Provision for forecast * headroom (burst + error margin). */
    double headroom = 1.25;
    /** Per-replica utilization ceiling ProvisionLoop sizes to. */
    double target_utilization = 0.6;
    int min_replicas = 1;
    int max_replicas = 8;
    /** ProvisionLoop fixed-point iteration cap per plan. */
    int provision_iterations = 4;
    /** Request-sample length for planning simulations. */
    std::size_t planning_requests = 256;
    /**
     * Quantize target rates onto a geometric grid before planning, so a
     * repeating diurnal profile reuses cached plans instead of
     * re-simulating every epoch (and small forecast wiggles do not
     * thrash the fleet).
     */
    double qps_quantum = 1.10;
    /**
     * Verify each plan with a CapacitySearch probe at the target rate
     * and bump every shard by one replica (up to max_replicas) until the
     * probe meets the SLO — the "capacity search at the SLO boundary"
     * step that turns utilization-sized vectors into SLO-safe ones.
     */
    bool verify_slo_boundary = true;
    int max_verify_bumps = 3;
    std::uint64_t planning_seed = 0x91a2;
};

/**
 * The ProvisionLoop + CapacitySearch composition both planned policies
 * share: replicaVectorFor(qps) returns the cheapest per-shard replica
 * vector the planner believes sustains `qps` under the SLO, caching by
 * quantized rate.
 */
class CapacityPlanner
{
  public:
    /**
     * `planning_stream` is the request sample every plan simulates; an
     * empty stream synthesizes an all-distinct one from planning_seed.
     * Pass the load model's own traffic (e.g. epochRequests(0, n)) so
     * plans price what the fleet actually serves — a planner fed
     * repeat-free traffic over-provisions a result-cache-heavy fleet.
     */
    CapacityPlanner(const model::ModelSpec &spec,
                    const core::ShardingPlan &plan,
                    core::ServingConfig serving, PlannerConfig config,
                    std::vector<workload::Request> planning_stream = {});

    /** Plan (or fetch the cached plan) for one target rate. */
    std::vector<int> replicaVectorFor(double qps);

    /** Rate quantization: the grid point at or above `qps`. */
    double quantize(double qps) const;

    const PlannerConfig &config() const { return config_; }

    /** Planning simulations executed so far (cache-miss count). */
    int plansComputed() const { return plans_computed_; }

  private:
    model::ModelSpec spec_;
    core::ShardingPlan plan_;
    core::ServingConfig serving_;
    PlannerConfig config_;
    std::vector<workload::Request> planning_requests_;
    /** Keyed by quantized rate (stable: quantize() is deterministic). */
    std::map<double, std::vector<int>> cache_;
    int plans_computed_ = 0;
};

/** Provision once for the diurnal peak; never reconfigure. */
class StaticPeakAutoscaler : public Autoscaler
{
  public:
    StaticPeakAutoscaler(std::shared_ptr<CapacityPlanner> planner);

    std::string name() const override { return "static-peak"; }
    std::vector<int> decide(int epoch,
                            const workload::DiurnalLoadModel &load,
                            const EpochObservation *last) override;

  private:
    std::shared_ptr<CapacityPlanner> planner_;
    std::vector<int> vector_;
};

/** Reactive watermark parameters. */
struct ReactiveConfig
{
    sched::SloSpec slo;
    /**
     * Scale up when any shard's mean utilization crosses this. The band
     * sits LOWER than a forecast planner's target utilization on
     * purpose: a feedback controller reacts a full epoch late, so it
     * must hold enough slack to absorb a rise within its reaction time —
     * which is exactly the efficiency a trustworthy forecast buys back.
     */
    double high_utilization = 0.5;
    /** Scale down only when every shard sits under this. */
    double low_utilization = 0.3;
    /** Scale up when observed P99 exceeds this fraction of the SLO. */
    double p99_guard_fraction = 0.85;
    /**
     * Epochs that must pass after any reconfiguration before another
     * *scale-down* is allowed. Scale-ups are exempt: refusing capacity
     * during an overload to respect churn budgets inverts priorities.
     */
    int cooldown_epochs = 2;
    /** Per-shard replica step per decision (utilization drift). */
    int step = 1;
    /**
     * Per-shard step when LATENCY is breaching (P99 past the guard or
     * shedding): jump, don't creep — a controller that recovers an SLO
     * breach one replica at a time spends epochs in violation. The
     * overshoot is what a reactive fleet pays for not having a forecast;
     * the cooldown then walks the surplus back down slowly.
     */
    int pressure_step = 2;
    int min_replicas = 1;
    int max_replicas = 8;
};

/** Measured-signal feedback scaler with hysteresis + cooldown. */
class ReactiveAutoscaler : public Autoscaler
{
  public:
    /** `initial` seeds epoch 0 (typically the StaticPeak vector). */
    ReactiveAutoscaler(std::vector<int> initial, ReactiveConfig config);

    std::string name() const override { return "reactive"; }
    std::vector<int> decide(int epoch,
                            const workload::DiurnalLoadModel &load,
                            const EpochObservation *last) override;

    const ReactiveConfig &config() const { return config_; }

  private:
    std::vector<int> vector_;
    ReactiveConfig config_;
    /** Epoch of the last reconfiguration this policy issued. */
    int last_change_epoch_ = -1000000;
};

/** Burn-rate-driven variant of the reactive policy (src/obs alerts). */
struct BurnRateConfig
{
    /** Steps, watermarks, cooldown, and SLO shared with Reactive. */
    ReactiveConfig base;

    /** Allowed fraction of served requests over the SLO P99 target. */
    double latency_budget_fraction = 0.01;
    /** Allowed shed fraction; <= 0 inherits base.slo.max_shed_rate. */
    double shed_budget_fraction = 0.0;

    /** Burn windows in EPOCHS (the policy's clock is the epoch index). */
    int fast_window_epochs = 1;
    int slow_window_epochs = 4;
    /**
     * Fire when the fast burn reaches this multiple AND the slow burn
     * reaches slow_burn_threshold. Fast at 2x/slow at 1x means "the
     * last epoch burned twice its share and the longer horizon is
     * already over budget" — one bad epoch with a healthy history only
     * arms the alert, a sustained breach fires it.
     */
    double fast_burn_threshold = 2.0;
    double slow_burn_threshold = 1.0;
    int pending_ticks = 1;
    int resolve_ticks = 1;

    /**
     * Budget health required before a scale-down: no alert firing and
     * both slow burns under this fraction of their threshold, for
     * healthy_epochs consecutive epochs (on top of base.cooldown).
     */
    double health_burn_fraction = 0.5;
    int healthy_epochs = 2;
};

/**
 * Scale up when a multi-window burn-rate alert FIRES (the SLO's error
 * budget is provably burning), creep hot shards on the utilization
 * watermark, and scale down only under sustained budget health. Same
 * actuation machinery as ReactiveAutoscaler — the difference under
 * test is purely the trigger: raw-threshold feedback vs error-budget
 * burn rates with hysteresis.
 */
class BurnRateAutoscaler : public Autoscaler
{
  public:
    /** `initial` seeds epoch 0 (typically the StaticPeak vector). */
    BurnRateAutoscaler(std::vector<int> initial, BurnRateConfig config);

    std::string name() const override { return "burn-rate"; }
    std::vector<int> decide(int epoch,
                            const workload::DiurnalLoadModel &load,
                            const EpochObservation *last) override;

    const BurnRateConfig &config() const { return config_; }
    /** The policy's own monitor (alert log inspection in tests). */
    const obs::SloMonitor &monitor() const { return monitor_; }

  private:
    std::vector<int> vector_;
    BurnRateConfig config_;
    obs::SloMonitor monitor_;
    int latency_objective_ = -1;
    int shed_objective_ = -1;
    int last_change_epoch_ = -1000000;
    int healthy_streak_ = 0;
};

/** Forecast-driven planner invocation per epoch. */
class PredictiveAutoscaler : public Autoscaler
{
  public:
    PredictiveAutoscaler(std::shared_ptr<CapacityPlanner> planner);

    std::string name() const override { return "predictive"; }
    std::vector<int> decide(int epoch,
                            const workload::DiurnalLoadModel &load,
                            const EpochObservation *last) override;

  private:
    std::shared_ptr<CapacityPlanner> planner_;
};

// ---------------------------------------------------------------------------
// Policy factory registry.
// ---------------------------------------------------------------------------

/**
 * Everything a registered policy factory may draw on. One inputs bundle
 * constructs ANY registered policy, so study drivers build it once and
 * select policies by name (a CLI flag, a config string, a sweep list)
 * instead of hand-wiring each concrete constructor.
 */
struct AutoscalerInputs
{
    /** Shared capacity planner ("static-peak", "predictive"). */
    std::shared_ptr<CapacityPlanner> planner;
    /** Epoch-0 seed vector for feedback policies (typically the peak
     *  plan), so every policy starts from the same provisioning. */
    std::vector<int> initial_vector;
    /** Watermark actuation parameters ("reactive", and the shared
     *  base the "burn-rate" factory grafts onto burn_rate.base). */
    ReactiveConfig reactive;
    /** Burn-rate trigger parameters ("burn-rate"); its `base` member
     *  is OVERWRITTEN with `reactive` at construction so the two
     *  feedback policies always share one actuation parameterization —
     *  the comparison the studies make is trigger-vs-trigger. */
    BurnRateConfig burn_rate;
};

/** Factory signature: inputs bundle in, constructed policy out. */
using AutoscalerFactory =
    std::function<std::unique_ptr<Autoscaler>(const AutoscalerInputs &)>;

/**
 * Register (or replace) a named factory. The built-ins "static-peak",
 * "reactive", "predictive", and "burn-rate" are pre-registered; tests
 * register scripted policies under their own names. Returns true when
 * an existing registration was replaced.
 */
bool registerAutoscaler(const std::string &name, AutoscalerFactory factory);

/**
 * Construct a registered policy by name. Throws std::invalid_argument
 * naming the known policies when `name` is not registered.
 */
std::unique_ptr<Autoscaler> makeAutoscaler(const std::string &name,
                                           const AutoscalerInputs &inputs);

/** All registered policy names, sorted. */
std::vector<std::string> registeredAutoscalers();

} // namespace dri::fleet
