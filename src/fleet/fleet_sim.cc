#include "fleet/fleet_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <tuple>
#include <utility>

#include "cache/lookup_model.h"
#include "core/analysis.h"
#include "stats/hash.h"

namespace dri::fleet {

namespace {

/** FNV-1a over raw bytes: the fingerprint accumulator. */
struct Fnv
{
    std::uint64_t h = 0xcbf29ce484222325ULL;

    void
    bytes(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const unsigned char *>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 0x100000001b3ULL;
        }
    }

    void
    add(double v)
    {
        std::uint64_t bits = 0;
        static_assert(sizeof bits == sizeof v, "double must be 64-bit");
        std::memcpy(&bits, &v, sizeof bits);
        bytes(&bits, sizeof bits);
    }

    void add(std::int64_t v) { bytes(&v, sizeof v); }
    void add(int v) { bytes(&v, sizeof v); }
    void add(bool v) { const char c = v ? 1 : 0; bytes(&c, 1); }
};

double
meanOf(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double sum = 0.0;
    for (const double x : v)
        sum += x;
    return sum / static_cast<double>(v.size());
}

} // namespace

// ---------------------------------------------------------------------------
// TelemetryLedger.
// ---------------------------------------------------------------------------

int
TelemetryLedger::alertCount(obs::AlertTransition t) const
{
    int n = 0;
    for (const auto &a : alerts)
        n += a.transition == t ? 1 : 0;
    return n;
}

std::uint64_t
TelemetryLedger::fingerprint() const
{
    Fnv fnv;
    fnv.add(static_cast<std::int64_t>(epochs.size()));
    for (const auto &e : epochs) {
        fnv.add(e.epoch);
        fnv.add(e.load_ratio);
        fnv.add(e.burst_flagged);
        fnv.add(e.latency_fast_burn);
        fnv.add(e.latency_slow_burn);
        fnv.add(e.shed_fast_burn);
        fnv.add(e.shed_slow_burn);
        fnv.add(e.availability_fast_burn);
        fnv.add(e.availability_slow_burn);
        fnv.add(e.latency_budget_consumed);
        fnv.add(e.alerts_firing);
    }
    fnv.add(static_cast<std::int64_t>(alerts.size()));
    for (const auto &a : alerts) {
        fnv.add(a.t_s);
        fnv.bytes(a.objective.data(), a.objective.size());
        fnv.add(static_cast<int>(a.transition));
        fnv.add(a.fast_burn);
        fnv.add(a.slow_burn);
    }
    fnv.add(burst_eval.episodes);
    fnv.add(burst_eval.detected);
    fnv.add(burst_eval.missed);
    fnv.add(burst_eval.false_positives);
    fnv.add(burst_eval.flags);
    for (const int l : burst_eval.latencies)
        fnv.add(l);
    // Chaos scorecards fold in ONLY when present, so fault-free runs
    // keep the exact telemetry fingerprints they had before the fault
    // layer existed (the committed baselines pin these).
    if (!scenarios.empty()) {
        fnv.add(static_cast<std::int64_t>(scenarios.size()));
        for (const auto &s : scenarios) {
            fnv.bytes(s.scenario.data(), s.scenario.size());
            fnv.add(static_cast<int>(s.kind));
            fnv.add(s.start_epoch);
            fnv.add(s.end_epoch);
            fnv.add(s.blast_radius);
            fnv.add(s.min_attainment);
            fnv.add(s.within_declared_bound);
            fnv.add(s.recovery_epochs);
            fnv.add(s.shed_requests);
        }
    }
    return fnv.h;
}

// ---------------------------------------------------------------------------
// FleetStats.
// ---------------------------------------------------------------------------

double
FleetStats::totalMachineHours() const
{
    double total = 0.0;
    for (const auto &e : epochs)
        total += e.machine_hours;
    return total;
}

double
FleetStats::totalWattHours() const
{
    double total = 0.0;
    for (const auto &e : epochs)
        total += e.watt_hours;
    return total;
}

int
FleetStats::sloViolationEpochs() const
{
    int n = 0;
    for (const auto &e : epochs)
        n += e.slo_violation ? 1 : 0;
    return n;
}

int
FleetStats::steadySloViolationEpochs() const
{
    int n = 0;
    for (const auto &e : epochs)
        n += e.steady_slo_violation ? 1 : 0;
    return n;
}

std::int64_t
FleetStats::totalShedRequests() const
{
    std::int64_t n = 0;
    for (const auto &e : epochs)
        n += e.shed_requests;
    return n;
}

int
FleetStats::reconfigurations() const
{
    int n = 0;
    for (const auto &e : epochs)
        n += e.reconfigured ? 1 : 0;
    return n;
}

std::uint64_t
FleetStats::fingerprint() const
{
    Fnv fnv;
    fnv.add(static_cast<std::int64_t>(epochs.size()));
    for (const auto &e : epochs) {
        fnv.add(e.epoch);
        fnv.add(e.forecast_qps);
        fnv.add(e.offered_qps);
        for (const int r : e.replicas)
            fnv.add(r);
        fnv.add(e.reconfigured);
        fnv.add(e.scaled_up);
        fnv.add(e.scaled_down);
        fnv.add(e.p99_ms);
        fnv.add(e.steady_p99_ms);
        fnv.add(e.shed_rate);
        fnv.add(e.shed_requests);
        fnv.add(e.slo_violation);
        fnv.add(e.steady_slo_violation);
        fnv.add(e.machine_hours);
        fnv.add(e.watt_hours);
        fnv.add(e.mean_sparse_utilization);
        fnv.add(e.max_sparse_utilization);
        fnv.add(e.result_cache_hit_rate);
        fnv.add(e.hedge_rate);
        fnv.add(e.peak_replica_queue);
        fnv.add(e.planMemoryBytes());
        fnv.add(e.planPowerWatts());
        for (const auto &s : e.plan.shards) {
            fnv.add(s.replicas);
            fnv.add(s.cpu_utilization);
            fnv.add(s.power_watts);
        }
    }
    return fnv.h;
}

// ---------------------------------------------------------------------------
// FleetSim.
// ---------------------------------------------------------------------------

struct FleetSim::SegmentResult
{
    std::vector<core::RequestStats> stats;
    /** Mean worker-pool utilization per sparse shard. */
    std::vector<double> shard_utilization;
    double main_utilization = 0.0;
    std::uint64_t result_cache_hits = 0;
    std::uint64_t result_cache_lookups = 0;
    std::uint64_t primary_rpcs = 0;
    std::uint64_t hedges = 0;
    std::size_t peak_replica_queue = 0;
};

/**
 * One epoch's resolved fault application, derived from the schedule's
 * events active at that epoch. Server targets stay (shard, replica)
 * pairs here because the flat server id depends on the segment's
 * replica vector (lag segments still run the OLD vector).
 */
struct FleetSim::FaultPlan
{
    /** Crashes carried over from earlier epochs: dead at segment start. */
    std::vector<std::pair<int, int>> dead;
    /**
     * Crashes whose window STARTS this epoch: the replica serves until
     * crash_at_fraction into the steady segment, then goes dark
     * mid-traffic (exercises queued-work-lost + in-flight-timeout).
     */
    std::vector<std::pair<int, int>> fresh_kills;
    /** (shard, replica, service-time multiplier) persistent slow nodes. */
    std::vector<std::tuple<int, int, double>> slow;
    /** Shards whose main<->shard links are partitioned this epoch. */
    std::vector<int> partitioned_shards;
    /** Row-cache share retained during a snapshot storm (1 = none). */
    double storm_warm_share = 1.0;
    /** Fire fresh_kills in this segment (the epoch's steady segment). */
    bool apply_fresh_kills = false;
    /** FleetConfig::crash_at_fraction, carried along. */
    double kill_at_fraction = 0.25;
};

FleetSim::FleetSim(const model::ModelSpec &spec,
                   const core::ShardingPlan &plan,
                   core::ServingConfig base_serving,
                   const workload::DiurnalLoadModel &load,
                   FleetConfig config)
    : spec_(spec), plan_(plan), base_(std::move(base_serving)),
      load_(load), cfg_(config)
{
    assert(plan_.numShards() > 0 && "fleet simulation needs sparse shards");
    assert(cfg_.epochs > 0 && cfg_.requests_per_epoch > 0);
    assert(cfg_.penalty.provisioning_lag_fraction >= 0.0 &&
           cfg_.penalty.provisioning_lag_fraction < 1.0);
    assert(cfg_.penalty.cold_cache_fraction >= 0.0 &&
           cfg_.penalty.cold_cache_fraction < 1.0);
    assert(cfg_.crash_at_fraction >= 0.0 && cfg_.crash_at_fraction < 1.0);
    for ([[maybe_unused]] const auto &ev : cfg_.faults.events())
        if (ev.kind == FaultKind::ReplicaCrash ||
            ev.kind == FaultKind::SlowReplica ||
            ev.kind == FaultKind::Partition)
            assert(ev.shard >= 0 && ev.shard < plan_.numShards() &&
                   "fault event targets a shard outside the plan");
}

FleetSim::SegmentResult
FleetSim::runSegment(const std::vector<int> &replicas,
                     const std::vector<workload::Request> &slice,
                     double qps,
                     const std::vector<workload::Request> &prewarm,
                     bool invalidate_result_cache,
                     const std::vector<int> &prev_replicas,
                     bool degrade_caches, std::uint64_t seed_salt,
                     const FaultPlan *faults, TraceHooks trace)
{
    core::ServingConfig cfg = base_;
    cfg.sparse_replicas_per_shard = replicas;
    cfg.seed = stats::mix64(base_.seed ^ seed_salt);
    // Pure observers: the tracer never draws simulation RNG and the
    // feed only reads completions, so wiring them cannot change stats.
    cfg.tracer = trace.tracer;
    cfg.latency_feed = trace.feed;

    if (degrade_caches && !base_.shard_cache_models.empty()) {
        // Cold-replica warmup ramp: a shard that grew from r to r'
        // replicas serves the window at (r + 0.5*(r'-r))/r' of its
        // steady hit rate — surviving replicas stay warm, new ones ramp
        // linearly from empty.
        cfg.shard_cache_models = base_.shard_cache_models;
        for (std::size_t s = 0; s < cfg.shard_cache_models.size() &&
                                s < replicas.size();
             ++s) {
            const int now = replicas[s];
            const int before =
                s < prev_replicas.size() ? prev_replicas[s] : now;
            if (now <= before || !cfg.shard_cache_models[s])
                continue;
            const double warm_share =
                (static_cast<double>(before) +
                 0.5 * static_cast<double>(now - before)) /
                static_cast<double>(now);
            cfg.shard_cache_models[s] =
                std::make_shared<const cache::CachedLookupModel>(
                    cfg.shard_cache_models[s]->scaled(warm_share));
        }
    }

    // Snapshot storm: every shard's row cache re-warms from a mass
    // embedding refresh, so ALL shards serve at the storm's warm share
    // this segment (stacks multiplicatively on any cold-replica ramp).
    if (faults != nullptr && faults->storm_warm_share < 1.0) {
        if (cfg.shard_cache_models.empty())
            cfg.shard_cache_models = base_.shard_cache_models;
        for (auto &m : cfg.shard_cache_models)
            if (m)
                m = std::make_shared<const cache::CachedLookupModel>(
                    m->scaled(faults->storm_warm_share));
    }

    core::ServingSimulation sim(spec_, plan_, cfg);

    // Fault targets address the SEGMENT's replica vector (lag segments
    // still run the OLD vector): flat server id in serverShards() order.
    // Replica indexes past the shard's current size clamp to its last
    // replica, so a schedule written against the peak vector stays
    // meaningful after a scale-down.
    const auto serverIdFor = [&replicas](int shard, int rep) {
        int id = 0;
        for (int s = 0; s < shard; ++s)
            id += std::max(1, replicas[static_cast<std::size_t>(s)]);
        const int within =
            std::max(1, replicas[static_cast<std::size_t>(shard)]);
        return id + std::min(rep, within - 1);
    };

    // Apply the epoch's standing faults through the runtime control
    // surface before any traffic.
    if (faults != nullptr) {
        for (const auto &[shard, rep] : faults->dead)
            sim.killReplica(serverIdFor(shard, rep));
        for (const auto &[shard, rep, mult] : faults->slow)
            sim.degradeReplica(serverIdFor(shard, rep), mult);
        for (const int s : faults->partitioned_shards)
            sim.partitionShard(s, true);
    }

    if (!prewarm.empty())
        sim.replayOpenLoop(prewarm, qps); // warm caches; stats discarded
    if (invalidate_result_cache)
        sim.invalidateResultCache();
    const std::uint64_t warm_hits = sim.resultCacheStats().hits;
    const std::uint64_t warm_lookups = sim.resultCacheStats().lookups;

    // Mid-segment crash onsets: scheduled AFTER the prewarm replay so
    // the kill lands crash_at_fraction into the MEASURED traffic (the
    // discovery-lag timer starts at the kill, so hedging must mask the
    // gap until the directory reacts).
    if (faults != nullptr && faults->apply_fresh_kills &&
        !faults->fresh_kills.empty() && !slice.empty() && qps > 0.0) {
        const double span_s = static_cast<double>(slice.size()) / qps;
        const auto offset = static_cast<sim::Duration>(
            faults->kill_at_fraction * span_s * 1e9);
        for (const auto &fk : faults->fresh_kills) {
            const int srv = serverIdFor(fk.first, fk.second);
            sim.engine().scheduleAt(sim.engine().now() + offset,
                                    sim::kEvTimer,
                                    [&sim, srv] { sim.killReplica(srv); });
        }
    }

    SegmentResult out;
    out.stats = sim.replayOpenLoop(slice, qps);
    out.main_utilization = sim.mainUtilization();
    out.result_cache_hits = sim.resultCacheStats().hits - warm_hits;
    out.result_cache_lookups =
        sim.resultCacheStats().lookups - warm_lookups;
    const rpc::HedgeStats hs = sim.hedgeStats();
    out.primary_rpcs = hs.primary_rpcs;
    out.hedges = hs.hedges;
    for (const std::size_t q : sim.serverPeakQueue())
        out.peak_replica_queue = std::max(out.peak_replica_queue, q);

    const auto shards = static_cast<std::size_t>(plan_.numShards());
    const auto util = sim.serverUtilization();
    const auto server_shard = sim.serverShards();
    out.shard_utilization.assign(shards, 0.0);
    std::vector<int> servers(shards, 0);
    for (std::size_t srv = 0; srv < util.size(); ++srv) {
        const auto s = static_cast<std::size_t>(server_shard[srv]);
        out.shard_utilization[s] += util[srv];
        ++servers[s];
    }
    for (std::size_t s = 0; s < shards; ++s)
        if (servers[s] > 0)
            out.shard_utilization[s] /= static_cast<double>(servers[s]);
    return out;
}

FleetStats
FleetSim::run(Autoscaler &policy)
{
    const auto shards = static_cast<std::size_t>(plan_.numShards());
    const double epoch_hours = cfg_.epoch_duration_s / 3600.0;
    const dc::Platform &sp = base_.sparse_platform;
    const dc::Platform &mp = base_.main_platform;

    FleetStats ledger;
    ledger.policy = policy.name();

    std::vector<int> prev; // empty before the first epoch
    EpochObservation last;
    bool have_last = false;
    std::vector<workload::Request> prev_tail;

    // Telemetry analysis (pure observer: consumes only measured ledger
    // values, after the epoch's simulations finished). One bucket per
    // epoch in each burn window.
    const TelemetryConfig &tele = cfg_.telemetry;
    obs::SloMonitor monitor;
    int lat_obj = -1, shed_obj = -1, avail_obj = -1;
    obs::EwmaMadDetector burst_detector(tele.burst_detector);
    std::vector<bool> burst_flags;
    // Per-epoch SLO attainment (1 - (shed + over-latency)/requests),
    // kept only when a fault schedule is attached: the scorecards'
    // blast-radius input.
    std::vector<double> epoch_attainment;
    std::size_t alert_transitions_counted = 0;
    if (tele.enabled) {
        const auto objective = [&](const char *name, double budget) {
            obs::SloObjective o;
            o.name = name;
            o.budget_fraction = budget;
            o.fast_horizon_s =
                tele.fast_window_epochs * cfg_.epoch_duration_s;
            o.slow_horizon_s =
                tele.slow_window_epochs * cfg_.epoch_duration_s;
            o.buckets = tele.slow_window_epochs;
            o.fast_burn_threshold = tele.fast_burn_threshold;
            o.slow_burn_threshold = tele.slow_burn_threshold;
            o.pending_ticks = tele.pending_ticks;
            o.resolve_ticks = tele.resolve_ticks;
            return monitor.addObjective(o);
        };
        lat_obj = objective("latency", tele.latency_budget_fraction);
        shed_obj = objective("shed", tele.shed_budget_fraction > 0.0
                                         ? tele.shed_budget_fraction
                                         : cfg_.slo.max_shed_rate);
        avail_obj = objective("availability",
                              tele.availability_budget_fraction);
    }

    for (int e = 0; e < cfg_.epochs; ++e) {
        std::vector<int> vec =
            policy.decide(e, load_, have_last ? &last : nullptr);
        vec.resize(shards, 1);
        for (auto &r : vec)
            r = std::max(1, r);

        double qps = load_.realizedQps(e);
        auto requests = load_.epochRequests(e, cfg_.requests_per_epoch);
        const std::size_t n = requests.size();

        // Resolve the schedule's events active this epoch into a fault
        // plan (serving-side) plus load overlays (flash crowd, storm
        // invalidation). Fault-free epochs take the nullptr path, which
        // is bit-for-bit the pre-fault-layer code path.
        FaultPlan fp;
        fp.kill_at_fraction = cfg_.crash_at_fraction;
        bool fault_any = false;
        bool storm_pending = false;
        double flash_rate = 1.0;
        double flash_hot = 0.0;
        if (!cfg_.faults.empty()) {
            for (const FaultEvent *ev : cfg_.faults.activeAt(e)) {
                switch (ev->kind) {
                case FaultKind::ReplicaCrash:
                    (ev->start_epoch == e ? fp.fresh_kills : fp.dead)
                        .emplace_back(ev->shard, ev->replica);
                    fault_any = true;
                    break;
                case FaultKind::SlowReplica:
                    fp.slow.emplace_back(ev->shard, ev->replica,
                                         ev->magnitude);
                    fault_any = true;
                    break;
                case FaultKind::Partition:
                    fp.partitioned_shards.push_back(ev->shard);
                    fault_any = true;
                    break;
                case FaultKind::SnapshotStorm:
                    fp.storm_warm_share =
                        std::min(fp.storm_warm_share, ev->magnitude);
                    storm_pending = true;
                    fault_any = true;
                    break;
                case FaultKind::FlashCrowd:
                    flash_rate *= ev->magnitude;
                    flash_hot = std::max(flash_hot, ev->hot_fraction);
                    break;
                }
            }
        }
        const FaultPlan *plan = fault_any ? &fp : nullptr;
        // Storm: snapshot refreshes keep landing all epoch, so EVERY
        // segment starts from an invalidated pooled-result cache (the
        // prewarmed working set is dropped each time), on top of the
        // row caches re-warming from storm_warm_share.
        const bool storm = storm_pending;

        // Flash crowd overlay: offered rate multiplies, and a
        // deterministic stride of the epoch's sample collapses onto the
        // first request's feature vector — the hot key every cache and
        // hedge assumption suddenly sees everywhere.
        if (flash_rate > 1.0 || flash_hot > 0.0) {
            qps *= flash_rate;
            if (flash_hot > 0.0 && !requests.empty()) {
                const auto stride = std::max<std::size_t>(
                    1, static_cast<std::size_t>(
                           std::llround(1.0 / flash_hot)));
                const workload::Request hot = requests.front();
                for (std::size_t i = 0; i < requests.size(); i += stride) {
                    requests[i].items = hot.items;
                    requests[i].table_lookups = hot.table_lookups;
                    requests[i].content_hash = hot.content_hash;
                }
            }
        }

        EpochRecord rec;
        rec.epoch = e;
        rec.forecast_qps = load_.forecastQps(e);
        rec.offered_qps = qps;
        rec.replicas = vec;
        rec.reconfigured = !prev.empty() && vec != prev;
        if (rec.reconfigured)
            for (std::size_t s = 0; s < shards; ++s) {
                rec.scaled_up |= vec[s] > prev[s];
                rec.scaled_down |= vec[s] < prev[s];
            }

        // Segment boundaries (request-index space). The declared
        // reconfiguration window is lag + cold; SLO attainment outside
        // it is what scale-downs are held to.
        const std::size_t lag_n =
            rec.reconfigured && rec.scaled_up
                ? static_cast<std::size_t>(std::llround(
                      cfg_.penalty.provisioning_lag_fraction *
                      static_cast<double>(n)))
                : 0;
        const std::size_t cold_n =
            rec.reconfigured
                ? static_cast<std::size_t>(std::llround(
                      cfg_.penalty.cold_cache_fraction *
                      static_cast<double>(n)))
                : 0;

        const std::uint64_t salt =
            0xe70c0ULL + static_cast<std::uint64_t>(e) * 8;

        // Per-epoch bounded trace retention: fresh tracer + sampler
        // (epoch-mixed seed) so retained sets are attributable to an
        // epoch and arena memory never outlives one. The rolling
        // latency feed is created per SEGMENT (each segment's sim
        // clock restarts at 0) and re-wired into the sampler.
        const auto &ts = cfg_.trace_sampling;
        obs::SpanTracer epoch_tracer(true);
        std::unique_ptr<obs::TraceSampler> sampler;
        std::uint64_t epoch_dropped_stale = 0;
        if (ts.enabled) {
            obs::SamplerConfig sc;
            sc.seed = stats::mix64(ts.seed ^
                                   (static_cast<std::uint64_t>(e) + 1));
            sc.reservoir_size = ts.reservoir_size;
            sc.tail_quantile = ts.tail_quantile;
            sc.retained_byte_budget = ts.per_epoch_byte_budget;
            sampler = std::make_unique<obs::TraceSampler>(sc);
            epoch_tracer.setSampler(sampler.get());
        }
        const auto segmentHooks = [&](obs::RollingHistogram &feed) {
            TraceHooks hooks;
            if (sampler) {
                sampler->setLatencyFeed(&feed);
                hooks.tracer = &epoch_tracer;
                hooks.feed = &feed;
            }
            return hooks;
        };

        std::vector<core::RequestStats> all_stats;
        std::vector<core::RequestStats> steady_stats;
        double watt_hours = 0.0;
        std::uint64_t rc_hits = 0, rc_lookups = 0;
        std::uint64_t prim_rpcs = 0, hedges = 0;
        std::size_t peak_rq = 0;
        SegmentResult last_seg;

        const auto slice = [&](std::size_t lo, std::size_t hi) {
            return std::vector<workload::Request>(
                requests.begin() + static_cast<std::ptrdiff_t>(lo),
                requests.begin() + static_cast<std::ptrdiff_t>(hi));
        };
        const auto sparsePower = [&](const std::vector<int> &v,
                                     const std::vector<double> &util) {
            double watts = 0.0;
            for (std::size_t s = 0; s < shards; ++s) {
                const double u = s < util.size() ? util[s] : 0.0;
                watts += static_cast<double>(v[s]) *
                         (sp.idle_watts +
                          (sp.busy_watts - sp.idle_watts) * u);
            }
            return watts;
        };
        const auto accountSegment = [&](const SegmentResult &seg,
                                        const std::vector<int> &v,
                                        std::size_t count, bool steady,
                                        double booting_machines) {
            all_stats.insert(all_stats.end(), seg.stats.begin(),
                             seg.stats.end());
            if (steady)
                steady_stats.insert(steady_stats.end(), seg.stats.begin(),
                                    seg.stats.end());
            const double frac = static_cast<double>(count) /
                                static_cast<double>(n);
            double watts = sparsePower(v, seg.shard_utilization);
            // Machines still booting draw idle power until they serve.
            watts += booting_machines * sp.idle_watts;
            if (cfg_.count_main_shard)
                watts += mp.idle_watts +
                         (mp.busy_watts - mp.idle_watts) *
                             seg.main_utilization;
            watt_hours += watts * epoch_hours * frac;
            rc_hits += seg.result_cache_hits;
            rc_lookups += seg.result_cache_lookups;
            prim_rpcs += seg.primary_rpcs;
            hedges += seg.hedges;
            peak_rq = std::max(peak_rq, seg.peak_replica_queue);
        };

        if (lag_n > 0) {
            // Scale-up provisioning lag: the OLD vector keeps serving
            // the new epoch's offered load; the new machines are booked
            // (and drawing idle power) but not yet serving.
            double booting = 0.0;
            for (std::size_t s = 0; s < shards; ++s)
                booting += std::max(0, vec[s] - prev[s]);
            obs::RollingHistogram seg_feed;
            const auto seg =
                runSegment(prev, slice(0, lag_n), qps, prev_tail,
                           /*invalidate=*/storm, prev,
                           /*degrade=*/false, salt + 0, plan,
                           segmentHooks(seg_feed));
            epoch_dropped_stale += seg_feed.droppedStale();
            accountSegment(seg, prev, lag_n, /*steady=*/false, booting);
            last_seg = seg;
        }
        if (rec.reconfigured && lag_n + cold_n > lag_n) {
            // Cold window on the new vector: fresh replicas' row caches
            // ramp, and the pooled-result cache restarts from the
            // resharding invalidation — so there is nothing to prewarm
            // (replaying carry-over traffic only to invalidate it would
            // be pure wasted simulation).
            obs::RollingHistogram seg_feed;
            const auto seg = runSegment(
                vec, slice(lag_n, std::min(n, lag_n + cold_n)), qps,
                /*prewarm=*/{}, /*invalidate=*/true, prev,
                /*degrade=*/true, salt + 1, plan,
                segmentHooks(seg_feed));
            epoch_dropped_stale += seg_feed.droppedStale();
            accountSegment(seg, vec,
                           std::min(n, lag_n + cold_n) - lag_n,
                           /*steady=*/false, 0.0);
            last_seg = seg;
        }
        {
            const std::size_t lo = std::min(n, lag_n + cold_n);
            // Steady remainder (the whole epoch when nothing changed).
            // Prewarm comes from the immediately preceding traffic so
            // the pooled-result cache keeps cross-epoch continuity.
            std::vector<workload::Request> prewarm;
            if (rec.reconfigured) {
                const std::size_t back =
                    std::min(lo, cfg_.prewarm_requests);
                prewarm = slice(lo - back, lo);
            } else {
                prewarm = prev_tail;
            }
            fp.apply_fresh_kills = true; // crash onsets land here
            obs::RollingHistogram seg_feed;
            const auto seg =
                runSegment(vec, slice(lo, n), qps, prewarm,
                           /*invalidate=*/storm, prev,
                           /*degrade=*/false, salt + 2, plan,
                           segmentHooks(seg_feed));
            epoch_dropped_stale += seg_feed.droppedStale();
            accountSegment(seg, vec, n - lo, /*steady=*/true, 0.0);
            last_seg = seg;
        }

        // Machine-hours: the decided vector is billed for the whole
        // epoch; during a scale-up lag the old plan's still-serving
        // machines bill too (max of the two plans per shard).
        double machines = cfg_.count_main_shard ? 1.0 : 0.0;
        double lag_machines = machines;
        for (std::size_t s = 0; s < shards; ++s) {
            machines += vec[s];
            lag_machines += std::max(
                vec[s], prev.empty() ? vec[s] : prev[s]);
        }
        const double lag_frac =
            static_cast<double>(lag_n) / static_cast<double>(n);
        rec.machine_hours =
            (lag_frac * lag_machines + (1.0 - lag_frac) * machines) *
            epoch_hours;

        rec.watt_hours = watt_hours;
        rec.p99_ms = core::latencyQuantiles(all_stats).p99_ms;
        rec.steady_p99_ms = core::latencyQuantiles(steady_stats).p99_ms;
        rec.shed_rate = core::shedRate(all_stats);
        for (const auto &s : all_stats)
            rec.shed_requests += s.shed() ? 1 : 0;
        const double steady_shed = core::shedRate(steady_stats);
        rec.slo_violation = rec.p99_ms > cfg_.slo.p99_ms ||
                            rec.shed_rate > cfg_.slo.max_shed_rate;
        rec.steady_slo_violation =
            rec.steady_p99_ms > cfg_.slo.p99_ms ||
            steady_shed > cfg_.slo.max_shed_rate;
        rec.mean_sparse_utilization = meanOf(last_seg.shard_utilization);
        rec.max_sparse_utilization =
            last_seg.shard_utilization.empty()
                ? 0.0
                : *std::max_element(last_seg.shard_utilization.begin(),
                                    last_seg.shard_utilization.end());
        rec.result_cache_hit_rate =
            rc_lookups > 0 ? static_cast<double>(rc_hits) /
                                 static_cast<double>(rc_lookups)
                           : 0.0;
        rec.hedge_rate = prim_rpcs > 0
                             ? static_cast<double>(hedges) /
                                   static_cast<double>(prim_rpcs)
                             : 0.0;
        rec.peak_replica_queue = static_cast<std::int64_t>(peak_rq);

        // dc::DeploymentPlan costing of the decided vector at measured
        // utilization: the TCO view (power + memory) of this epoch.
        for (std::size_t s = 0; s < shards; ++s) {
            dc::ShardProvision p;
            p.name = "sparse" + std::to_string(s);
            p.replicas = vec[s];
            p.total_memory_bytes =
                static_cast<std::int64_t>(vec[s]) *
                static_cast<std::int64_t>(
                    plan_.capacityBytes(spec_, static_cast<int>(s)));
            p.cpu_utilization =
                s < last_seg.shard_utilization.size()
                    ? last_seg.shard_utilization[s]
                    : 0.0;
            p.power_watts =
                static_cast<double>(p.replicas) *
                (sp.idle_watts +
                 (sp.busy_watts - sp.idle_watts) * p.cpu_utilization);
            rec.plan.shards.push_back(p);
        }

        // Served requests over the SLO latency target: the event count
        // behind the latency error budget (a P99-vs-target check says
        // "breached"; the over-target fraction says HOW MUCH budget
        // burned).
        std::int64_t over_latency = 0;
        const double slo_ns = cfg_.slo.p99_ms * 1e6;
        for (const auto &s : all_stats)
            if (!s.shed() && static_cast<double>(s.e2e) > slo_ns)
                ++over_latency;
        if (!cfg_.faults.empty())
            epoch_attainment.push_back(
                all_stats.empty()
                    ? 1.0
                    : 1.0 - static_cast<double>(over_latency +
                                                rec.shed_requests) /
                                static_cast<double>(all_stats.size()));

        // Next-epoch observation + carry-over. Policies see the STEADY
        // P99: the declared reconfiguration window is exempt from SLO
        // accounting, and a controller penalized on its own window's
        // cold-cache spike scales up right after every scale-down — a
        // self-inflicted reconfigure loop.
        last.epoch = e;
        last.replicas = vec;
        last.offered_qps = qps;
        last.p99_ms = rec.steady_p99_ms;
        last.shed_rate = rec.shed_rate;
        last.shard_utilization = last_seg.shard_utilization;
        last.max_shard_utilization = rec.max_sparse_utilization;
        last.requests = static_cast<std::int64_t>(all_stats.size());
        last.shed_requests = rec.shed_requests;
        last.over_latency_target = over_latency;
        have_last = true;
        prev = vec;
        const std::size_t back = std::min(n, cfg_.prewarm_requests);
        prev_tail = slice(n - back, n);

        // Telemetry analysis over the finished epoch: burn the error
        // budgets, evaluate the alert rules, step the burst detector.
        // Mid-epoch timestamps keep records off bucket boundaries.
        EpochTelemetry trow;
        if (tele.enabled) {
            const double t_mid =
                (static_cast<double>(e) + 0.5) * cfg_.epoch_duration_s;
            const auto served = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(all_stats.size()) -
                rec.shed_requests);
            const auto over =
                static_cast<std::uint64_t>(over_latency);
            monitor.record(lat_obj, t_mid, served - over, over);
            monitor.record(shed_obj, t_mid, served,
                           static_cast<std::uint64_t>(
                               rec.shed_requests));
            monitor.record(avail_obj, t_mid,
                           rec.slo_violation ? 0 : 1,
                           rec.slo_violation ? 1 : 0);
            const auto emitted = monitor.evaluate(t_mid);
            ledger.telemetry.alerts.insert(
                ledger.telemetry.alerts.end(), emitted.begin(),
                emitted.end());

            trow.epoch = e;
            trow.load_ratio =
                rec.offered_qps / std::max(1e-9, rec.forecast_qps);
            trow.burst_flagged = burst_detector.step(trow.load_ratio);
            burst_flags.push_back(trow.burst_flagged);
            trow.latency_fast_burn = monitor.status(lat_obj).fast_burn;
            trow.latency_slow_burn = monitor.status(lat_obj).slow_burn;
            trow.shed_fast_burn = monitor.status(shed_obj).fast_burn;
            trow.shed_slow_burn = monitor.status(shed_obj).slow_burn;
            trow.availability_fast_burn =
                monitor.status(avail_obj).fast_burn;
            trow.availability_slow_burn =
                monitor.status(avail_obj).slow_burn;
            trow.latency_budget_consumed =
                monitor.status(lat_obj).budgetConsumed(
                    monitor.objective(lat_obj).budget_fraction);
            for (std::size_t o = 0; o < monitor.objectiveCount(); ++o)
                trow.alerts_firing +=
                    monitor.status(static_cast<int>(o)).state ==
                            obs::AlertState::Firing
                        ? 1
                        : 0;
            ledger.telemetry.epochs.push_back(trow);
        }

        // Summarize the epoch's trace retention into the telemetry
        // side-ledger (fingerprint-excluded). Exemplars: the highest
        // keep class first, slowest first within a class — the traces
        // an investigation should open first.
        if (sampler) {
            EpochTraceSummary tsum;
            tsum.epoch = e;
            const obs::SamplerStats &ss = sampler->stats();
            tsum.roots_closed = ss.roots_closed;
            tsum.retained = sampler->retained().size();
            tsum.retained_bytes = sampler->retainedBytes();
            tsum.kept_flagged = ss.kept_flagged;
            tsum.kept_tail = ss.kept_tail;
            tsum.kept_reservoir = ss.kept_reservoir;
            tsum.recycled = ss.recycled;
            tsum.dropped_stale = epoch_dropped_stale;
            std::vector<const obs::RetainedTrace *> ranked;
            ranked.reserve(sampler->retained().size());
            for (const obs::RetainedTrace &t : sampler->retained())
                ranked.push_back(&t);
            std::sort(ranked.begin(), ranked.end(),
                      [](const obs::RetainedTrace *a,
                         const obs::RetainedTrace *b) {
                          if (a->keep_class != b->keep_class)
                              return a->keep_class > b->keep_class;
                          if (a->e2e != b->e2e)
                              return a->e2e > b->e2e;
                          return a->request_id < b->request_id;
                      });
            for (const obs::RetainedTrace *t : ranked) {
                if (tsum.exemplars.size() >= ts.scenario_exemplars)
                    break;
                EpochTraceSummary::Exemplar ex;
                ex.request_id = t->request_id;
                ex.keep_class = t->keep_class;
                ex.e2e = t->e2e;
                tsum.exemplars.push_back(ex);
            }
            ledger.telemetry.traces.push_back(std::move(tsum));
        }

        // Per-epoch metrics time-series: gauges mirror the ledger row,
        // counters accumulate across epochs, one snapshot per epoch at
        // the epoch's end time. Pure observer of `rec` — nothing here
        // feeds back into the simulation or the fingerprint.
        if (cfg_.metrics != nullptr) {
            obs::MetricsRegistry &m = *cfg_.metrics;
            m.gauge("fleet.offered_qps").set(rec.offered_qps);
            m.gauge("fleet.forecast_qps").set(rec.forecast_qps);
            m.gauge("fleet.p99_ms").set(rec.p99_ms);
            m.gauge("fleet.steady_p99_ms").set(rec.steady_p99_ms);
            m.gauge("fleet.shed_rate").set(rec.shed_rate);
            m.gauge("fleet.hedge_rate").set(rec.hedge_rate);
            m.gauge("fleet.result_cache_hit_rate")
                .set(rec.result_cache_hit_rate);
            m.gauge("fleet.mean_sparse_utilization")
                .set(rec.mean_sparse_utilization);
            m.gauge("fleet.max_sparse_utilization")
                .set(rec.max_sparse_utilization);
            m.gauge("fleet.peak_replica_queue")
                .set(static_cast<double>(rec.peak_replica_queue));
            m.gauge("fleet.machine_hours").set(rec.machine_hours);
            m.gauge("fleet.watt_hours").set(rec.watt_hours);
            double total_replicas = 0.0;
            for (std::size_t s = 0; s < shards; ++s) {
                m.gauge("fleet.replicas.shard" + std::to_string(s))
                    .set(static_cast<double>(vec[s]));
                total_replicas += vec[s];
            }
            m.gauge("fleet.replicas.total").set(total_replicas);
            m.counter("fleet.requests")
                .inc(static_cast<std::int64_t>(all_stats.size()));
            m.counter("fleet.shed_requests").inc(rec.shed_requests);
            if (rec.reconfigured)
                m.counter("fleet.reconfigurations").inc();
            m.counter("fleet.slo_violation_epochs")
                .inc(rec.slo_violation ? 1 : 0);
            if (tele.enabled) {
                m.gauge("slo.latency_fast_burn")
                    .set(trow.latency_fast_burn);
                m.gauge("slo.latency_slow_burn")
                    .set(trow.latency_slow_burn);
                m.gauge("slo.shed_fast_burn").set(trow.shed_fast_burn);
                m.gauge("slo.shed_slow_burn").set(trow.shed_slow_burn);
                m.gauge("slo.availability_fast_burn")
                    .set(trow.availability_fast_burn);
                m.gauge("slo.latency_budget_consumed")
                    .set(trow.latency_budget_consumed);
                m.gauge("slo.alerts_firing")
                    .set(static_cast<double>(trow.alerts_firing));
                m.gauge("detect.load_ratio").set(trow.load_ratio);
                m.gauge("detect.burst_flag")
                    .set(trow.burst_flagged ? 1.0 : 0.0);
                m.counter("slo.alert_transitions")
                    .inc(static_cast<std::int64_t>(
                        ledger.telemetry.alerts.size() -
                        alert_transitions_counted));
                alert_transitions_counted =
                    ledger.telemetry.alerts.size();
            }
            // Trace-retention mirror (sampling runs only — registering
            // these keys unconditionally would change the snapshot
            // schema of existing sampling-free runs). dropped_stale
            // surfaces the rolling windows' silent straggler drops.
            if (sampler) {
                const EpochTraceSummary &tsum =
                    ledger.telemetry.traces.back();
                m.counter("obs.trace.roots")
                    .inc(static_cast<std::int64_t>(tsum.roots_closed));
                m.counter("obs.trace.retained")
                    .inc(static_cast<std::int64_t>(tsum.retained));
                m.counter("obs.trace.recycled")
                    .inc(static_cast<std::int64_t>(tsum.recycled));
                m.gauge("obs.trace.retained_bytes")
                    .set(static_cast<double>(tsum.retained_bytes));
                m.counter("obs.timeseries.dropped_stale")
                    .inc(static_cast<std::int64_t>(
                        tsum.dropped_stale));
            }
            m.takeSnapshot(static_cast<double>(e + 1) *
                           cfg_.epoch_duration_s);
        }

        ledger.epochs.push_back(std::move(rec));
    }

    // Score the online burst detector against the load model's seeded
    // ground truth (which epochs actually drew bursts).
    if (tele.enabled)
        ledger.telemetry.burst_eval =
            obs::scoreFlags(burst_detector.name(), burst_flags, load_,
                            tele.detect_match_window_epochs);

    // Chaos scorecards: grade each scheduled event against the measured
    // attainment trajectory and the burn-rate clock. Recovery is read
    // off PR 7's alerting state — an epoch is "healthy" when no
    // objective fires and every fast burn sits under its threshold.
    if (tele.enabled && !cfg_.faults.empty()) {
        const auto healthyAt = [&](int f) {
            const auto &t =
                ledger.telemetry.epochs[static_cast<std::size_t>(f)];
            return t.alerts_firing == 0 &&
                   t.latency_fast_burn < tele.fast_burn_threshold &&
                   t.shed_fast_burn < tele.fast_burn_threshold &&
                   t.availability_fast_burn < tele.fast_burn_threshold;
        };
        for (const auto &ev : cfg_.faults.events()) {
            ScenarioOutcome o;
            o.scenario = ev.name();
            o.kind = ev.kind;
            o.start_epoch = ev.start_epoch;
            o.end_epoch = std::min(ev.end_epoch, cfg_.epochs);
            for (int f = ev.start_epoch; f < o.end_epoch; ++f) {
                const auto fi = static_cast<std::size_t>(f);
                if (epoch_attainment[fi] <= o.min_attainment) {
                    o.min_attainment = epoch_attainment[fi];
                    o.exemplar_epoch = f; // blast epoch: worst epoch
                }
                o.blast_radius = std::max(o.blast_radius,
                                          1.0 - epoch_attainment[fi]);
                o.shed_requests += ledger.epochs[fi].shed_requests;
            }
            // Attach the blast epoch's retained exemplar traces so the
            // scorecard links straight to span trees (sampling only;
            // fingerprint-excluded fields).
            if (o.exemplar_epoch >= 0 &&
                static_cast<std::size_t>(o.exemplar_epoch) <
                    ledger.telemetry.traces.size())
                for (const auto &ex :
                     ledger.telemetry
                         .traces[static_cast<std::size_t>(
                             o.exemplar_epoch)]
                         .exemplars)
                    o.exemplar_requests.push_back(ex.request_id);
            o.within_declared_bound =
                o.blast_radius <= ev.declared_blast_radius;
            // Recovery: epochs from onset until the burn clock reads
            // healthy FOR GOOD within the post-fault horizon (one slow
            // window past the heal, so lingering fast-window burn
            // counts against the scenario, later unrelated faults do
            // not).
            const int horizon = std::min(
                cfg_.epochs, o.end_epoch + tele.slow_window_epochs);
            int last_unhealthy = ev.start_epoch - 1;
            for (int f = ev.start_epoch; f < horizon; ++f)
                if (!healthyAt(f))
                    last_unhealthy = f;
            if (last_unhealthy < ev.start_epoch)
                o.recovery_epochs = 0; // fully masked
            else if (last_unhealthy == cfg_.epochs - 1)
                o.recovery_epochs = -1; // not recovered by trace end
            else
                o.recovery_epochs =
                    last_unhealthy + 1 - ev.start_epoch;
            ledger.telemetry.scenarios.push_back(std::move(o));
        }
    }
    return ledger;
}

} // namespace dri::fleet
