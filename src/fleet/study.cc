#include "fleet/study.h"

#include "core/strategies.h"
#include "core/trace_slicing.h"
#include "model/generators.h"
#include "sched/capacity_search.h"
#include "workload/access_trace.h"

namespace dri::fleet {

FleetStudy
makeFleetStudy(bool smoke)
{
    FleetStudy study;
    study.spec = model::makeDrm2();
    // Capacity-balanced: equal bytes per shard, deliberately unequal
    // compute — the plan where load-proportional replica vectors matter.
    study.plan = core::makeCapacityBalanced(study.spec, 4);

    study.serving = sched::sparseBoundStudyConfig(
        rpc::LoadBalancePolicy::LeastOutstanding, 2);
    study.serving.result_cache.enabled = true;
    // Non-power-proportional servers: ~50% of peak draw at idle, the
    // figure that makes parked peak capacity the dominant watt-hour
    // waste (scLarge's optimistic 30% understates production fleets).
    study.serving.sparse_platform.idle_watts = 200.0;
    study.serving.main_platform.idle_watts = 200.0;

    // Measured per-shard row-cache models from a recorded trace slice:
    // gives the cold-cache reconfiguration penalty real hit rates to
    // degrade. Gentler miss cost than the paging studies (a second-tier
    // DRAM gather, not an NVMe page-in) keeps the deployment sparse-RPC
    // bound rather than cache-miss bound.
    {
        workload::RequestGenerator tgen(
            study.spec, workload::GeneratorConfig{0x7ace});
        const auto trace = workload::recordTrace(
            study.spec, tgen.generate(smoke ? 240 : 400), 0.8, 0x7ace);
        core::ShardCacheOptions sco;
        sco.capacity_fraction = 0.4;
        sco.costs.miss_ns = 300.0;
        study.serving.shard_cache_models =
            core::buildShardCacheModels(study.spec, study.plan, trace, sco)
                .models;
    }

    study.load.base_qps = 450.0;
    study.load.amplitude = 0.7;
    study.load.epochs_per_day = 12;
    study.load.bursts_per_epoch = 0.25;
    study.load.burst_multiplier = 1.6;
    study.load.burst_fraction = 0.25;
    // Recurring ranking contexts on a day-scale horizon: a large pool
    // keeps within-epoch repeats (and therefore capacity economics)
    // modest while still giving the pooled-result cache cross-epoch
    // continuity to lose at a reconfiguration — only recurring vectors
    // hit under content-addressed keys.
    study.load.context_pool = 768;

    study.fleet.slo.p99_ms = 60.0;
    study.fleet.slo.max_shed_rate = 0.01;
    study.fleet.epochs = smoke ? 12 : 24;
    study.fleet.requests_per_epoch = smoke ? 180 : 280;

    study.planner.slo = study.fleet.slo;
    // The smoke study plans from smaller samples; its forecast error is
    // larger, so it buys more headroom.
    study.planner.headroom = smoke ? 1.3 : 1.15;
    study.planner.target_utilization = 0.68;
    study.planner.planning_requests = smoke ? 160 : 256;
    // Redundancy floor: no shard ever runs a single replica (a lone
    // replica's hiccup IS the request tail at trough rates).
    study.planner.min_replicas = 2;

    study.reactive.slo = study.fleet.slo;
    study.reactive.cooldown_epochs = 3;
    study.reactive.min_replicas = 2;
    return study;
}

AutoscalerInputs
studyAutoscalerInputs(const FleetStudy &study,
                      const workload::DiurnalLoadModel &load)
{
    AutoscalerInputs in;
    in.planner = std::make_shared<CapacityPlanner>(
        study.spec, study.plan, study.serving, study.planner,
        load.epochRequests(0, study.planner.planning_requests));
    in.initial_vector = in.planner->replicaVectorFor(load.peakForecastQps());
    in.reactive = study.reactive;
    in.burn_rate.base = study.reactive;
    return in;
}

} // namespace dri::fleet
