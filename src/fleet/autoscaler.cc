#include "fleet/autoscaler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "sched/provision_loop.h"

namespace dri::fleet {

// ---------------------------------------------------------------------------
// CapacityPlanner: ProvisionLoop sized at the rate, CapacitySearch probe
// verifying the SLO boundary.
// ---------------------------------------------------------------------------

CapacityPlanner::CapacityPlanner(const model::ModelSpec &spec,
                                 const core::ShardingPlan &plan,
                                 core::ServingConfig serving,
                                 PlannerConfig config,
                                 std::vector<workload::Request>
                                     planning_stream)
    : spec_(spec), plan_(plan), serving_(std::move(serving)),
      config_(config), planning_requests_(std::move(planning_stream))
{
    assert(plan_.numShards() > 0 && "fleet planning needs sparse shards");
    assert(config_.headroom >= 1.0);
    assert(config_.qps_quantum > 1.0);
    // One deterministic planning stream shared by every plan: paired
    // probes across rates, and across policies holding the same planner.
    if (planning_requests_.empty()) {
        workload::GeneratorConfig gc;
        gc.seed = config_.planning_seed;
        workload::RequestGenerator gen(spec_, gc);
        planning_requests_ = gen.generate(config_.planning_requests);
    } else if (planning_requests_.size() > config_.planning_requests) {
        planning_requests_.resize(config_.planning_requests);
    }
}

double
CapacityPlanner::quantize(double qps) const
{
    assert(qps > 0.0);
    // Smallest integer power of the quantum at or above qps: small
    // forecast wiggles map to the same grid point (plan reuse), and
    // rounding *up* never under-provisions relative to the raw target.
    const double step = std::log(config_.qps_quantum);
    const double k = std::ceil(std::log(qps) / step - 1e-9);
    return std::exp(k * step);
}

std::vector<int>
CapacityPlanner::replicaVectorFor(double qps)
{
    const double target = quantize(qps * config_.headroom);
    const auto it = cache_.find(target);
    if (it != cache_.end())
        return it->second;
    ++plans_computed_;

    // Load-proportional sizing: measured per-shard demand at the target
    // rate through dc::provision to a replica-vector fixed point.
    sched::ProvisionLoopConfig pc;
    pc.qps = target;
    pc.target_utilization = config_.target_utilization;
    pc.max_iterations = config_.provision_iterations;
    pc.min_replicas = config_.min_replicas;
    pc.max_replicas = config_.max_replicas;
    sched::ProvisionLoop loop(spec_, plan_, serving_, pc);
    std::vector<int> vec = loop.run(planning_requests_).replicas;

    // Monotone regularization BEFORE verification: capacity is monotone
    // in replicas, so a cheaper-rate plan must never exceed a
    // pricier-rate plan. Measured demand wobbles +-1 replica between
    // nearby rates; without this the fleet reconfigures on noise (and
    // occasionally scales UP into a falling forecast). Running the
    // clamp first means the verify loop below only ever ADDS replicas —
    // a post-verification clamp could undo exactly the bump that made
    // the probe feasible. The cache is regularized inductively:
    // dominate every cached lower-rate plan, stay under every cached
    // higher-rate plan (cache_ iterates in ascending rate order).
    for (const auto &[rate, v] : cache_) {
        for (std::size_t s = 0; s < vec.size() && s < v.size(); ++s) {
            if (rate < target)
                vec[s] = std::max(vec[s], v[s]);
            else
                vec[s] = std::min(vec[s], v[s]);
        }
    }

    // SLO-boundary verification: utilization-sized vectors can still
    // miss a tail SLO (queueing at the sized utilization, straggler
    // interference). Probe the vector at the target rate and buy
    // replicas until the probe is feasible.
    if (config_.verify_slo_boundary) {
        sched::CapacitySearchConfig sc;
        sc.slo = config_.slo;
        for (int bump = 0; bump <= config_.max_verify_bumps; ++bump) {
            core::ServingConfig cfg = serving_;
            cfg.sparse_replicas_per_shard = vec;
            sched::CapacitySearch search(spec_, plan_, cfg, sc);
            if (search.probe(target, planning_requests_).feasible)
                break;
            bool grew = false;
            for (auto &r : vec)
                if (r < config_.max_replicas) {
                    ++r;
                    grew = true;
                }
            if (!grew)
                break; // fleet-wide replica cap: nothing left to buy
        }
    }

    cache_.emplace(target, vec);
    return vec;
}

// ---------------------------------------------------------------------------
// StaticPeak.
// ---------------------------------------------------------------------------

StaticPeakAutoscaler::StaticPeakAutoscaler(
    std::shared_ptr<CapacityPlanner> planner)
    : planner_(std::move(planner))
{
}

std::vector<int>
StaticPeakAutoscaler::decide(int, const workload::DiurnalLoadModel &load,
                             const EpochObservation *)
{
    if (vector_.empty())
        vector_ = planner_->replicaVectorFor(load.peakForecastQps());
    return vector_;
}

// ---------------------------------------------------------------------------
// Reactive.
// ---------------------------------------------------------------------------

ReactiveAutoscaler::ReactiveAutoscaler(std::vector<int> initial,
                                       ReactiveConfig config)
    : vector_(std::move(initial)), config_(config)
{
    assert(!vector_.empty());
    assert(config_.low_utilization < config_.high_utilization &&
           "hysteresis band must be non-empty");
    for (auto &r : vector_)
        r = std::clamp(r, config_.min_replicas, config_.max_replicas);
}

std::vector<int>
ReactiveAutoscaler::decide(int epoch, const workload::DiurnalLoadModel &,
                           const EpochObservation *last)
{
    if (last == nullptr)
        return vector_; // nothing measured yet: serve the seed vector

    const double p99_guard =
        config_.p99_guard_fraction * config_.slo.p99_ms;
    const bool latency_pressure = last->p99_ms > p99_guard ||
                                  last->shed_rate >
                                      config_.slo.max_shed_rate;
    const bool util_pressure =
        last->max_shard_utilization > config_.high_utilization;

    if (latency_pressure || util_pressure) {
        // Scale up: latency pressure is a fleet-wide signal (every shard
        // grows, by the overshoot step — queueing anywhere inflates the
        // request-level tail); pure utilization pressure creeps only the
        // hot shards.
        const int step =
            latency_pressure ? config_.pressure_step : config_.step;
        bool changed = false;
        for (std::size_t s = 0; s < vector_.size(); ++s) {
            const bool hot =
                latency_pressure ||
                (s < last->shard_utilization.size() &&
                 last->shard_utilization[s] > config_.high_utilization);
            if (hot && vector_[s] < config_.max_replicas) {
                vector_[s] =
                    std::min(config_.max_replicas, vector_[s] + step);
                changed = true;
            }
        }
        if (changed)
            last_change_epoch_ = epoch;
        return vector_;
    }

    // Scale down only inside the hysteresis band's lower half, with
    // latency slack, and only after the cooldown since the last change.
    if (epoch - last_change_epoch_ <= config_.cooldown_epochs)
        return vector_;
    const bool cold =
        last->max_shard_utilization < config_.low_utilization &&
        last->p99_ms < p99_guard;
    if (cold) {
        bool changed = false;
        for (std::size_t s = 0; s < vector_.size(); ++s) {
            const bool idle =
                s >= last->shard_utilization.size() ||
                last->shard_utilization[s] < config_.low_utilization;
            if (idle && vector_[s] > config_.min_replicas) {
                vector_[s] = std::max(config_.min_replicas,
                                      vector_[s] - config_.step);
                changed = true;
            }
        }
        if (changed)
            last_change_epoch_ = epoch;
    }
    return vector_;
}

// ---------------------------------------------------------------------------
// Burn-rate.
// ---------------------------------------------------------------------------

BurnRateAutoscaler::BurnRateAutoscaler(std::vector<int> initial,
                                       BurnRateConfig config)
    : vector_(std::move(initial)), config_(config)
{
    assert(!vector_.empty());
    for (auto &r : vector_)
        r = std::clamp(r, config_.base.min_replicas,
                       config_.base.max_replicas);

    // Objectives run on the epoch index as their clock: horizon N
    // "seconds" with N buckets is one bucket per epoch.
    const auto objective = [&](const char *name, double budget) {
        obs::SloObjective o;
        o.name = name;
        o.budget_fraction = budget;
        o.fast_horizon_s = config_.fast_window_epochs;
        o.slow_horizon_s = config_.slow_window_epochs;
        o.buckets = config_.slow_window_epochs;
        o.fast_burn_threshold = config_.fast_burn_threshold;
        o.slow_burn_threshold = config_.slow_burn_threshold;
        o.pending_ticks = config_.pending_ticks;
        o.resolve_ticks = config_.resolve_ticks;
        return monitor_.addObjective(o);
    };
    const double shed_budget = config_.shed_budget_fraction > 0.0
                                   ? config_.shed_budget_fraction
                                   : config_.base.slo.max_shed_rate;
    latency_objective_ =
        objective("latency", config_.latency_budget_fraction);
    shed_objective_ = objective("shed", shed_budget);
}

std::vector<int>
BurnRateAutoscaler::decide(int epoch, const workload::DiurnalLoadModel &,
                           const EpochObservation *last)
{
    if (last == nullptr)
        return vector_; // nothing measured yet: serve the seed vector

    // Fold the finished epoch into the error budgets. Mid-epoch stamp:
    // bucket boundaries sit at integers, so epoch e is period e.
    const double t = static_cast<double>(last->epoch) + 0.5;
    const std::int64_t served =
        std::max<std::int64_t>(0, last->requests - last->shed_requests);
    const std::int64_t over = std::clamp<std::int64_t>(
        last->over_latency_target, 0, served);
    monitor_.record(latency_objective_, t,
                    static_cast<std::uint64_t>(served - over),
                    static_cast<std::uint64_t>(over));
    monitor_.record(shed_objective_, t,
                    static_cast<std::uint64_t>(served),
                    static_cast<std::uint64_t>(last->shed_requests));
    monitor_.evaluate(t);

    const bool alert_firing = monitor_.anyFiring();
    const bool util_pressure =
        last->max_shard_utilization > config_.base.high_utilization;

    if (alert_firing || util_pressure) {
        healthy_streak_ = 0;
        // A firing burn-rate alert is the fleet-wide signal (the budget
        // is provably burning everywhere the tail reaches); bare
        // utilization pressure creeps only the hot shards, as Reactive.
        const int step = alert_firing ? config_.base.pressure_step
                                      : config_.base.step;
        bool changed = false;
        for (std::size_t s = 0; s < vector_.size(); ++s) {
            const bool hot =
                alert_firing ||
                (s < last->shard_utilization.size() &&
                 last->shard_utilization[s] >
                     config_.base.high_utilization);
            if (hot && vector_[s] < config_.base.max_replicas) {
                vector_[s] = std::min(config_.base.max_replicas,
                                      vector_[s] + step);
                changed = true;
            }
        }
        if (changed)
            last_change_epoch_ = epoch;
        return vector_;
    }

    // Budget health: nothing firing and both slow burns comfortably
    // inside budget. Only a sustained healthy streak may scale down.
    const bool healthy =
        monitor_.status(latency_objective_).slow_burn <
            config_.health_burn_fraction * config_.slow_burn_threshold &&
        monitor_.status(shed_objective_).slow_burn <
            config_.health_burn_fraction * config_.slow_burn_threshold;
    healthy_streak_ = healthy ? healthy_streak_ + 1 : 0;

    if (healthy_streak_ < config_.healthy_epochs ||
        epoch - last_change_epoch_ <= config_.base.cooldown_epochs)
        return vector_;
    if (last->max_shard_utilization < config_.base.low_utilization) {
        bool changed = false;
        for (std::size_t s = 0; s < vector_.size(); ++s) {
            const bool idle =
                s >= last->shard_utilization.size() ||
                last->shard_utilization[s] <
                    config_.base.low_utilization;
            if (idle && vector_[s] > config_.base.min_replicas) {
                vector_[s] = std::max(config_.base.min_replicas,
                                      vector_[s] - config_.base.step);
                changed = true;
            }
        }
        if (changed)
            last_change_epoch_ = epoch;
    }
    return vector_;
}

// ---------------------------------------------------------------------------
// Predictive.
// ---------------------------------------------------------------------------

PredictiveAutoscaler::PredictiveAutoscaler(
    std::shared_ptr<CapacityPlanner> planner)
    : planner_(std::move(planner))
{
}

std::vector<int>
PredictiveAutoscaler::decide(int epoch,
                             const workload::DiurnalLoadModel &load,
                             const EpochObservation *)
{
    return planner_->replicaVectorFor(load.forecastQps(epoch));
}

// ---------------------------------------------------------------------------
// Factory registry.
// ---------------------------------------------------------------------------

namespace {

/**
 * Meyers-singleton registry seeded with the built-in policies (the repo
 * is single-threaded throughout, so no locking). std::map keeps
 * registeredAutoscalers() sorted for free.
 */
std::map<std::string, AutoscalerFactory> &
registry()
{
    static std::map<std::string, AutoscalerFactory> reg = [] {
        std::map<std::string, AutoscalerFactory> r;
        r["static-peak"] = [](const AutoscalerInputs &in)
            -> std::unique_ptr<Autoscaler> {
            assert(in.planner && "static-peak needs a capacity planner");
            return std::make_unique<StaticPeakAutoscaler>(in.planner);
        };
        r["reactive"] = [](const AutoscalerInputs &in)
            -> std::unique_ptr<Autoscaler> {
            return std::make_unique<ReactiveAutoscaler>(in.initial_vector,
                                                        in.reactive);
        };
        r["predictive"] = [](const AutoscalerInputs &in)
            -> std::unique_ptr<Autoscaler> {
            assert(in.planner && "predictive needs a capacity planner");
            return std::make_unique<PredictiveAutoscaler>(in.planner);
        };
        r["burn-rate"] = [](const AutoscalerInputs &in)
            -> std::unique_ptr<Autoscaler> {
            // Trigger parameters from burn_rate, actuation from the
            // shared reactive block: the studies compare triggers, not
            // actuation tunings.
            BurnRateConfig cfg = in.burn_rate;
            cfg.base = in.reactive;
            return std::make_unique<BurnRateAutoscaler>(in.initial_vector,
                                                        cfg);
        };
        return r;
    }();
    return reg;
}

} // namespace

bool
registerAutoscaler(const std::string &name, AutoscalerFactory factory)
{
    assert(factory && "null autoscaler factory");
    const bool replaced = registry().count(name) > 0;
    registry()[name] = std::move(factory);
    return replaced;
}

std::unique_ptr<Autoscaler>
makeAutoscaler(const std::string &name, const AutoscalerInputs &inputs)
{
    const auto it = registry().find(name);
    if (it == registry().end()) {
        std::string known;
        for (const auto &[n, f] : registry())
            known += (known.empty() ? "" : ", ") + n;
        throw std::invalid_argument("unknown autoscaler \"" + name +
                                    "\" (registered: " + known + ")");
    }
    return it->second(inputs);
}

std::vector<std::string>
registeredAutoscalers()
{
    std::vector<std::string> names;
    names.reserve(registry().size());
    for (const auto &[n, f] : registry())
        names.push_back(n);
    return names;
}

} // namespace dri::fleet
