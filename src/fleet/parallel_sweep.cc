#include "fleet/parallel_sweep.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace dri::fleet {

std::vector<SweepCell>
sweepGrid(const std::vector<std::string> &policies,
          const std::vector<std::uint64_t> &seeds)
{
    std::vector<SweepCell> cells;
    cells.reserve(policies.size() * seeds.size());
    for (const std::string &p : policies)
        for (const std::uint64_t s : seeds)
            cells.push_back(SweepCell{p, s});
    return cells;
}

FleetStats
runStudyCell(const FleetStudy &study, const SweepCell &cell)
{
    // The seed axis varies the *diurnal load realization* (burst draws,
    // request streams): each seed is one seeded day of traffic, which
    // is what a (policy x seed) grid averages over. Everything —
    // planner, policy, load model, FleetSim — is built fresh here so a
    // cell shares nothing mutable with its siblings.
    workload::DiurnalLoadConfig load_cfg = study.load;
    load_cfg.seed = cell.seed;
    const workload::DiurnalLoadModel load(study.spec, load_cfg);
    const AutoscalerInputs inputs = studyAutoscalerInputs(study, load);
    const auto policy = makeAutoscaler(cell.policy, inputs);

    FleetSim sim(study.spec, study.plan, study.serving, load, study.fleet);
    return sim.run(*policy);
}

std::vector<SweepResult>
ParallelSweep::run(const std::vector<SweepCell> &cells,
                   const CellRunner &runner) const
{
    std::vector<SweepResult> results(cells.size());
    if (cells.empty())
        return results;

    // Each worker claims the next unstarted cell and writes its result
    // at that cell's grid index: execution order is racy, the merged
    // output is not.
    std::atomic<std::size_t> cursor{0};
    std::mutex error_mu;
    std::exception_ptr first_error;

    const auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= cells.size())
                return;
            try {
                results[i].cell = cells[i];
                results[i].stats = runner(cells[i]);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    const std::size_t pool =
        threads_ <= 1
            ? 1
            : std::min(static_cast<std::size_t>(threads_), cells.size());
    if (pool == 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(pool);
        for (std::size_t t = 0; t < pool; ++t)
            threads.emplace_back(worker);
        for (std::thread &t : threads)
            t.join();
    }
    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

} // namespace dri::fleet
