/**
 * @file
 * The canonical fleet-autoscaling study: one deployment + diurnal trace
 * + policy parameterization shared by bench_fleet_autoscaling,
 * examples/fleet_study, and the fleet tests, so their self-checks all
 * measure the same fleet (the sparseBoundStudyConfig convention).
 *
 * The deployment is the sched study's sparse-bound DRM2 on a
 * capacity-balanced 4-shard plan — equal bytes per shard, deliberately
 * unequal compute, which is what makes per-shard replica vectors beat
 * uniform scaling. The pooled-result cache is on and per-shard row-cache
 * models are measured from a recorded trace slice, so reconfiguration
 * penalties (cold caches, result-cache invalidation) have teeth. Idle
 * power is set to 50% of peak — the non-power-proportionality that makes
 * parked machines the dominant TCO waste the autoscaler exists to
 * reclaim.
 */
#pragma once

#include "core/serving.h"
#include "core/sharding_plan.h"
#include "fleet/autoscaler.h"
#include "fleet/fleet_sim.h"
#include "model/model_spec.h"
#include "workload/diurnal.h"

namespace dri::fleet {

/** Everything a fleet experiment needs, built once. */
struct FleetStudy
{
    model::ModelSpec spec;
    core::ShardingPlan plan;
    core::ServingConfig serving;
    workload::DiurnalLoadConfig load;
    FleetConfig fleet;
    PlannerConfig planner;
    ReactiveConfig reactive;
};

/**
 * Build the canonical study. `smoke` halves the trace (one day instead
 * of two) and shortens the per-epoch request sample for CI budgets.
 */
FleetStudy makeFleetStudy(bool smoke = false);

/**
 * Wire the study into an AutoscalerInputs bundle for makeAutoscaler():
 * one shared CapacityPlanner fed the load model's own traffic, the
 * peak-forecast plan as every feedback policy's epoch-0 seed, and the
 * study's reactive parameterization (which the "burn-rate" factory also
 * grafts onto its actuation base). Callers tweak the returned bundle
 * (e.g. burn_rate trigger windows) before constructing policies.
 */
AutoscalerInputs
studyAutoscalerInputs(const FleetStudy &study,
                      const workload::DiurnalLoadModel &load);

} // namespace dri::fleet
