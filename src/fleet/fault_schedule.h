/**
 * @file
 * Deterministic fault scripts for chaos studies: a FaultSchedule is a
 * list of epoch-windowed fault events a FleetSim applies to its serving
 * deployments through the ServingSimulation runtime control surface
 * (killReplica / degradeReplica / partitionShard / invalidateResultCache)
 * plus two load-side overlays (snapshot-refresh storms, hot-key flash
 * crowds) that perturb the epoch's traffic instead of the fleet.
 *
 * Everything is a pure function of the schedule and the run's seeds —
 * there is no fault randomness of its own — so the same schedule yields
 * byte-identical FleetStats fingerprints across reruns, and an EMPTY
 * schedule leaves the simulation byte-identical to a fault-free build
 * (the purity contract the fleet baselines pin down).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dri::fleet {

/** Kinds of injected fault a schedule can carry. */
enum class FaultKind
{
    /**
     * A replica server goes dark at the start of the window (mid-epoch
     * for the first window epoch) and is restored when the window ends:
     * queued work lost, in-flight attempts time out, discovery reacts
     * after the configured lag.
     */
    ReplicaCrash,
    /**
     * Persistent slow node: the replica serves every attempt
     * `magnitude` x slower for the whole window (no per-attempt
     * re-roll, unlike straggler_prob).
     */
    SlowReplica,
    /** Main<->shard network partition for the window. */
    Partition,
    /**
     * Snapshot-refresh storm: the pooled-result cache is invalidated
     * and every shard's row-cache hit rate is scaled to `magnitude` of
     * steady for the window (mass re-warm after an embedding refresh).
     */
    SnapshotStorm,
    /**
     * Hot-key flash crowd: offered QPS multiplies by `magnitude` and
     * `hot_fraction` of the window's requests collapse onto one hot
     * feature vector — breaking the Zipf assumption the cache models
     * were calibrated on.
     */
    FlashCrowd,
};

/** Short lower-case kind name for tables and JSON rows. */
const char *faultKindName(FaultKind kind);

/** One scheduled fault episode over epochs [start_epoch, end_epoch). */
struct FaultEvent
{
    FaultKind kind = FaultKind::ReplicaCrash;
    int start_epoch = 0;
    /** Exclusive: the fault heals at this epoch's start. */
    int end_epoch = 1;
    /** Target shard (crash / slow / partition). */
    int shard = 0;
    /** Replica index within the shard's decided vector (crash / slow). */
    int replica = 0;
    /**
     * SlowReplica: service-time multiplier. SnapshotStorm: retained
     * share of steady row-cache hit rate. FlashCrowd: offered-rate
     * multiplier.
     */
    double magnitude = 1.0;
    /** FlashCrowd: fraction of requests collapsed onto the hot vector. */
    double hot_fraction = 0.0;
    /**
     * Declared blast-radius bound: the maximum tolerated fraction of an
     * epoch's requests missing the SLO (shed or over-latency) while the
     * event is active. The scorecard grades the measured blast radius
     * against this.
     */
    double declared_blast_radius = 1.0;
    /** Scorecard label; empty defaults to the kind name. */
    std::string label;

    bool activeAt(int epoch) const
    {
        return epoch >= start_epoch && epoch < end_epoch;
    }
    std::string name() const;
};

/**
 * Per-event outcome, graded from the run's telemetry ledger — the
 * chaos scorecard: how far the SLO dipped inside the fault window, and
 * how long PR 7's burn-rate clock took to read healthy again.
 */
struct ScenarioOutcome
{
    std::string scenario;
    FaultKind kind = FaultKind::ReplicaCrash;
    int start_epoch = 0;
    int end_epoch = 0;
    /** Max over active epochs of (shed + over-latency) / requests. */
    double blast_radius = 0.0;
    /** Min per-epoch SLO attainment over the active window. */
    double min_attainment = 1.0;
    /** blast_radius <= the event's declared bound. */
    bool within_declared_bound = true;
    /**
     * Epochs from onset until the burn-rate clock reads healthy (no
     * firing alert, every fast burn under threshold). 0 = the fault was
     * fully masked (never unhealthy); -1 = not recovered by trace end.
     */
    int recovery_epochs = -1;
    /** Requests shed during the active window. */
    std::int64_t shed_requests = 0;
    /**
     * Blast epoch (the active-window epoch with minimum attainment) and
     * the retained-trace request ids the trace sampler kept there —
     * the scorecard's link from "this scenario hurt" to concrete span
     * trees. Populated only when FleetSim trace sampling is enabled;
     * deliberately EXCLUDED from telemetry fingerprints so enabling
     * sampling stays observation-pure.
     */
    int exemplar_epoch = -1;
    std::vector<std::uint64_t> exemplar_requests;
};

/** Deterministic fault script a FleetSim applies per epoch. */
class FaultSchedule
{
  public:
    FaultSchedule &add(FaultEvent ev);

    // Convenience builders (all return *this for chaining).
    FaultSchedule &crashReplica(int shard, int replica, int start_epoch,
                                int end_epoch,
                                double declared_blast_radius = 1.0);
    FaultSchedule &slowReplica(int shard, int replica, double multiplier,
                               int start_epoch, int end_epoch,
                               double declared_blast_radius = 1.0);
    FaultSchedule &partition(int shard, int start_epoch, int end_epoch,
                             double declared_blast_radius = 1.0);
    FaultSchedule &snapshotStorm(int epoch, double warm_share = 0.5,
                                 double declared_blast_radius = 1.0);
    FaultSchedule &flashCrowd(double rate_multiplier, double hot_fraction,
                              int start_epoch, int end_epoch,
                              double declared_blast_radius = 1.0);

    bool empty() const { return events_.empty(); }
    const std::vector<FaultEvent> &events() const { return events_; }

    /** Events whose window covers `epoch`, in insertion order. */
    std::vector<const FaultEvent *> activeAt(int epoch) const;

    /**
     * Order-sensitive FNV over the event list: schedule identity for
     * determinism checks (same fingerprint => same injected faults).
     */
    std::uint64_t fingerprint() const;

  private:
    std::vector<FaultEvent> events_;
};

} // namespace dri::fleet
