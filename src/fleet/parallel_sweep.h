/**
 * @file
 * Parallel fleet sweeps: run a grid of (policy, seed) cells across a
 * thread pool and merge the ledgers deterministically.
 *
 * A sweep cell is one complete fleet run. Cells are independent by
 * construction — every thread builds its OWN DiurnalLoadModel, FleetSim,
 * CapacityPlanner, and Autoscaler from the shared immutable study, so no
 * simulation state crosses a thread boundary. The merge is positional:
 * results land at their cell's canonical grid index no matter which
 * thread ran them or in what order they finished, so the output vector
 * is byte-identical to a sequential sweep over the same grid.
 *
 * That equivalence is a *checkable* contract, not a hope:
 * FleetStats::fingerprint() and telemetryFingerprint() hash every
 * numeric field of every epoch, so `parallel == sequential` reduces to
 * comparing two integers per cell — which bench_parallel_sweep asserts
 * on every run and sim_perf_test pins at thread counts {1, 2, 8}.
 *
 * Thread-safety ground rules for callers: the CellRunner must touch
 * only the cell it is given plus immutable shared inputs, and nobody
 * may call registerAutoscaler() while a sweep is in flight (the policy
 * factory registry is read concurrently).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fleet/fleet_sim.h"
#include "fleet/study.h"

namespace dri::fleet {

/** One grid cell: a policy name (factory registry key) and a diurnal
 *  load seed (one seeded realization of the study's traffic). */
struct SweepCell
{
    std::string policy;
    std::uint64_t seed = 0;
};

/** One cell's ledger, tagged with the cell that produced it. */
struct SweepResult
{
    SweepCell cell;
    FleetStats stats;
};

/** The (policy x seed) cross product, policies major — the canonical
 *  cell order every sweep (sequential or parallel) merges into. */
std::vector<SweepCell> sweepGrid(const std::vector<std::string> &policies,
                                 const std::vector<std::uint64_t> &seeds);

/**
 * Run one cell of the canonical study, thread-confined: constructs a
 * fresh load model, planner bundle, policy, and FleetSim, with the
 * cell's seed replacing the study's diurnal load seed. Deterministic
 * in (study, cell) alone.
 */
FleetStats runStudyCell(const FleetStudy &study, const SweepCell &cell);

/** Fan a cell grid across a fixed-size thread pool. */
class ParallelSweep
{
  public:
    /** Produces the ledger for one cell; must be thread-confined. */
    using CellRunner = std::function<FleetStats(const SweepCell &)>;

    /** `threads` <= 1 runs the grid inline on the calling thread. */
    explicit ParallelSweep(int threads) : threads_(threads) {}

    /**
     * Run every cell and return results in grid order. Worker threads
     * claim cells from a shared atomic cursor (so a slow cell never
     * serializes the pool) and write results by cell index. The first
     * exception any cell throws is rethrown here after all threads
     * join.
     */
    std::vector<SweepResult> run(const std::vector<SweepCell> &cells,
                                 const CellRunner &runner) const;

    int threads() const { return threads_; }

  private:
    int threads_;
};

} // namespace dri::fleet
