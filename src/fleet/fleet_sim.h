/**
 * @file
 * The fleet-level control-plane simulator: run the serving engine through
 * a sequence of diurnal load epochs and reconfigure it between them.
 *
 * Each epoch e:
 *   1. The Autoscaler decides the sparse-replica vector for e (seeing
 *      only the load model's forecast and the previous epoch's measured
 *      observation).
 *   2. The epoch's request sample replays open-loop at the *realized*
 *      rate (bursts included) through fresh ServingSimulations, split
 *      into segments when the vector changed:
 *        - scale-up provisioning lag: the first lag_fraction of the
 *          epoch still serves on the OLD vector (new machines are
 *          booting — and billed) while offered load is already the new
 *          epoch's;
 *        - cold-cache window: the next cold_fraction serves on the new
 *          vector with scaled-up shards' row-cache hit rates degraded by
 *          the cold-replica warmup ramp (a shard that grew from r to r'
 *          replicas serves at (r + 0.5*(r'-r))/r' of its steady hit rate
 *          while the new caches fill), and with the pooled-result cache
 *          invalidated through ServingSimulation::invalidateResultCache()
 *          — reconfiguration reshards traffic, so pooled responses from
 *          the old layout are dropped and must be re-earned;
 *        - steady remainder: new vector, warm caches.
 *      Request streams carry over between epochs via a prewarm slice
 *      (replayed before counters engage) so the pooled-result cache has
 *      cross-epoch continuity exactly when no reconfiguration happened.
 *   3. The ledger charges machine-hours (decided vector for the whole
 *      epoch, plus the old plan's extra machines during a scale-up lag),
 *      watt-hours (per-segment measured utilization through the platform
 *      idle/busy power curve, idle draw for still-booting replicas), SLO
 *      violations (overall and outside the declared reconfiguration
 *      window), and shed volume.
 *
 * Everything is seeded: two runs with the same configuration produce
 * byte-identical FleetStats (fingerprint()-comparable), which is what
 * makes policy ledgers diffable across commits.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "core/serving.h"
#include "core/sharding_plan.h"
#include "dc/replication.h"
#include "fleet/autoscaler.h"
#include "fleet/fault_schedule.h"
#include "model/model_spec.h"
#include "obs/detect.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/slo_monitor.h"
#include "obs/span_tracer.h"
#include "sched/capacity_search.h"
#include "workload/diurnal.h"

namespace dri::fleet {

/** Reconfiguration penalty model. */
struct ReconfigPenaltyConfig
{
    /**
     * Fraction of a scale-up epoch served by the OLD vector while new
     * replicas boot. Offered load is already the new epoch's, so an
     * under-provisioned old plan eats the queueing this window causes.
     */
    double provisioning_lag_fraction = 0.1;
    /**
     * Fraction of a reconfigured epoch (after the lag) during which
     * scaled-up shards serve with cold-replica row caches and the
     * pooled-result cache refills from its invalidation.
     */
    double cold_cache_fraction = 0.15;
};

/**
 * Telemetry analysis attached to a fleet run: SLO burn-rate alerting
 * over the measured per-epoch event counts, plus an online burst
 * detector on the offered/forecast load ratio, scored against the load
 * model's seeded ground truth. Pure post-epoch arithmetic over values
 * the ledger already measured — it can NEVER feed back into the
 * simulation, so FleetStats::fingerprint() is byte-identical with the
 * analysis on or off (the purity contract fleet_test pins down). Only
 * an autoscaling policy that consumes its own alert stream (e.g.
 * BurnRateAutoscaler) changes a run, and that is a different policy,
 * not a monitor side effect.
 */
struct TelemetryConfig
{
    bool enabled = true;

    /** Burn windows in epochs (scaled by epoch_duration_s). */
    int fast_window_epochs = 2;
    int slow_window_epochs = 6;
    double fast_burn_threshold = 4.0;
    double slow_burn_threshold = 2.0;
    int pending_ticks = 1;
    int resolve_ticks = 2;

    /** Allowed fraction of served requests over the SLO P99 target. */
    double latency_budget_fraction = 0.01;
    /** Allowed shed fraction; <= 0 inherits slo.max_shed_rate. */
    double shed_budget_fraction = 0.0;
    /** Allowed fraction of epochs in (whole-epoch) SLO violation. */
    double availability_budget_fraction = 0.10;

    /** Online burst detector over offered/forecast per epoch. */
    obs::EwmaMadConfig burst_detector;
    /** Episode-matching window for the detection scorecard. */
    int detect_match_window_epochs = 2;
};

/** Fleet-simulation parameters. */
struct FleetConfig
{
    sched::SloSpec slo;
    /** Epochs to simulate (across days of config().epochs_per_day). */
    int epochs = 24;
    /** Wall-clock length one epoch stands for (machine-hour unit). */
    double epoch_duration_s = 3600.0;
    /** Request-sample length replayed per epoch. */
    std::size_t requests_per_epoch = 280;
    /** Carry-over slice replayed before counters engage (0 disables). */
    std::size_t prewarm_requests = 48;
    ReconfigPenaltyConfig penalty;
    /** Count the main shard's machine in the ledgers. */
    bool count_main_shard = true;
    std::uint64_t seed = 0xf1ee7;
    /**
     * Optional metrics registry (src/obs). When set, FleetSim registers
     * per-epoch gauges/counters (offered load, P99, shed/hedge/cache-hit
     * rates, utilization, replica vector, peak replica queue) and takes
     * one snapshot per epoch at the epoch's end time, turning autoscaler
     * behavior into a plottable JSONL time-series instead of a final
     * ledger. Pure observer — attaching it never changes the ledger
     * fingerprint. Not owned; must outlive run().
     */
    obs::MetricsRegistry *metrics = nullptr;
    /** Burn-rate/detector analysis folded into FleetStats::telemetry. */
    TelemetryConfig telemetry;
    /**
     * Injected-fault script (empty by default). Events apply per epoch
     * through the serving runtime control surface; an empty schedule is
     * byte-identical to a fault-free run (purity), and the same
     * schedule reproduces byte-identical ledgers (determinism). With
     * telemetry enabled, each event is graded into a ScenarioOutcome
     * scorecard on the telemetry side-ledger.
     */
    FaultSchedule faults;
    /**
     * Sim-time position of a crash *onset* within its first epoch's
     * steady segment (fraction of the segment's span): the replica
     * serves normally until this point, then goes dark mid-traffic —
     * which is what exercises the queued-work-lost and in-flight-
     * timeout paths rather than starting the epoch already dead.
     */
    double crash_at_fraction = 0.25;

    /**
     * Bounded per-epoch trace retention via obs::TraceSampler. When
     * enabled, every epoch runs with a fresh span tracer + sampler
     * (seed mixed with the epoch index) and a per-segment rolling
     * latency feed driving the tail threshold; the epoch's retained
     * traces are summarized into TelemetryLedger::traces and blast-
     * epoch exemplar request ids are attached to chaos scorecards.
     * Observation-pure by construction: the sampler draws only its
     * private RNG, so ledger AND telemetry fingerprints are identical
     * with sampling on or off (asserted by fleet tests).
     */
    struct TraceSamplingConfig
    {
        bool enabled = false;
        /** Retained-trace byte budget per epoch. */
        std::size_t per_epoch_byte_budget = 256u << 10;
        double tail_quantile = 0.99;
        std::size_t reservoir_size = 8;
        std::uint64_t seed = 0x7ace5eed;
        /** Max exemplar request ids per epoch summary / scorecard. */
        std::size_t scenario_exemplars = 4;
    };
    TraceSamplingConfig trace_sampling;
};

/** One epoch's ledger row. */
struct EpochRecord
{
    int epoch = 0;
    double forecast_qps = 0.0;
    double offered_qps = 0.0;
    std::vector<int> replicas;
    bool reconfigured = false;
    bool scaled_up = false;
    bool scaled_down = false;

    /** Served-request P99 across the whole epoch. */
    double p99_ms = 0.0;
    /** Served-request P99 outside the declared reconfiguration window. */
    double steady_p99_ms = 0.0;
    double shed_rate = 0.0;
    std::int64_t shed_requests = 0;
    /** SLO check over the whole epoch (reconfiguration window included). */
    bool slo_violation = false;
    /** SLO check outside the declared reconfiguration window. */
    bool steady_slo_violation = false;

    double machine_hours = 0.0;
    double watt_hours = 0.0;
    double mean_sparse_utilization = 0.0;
    double max_sparse_utilization = 0.0;
    double result_cache_hit_rate = 0.0;
    /** Hedge backups per primary dispatch across the epoch's segments. */
    double hedge_rate = 0.0;
    /** Deepest replica queue (in-flight + queued) observed at dispatch. */
    std::int64_t peak_replica_queue = 0;

    /** dc-costed deployment at the decided vector (measured utilization). */
    dc::DeploymentPlan plan;
    std::int64_t planMemoryBytes() const { return plan.totalMemoryBytes(); }
    double planPowerWatts() const { return plan.totalPowerWatts(); }
};

/** One epoch's telemetry row (parallel to EpochRecord). */
struct EpochTelemetry
{
    int epoch = 0;
    /** Offered/forecast ratio — the burst detector's input signal. */
    double load_ratio = 0.0;
    /** The online anomaly detector flagged this epoch. */
    bool burst_flagged = false;
    double latency_fast_burn = 0.0;
    double latency_slow_burn = 0.0;
    double shed_fast_burn = 0.0;
    double shed_slow_burn = 0.0;
    double availability_fast_burn = 0.0;
    double availability_slow_burn = 0.0;
    /** Cumulative latency error budget consumed (> 1 = exhausted). */
    double latency_budget_consumed = 0.0;
    /** Objectives in the Firing state after this epoch's evaluation. */
    int alerts_firing = 0;
};

/** One epoch's trace-retention summary (sampling enabled only). */
struct EpochTraceSummary
{
    int epoch = 0;
    std::uint64_t roots_closed = 0;
    std::uint64_t retained = 0;
    std::uint64_t retained_bytes = 0;
    std::uint64_t kept_flagged = 0;
    std::uint64_t kept_tail = 0;
    std::uint64_t kept_reservoir = 0;
    std::uint64_t recycled = 0;
    std::uint64_t dropped_stale = 0; //!< feed samples over a horizon late

    /** One retained trace worth pointing an investigation at. */
    struct Exemplar
    {
        std::uint64_t request_id = 0;
        obs::KeepClass keep_class = obs::KeepClass::Recycled;
        sim::Duration e2e = 0;
    };
    /** Highest-priority retained traces (class desc, then e2e desc). */
    std::vector<Exemplar> exemplars;
};

/** The telemetry side-ledger a monitored fleet run produces. */
struct TelemetryLedger
{
    std::vector<EpochTelemetry> epochs;
    /** Alert lifecycle event log, in emission order. */
    std::vector<obs::AlertEvent> alerts;
    /** Online burst detector scored against the load model's truth. */
    obs::DetectionEval burst_eval;
    /**
     * Per-fault-event chaos scorecards (blast radius, recovery time on
     * the burn-rate clock), one per FaultSchedule event, in schedule
     * order. Empty for fault-free runs — and folded into fingerprint()
     * only when non-empty, so telemetry fingerprints of fault-free runs
     * are unchanged from before the fault layer existed.
     */
    std::vector<ScenarioOutcome> scenarios;
    /**
     * Per-epoch trace-retention summaries (one per epoch when
     * FleetConfig::trace_sampling is enabled, else empty). EXCLUDED
     * from fingerprint(): sampling must be fingerprint-invisible.
     */
    std::vector<EpochTraceSummary> traces;

    int alertCount(obs::AlertTransition t) const;

    /**
     * Same contract as FleetStats::fingerprint(), over the telemetry
     * ledger: equal fingerprints mean byte-identical alert streams,
     * burn trajectories, and detection scorecards.
     */
    std::uint64_t fingerprint() const;
};

/** The fleet ledger one policy run produces. */
struct FleetStats
{
    std::string policy;
    std::vector<EpochRecord> epochs;
    /** Analysis side-ledger (empty when FleetConfig telemetry is off). */
    TelemetryLedger telemetry;

    double totalMachineHours() const;
    double totalWattHours() const;
    int sloViolationEpochs() const;
    int steadySloViolationEpochs() const;
    std::int64_t totalShedRequests() const;
    int reconfigurations() const;

    /**
     * Order-sensitive hash over every numeric field of every epoch (bit
     * patterns, not rounded values): equal fingerprints mean
     * byte-identical ledgers, the determinism contract reruns assert.
     * Deliberately EXCLUDES the telemetry side-ledger: the simulation
     * fingerprint must be identical with monitors attached or not.
     */
    std::uint64_t fingerprint() const;

    /** fingerprint() over the telemetry side-ledger. */
    std::uint64_t telemetryFingerprint() const
    {
        return telemetry.fingerprint();
    }
};

/** Epoch driver: one policy through one diurnal trace. */
class FleetSim
{
  public:
    FleetSim(const model::ModelSpec &spec, const core::ShardingPlan &plan,
             core::ServingConfig base_serving,
             const workload::DiurnalLoadModel &load, FleetConfig config);

    /** Run the policy through all epochs and return its ledger. */
    FleetStats run(Autoscaler &policy);

    const FleetConfig &config() const { return cfg_; }

  private:
    struct SegmentResult;
    struct FaultPlan;

    /** Per-segment tracing hooks (null members when sampling is off). */
    struct TraceHooks
    {
        obs::SpanTracer *tracer = nullptr;
        /** Fresh per segment: each segment's sim clock restarts at 0. */
        obs::RollingHistogram *feed = nullptr;
    };

    SegmentResult
    runSegment(const std::vector<int> &replicas,
               const std::vector<workload::Request> &slice, double qps,
               const std::vector<workload::Request> &prewarm,
               bool invalidate_result_cache,
               const std::vector<int> &prev_replicas, bool degrade_caches,
               std::uint64_t seed_salt, const FaultPlan *faults,
               TraceHooks trace);

    model::ModelSpec spec_;
    core::ShardingPlan plan_;
    core::ServingConfig base_;
    const workload::DiurnalLoadModel &load_;
    FleetConfig cfg_;
};

} // namespace dri::fleet
