#include "fleet/fault_schedule.h"

#include <cassert>
#include <cstring>

namespace dri::fleet {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::ReplicaCrash:
        return "replica-crash";
    case FaultKind::SlowReplica:
        return "slow-replica";
    case FaultKind::Partition:
        return "partition";
    case FaultKind::SnapshotStorm:
        return "snapshot-storm";
    case FaultKind::FlashCrowd:
        return "flash-crowd";
    }
    return "unknown";
}

std::string
FaultEvent::name() const
{
    return label.empty() ? faultKindName(kind) : label;
}

FaultSchedule &
FaultSchedule::add(FaultEvent ev)
{
    assert(ev.start_epoch >= 0 && ev.end_epoch > ev.start_epoch);
    events_.push_back(std::move(ev));
    return *this;
}

FaultSchedule &
FaultSchedule::crashReplica(int shard, int replica, int start_epoch,
                            int end_epoch, double declared_blast_radius)
{
    FaultEvent ev;
    ev.kind = FaultKind::ReplicaCrash;
    ev.shard = shard;
    ev.replica = replica;
    ev.start_epoch = start_epoch;
    ev.end_epoch = end_epoch;
    ev.declared_blast_radius = declared_blast_radius;
    return add(std::move(ev));
}

FaultSchedule &
FaultSchedule::slowReplica(int shard, int replica, double multiplier,
                           int start_epoch, int end_epoch,
                           double declared_blast_radius)
{
    assert(multiplier > 0.0);
    FaultEvent ev;
    ev.kind = FaultKind::SlowReplica;
    ev.shard = shard;
    ev.replica = replica;
    ev.magnitude = multiplier;
    ev.start_epoch = start_epoch;
    ev.end_epoch = end_epoch;
    ev.declared_blast_radius = declared_blast_radius;
    return add(std::move(ev));
}

FaultSchedule &
FaultSchedule::partition(int shard, int start_epoch, int end_epoch,
                         double declared_blast_radius)
{
    FaultEvent ev;
    ev.kind = FaultKind::Partition;
    ev.shard = shard;
    ev.start_epoch = start_epoch;
    ev.end_epoch = end_epoch;
    ev.declared_blast_radius = declared_blast_radius;
    return add(std::move(ev));
}

FaultSchedule &
FaultSchedule::snapshotStorm(int epoch, double warm_share,
                             double declared_blast_radius)
{
    assert(warm_share > 0.0 && warm_share <= 1.0);
    FaultEvent ev;
    ev.kind = FaultKind::SnapshotStorm;
    ev.magnitude = warm_share;
    ev.start_epoch = epoch;
    ev.end_epoch = epoch + 1;
    ev.declared_blast_radius = declared_blast_radius;
    return add(std::move(ev));
}

FaultSchedule &
FaultSchedule::flashCrowd(double rate_multiplier, double hot_fraction,
                          int start_epoch, int end_epoch,
                          double declared_blast_radius)
{
    assert(rate_multiplier >= 1.0);
    assert(hot_fraction >= 0.0 && hot_fraction <= 1.0);
    FaultEvent ev;
    ev.kind = FaultKind::FlashCrowd;
    ev.magnitude = rate_multiplier;
    ev.hot_fraction = hot_fraction;
    ev.start_epoch = start_epoch;
    ev.end_epoch = end_epoch;
    ev.declared_blast_radius = declared_blast_radius;
    return add(std::move(ev));
}

std::vector<const FaultEvent *>
FaultSchedule::activeAt(int epoch) const
{
    std::vector<const FaultEvent *> out;
    for (const auto &ev : events_)
        if (ev.activeAt(epoch))
            out.push_back(&ev);
    return out;
}

std::uint64_t
FaultSchedule::fingerprint() const
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto bytes = [&h](const void *p, std::size_t n) {
        const auto *b = static_cast<const unsigned char *>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 0x100000001b3ULL;
        }
    };
    const auto addI = [&](std::int64_t v) { bytes(&v, sizeof v); };
    const auto addD = [&](double v) {
        std::uint64_t b = 0;
        std::memcpy(&b, &v, sizeof b);
        bytes(&b, sizeof b);
    };
    addI(static_cast<std::int64_t>(events_.size()));
    for (const auto &ev : events_) {
        addI(static_cast<int>(ev.kind));
        addI(ev.start_epoch);
        addI(ev.end_epoch);
        addI(ev.shard);
        addI(ev.replica);
        addD(ev.magnitude);
        addD(ev.hot_fraction);
        addD(ev.declared_blast_radius);
        bytes(ev.label.data(), ev.label.size());
    }
    return h;
}

} // namespace dri::fleet
