#include "stats/summary.h"

#include <algorithm>
#include <cmath>

namespace dri::stats {

double
utilizationFraction(double busy_integral, std::size_t capacity,
                    double elapsed)
{
    if (capacity == 0 || elapsed <= 0.0)
        return 0.0;
    const double u =
        busy_integral / (static_cast<double>(capacity) * elapsed);
    return std::min(1.0, std::max(0.0, u));
}

void
RunningSummary::add(double sample)
{
    if (count_ == 0) {
        min_ = sample;
        max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
    ++count_;
    sum_ += sample;
    const double delta = sample - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (sample - mean_);
}

double
RunningSummary::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningSummary::stddev() const
{
    return std::sqrt(variance());
}

void
RunningSummary::merge(const RunningSummary &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ = (n1 * mean_ + n2 * other.mean_) / n;
    m2_ = m2_ + other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

} // namespace dri::stats
