/**
 * @file
 * Console table rendering shared by the benchmark harness. Every figure/table
 * reproduction prints aligned rows through this printer so bench output is
 * uniform and diffable.
 */
#pragma once

#include <string>
#include <vector>

namespace dri::stats {

/** Column-aligned ASCII table builder. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 3);
    /** Format as a percentage with sign, e.g. "+7.3%". */
    static std::string pct(double fraction, int precision = 1);
    /** Format an int list as "[1,2,3]" (replica vectors etc.). */
    static std::string intList(const std::vector<int> &values);

    /** Render the table with a separator under the header. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner used to delimit benchmark output blocks. */
std::string banner(const std::string &title);

} // namespace dri::stats
