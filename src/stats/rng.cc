#include "stats/rng.h"

#include <random>

namespace dri::stats {

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    // Rejection-sampled range scaling; cold path, so the std::
    // distribution object is fine here.
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

} // namespace dri::stats
