#include "stats/rng.h"

namespace dri::stats {

double
Rng::uniform()
{
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double
Rng::uniform(double lo, double hi)
{
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double
Rng::gaussian()
{
    return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

double
Rng::gaussian(double mean, double stddev)
{
    return std::normal_distribution<double>(mean, stddev)(engine_);
}

double
Rng::exponential(double rate)
{
    return std::exponential_distribution<double>(rate)(engine_);
}

bool
Rng::bernoulli(double p)
{
    return std::bernoulli_distribution(p)(engine_);
}

Rng
Rng::fork(std::uint64_t salt) const
{
    // SplitMix64-style mix of (seed, salt) gives well-separated child seeds
    // without consuming draws from the parent stream.
    std::uint64_t z = seed_ + 0x9e3779b97f4a7c15ULL * (salt + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z = z ^ (z >> 31);
    return Rng(z);
}

} // namespace dri::stats
