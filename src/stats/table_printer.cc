#include "stats/table_printer.h"

#include <cassert>
#include <iomanip>
#include <sstream>

namespace dri::stats {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    assert(!headers_.empty());
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TablePrinter::pct(double fraction, int precision)
{
    std::ostringstream os;
    os << std::showpos << std::fixed << std::setprecision(precision)
       << fraction * 100.0 << "%";
    return os.str();
}

std::string
TablePrinter::intList(const std::vector<int> &values)
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < values.size(); ++i)
        os << (i ? "," : "") << values[i];
    os << "]";
    return os.str();
}

std::string
TablePrinter::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << cells[c];
            os << (c + 1 == cells.size() ? "\n" : "  ");
        }
    };
    emit(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
banner(const std::string &title)
{
    std::string line(72, '=');
    return line + "\n" + title + "\n" + line + "\n";
}

} // namespace dri::stats
