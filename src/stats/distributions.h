/**
 * @file
 * Parametric samplers used throughout workload and network modelling.
 *
 * The paper's workload structure is distributional: request sizes are
 * heavy-tailed (P99 latency is ~5x P50, Table III), embedding-table sizes
 * follow either a long tail (DRM1/DRM2) or a single dominant mass (DRM3,
 * Fig. 5), and network jitter is modelled as lognormal, the standard choice
 * for data-center RPC latency.
 */
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "stats/rng.h"

namespace dri::stats {

/**
 * Lognormal sampler parameterized by the *median* and the sigma of the
 * underlying normal. median = exp(mu) makes calibration against measured
 * medians direct.
 */
class LognormalSampler
{
  public:
    LognormalSampler(double median, double sigma);

    /** Inline: every simulated wire hop pays one of these. */
    double
    sample(Rng &rng) const
    {
        if (sigma_ == 0.0)
            return median_;
        return std::exp(mu_ + sigma_ * rng.gaussian());
    }

    /** Analytic mean: exp(mu + sigma^2 / 2). */
    double mean() const;

    double median() const { return median_; }
    double sigma() const { return sigma_; }

  private:
    double median_;
    double sigma_;
    double mu_;
};

/**
 * Bounded Pareto sampler for heavy-tailed request sizes. alpha controls tail
 * weight (smaller = heavier); samples lie in [lo, hi].
 */
class BoundedParetoSampler
{
  public:
    BoundedParetoSampler(double alpha, double lo, double hi);

    double sample(Rng &rng) const;

    double alpha() const { return alpha_; }
    double lo() const { return lo_; }
    double hi() const { return hi_; }

  private:
    double alpha_;
    double lo_;
    double hi_;
};

/**
 * Zipf sampler over ranks 1..n with exponent s, via inverse-CDF on the
 * precomputed normalization. Used for skewed embedding-row popularity.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::size_t n, double s);

    /** Returns a rank in [0, n). Rank 0 is the most popular. */
    std::size_t sample(Rng &rng) const;

    std::size_t n() const { return cdf_.size(); }
    double s() const { return s_; }

  private:
    std::vector<double> cdf_;
    double s_;
};

/**
 * Open-loop Poisson arrival process: interarrival gaps are exponential with
 * the configured rate. Used by the 25 QPS experiment (Fig. 16).
 */
class PoissonProcess
{
  public:
    explicit PoissonProcess(double rate_per_sec) : rate_(rate_per_sec) {}

    /** Next interarrival gap in seconds. */
    double nextGapSeconds(Rng &rng) const;

    double rate() const { return rate_; }

  private:
    double rate_;
};

} // namespace dri::stats
