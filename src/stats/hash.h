/**
 * @file
 * Shared non-cryptographic hashing primitives. One definition of the
 * splitmix64 finalizer, so the cache-key hashes, admission sketch, and
 * result-cache signatures all mix with the identical, tested constant
 * sequence instead of hand-copied ones.
 */
#pragma once

#include <cstdint>

namespace dri::stats {

/** splitmix64 finalizer: a fast, well-distributed 64-bit bit mixer. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

} // namespace dri::stats
