#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace dri::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins, Scale scale)
    : lo_(lo), hi_(hi), scale_(scale), counts_(bins, 0)
{
    assert(bins > 0);
    assert(hi > lo);
    if (scale == Scale::Log)
        assert(lo > 0.0);
}

std::size_t
Histogram::binFor(double sample) const
{
    double pos;
    if (scale_ == Scale::Linear) {
        pos = (sample - lo_) / (hi_ - lo_);
    } else {
        const double s = std::max(sample, lo_);
        pos = (std::log(s) - std::log(lo_)) / (std::log(hi_) - std::log(lo_));
    }
    const double scaled = pos * static_cast<double>(counts_.size());
    const auto idx = static_cast<std::int64_t>(std::floor(scaled));
    const auto max_idx = static_cast<std::int64_t>(counts_.size()) - 1;
    return static_cast<std::size_t>(std::clamp<std::int64_t>(idx, 0, max_idx));
}

void
Histogram::add(double sample)
{
    ++counts_[binFor(sample)];
    ++total_;
}

double
Histogram::binLo(std::size_t bin) const
{
    const double f = static_cast<double>(bin) /
                     static_cast<double>(counts_.size());
    if (scale_ == Scale::Linear)
        return lo_ + f * (hi_ - lo_);
    return std::exp(std::log(lo_) + f * (std::log(hi_) - std::log(lo_)));
}

double
Histogram::binHi(std::size_t bin) const
{
    return binLo(bin + 1);
}

double
Histogram::fraction(std::size_t bin) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(bin)) /
           static_cast<double>(total_);
}

double
Histogram::cumulativeFraction(std::size_t bin) const
{
    if (total_ == 0)
        return 0.0;
    std::size_t acc = 0;
    for (std::size_t i = 0; i <= bin; ++i)
        acc += counts_[i];
    return static_cast<double>(acc) / static_cast<double>(total_);
}

std::string
Histogram::render(std::size_t width) const
{
    std::ostringstream os;
    std::size_t max_count = 0;
    for (auto c : counts_)
        max_count = std::max(max_count, c);
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const std::size_t bar =
            max_count == 0 ? 0 : counts_[i] * width / max_count;
        os << "[" << binLo(i) << ", " << binHi(i) << ") "
           << std::string(bar, '#') << " " << counts_[i] << "\n";
    }
    return os.str();
}

} // namespace dri::stats
