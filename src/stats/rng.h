/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis and
 * network jitter. Every stochastic component in the library draws from an
 * explicitly seeded Rng so that experiments are bit-reproducible.
 */
#pragma once

#include <cstdint>
#include <random>

namespace dri::stats {

/**
 * A seeded 64-bit Mersenne Twister with convenience draw helpers.
 *
 * Rng is cheap to copy but typically passed by reference; components that
 * need independent streams should derive one with fork() so that adding a
 * consumer never perturbs the draws seen by existing consumers.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). Requires lo <= hi. */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi], inclusive. Requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal draw. */
    double gaussian();

    /** Normal draw with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Exponential draw with the given rate (events per unit time). */
    double exponential(double rate);

    /** Bernoulli draw: true with probability p. */
    bool bernoulli(double p);

    /**
     * Derive an independent child stream. The child's sequence is a pure
     * function of (parent seed, salt), not of how many draws the parent has
     * made.
     */
    Rng fork(std::uint64_t salt) const;

    /** The seed this stream was constructed with. */
    std::uint64_t seed() const { return seed_; }

    /** Expose the engine for std:: distribution interop. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
    std::uint64_t seed_;
};

} // namespace dri::stats
