/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis and
 * network jitter. Every stochastic component in the library draws from an
 * explicitly seeded Rng so that experiments are bit-reproducible.
 */
#pragma once

#include <cmath>
#include <cstdint>

#include "stats/mt64.h"

namespace dri::stats {

/**
 * A seeded 64-bit Mersenne Twister with convenience draw helpers.
 *
 * Rng is cheap to copy but typically passed by reference; components that
 * need independent streams should derive one with fork() so that adding a
 * consumer never perturbs the draws seen by existing consumers. The
 * engine is Mt64, a lazily-seeded generator output-identical to
 * std::mt19937_64 — forks are cheap (no eager 312-word state expansion),
 * and every historical draw value is preserved bit-for-bit.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

    /** Uniform double in [0, 1). */
    double uniform() { return canonical(); }

    /** Uniform double in [lo, hi). Requires lo <= hi. */
    double uniform(double lo, double hi)
    {
        return canonical() * (hi - lo) + lo;
    }

    /** Uniform integer in [lo, hi], inclusive. Requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /**
     * Standard normal draw. Marsaglia polar method, matching
     * std::normal_distribution's variate sequence (the second coordinate
     * of each accepted pair is returned; the first would be the
     * distribution object's cached deviate, which per-call construction
     * always discarded).
     */
    double
    gaussian()
    {
        double x, y, r2;
        do {
            x = 2.0 * canonical() - 1.0;
            y = 2.0 * canonical() - 1.0;
            r2 = x * x + y * y;
        } while (r2 > 1.0 || r2 == 0.0);
        const double mult = std::sqrt(-2.0 * std::log(r2) / r2);
        return y * mult;
    }

    /** Normal draw with the given mean and standard deviation. */
    double gaussian(double mean, double stddev)
    {
        return gaussian() * stddev + mean;
    }

    /** Exponential draw with the given rate (events per unit time). */
    double exponential(double rate) { return -std::log(1.0 - canonical()) / rate; }

    /** Bernoulli draw: true with probability p. */
    bool bernoulli(double p) { return canonical() < p; }

    /**
     * Derive an independent child stream. The child's sequence is a pure
     * function of (parent seed, salt), not of how many draws the parent has
     * made. SplitMix64-style mix of (seed, salt) gives well-separated
     * child seeds without consuming draws from the parent stream.
     */
    Rng
    fork(std::uint64_t salt) const
    {
        std::uint64_t z = seed_ + 0x9e3779b97f4a7c15ULL * (salt + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z = z ^ (z >> 31);
        return Rng(z);
    }

    /** The seed this stream was constructed with. */
    std::uint64_t seed() const { return seed_; }

    /** Expose the engine for std:: distribution interop. */
    Mt64 &engine() { return engine_; }

  private:
    /**
     * One canonical double in [0, 1) from a full 64-bit engine word —
     * exactly what libstdc++'s std::generate_canonical<double, 53>
     * produces for a URBG spanning the full 2^64 range (one draw, scale
     * by 2^-64, clamp the rounded-up-to-1.0 edge back below 1). The
     * draw helpers hand-roll their distributions on top of this instead
     * of constructing std:: distribution objects per call: the values
     * are bit-identical (locked down by sim_perf_test against the std::
     * implementations), but the per-call cost drops severalfold.
     */
    double
    canonical()
    {
        double r = static_cast<double>(engine_()) * 0x1p-64;
        if (r >= 1.0)
            r = std::nextafter(1.0, 0.0);
        return r;
    }

    Mt64 engine_;
    std::uint64_t seed_;
};

} // namespace dri::stats
