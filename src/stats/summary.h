/**
 * @file
 * Streaming mean/variance accumulation (Welford) for cheap online summaries
 * where full sample retention is unnecessary.
 */
#pragma once

#include <cstddef>

namespace dri::stats {

/**
 * Worker-pool utilization from a busy-time integral: busy unit-time over
 * capacity x elapsed, clamped to [0, 1]. Returns 0 when nothing elapsed.
 */
double utilizationFraction(double busy_integral, std::size_t capacity,
                           double elapsed);

/** Online mean / variance / min / max accumulator. */
class RunningSummary
{
  public:
    void add(double sample);

    std::size_t count() const { return count_; }
    double mean() const { return mean_; }
    /** Population variance; 0 with fewer than two samples. */
    double variance() const;
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }
    double sum() const { return sum_; }

    /** Merge another summary into this one (parallel Welford). */
    void merge(const RunningSummary &other);

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

} // namespace dri::stats
