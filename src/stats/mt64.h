/**
 * @file
 * Lazily-seeded 64-bit Mersenne Twister, output-identical to
 * std::mt19937_64.
 *
 * The serving hot path forks a fresh child stream per RPC attempt
 * (common-random-numbers discipline), and each attempt consumes only a
 * handful of draws. std::mt19937_64 pays the full 312-word seed
 * expansion at construction plus a full 312-word twist on the first
 * draw — ~2 us on commodity hardware, which dominated simulator wall
 * time at ~20k forks per run. Mt64 defers both: seed words materialize
 * incrementally (word i of the first twist needs raw words up to
 * i + 156), and first-block twisting advances one word per draw. A
 * fork that draws 8 values touches ~170 state words instead of ~624.
 *
 * Output equivalence with std::mt19937_64 (same seed, same draw index)
 * is exact: identical init multiplier, twist masks, and tempering
 * shifts, and the in-place twist uses the same new-vs-old word choices
 * as the reference implementation (the last word of a block reads the
 * block's already-twisted word 0). Long-lived streams degrade
 * gracefully: once the first block is consumed, steady state is the
 * classic full-block twist. sim_perf_test locks the equivalence down
 * across seeds, draw counts, and block boundaries.
 *
 * Satisfies UniformRandomBitGenerator, so std:: distributions draw
 * through it unchanged — and produce the same values they would from
 * std::mt19937_64, since only min()/max() and the output stream enter
 * their math.
 */
#pragma once

#include <cstdint>

namespace dri::stats {

class Mt64
{
  public:
    using result_type = std::uint64_t;

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    explicit Mt64(std::uint64_t seed)
    {
        mt_[0] = seed;
    }

    result_type
    operator()()
    {
        if (next_ >= kN) {
            twistAll();
            next_ = 0;
            lazy_ = false;
        } else if (lazy_) {
            twistTo(next_ + 1);
        }
        std::uint64_t y = mt_[next_++];
        y ^= (y >> 29) & 0x5555555555555555ULL;
        y ^= (y << 17) & 0x71D67FFFEDA60000ULL;
        y ^= (y << 37) & 0xFFF7EEE000000000ULL;
        y ^= y >> 43;
        return y;
    }

  private:
    static constexpr int kN = 312;
    static constexpr int kM = 156;
    static constexpr std::uint64_t kMatrixA = 0xB5026F5AA96619E9ULL;
    static constexpr std::uint64_t kUpperMask = 0xFFFFFFFF80000000ULL;
    static constexpr std::uint64_t kLowerMask = 0x000000007FFFFFFFULL;
    static constexpr std::uint64_t kInitMult = 6364136223846793005ULL;

    /** Materialize raw seed words [seeded_, n). First block only. */
    void
    seedTo(int n)
    {
        std::uint64_t x = mt_[seeded_ - 1];
        for (int i = seeded_; i < n; ++i) {
            x = kInitMult * (x ^ (x >> 62)) + static_cast<std::uint64_t>(i);
            mt_[i] = x;
        }
        if (n > seeded_)
            seeded_ = n;
    }

    static std::uint64_t
    twistTerm(std::uint64_t hi, std::uint64_t lo)
    {
        const std::uint64_t y = (hi & kUpperMask) | (lo & kLowerMask);
        return (y >> 1) ^ ((y & 1) ? kMatrixA : 0);
    }

    /**
     * Twist first-block words [twisted_, n) in place. Words below
     * kN - kM mix raw seed word i + kM; later words mix the block's own
     * already-twisted low words, exactly as the reference full twist
     * does when it overwrites the array front-to-back.
     */
    void
    twistTo(int n)
    {
        if (twisted_ >= n)
            return;
        seedTo(n <= kN - kM ? n + kM : kN);
        for (int i = twisted_; i < n; ++i) {
            const int src = i < kN - kM ? i + kM : i + kM - kN;
            mt_[i] = mt_[src] ^ twistTerm(mt_[i], mt_[(i + 1) % kN]);
        }
        twisted_ = n;
    }

    /** Classic full-block in-place twist (steady state). */
    void
    twistAll()
    {
        for (int i = 0; i < kN - kM; ++i)
            mt_[i] = mt_[i + kM] ^ twistTerm(mt_[i], mt_[i + 1]);
        for (int i = kN - kM; i < kN - 1; ++i)
            mt_[i] = mt_[i + kM - kN] ^ twistTerm(mt_[i], mt_[i + 1]);
        mt_[kN - 1] = mt_[kM - 1] ^ twistTerm(mt_[kN - 1], mt_[0]);
    }

    std::uint64_t mt_[kN];
    int seeded_ = 1;   //!< Raw seed words materialized (first block).
    int twisted_ = 0;  //!< First-block words twisted so far.
    int next_ = 0;     //!< Next output index within the current block.
    bool lazy_ = true; //!< Still inside the lazily-expanded first block.
};

} // namespace dri::stats
