#include "stats/quantile.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace dri::stats {

QuantileEstimator::QuantileEstimator(std::size_t rolling_capacity)
    : rolling_capacity_(rolling_capacity)
{
}

void
QuantileEstimator::evictOverflow()
{
    if (rolling_capacity_ == 0)
        return;
    if (count() > rolling_capacity_)
        head_ = samples_.size() - rolling_capacity_;
    // Compact once the dead prefix dominates, keeping add() amortized
    // O(1): each erased element was appended exactly once.
    if (head_ > 64 && head_ > samples_.size() / 2) {
        samples_.erase(samples_.begin(),
                       samples_.begin() + static_cast<std::ptrdiff_t>(head_));
        head_ = 0;
    }
}

void
QuantileEstimator::add(double sample)
{
    samples_.push_back(sample);
    evictOverflow();
    sorted_valid_ = false;
}

void
QuantileEstimator::addAll(const std::vector<double> &samples)
{
    samples_.insert(samples_.end(), samples.begin(), samples.end());
    evictOverflow();
    sorted_valid_ = false;
}

void
QuantileEstimator::setRollingCapacity(std::size_t capacity)
{
    rolling_capacity_ = capacity;
    evictOverflow();
    sorted_valid_ = false;
}

void
QuantileEstimator::ensureSorted() const
{
    if (!sorted_valid_) {
        sorted_.assign(samples_.begin() + static_cast<std::ptrdiff_t>(head_),
                       samples_.end());
        std::sort(sorted_.begin(), sorted_.end());
        sorted_valid_ = true;
    }
}

double
QuantileEstimator::quantile(double q) const
{
    assert(!empty());
    assert(q >= 0.0 && q <= 1.0);
    ensureSorted();
    if (sorted_.size() == 1)
        return sorted_.front();
    const double pos = q * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double
QuantileEstimator::mean() const
{
    assert(!empty());
    return sum() / static_cast<double>(count());
}

double
QuantileEstimator::sum() const
{
    // Accumulate in sorted order: the sum then depends only on the
    // live multiset, so merged-shard and whole-stream estimators agree
    // to the bit (the contract the merge tests pin down).
    ensureSorted();
    return std::accumulate(sorted_.begin(), sorted_.end(), 0.0);
}

void
QuantileEstimator::merge(const QuantileEstimator &other)
{
    if (other.empty())
        return;
    if (&other == this) {
        // Self-merge doubles the stream; copy first so the insertion
        // never reads through iterators a reallocation invalidated.
        const std::vector<double> copy(
            samples_.begin() + static_cast<std::ptrdiff_t>(head_),
            samples_.end());
        samples_.insert(samples_.end(), copy.begin(), copy.end());
    } else {
        samples_.insert(samples_.end(),
                        other.samples_.begin() +
                            static_cast<std::ptrdiff_t>(other.head_),
                        other.samples_.end());
    }
    evictOverflow();
    sorted_valid_ = false;
}

void
QuantileEstimator::clear()
{
    samples_.clear();
    sorted_.clear();
    head_ = 0;
    sorted_valid_ = true;
}

} // namespace dri::stats
