#include "stats/quantile.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace dri::stats {

void
QuantileEstimator::add(double sample)
{
    samples_.push_back(sample);
    sorted_ = false;
}

void
QuantileEstimator::addAll(const std::vector<double> &samples)
{
    samples_.insert(samples_.end(), samples.begin(), samples.end());
    sorted_ = false;
}

void
QuantileEstimator::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
QuantileEstimator::quantile(double q) const
{
    assert(!samples_.empty());
    assert(q >= 0.0 && q <= 1.0);
    ensureSorted();
    if (samples_.size() == 1)
        return samples_.front();
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double
QuantileEstimator::mean() const
{
    assert(!samples_.empty());
    return sum() / static_cast<double>(samples_.size());
}

double
QuantileEstimator::sum() const
{
    return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

void
QuantileEstimator::merge(const QuantileEstimator &other)
{
    if (other.samples_.empty())
        return;
    if (&other == this) {
        // Self-merge doubles the stream; copy first so the insertion
        // never reads through iterators a reallocation invalidated.
        const std::vector<double> copy = samples_;
        samples_.insert(samples_.end(), copy.begin(), copy.end());
    } else {
        samples_.insert(samples_.end(), other.samples_.begin(),
                        other.samples_.end());
    }
    sorted_ = false;
}

void
QuantileEstimator::clear()
{
    samples_.clear();
    sorted_ = true;
}

} // namespace dri::stats
