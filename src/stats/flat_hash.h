/**
 * @file
 * Open-addressing hash map for simulation hot paths.
 *
 * std::unordered_map pays a node allocation per insert and a pointer
 * chase per lookup; the hot serving maps (live-request registry) are
 * small, churn constantly, and never need iterator or reference
 * stability. FlatHashMap stores slots contiguously with linear probing
 * (power-of-two capacity, backward-shift deletion, so no tombstone
 * accumulation) and allocates only when the table grows.
 *
 * Requirements: K and V cheaply copyable (the intended use is integer
 * keys mapping to pointers). Not a drop-in std::unordered_map — the API
 * is the minimal find/insert/erase the hot paths need.
 */
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace dri::stats {

template <class K, class V, class Hash = std::hash<K>>
class FlatHashMap
{
  public:
    FlatHashMap() = default;

    /** Pointer to the mapped value, or nullptr when absent. */
    V *
    find(const K &key)
    {
        if (slots_.empty())
            return nullptr;
        for (std::size_t i = bucketOf(key);; i = (i + 1) & mask_) {
            if (!slots_[i].used)
                return nullptr;
            if (slots_[i].key == key)
                return &slots_[i].val;
        }
    }

    /** Insert-or-assign. */
    void
    insert(const K &key, V val)
    {
        if (slots_.empty() || (size_ + 1) * 10 > slots_.size() * 7)
            rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
        for (std::size_t i = bucketOf(key);; i = (i + 1) & mask_) {
            if (!slots_[i].used) {
                slots_[i].used = true;
                slots_[i].key = key;
                slots_[i].val = val;
                ++size_;
                return;
            }
            if (slots_[i].key == key) {
                slots_[i].val = val;
                return;
            }
        }
    }

    /** Remove the key if present; returns whether it was. */
    bool
    erase(const K &key)
    {
        if (slots_.empty())
            return false;
        for (std::size_t i = bucketOf(key);; i = (i + 1) & mask_) {
            if (!slots_[i].used)
                return false;
            if (slots_[i].key == key) {
                eraseAt(i);
                return true;
            }
        }
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Drop every entry, keeping the table's capacity. */
    void
    clear()
    {
        for (Slot &s : slots_)
            s = Slot{};
        size_ = 0;
    }

  private:
    struct Slot
    {
        K key{};
        V val{};
        bool used = false;
    };

    static constexpr std::size_t kMinCapacity = 16;

    std::size_t
    bucketOf(const K &key) const
    {
        return Hash{}(key)&mask_;
    }

    /**
     * Backward-shift deletion: pull each displaced follower of the
     * probe chain into the hole instead of leaving a tombstone.
     */
    void
    eraseAt(std::size_t i)
    {
        std::size_t hole = i;
        for (std::size_t k = (i + 1) & mask_; slots_[k].used;
             k = (k + 1) & mask_) {
            const std::size_t ideal = bucketOf(slots_[k].key);
            if (((k - ideal) & mask_) >= ((k - hole) & mask_)) {
                slots_[hole] = slots_[k];
                hole = k;
            }
        }
        slots_[hole].used = false;
        --size_;
    }

    void
    rehash(std::size_t capacity)
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(capacity, Slot{});
        mask_ = capacity - 1;
        size_ = 0;
        for (const Slot &s : old)
            if (s.used)
                insert(s.key, s.val);
    }

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace dri::stats
