#include "stats/distributions.h"

#include <cassert>
#include <cmath>

namespace dri::stats {

LognormalSampler::LognormalSampler(double median, double sigma)
    : median_(median), sigma_(sigma), mu_(std::log(median))
{
    assert(median > 0.0 && sigma >= 0.0);
}

double
LognormalSampler::mean() const
{
    return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

BoundedParetoSampler::BoundedParetoSampler(double alpha, double lo, double hi)
    : alpha_(alpha), lo_(lo), hi_(hi)
{
    assert(alpha > 0.0 && lo > 0.0 && hi >= lo);
}

double
BoundedParetoSampler::sample(Rng &rng) const
{
    if (lo_ == hi_)
        return lo_;
    // Inverse CDF of the bounded Pareto distribution.
    const double u = rng.uniform();
    const double la = std::pow(lo_, alpha_);
    const double ha = std::pow(hi_, alpha_);
    const double x = std::pow(-(u * ha - u * la - ha) / (ha * la),
                              -1.0 / alpha_);
    return x;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s)
{
    assert(n > 0);
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
        cdf_[k] = acc;
    }
    for (auto &v : cdf_)
        v /= acc;
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.uniform();
    // Binary search for the first cdf entry >= u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (cdf_[mid] < u)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

double
PoissonProcess::nextGapSeconds(Rng &rng) const
{
    return rng.exponential(rate_);
}

} // namespace dri::stats
