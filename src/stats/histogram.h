/**
 * @file
 * Fixed-bin and log-scale histograms for latency and size distributions
 * (Fig. 5's table-size distribution, operator latency spreads).
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dri::stats {

/**
 * A histogram over [lo, hi) with uniformly or logarithmically spaced bins.
 * Samples outside the range are clamped into the first/last bin so that
 * counts are never silently dropped.
 */
class Histogram
{
  public:
    enum class Scale { Linear, Log };

    Histogram(double lo, double hi, std::size_t bins,
              Scale scale = Scale::Linear);

    void add(double sample);

    std::size_t binCount() const { return counts_.size(); }
    std::size_t count(std::size_t bin) const { return counts_.at(bin); }
    std::size_t totalCount() const { return total_; }

    /** Inclusive lower edge of the given bin. */
    double binLo(std::size_t bin) const;
    /** Exclusive upper edge of the given bin. */
    double binHi(std::size_t bin) const;

    /** Fraction of samples in the given bin; 0 if the histogram is empty. */
    double fraction(std::size_t bin) const;

    /** Cumulative fraction of samples at or below the bin's upper edge. */
    double cumulativeFraction(std::size_t bin) const;

    /** Render a compact ASCII bar chart, one bin per line. */
    std::string render(std::size_t width = 40) const;

  private:
    double lo_;
    double hi_;
    Scale scale_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;

    std::size_t binFor(double sample) const;
};

} // namespace dri::stats
