/**
 * @file
 * Exact quantile computation over collected samples.
 *
 * The paper reports P50/P90/P99 everywhere (Figs. 6, 7, 16; Table III). Our
 * experiments collect at most a few hundred thousand per-request samples, so
 * an exact sorted-sample estimator is both affordable and removes sketch
 * error from the reproduction.
 */
#pragma once

#include <cstddef>
#include <vector>

namespace dri::stats {

/**
 * Accumulates double samples and answers arbitrary quantile queries exactly
 * using linear interpolation between order statistics (the same convention
 * as numpy.percentile's default).
 */
class QuantileEstimator
{
  public:
    QuantileEstimator() = default;

    void add(double sample);
    void addAll(const std::vector<double> &samples);

    /** Number of samples collected so far. */
    std::size_t count() const { return samples_.size(); }

    bool empty() const { return samples_.empty(); }

    /**
     * Quantile query; q in [0, 1]. Requires at least one sample.
     * q = 0 returns the minimum, q = 1 the maximum.
     */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p90() const { return quantile(0.90); }
    double p99() const { return quantile(0.99); }
    /** P99.9 — the overload experiments' extreme-tail metric. */
    double p999() const { return quantile(0.999); }

    double min() const { return quantile(0.0); }
    double max() const { return quantile(1.0); }
    double mean() const;
    double sum() const;

    /**
     * Absorb another estimator's samples. Because the estimator is
     * exact, merging per-shard estimators then querying is identical to
     * feeding the whole stream into one estimator — the property that
     * lets fleet segments aggregate tails without collecting globally.
     */
    void merge(const QuantileEstimator &other);

    /** Discard all samples. */
    void clear();

  private:
    /** Lazily sorted sample buffer. */
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;

    void ensureSorted() const;
};

} // namespace dri::stats
