/**
 * @file
 * Exact quantile computation over collected samples.
 *
 * The paper reports P50/P90/P99 everywhere (Figs. 6, 7, 16; Table III). Our
 * experiments collect at most a few hundred thousand per-request samples, so
 * an exact sorted-sample estimator is both affordable and removes sketch
 * error from the reproduction.
 */
#pragma once

#include <cstddef>
#include <vector>

namespace dri::stats {

/**
 * Accumulates double samples and answers arbitrary quantile queries exactly
 * using linear interpolation between order statistics (the same convention
 * as numpy.percentile's default).
 *
 * Two retention modes:
 *  - unbounded (default): every sample ever added contributes;
 *  - rolling (setRollingCapacity(n)): only the n most recent samples
 *    contribute — older ones decay out in arrival order, which is what
 *    turns the estimator into a windowed tail tracker (the rolling-P99
 *    feed src/obs/timeseries.h builds on). A rolling estimator over a
 *    stream answers exactly what a fresh estimator fed only the last n
 *    samples would (the self-consistency property the tests pin down).
 */
class QuantileEstimator
{
  public:
    QuantileEstimator() = default;

    /** Construct directly in rolling mode (0 = unbounded). */
    explicit QuantileEstimator(std::size_t rolling_capacity);

    void add(double sample);
    void addAll(const std::vector<double> &samples);

    /**
     * Keep only the `capacity` most recent samples from now on (0
     * restores unbounded retention). Samples already held are trimmed
     * immediately, oldest first.
     */
    void setRollingCapacity(std::size_t capacity);

    /** Rolling-window capacity; 0 means unbounded. */
    std::size_t rollingCapacity() const { return rolling_capacity_; }

    /** Number of live samples (the rolling window's content, if rolling). */
    std::size_t count() const { return samples_.size() - head_; }

    bool empty() const { return count() == 0; }

    /**
     * Quantile query; q in [0, 1]. Requires at least one sample.
     * q = 0 returns the minimum, q = 1 the maximum.
     */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p90() const { return quantile(0.90); }
    double p99() const { return quantile(0.99); }
    /** P99.9 — the overload experiments' extreme-tail metric. */
    double p999() const { return quantile(0.999); }

    double min() const { return quantile(0.0); }
    double max() const { return quantile(1.0); }
    double mean() const;
    double sum() const;

    /**
     * Absorb another estimator's samples. Because the estimator is
     * exact, merging per-shard estimators then querying is identical to
     * feeding the whole stream into one estimator — the property that
     * lets fleet segments aggregate tails without collecting globally.
     */
    void merge(const QuantileEstimator &other);

    /** Discard all samples. */
    void clear();

  private:
    /**
     * Arrival-order master buffer; [head_, size) is the live window.
     * Rolling eviction advances head_ and compacts lazily, so add()
     * stays amortized O(1) in both modes.
     */
    std::vector<double> samples_;
    std::size_t head_ = 0;
    std::size_t rolling_capacity_ = 0;

    /** Sorted copy of the live window, rebuilt on demand. */
    mutable std::vector<double> sorted_;
    mutable bool sorted_valid_ = true;

    void evictOverflow();
    void ensureSorted() const;
};

} // namespace dri::stats
