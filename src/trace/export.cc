#include "trace/export.h"

#include <sstream>

namespace dri::trace {

namespace {

void
appendEvent(std::ostringstream &os, const Span &span, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    // Chrome trace events use microsecond timestamps.
    const double ts = static_cast<double>(span.begin) / 1000.0;
    const double dur = static_cast<double>(span.duration()) / 1000.0;
    // pid: main shard = 0, sparse shard s = s + 1.
    const int pid = span.shard_id == kMainShard ? 0 : span.shard_id + 1;
    // tid: one lane per (net, batch).
    const int tid = (span.net_id + 1) * 1000 + (span.batch_id + 1);
    os << "  {\"name\": \"" << layerName(span.layer) << "\", "
       << "\"cat\": \"" << (layerIsCpu(span.layer) ? "cpu" : "wait")
       << "\", \"ph\": \"X\", \"ts\": " << ts << ", \"dur\": " << dur
       << ", \"pid\": " << pid << ", \"tid\": " << tid
       << ", \"args\": {\"request\": " << span.request_id << "}}";
}

} // namespace

std::string
chromeTraceJson(const TraceCollector &collector, std::uint64_t request_id,
                bool all_requests)
{
    std::ostringstream os;
    os << "{\n\"traceEvents\": [\n";
    bool first = true;
    for (const auto &span : collector.spans()) {
        if (!all_requests && span.request_id != request_id)
            continue;
        appendEvent(os, span, first);
    }
    os << "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
    return os.str();
}

} // namespace dri::trace
