/**
 * @file
 * Trace collection. Mirrors the paper's lock-free-buffer + offline
 * post-processing design: the serving engine appends spans and RPC records
 * as they complete; analyses consume them after the run. Raw span retention
 * is optional because figure-level experiments only need the aggregated
 * per-request statistics that the serving engine computes inline.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "trace/span.h"

namespace dri::trace {

/** Append-only store of spans and RPC records for one experiment run. */
class TraceCollector
{
  public:
    /** @param retain_spans keep raw spans (trace rendering) or drop them. */
    explicit TraceCollector(bool retain_spans = false)
        : retain_spans_(retain_spans)
    {
    }

    /**
     * Inline on purpose: the serving engine emits a span per wire hop
     * and per sparse execution, and with retention off (the default for
     * figure-level runs) the whole call must fold down to one counter
     * increment at the call site.
     */
    void
    addSpan(const Span &span)
    {
        ++span_count_;
        if (retain_spans_)
            spans_.push_back(span);
    }

    void addRpc(const RpcRecord &record) { rpcs_.push_back(record); }

    bool retainsSpans() const { return retain_spans_; }

    const std::vector<Span> &spans() const { return spans_; }
    const std::vector<RpcRecord> &rpcs() const { return rpcs_; }

    /** Spans belonging to one request, in begin-time order. */
    std::vector<Span> spansForRequest(std::uint64_t request_id) const;

    /** RPC records belonging to one request. */
    std::vector<RpcRecord> rpcsForRequest(std::uint64_t request_id) const;

    /** Total spans observed (counted even when not retained). */
    std::uint64_t spanCount() const { return span_count_; }

    void clear();

  private:
    bool retain_spans_;
    std::vector<Span> spans_;
    std::vector<RpcRecord> rpcs_;
    std::uint64_t span_count_ = 0;
};

} // namespace dri::trace
