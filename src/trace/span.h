/**
 * @file
 * Cross-layer distributed-trace primitives (Section IV).
 *
 * The paper instruments three layers — the RPC service stack, the ML
 * framework, and the operators — on every shard, correlating spans through
 * request context propagation. A Span here carries the same attribution:
 * which request, which shard, which net/batch, which *layer* of the stack,
 * and whether the interval consumed CPU (wall-clock is a proxy for CPU for
 * small sequential spans; network/wait spans are wall-only).
 */
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace dri::trace {

/** Shard id used for the main (dense) shard in traces. */
constexpr int kMainShard = -1;

/** Stack layer a span is attributed to, mirroring the paper's buckets. */
enum class Layer {
    RequestSerDe,    //!< RPC request/response (de)serialization
    ServiceFunction, //!< RPC handler boilerplate outside net & serde
    NetOverhead,     //!< framework time not spent executing operators
    DenseOp,         //!< dense/transform/activation operator execution
    SparseOp,        //!< SLS operator execution
    ClientDispatch,  //!< issuing an asynchronous RPC op
    EmbeddedWait,    //!< main shard waiting on sparse responses (wall)
    Network,         //!< on-the-wire + kernel time (wall)
    QueueWait,       //!< waiting for a worker core (wall)
};

/** Human-readable layer label (used by the ASCII trace renderer). */
std::string layerName(Layer layer);

/** True if the layer represents CPU execution rather than waiting. */
bool layerIsCpu(Layer layer);

/** One traced interval. */
struct Span
{
    std::uint64_t request_id = 0;
    int shard_id = kMainShard;
    int net_id = -1;   //!< -1 when not net-scoped
    int batch_id = -1; //!< -1 when not batch-scoped
    Layer layer = Layer::ServiceFunction;
    sim::SimTime begin = 0;
    sim::SimTime end = 0;

    sim::Duration duration() const { return end - begin; }
};

/**
 * Summary of one sparse-shard RPC, recorded by the serving engine. The
 * paper's latency attribution (Section IV-B) uses the slowest asynchronous
 * sparse request per main-shard request; these records make that analysis
 * direct.
 */
struct RpcRecord
{
    std::uint64_t request_id = 0;
    int shard_id = 0;
    int net_id = 0;
    int batch_id = 0;

    sim::SimTime dispatched = 0;     //!< client issued the request
    sim::SimTime completed = 0;      //!< response visible at main shard

    // Remote-side components (CPU unless noted).
    sim::Duration remote_queue_ns = 0;   //!< wall: waiting for a core
    sim::Duration remote_serde_ns = 0;
    sim::Duration remote_service_ns = 0;
    sim::Duration remote_net_overhead_ns = 0;
    sim::Duration remote_sparse_op_ns = 0;

    /** Total outstanding time observed at the main shard. */
    sim::Duration outstanding() const { return completed - dispatched; }

    /** E2E service time on the sparse shard (queue + CPU components). */
    sim::Duration remoteE2e() const
    {
        return remote_queue_ns + remote_serde_ns + remote_service_ns +
               remote_net_overhead_ns + remote_sparse_op_ns;
    }

    /**
     * Network latency, measured exactly as the paper does: outstanding
     * request time at the main shard minus E2E time at the sparse shard
     * (absorbs clock skew between servers).
     */
    sim::Duration networkLatency() const
    {
        return outstanding() - remoteE2e();
    }
};

} // namespace dri::trace
