#include "trace/collector.h"

#include <algorithm>

namespace dri::trace {

std::vector<Span>
TraceCollector::spansForRequest(std::uint64_t request_id) const
{
    std::vector<Span> out;
    for (const auto &s : spans_)
        if (s.request_id == request_id)
            out.push_back(s);
    std::sort(out.begin(), out.end(), [](const Span &a, const Span &b) {
        if (a.begin != b.begin)
            return a.begin < b.begin;
        return a.end < b.end;
    });
    return out;
}

std::vector<RpcRecord>
TraceCollector::rpcsForRequest(std::uint64_t request_id) const
{
    std::vector<RpcRecord> out;
    for (const auto &r : rpcs_)
        if (r.request_id == request_id)
            out.push_back(r);
    return out;
}

void
TraceCollector::clear()
{
    spans_.clear();
    rpcs_.clear();
    span_count_ = 0;
}

} // namespace dri::trace
