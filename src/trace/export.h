/**
 * @file
 * Trace export in the Chrome trace-event JSON format, so distributed
 * traces collected by the framework can be inspected interactively in
 * chrome://tracing or Perfetto. Shards map to processes, (net, batch)
 * lanes to threads, and each span becomes a complete ("X") event.
 */
#pragma once

#include <cstdint>
#include <string>

#include "trace/collector.h"

namespace dri::trace {

/**
 * Export one request's spans (or all spans when request_id is 0 and
 * all_requests is true) as a Chrome trace-event JSON document.
 *
 * @param collector must retain spans.
 */
std::string chromeTraceJson(const TraceCollector &collector,
                            std::uint64_t request_id,
                            bool all_requests = false);

} // namespace dri::trace
