/**
 * @file
 * ASCII rendering of a distributed trace, reproducing the visualization of
 * Fig. 3: shards as horizontal slices (main shard on top), spans as
 * proportional bars over a shared wall-clock axis.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/collector.h"

namespace dri::trace {

/**
 * Render all spans of one request as a timeline.
 *
 * @param collector must have been constructed with retain_spans = true.
 * @param request_id request to render.
 * @param width      character width of the time axis.
 */
std::string renderRequestTrace(const TraceCollector &collector,
                               std::uint64_t request_id,
                               std::size_t width = 100);

} // namespace dri::trace
