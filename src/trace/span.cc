#include "trace/span.h"

namespace dri::trace {

std::string
layerName(Layer layer)
{
    switch (layer) {
      case Layer::RequestSerDe:
        return "RPC Ser/De";
      case Layer::ServiceFunction:
        return "RPC Service Function";
      case Layer::NetOverhead:
        return "Caffe2 Net Overhead";
      case Layer::DenseOp:
        return "Dense Ops";
      case Layer::SparseOp:
        return "Caffe2 Sparse Ops";
      case Layer::ClientDispatch:
        return "Async RPC Dispatch";
      case Layer::EmbeddedWait:
        return "Embedded Portion";
      case Layer::Network:
        return "Network Latency";
      case Layer::QueueWait:
        return "Queue Wait";
    }
    return "Unknown";
}

bool
layerIsCpu(Layer layer)
{
    switch (layer) {
      case Layer::RequestSerDe:
      case Layer::ServiceFunction:
      case Layer::NetOverhead:
      case Layer::DenseOp:
      case Layer::SparseOp:
      case Layer::ClientDispatch:
        return true;
      case Layer::EmbeddedWait:
      case Layer::Network:
      case Layer::QueueWait:
        return false;
    }
    return false;
}

} // namespace dri::trace
