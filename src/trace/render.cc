#include "trace/render.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

namespace dri::trace {

namespace {

/** One-character glyph per layer for the timeline bars. */
char
layerGlyph(Layer layer)
{
    switch (layer) {
      case Layer::RequestSerDe:
        return 's';
      case Layer::ServiceFunction:
        return 'f';
      case Layer::NetOverhead:
        return 'o';
      case Layer::DenseOp:
        return 'D';
      case Layer::SparseOp:
        return 'S';
      case Layer::ClientDispatch:
        return 'c';
      case Layer::EmbeddedWait:
        return '.';
      case Layer::Network:
        return '~';
      case Layer::QueueWait:
        return 'q';
    }
    return '?';
}

} // namespace

std::string
renderRequestTrace(const TraceCollector &collector, std::uint64_t request_id,
                   std::size_t width)
{
    const auto spans = collector.spansForRequest(request_id);
    std::ostringstream os;
    if (spans.empty()) {
        os << "(no spans for request " << request_id
           << "; was the collector retaining spans?)\n";
        return os.str();
    }

    sim::SimTime t0 = spans.front().begin;
    sim::SimTime t1 = spans.front().end;
    for (const auto &s : spans) {
        t0 = std::min(t0, s.begin);
        t1 = std::max(t1, s.end);
    }
    const double scale = t1 > t0
                             ? static_cast<double>(width) /
                                   static_cast<double>(t1 - t0)
                             : 0.0;

    // Group spans into lanes: the main shard first, then sparse shards in
    // id order; within a shard, one lane per (net, batch) pair so
    // concurrent batches are visible.
    std::map<std::tuple<int, int, int>, std::vector<const Span *>> lanes;
    for (const auto &s : spans)
        lanes[{s.shard_id == kMainShard ? -1 : s.shard_id, s.net_id,
               s.batch_id}]
            .push_back(&s);

    os << "request " << request_id << "  span=" << (t1 - t0) << "ns  ("
       << sim::toMillis(t1 - t0) << " ms)\n";
    os << "legend: D=dense S=sparse s=serde f=service o=net-overhead "
          "c=dispatch .=wait ~=network q=queue\n";

    int last_shard = -2;
    for (const auto &kv : lanes) {
        const int shard = std::get<0>(kv.first);
        if (shard != last_shard) {
            if (shard == -1)
                os << "-- main shard " << std::string(width - 4, '-') << "\n";
            else
                os << "-- sparse shard " << shard << " "
                   << std::string(width - 8, '-') << "\n";
            last_shard = shard;
        }
        std::string lane(width, ' ');
        for (const auto *s : kv.second) {
            auto b = static_cast<std::size_t>(
                static_cast<double>(s->begin - t0) * scale);
            auto e = static_cast<std::size_t>(
                static_cast<double>(s->end - t0) * scale);
            b = std::min(b, width - 1);
            e = std::min(std::max(e, b + 1), width);
            for (std::size_t i = b; i < e; ++i)
                lane[i] = layerGlyph(s->layer);
        }
        os << "net" << std::get<1>(kv.first) << "/b" << std::get<2>(kv.first)
           << " |" << lane << "|\n";
    }
    return os.str();
}

} // namespace dri::trace
