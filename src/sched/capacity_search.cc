#include "sched/capacity_search.h"

#include <cassert>
#include <cmath>

#include "core/analysis.h"

namespace dri::sched {

core::ServingConfig
sparseBoundStudyConfig(rpc::LoadBalancePolicy policy, int sparse_replicas,
                       std::uint64_t seed)
{
    core::ServingConfig cfg;
    cfg.seed = seed;
    cfg.worker_threads = 40;
    cfg.sparse_worker_threads = 2;
    cfg.lookup_base_ns = 400.0;
    cfg.lookup_ns_per_row_byte = 0.8;
    cfg.sparse_replicas = sparse_replicas;
    cfg.lb_policy = policy;
    return cfg;
}

core::ServingConfig
hedgeStudyConfig(rpc::LoadBalancePolicy policy, int sparse_replicas,
                 bool hedged, std::uint64_t seed)
{
    core::ServingConfig cfg = sparseBoundStudyConfig(policy,
                                                     sparse_replicas, seed);
    // Wider sparse pools than the LB study: queueing stays stable at high
    // rates, so the tail is straggler-dominated — the regime hedging
    // attacks (the LB study's 2-worker pools put the tail in chaotic
    // queue excursions instead, which no backup can outrun).
    cfg.sparse_worker_threads = 6;
    // Transient co-located-service interference: ~2% of RPC attempts run
    // 8x slower. This is the straggler tail the quantile deadline trips
    // on; a re-rolled backup almost never hits the same event.
    cfg.faults.straggler_prob = 0.02;
    cfg.faults.straggler_multiplier = 8.0;
    cfg.hedge.enabled = hedged;
    cfg.hedge.quantile = 0.95;
    cfg.hedge.min_samples = 64;
    cfg.hedge.max_hedge_fraction = 0.10;
    return cfg;
}

CapacitySearch::CapacitySearch(const model::ModelSpec &spec,
                               const core::ShardingPlan &plan,
                               core::ServingConfig serving,
                               CapacitySearchConfig search)
    : spec_(spec), plan_(plan), serving_(std::move(serving)),
      search_(std::move(search))
{
    assert(search_.qps_lo > 0.0 && search_.qps_hi >= search_.qps_lo);
    assert(search_.grid_step > 1.0);
}

CapacityProbe
CapacitySearch::probe(double qps,
                      const std::vector<workload::Request> &requests)
{
    core::ServingSimulation sim(spec_, plan_, serving_);
    std::vector<core::RequestStats> stats;
    if (search_.use_batcher)
        stats = runBatchedOpenLoop(sim, requests, qps, search_.batcher,
                                   search_.arrival_seed);
    else
        stats = sim.replayOpenLoop(requests, qps);

    const auto q = core::latencyQuantiles(stats);
    CapacityProbe p;
    p.qps = qps;
    p.p99_ms = q.p99_ms;
    p.p999_ms = q.p999_ms;
    p.shed_rate = core::shedRate(stats);
    p.feasible = q.p99_ms <= search_.slo.p99_ms &&
                 p.shed_rate <= search_.slo.max_shed_rate;
    const rpc::HedgeStats h = sim.hedgeStats();
    p.hedge_rate = h.hedgeRate();
    p.hedge_wasted_frac = h.wastedFraction();
    return p;
}

CapacityResult
CapacitySearch::run(const std::vector<workload::Request> &requests)
{
    // Geometric QPS grid, endpoints included.
    std::vector<double> grid;
    for (double q = search_.qps_lo; q < search_.qps_hi;
         q *= search_.grid_step)
        grid.push_back(q);
    grid.push_back(search_.qps_hi);

    CapacityResult result;
    const auto record = [&](std::size_t idx) {
        result.probes.push_back(probe(grid[idx], requests));
        return result.probes.back().feasible;
    };

    if (!record(0))
        return result; // max_qps = 0: even the floor rate misses the SLO
    if (record(grid.size() - 1)) {
        result.max_qps = grid.back();
        return result; // capacity exceeds the search range
    }

    // Invariant: grid[lo] feasible, grid[hi] infeasible.
    std::size_t lo = 0, hi = grid.size() - 1;
    while (hi - lo > 1) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (record(mid))
            lo = mid;
        else
            hi = mid;
    }
    result.max_qps = grid[lo];
    return result;
}

} // namespace dri::sched
