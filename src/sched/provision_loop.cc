#include "sched/provision_loop.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "core/analysis.h"

namespace dri::sched {

std::vector<int>
evenReplicaSplit(int total, int shards)
{
    assert(shards > 0);
    std::vector<int> out(static_cast<std::size_t>(shards), total / shards);
    for (int i = 0; i < total % shards; ++i)
        ++out[static_cast<std::size_t>(i)];
    for (auto &r : out)
        r = std::max(1, r);
    return out;
}

ProvisionLoop::ProvisionLoop(const model::ModelSpec &spec,
                             const core::ShardingPlan &plan,
                             core::ServingConfig serving,
                             ProvisionLoopConfig config)
    : spec_(spec), plan_(plan), serving_(std::move(serving)),
      cfg_(config)
{
    assert(plan_.numShards() > 0 && "provision loop needs sparse shards");
    assert(cfg_.qps > 0.0 && cfg_.target_utilization > 0.0);
    assert(cfg_.min_replicas >= 1 &&
           cfg_.max_replicas >= cfg_.min_replicas);
}

ProvisionIteration
ProvisionLoop::evaluate(const std::vector<int> &replicas,
                        const std::vector<workload::Request> &requests)
{
    const auto shards = static_cast<std::size_t>(plan_.numShards());
    assert(replicas.size() == shards);

    core::ServingConfig cfg = serving_;
    cfg.sparse_replicas_per_shard = replicas;
    core::ServingSimulation sim(spec_, plan_, cfg);
    const auto stats = sim.replayOpenLoop(requests, cfg_.qps);

    ProvisionIteration it;
    it.replicas = replicas;
    it.p99_ms = core::latencyQuantiles(stats).p99_ms;
    it.main_utilization = sim.mainUtilization();

    // Measured demand: each shard's busy core-time across its replicas,
    // amortized over the offered request stream. Queueing delays shift
    // *when* the work runs, not how much there is, so the estimate is
    // nearly invariant to the replica vector it was measured under —
    // which is what makes the fixed-point iteration converge.
    const auto busy = sim.serverBusyCoreNs();
    const auto server_shard = sim.serverShards();
    const auto util = sim.serverUtilization();
    it.shard_cpu_ms_per_request.assign(shards, 0.0);
    it.shard_utilization.assign(shards, 0.0);
    std::vector<int> servers_per_shard(shards, 0);
    for (std::size_t srv = 0; srv < busy.size(); ++srv) {
        const auto s = static_cast<std::size_t>(server_shard[srv]);
        it.shard_cpu_ms_per_request[s] += busy[srv] / 1.0e6;
        it.shard_utilization[s] += util[srv];
        ++servers_per_shard[s];
    }
    const auto offered = static_cast<double>(requests.size());
    for (std::size_t s = 0; s < shards; ++s) {
        it.shard_cpu_ms_per_request[s] /= offered;
        if (servers_per_shard[s] > 0)
            it.shard_utilization[s] /=
                static_cast<double>(servers_per_shard[s]);
    }

    // Feed the measurements back through dc::provision. Replicas are
    // sized against the *worker pool* (the cores the service actually
    // uses), not the whole SKU, so provision sees a platform whose core
    // count is the pool the simulation actually ran with.
    dc::Platform pool_platform = cfg.sparse_platform;
    pool_platform.cores = static_cast<int>(sim.sparseWorkerPoolSize());

    std::vector<dc::ShardDemand> demands;
    demands.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        dc::ShardDemand d;
        d.name = "sparse" + std::to_string(s);
        d.cpu_ms_per_request = it.shard_cpu_ms_per_request[s];
        d.model_bytes = static_cast<std::int64_t>(
            plan_.capacityBytes(spec_, static_cast<int>(s)));
        demands.push_back(d);
    }
    const dc::DeploymentPlan dp = dc::provision(
        demands, pool_platform, cfg_.qps, cfg_.target_utilization);

    it.provisioned.assign(shards, cfg_.min_replicas);
    for (std::size_t s = 0; s < shards; ++s)
        it.provisioned[s] =
            std::clamp(dp.shards[s].replicas, cfg_.min_replicas,
                       cfg_.max_replicas);
    return it;
}

ProvisionLoopResult
ProvisionLoop::run(const std::vector<workload::Request> &requests)
{
    const auto shards = static_cast<std::size_t>(plan_.numShards());

    // Seed vector: the serving config's own replica layout.
    std::vector<int> current(shards,
                             std::max(1, serving_.sparse_replicas));
    for (std::size_t s = 0;
         s < std::min(shards, serving_.sparse_replicas_per_shard.size());
         ++s)
        if (serving_.sparse_replicas_per_shard[s] > 0)
            current[s] = serving_.sparse_replicas_per_shard[s];

    ProvisionLoopResult result;
    for (int i = 0; i < cfg_.max_iterations; ++i) {
        ProvisionIteration it = evaluate(current, requests);
        result.trace.push_back(it);
        result.iterations = i + 1;
        result.p99_ms = it.p99_ms;
        if (it.provisioned == current) {
            result.converged = true;
            break;
        }
        // On exhaustion keep the last *simulated* vector: the result's
        // p99_ms must describe the replicas it reports.
        if (i + 1 < cfg_.max_iterations)
            current = it.provisioned;
    }
    result.replicas = current;
    return result;
}

} // namespace dri::sched
