#include "sched/batcher.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dri::sched {

const char *
policyName(BatchPolicy policy)
{
    switch (policy) {
    case BatchPolicy::SizeCapped:
        return "size-capped";
    case BatchPolicy::TimeoutCapped:
        return "timeout-capped";
    case BatchPolicy::Adaptive:
        return "adaptive";
    case BatchPolicy::QueueAware:
        return "queue-aware";
    }
    return "unknown";
}

DynamicBatcher::DynamicBatcher(core::ServingSimulation &sim,
                               BatcherConfig config)
    : sim_(sim), cfg_(config)
{
    assert(cfg_.max_batch_items > 0);
}

void
DynamicBatcher::offer(const workload::Request &request)
{
    sim::Engine &engine = sim_.engine();
    const sim::SimTime now = engine.now();

    // Arrival-rate estimate for the adaptive policy.
    if (last_arrival_ >= 0) {
        const auto dt = static_cast<double>(now - last_arrival_);
        ewma_interarrival_ns_ =
            ewma_interarrival_ns_ <= 0.0
                ? dt
                : cfg_.ewma_alpha * dt +
                      (1.0 - cfg_.ewma_alpha) * ewma_interarrival_ns_;
    }
    const auto items = static_cast<double>(request.items);
    ewma_items_ = ewma_items_ <= 0.0
                      ? items
                      : cfg_.ewma_alpha * items +
                            (1.0 - cfg_.ewma_alpha) * ewma_items_;
    last_arrival_ = now;

    if (pending_.empty())
        oldest_arrival_ = now;
    pending_.push_back(PendingPart{request, now});
    pending_items_ += request.items;

    // Size triggers apply under every policy.
    if (pending_items_ >= cfg_.max_batch_items ||
        (cfg_.max_batch_requests > 0 &&
         pending_.size() >= cfg_.max_batch_requests)) {
        flushNow();
        return;
    }

    const sim::SimTime deadline = oldest_arrival_ + cfg_.max_queue_delay_ns;
    switch (cfg_.policy) {
    case BatchPolicy::SizeCapped:
        // Wait for the batch to fill; flush() drains the stream tail.
        break;
    case BatchPolicy::TimeoutCapped:
        if (!timer_armed_)
            armTimer(deadline);
        break;
    case BatchPolicy::Adaptive: {
        // Will the batch plausibly fill before the delay bound? Expected
        // fill time = missing items / observed item arrival rate. If not,
        // further waiting buys batching that won't materialize — inject
        // immediately (single-request batches at low load).
        if (ewma_interarrival_ns_ <= 0.0) {
            // No rate estimate yet: be conservative, bound the delay.
            if (!timer_armed_)
                armTimer(deadline);
            break;
        }
        const double items_per_ns =
            std::max(ewma_items_, 1.0) / ewma_interarrival_ns_;
        const double missing =
            static_cast<double>(cfg_.max_batch_items - pending_items_);
        const double fill_ns = missing / items_per_ns;
        if (now + static_cast<sim::Duration>(fill_ns) > deadline) {
            flushNow();
        } else if (!timer_armed_) {
            armTimer(deadline);
        }
        break;
    }
    case BatchPolicy::QueueAware: {
        // The delay bound follows *observed main-shard queueing*, not the
        // arrival rate: an idle main pool means the batch would start
        // executing right now, so holding it only adds latency — flush.
        // A backlog means the riders would sit in the worker queue
        // anyway; coalescing during that wait is free (and the bigger
        // batch amortizes per-request overhead), so hold until the size
        // cap fires or the delay bound expires.
        if (sim_.mainQueueDepth() == 0 && sim_.mainIdleWorkers() > 0) {
            flushNow();
        } else if (!timer_armed_) {
            armTimer(deadline);
        }
        break;
    }
    }
}

void
DynamicBatcher::armTimer(sim::SimTime deadline)
{
    sim::Engine &engine = sim_.engine();
    timer_armed_ = true;
    const std::uint64_t epoch = epoch_;
    // Queue-aware holds are conditional on the backlog persisting, so
    // they re-probe the main pool well before the delay bound: a drained
    // backlog releases the batch within one recheck quantum instead of
    // waiting out the full bound ("an idle main pool flushes
    // immediately" must hold mid-hold, not just at offer time).
    sim::SimTime when = deadline;
    if (cfg_.policy == BatchPolicy::QueueAware) {
        const sim::Duration recheck =
            std::max<sim::Duration>(1, cfg_.max_queue_delay_ns / 8);
        when = std::min(deadline, engine.now() + recheck);
    }
    engine.schedule(
        std::max<sim::Duration>(0, when - engine.now()), sim::kEvTimer,
        [this, epoch, deadline] {
            if (epoch != epoch_ || pending_.empty())
                return; // batch already flushed
            if (cfg_.policy == BatchPolicy::QueueAware &&
                sim_.engine().now() < deadline &&
                !(sim_.mainQueueDepth() == 0 &&
                  sim_.mainIdleWorkers() > 0)) {
                timer_armed_ = false;
                armTimer(deadline); // still backlogged: keep holding
                return;
            }
            flushNow();
        });
}

void
DynamicBatcher::flushNow()
{
    assert(!pending_.empty());
    ++epoch_; // invalidate any armed timer
    timer_armed_ = false;

    in_flight_.push_back(InFlight{});
    InFlight &batch = in_flight_.back();
    batch.parts = std::move(pending_);
    pending_.clear();
    pending_items_ = 0;

    std::vector<workload::Request> parts;
    parts.reserve(batch.parts.size());
    for (const auto &p : batch.parts)
        parts.push_back(p.request);
    batch.merged = workload::mergeRequests(parts);
    batch.injected_at = sim_.engine().now();

    ++batches_injected_;
    coalesced_total_ += batch.parts.size();

    if (cfg_.metrics != nullptr) {
        cfg_.metrics->counter("batcher.flushes").inc();
        cfg_.metrics->histogram("batcher.coalesced")
            .observe(static_cast<std::int64_t>(batch.parts.size()));
        cfg_.metrics->histogram("batcher.hold_us")
            .observe((batch.injected_at - batch.parts.front().arrival) /
                     sim::kMicrosecond);
    }

    // `batch` lives in the deque until completion; references from the
    // capture and from the sim's Request pointer stay valid (deque ends
    // never relocate elements). Backdating the arrival to the oldest
    // rider's queue entry makes the admission deadline see batcher wait.
    sim_.inject(
        batch.merged,
        [this, &batch](const core::RequestStats &st) {
            onBatchComplete(batch, st);
        },
        batch.parts.front().arrival);
}

void
DynamicBatcher::onBatchComplete(InFlight &batch,
                                const core::RequestStats &merged_stats)
{
    // Integer counters are distributed by cumulative item share so the
    // sum over riders equals the merged batch's count exactly.
    std::int64_t cum_items = 0;
    int rpc_assigned = 0, batches_assigned = 0;
    int hedges_assigned = 0, hedge_wins_assigned = 0;
    const auto share = [&](int total) {
        return static_cast<int>(std::llround(
            static_cast<double>(total) * static_cast<double>(cum_items) /
            static_cast<double>(batch.merged.items)));
    };
    for (const auto &part : batch.parts) {
        core::RequestStats st = merged_stats;
        st.id = part.request.id;
        st.items = part.request.items;
        st.arrival = part.arrival;
        st.e2e = merged_stats.completion - part.arrival;
        st.batch_wait = batch.injected_at - part.arrival;
        st.coalesced = static_cast<int>(batch.parts.size());
        // Latency is shared by every rider of the batch, but CPU and the
        // RPC/batch counters are not: attribute them by item share so
        // aggregates stay conserved and per-request costs show the
        // amortization batching buys.
        cum_items += part.request.items;
        st.rpc_count = share(merged_stats.rpc_count) - rpc_assigned;
        rpc_assigned += st.rpc_count;
        st.batches = share(merged_stats.batches) - batches_assigned;
        batches_assigned += st.batches;
        st.hedges = share(merged_stats.hedges) - hedges_assigned;
        hedges_assigned += st.hedges;
        // Wins are a sub-population of the backups: apportion them by
        // cumulative share of the hedges assigned so far (not by item
        // share), so a rider can never report a win without a hedge and
        // the sum over riders still telescopes to the merged total.
        st.hedge_wins =
            merged_stats.hedges == 0
                ? 0
                : static_cast<int>(std::llround(
                      static_cast<double>(merged_stats.hedge_wins) *
                      static_cast<double>(hedges_assigned) /
                      static_cast<double>(merged_stats.hedges))) -
                      hedge_wins_assigned;
        hedge_wins_assigned += st.hedge_wins;
        const double frac = static_cast<double>(part.request.items) /
                            static_cast<double>(batch.merged.items);
        st.cpu_ops_ns *= frac;
        st.cpu_serde_ns *= frac;
        st.cpu_service_ns *= frac;
        st.hedge_wasted_cpu_ns *= frac;
        st.main_op_ns *= frac;
        for (auto &v : st.shard_op_ns)
            v *= frac;
        for (auto &v : st.shard_net_op_ns)
            v *= frac;
        stats_.push_back(st);
    }
    // The sim no longer references the merged request once its stats are
    // delivered; drop the dead payload so long replays hold memory only
    // for batches genuinely in flight.
    batch.parts.clear();
    batch.parts.shrink_to_fit();
    batch.merged = workload::Request{};
}

void
DynamicBatcher::flush()
{
    if (!pending_.empty())
        flushNow();
}

std::vector<core::RequestStats>
DynamicBatcher::takeStats()
{
    std::vector<core::RequestStats> out;
    out.swap(stats_);
    return out;
}

double
DynamicBatcher::meanCoalesced() const
{
    if (batches_injected_ == 0)
        return 1.0;
    return static_cast<double>(coalesced_total_) /
           static_cast<double>(batches_injected_);
}

std::vector<core::RequestStats>
runBatchedOpenLoop(core::ServingSimulation &sim,
                   const std::vector<workload::Request> &requests,
                   double qps, const BatcherConfig &config,
                   std::uint64_t arrival_seed)
{
    assert(qps > 0.0);
    DynamicBatcher batcher(sim, config);
    stats::Rng arrivals(arrival_seed);
    sim::Engine &engine = sim.engine();
    sim::SimTime t = engine.now();
    for (const auto &req : requests) {
        t += static_cast<sim::Duration>(
            arrivals.exponential(qps) * static_cast<double>(sim::kSecond));
        engine.scheduleAt(t, sim::kEvDriver,
                          [&batcher, &req] { batcher.offer(req); });
    }
    // Same timestamp as the last offer but a later sequence number, so the
    // end-of-stream drain runs after every arrival.
    engine.scheduleAt(t, sim::kEvDriver, [&batcher] { batcher.flush(); });
    engine.run();
    sim.takeResults(); // merged-level stats; superseded by per-part stats
    return batcher.takeStats();
}

} // namespace dri::sched
