/**
 * @file
 * Utilization-driven provisioning feedback loop.
 *
 * dc::provision sizes replica counts from *assumed* per-shard CPU demand;
 * the serving simulation *measures* that demand (per-replica worker-pool
 * busy time). ProvisionLoop closes the loop the paper's capacity argument
 * implies (Section VII-C: shards are replicated independently based on
 * load): simulate a deployment at the target rate, derive each sparse
 * shard's measured dc::ShardDemand from its replicas' busy core-time,
 * re-provision per-shard replica counts, and repeat until the replica
 * vector reaches a fixed point. The result is a heterogeneous,
 * load-proportional replica vector — hot shards (skewed table placement,
 * heavy pooling) get more replicas, cold shards fewer — instead of the
 * homogeneous replication the fixed `sparse_replicas` knob gives every
 * shard.
 *
 * Convergence: replica counts feed back into measured utilization only
 * through queueing (an under-provisioned shard's pool saturates; its busy
 * time per request is load-independent once served), so demand estimates
 * are nearly invariant across iterations and the loop typically fixes in
 * 2-3 rounds. A max-iteration cap guards the pathological case.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "core/serving.h"
#include "core/sharding_plan.h"
#include "dc/replication.h"
#include "model/model_spec.h"
#include "workload/request_generator.h"

namespace dri::sched {

/** Loop parameters. */
struct ProvisionLoopConfig
{
    /** Target offered rate the deployment must sustain. */
    double qps = 600.0;
    /** Per-replica worker-pool utilization ceiling dc::provision sizes to. */
    double target_utilization = 0.6;
    /** Fixed-point iteration cap. */
    int max_iterations = 6;
    /** Per-shard replica clamp (providers cap replication in practice). */
    int min_replicas = 1;
    int max_replicas = 8;
};

/** One simulate->measure->re-provision round. */
struct ProvisionIteration
{
    /** Replica vector the round simulated with. */
    std::vector<int> replicas;
    /** Measured per-shard busy core-milliseconds per offered request. */
    std::vector<double> shard_cpu_ms_per_request;
    /** Mean worker-pool utilization across each shard's replicas. */
    std::vector<double> shard_utilization;
    /** Replica vector dc::provision derives from the measurements. */
    std::vector<int> provisioned;
    double p99_ms = 0.0;
    double main_utilization = 0.0;
};

/** Loop outcome. */
struct ProvisionLoopResult
{
    /** Final replica vector (the fixed point when converged). */
    std::vector<int> replicas;
    /** True when an iteration reproduced its own replica vector. */
    bool converged = false;
    int iterations = 0;
    /** Served-request P99 of the final vector's simulation. */
    double p99_ms = 0.0;
    std::vector<ProvisionIteration> trace;

    int totalReplicas() const
    {
        int n = 0;
        for (int r : replicas)
            n += r;
        return n;
    }
};

/**
 * The provision->simulate->re-provision fixed-point iterator. The serving
 * config's sparse_replicas / sparse_replicas_per_shard fields seed the
 * first iteration; every subsequent iteration overrides
 * sparse_replicas_per_shard with the re-provisioned vector.
 */
class ProvisionLoop
{
  public:
    ProvisionLoop(const model::ModelSpec &spec,
                  const core::ShardingPlan &plan,
                  core::ServingConfig serving, ProvisionLoopConfig config);

    /**
     * Simulate one replica vector at the target rate and measure what
     * dc::provision would derive from it. Pure (fresh simulation, no loop
     * state); run() composes it.
     */
    ProvisionIteration
    evaluate(const std::vector<int> &replicas,
             const std::vector<workload::Request> &requests);

    /** Iterate to the replica-vector fixed point. */
    ProvisionLoopResult
    run(const std::vector<workload::Request> &requests);

  private:
    /** Copied: iterations must not dangle (same rule as CapacitySearch). */
    model::ModelSpec spec_;
    core::ShardingPlan plan_;
    core::ServingConfig serving_;
    ProvisionLoopConfig cfg_;
};

/**
 * Spread `total` replicas over `shards` as evenly as possible (earlier
 * shards take the remainder): the homogeneous baseline a load-proportional
 * vector is judged against at equal replica budget.
 */
std::vector<int> evenReplicaSplit(int total, int shards);

} // namespace dri::sched
