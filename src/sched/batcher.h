/**
 * @file
 * Dynamic request batching in front of the serving simulation.
 *
 * The paper replays requests that arrive pre-batched at their production
 * sizes; a real serving tier *forms* those batches by coalescing the
 * requests of many users under a max-batch-size / max-queue-delay policy
 * (the ranking analogue of inference-server dynamic batching). The
 * DynamicBatcher closes that gap: it runs on the simulation's own
 * discrete-event clock, merges arrivals into super-requests
 * (workload::mergeRequests), injects them through
 * core::ServingSimulation::inject, and expands each merged completion back
 * into per-original-request stats whose E2E includes the time spent
 * waiting in the batcher (RequestStats::batch_wait).
 *
 * Three flush policies span the classic latency/throughput trade-off:
 *  - SizeCapped:    flush only when the batch is full (max throughput;
 *                   unbounded wait at low arrival rates).
 *  - TimeoutCapped: flush when the oldest queued request has waited
 *                   max_queue_delay, or earlier on a full batch (bounded
 *                   added latency).
 *  - Adaptive:      estimate from the observed arrival rate whether the
 *                   batch can fill before the delay bound; if it cannot,
 *                   flush immediately (low-load latency of no batching,
 *                   high-load throughput of SizeCapped).
 *  - QueueAware:    bound the coalescing delay by *observed main-shard
 *                   queueing* instead of the arrival rate: when the main
 *                   pool has an idle worker and no backlog, waiting can
 *                   only add latency, so flush immediately; while a
 *                   backlog exists the riders would be queueing anyway,
 *                   so coalescing is free — hold until the size cap or
 *                   the delay bound. Reads the simulation's live
 *                   mainQueueDepth()/mainIdleWorkers() probe.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/serving.h"
#include "obs/metrics.h"
#include "sim/time.h"
#include "stats/rng.h"
#include "workload/request_generator.h"

namespace dri::sched {

/** When does a pending batch get injected? */
enum class BatchPolicy
{
    SizeCapped,
    TimeoutCapped,
    Adaptive,
    QueueAware,
};

/** Short lower-case policy name for labels and JSON rows. */
const char *policyName(BatchPolicy policy);

/** Batching policy parameters. */
struct BatcherConfig
{
    BatchPolicy policy = BatchPolicy::TimeoutCapped;
    /** Flush once the pending batch reaches this many items. */
    std::int64_t max_batch_items = 2048;
    /** Flush once this many requests are pending (0 = no request cap). */
    std::size_t max_batch_requests = 32;
    /** Max time the oldest pending request may wait before injection. */
    sim::Duration max_queue_delay_ns = 2 * sim::kMillisecond;
    /** Adaptive: EWMA smoothing for the arrival-rate estimate. */
    double ewma_alpha = 0.2;
    /**
     * Optional metrics registry (src/obs). When set, every flush bumps
     * `batcher.flushes` and records `batcher.coalesced` (riders per
     * injected batch) and `batcher.hold_us` (oldest-rider coalescing
     * wait) histograms. Pure observer — attaching it never changes
     * batching decisions or RequestStats. Not owned.
     */
    obs::MetricsRegistry *metrics = nullptr;
};

/**
 * Coalesces offered requests into merged injections on the simulation's
 * event clock. Single-use: offer() during a replay, then takeStats()
 * after the engine drains.
 */
class DynamicBatcher
{
  public:
    DynamicBatcher(core::ServingSimulation &sim, BatcherConfig config);

    DynamicBatcher(const DynamicBatcher &) = delete;
    DynamicBatcher &operator=(const DynamicBatcher &) = delete;

    /**
     * Offer one request at the current simulated time. Depending on the
     * policy this may inject immediately or queue the request for a
     * later (timer-driven) flush. The request is copied.
     */
    void offer(const workload::Request &request);

    /** Inject whatever is pending (end-of-stream drain). */
    void flush();

    /**
     * Per-original-request stats of batches completed so far. Each entry
     * carries the merged batch's service latencies but its own id, item
     * count, arrival time, E2E (completion - own arrival) and batch_wait.
     */
    std::vector<core::RequestStats> takeStats();

    /** Merged batches injected so far. */
    std::size_t batchesInjected() const { return batches_injected_; }

    /** Mean original requests per injected batch (1 when empty). */
    double meanCoalesced() const;

  private:
    struct PendingPart
    {
        workload::Request request;
        sim::SimTime arrival = 0;
    };

    /** A merged batch in flight; owns the Request the sim points into. */
    struct InFlight
    {
        workload::Request merged;
        std::vector<PendingPart> parts;
        sim::SimTime injected_at = 0;
    };

    void flushNow();
    void armTimer(sim::SimTime deadline);
    void onBatchComplete(InFlight &batch,
                         const core::RequestStats &merged_stats);

    core::ServingSimulation &sim_;
    BatcherConfig cfg_;

    std::vector<PendingPart> pending_;
    std::int64_t pending_items_ = 0;
    sim::SimTime oldest_arrival_ = 0;
    /** Bumped on every flush; stale timers check it and no-op. */
    std::uint64_t epoch_ = 0;
    bool timer_armed_ = false;

    /** Stable storage: sim holds pointers into merged requests. */
    std::deque<InFlight> in_flight_;
    std::vector<core::RequestStats> stats_;
    std::size_t batches_injected_ = 0;
    std::size_t coalesced_total_ = 0;

    // Adaptive arrival-rate estimation.
    double ewma_interarrival_ns_ = 0.0;
    double ewma_items_ = 0.0;
    sim::SimTime last_arrival_ = -1;
};

/**
 * Open-loop Poisson replay routed through a DynamicBatcher: the sched
 * sibling of ServingSimulation::replayOpenLoop. Arrivals at `qps` are
 * offered to the batcher; a final flush drains the stream. Returns
 * per-original-request stats (batcher wait included in E2E). Runs with
 * the same `arrival_seed` see identical arrival processes, so batch-
 * policy comparisons are paired.
 */
std::vector<core::RequestStats>
runBatchedOpenLoop(core::ServingSimulation &sim,
                   const std::vector<workload::Request> &requests,
                   double qps, const BatcherConfig &config,
                   std::uint64_t arrival_seed = 0xa881);

} // namespace dri::sched
