/**
 * @file
 * Closed-loop SLO-driven capacity search.
 *
 * The paper's high-QPS experiment (Fig. 16) evaluates hand-picked rates;
 * the operational question is the inverse: what is the *maximum* QPS a
 * deployment sustains subject to a tail-latency SLO? CapacitySearch
 * answers it by probing a geometric QPS grid with fresh simulations
 * (identical request stream and seeds per probe, so probes are paired)
 * and binary-searching the feasibility boundary: a probe is feasible when
 * served-request P99 meets the SLO and the shed rate stays under its cap.
 * Searching a fixed grid keeps results deterministic and comparable
 * across deployments — capacity is monotone in sparse replicas because
 * the per-grid-point feasibility is.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "core/serving.h"
#include "core/sharding_plan.h"
#include "model/model_spec.h"
#include "sched/batcher.h"
#include "workload/request_generator.h"

namespace dri::sched {

/**
 * The canonical overload-study deployment: a wide main-shard pool, two
 * workers per sparse replica, and expensive gathers, which makes the
 * sparse tier the contention point — the regime where replica load
 * balancing and replication-driven capacity matter. Shared by
 * bench_sched_policies, examples/slo_explorer, and the sched tests so
 * their self-checks all measure the same deployment.
 */
core::ServingConfig
sparseBoundStudyConfig(rpc::LoadBalancePolicy policy, int sparse_replicas,
                       std::uint64_t seed = 0xd15c0);

/**
 * The hedging-study deployment: sparseBoundStudyConfig plus transient
 * sparse-server interference (the straggler phenomenon hedging dodges)
 * and a hedge policy armed with the study's defaults. `hedged` toggles
 * the hedger only — interference is on either way, so hedged/unhedged
 * comparisons face the identical straggler process. Shared by
 * bench_sched_policies and the hedge property tests.
 */
core::ServingConfig
hedgeStudyConfig(rpc::LoadBalancePolicy policy, int sparse_replicas,
                 bool hedged, std::uint64_t seed = 0xd15c0);

/** The service-level objective a deployment must meet. */
struct SloSpec
{
    /** Served-request P99 E2E latency bound, milliseconds. */
    double p99_ms = 20.0;
    /** Max fraction of requests admission control may shed. */
    double max_shed_rate = 0.01;
};

/** Search-space and probe parameters. */
struct CapacitySearchConfig
{
    SloSpec slo;
    /** QPS grid bounds (geometric grid between them). */
    double qps_lo = 20.0;
    double qps_hi = 4000.0;
    /** Geometric grid step; capacity resolution is one step. */
    double grid_step = 1.05;
    /** Route probes through a DynamicBatcher instead of raw open loop. */
    bool use_batcher = false;
    BatcherConfig batcher;
    std::uint64_t arrival_seed = 0xa881;
};

/** One probed operating point. */
struct CapacityProbe
{
    double qps = 0.0;
    double p99_ms = 0.0;
    double p999_ms = 0.0;
    double shed_rate = 0.0;
    bool feasible = false;
    /** Backups per primary RPC (zero when hedging is off). */
    double hedge_rate = 0.0;
    /** Fraction of sparse-tier busy time wasted on losing attempts. */
    double hedge_wasted_frac = 0.0;
};

/** Outcome of a capacity search. */
struct CapacityResult
{
    /**
     * Highest grid QPS meeting the SLO; 0 when even qps_lo is infeasible.
     * Equal to qps_hi when the whole grid is feasible (the deployment's
     * capacity exceeds the search range).
     */
    double max_qps = 0.0;
    std::vector<CapacityProbe> probes;
};

/**
 * Binary-searches the max sustainable QPS of one deployment. Every probe
 * constructs a fresh ServingSimulation from the same (spec, plan,
 * serving config), so state never leaks between operating points.
 */
class CapacitySearch
{
  public:
    CapacitySearch(const model::ModelSpec &spec,
                   const core::ShardingPlan &plan,
                   core::ServingConfig serving,
                   CapacitySearchConfig search);

    /** Probe one operating point (does not touch the search state). */
    CapacityProbe probe(double qps,
                        const std::vector<workload::Request> &requests);

    /** Run the grid search over the given request stream. */
    CapacityResult run(const std::vector<workload::Request> &requests);

  private:
    /** Copied, like plan_ and the configs: probes must not dangle. */
    model::ModelSpec spec_;
    core::ShardingPlan plan_;
    core::ServingConfig serving_;
    CapacitySearchConfig search_;
};

} // namespace dri::sched
