/**
 * @file
 * Trace-driven sibling of the analytic paging model (dc/paging.h). Split
 * into its own header so consumers of the closed-form curve alone do not
 * drag in the cache/workload/model stack.
 */
#pragma once

#include <cstdint>

#include "cache/tiered_sim.h"
#include "dc/paging.h"
#include "dc/platform.h"
#include "model/model_spec.h"
#include "workload/access_trace.h"

namespace dri::dc {

/** Outcome of the trace-driven paging path. */
struct TracedPagingResult
{
    /** Blended per-lookup cost (same meaning as pagedLookupNs). */
    double lookup_ns = 0.0;
    /** Measured DRAM hit rate over the post-warmup trace window. */
    double hit_rate = 0.0;
    /** Analytic resident fraction the DRAM budget corresponds to. */
    double resident_fraction = 0.0;
    /** DRAM byte budget applied to the traced row universe. */
    std::int64_t cache_bytes = 0;
    /** Bytes of the distinct rows the trace touches. */
    std::int64_t universe_bytes = 0;
    /** Full per-table replay statistics for further analysis. */
    cache::CacheSimResult sim;
};

/**
 * Trace-driven alternative to pagedLookupNs: instead of trusting the
 * closed-form skew curve, replay `trace` through a byte-budgeted cache
 * with the given eviction policy (the Bandana methodology) and blend the
 * measured hit rate. The DRAM budget is the analytic resident fraction
 * applied to the byte size of the distinct-row universe the trace
 * touches, so the analytic and measured curves are directly comparable.
 * The leading `warmup_fraction` of the trace only warms the cache. If the
 * post-warmup window contains no in-model accesses (empty trace, foreign
 * table ids, or warmup_fraction == 1), the hit rate falls back to the
 * analytic hitRate curve rather than reporting a spurious all-miss 0.
 */
TracedPagingResult pagedLookupNsTraced(std::int64_t model_bytes,
                                       const Platform &platform,
                                       const PagingConfig &config,
                                       const model::ModelSpec &spec,
                                       const workload::AccessTrace &trace,
                                       cache::Policy policy,
                                       double warmup_fraction = 0.5,
                                       cache::Admission admission =
                                           cache::Admission::None);

} // namespace dri::dc
