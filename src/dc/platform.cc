#include "dc/platform.h"

namespace dri::dc {

std::int64_t
Platform::usableModelBytes() const
{
    return static_cast<std::int64_t>(0.8 * static_cast<double>(dram_bytes));
}

graph::CostParams
Platform::costParams() const
{
    graph::CostParams p;
    p.ns_per_flop = 2.5e-4 * cpu_time_scale;
    p.ns_per_byte = 0.02 * cpu_time_scale;
    p.ns_per_lookup = 60.0 * cpu_time_scale;
    p.op_dispatch_ns = 250.0 * cpu_time_scale;
    return p;
}

Platform
scLarge()
{
    Platform p;
    p.name = "SC-Large";
    p.cores = 40;
    p.cpu_time_scale = 1.0;
    p.dram_bytes = 256LL * 1024 * 1024 * 1024;
    p.nic_bandwidth_bytes_per_ns = 3.0;
    p.idle_watts = 150.0;
    p.busy_watts = 450.0;
    return p;
}

Platform
scSmall()
{
    Platform p;
    p.name = "SC-Small";
    p.cores = 36;
    p.cpu_time_scale = 1.2; // slower clocks
    p.dram_bytes = 64LL * 1024 * 1024 * 1024;
    p.nic_bandwidth_bytes_per_ns = 1.5;
    p.idle_watts = 90.0;
    p.busy_watts = 280.0;
    return p;
}

} // namespace dri::dc
