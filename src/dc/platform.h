/**
 * @file
 * Server platform SKUs (Section V-B). SC-Large is the typical large
 * data-center server (256 GB DRAM, 2x20 cores); SC-Small is the typical
 * efficient web server (64 GB DRAM, 2x18 slower cores, less network
 * bandwidth). The platform-efficiency experiment (Fig. 15) re-runs sparse
 * shards on SC-Small.
 */
#pragma once

#include <cstdint>
#include <string>

#include "graph/cost_model.h"

namespace dri::dc {

/** Static description of a server SKU. */
struct Platform
{
    std::string name;
    int cores = 40;                  //!< worker cores usable for serving
    double cpu_time_scale = 1.0;     //!< CPU-time multiplier vs reference
    std::int64_t dram_bytes = 0;     //!< installed DRAM
    double nic_bandwidth_bytes_per_ns = 3.0;
    double idle_watts = 120.0;       //!< chassis idle power
    double busy_watts = 400.0;       //!< chassis full-load power

    /**
     * DRAM usable for model parameters after OS/service overheads (the
     * paper cites commodity servers with ~50 GB usable DRAM in the
     * compression discussion — about 80% of installed capacity is a
     * serviceable rule for large SKUs).
     */
    std::int64_t usableModelBytes() const;

    /** Micro-level operator cost coefficients for this platform. */
    graph::CostParams costParams() const;
};

/** The typical large data-center server: 2x20 cores, 256 GB. */
Platform scLarge();

/** The typical efficient web server: 2x18 slower cores, 64 GB. */
Platform scSmall();

} // namespace dri::dc
