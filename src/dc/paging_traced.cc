#include "dc/paging_traced.h"

#include <cmath>

namespace dri::dc {

TracedPagingResult
pagedLookupNsTraced(std::int64_t model_bytes, const Platform &platform,
                    const PagingConfig &config,
                    const model::ModelSpec &spec,
                    const workload::AccessTrace &trace,
                    cache::Policy policy, double warmup_fraction,
                    cache::Admission admission)
{
    TracedPagingResult result;
    result.resident_fraction = residentFraction(model_bytes, platform);

    // The DRAM budget is the analytic resident fraction of the byte
    // universe the trace actually addresses, so hitRate(f, skew) and the
    // measured rate answer the same question about the same cache size.
    result.universe_bytes =
        workload::traceFootprint(spec, trace).universe_bytes;

    result.cache_bytes = static_cast<std::int64_t>(std::llround(
        result.resident_fraction *
        static_cast<double>(result.universe_bytes)));

    result.sim = cache::replayTrace(spec, trace, policy, result.cache_bytes,
                                    warmup_fraction, admission);

    if (result.sim.total.accesses > 0) {
        result.hit_rate = result.sim.overallHitRate();
    } else {
        // No post-warmup in-model accesses to measure (empty trace,
        // foreign table ids, or warmup_fraction == 1): CacheStats would
        // report 0, charging full SSD miss cost even for a fully resident
        // model. Fall back to the analytic curve instead.
        result.hit_rate =
            hitRate(result.resident_fraction, config.access_skew);
    }
    result.lookup_ns = result.hit_rate * config.dram_lookup_ns +
                       (1.0 - result.hit_rate) * config.ssd_lookup_ns;
    return result;
}

} // namespace dri::dc
