#include "dc/replication.h"

#include <cassert>
#include <cmath>

namespace dri::dc {

std::int64_t
DeploymentPlan::totalMemoryBytes() const
{
    std::int64_t total = 0;
    for (const auto &s : shards)
        total += s.total_memory_bytes;
    return total;
}

int
DeploymentPlan::totalReplicas() const
{
    int total = 0;
    for (const auto &s : shards)
        total += s.replicas;
    return total;
}

double
DeploymentPlan::totalPowerWatts() const
{
    double total = 0.0;
    for (const auto &s : shards)
        total += s.power_watts;
    return total;
}

bool
fits(const ShardDemand &demand, const Platform &platform)
{
    return demand.model_bytes <= platform.usableModelBytes();
}

DeploymentPlan
provision(const std::vector<ShardDemand> &demands, const Platform &platform,
          double qps, double target_utilization)
{
    assert(qps > 0.0 && target_utilization > 0.0);
    DeploymentPlan plan;
    for (const auto &d : demands) {
        ShardProvision p;
        p.name = d.name;

        // Core-seconds demanded per second of wall clock.
        const double cpu_cores_needed = qps * d.cpu_ms_per_request / 1000.0;
        const double cores_per_replica =
            static_cast<double>(platform.cores) * target_utilization;
        p.replicas = std::max(
            1, static_cast<int>(std::ceil(cpu_cores_needed /
                                          cores_per_replica)));
        p.total_memory_bytes =
            static_cast<std::int64_t>(p.replicas) * d.model_bytes;
        p.cpu_utilization =
            cpu_cores_needed /
            (static_cast<double>(p.replicas * platform.cores));
        p.power_watts =
            static_cast<double>(p.replicas) *
            (platform.idle_watts +
             (platform.busy_watts - platform.idle_watts) * p.cpu_utilization);
        plan.shards.push_back(p);
    }
    return plan;
}

} // namespace dri::dc
