/**
 * @file
 * Replication and resource-efficiency estimation (Section VII-C).
 *
 * The paper's argument: a singular model replicates *all* of its memory
 * (embedding tables included) whenever compute demand grows, even though
 * the compute touches <3% of the footprint. Distributed inference decouples
 * the two — main-shard replicas scale with dense compute, sparse-shard
 * replicas scale with their own (small) compute — so the memory cost of
 * meeting a QPS target drops. This module quantifies that trade-off.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dc/platform.h"

namespace dri::dc {

/** Compute/memory demand of one shard (measured per request). */
struct ShardDemand
{
    std::string name;
    double cpu_ms_per_request = 0.0;  //!< CPU consumed per request
    std::int64_t model_bytes = 0;     //!< parameter footprint
};

/** Provisioning result for one shard type. */
struct ShardProvision
{
    std::string name;
    int replicas = 0;
    std::int64_t total_memory_bytes = 0;
    double cpu_utilization = 0.0; //!< at the target QPS, across replicas
    double power_watts = 0.0;     //!< estimated cluster power draw
};

/** Whole-deployment provisioning summary. */
struct DeploymentPlan
{
    std::vector<ShardProvision> shards;
    std::int64_t totalMemoryBytes() const;
    int totalReplicas() const;
    double totalPowerWatts() const;
};

/**
 * Compute replicas needed for each shard to serve `qps` requests/sec at or
 * below `target_utilization` of the platform's cores, plus the memory
 * feasibility constraint (a shard whose parameters exceed usable DRAM
 * cannot be deployed at all — the situation motivating the whole paper).
 *
 * @returns plan with one entry per demand, in order.
 */
DeploymentPlan provision(const std::vector<ShardDemand> &demands,
                         const Platform &platform, double qps,
                         double target_utilization = 0.6);

/** True if the shard fits the platform's usable model memory. */
bool fits(const ShardDemand &demand, const Platform &platform);

} // namespace dri::dc
