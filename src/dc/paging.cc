#include "dc/paging.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dri::dc {

double
residentFraction(std::int64_t model_bytes, const Platform &platform)
{
    assert(model_bytes > 0);
    const double f = static_cast<double>(platform.usableModelBytes()) /
                     static_cast<double>(model_bytes);
    return std::clamp(f, 0.0, 1.0);
}

double
hitRate(double resident_fraction, double access_skew)
{
    const double f = std::clamp(resident_fraction, 0.0, 1.0);
    if (f <= 0.0)
        return 0.0;
    if (access_skew >= 1.0) {
        // lim_{s -> 1} f^(1-s) = 1 for any f > 0: the continuous Zipf mass
        // concentrates entirely in the head. Returning the limit keeps the
        // curve finite instead of dividing toward NaN/inf.
        return 1.0;
    }
    const double s = std::max(access_skew, 0.0);
    // Zipf-like mass captured by the hottest fraction f of rows:
    // integral of x^(-skew) over [0, f] normalized -> f^(1 - skew).
    return std::pow(f, 1.0 - s);
}

double
pagedLookupNs(std::int64_t model_bytes, const Platform &platform,
              const PagingConfig &config)
{
    const double f = residentFraction(model_bytes, platform);
    const double h = hitRate(f, config.access_skew);
    return h * config.dram_lookup_ns + (1.0 - h) * config.ssd_lookup_ns;
}

} // namespace dri::dc
