/**
 * @file
 * Paging-from-disk alternative (Section X names "paging-from-disk" as a
 * design-space expansion; the introduction discusses on-demand paging of
 * the model from SSD as a single-server alternative to distribution).
 *
 * Model: a singular server keeps as many embedding rows resident in DRAM
 * as fit; the remainder page from NVMe on demand. With a Zipf-skewed row
 * popularity, the DRAM hit rate follows from the cached fraction; the
 * expected lookup cost blends DRAM gathers with SSD reads. The resulting
 * per-lookup coefficient plugs directly into ServingConfig::lookup_base_ns
 * so the same serving simulation evaluates the paged alternative.
 */
#pragma once

#include <cstdint>

#include "dc/platform.h"

namespace dri::dc {

/** SSD and caching parameters for the paged configuration. */
struct PagingConfig
{
    /** DRAM gather cost per resident row (matches ServingConfig). */
    double dram_lookup_ns = 25.0;
    /** NVMe random-read latency per paged-in row. */
    double ssd_lookup_ns = 90000.0; // ~90 us
    /**
     * Access-skew exponent: fraction of accesses hitting the cached
     * fraction f of rows is approximately f^(1-skew) for skew in [0, 1).
     * 0 = uniform accesses (hit rate == cached fraction); values near 1 =
     * highly skewed (small caches capture most accesses). Embedding-table
     * traffic is skewed but heavy-tailed (the Bandana observation).
     */
    double access_skew = 0.6;
};

/** Fraction of the model resident in DRAM. */
double residentFraction(std::int64_t model_bytes, const Platform &platform);

/**
 * Expected DRAM hit rate given the resident fraction and access skew.
 * Inputs are clamped: resident_fraction to [0, 1]; access_skew below 0 is
 * treated as uniform, and access_skew >= 1 takes the skew -> 1 limit of
 * f^(1-skew), which is 1 for any positive resident fraction.
 */
double hitRate(double resident_fraction, double access_skew);

/**
 * Expected per-lookup cost (ns) for a paged singular deployment of
 * `model_bytes` on `platform`, from the closed-form skew curve.
 */
double pagedLookupNs(std::int64_t model_bytes, const Platform &platform,
                     const PagingConfig &config);

} // namespace dri::dc
