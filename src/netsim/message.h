/**
 * @file
 * Message size models for RPC payloads. The paper notes that the number of
 * lookups is proportional to the network bandwidth used to send table
 * indices (Section III-B2); responses carry pooled embedding vectors whose
 * size scales with batch items and the per-shard sum of table dimensions.
 */
#pragma once

#include <cmath>
#include <cstdint>

namespace dri::netsim {

/** Framing + header bytes added to every RPC message. */
constexpr std::int64_t kRpcEnvelopeBytes = 512;

/**
 * Bytes of a sparse-lookup *request*: per-lookup 8-byte indices plus
 * per-segment 4-byte lengths for each (table, batch-item) pair.
 */
inline std::int64_t
sparseRequestBytes(std::int64_t lookups, std::int64_t tables,
                   std::int64_t batch_items)
{
    return kRpcEnvelopeBytes + lookups * 8 + tables * batch_items * 4;
}

/**
 * Bytes of a sparse-lookup *response*: one pooled FP32 vector per
 * (table, batch item).
 */
inline std::int64_t
sparseResponseBytes(std::int64_t sum_table_dims, std::int64_t batch_items)
{
    return kRpcEnvelopeBytes + sum_table_dims * batch_items * 4;
}

/** Bytes of a top-level ranking request for the given item count. */
inline std::int64_t
rankingRequestBytes(double bytes_per_item, std::int64_t items,
                    std::int64_t total_lookups)
{
    return kRpcEnvelopeBytes +
           static_cast<std::int64_t>(
               std::llround(bytes_per_item * static_cast<double>(items))) +
           total_lookups * 8;
}

/** Bytes of a ranking response (one score per item). */
inline std::int64_t
rankingResponseBytes(std::int64_t items)
{
    return kRpcEnvelopeBytes + items * 4;
}

} // namespace dri::netsim
