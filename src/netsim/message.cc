#include "netsim/message.h"

#include <cmath>

namespace dri::netsim {

std::int64_t
sparseRequestBytes(std::int64_t lookups, std::int64_t tables,
                   std::int64_t batch_items)
{
    return kRpcEnvelopeBytes + lookups * 8 + tables * batch_items * 4;
}

std::int64_t
sparseResponseBytes(std::int64_t sum_table_dims, std::int64_t batch_items)
{
    return kRpcEnvelopeBytes + sum_table_dims * batch_items * 4;
}

std::int64_t
rankingRequestBytes(double bytes_per_item, std::int64_t items,
                    std::int64_t total_lookups)
{
    return kRpcEnvelopeBytes +
           static_cast<std::int64_t>(
               std::llround(bytes_per_item * static_cast<double>(items))) +
           total_lookups * 8;
}

std::int64_t
rankingResponseBytes(std::int64_t items)
{
    return kRpcEnvelopeBytes + items * 4;
}

} // namespace dri::netsim
