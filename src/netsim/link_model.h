/**
 * @file
 * Network link model for the simulated data-center intranet.
 *
 * All inter-shard communication in the paper crosses a standard TCP/IP
 * Ethernet fabric (Section III-C); the dominant latency terms are a
 * near-constant propagation + kernel processing base, lognormal jitter from
 * switching/queueing, and a bandwidth term proportional to message size.
 * The paper's headline observation — "network latency was greater than
 * operator latency" for every distributed configuration — is a property of
 * exactly these constants, so they are explicit and sweepable (see
 * bench_ablation_network_sweep).
 */
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/time.h"
#include "stats/distributions.h"
#include "stats/rng.h"

namespace dri::netsim {

/** Static description of a link between two servers. */
struct LinkConfig
{
    /** One-way base latency: propagation + kernel packet processing. */
    sim::Duration base_one_way_ns = 150 * sim::kMicrosecond;
    /** Lognormal jitter sigma applied multiplicatively to the base. */
    double jitter_sigma = 0.25;
    /** Usable NIC-to-NIC bandwidth in bytes per nanosecond (GB/s). */
    double bandwidth_bytes_per_ns = 6.0; // ~50 Gb/s effective
};

/**
 * Samples per-message one-way delivery delays. Stateless apart from the
 * caller-provided RNG so replicas can share one model.
 */
class LinkModel
{
  public:
    explicit LinkModel(LinkConfig config);

    /** One-way delay for a message of the given size. Inline: paid
     *  twice (out and back) by every RPC attempt. */
    sim::Duration
    oneWayDelay(std::int64_t bytes, stats::Rng &rng) const
    {
        const double base = static_cast<double>(config_.base_one_way_ns) *
                            jitter_.sample(rng);
        const double wire =
            static_cast<double>(bytes) / config_.bandwidth_bytes_per_ns;
        return static_cast<sim::Duration>(std::llround(base + wire));
    }

    /** Deterministic (jitter-free) delay, for analytical baselines. */
    sim::Duration expectedOneWayDelay(std::int64_t bytes) const;

    const LinkConfig &config() const { return config_; }

  private:
    LinkConfig config_;
    stats::LognormalSampler jitter_;
};

} // namespace dri::netsim
