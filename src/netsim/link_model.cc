#include "netsim/link_model.h"

#include <cassert>
#include <cmath>

namespace dri::netsim {

LinkModel::LinkModel(LinkConfig config)
    : config_(config), jitter_(1.0, config.jitter_sigma)
{
    assert(config.base_one_way_ns >= 0);
    assert(config.bandwidth_bytes_per_ns > 0.0);
}

sim::Duration
LinkModel::expectedOneWayDelay(std::int64_t bytes) const
{
    const double wire =
        static_cast<double>(bytes) / config_.bandwidth_bytes_per_ns;
    return config_.base_one_way_ns +
           static_cast<sim::Duration>(std::llround(wire));
}

} // namespace dri::netsim
