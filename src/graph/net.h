/**
 * @file
 * NetDef: an ordered operator list with declared external inputs/outputs,
 * the unit of sharding in distributed inference. Models own one or more
 * nets (DRM1/DRM2 have a user net and a content net executed sequentially;
 * DRM3 has one net — Section V-A).
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/operators.h"

namespace dri::graph {

/** An executable operator sequence. */
class NetDef
{
  public:
    explicit NetDef(std::string name) : name_(std::move(name)) {}

    NetDef(const NetDef &) = delete;
    NetDef &operator=(const NetDef &) = delete;
    NetDef(NetDef &&) = default;
    NetDef &operator=(NetDef &&) = default;

    const std::string &name() const { return name_; }

    /** Append an operator; returns a borrowed pointer for inspection. */
    Operator *add(std::unique_ptr<Operator> op);

    /** Convenience: construct T in place and append it. */
    template <typename T, typename... Args>
    T *
    emplace(Args &&...args)
    {
        auto op = std::make_unique<T>(std::forward<Args>(args)...);
        T *raw = op.get();
        add(std::move(op));
        return raw;
    }

    const std::vector<std::unique_ptr<Operator>> &ops() const { return ops_; }
    std::size_t size() const { return ops_.size(); }

    void declareInput(const std::string &blob) { inputs_.push_back(blob); }
    void declareOutput(const std::string &blob) { outputs_.push_back(blob); }
    const std::vector<std::string> &externalInputs() const { return inputs_; }
    const std::vector<std::string> &externalOutputs() const
    {
        return outputs_;
    }

    /** Count operators in the given class. */
    std::size_t countClass(OpClass c) const;

    /** All embedding-table names referenced by SLS ops in this net. */
    std::vector<std::string> referencedTables() const;

  private:
    std::string name_;
    std::vector<std::unique_ptr<Operator>> ops_;
    std::vector<std::string> inputs_;
    std::vector<std::string> outputs_;
};

} // namespace dri::graph
