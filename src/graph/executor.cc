#include "graph/executor.h"

namespace dri::graph {

void
Executor::run(const NetDef &net, Workspace &ws,
              const OpObserver &observer) const
{
    ExecContext ctx{ws, remote_};
    for (const auto &op : net.ops()) {
        op->run(ctx);
        if (observer)
            observer(*op);
    }
}

} // namespace dri::graph
