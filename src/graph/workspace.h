/**
 * @file
 * Named-blob workspace, the Caffe2 execution context analogue. Operators
 * read and write blobs by name; a blob is either a dense Tensor or a sparse
 * IndexList (the (indices, lengths) pair consumed by SLS operators).
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "tensor/embedding_table.h"
#include "tensor/tensor.h"

namespace dri::graph {

/**
 * Sparse feature input in SparseLengthsSum layout: segment s consumes
 * lengths[s] consecutive entries of indices. For recommendation, segments
 * are batch items and indices are embedding-row ids.
 */
struct IndexList
{
    std::vector<std::int64_t> indices;
    std::vector<std::int32_t> lengths;

    std::int64_t totalLookups() const
    {
        return static_cast<std::int64_t>(indices.size());
    }
    std::int64_t segments() const
    {
        return static_cast<std::int64_t>(lengths.size());
    }
};

/** A blob is a dense tensor or a sparse index list. */
using Blob = std::variant<tensor::Tensor, IndexList>;

/**
 * Mutable name -> blob map plus a read-only registry of embedding tables.
 * Tables are shared (not owned) because shards of a distributed model view
 * disjoint subsets of one table set.
 */
class Workspace
{
  public:
    Workspace() = default;

    bool has(const std::string &name) const;

    /** Create-or-replace a dense blob. */
    tensor::Tensor &createTensor(const std::string &name);
    /** Create-or-replace a sparse blob. */
    IndexList &createIndexList(const std::string &name);

    /** Typed access; aborts (assert) if missing or wrong type. */
    tensor::Tensor &tensorBlob(const std::string &name);
    const tensor::Tensor &tensorBlob(const std::string &name) const;
    IndexList &indexListBlob(const std::string &name);
    const IndexList &indexListBlob(const std::string &name) const;

    /** Register an embedding table under a name. */
    void addTable(const std::string &name,
                  std::shared_ptr<tensor::VirtualEmbeddingTable> table);
    const tensor::VirtualEmbeddingTable &table(const std::string &name) const;
    bool hasTable(const std::string &name) const;

    /** Untyped access (blob must exist). */
    const Blob &blob(const std::string &name) const;
    /** Create-or-replace with an existing blob value. */
    void setBlob(const std::string &name, Blob value);

    void remove(const std::string &name);
    std::size_t blobCount() const { return blobs_.size(); }

    std::vector<std::string> blobNames() const;

  private:
    std::map<std::string, Blob> blobs_;
    std::map<std::string, std::shared_ptr<tensor::VirtualEmbeddingTable>>
        tables_;
};

} // namespace dri::graph
