#include "graph/cost_model.h"

#include <cmath>

namespace dri::graph {

namespace {

/** Total elements across a set of tensor blobs that exist in ws. */
double
totalNumel(const Workspace &ws, const std::vector<std::string> &names)
{
    double n = 0.0;
    for (const auto &name : names)
        if (ws.has(name))
            n += static_cast<double>(ws.tensorBlob(name).numel());
    return n;
}

} // namespace

Work
estimateWork(const Operator &op, const Workspace &ws)
{
    Work w;
    if (const auto *fc = dynamic_cast<const FullyConnectedOp *>(&op)) {
        const auto &in = ws.tensorBlob(fc->inputs()[0]);
        const auto &weight = ws.tensorBlob(fc->inputs()[1]);
        const double batch = static_cast<double>(in.rows());
        const double in_dim = static_cast<double>(weight.cols());
        const double out_dim = static_cast<double>(weight.rows());
        w.flops = 2.0 * batch * in_dim * out_dim;
        w.bytes = static_cast<double>(weight.bytes()) +
                  static_cast<double>(in.bytes());
        return w;
    }
    if (const auto *sls = dynamic_cast<const SparseLengthsSumOp *>(&op)) {
        const auto &ids = ws.indexListBlob(sls->inputs()[0]);
        const auto &table = ws.table(sls->tableName());
        const double lookups = static_cast<double>(ids.totalLookups());
        w.lookups = lookups;
        w.bytes = lookups * static_cast<double>(
                                tensor::rowBytes(table.precision(),
                                                 table.dim()));
        w.flops = lookups * static_cast<double>(table.dim());
        return w;
    }
    if (const auto *split = dynamic_cast<const SplitIndicesOp *>(&op)) {
        const auto &ids = ws.indexListBlob(split->inputs()[0]);
        const double n = static_cast<double>(ids.totalLookups());
        w.flops = n; // one modulus per index
        w.bytes = n * 8.0;
        return w;
    }
    switch (op.opClass()) {
      case OpClass::Activations:
      case OpClass::ScaleClip: {
        const double n = totalNumel(ws, op.inputs());
        w.flops = n;
        w.bytes = n * 8.0;
        return w;
      }
      case OpClass::MemoryTransform: {
        const double n = totalNumel(ws, op.inputs());
        w.bytes = n * 8.0;
        return w;
      }
      case OpClass::FeatureTransform: {
        // Dot interaction: pairwise dots across blocks.
        const double blocks = static_cast<double>(op.inputs().size());
        double batch = 0.0, dim = 0.0;
        if (!op.inputs().empty() && ws.has(op.inputs()[0])) {
            const auto &t = ws.tensorBlob(op.inputs()[0]);
            batch = static_cast<double>(t.rows());
            dim = static_cast<double>(t.cols());
        }
        w.flops = batch * dim * blocks * (blocks - 1.0);
        w.bytes = batch * dim * blocks * 4.0;
        return w;
      }
      default:
        return w;
    }
}

sim::Duration
workToNs(const Work &work, const CostParams &params)
{
    const double ns = params.op_dispatch_ns + work.flops * params.ns_per_flop +
                      work.bytes * params.ns_per_byte +
                      work.lookups * params.ns_per_lookup;
    return static_cast<sim::Duration>(std::llround(ns));
}

sim::Duration
estimateNetNs(const NetDef &net, const Workspace &ws,
              const CostParams &params)
{
    sim::Duration total = 0;
    for (const auto &op : net.ops()) {
        if (op->opClass() == OpClass::Rpc)
            continue;
        total += workToNs(estimateWork(*op, ws), params);
    }
    return total;
}

} // namespace dri::graph
