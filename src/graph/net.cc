#include "graph/net.h"

namespace dri::graph {

Operator *
NetDef::add(std::unique_ptr<Operator> op)
{
    ops_.push_back(std::move(op));
    return ops_.back().get();
}

std::size_t
NetDef::countClass(OpClass c) const
{
    std::size_t n = 0;
    for (const auto &op : ops_)
        if (op->opClass() == c)
            ++n;
    return n;
}

std::vector<std::string>
NetDef::referencedTables() const
{
    std::vector<std::string> tables;
    for (const auto &op : ops_)
        if (const auto *sls = dynamic_cast<const SparseLengthsSumOp *>(op.get()))
            tables.push_back(sls->tableName());
    return tables;
}

} // namespace dri::graph
