/**
 * @file
 * Operator cost model: converts operator work (flops, bytes, lookups) into
 * simulated nanoseconds on a platform. This is the micro-level counterpart
 * of the serving engine's request-level cost profiles; both draw their
 * platform constants from dc::Platform.
 */
#pragma once

#include "graph/net.h"
#include "graph/workspace.h"
#include "sim/time.h"

namespace dri::graph {

/** Abstract work performed by one operator execution. */
struct Work
{
    double flops = 0.0;   //!< floating-point operations
    double bytes = 0.0;   //!< memory traffic touched
    double lookups = 0.0; //!< embedding rows gathered
};

/**
 * Platform cost coefficients (derived from a dc::Platform). Sparse lookups
 * carry their own per-row cost because they are latency-bound gathers, not
 * streaming bandwidth (the paper: sparse layers are memory bound while dense
 * layers are compute bound, Section III-B).
 */
struct CostParams
{
    double ns_per_flop = 2.5e-4;   //!< ~4 GFLOP/s effective single-core
    double ns_per_byte = 0.02;     //!< ~50 GB/s streaming
    double ns_per_lookup = 60.0;   //!< random-access row gather
    double op_dispatch_ns = 250.0; //!< framework per-op scheduling cost
};

/**
 * Estimate the work of one operator given the workspace state *after* its
 * inputs are materialized (shapes must be inspectable).
 */
Work estimateWork(const Operator &op, const Workspace &ws);

/** Convert work to simulated time under the given platform coefficients. */
sim::Duration workToNs(const Work &work, const CostParams &params);

/** Sum of estimated op durations for a whole net (excluding RPC waits). */
sim::Duration estimateNetNs(const NetDef &net, const Workspace &ws,
                            const CostParams &params);

} // namespace dri::graph
