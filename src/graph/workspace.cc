#include "graph/workspace.h"

#include <cassert>

namespace dri::graph {

bool
Workspace::has(const std::string &name) const
{
    return blobs_.count(name) > 0;
}

tensor::Tensor &
Workspace::createTensor(const std::string &name)
{
    blobs_[name] = tensor::Tensor();
    return std::get<tensor::Tensor>(blobs_[name]);
}

IndexList &
Workspace::createIndexList(const std::string &name)
{
    blobs_[name] = IndexList();
    return std::get<IndexList>(blobs_[name]);
}

tensor::Tensor &
Workspace::tensorBlob(const std::string &name)
{
    auto it = blobs_.find(name);
    assert(it != blobs_.end() && "missing tensor blob");
    auto *t = std::get_if<tensor::Tensor>(&it->second);
    assert(t && "blob is not a tensor");
    return *t;
}

const tensor::Tensor &
Workspace::tensorBlob(const std::string &name) const
{
    auto it = blobs_.find(name);
    assert(it != blobs_.end() && "missing tensor blob");
    const auto *t = std::get_if<tensor::Tensor>(&it->second);
    assert(t && "blob is not a tensor");
    return *t;
}

IndexList &
Workspace::indexListBlob(const std::string &name)
{
    auto it = blobs_.find(name);
    assert(it != blobs_.end() && "missing index-list blob");
    auto *l = std::get_if<IndexList>(&it->second);
    assert(l && "blob is not an index list");
    return *l;
}

const IndexList &
Workspace::indexListBlob(const std::string &name) const
{
    auto it = blobs_.find(name);
    assert(it != blobs_.end() && "missing index-list blob");
    const auto *l = std::get_if<IndexList>(&it->second);
    assert(l && "blob is not an index list");
    return *l;
}

void
Workspace::addTable(const std::string &name,
                    std::shared_ptr<tensor::VirtualEmbeddingTable> table)
{
    tables_[name] = std::move(table);
}

const tensor::VirtualEmbeddingTable &
Workspace::table(const std::string &name) const
{
    auto it = tables_.find(name);
    assert(it != tables_.end() && "missing embedding table");
    return *it->second;
}

bool
Workspace::hasTable(const std::string &name) const
{
    return tables_.count(name) > 0;
}

const Blob &
Workspace::blob(const std::string &name) const
{
    auto it = blobs_.find(name);
    assert(it != blobs_.end() && "missing blob");
    return it->second;
}

void
Workspace::setBlob(const std::string &name, Blob value)
{
    blobs_[name] = std::move(value);
}

void
Workspace::remove(const std::string &name)
{
    blobs_.erase(name);
}

std::vector<std::string>
Workspace::blobNames() const
{
    std::vector<std::string> names;
    names.reserve(blobs_.size());
    for (const auto &kv : blobs_)
        names.push_back(kv.first);
    return names;
}

} // namespace dri::graph
