/**
 * @file
 * Operator set for the mini ML framework. Mirrors the Caffe2 operators the
 * paper's models execute: fully-connected stacks, activations, tensor
 * transforms, the SparseLengthsSum (SLS) family, and the custom asynchronous
 * RPC operators that distributed inference inserts (Section III).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/workspace.h"

namespace dri::graph {

/**
 * Operator compute group, matching the attribution buckets of Fig. 4.
 * Used by the compute-attribution analysis and the cost model.
 */
enum class OpClass {
    Dense,           //!< FC / GEMM compute
    Sparse,          //!< embedding lookup + pooling (SLS family)
    Activations,     //!< ReLU / sigmoid
    FeatureTransform,//!< feature interaction and friends
    MemoryTransform, //!< concat / split / reshape
    ScaleClip,       //!< normalization-style elementwise work
    Hash,            //!< sparse-id hashing
    Fill,            //!< constant fills
    Rpc,             //!< distributed-inference RPC ops
};

/** Human-readable label for an OpClass (used in reports). */
std::string opClassName(OpClass c);

class RemoteExecutor;

/**
 * Execution-scoped services an operator may need: the workspace plus the
 * remote executor that RPC operators dispatch through.
 */
struct ExecContext
{
    Workspace &ws;
    RemoteExecutor *remote = nullptr; //!< required only by RPC ops
};

/** Abstract operator: named inputs -> named outputs over a workspace. */
class Operator
{
  public:
    Operator(std::string type, std::vector<std::string> inputs,
             std::vector<std::string> outputs);
    virtual ~Operator() = default;

    /** Execute functionally against the context's workspace. */
    virtual void run(ExecContext &ctx) = 0;

    virtual OpClass opClass() const = 0;

    /** Deep copy, used by the model partitioner for net surgery. */
    virtual std::unique_ptr<Operator> clone() const = 0;

    const std::string &type() const { return type_; }
    const std::vector<std::string> &inputs() const { return inputs_; }
    const std::vector<std::string> &outputs() const { return outputs_; }

  private:
    std::string type_;
    std::vector<std::string> inputs_;
    std::vector<std::string> outputs_;
};

/** out = in * W^T + b. Weights/bias are workspace blobs. */
class FullyConnectedOp : public Operator
{
  public:
    FullyConnectedOp(const std::string &in, const std::string &weight,
                     const std::string &bias, const std::string &out);
    void run(ExecContext &ctx) override;
    OpClass opClass() const override { return OpClass::Dense; }
    std::unique_ptr<Operator> clone() const override;
};

/** In-place ReLU. */
class ReluOp : public Operator
{
  public:
    explicit ReluOp(const std::string &blob);
    void run(ExecContext &ctx) override;
    OpClass opClass() const override { return OpClass::Activations; }
    std::unique_ptr<Operator> clone() const override;
};

/** In-place sigmoid (final CTR head). */
class SigmoidOp : public Operator
{
  public:
    explicit SigmoidOp(const std::string &blob);
    void run(ExecContext &ctx) override;
    OpClass opClass() const override { return OpClass::Activations; }
    std::unique_ptr<Operator> clone() const override;
};

/** Concatenate inputs along the feature dimension. */
class ConcatOp : public Operator
{
  public:
    ConcatOp(std::vector<std::string> inputs, const std::string &out);
    void run(ExecContext &ctx) override;
    OpClass opClass() const override { return OpClass::MemoryTransform; }
    std::unique_ptr<Operator> clone() const override;
};

/** DLRM dot-product feature interaction across equally sized blocks. */
class DotInteractionOp : public Operator
{
  public:
    DotInteractionOp(std::vector<std::string> blocks, const std::string &out);
    void run(ExecContext &ctx) override;
    OpClass opClass() const override { return OpClass::FeatureTransform; }
    std::unique_ptr<Operator> clone() const override;
};

/**
 * SparseLengthsSum: pool embedding rows of `table` selected by the input
 * IndexList into a [segments, dim] tensor.
 */
class SparseLengthsSumOp : public Operator
{
  public:
    SparseLengthsSumOp(const std::string &table, const std::string &ids,
                       const std::string &out);
    void run(ExecContext &ctx) override;
    OpClass opClass() const override { return OpClass::Sparse; }
    std::unique_ptr<Operator> clone() const override;

    const std::string &tableName() const { return table_; }

  private:
    std::string table_;
};

/**
 * Split an IndexList into `ways` shards by row id modulus (the paper's
 * hashing function for huge-table row partitioning). Output s receives the
 * indices with index % ways == s, preserving segment structure.
 */
class SplitIndicesOp : public Operator
{
  public:
    SplitIndicesOp(const std::string &ids, std::vector<std::string> outputs);
    void run(ExecContext &ctx) override;
    OpClass opClass() const override { return OpClass::Hash; }
    std::unique_ptr<Operator> clone() const override;

    std::size_t ways() const { return outputs().size(); }
};

/** Elementwise sum of same-shaped tensors (combines row-split partials). */
class SumOp : public Operator
{
  public:
    SumOp(std::vector<std::string> inputs, const std::string &out);
    void run(ExecContext &ctx) override;
    OpClass opClass() const override { return OpClass::ScaleClip; }
    std::unique_ptr<Operator> clone() const override;
};

/**
 * Asynchronous RPC dispatch to a sparse shard (Section III-A2). Functionally
 * the call is recorded against the RemoteExecutor; the paired RpcWaitOp
 * blocks on completion and materializes the outputs. In the DES serving
 * path, dispatch/wait timing is modelled by the serving engine.
 */
class RpcRequestOp : public Operator
{
  public:
    /**
     * @param shard_id   Target sparse shard.
     * @param remote_net Net to invoke on the shard.
     * @param handle     Blob name used to correlate with the wait op.
     */
    RpcRequestOp(int shard_id, std::string remote_net, std::string handle,
                 std::vector<std::string> inputs,
                 std::vector<std::string> outputs);
    void run(ExecContext &ctx) override;
    OpClass opClass() const override { return OpClass::Rpc; }
    std::unique_ptr<Operator> clone() const override;

    int shardId() const { return shard_id_; }
    const std::string &remoteNet() const { return remote_net_; }
    const std::string &handle() const { return handle_; }

  private:
    int shard_id_;
    std::string remote_net_;
    std::string handle_;
};

/** Completion barrier for one or more outstanding RPC handles. */
class RpcWaitOp : public Operator
{
  public:
    explicit RpcWaitOp(std::vector<std::string> handles);
    void run(ExecContext &ctx) override;
    OpClass opClass() const override { return OpClass::Rpc; }
    std::unique_ptr<Operator> clone() const override;

    const std::vector<std::string> &handles() const { return inputs(); }
};

/**
 * Service interface RPC operators dispatch through. The functional
 * implementation (LocalRemoteExecutor in core/serving) executes shard nets
 * synchronously; the DES serving engine models the asynchronous timing.
 */
class RemoteExecutor
{
  public:
    virtual ~RemoteExecutor() = default;

    /**
     * Begin an asynchronous call of `remote_net` on `shard_id`. Input blobs
     * are read from `ws`; outputs must be materialized into `ws` by the time
     * wait(handle) returns.
     */
    virtual void beginCall(int shard_id, const std::string &remote_net,
                           const std::string &handle, Workspace &ws,
                           const std::vector<std::string> &inputs,
                           const std::vector<std::string> &outputs) = 0;

    /** Block until the given handle's outputs are available. */
    virtual void wait(const std::string &handle) = 0;
};

} // namespace dri::graph
