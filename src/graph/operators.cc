#include "graph/operators.h"

#include <cassert>

#include "tensor/kernels.h"

namespace dri::graph {

std::string
opClassName(OpClass c)
{
    switch (c) {
      case OpClass::Dense:
        return "Dense";
      case OpClass::Sparse:
        return "Sparse";
      case OpClass::Activations:
        return "Activations";
      case OpClass::FeatureTransform:
        return "Feature Transforms";
      case OpClass::MemoryTransform:
        return "Memory Transformations";
      case OpClass::ScaleClip:
        return "Scale/Clip";
      case OpClass::Hash:
        return "Hash";
      case OpClass::Fill:
        return "Fill";
      case OpClass::Rpc:
        return "RPC";
    }
    return "Unknown";
}

Operator::Operator(std::string type, std::vector<std::string> inputs,
                   std::vector<std::string> outputs)
    : type_(std::move(type)), inputs_(std::move(inputs)),
      outputs_(std::move(outputs))
{
}

FullyConnectedOp::FullyConnectedOp(const std::string &in,
                                   const std::string &weight,
                                   const std::string &bias,
                                   const std::string &out)
    : Operator("FC", {in, weight, bias}, {out})
{
}

void
FullyConnectedOp::run(ExecContext &ctx)
{
    const auto &in = ctx.ws.tensorBlob(inputs()[0]);
    const auto &weight = ctx.ws.tensorBlob(inputs()[1]);
    const auto &bias = ctx.ws.tensorBlob(inputs()[2]);
    auto &out = ctx.ws.createTensor(outputs()[0]);
    tensor::fullyConnected(in, weight, bias, out);
}

ReluOp::ReluOp(const std::string &blob) : Operator("Relu", {blob}, {blob}) {}

void
ReluOp::run(ExecContext &ctx)
{
    tensor::reluInPlace(ctx.ws.tensorBlob(inputs()[0]));
}

SigmoidOp::SigmoidOp(const std::string &blob)
    : Operator("Sigmoid", {blob}, {blob})
{
}

void
SigmoidOp::run(ExecContext &ctx)
{
    tensor::sigmoidInPlace(ctx.ws.tensorBlob(inputs()[0]));
}

ConcatOp::ConcatOp(std::vector<std::string> inputs, const std::string &out)
    : Operator("Concat", std::move(inputs), {out})
{
}

void
ConcatOp::run(ExecContext &ctx)
{
    std::vector<const tensor::Tensor *> srcs;
    srcs.reserve(inputs().size());
    for (const auto &name : inputs())
        srcs.push_back(&ctx.ws.tensorBlob(name));
    tensor::Tensor result;
    tensor::concatColumns(srcs, result);
    ctx.ws.createTensor(outputs()[0]) = std::move(result);
}

DotInteractionOp::DotInteractionOp(std::vector<std::string> blocks,
                                   const std::string &out)
    : Operator("DotInteraction", std::move(blocks), {out})
{
}

void
DotInteractionOp::run(ExecContext &ctx)
{
    std::vector<const tensor::Tensor *> srcs;
    srcs.reserve(inputs().size());
    for (const auto &name : inputs())
        srcs.push_back(&ctx.ws.tensorBlob(name));
    tensor::Tensor result;
    tensor::dotInteraction(srcs, result);
    ctx.ws.createTensor(outputs()[0]) = std::move(result);
}

SparseLengthsSumOp::SparseLengthsSumOp(const std::string &table,
                                       const std::string &ids,
                                       const std::string &out)
    : Operator("SparseLengthsSum", {ids}, {out}), table_(table)
{
}

void
SparseLengthsSumOp::run(ExecContext &ctx)
{
    const auto &ids = ctx.ws.indexListBlob(inputs()[0]);
    const auto &table = ctx.ws.table(table_);
    tensor::Tensor result;
    table.sls(ids.indices, ids.lengths, result);
    ctx.ws.createTensor(outputs()[0]) = std::move(result);
}

SplitIndicesOp::SplitIndicesOp(const std::string &ids,
                               std::vector<std::string> outputs)
    : Operator("SplitIndices", {ids}, std::move(outputs))
{
}

void
SplitIndicesOp::run(ExecContext &ctx)
{
    // Copy the input first: an output name may alias the input blob, and
    // createIndexList invalidates references into the workspace.
    const IndexList src = ctx.ws.indexListBlob(inputs()[0]);
    const auto ways = static_cast<std::int64_t>(outputs().size());
    assert(ways > 0);

    std::vector<IndexList> parts(static_cast<std::size_t>(ways));
    for (auto &p : parts)
        p.lengths.assign(src.lengths.size(), 0);

    std::size_t cursor = 0;
    for (std::size_t seg = 0; seg < src.lengths.size(); ++seg) {
        const auto len = static_cast<std::size_t>(src.lengths[seg]);
        for (std::size_t k = 0; k < len; ++k) {
            const std::int64_t idx = src.indices[cursor++];
            const auto shard = static_cast<std::size_t>(idx % ways);
            parts[shard].indices.push_back(idx);
            ++parts[shard].lengths[seg];
        }
    }
    for (std::size_t s = 0; s < parts.size(); ++s)
        ctx.ws.createIndexList(outputs()[s]) = std::move(parts[s]);
}

SumOp::SumOp(std::vector<std::string> inputs, const std::string &out)
    : Operator("Sum", std::move(inputs), {out})
{
}

void
SumOp::run(ExecContext &ctx)
{
    std::vector<const tensor::Tensor *> srcs;
    srcs.reserve(inputs().size());
    for (const auto &name : inputs())
        srcs.push_back(&ctx.ws.tensorBlob(name));
    tensor::Tensor result;
    tensor::sumTensors(srcs, result);
    ctx.ws.createTensor(outputs()[0]) = std::move(result);
}

RpcRequestOp::RpcRequestOp(int shard_id, std::string remote_net,
                           std::string handle,
                           std::vector<std::string> inputs,
                           std::vector<std::string> outputs)
    : Operator("RpcRequest", std::move(inputs), std::move(outputs)),
      shard_id_(shard_id), remote_net_(std::move(remote_net)),
      handle_(std::move(handle))
{
}

void
RpcRequestOp::run(ExecContext &ctx)
{
    assert(ctx.remote && "RpcRequestOp requires a RemoteExecutor");
    ctx.remote->beginCall(shard_id_, remote_net_, handle_, ctx.ws, inputs(),
                          outputs());
}

RpcWaitOp::RpcWaitOp(std::vector<std::string> handles)
    : Operator("RpcWait", std::move(handles), {})
{
}

void
RpcWaitOp::run(ExecContext &ctx)
{
    assert(ctx.remote && "RpcWaitOp requires a RemoteExecutor");
    for (const auto &h : inputs())
        ctx.remote->wait(h);
}


// -- clone() implementations -------------------------------------------------

std::unique_ptr<Operator>
FullyConnectedOp::clone() const
{
    return std::make_unique<FullyConnectedOp>(inputs()[0], inputs()[1],
                                              inputs()[2], outputs()[0]);
}

std::unique_ptr<Operator>
ReluOp::clone() const
{
    return std::make_unique<ReluOp>(inputs()[0]);
}

std::unique_ptr<Operator>
SigmoidOp::clone() const
{
    return std::make_unique<SigmoidOp>(inputs()[0]);
}

std::unique_ptr<Operator>
ConcatOp::clone() const
{
    return std::make_unique<ConcatOp>(inputs(), outputs()[0]);
}

std::unique_ptr<Operator>
DotInteractionOp::clone() const
{
    return std::make_unique<DotInteractionOp>(inputs(), outputs()[0]);
}

std::unique_ptr<Operator>
SparseLengthsSumOp::clone() const
{
    return std::make_unique<SparseLengthsSumOp>(table_, inputs()[0],
                                                outputs()[0]);
}

std::unique_ptr<Operator>
SplitIndicesOp::clone() const
{
    return std::make_unique<SplitIndicesOp>(inputs()[0], outputs());
}

std::unique_ptr<Operator>
SumOp::clone() const
{
    return std::make_unique<SumOp>(inputs(), outputs()[0]);
}

std::unique_ptr<Operator>
RpcRequestOp::clone() const
{
    return std::make_unique<RpcRequestOp>(shard_id_, remote_net_, handle_,
                                          inputs(), outputs());
}

std::unique_ptr<Operator>
RpcWaitOp::clone() const
{
    return std::make_unique<RpcWaitOp>(inputs());
}

} // namespace dri::graph
