/**
 * @file
 * Sequential net executor. Operators run in order — the paper notes
 * inference nets are executed sequentially because spare cores are consumed
 * by request- and batch-level parallelism, with asynchronous RPC ops as the
 * only exception (Section IV-A).
 */
#pragma once

#include <functional>

#include "graph/net.h"

namespace dri::graph {

/** Per-operator observation hook (used by tracing and attribution). */
using OpObserver = std::function<void(const Operator &)>;

/** Runs nets functionally over a workspace. */
class Executor
{
  public:
    /** @param remote Required when nets contain RPC ops; may be null. */
    explicit Executor(RemoteExecutor *remote = nullptr) : remote_(remote) {}

    /**
     * Execute every operator of the net in order.
     * @param observer optional callback invoked after each op completes.
     */
    void run(const NetDef &net, Workspace &ws,
             const OpObserver &observer = nullptr) const;

  private:
    RemoteExecutor *remote_;
};

} // namespace dri::graph
