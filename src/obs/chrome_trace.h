/**
 * @file
 * Chrome trace_event JSON export for obs spans.
 *
 * Emits the JSON Array Format understood by chrome://tracing and
 * Perfetto: one "X" (complete) event per closed span with microsecond
 * ts/dur, plus "M" metadata naming each process. Spans are mapped
 * pid = shard + 2 (so the main shard, -1, lands on pid 1) and
 * tid = request id, which renders each request as one row per shard —
 * the natural way to eyeball a hedge race or a straggling replica.
 */
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/span.h"

namespace dri::obs {

/** Write trace_event JSON for @p spans to @p os. Open spans are skipped. */
void writeChromeTrace(std::ostream &os, const std::vector<SpanRecord> &spans);

/** Convenience: trace_event JSON as a string. */
std::string chromeTraceJson(const std::vector<SpanRecord> &spans);

} // namespace dri::obs
