/**
 * @file
 * Append-only per-request span tracer.
 *
 * The tracer is the write side of the observability layer: the serving
 * engine calls begin()/end()/record() at lifecycle boundaries, all in
 * simulated time. Two properties are load-bearing:
 *
 *  - **Zero overhead when disabled.** A disabled tracer returns
 *    kNoSpan from begin() and never touches its storage; allocations()
 *    counts every vector append, so tests can assert "disabled tracer
 *    performed zero allocations" with a counter instead of a timing
 *    heuristic. The serving engine additionally caches a null pointer
 *    when tracing is off so the hot path pays one branch, not a call.
 *
 *  - **Pure observation.** The tracer never consumes randomness and
 *    never schedules events, so attaching it cannot perturb the
 *    simulation: RequestStats are byte-identical with tracing on/off
 *    (enforced by serving_stress_test).
 *
 * The tracer has two storage modes:
 *
 *  - **Flat (default).** Every span appends to one growing vector;
 *    SpanId is index + 1. Complete, but memory grows with the replay —
 *    right for explorers and short studies.
 *
 *  - **Sampling** (a TraceSampler attached via setSampler() BEFORE any
 *    span is recorded). Spans route into per-request trees drawn from
 *    the sampler's pooled arena; the sampler makes a deterministic
 *    keep/recycle decision at root-span close (see obs/sampler.h for
 *    the retention contract), and a tree is sealed once its last span
 *    — including post-root hedge/cancel debris — closes. In this mode
 *    spans() stays empty; retained trees live on the sampler. Handles
 *    pack (generation, arena slot, tree-local index), so debris
 *    end()/addFlags() calls that arrive after their tree was recycled
 *    are detected by generation mismatch and dropped (counted by the
 *    sampler). The sampler's private RNG is the only randomness
 *    involved, so the pure-observation contract holds bit-for-bit.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "obs/sampler.h"
#include "obs/span.h"

namespace dri::obs {

class SpanTracer
{
  public:
    explicit SpanTracer(bool enabled = true) : enabled_(enabled) {}

    bool enabled() const { return enabled_; }
    void setEnabled(bool enabled) { enabled_ = enabled; }

    /**
     * Attach a retention sampler (sampling mode). Must happen before
     * any span is recorded; pass nullptr to return to flat mode. Not
     * owned; must outlive the tracer's use.
     */
    void setSampler(TraceSampler *sampler) { sampler_ = sampler; }
    TraceSampler *sampler() const { return sampler_; }

    /** Root keep/recycle outcome of the most recent root-span close. */
    enum class RootDecision : std::uint8_t
    {
        None,    //!< no root closed yet (or flat mode: always retained)
        Dropped, //!< sampler chose recycle
        Kept,    //!< sampler chose keep
    };

    /**
     * Decision for the most recently closed root span. Flat mode
     * reports Kept (every span is retained); the serving engine reads
     * this right after ending a root to stamp exemplar retention.
     */
    RootDecision lastRootDecision() const { return last_root_; }

    /**
     * Open a span at @p at. Returns kNoSpan when disabled; all other
     * calls accept kNoSpan and become no-ops, so call sites need no
     * extra guards beyond the cached tracer pointer.
     */
    SpanId begin(std::uint64_t request_id, SpanKind kind, SpanId parent,
                 sim::SimTime at, int shard = kMainShard, int net = -1,
                 int batch = -1, std::uint8_t flags = kFlagNone);

    /** Close an open span at @p at, OR-ing @p add_flags in. */
    void end(SpanId id, sim::SimTime at, std::uint8_t add_flags = kFlagNone);

    /** Record a span whose begin and end are both already known. */
    SpanId record(std::uint64_t request_id, SpanKind kind, SpanId parent,
                  sim::SimTime begin, sim::SimTime end,
                  int shard = kMainShard, int net = -1, int batch = -1,
                  std::uint8_t flags = kFlagNone);

    /** OR flags into an existing span without closing it. */
    void addFlags(SpanId id, std::uint8_t flags);

    /** Flat-mode span store (empty in sampling mode). */
    const std::vector<SpanRecord> &spans() const { return spans_; }

    /** Spans currently open (begun, not yet ended). */
    std::uint64_t openCount() const { return open_; }

    /**
     * Span appends performed since construction/clear. Exactly 0 for a
     * disabled tracer — the zero-overhead contract, testable without
     * timing. (Sampling mode counts appends into recycled arena
     * capacity too; the *heap* bound there is the sampler's budget.)
     */
    std::uint64_t allocations() const { return allocations_; }

    void clear();

  private:
    // Sampling-mode handle layout: bits 0..19 tree-local index + 1,
    // bits 20..35 arena slot, bits 36..63 recycle generation.
    static constexpr unsigned kLocalBits = 20;
    static constexpr unsigned kSlotBits = 16;
    static constexpr SpanId kLocalMask = (SpanId{1} << kLocalBits) - 1;
    static constexpr SpanId kSlotMask = (SpanId{1} << kSlotBits) - 1;

    static SpanId encode(std::uint32_t generation, std::uint32_t slot,
                         std::size_t local_plus_one)
    {
        return (static_cast<SpanId>(generation)
                << (kLocalBits + kSlotBits)) |
               (static_cast<SpanId>(slot & kSlotMask) << kLocalBits) |
               (static_cast<SpanId>(local_plus_one) & kLocalMask);
    }

    SpanRecord *get(SpanId id);
    /** Sampling mode: resolve a handle to its live tree + record. */
    SpanRecord *resolveSampled(SpanId id, TraceSampler::Tree **tree_out);
    SpanId beginSampled(std::uint64_t request_id, SpanKind kind,
                        SpanId parent, sim::SimTime at, int shard, int net,
                        int batch, std::uint8_t flags);
    void endSampled(SpanId id, sim::SimTime at, std::uint8_t add_flags);

    bool enabled_;
    TraceSampler *sampler_ = nullptr;
    std::vector<SpanRecord> spans_;
    std::uint64_t open_ = 0;
    std::uint64_t allocations_ = 0;
    RootDecision last_root_ = RootDecision::None;
};

} // namespace dri::obs
