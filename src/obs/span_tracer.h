/**
 * @file
 * Append-only per-request span tracer.
 *
 * The tracer is the write side of the observability layer: the serving
 * engine calls begin()/end()/record() at lifecycle boundaries, all in
 * simulated time. Two properties are load-bearing:
 *
 *  - **Zero overhead when disabled.** A disabled tracer returns
 *    kNoSpan from begin() and never touches its storage; allocations()
 *    counts every vector append, so tests can assert "disabled tracer
 *    performed zero allocations" with a counter instead of a timing
 *    heuristic. The serving engine additionally caches a null pointer
 *    when tracing is off so the hot path pays one branch, not a call.
 *
 *  - **Pure observation.** The tracer never consumes randomness and
 *    never schedules events, so attaching it cannot perturb the
 *    simulation: RequestStats are byte-identical with tracing on/off
 *    (enforced by serving_stress_test).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "obs/span.h"

namespace dri::obs {

class SpanTracer
{
  public:
    explicit SpanTracer(bool enabled = true) : enabled_(enabled) {}

    bool enabled() const { return enabled_; }
    void setEnabled(bool enabled) { enabled_ = enabled; }

    /**
     * Open a span at @p at. Returns kNoSpan when disabled; all other
     * calls accept kNoSpan and become no-ops, so call sites need no
     * extra guards beyond the cached tracer pointer.
     */
    SpanId begin(std::uint64_t request_id, SpanKind kind, SpanId parent,
                 sim::SimTime at, int shard = kMainShard, int net = -1,
                 int batch = -1, std::uint8_t flags = kFlagNone);

    /** Close an open span at @p at, OR-ing @p add_flags in. */
    void end(SpanId id, sim::SimTime at, std::uint8_t add_flags = kFlagNone);

    /** Record a span whose begin and end are both already known. */
    SpanId record(std::uint64_t request_id, SpanKind kind, SpanId parent,
                  sim::SimTime begin, sim::SimTime end,
                  int shard = kMainShard, int net = -1, int batch = -1,
                  std::uint8_t flags = kFlagNone);

    /** OR flags into an existing span without closing it. */
    void addFlags(SpanId id, std::uint8_t flags);

    const std::vector<SpanRecord> &spans() const { return spans_; }

    /** Spans currently open (begun, not yet ended). */
    std::uint64_t openCount() const { return open_; }

    /**
     * Heap appends performed since construction/clear. Exactly 0 for a
     * disabled tracer — the zero-overhead contract, testable without
     * timing.
     */
    std::uint64_t allocations() const { return allocations_; }

    void clear();

  private:
    SpanRecord *get(SpanId id);

    bool enabled_;
    std::vector<SpanRecord> spans_;
    std::uint64_t open_ = 0;
    std::uint64_t allocations_ = 0;
};

} // namespace dri::obs
