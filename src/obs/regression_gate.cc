#include "obs/regression_gate.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dri::obs {

namespace {

bool
contains(const std::string &haystack, const char *needle)
{
    return haystack.find(needle) != std::string::npos;
}

bool
parseNumber(const std::string &token, double &out)
{
    if (token.empty() || token == "true" || token == "false")
        return false;
    char *end = nullptr;
    out = std::strtod(token.c_str(), &end);
    return end != nullptr && *end == '\0' && end != token.c_str();
}

[[noreturn]] void
malformed(std::size_t line_no, const std::string &what)
{
    throw std::runtime_error("artifact line " + std::to_string(line_no) +
                             ": " + what);
}

} // namespace

MetricClass
classifyMetric(const std::string &name, bool numeric)
{
    // Fingerprints outrank the numeric check: a quoted fingerprint is
    // still an exact-equality determinism contract.
    if (contains(name, "fingerprint"))
        return MetricClass::Fingerprint;
    if (!numeric)
        return MetricClass::Label;
    if (contains(name, "wall"))
        return MetricClass::SkipWallClock;
    if (contains(name, "per_sec"))
        return MetricClass::Throughput;
    return MetricClass::Value;
}

const std::string *
ArtifactRow::find(const std::string &key) const
{
    for (const auto &[k, v] : fields)
        if (k == key)
            return &v;
    return nullptr;
}

std::vector<ArtifactRow>
parseArtifact(std::istream &in)
{
    std::vector<ArtifactRow> rows;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] != '{')
            continue; // narrative output, not part of the artifact
        ArtifactRow row;
        std::size_t i = 1;
        const auto skipWs = [&] {
            while (i < line.size() &&
                   (line[i] == ' ' || line[i] == '\t'))
                ++i;
        };
        skipWs();
        if (i < line.size() && line[i] == '}') {
            rows.push_back(std::move(row));
            continue;
        }
        while (i < line.size()) {
            skipWs();
            if (line[i] != '"')
                malformed(line_no, "expected quoted key");
            const std::size_t kend = line.find('"', i + 1);
            if (kend == std::string::npos)
                malformed(line_no, "unterminated key");
            std::string key = line.substr(i + 1, kend - i - 1);
            i = kend + 1;
            skipWs();
            if (i >= line.size() || line[i] != ':')
                malformed(line_no, "expected ':' after key");
            ++i;
            skipWs();
            std::string value;
            if (i < line.size() && line[i] == '"') {
                // Quoted string; the writers never emit escaped quotes,
                // but honor backslash escapes defensively.
                ++i;
                while (i < line.size() && line[i] != '"') {
                    if (line[i] == '\\' && i + 1 < line.size())
                        ++i;
                    value += line[i++];
                }
                if (i >= line.size())
                    malformed(line_no, "unterminated string value");
                ++i;
            } else {
                // Bare token: number / true / false.
                while (i < line.size() && line[i] != ',' &&
                       line[i] != '}')
                    value += line[i++];
                while (!value.empty() && value.back() == ' ')
                    value.pop_back();
                if (value.empty())
                    malformed(line_no, "empty value for key " + key);
            }
            row.fields.emplace_back(std::move(key), std::move(value));
            skipWs();
            if (i >= line.size())
                malformed(line_no, "unterminated object");
            if (line[i] == ',') {
                ++i;
                continue;
            }
            if (line[i] == '}')
                break;
            malformed(line_no, "expected ',' or '}'");
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

std::vector<ArtifactRow>
parseArtifactFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open artifact: " + path);
    return parseArtifact(in);
}

namespace {

void
compareRow(const ArtifactRow &base, const ArtifactRow &cur,
           std::size_t row_idx, const GateConfig &cfg, GateReport &rep)
{
    for (const auto &[key, base_raw] : base.fields) {
        const std::string *cur_raw = cur.find(key);
        if (cur_raw == nullptr) {
            rep.violations.push_back({row_idx, key, "missing", base_raw,
                                      "", "metric absent from current"});
            continue;
        }
        double base_num = 0.0, cur_num = 0.0;
        const bool base_is_num = parseNumber(base_raw, base_num);
        const bool cur_is_num = parseNumber(*cur_raw, cur_num);
        MetricClass mc = classifyMetric(key, base_is_num && cur_is_num);
        if (mc == MetricClass::SkipWallClock && cfg.check_wall_clock)
            mc = MetricClass::Throughput; // inverted bound below
        if (cfg.skip_machine_dependent &&
            (mc == MetricClass::Throughput ||
             mc == MetricClass::SkipWallClock)) {
            ++rep.metrics_skipped;
            continue;
        }

        switch (mc) {
        case MetricClass::SkipWallClock:
            ++rep.metrics_skipped;
            break;
        case MetricClass::Throughput: {
            ++rep.metrics_compared;
            const bool is_wall = contains(key, "wall");
            // Throughput must not DROP; wall time must not GROW.
            const bool ok =
                is_wall ? cur_num * cfg.throughput_tolerance <= base_num
                        : cur_num >= cfg.throughput_tolerance * base_num;
            if (!ok) {
                std::ostringstream d;
                d << (is_wall ? "wall time grew past 1/"
                              : "throughput fell below ")
                  << cfg.throughput_tolerance << "x baseline";
                rep.violations.push_back({row_idx, key,
                                          is_wall ? "wall"
                                                  : "throughput",
                                          base_raw, *cur_raw, d.str()});
            }
            break;
        }
        case MetricClass::Fingerprint:
            ++rep.metrics_compared;
            if (base_raw != *cur_raw)
                rep.violations.push_back(
                    {row_idx, key, "fingerprint", base_raw, *cur_raw,
                     "determinism fingerprint changed"});
            break;
        case MetricClass::Value: {
            ++rep.metrics_compared;
            const double band =
                cfg.value_tolerance * std::abs(base_num) +
                cfg.value_abs_floor;
            if (std::abs(cur_num - base_num) > band) {
                std::ostringstream d;
                d << "outside +/-" << cfg.value_tolerance
                  << " relative band";
                rep.violations.push_back({row_idx, key, "value",
                                          base_raw, *cur_raw, d.str()});
            }
            break;
        }
        case MetricClass::Label:
            ++rep.metrics_compared;
            if (base_raw != *cur_raw)
                rep.violations.push_back({row_idx, key, "label",
                                          base_raw, *cur_raw,
                                          "label/flag changed"});
            break;
        }
    }
}

} // namespace

GateReport
compareArtifacts(const std::vector<ArtifactRow> &baseline,
                 const std::vector<ArtifactRow> &current,
                 const GateConfig &config)
{
    GateReport rep;
    if (baseline.size() != current.size()) {
        rep.violations.push_back(
            {0, "", "rows", std::to_string(baseline.size()),
             std::to_string(current.size()),
             "artifact row count changed"});
        // Index-matched comparison past the divergence would only
        // cascade noise; report the structural break alone.
        return rep;
    }
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        compareRow(baseline[i], current[i], i, config, rep);
        ++rep.rows_compared;
    }
    return rep;
}

void
writeReport(std::ostream &os, const GateReport &report,
            const std::string &baseline_name,
            const std::string &current_name)
{
    os << "regression gate: " << current_name << " vs " << baseline_name
       << "\n  rows=" << report.rows_compared
       << " metrics=" << report.metrics_compared
       << " skipped=" << report.metrics_skipped
       << " violations=" << report.violations.size() << "\n";
    for (const GateViolation &v : report.violations)
        os << "  FAIL row " << v.row << " [" << v.kind << "] "
           << (v.key.empty() ? "<structure>" : v.key)
           << ": baseline=" << v.baseline << " current=" << v.current
           << " (" << v.detail << ")\n";
    os << (report.pass() ? "GATE PASS" : "GATE FAIL") << "\n";
}

} // namespace dri::obs
