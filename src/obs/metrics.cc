#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace dri::obs {

Histogram::Histogram(unsigned sub_bucket_bits)
    : sub_bucket_bits_(sub_bucket_bits),
      sub_(std::int64_t{1} << sub_bucket_bits)
{
}

namespace {

/** Position of the most significant set bit (value must be > 0). */
unsigned
msb(std::int64_t value)
{
    unsigned pos = 0;
    while (value > 1) {
        value >>= 1;
        ++pos;
    }
    return pos;
}

} // namespace

std::size_t
Histogram::bucketIndex(std::int64_t value) const
{
    if (value < 0)
        value = 0;
    if (value < sub_)
        return static_cast<std::size_t>(value);
    const unsigned top = msb(value) - sub_bucket_bits_;
    return static_cast<std::size_t>(
        (static_cast<std::int64_t>(top) << sub_bucket_bits_) +
        ((value >> top) - sub_) + sub_);
}

std::int64_t
Histogram::bucketLowerBound(std::size_t idx) const
{
    const auto i = static_cast<std::int64_t>(idx);
    if (i < sub_)
        return i;
    const std::int64_t top = (i - sub_) >> sub_bucket_bits_;
    const std::int64_t rem = (i - sub_) & (sub_ - 1);
    return (sub_ + rem) << top;
}

void
Histogram::observe(std::int64_t value)
{
    if (value < 0)
        value = 0;
    const std::size_t idx = bucketIndex(value);
    if (idx >= buckets_.size())
        buckets_.resize(idx + 1, 0);
    ++buckets_[idx];
    if (count_ == 0 || value < min_)
        min_ = value;
    if (value > max_)
        max_ = value;
    sum_ += value;
    ++count_;
}

void
Histogram::setExemplarCapacity(std::size_t k)
{
    exemplar_capacity_ = k;
    if (k == 0) {
        exemplars_.clear();
        return;
    }
    for (auto &[bucket, list] : exemplars_)
        if (list.size() > k)
            list.resize(k);
}

void
Histogram::admitExemplar(std::size_t bucket, const Exemplar &ex)
{
    std::vector<Exemplar> *list = nullptr;
    for (auto &[b, l] : exemplars_)
        if (b == bucket) {
            list = &l;
            break;
        }
    if (list == nullptr) {
        exemplars_.emplace_back(bucket, std::vector<Exemplar>{});
        list = &exemplars_.back().second;
    }
    if (list->size() < exemplar_capacity_) {
        list->push_back(ex);
        return;
    }
    // Full bucket: a retained exemplar may displace the first
    // non-retained occupant, so tail buckets end up pointing at traces
    // that actually exist in the sampler's retained set.
    if (!ex.retained)
        return;
    for (Exemplar &slot : *list)
        if (!slot.retained) {
            slot = ex;
            return;
        }
}

void
Histogram::observe(std::int64_t value, std::uint64_t request_id,
                   bool retained)
{
    observe(value);
    if (exemplar_capacity_ == 0)
        return;
    Exemplar ex;
    ex.value = value < 0 ? 0 : value;
    ex.request_id = request_id;
    ex.retained = retained;
    admitExemplar(bucketIndex(value), ex);
}

const std::vector<Exemplar> &
Histogram::exemplarsFor(std::int64_t value) const
{
    static const std::vector<Exemplar> kEmpty;
    const std::size_t bucket = bucketIndex(value);
    for (const auto &[b, l] : exemplars_)
        if (b == bucket)
            return l;
    return kEmpty;
}

const Exemplar *
Histogram::tailExemplar() const
{
    const Exemplar *best = nullptr;
    std::size_t best_bucket = 0;
    for (const auto &[bucket, list] : exemplars_) {
        if (list.empty())
            continue;
        if (best != nullptr && bucket < best_bucket)
            continue;
        const Exemplar *pick = &list.front();
        for (const Exemplar &ex : list)
            if (ex.retained && !pick->retained)
                pick = &ex;
        best = pick;
        best_bucket = bucket;
    }
    return best;
}

std::int64_t
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::min(1.0, std::max(0.0, q));
    // Nearest-rank within the bucketed distribution.
    const auto rank = static_cast<std::uint64_t>(std::max(
        1.0, std::ceil(q * static_cast<double>(count_))));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= rank) {
            // Clamp to observed extremes so p0/p100 are exact.
            const std::int64_t lo = bucketLowerBound(i);
            return std::min(max_, std::max(min_, lo));
        }
    }
    return max_;
}

double
Histogram::valueAtQuantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    const double target = q * static_cast<double>(count_);
    const auto rank = static_cast<std::uint64_t>(
        std::max(1.0, std::ceil(target)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        if (seen + buckets_[i] < rank) {
            seen += buckets_[i];
            continue;
        }
        // Rank lands in bucket i: interpolate by fractional rank
        // position across the bucket's value range [lo, hi).
        const auto lo = static_cast<double>(bucketLowerBound(i));
        const auto hi = static_cast<double>(bucketLowerBound(i + 1));
        const double into =
            (target - static_cast<double>(seen)) /
            static_cast<double>(buckets_[i]);
        const double v = lo + (hi - lo) * std::min(1.0, std::max(0.0, into));
        return std::min(static_cast<double>(max_),
                        std::max(static_cast<double>(min_), v));
    }
    return static_cast<double>(max_);
}

void
Histogram::merge(const Histogram &other)
{
    if (other.sub_bucket_bits_ != sub_bucket_bits_)
        throw std::logic_error(
            "Histogram::merge: sub_bucket_bits mismatch");
    if (other.count_ == 0)
        return;
    if (other.buckets_.size() > buckets_.size())
        buckets_.resize(other.buckets_.size(), 0);
    for (std::size_t i = 0; i < other.buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    if (count_ == 0 || other.min_ < min_)
        min_ = other.min_;
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    count_ += other.count_;
    if (exemplar_capacity_ > 0)
        for (const auto &[bucket, list] : other.exemplars_)
            for (const Exemplar &ex : list)
                admitExemplar(bucket, ex);
}

MetricsRegistry::Entry &
MetricsRegistry::find(const std::string &name, MetricKind kind)
{
    const auto it = index_.find(name);
    if (it != index_.end()) {
        Entry &e = entries_[it->second];
        if (e.kind != kind)
            throw std::logic_error("MetricsRegistry: metric '" + name +
                                   "' re-registered with different kind");
        return e;
    }
    Entry e;
    e.name = name;
    e.kind = kind;
    index_.emplace(name, entries_.size());
    entries_.push_back(std::move(e));
    return entries_.back();
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    Entry &e = find(name, MetricKind::Counter);
    if (e.counter == nullptr) {
        counters_.emplace_back();
        e.counter = &counters_.back();
    }
    return *e.counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    Entry &e = find(name, MetricKind::Gauge);
    if (e.gauge == nullptr) {
        gauges_.emplace_back();
        e.gauge = &gauges_.back();
    }
    return *e.gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name, unsigned sub_bucket_bits)
{
    Entry &e = find(name, MetricKind::Histogram);
    if (e.histogram == nullptr) {
        histograms_.emplace_back(sub_bucket_bits);
        e.histogram = &histograms_.back();
    }
    return *e.histogram;
}

void
MetricsRegistry::takeSnapshot(double t_seconds)
{
    MetricsSnapshot snap;
    snap.t = t_seconds;
    for (const Entry &e : entries_) {
        switch (e.kind) {
        case MetricKind::Counter:
            snap.values.emplace_back(
                e.name, static_cast<double>(e.counter->value()));
            break;
        case MetricKind::Gauge:
            snap.values.emplace_back(e.name, e.gauge->value());
            break;
        case MetricKind::Histogram: {
            const Histogram &h = *e.histogram;
            snap.values.emplace_back(
                e.name + ".count", static_cast<double>(h.count()));
            snap.values.emplace_back(
                e.name + ".p50", static_cast<double>(h.quantile(0.50)));
            snap.values.emplace_back(
                e.name + ".p99", static_cast<double>(h.quantile(0.99)));
            snap.values.emplace_back(e.name + ".max",
                                     static_cast<double>(h.max()));
            // Exemplar keys appear ONLY when exemplars are enabled, so
            // plain-histogram snapshots (and every committed baseline)
            // are byte-identical to the pre-exemplar format.
            if (h.exemplarCapacity() > 0) {
                const Exemplar *tail = h.tailExemplar();
                if (tail != nullptr) {
                    snap.values.emplace_back(
                        e.name + ".tail_exemplar_value",
                        static_cast<double>(tail->value));
                    snap.values.emplace_back(
                        e.name + ".tail_exemplar_request",
                        static_cast<double>(tail->request_id));
                    snap.values.emplace_back(
                        e.name + ".tail_exemplar_retained",
                        tail->retained ? 1.0 : 0.0);
                }
            }
            break;
        }
        }
    }
    snapshots_.push_back(std::move(snap));
}

void
MetricsRegistry::writeJsonl(std::ostream &os) const
{
    for (const MetricsSnapshot &snap : snapshots_) {
        os << "{\"t\":" << snap.t;
        for (const auto &[name, value] : snap.values)
            os << ",\"" << name << "\":" << value;
        os << "}\n";
    }
}

void
MetricsRegistry::clear()
{
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    entries_.clear();
    index_.clear();
    snapshots_.clear();
}

} // namespace dri::obs
