/**
 * @file
 * SLO objectives, error budgets, and multi-window burn-rate alerting.
 *
 * An SloObjective declares an error budget: the fraction of events that
 * may be "bad" (requests over the latency target, shed requests, epochs
 * in violation) while the service still meets its SLO. The monitor is
 * fed per-tick good/bad counts on the simulated clock and answers the
 * SRE-staple question "how fast is the budget burning?": burn rate 1
 * means the budget exactly lasts its period; burn rate N exhausts it N
 * times too fast.
 *
 * Alerting uses the multi-window burn-rate rule: fire only when BOTH a
 * fast window (catches the spike quickly) and a slow window (proves it
 * is not a blip) exceed their thresholds. The alert lifecycle is a
 * deterministic state machine on the sim clock:
 *
 *     Inactive --breach--> Pending --breach x pending_ticks--> Firing
 *        ^                    |                                   |
 *        +----no breach-------+ (Cancelled)                       |
 *        +-------clear x resolve_ticks------------- (Resolved) ---+
 *
 * with hysteresis: resolution requires the burn rate to drop below
 * resolve_fraction * threshold (not merely below threshold) for
 * resolve_ticks consecutive evaluations — an alert that sits in the
 * band between the two levels neither re-fires nor resolves, which is
 * what keeps a burn rate oscillating around the threshold from
 * flapping. Everything is pure arithmetic over reported counts: two
 * identical tick streams produce byte-identical event logs.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dri::obs {

/** One SLO objective: an error budget plus its burn-rate alert rule. */
struct SloObjective
{
    std::string name;
    /**
     * Allowed bad-event fraction (the error budget). 0.01 means "99% of
     * events must be good"; a latency objective phrased as "P99 under
     * the target" is exactly budget 0.01 over over-target counts.
     */
    double budget_fraction = 0.01;

    /** Fast window: catches budget-burning incidents quickly. */
    double fast_horizon_s = 2.0 * 3600.0;
    /** Slow window: confirms the burn is sustained, not a blip. */
    double slow_horizon_s = 6.0 * 3600.0;
    /** Fire when the fast-window burn rate reaches this multiple. */
    double fast_burn_threshold = 4.0;
    /** ...AND the slow-window burn rate reaches this multiple. */
    double slow_burn_threshold = 2.0;

    /** Consecutive breach evaluations before Pending becomes Firing. */
    int pending_ticks = 1;
    /** Consecutive clear evaluations before Firing resolves. */
    int resolve_ticks = 2;
    /**
     * Hysteresis: "clear" means burn below resolve_fraction * threshold
     * on BOTH windows. Between resolve and fire levels the state holds.
     */
    double resolve_fraction = 0.5;

    /** Ring buckets per window (eviction granularity). */
    int buckets = 6;
};

enum class AlertState : std::uint8_t { Inactive, Pending, Firing };

/** Lifecycle edges the monitor emits (a log, not just final states). */
enum class AlertTransition : std::uint8_t {
    Pending,  //!< breach observed, waiting out pending_ticks
    Firing,   //!< sustained breach: the alert is live
    Cancelled, //!< breach cleared before the alert fired
    Resolved  //!< firing alert cleared for resolve_ticks evaluations
};

const char *toString(AlertTransition t);

/** One lifecycle edge, stamped with the sim time and burn rates. */
struct AlertEvent
{
    double t_s = 0.0;
    std::string objective;
    AlertTransition transition = AlertTransition::Pending;
    double fast_burn = 0.0;
    double slow_burn = 0.0;
};

/** Multi-objective burn-rate monitor over per-tick good/bad counts. */
class SloMonitor
{
  public:
    /** Current standing of one objective. */
    struct Status
    {
        AlertState state = AlertState::Inactive;
        double fast_burn = 0.0;
        double slow_burn = 0.0;
        /** Cumulative events since attach (budget accounting). */
        std::uint64_t good_total = 0;
        std::uint64_t bad_total = 0;
        int breach_streak = 0;
        int clear_streak = 0;

        /**
         * Fraction of the total error budget consumed so far: bad
         * events over the budget's allowance for the events seen.
         * > 1 means the budget is exhausted.
         */
        double budgetConsumed(double budget_fraction) const;
    };

    /** Register an objective; returns its id for record()/status(). */
    int addObjective(const SloObjective &objective);

    /** Report one tick's event counts for an objective at sim time. */
    void record(int id, double t_s, std::uint64_t good, std::uint64_t bad);

    /**
     * Evaluate every objective's alert rule at sim time t_s and return
     * the transitions this evaluation caused (also appended to the
     * cumulative events() log). Call once per tick, after record()s.
     */
    std::vector<AlertEvent> evaluate(double t_s);

    std::size_t objectiveCount() const { return objectives_.size(); }
    const SloObjective &objective(int id) const;
    const Status &status(int id) const;

    /** Every transition since attach, in emission order. */
    const std::vector<AlertEvent> &events() const { return events_; }

    bool anyFiring() const;

    /** Transitions of one kind in the cumulative log. */
    int transitionCount(AlertTransition t) const;

  private:
    /** Ring of per-period good/bad counts: a windowed bad-fraction. */
    struct RatioWindow
    {
        struct Slot
        {
            std::int64_t period = -1;
            std::uint64_t good = 0;
            std::uint64_t bad = 0;
        };

        double bucket_width_s = 1.0;
        int buckets = 1;
        std::vector<Slot> slots;

        void init(double horizon_s, int bucket_count);
        void record(double t_s, std::uint64_t good, std::uint64_t bad);
        /** Bad fraction over the window (0 when empty). */
        double badFraction(double t_s) const;
    };

    struct Tracked
    {
        SloObjective obj;
        RatioWindow fast;
        RatioWindow slow;
        Status status;
    };

    std::vector<Tracked> objectives_;
    std::vector<AlertEvent> events_;
};

} // namespace dri::obs
