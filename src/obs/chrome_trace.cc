#include "obs/chrome_trace.h"

#include <algorithm>
#include <ostream>
#include <set>
#include <sstream>
#include <unordered_map>

namespace dri::obs {

namespace {

int
pidOf(const SpanRecord &s)
{
    return static_cast<int>(s.shard) + 2; // main shard (-1) -> pid 1
}

void
writeFlags(std::ostream &os, std::uint8_t flags)
{
    os << "\"flags\":\"";
    bool first = true;
    const auto emit = [&](std::uint8_t bit, const char *name) {
        if ((flags & bit) == 0)
            return;
        if (!first)
            os << "|";
        os << name;
        first = false;
    };
    emit(kFlagHedge, "hedge");
    emit(kFlagCancelled, "cancelled");
    emit(kFlagLoser, "loser");
    emit(kFlagShed, "shed");
    emit(kFlagCacheHit, "cache_hit");
    emit(kFlagFault, "fault");
    os << "\"";
}

} // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<SpanRecord> &spans)
{
    os << "[";
    bool first = true;

    std::set<int> pids;
    for (const SpanRecord &s : spans)
        pids.insert(pidOf(s));
    for (const int pid : pids) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
           << ",\"tid\":0,\"args\":{\"name\":\""
           << (pid == 1 ? std::string("main-shard")
                        : "sparse-shard-" + std::to_string(pid - 2))
           << "\"}}";
    }

    for (const SpanRecord &s : spans) {
        if (s.open())
            continue;
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"ph\":\"X\",\"name\":\"" << spanKindName(s.kind)
           << "\",\"cat\":\"" << pathBucketName(bucketOf(s.kind))
           << "\",\"pid\":" << pidOf(s) << ",\"tid\":" << s.request_id
           << ",\"ts\":" << static_cast<double>(s.begin) / 1000.0
           << ",\"dur\":" << static_cast<double>(s.duration()) / 1000.0
           << ",\"args\":{\"request\":" << s.request_id
           << ",\"span\":" << s.id << ",\"parent\":" << s.parent
           << ",\"net\":" << s.net << ",\"batch\":" << s.batch << ",";
        writeFlags(os, s.flags);
        os << "}}";
    }

    // Perfetto flow events tying each hedge backup attempt to the
    // primary attempt it raced: a flow-start ("s") anchored on the
    // primary and an enclosing flow-finish ("f","bp":"e") anchored on
    // the backup, with the backup's span id as the flow id. Without
    // these the race is only reconstructable by eye from flags.
    std::unordered_map<SpanId, std::size_t> primary_of; // RpcOp id -> idx
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const SpanRecord &s = spans[i];
        if (s.kind == SpanKind::RpcAttempt && (s.flags & kFlagHedge) == 0)
            primary_of.emplace(s.parent, i);
    }
    for (const SpanRecord &s : spans) {
        if (s.kind != SpanKind::RpcAttempt || (s.flags & kFlagHedge) == 0 ||
            s.open())
            continue;
        const auto it = primary_of.find(s.parent);
        if (it == primary_of.end())
            continue;
        const SpanRecord &primary = spans[it->second];
        os << ",\n{\"ph\":\"s\",\"id\":" << s.id
           << ",\"cat\":\"hedge\",\"name\":\"hedge-race\",\"pid\":"
           << pidOf(primary) << ",\"tid\":" << primary.request_id
           << ",\"ts\":" << static_cast<double>(primary.begin) / 1000.0
           << "}";
        os << ",\n{\"ph\":\"f\",\"bp\":\"e\",\"id\":" << s.id
           << ",\"cat\":\"hedge\",\"name\":\"hedge-race\",\"pid\":"
           << pidOf(s) << ",\"tid\":" << s.request_id
           << ",\"ts\":" << static_cast<double>(s.begin) / 1000.0 << "}";
    }
    os << "]\n";
}

std::string
chromeTraceJson(const std::vector<SpanRecord> &spans)
{
    std::ostringstream os;
    writeChromeTrace(os, spans);
    return os.str();
}

} // namespace dri::obs
