/**
 * @file
 * Bench-artifact regression gate: compare a freshly produced JSONL
 * bench artifact against a committed baseline, with per-metric-class
 * noise-tolerance bands, and fail loudly when the fleet got slower,
 * costlier, or nondeterministic.
 *
 * The benches already emit one flat JSON object per result row on
 * stdout (grep '^{' in CI). This gate closes the loop: baselines
 * produced on a pinned seed live under bench/baselines/ as JSONL,
 * every CI run regenerates the artifacts and diffs them here. Metrics
 * are classified BY NAME, because their failure semantics differ:
 *
 *  - "*wall*": wall-clock milliseconds — machine-dependent, skipped
 *    (opt in via GateConfig::check_wall_clock).
 *  - "*per_sec*": throughput — machine-dependent but directional; a
 *    LOWER bound with a generous tolerance (faster is never a
 *    regression, CI runners are slower than dev boxes).
 *  - "*fingerprint*": determinism contract — compared as raw token
 *    strings (64-bit fingerprints exceed double precision), must be
 *    EXACTLY equal.
 *  - other numbers: deterministic simulation outputs (sim-time P99s,
 *    machine-hours, hit rates) — tight relative band that absorbs only
 *    the 6-significant-digit printing round-trip.
 *  - strings/booleans: identity (config labels, policy names).
 *
 * Rows are matched by index: bench output order is deterministic, and
 * a reordering IS a diff worth failing on. The parser accepts exactly
 * the flat one-line objects bench_common's JsonRow writes; anything
 * else on stdout was never part of the artifact contract.
 */
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace dri::obs {

/** Failure-semantics class a metric name maps to. */
enum class MetricClass : int {
    SkipWallClock, //!< machine-dependent absolute time: not gated
    Throughput,    //!< lower-bound with generous tolerance
    Fingerprint,   //!< exact raw-token equality
    Value,         //!< tight relative band (printing round-trip only)
    Label          //!< string/boolean identity
};

/** Classify by name + whether the raw token parses as a number. */
MetricClass classifyMetric(const std::string &name, bool numeric);

/** Gate tolerances. */
struct GateConfig
{
    /**
     * Throughput lower bound: current >= tolerance * baseline. The
     * default absorbs CI-runner jitter; a perf-regression canary test
     * can tighten it (0.9 catches a 20% drop).
     */
    double throughput_tolerance = 0.75;
    /** Relative band for deterministic numeric metrics. */
    double value_tolerance = 2e-5;
    /** Absolute floor for near-zero deterministic metrics. */
    double value_abs_floor = 1e-9;
    /** Gate "*wall*" metrics too (same bound as throughput, inverted). */
    bool check_wall_clock = false;
    /**
     * Skip throughput (and wall) checks entirely — for sanitizer CI
     * entries whose builds are legitimately an order of magnitude
     * slower than any baseline machine.
     */
    bool skip_machine_dependent = false;
};

/** One gate failure. */
struct GateViolation
{
    std::size_t row = 0; //!< row index in the baseline artifact
    std::string key;
    std::string kind; //!< "rows"|"missing"|"throughput"|"value"|...
    std::string baseline;
    std::string current;
    std::string detail;
};

struct GateReport
{
    std::size_t rows_compared = 0;
    std::size_t metrics_compared = 0;
    std::size_t metrics_skipped = 0;
    std::vector<GateViolation> violations;

    bool pass() const { return violations.empty(); }
};

/** One parsed artifact row: ordered (key, raw value token) pairs. */
struct ArtifactRow
{
    std::vector<std::pair<std::string, std::string>> fields;

    /** Raw token for a key, or nullptr. */
    const std::string *find(const std::string &key) const;
};

/**
 * Parse flat one-line JSON objects from a stream; non-object lines
 * (logs, self-check chatter) are ignored, malformed object lines
 * throw std::runtime_error naming the line.
 */
std::vector<ArtifactRow> parseArtifact(std::istream &in);

/** parseArtifact over a file; throws std::runtime_error if unreadable. */
std::vector<ArtifactRow> parseArtifactFile(const std::string &path);

/** Diff current against baseline under the config's bands. */
GateReport compareArtifacts(const std::vector<ArtifactRow> &baseline,
                            const std::vector<ArtifactRow> &current,
                            const GateConfig &config = {});

/** Human-readable report (one line per violation + a summary line). */
void writeReport(std::ostream &os, const GateReport &report,
                 const std::string &baseline_name,
                 const std::string &current_name);

} // namespace dri::obs
