/**
 * @file
 * Tail-based trace retention: the keep/recycle policy that turns the
 * append-only SpanTracer into a bounded-memory tracing system.
 *
 * An unsampled tracer retains every span tree ever opened — unbounded
 * memory over a week-long replay. With a TraceSampler attached, the
 * tracer routes each request's spans into a per-request tree drawn from
 * a pooled arena (the sim/pool.h recycle idiom: objects keep their
 * storage and are restored to a pristine state in place), and the
 * sampler makes a deterministic keep/recycle decision when the
 * request's root span closes.
 *
 * ## Retention-policy contract
 *
 * A root is KEPT, in priority order, when:
 *
 *  1. **Flagged** — the closed root carries kFlagShed (the request was
 *     shed) or kFlagHedge (a hedge backup won at least one of its
 *     races), or any span recorded so far in the tree carries
 *     kFlagFault (an attempt hit a dead/partitioned/unresolvable
 *     target). Fault debris that closes after the root close is graded
 *     best-effort: flags present at decision time decide.
 *  2. **Tail** — the root's duration meets the rolling-quantile
 *     threshold read from SamplerConfig::latency_feed (the same
 *     RollingHistogram ServingConfig::latency_feed fills; the feed
 *     observes a request only after the sampler's decision, so the
 *     threshold never includes the request being judged), falling back
 *     to the static tail_threshold_ns when no feed is attached or the
 *     window is empty.
 *  3. **Reservoir** — a seeded uniform reservoir (Algorithm R) of
 *     reservoir_size roots over every root close, so healthy traffic
 *     stays represented no matter how long the replay runs. The
 *     reservoir draws from the sampler's PRIVATE rng stream — never
 *     the simulation's — which is what keeps sampling observation-pure
 *     (byte-identical RequestStats and fingerprints with sampling on
 *     or off, zero extra simulation RNG draws).
 *
 * Everything else is recycled: the tree's span vector is cleared with
 * its capacity retained and the arena slot is reused, so steady-state
 * tracing performs no heap allocation once the arena has grown to the
 * replay's maximum request concurrency.
 *
 * Retained memory is hard-capped by retained_byte_budget: admitting a
 * trace evicts retained traces of strictly lower keep class first,
 * then same-class oldest-first, and is itself dropped (counted) when
 * no such eviction frees enough room. All decisions are pure functions
 * of the span stream and the sampler seed, so reruns retain the
 * identical trace set.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/span.h"
#include "obs/timeseries.h"
#include "stats/rng.h"

namespace dri::obs {

/** Why a retained trace was kept (priority order, highest wins). */
enum class KeepClass : std::uint8_t
{
    Recycled = 0,  //!< not retained (sentinel; never stored)
    Reservoir = 1, //!< seeded uniform reservoir member
    Tail = 2,      //!< E2E met the rolling tail threshold
    Flagged = 3,   //!< shed / fault / hedge-win root
};

/** Short lower-case keep-class name (tables, JSON rows). */
const char *keepClassName(KeepClass c);

/** Retention-policy knobs. */
struct SamplerConfig
{
    /** Sampler-private reservoir seed (never the simulation's). */
    std::uint64_t seed = 0x5a3b1ed;
    /** Uniform-reservoir size over root closes (0 disables it). */
    std::size_t reservoir_size = 32;
    /** Rolling-quantile tail threshold (q of the latency feed). */
    double tail_quantile = 0.99;
    /**
     * Rolling latency window the tail threshold is read from —
     * typically the SAME RollingHistogram wired into
     * ServingConfig::latency_feed. Not owned; may be null.
     */
    const RollingHistogram *latency_feed = nullptr;
    /** Static tail threshold when no feed (or an empty window); 0 = off. */
    sim::Duration tail_threshold_ns = 0;
    /** Keep Shed / Fault / hedge-win roots unconditionally. */
    bool keep_flagged = true;
    /** Hard cap on retained span bytes (sum of span-record storage). */
    std::size_t retained_byte_budget = 4u << 20;
};

/** One kept trace: tree-local flat spans (id == index + 1). */
struct RetainedTrace
{
    std::uint64_t request_id = 0;
    KeepClass keep_class = KeepClass::Recycled;
    /** Root span duration at decision time. */
    sim::Duration e2e = 0;
    /**
     * The tree's spans in begin order with tree-local ids, directly
     * consumable by criticalPaths()/checkConservation() per trace.
     */
    std::vector<SpanRecord> spans;

    std::size_t byteSize() const
    {
        return spans.size() * sizeof(SpanRecord);
    }
};

/** Retention counters (all deterministic under a fixed seed). */
struct SamplerStats
{
    std::uint64_t roots_closed = 0;
    std::uint64_t kept_flagged = 0;
    std::uint64_t kept_tail = 0;
    std::uint64_t kept_reservoir = 0;
    std::uint64_t recycled = 0;
    /** Retained traces evicted to fit a higher/newer admission. */
    std::uint64_t budget_evictions = 0;
    /** Keep decisions dropped because the budget could not fit them. */
    std::uint64_t budget_rejected = 0;
    /** Debris spans arriving after their tree was sealed (dropped). */
    std::uint64_t stale_span_drops = 0;
};

class TraceSampler
{
  public:
    explicit TraceSampler(SamplerConfig config = {});

    TraceSampler(const TraceSampler &) = delete;
    TraceSampler &operator=(const TraceSampler &) = delete;

    const SamplerConfig &config() const { return cfg_; }

    /**
     * Point the tail threshold at a (new) rolling feed mid-run — the
     * fleet driver re-wires this per segment because each segment's
     * simulation restarts its clock.
     */
    void setLatencyFeed(const RollingHistogram *feed)
    {
        cfg_.latency_feed = feed;
    }

    // -- Arena interface (driven by SpanTracer; see obs/span_tracer.h) --

    /**
     * One in-flight request's span tree, recycled in place (sim/pool.h
     * protocol: storage is slot-stable, the span vector keeps its
     * capacity across reuse, generation guards stale handles).
     */
    struct Tree
    {
        std::uint64_t request_id = 0;
        std::uint32_t slot = 0;
        std::uint32_t generation = 0;
        std::uint32_t open = 0;
        bool decided = false;
        KeepClass keep_class = KeepClass::Recycled;
        std::vector<SpanRecord> spans; //!< tree-local ids (index + 1)
    };

    /** Open a tree for a new root span (recycles a free arena slot). */
    Tree *acquireTree(std::uint64_t request_id);

    /** Arena tree at @p slot, or nullptr past the arena end. */
    Tree *treeAt(std::uint32_t slot)
    {
        return slot < arena_.size() ? arena_[slot].get() : nullptr;
    }

    /**
     * Classify the tree at root close (root must already carry its end
     * time). Sets keep_class/decided; retention happens at seal().
     */
    void decide(Tree *tree, sim::SimTime now);

    /**
     * Seal a decided tree once its last span closed: move it into the
     * retained store (budget permitting) or recycle it in place.
     */
    void seal(Tree *tree);

    /** Count a debris span dropped against a recycled tree. */
    void noteStaleSpan() { ++stats_.stale_span_drops; }

    // -- Read side ------------------------------------------------------

    /** Kept traces in admission order (evictions excise in place). */
    const std::vector<RetainedTrace> &retained() const { return retained_; }

    /** True if @p request_id 's trace is currently retained. */
    bool isRetained(std::uint64_t request_id) const;

    /** Sum of retained span-record bytes (always <= the budget). */
    std::size_t retainedBytes() const { return retained_bytes_; }

    /** Arena slots ever created == maximum concurrent request trees. */
    std::size_t arenaSlots() const { return arena_.size(); }

    const SamplerStats &stats() const { return stats_; }

    /**
     * All retained spans flattened into one tracer-style vector:
     * per-trace local ids are rebased so id == index + 1 holds
     * globally, making the result directly consumable by
     * criticalPaths(), checkConservation(), and writeChromeTrace().
     */
    std::vector<SpanRecord> flattenedSpans() const;

  private:
    bool rootFlagged(const Tree &tree) const;
    sim::Duration tailThreshold(sim::SimTime now) const;
    void retain(Tree *tree);
    void recycle(Tree *tree);
    void recycleSlotOnly(Tree *tree);
    void evictRetainedAt(std::size_t index);

    SamplerConfig cfg_;
    stats::Rng rng_;

    /** Slot-stable tree storage; free_slots_ recycles indices. */
    std::vector<std::unique_ptr<Tree>> arena_;
    std::vector<std::uint32_t> free_slots_;

    std::vector<RetainedTrace> retained_;
    std::size_t retained_bytes_ = 0;
    /** request_ids of current reservoir members (Algorithm R slots). */
    std::vector<std::uint64_t> reservoir_;

    SamplerStats stats_;
};

} // namespace dri::obs
