/**
 * @file
 * Rolling time windows over metric streams: the bridge from the
 * collection layer (src/obs metrics, per-request stats) to *online*
 * judgments (src/obs slo_monitor, detect).
 *
 * Both window types share one structure: the horizon is split into a
 * ring of equal-width time buckets, each holding a mergeable summary
 * (an exact stats::QuantileEstimator for double streams, an HDR-style
 * obs::Histogram for integer latencies). Observations land in the
 * bucket their timestamp selects; advancing time reuses expired slots
 * in place, so eviction is O(1) per bucket regardless of how many
 * samples fall out. Queries merge the live buckets — which is exactly
 * the QuantileEstimator::merge / Histogram::merge use case: merged
 * per-bucket summaries answer the same quantiles as one summary fed
 * the whole window (exactly for the estimator, within bucket
 * resolution for the histogram).
 *
 * Windows run on the *simulated* clock and are pure data structures:
 * no RNG, no scheduled events — attaching one to a live simulation can
 * never perturb it (the contract the stress grid enforces for the
 * serving-side rolling-P99 feed).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "stats/quantile.h"

namespace dri::obs {

/** Shared ring geometry: horizon_s split into `buckets` slots. */
struct WindowConfig
{
    /** Window length in (simulated) seconds. */
    double horizon_s = 60.0;
    /** Time buckets the horizon is split into (eviction granularity). */
    int buckets = 8;
};

/**
 * Rolling window over a double-valued sample stream: windowed count,
 * arrival rate, mean, and exact quantiles over the last horizon_s
 * seconds.
 *
 * Out-of-order timestamps are tolerated: a late sample whose bucket is
 * still live lands in that bucket, and a sample more than a full
 * horizon older than the data its ring slot holds is dropped (counted
 * in droppedStale()) rather than wiping the live bucket that happens to
 * share the slot. Completion-time feeds (latency samples stamped with
 * the *start* of the request) hit both cases routinely.
 */
class RollingWindow
{
  public:
    explicit RollingWindow(WindowConfig config = {});

    /** Record one sample at sim-time t_s (seconds). */
    void observe(double t_s, double value);

    /** Samples inside the window as of time t_s. */
    std::size_t count(double t_s) const;

    /** Windowed arrival rate: count over the full horizon, per second. */
    double ratePerSec(double t_s) const;

    /** Mean of the windowed samples (0 when empty). */
    double mean(double t_s) const;

    /**
     * Exact windowed quantile via per-bucket estimator merge; returns
     * `empty_value` when no sample is in the window.
     */
    double quantile(double t_s, double q, double empty_value = 0.0) const;

    /** Samples dropped because they arrived over a horizon late. */
    std::uint64_t droppedStale() const { return dropped_stale_; }

    const WindowConfig &config() const { return cfg_; }

  private:
    struct Slot
    {
        std::int64_t period = -1; //!< bucket index since t=0; -1 = empty
        stats::QuantileEstimator values;
        double sum = 0.0;
    };

    std::int64_t periodOf(double t_s) const;
    bool live(const Slot &s, std::int64_t now_period) const;

    WindowConfig cfg_;
    double bucket_width_s_;
    std::vector<Slot> slots_;
    std::uint64_t dropped_stale_ = 0;
};

/**
 * Rolling window over an integer-valued stream (latency nanoseconds)
 * with HDR-histogram buckets instead of exact samples: O(log range)
 * memory per time bucket no matter the request rate, quantiles within
 * 2^-sub_bucket_bits relative error via Histogram::valueAtQuantile.
 * This is the serving-side rolling in-run P99 feed's representation.
 */
class RollingHistogram
{
  public:
    explicit RollingHistogram(WindowConfig config = {},
                              unsigned sub_bucket_bits = 5);

    void observe(double t_s, std::int64_t value);

    /**
     * Observe with exemplar metadata (forwarded to the slot histogram;
     * a no-op extension unless setExemplarCapacity() enabled them).
     */
    void observe(double t_s, std::int64_t value, std::uint64_t request_id,
                 bool retained);

    /**
     * Enable per-bucket exemplars on every slot histogram (and future
     * recycles). 0 (the default) keeps the window exemplar-free.
     */
    void setExemplarCapacity(std::size_t k);

    std::uint64_t count(double t_s) const;

    /**
     * Merged histogram of the live buckets as of t_s. Carries merged
     * exemplars when exemplar capacity is enabled.
     */
    Histogram merged(double t_s) const;

    /**
     * Windowed quantile (bucket-interpolated); `empty_value` when the
     * window holds no sample.
     */
    double valueAtQuantile(double t_s, double q,
                           double empty_value = 0.0) const;

    /** Samples dropped because they arrived over a horizon late. */
    std::uint64_t droppedStale() const { return dropped_stale_; }

    const WindowConfig &config() const { return cfg_; }

  private:
    struct Slot
    {
        std::int64_t period = -1;
        Histogram hist;

        explicit Slot(unsigned bits) : hist(bits) {}
    };

    std::int64_t periodOf(double t_s) const;

    /** Slot for an observe at period @p p, or nullptr (stale sample). */
    Slot *slotFor(std::int64_t p);

    WindowConfig cfg_;
    double bucket_width_s_;
    unsigned sub_bucket_bits_;
    std::size_t exemplar_capacity_ = 0;
    std::vector<Slot> slots_;
    std::uint64_t dropped_stale_ = 0;
};

} // namespace dri::obs
