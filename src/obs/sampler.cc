#include "obs/sampler.h"

#include <algorithm>

namespace dri::obs {

const char *
keepClassName(KeepClass c)
{
    switch (c) {
    case KeepClass::Recycled:
        return "recycled";
    case KeepClass::Reservoir:
        return "reservoir";
    case KeepClass::Tail:
        return "tail";
    case KeepClass::Flagged:
        return "flagged";
    }
    return "?";
}

TraceSampler::TraceSampler(SamplerConfig config)
    : cfg_(config), rng_(config.seed)
{
}

TraceSampler::Tree *
TraceSampler::acquireTree(std::uint64_t request_id)
{
    Tree *t;
    if (free_slots_.empty()) {
        arena_.push_back(std::make_unique<Tree>());
        t = arena_.back().get();
        t->slot = static_cast<std::uint32_t>(arena_.size() - 1);
    } else {
        t = arena_[free_slots_.back()].get();
        free_slots_.pop_back();
    }
    t->request_id = request_id;
    t->open = 0;
    t->decided = false;
    t->keep_class = KeepClass::Recycled;
    t->spans.clear(); // capacity retained: the pool recycle protocol
    return t;
}

bool
TraceSampler::rootFlagged(const Tree &tree) const
{
    const SpanRecord &root = tree.spans.front();
    if ((root.flags & (kFlagShed | kFlagHedge)) != 0)
        return true;
    for (const SpanRecord &s : tree.spans)
        if ((s.flags & kFlagFault) != 0)
            return true;
    return false;
}

sim::Duration
TraceSampler::tailThreshold(sim::SimTime now) const
{
    if (cfg_.latency_feed != nullptr) {
        const double q = cfg_.latency_feed->valueAtQuantile(
            static_cast<double>(now) * 1e-9, cfg_.tail_quantile,
            /*empty_value=*/-1.0);
        if (q >= 0.0)
            return static_cast<sim::Duration>(q);
    }
    return cfg_.tail_threshold_ns;
}

void
TraceSampler::decide(Tree *tree, sim::SimTime now)
{
    if (tree == nullptr || tree->decided || tree->spans.empty())
        return;
    tree->decided = true;
    ++stats_.roots_closed;

    if (cfg_.keep_flagged && rootFlagged(*tree)) {
        tree->keep_class = KeepClass::Flagged;
        return;
    }
    const sim::Duration e2e = tree->spans.front().duration();
    const sim::Duration threshold = tailThreshold(now);
    if (threshold > 0 && e2e >= threshold) {
        tree->keep_class = KeepClass::Tail;
        return;
    }
    // Seeded uniform reservoir (Algorithm R) over root closes. The rng
    // draw happens for every root past the fill — the SAME number of
    // draws regardless of simulation behavior, and from the sampler's
    // private stream, so sampling can never perturb the run.
    if (cfg_.reservoir_size > 0) {
        const std::uint64_t idx = stats_.roots_closed - 1;
        if (reservoir_.size() < cfg_.reservoir_size) {
            reservoir_.push_back(tree->request_id);
            tree->keep_class = KeepClass::Reservoir;
            return;
        }
        const std::uint64_t j = static_cast<std::uint64_t>(
            rng_.uniformInt(0, static_cast<std::int64_t>(idx)));
        if (j < cfg_.reservoir_size) {
            // Replace the j-th member: evict its retained trace (if it
            // is still retained — a budget eviction may have beaten us).
            const std::uint64_t victim = reservoir_[j];
            for (std::size_t i = 0; i < retained_.size(); ++i) {
                if (retained_[i].request_id == victim &&
                    retained_[i].keep_class == KeepClass::Reservoir) {
                    evictRetainedAt(i);
                    break;
                }
            }
            reservoir_[j] = tree->request_id;
            tree->keep_class = KeepClass::Reservoir;
            return;
        }
    }
    tree->keep_class = KeepClass::Recycled;
}

void
TraceSampler::seal(Tree *tree)
{
    if (tree == nullptr || !tree->decided || tree->open != 0)
        return;
    if (tree->keep_class == KeepClass::Recycled)
        recycle(tree);
    else
        retain(tree);
}

void
TraceSampler::evictRetainedAt(std::size_t index)
{
    retained_bytes_ -= retained_[index].byteSize();
    retained_.erase(retained_.begin() +
                    static_cast<std::ptrdiff_t>(index));
}

void
TraceSampler::recycleSlotOnly(Tree *tree)
{
    // Generation bump invalidates every outstanding handle into this
    // slot the moment the tree is sealed — late debris resolves to a
    // counted no-op instead of writing into the slot's next tenant.
    ++tree->generation;
    tree->decided = false;
    free_slots_.push_back(tree->slot);
}

void
TraceSampler::retain(Tree *tree)
{
    const std::size_t bytes = tree->spans.size() * sizeof(SpanRecord);
    // Budget admission: evict strictly-lower classes first, then
    // same-class oldest-first. Never evict a higher class for a lower-
    // class admission — drop the admission instead.
    while (retained_bytes_ + bytes > cfg_.retained_byte_budget &&
           !retained_.empty()) {
        std::size_t victim = retained_.size();
        // Lowest class, oldest within it.
        for (std::size_t i = 0; i < retained_.size(); ++i)
            if (victim == retained_.size() ||
                retained_[i].keep_class < retained_[victim].keep_class)
                victim = i;
        if (retained_[victim].keep_class > tree->keep_class)
            break; // only higher classes left: the admission loses
        evictRetainedAt(victim);
        ++stats_.budget_evictions;
    }
    if (retained_bytes_ + bytes > cfg_.retained_byte_budget) {
        ++stats_.budget_rejected;
        recycle(tree);
        return;
    }

    switch (tree->keep_class) {
    case KeepClass::Flagged:
        ++stats_.kept_flagged;
        break;
    case KeepClass::Tail:
        ++stats_.kept_tail;
        break;
    case KeepClass::Reservoir:
        ++stats_.kept_reservoir;
        break;
    case KeepClass::Recycled:
        break;
    }
    RetainedTrace kept;
    kept.request_id = tree->request_id;
    kept.keep_class = tree->keep_class;
    kept.e2e = tree->spans.front().duration();
    kept.spans = std::move(tree->spans);
    retained_bytes_ += bytes;
    retained_.push_back(std::move(kept));
    // The moved-from vector is hollow; the slot still recycles (its
    // next tenant re-grows capacity once, then reaches steady state).
    recycleSlotOnly(tree);
}

void
TraceSampler::recycle(Tree *tree)
{
    ++stats_.recycled;
    recycleSlotOnly(tree);
}

std::vector<SpanRecord>
TraceSampler::flattenedSpans() const
{
    std::size_t total = 0;
    for (const RetainedTrace &t : retained_)
        total += t.spans.size();
    std::vector<SpanRecord> out;
    out.reserve(total);
    SpanId base = 0;
    for (const RetainedTrace &t : retained_) {
        for (SpanRecord s : t.spans) {
            s.id += base;
            if (s.parent != kNoSpan)
                s.parent += base;
            out.push_back(s);
        }
        base += t.spans.size();
    }
    return out;
}

bool
TraceSampler::isRetained(std::uint64_t request_id) const
{
    for (const RetainedTrace &t : retained_)
        if (t.request_id == request_id)
            return true;
    return false;
}

} // namespace dri::obs
