#include "obs/timeseries.h"

#include <cmath>
#include <stdexcept>

namespace dri::obs {

namespace {

void
validate(const WindowConfig &cfg)
{
    if (cfg.horizon_s <= 0.0)
        throw std::invalid_argument("WindowConfig: horizon_s must be > 0");
    if (cfg.buckets <= 0)
        throw std::invalid_argument("WindowConfig: buckets must be > 0");
}

std::int64_t
periodAt(double t_s, double bucket_width_s)
{
    if (t_s < 0.0)
        t_s = 0.0;
    return static_cast<std::int64_t>(std::floor(t_s / bucket_width_s));
}

/** Bucket is part of the window ending at now_period (inclusive). */
bool
inWindow(std::int64_t period, std::int64_t now_period, int buckets)
{
    return period >= 0 && period <= now_period &&
           period > now_period - buckets;
}

} // namespace

RollingWindow::RollingWindow(WindowConfig config) : cfg_(config)
{
    validate(cfg_);
    bucket_width_s_ = cfg_.horizon_s / cfg_.buckets;
    slots_.resize(static_cast<std::size_t>(cfg_.buckets));
}

std::int64_t
RollingWindow::periodOf(double t_s) const
{
    return periodAt(t_s, bucket_width_s_);
}

bool
RollingWindow::live(const Slot &s, std::int64_t now_period) const
{
    return inWindow(s.period, now_period, cfg_.buckets);
}

void
RollingWindow::observe(double t_s, double value)
{
    const std::int64_t p = periodOf(t_s);
    Slot &s = slots_[static_cast<std::size_t>(p % cfg_.buckets)];
    if (p > s.period) {
        // Slot belonged to a period at least one full horizon ago: recycle.
        s.values.clear();
        s.sum = 0.0;
        s.period = p;
    } else if (p < s.period) {
        // Out-of-order sample from more than a full horizon before the
        // data this slot holds (same ring position, older cycle). The old
        // `s.period != p` recycle test wiped the *live* bucket here and
        // replaced it with data no query would ever count. Drop the
        // sample instead and make the loss observable.
        ++dropped_stale_;
        return;
    }
    s.values.add(value);
    s.sum += value;
}

std::size_t
RollingWindow::count(double t_s) const
{
    const std::int64_t now = periodOf(t_s);
    std::size_t n = 0;
    for (const Slot &s : slots_)
        if (live(s, now))
            n += s.values.count();
    return n;
}

double
RollingWindow::ratePerSec(double t_s) const
{
    return static_cast<double>(count(t_s)) / cfg_.horizon_s;
}

double
RollingWindow::mean(double t_s) const
{
    const std::int64_t now = periodOf(t_s);
    double sum = 0.0;
    std::size_t n = 0;
    for (const Slot &s : slots_) {
        if (live(s, now)) {
            sum += s.sum;
            n += s.values.count();
        }
    }
    return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double
RollingWindow::quantile(double t_s, double q, double empty_value) const
{
    const std::int64_t now = periodOf(t_s);
    stats::QuantileEstimator merged;
    for (const Slot &s : slots_)
        if (live(s, now))
            merged.merge(s.values);
    return merged.empty() ? empty_value : merged.quantile(q);
}

RollingHistogram::RollingHistogram(WindowConfig config,
                                   unsigned sub_bucket_bits)
    : cfg_(config), sub_bucket_bits_(sub_bucket_bits)
{
    validate(cfg_);
    bucket_width_s_ = cfg_.horizon_s / cfg_.buckets;
    slots_.reserve(static_cast<std::size_t>(cfg_.buckets));
    for (int i = 0; i < cfg_.buckets; ++i)
        slots_.emplace_back(sub_bucket_bits_);
}

std::int64_t
RollingHistogram::periodOf(double t_s) const
{
    return periodAt(t_s, bucket_width_s_);
}

RollingHistogram::Slot *
RollingHistogram::slotFor(std::int64_t p)
{
    Slot &s = slots_[static_cast<std::size_t>(p % cfg_.buckets)];
    if (p > s.period) {
        s.hist = Histogram(sub_bucket_bits_);
        s.hist.setExemplarCapacity(exemplar_capacity_);
        s.period = p;
    } else if (p < s.period) {
        // Same out-of-order hazard as RollingWindow::observe: an older-
        // cycle sample must not wipe the live bucket sharing its slot.
        ++dropped_stale_;
        return nullptr;
    }
    return &s;
}

void
RollingHistogram::observe(double t_s, std::int64_t value)
{
    Slot *s = slotFor(periodOf(t_s));
    if (s != nullptr)
        s->hist.observe(value);
}

void
RollingHistogram::observe(double t_s, std::int64_t value,
                          std::uint64_t request_id, bool retained)
{
    Slot *s = slotFor(periodOf(t_s));
    if (s != nullptr)
        s->hist.observe(value, request_id, retained);
}

void
RollingHistogram::setExemplarCapacity(std::size_t k)
{
    exemplar_capacity_ = k;
    for (Slot &s : slots_)
        s.hist.setExemplarCapacity(k);
}

std::uint64_t
RollingHistogram::count(double t_s) const
{
    const std::int64_t now = periodOf(t_s);
    std::uint64_t n = 0;
    for (const Slot &s : slots_)
        if (inWindow(s.period, now, cfg_.buckets))
            n += s.hist.count();
    return n;
}

Histogram
RollingHistogram::merged(double t_s) const
{
    const std::int64_t now = periodOf(t_s);
    Histogram out(sub_bucket_bits_);
    out.setExemplarCapacity(exemplar_capacity_);
    for (const Slot &s : slots_)
        if (inWindow(s.period, now, cfg_.buckets))
            out.merge(s.hist);
    return out;
}

double
RollingHistogram::valueAtQuantile(double t_s, double q,
                                  double empty_value) const
{
    const Histogram h = merged(t_s);
    return h.count() > 0 ? h.valueAtQuantile(q) : empty_value;
}

} // namespace dri::obs
