/**
 * @file
 * Streaming anomaly / change-point detection over metric streams, plus
 * the harness that scores detectors against the diurnal load model's
 * seeded ground truth.
 *
 * Two complementary detectors:
 *
 *  - EwmaMadDetector: robust z-score. Tracks an EWMA of the level and
 *    an EWMA of absolute deviations (a streaming MAD stand-in, scaled
 *    by 1.4826 to estimate sigma under normality); a point whose
 *    deviation exceeds `z_threshold` sigmas is an anomaly. Robust on
 *    two fronts: the baseline initializes from the MEDIAN (and median
 *    absolute deviation) of the warmup samples, so an anomaly landing
 *    inside the warmup window cannot seed a contaminated baseline; and
 *    after warmup the trackers only absorb flagged points at the
 *    (slower) contaminated rate — one giant spike neither drags the
 *    level nor inflates the spread enough to mask the next spike.
 *
 *  - CusumDetector: two-sided CUSUM on the standardized residuals the
 *    EWMA baseline produces. Where the z-score flags single outliers,
 *    CUSUM accumulates small persistent drifts (sum of (z - k) clamped
 *    at zero) and flags when the accumulation crosses h — the classic
 *    mean-shift change-point detector. After a detection the
 *    accumulators reset and the baseline re-learns.
 *
 * Both are pure streaming state machines: no RNG, byte-identical flag
 * sequences for identical input streams.
 *
 * The evaluation harness replays a DiurnalLoadModel's realized/forecast
 * load ratio (diurnal shape divided out, so the detector sees a flat
 * line with seeded Poisson burst overlays) and scores detection latency
 * and false positives against the model's own burstCount() ground
 * truth — the "seeded fault injection" this layer's tests and the
 * alerting study are built on.
 */
#pragma once

#include <string>
#include <vector>

namespace dri::workload {
class DiurnalLoadModel;
}

namespace dri::obs {

/** Streaming detector interface: one flag decision per sample. */
class ChangeDetector
{
  public:
    virtual ~ChangeDetector() = default;

    virtual std::string name() const = 0;

    /** Consume one sample; true when this sample raises a detection. */
    virtual bool step(double value) = 0;

    /** Forget all learned state. */
    virtual void reset() = 0;
};

/** EWMA level + EWMA absolute-deviation robust z-score detector. */
struct EwmaMadConfig
{
    /** EWMA smoothing for the level estimate. */
    double level_alpha = 0.3;
    /** EWMA smoothing for the absolute-deviation (spread) estimate. */
    double spread_alpha = 0.1;
    /**
     * Robust z-score above which a sample is anomalous. 3.5 is the
     * classic robust-outlier cutoff.
     */
    double z_threshold = 3.5;
    /**
     * Samples buffered before any flag can be raised; the baseline
     * initializes from their median / median-absolute-deviation
     * (clamped to >= 1).
     */
    int warmup_samples = 4;
    /**
     * Spread floor as a fraction of the level (and an absolute floor of
     * 1e-12): a perfectly flat baseline must not make every epsilon an
     * infinite-sigma anomaly.
     */
    double min_spread_fraction = 0.01;
    /**
     * Weight applied to level_alpha/spread_alpha when absorbing a
     * FLAGGED sample: 0 freezes the baseline during anomalies (risking
     * a stuck alarm if the level genuinely shifted), 1 learns at full
     * rate (masking persistent incidents). The default re-learns slowly.
     */
    double contaminated_learn_fraction = 0.25;
};

class EwmaMadDetector : public ChangeDetector
{
  public:
    explicit EwmaMadDetector(EwmaMadConfig config = {});

    std::string name() const override { return "ewma-mad"; }
    bool step(double value) override;
    void reset() override;

    /** Robust z-score of the most recent sample. */
    double lastZ() const { return last_z_; }
    double level() const { return level_; }
    /** Sigma estimate (1.4826 * mean absolute deviation). */
    double sigma() const;

    const EwmaMadConfig &config() const { return cfg_; }

  private:
    EwmaMadConfig cfg_;
    std::vector<double> warmup_;
    double level_ = 0.0;
    double abs_dev_ = 0.0;
    double last_z_ = 0.0;
    int seen_ = 0;
};

/** Two-sided CUSUM on EWMA-standardized residuals. */
struct CusumConfig
{
    /** Slack per step in sigmas: drifts below k/step stay invisible. */
    double k = 0.5;
    /** Decision threshold on the accumulated sum (sigmas). */
    double h = 4.0;
    /** Baseline (shared semantics with EwmaMadConfig). */
    double level_alpha = 0.3;
    double spread_alpha = 0.1;
    int warmup_samples = 4;
    double min_spread_fraction = 0.01;
    /** Baseline learning weight while an accumulator is non-zero. */
    double contaminated_learn_fraction = 0.25;
};

class CusumDetector : public ChangeDetector
{
  public:
    explicit CusumDetector(CusumConfig config = {});

    std::string name() const override { return "cusum"; }
    bool step(double value) override;
    void reset() override;

    double positiveSum() const { return g_pos_; }
    double negativeSum() const { return g_neg_; }

    const CusumConfig &config() const { return cfg_; }

  private:
    CusumConfig cfg_;
    std::vector<double> warmup_;
    double level_ = 0.0;
    double abs_dev_ = 0.0;
    double g_pos_ = 0.0;
    double g_neg_ = 0.0;
    int seen_ = 0;
};

/**
 * Ground-truth scoring of a detector against seeded burst overlays.
 *
 * Ground truth: epoch e is a burst epoch iff load.burstCount(e) > 0. A
 * maximal run of burst epochs is one EPISODE. A flag at epoch f is
 * credited to the earliest unclaimed episode whose start lies in
 * [f - match_window_epochs, f]; its detection latency is f - start.
 * Flags matching no episode are false positives; episodes no flag
 * claims are misses.
 */
struct DetectionEval
{
    std::string detector;
    int epochs = 0;
    int episodes = 0;  //!< ground-truth burst episodes in the trace
    int detected = 0;  //!< episodes at least one flag claimed
    int missed = 0;
    int false_positives = 0; //!< flags crediting no episode
    int flags = 0;           //!< total flags raised
    /** Latencies (epochs from episode start) of detected episodes. */
    std::vector<int> latencies;

    double meanLatency() const;
    int maxLatency() const;
    double detectionRate() const;
};

/**
 * Score an already-produced per-epoch flag sequence against the load
 * model's burst ground truth (the matching rules above). This is what
 * FleetSim uses for detectors that ran ONLINE during a fleet run.
 */
DetectionEval scoreFlags(const std::string &detector_name,
                         const std::vector<bool> &flags,
                         const workload::DiurnalLoadModel &load,
                         int match_window_epochs = 2);

/**
 * Replay `epochs` epochs of the load model's realized/forecast ratio
 * through the detector (after reset()) and score it. The signal is the
 * burst overlay alone — detrended of diurnal shape — which is exactly
 * what a production detector fed "load vs forecast" sees.
 */
DetectionEval evaluateDetector(ChangeDetector &detector,
                               const workload::DiurnalLoadModel &load,
                               int epochs, int match_window_epochs = 2);

} // namespace dri::obs
