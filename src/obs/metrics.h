/**
 * @file
 * Named-metrics registry: counters, gauges, and log-linear histograms
 * with typed handles, periodic sim-time snapshots, and a JSONL
 * time-series exporter.
 *
 * The registry turns the fleet simulator's end-of-run ledgers into
 * plottable series: FleetSim registers its gauges once, updates them
 * per epoch, and calls takeSnapshot(t) — each snapshot captures every
 * registered metric in registration order, so the export is
 * deterministic across runs with the same seed.
 *
 * Handles are stable references into node-based storage (std::deque),
 * so registering metric N+1 never invalidates the handle for metric N.
 * Registering the same (name, kind) twice returns the SAME handle —
 * two subsystems can share a counter by name; re-registering a name
 * with a different kind throws std::logic_error.
 *
 * Histograms use HDR-style log-linear bucketing: values below
 * 2^sub_bucket_bits get exact unit buckets; above that, each power-of-
 * two range is split into 2^sub_bucket_bits linear sub-buckets, giving
 * a bounded relative error of 2^-sub_bucket_bits with O(log range)
 * memory.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dri::obs {

/** Monotonic event count. */
class Counter
{
  public:
    void inc(std::int64_t by = 1) { value_ += by; }
    std::int64_t value() const { return value_; }

  private:
    std::int64_t value_ = 0;
};

/** Point-in-time level (queue depth, utilization, replica count...). */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * One exemplar: a concrete observation pinned to the bucket it landed
 * in, linking the histogram back to a request — and, when the trace
 * sampler kept that request, to a retained span tree.
 */
struct Exemplar
{
    std::int64_t value = 0;
    std::uint64_t request_id = 0;
    /** True when the request's span tree is retained by the sampler. */
    bool retained = false;
};

/** Log-linear histogram over non-negative integer values. */
class Histogram
{
  public:
    explicit Histogram(unsigned sub_bucket_bits = 5);

    void observe(std::int64_t value);

    /**
     * Observe with exemplar metadata. When exemplar capacity is 0 (the
     * default) this is identical to plain observe(); otherwise each
     * bucket keeps up to K exemplars, preferring retained ones (a
     * retained exemplar may replace a non-retained occupant so tail
     * buckets point at traces that actually exist).
     */
    void observe(std::int64_t value, std::uint64_t request_id,
                 bool retained);

    /**
     * Enable per-bucket exemplars, at most @p k per bucket (0 turns
     * them off and drops existing ones). Off by default so plain
     * histogram users pay nothing and snapshots stay unchanged.
     */
    void setExemplarCapacity(std::size_t k);
    std::size_t exemplarCapacity() const { return exemplar_capacity_; }

    /** Exemplars of the bucket holding @p value (empty when off). */
    const std::vector<Exemplar> &exemplarsFor(std::int64_t value) const;

    /**
     * An exemplar from the highest non-empty bucket that has one — the
     * concrete request behind the histogram's tail. Prefers retained
     * exemplars within the bucket. Null when exemplars are off/empty.
     */
    const Exemplar *tailExemplar() const;

    std::uint64_t count() const { return count_; }
    std::int64_t min() const { return count_ > 0 ? min_ : 0; }
    std::int64_t max() const { return max_; }
    std::int64_t sum() const { return sum_; }
    double mean() const
    {
        return count_ > 0 ? static_cast<double>(sum_) /
                                static_cast<double>(count_)
                          : 0.0;
    }

    /**
     * Quantile estimate: lower bound of the bucket holding the q-th
     * observation (nearest-rank). Exact for values < 2^sub_bucket_bits.
     */
    std::int64_t quantile(double q) const;

    /**
     * Bucket-interpolation inverse: the value at quantile q, linearly
     * interpolated by rank position WITHIN the holding bucket (quantile()
     * by contrast snaps to the bucket's lower bound). Because log-linear
     * bucket widths are bounded by 2^-sub_bucket_bits of their lower
     * bound, the result is within that relative error of the exact
     * order statistic; clamped to the observed [min, max].
     */
    double valueAtQuantile(double q) const;

    unsigned subBucketBits() const { return sub_bucket_bits_; }

    /** Bucket index a value lands in (exposed for boundary tests). */
    std::size_t bucketIndex(std::int64_t value) const;

    /** Smallest value mapping to bucket @p idx (inverse of bucketIndex). */
    std::int64_t bucketLowerBound(std::size_t idx) const;

    /**
     * Merge another histogram (same sub_bucket_bits) into this one.
     * Exemplars merge too (capacity rules apply on the receiving side).
     */
    void merge(const Histogram &other);

  private:
    void admitExemplar(std::size_t bucket, const Exemplar &ex);

    unsigned sub_bucket_bits_;
    std::int64_t sub_;                 //!< 1 << sub_bucket_bits_
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::int64_t sum_ = 0;
    std::int64_t min_ = 0;
    std::int64_t max_ = 0;
    std::size_t exemplar_capacity_ = 0;
    /** bucket index -> up to K exemplars (sparse: only when enabled). */
    std::vector<std::pair<std::size_t, std::vector<Exemplar>>> exemplars_;
};

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

/** One captured time-point: every registered metric, flattened. */
struct MetricsSnapshot
{
    double t = 0.0; //!< sim-time seconds
    std::vector<std::pair<std::string, double>> values;
};

class MetricsRegistry
{
  public:
    /**
     * Register-or-fetch by name. Same (name, kind) returns the same
     * handle; a kind clash throws std::logic_error.
     */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name,
                         unsigned sub_bucket_bits = 5);

    std::size_t size() const { return entries_.size(); }

    /**
     * Capture every registered metric at sim-time @p t_seconds.
     * Counters/gauges flatten to one value; histograms to
     * name.count/.p50/.p99/.max. Iteration is registration order, so
     * snapshots are deterministic.
     */
    void takeSnapshot(double t_seconds);

    const std::vector<MetricsSnapshot> &snapshots() const
    {
        return snapshots_;
    }

    /** One JSON object per snapshot: {"t":..., "<name>":...,...}. */
    void writeJsonl(std::ostream &os) const;

    void clear();

  private:
    struct Entry
    {
        std::string name;
        MetricKind kind;
        Counter *counter = nullptr;
        Gauge *gauge = nullptr;
        Histogram *histogram = nullptr;
    };

    Entry &find(const std::string &name, MetricKind kind);

    std::deque<Counter> counters_;
    std::deque<Gauge> gauges_;
    std::deque<Histogram> histograms_;
    std::vector<Entry> entries_; //!< registration order
    std::unordered_map<std::string, std::size_t> index_;
    std::vector<MetricsSnapshot> snapshots_;
};

} // namespace dri::obs
