/**
 * @file
 * Request-level span vocabulary for the observability layer.
 *
 * src/trace holds the paper-faithful flat spans (one interval per stack
 * layer, no causality); src/obs adds what a production tracing system
 * would carry on top: a *tree* of spans per request — every lifecycle
 * stage from admission through queue wait, batch coalescing, per-shard
 * RPC attempts (primary and hedge, wire/remote-queue/remote-compute),
 * result-cache probes and the response merge — with parent links, so a
 * request's latency can be walked as a critical path instead of summed
 * as buckets. Spans are recorded in simulated time; the tracer is a
 * pure observer (it never touches the RNG or the event queue), which is
 * what makes "tracing on vs off leaves RequestStats byte-identical" a
 * testable contract rather than a hope.
 */
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace dri::obs {

/**
 * Span handle; 0 = none. In the tracer's default (flat) mode a handle
 * is index + 1 into the tracer's span store. With a TraceSampler
 * attached the handle additionally packs the sampler arena slot and a
 * recycling generation (see obs/sampler.h), which is what lets late
 * debris end()/addFlags() calls against an already-recycled tree
 * resolve to a safe no-op instead of corrupting the slot's new tenant.
 */
using SpanId = std::uint64_t;
constexpr SpanId kNoSpan = 0;

/** Shard id used for main-shard spans (matches trace::kMainShard). */
constexpr int kMainShard = -1;

/** Sentinel end time of a still-open span. */
constexpr sim::SimTime kOpenEnd = -1;

/** Lifecycle stage a span covers. */
enum class SpanKind : std::uint8_t
{
    Request,           //!< root: arrival -> completion (exactly 1/request)
    BatchCoalesce,     //!< waiting in the dynamic batcher before injection
    QueueWait,         //!< waiting for a worker core (main or child-local)
    Deserialize,       //!< request handler + request deserialization
    NetPhase,          //!< one net of the request (nets run sequentially)
    BatchExec,         //!< one batch of one net (batches run in parallel)
    DenseBottom,       //!< net overhead + bottom-dense operator execution
    InlineSparse,      //!< singular-deployment SLS inside the batch
    DenseTop,          //!< top-dense operator execution
    ClientSerde,       //!< fan-out request serialization + dispatch
    ResultCacheProbe,  //!< pooled-result cache probe (instant; hit/miss)
    EmbeddedWait,      //!< batch dispatch -> last sparse response at main
    RpcOp,             //!< one logical sparse RPC (possibly hedged)
    RpcAttempt,        //!< one attempt of an RpcOp (primary or hedge)
    WireOut,           //!< request payload on the wire
    RemoteQueue,       //!< waiting for a sparse-replica worker core
    RemoteCompute,     //!< remote handler + serde + net overhead + SLS
    WireBack,          //!< response payload on the wire
    ResponseDeserde,   //!< sparse-response deserialization at main
    ResponseSerialize, //!< final ranking-response serialization
};

constexpr std::size_t kSpanKindCount = 20;

/** Short lower-case kind name (trace export, tables). */
const char *spanKindName(SpanKind kind);

/**
 * Span flags. Cancelled/Loser spans are the asynchronous debris of a
 * decided race (hedge loser, mid-flight shed, poisoned fan-out): they
 * are required to CLOSE like every other span, but they may legitimately
 * outlive their parent (the request finishes on the winner's path while
 * the loser is still draining), so the conservation checker exempts
 * them from end-containment — and only them.
 */
enum SpanFlags : std::uint8_t
{
    kFlagNone = 0,
    kFlagHedge = 1,     //!< attempt was a hedge backup
    kFlagCancelled = 2, //!< cancelled before/during execution
    kFlagLoser = 4,     //!< executed to completion but lost the race
    kFlagShed = 8,      //!< request was shed (root span)
    kFlagCacheHit = 16, //!< result-cache probe hit
    kFlagFault = 32,    //!< attempt hit a dead/partitioned/unresolvable target
};

/** One recorded span. */
struct SpanRecord
{
    std::uint64_t request_id = 0;
    SpanId id = kNoSpan;
    SpanId parent = kNoSpan;
    SpanKind kind = SpanKind::Request;
    std::uint8_t flags = kFlagNone;
    std::int16_t shard = kMainShard;
    std::int16_t net = -1;
    std::int16_t batch = -1;
    sim::SimTime begin = 0;
    sim::SimTime end = kOpenEnd;

    bool open() const { return end == kOpenEnd; }
    bool cancelled() const { return (flags & (kFlagCancelled | kFlagLoser)) != 0; }
    sim::Duration duration() const { return open() ? 0 : end - begin; }
};

/**
 * The paper's latency-decomposition buckets (queueing vs compute vs
 * network vs serde vs wait), applied per critical-path segment instead
 * of per aggregate.
 */
enum class PathBucket : std::uint8_t
{
    Queue,   //!< main-shard or remote queue wait
    Compute, //!< dense/sparse operator + remote busy execution
    Serde,   //!< (de)serialization + dispatch
    Network, //!< payload on the wire
    Wait,    //!< coalescing / waiting on asynchronous children
    Other,   //!< handler boilerplate and uncovered residue
};

constexpr std::size_t kPathBucketCount = 6;

/** Short lower-case bucket name. */
const char *pathBucketName(PathBucket bucket);

/** Decomposition bucket a span kind's self-time is attributed to. */
PathBucket bucketOf(SpanKind kind);

} // namespace dri::obs
