#include "obs/detect.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "workload/diurnal.h"

namespace dri::obs {

namespace {

/** Shared EWMA baseline update for both detectors. */
struct Baseline
{
    double level;
    double abs_dev;

    static double
    floorSpread(double abs_dev, double level, double min_fraction)
    {
        const double floor_v =
            std::max(1e-12, min_fraction * std::abs(level));
        return std::max(abs_dev, floor_v);
    }
};

/** Sigma estimate from a mean-absolute-deviation tracker. */
constexpr double kMadToSigma = 1.4826;

double
zScore(double value, double level, double abs_dev, double min_fraction)
{
    const double spread =
        Baseline::floorSpread(abs_dev, level, min_fraction);
    return (value - level) / (kMadToSigma * spread);
}

void
learn(double &level, double &abs_dev, double value, double level_alpha,
      double spread_alpha)
{
    const double dev = std::abs(value - level);
    level += level_alpha * (value - level);
    abs_dev += spread_alpha * (dev - abs_dev);
}

double
median(std::vector<double> values)
{
    const std::size_t n = values.size();
    const std::size_t mid = n / 2;
    std::nth_element(values.begin(),
                     values.begin() + static_cast<std::ptrdiff_t>(mid),
                     values.end());
    double m = values[mid];
    if (n % 2 == 0) {
        // Lower-middle element is the max of the left partition.
        const double lo = *std::max_element(
            values.begin(),
            values.begin() + static_cast<std::ptrdiff_t>(mid));
        m = 0.5 * (lo + m);
    }
    return m;
}

/**
 * Seed (level, abs_dev) from the median / median-absolute-deviation of
 * the buffered warmup samples. Up to half the warmup window can be
 * anomalous without contaminating the initial baseline — which is what
 * lets a detector attached at trace start survive a burst in epoch 0.
 */
void
initFromWarmup(const std::vector<double> &warmup, double &level,
               double &abs_dev)
{
    level = median(warmup);
    std::vector<double> devs;
    devs.reserve(warmup.size());
    for (const double v : warmup)
        devs.push_back(std::abs(v - level));
    abs_dev = median(std::move(devs));
}

} // namespace

// ---------------------------------------------------------------------------
// EwmaMadDetector.
// ---------------------------------------------------------------------------

EwmaMadDetector::EwmaMadDetector(EwmaMadConfig config) : cfg_(config) {}

double
EwmaMadDetector::sigma() const
{
    return kMadToSigma *
           Baseline::floorSpread(abs_dev_, level_,
                                 cfg_.min_spread_fraction);
}

bool
EwmaMadDetector::step(double value)
{
    const int warmup = std::max(1, cfg_.warmup_samples);
    if (seen_ < warmup) {
        warmup_.push_back(value);
        ++seen_;
        if (seen_ == warmup)
            initFromWarmup(warmup_, level_, abs_dev_);
        last_z_ = 0.0;
        return false;
    }
    last_z_ = zScore(value, level_, abs_dev_,
                     cfg_.min_spread_fraction);
    const bool flagged = std::abs(last_z_) >= cfg_.z_threshold;
    const double w =
        flagged ? cfg_.contaminated_learn_fraction : 1.0;
    learn(level_, abs_dev_, value, w * cfg_.level_alpha,
          w * cfg_.spread_alpha);
    ++seen_;
    return flagged;
}

void
EwmaMadDetector::reset()
{
    warmup_.clear();
    level_ = 0.0;
    abs_dev_ = 0.0;
    last_z_ = 0.0;
    seen_ = 0;
}

// ---------------------------------------------------------------------------
// CusumDetector.
// ---------------------------------------------------------------------------

CusumDetector::CusumDetector(CusumConfig config) : cfg_(config) {}

bool
CusumDetector::step(double value)
{
    const int warmup = std::max(1, cfg_.warmup_samples);
    if (seen_ < warmup) {
        warmup_.push_back(value);
        ++seen_;
        if (seen_ == warmup)
            initFromWarmup(warmup_, level_, abs_dev_);
        return false;
    }
    const double z = zScore(value, level_, abs_dev_,
                            cfg_.min_spread_fraction);
    g_pos_ = std::max(0.0, g_pos_ + z - cfg_.k);
    g_neg_ = std::max(0.0, g_neg_ - z - cfg_.k);
    bool flagged = false;
    if (g_pos_ > cfg_.h || g_neg_ > cfg_.h) {
        flagged = true;
        // Restart the accumulation; the baseline re-learns the
        // post-change level at the contaminated rate below.
        g_pos_ = 0.0;
        g_neg_ = 0.0;
    }
    const bool contaminated =
        flagged || g_pos_ > 0.0 || g_neg_ > 0.0;
    const double w =
        contaminated ? cfg_.contaminated_learn_fraction : 1.0;
    learn(level_, abs_dev_, value, w * cfg_.level_alpha,
          w * cfg_.spread_alpha);
    ++seen_;
    return flagged;
}

void
CusumDetector::reset()
{
    warmup_.clear();
    level_ = 0.0;
    abs_dev_ = 0.0;
    g_pos_ = 0.0;
    g_neg_ = 0.0;
    seen_ = 0;
}

// ---------------------------------------------------------------------------
// Evaluation harness.
// ---------------------------------------------------------------------------

double
DetectionEval::meanLatency() const
{
    if (latencies.empty())
        return 0.0;
    double sum = 0.0;
    for (const int l : latencies)
        sum += l;
    return sum / static_cast<double>(latencies.size());
}

int
DetectionEval::maxLatency() const
{
    int m = 0;
    for (const int l : latencies)
        m = std::max(m, l);
    return m;
}

double
DetectionEval::detectionRate() const
{
    return episodes > 0
               ? static_cast<double>(detected) /
                     static_cast<double>(episodes)
               : 1.0;
}

DetectionEval
scoreFlags(const std::string &detector_name,
           const std::vector<bool> &flags,
           const workload::DiurnalLoadModel &load,
           int match_window_epochs)
{
    const int epochs = static_cast<int>(flags.size());

    // Ground-truth episodes: maximal runs of burst epochs.
    std::vector<int> episode_start;
    std::vector<bool> burst(static_cast<std::size_t>(epochs), false);
    for (int e = 0; e < epochs; ++e) {
        burst[static_cast<std::size_t>(e)] = load.burstCount(e) > 0;
        if (burst[static_cast<std::size_t>(e)] &&
            (e == 0 || !burst[static_cast<std::size_t>(e - 1)]))
            episode_start.push_back(e);
    }

    DetectionEval eval;
    eval.detector = detector_name;
    eval.epochs = epochs;
    eval.episodes = static_cast<int>(episode_start.size());

    std::vector<bool> claimed(episode_start.size(), false);
    for (int e = 0; e < epochs; ++e) {
        if (!flags[static_cast<std::size_t>(e)])
            continue;
        ++eval.flags;
        // Credit the earliest unclaimed episode starting within the
        // match window ending at this flag.
        bool credited = false;
        for (std::size_t i = 0; i < episode_start.size(); ++i) {
            const int start = episode_start[i];
            if (claimed[i] || start > e ||
                start < e - match_window_epochs)
                continue;
            claimed[i] = true;
            eval.latencies.push_back(e - start);
            ++eval.detected;
            credited = true;
            break;
        }
        // A flag during a still-burst epoch of an already-claimed
        // episode is a re-detection, not a false alarm.
        if (!credited && !burst[static_cast<std::size_t>(e)])
            ++eval.false_positives;
    }
    eval.missed = eval.episodes - eval.detected;
    return eval;
}

DetectionEval
evaluateDetector(ChangeDetector &detector,
                 const workload::DiurnalLoadModel &load, int epochs,
                 int match_window_epochs)
{
    detector.reset();
    std::vector<bool> flags(static_cast<std::size_t>(epochs), false);
    for (int e = 0; e < epochs; ++e) {
        const double ratio =
            load.realizedQps(e) / std::max(1e-9, load.forecastQps(e));
        flags[static_cast<std::size_t>(e)] = detector.step(ratio);
    }
    return scoreFlags(detector.name(), flags, load, match_window_epochs);
}

} // namespace dri::obs
