#include "obs/slo_monitor.h"

#include <cmath>
#include <stdexcept>

namespace dri::obs {

const char *
toString(AlertTransition t)
{
    switch (t) {
    case AlertTransition::Pending:
        return "pending";
    case AlertTransition::Firing:
        return "firing";
    case AlertTransition::Cancelled:
        return "cancelled";
    case AlertTransition::Resolved:
        return "resolved";
    }
    return "?";
}

double
SloMonitor::Status::budgetConsumed(double budget_fraction) const
{
    const std::uint64_t total = good_total + bad_total;
    if (total == 0 || budget_fraction <= 0.0)
        return 0.0;
    const double allowance =
        budget_fraction * static_cast<double>(total);
    return static_cast<double>(bad_total) / allowance;
}

// ---------------------------------------------------------------------------
// RatioWindow.
// ---------------------------------------------------------------------------

void
SloMonitor::RatioWindow::init(double horizon_s, int bucket_count)
{
    if (horizon_s <= 0.0 || bucket_count <= 0)
        throw std::invalid_argument(
            "SloMonitor: window horizon and buckets must be > 0");
    buckets = bucket_count;
    bucket_width_s = horizon_s / buckets;
    slots.assign(static_cast<std::size_t>(buckets), Slot{});
}

namespace {

std::int64_t
periodAt(double t_s, double width_s)
{
    if (t_s < 0.0)
        t_s = 0.0;
    return static_cast<std::int64_t>(std::floor(t_s / width_s));
}

} // namespace

void
SloMonitor::RatioWindow::record(double t_s, std::uint64_t good,
                                std::uint64_t bad)
{
    const std::int64_t p = periodAt(t_s, bucket_width_s);
    Slot &s = slots[static_cast<std::size_t>(p % buckets)];
    if (s.period != p) {
        s.good = 0;
        s.bad = 0;
        s.period = p;
    }
    s.good += good;
    s.bad += bad;
}

double
SloMonitor::RatioWindow::badFraction(double t_s) const
{
    const std::int64_t now = periodAt(t_s, bucket_width_s);
    std::uint64_t good = 0, bad = 0;
    for (const Slot &s : slots) {
        if (s.period < 0 || s.period > now || s.period <= now - buckets)
            continue;
        good += s.good;
        bad += s.bad;
    }
    const std::uint64_t total = good + bad;
    return total > 0
               ? static_cast<double>(bad) / static_cast<double>(total)
               : 0.0;
}

// ---------------------------------------------------------------------------
// SloMonitor.
// ---------------------------------------------------------------------------

int
SloMonitor::addObjective(const SloObjective &objective)
{
    if (objective.budget_fraction <= 0.0 ||
        objective.budget_fraction >= 1.0)
        throw std::invalid_argument(
            "SloObjective: budget_fraction must be in (0, 1)");
    Tracked t;
    t.obj = objective;
    t.fast.init(objective.fast_horizon_s, objective.buckets);
    t.slow.init(objective.slow_horizon_s, objective.buckets);
    objectives_.push_back(std::move(t));
    return static_cast<int>(objectives_.size()) - 1;
}

const SloObjective &
SloMonitor::objective(int id) const
{
    return objectives_.at(static_cast<std::size_t>(id)).obj;
}

const SloMonitor::Status &
SloMonitor::status(int id) const
{
    return objectives_.at(static_cast<std::size_t>(id)).status;
}

void
SloMonitor::record(int id, double t_s, std::uint64_t good,
                   std::uint64_t bad)
{
    Tracked &t = objectives_.at(static_cast<std::size_t>(id));
    t.fast.record(t_s, good, bad);
    t.slow.record(t_s, good, bad);
    t.status.good_total += good;
    t.status.bad_total += bad;
}

std::vector<AlertEvent>
SloMonitor::evaluate(double t_s)
{
    std::vector<AlertEvent> emitted;
    for (Tracked &t : objectives_) {
        Status &st = t.status;
        st.fast_burn = t.fast.badFraction(t_s) / t.obj.budget_fraction;
        st.slow_burn = t.slow.badFraction(t_s) / t.obj.budget_fraction;

        const bool breach = st.fast_burn >= t.obj.fast_burn_threshold &&
                            st.slow_burn >= t.obj.slow_burn_threshold;
        const double rf = t.obj.resolve_fraction;
        const bool clear =
            st.fast_burn < rf * t.obj.fast_burn_threshold &&
            st.slow_burn < rf * t.obj.slow_burn_threshold;

        const auto emit = [&](AlertTransition tr) {
            AlertEvent ev;
            ev.t_s = t_s;
            ev.objective = t.obj.name;
            ev.transition = tr;
            ev.fast_burn = st.fast_burn;
            ev.slow_burn = st.slow_burn;
            events_.push_back(ev);
            emitted.push_back(ev);
        };

        if (breach) {
            ++st.breach_streak;
            st.clear_streak = 0;
            if (st.state == AlertState::Inactive) {
                st.state = AlertState::Pending;
                emit(AlertTransition::Pending);
            }
            if (st.state == AlertState::Pending &&
                st.breach_streak >= t.obj.pending_ticks) {
                st.state = AlertState::Firing;
                emit(AlertTransition::Firing);
            }
        } else {
            st.breach_streak = 0;
            if (st.state == AlertState::Pending) {
                // Breach gone before the alert matured: cancel.
                st.state = AlertState::Inactive;
                emit(AlertTransition::Cancelled);
            } else if (st.state == AlertState::Firing) {
                if (clear) {
                    ++st.clear_streak;
                    if (st.clear_streak >= t.obj.resolve_ticks) {
                        st.state = AlertState::Inactive;
                        st.clear_streak = 0;
                        emit(AlertTransition::Resolved);
                    }
                } else {
                    // Hysteresis band: neither firing-fresh nor clear —
                    // hold the alert, restart the resolution count.
                    st.clear_streak = 0;
                }
            }
        }
    }
    return emitted;
}

bool
SloMonitor::anyFiring() const
{
    for (const Tracked &t : objectives_)
        if (t.status.state == AlertState::Firing)
            return true;
    return false;
}

int
SloMonitor::transitionCount(AlertTransition tr) const
{
    int n = 0;
    for (const AlertEvent &e : events_)
        n += e.transition == tr ? 1 : 0;
    return n;
}

} // namespace dri::obs
