#include "obs/span.h"

namespace dri::obs {

const char *
spanKindName(SpanKind kind)
{
    switch (kind) {
    case SpanKind::Request: return "request";
    case SpanKind::BatchCoalesce: return "batch_coalesce";
    case SpanKind::QueueWait: return "queue_wait";
    case SpanKind::Deserialize: return "deserialize";
    case SpanKind::NetPhase: return "net_phase";
    case SpanKind::BatchExec: return "batch_exec";
    case SpanKind::DenseBottom: return "dense_bottom";
    case SpanKind::InlineSparse: return "inline_sparse";
    case SpanKind::DenseTop: return "dense_top";
    case SpanKind::ClientSerde: return "client_serde";
    case SpanKind::ResultCacheProbe: return "result_cache_probe";
    case SpanKind::EmbeddedWait: return "embedded_wait";
    case SpanKind::RpcOp: return "rpc_op";
    case SpanKind::RpcAttempt: return "rpc_attempt";
    case SpanKind::WireOut: return "wire_out";
    case SpanKind::RemoteQueue: return "remote_queue";
    case SpanKind::RemoteCompute: return "remote_compute";
    case SpanKind::WireBack: return "wire_back";
    case SpanKind::ResponseDeserde: return "response_deserde";
    case SpanKind::ResponseSerialize: return "response_serialize";
    }
    return "unknown";
}

const char *
pathBucketName(PathBucket bucket)
{
    switch (bucket) {
    case PathBucket::Queue: return "queue";
    case PathBucket::Compute: return "compute";
    case PathBucket::Serde: return "serde";
    case PathBucket::Network: return "network";
    case PathBucket::Wait: return "wait";
    case PathBucket::Other: return "other";
    }
    return "other";
}

PathBucket
bucketOf(SpanKind kind)
{
    switch (kind) {
    case SpanKind::QueueWait:
    case SpanKind::RemoteQueue:
        return PathBucket::Queue;
    case SpanKind::DenseBottom:
    case SpanKind::InlineSparse:
    case SpanKind::DenseTop:
    case SpanKind::RemoteCompute:
    case SpanKind::BatchExec:
    case SpanKind::NetPhase:
        return PathBucket::Compute;
    case SpanKind::Deserialize:
    case SpanKind::ClientSerde:
    case SpanKind::ResponseDeserde:
    case SpanKind::ResponseSerialize:
        return PathBucket::Serde;
    case SpanKind::WireOut:
    case SpanKind::WireBack:
        return PathBucket::Network;
    case SpanKind::BatchCoalesce:
    case SpanKind::EmbeddedWait:
    case SpanKind::RpcOp:
    case SpanKind::RpcAttempt:
        return PathBucket::Wait;
    case SpanKind::Request:
    case SpanKind::ResultCacheProbe:
        return PathBucket::Other;
    }
    return PathBucket::Other;
}

} // namespace dri::obs
