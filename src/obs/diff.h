/**
 * @file
 * Differential critical-path attribution: explain *why* a latency
 * metric moved between two runs, not just that it did.
 *
 * The paper's contribution is per-stage attribution of serving latency;
 * the regression gate (obs/regression_gate.h) detects that an E2E or
 * P99 metric shifted between a committed baseline and a fresh run. This
 * module closes the loop between the two: given both runs' critical
 * paths (or their flattened artifact rows), it produces a stage x shard
 * delta table over the paper's decomposition buckets (Queue / Compute /
 * Serde / Network / Wait / Other), names the stage responsible for the
 * largest share of the shift, and — when histogram exemplars are wired
 * — surfaces the concrete exemplar request pair behind the worst
 * bucket so the investigation starts from two retained traces instead
 * of two aggregates.
 *
 * Two entry layers:
 *
 *  - **In-memory** (diffAttribution): full per-shard resolution from
 *    two runs' criticalPaths() output, with optional EngineProfile
 *    secondaries (per-tag simulator event/wall deltas) and tail
 *    exemplar requests. This is what FleetSim and the tests drive.
 *  - **Artifact** (explainArtifacts): gate-side resolution from two
 *    JSONL artifact rows using the `path_<bucket>_ns` mean-attribution
 *    fields bench_sim_throughput emits (per-shard detail is not in the
 *    artifact; the table collapses to stage rows). This is what
 *    `bench_regression_gate --explain` drives on failure.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/critical_path.h"
#include "obs/regression_gate.h"
#include "sim/engine.h"

namespace dri::obs {

/** One (stage, shard) cell of a run's critical-path attribution. */
struct StageCell
{
    PathBucket bucket = PathBucket::Other;
    std::int16_t shard = kMainShard;
    sim::Duration total_ns = 0;  //!< summed attributed time
    std::uint64_t segments = 0;  //!< path segments contributing
};

/** Per-run stage x shard attribution table (deterministic order). */
struct StageTable
{
    std::uint64_t requests = 0;
    sim::Duration total_ns = 0; //!< summed path totals (== summed e2e)
    std::vector<StageCell> cells; //!< (bucket, shard) ascending

    const StageCell *find(PathBucket bucket, std::int16_t shard) const;
};

/** Build the attribution table from one run's critical paths. */
StageTable buildStageTable(const std::vector<CriticalPath> &paths);

/** One row of the differential table. */
struct StageDelta
{
    PathBucket bucket = PathBucket::Other;
    /** kMainShard rows cover main-shard time; >= 0 rows are per-shard.
     *  Artifact-layer rows use shard == kAllShards (no shard detail). */
    std::int16_t shard = kMainShard;
    double base_ns = 0.0; //!< per-request mean attribution, baseline
    double cur_ns = 0.0;  //!< per-request mean attribution, current

    double delta() const { return cur_ns - base_ns; }
};

/** Shard value for artifact-layer rows (no per-shard detail). */
constexpr std::int16_t kAllShards = -2;

/** Optional per-tag simulator-profile secondary row. */
struct ProfileDelta
{
    std::string tag;
    double base_events = 0.0;
    double cur_events = 0.0;
};

/** The explanation: who moved, by how much, and the trace pair. */
struct AttributionReport
{
    /** Rows sorted by |delta| descending (ties: bucket then shard). */
    std::vector<StageDelta> rows;
    /** Stage with the largest aggregate positive delta. */
    PathBucket blamed = PathBucket::Other;
    /** blamed stage's share of the total positive delta (0..1). */
    double blamed_share = 0.0;
    /** Per-request mean E2E in each run (ns). */
    double base_e2e_ns = 0.0;
    double cur_e2e_ns = 0.0;
    /** Simulator per-tag secondaries (empty without profiles). */
    std::vector<ProfileDelta> profile_rows;
    /** Exemplar request pair for the worst bucket (0 = unknown). */
    std::uint64_t base_exemplar_request = 0;
    std::uint64_t cur_exemplar_request = 0;
    /** True when attribution inputs were actually present. */
    bool has_attribution = false;

    /** One-line verdict ("serde +31.2us/req (78% of +40.1us e2e)"). */
    std::string headline() const;
};

/** Inputs for one side of the in-memory diff. */
struct RunAttribution
{
    const std::vector<CriticalPath> *paths = nullptr; //!< required
    const sim::EngineProfile *profile = nullptr;      //!< optional
    /** Tail exemplar request id (e.g. Histogram::tailExemplar). */
    std::uint64_t tail_exemplar_request = 0;
};

/** Full-resolution differential attribution between two runs. */
AttributionReport diffAttribution(const RunAttribution &base,
                                  const RunAttribution &current);

/**
 * Gate-side differential attribution from two matched artifact rows,
 * using `path_<bucket>_ns` (per-request mean attribution) and
 * `tail_exemplar_request` fields when present. Rows lacking path
 * fields produce has_attribution == false (the gate then reports that
 * the artifact carries no attribution rather than guessing).
 */
AttributionReport explainArtifacts(const ArtifactRow &base,
                                   const ArtifactRow &current);

/**
 * Human-readable attribution report: the headline, the delta table
 * (largest movers first), profile secondaries, and the exemplar pair.
 */
void writeAttributionReport(std::ostream &os,
                            const AttributionReport &report);

} // namespace dri::obs
