#include "obs/diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace dri::obs {

const StageCell *
StageTable::find(PathBucket bucket, std::int16_t shard) const
{
    for (const StageCell &c : cells)
        if (c.bucket == bucket && c.shard == shard)
            return &c;
    return nullptr;
}

StageTable
buildStageTable(const std::vector<CriticalPath> &paths)
{
    StageTable table;
    for (const CriticalPath &p : paths) {
        ++table.requests;
        table.total_ns += p.total;
        for (const PathSegment &seg : p.segments) {
            StageCell *cell = nullptr;
            for (StageCell &c : table.cells)
                if (c.bucket == seg.bucket && c.shard == seg.shard) {
                    cell = &c;
                    break;
                }
            if (cell == nullptr) {
                StageCell fresh;
                fresh.bucket = seg.bucket;
                fresh.shard = seg.shard;
                table.cells.push_back(fresh);
                cell = &table.cells.back();
            }
            cell->total_ns += seg.duration();
            ++cell->segments;
        }
    }
    std::sort(table.cells.begin(), table.cells.end(),
              [](const StageCell &a, const StageCell &b) {
                  if (a.bucket != b.bucket)
                      return a.bucket < b.bucket;
                  return a.shard < b.shard;
              });
    return table;
}

namespace {

double
perRequest(sim::Duration total, std::uint64_t requests)
{
    return requests > 0 ? static_cast<double>(total) /
                              static_cast<double>(requests)
                        : 0.0;
}

/** Finalize rows -> sorted table + blamed stage + share. */
void
finishReport(AttributionReport &report)
{
    std::sort(report.rows.begin(), report.rows.end(),
              [](const StageDelta &a, const StageDelta &b) {
                  const double da = std::abs(a.delta());
                  const double db = std::abs(b.delta());
                  if (da != db)
                      return da > db;
                  if (a.bucket != b.bucket)
                      return a.bucket < b.bucket;
                  return a.shard < b.shard;
              });
    // Blame by aggregate per-bucket delta so a stage spread thin over
    // many shards still beats a single noisy cell.
    double bucket_delta[kPathBucketCount] = {};
    for (const StageDelta &row : report.rows)
        bucket_delta[static_cast<std::size_t>(row.bucket)] += row.delta();
    double worst = 0.0;
    double positive_total = 0.0;
    for (std::size_t b = 0; b < kPathBucketCount; ++b) {
        if (bucket_delta[b] > 0.0)
            positive_total += bucket_delta[b];
        if (bucket_delta[b] > worst) {
            worst = bucket_delta[b];
            report.blamed = static_cast<PathBucket>(b);
        }
    }
    report.blamed_share =
        positive_total > 0.0 ? worst / positive_total : 0.0;
}

std::string
formatNs(double ns)
{
    char buf[64];
    const double a = std::abs(ns);
    if (a >= 1e6)
        std::snprintf(buf, sizeof buf, "%+.2fms", ns * 1e-6);
    else if (a >= 1e3)
        std::snprintf(buf, sizeof buf, "%+.1fus", ns * 1e-3);
    else
        std::snprintf(buf, sizeof buf, "%+.0fns", ns);
    return buf;
}

} // namespace

std::string
AttributionReport::headline() const
{
    if (!has_attribution)
        return "no attribution data in inputs";
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%s %s/req (%d%% of %s e2e shift)",
                  pathBucketName(blamed),
                  formatNs([&] {
                      double d = 0.0;
                      for (const StageDelta &row : rows)
                          if (row.bucket == blamed)
                              d += row.delta();
                      return d;
                  }())
                      .c_str(),
                  static_cast<int>(blamed_share * 100.0 + 0.5),
                  formatNs(cur_e2e_ns - base_e2e_ns).c_str());
    return buf;
}

AttributionReport
diffAttribution(const RunAttribution &base, const RunAttribution &current)
{
    AttributionReport report;
    if (base.paths == nullptr || current.paths == nullptr)
        return report;
    const StageTable bt = buildStageTable(*base.paths);
    const StageTable ct = buildStageTable(*current.paths);
    if (bt.requests == 0 || ct.requests == 0)
        return report;
    report.has_attribution = true;
    report.base_e2e_ns = perRequest(bt.total_ns, bt.requests);
    report.cur_e2e_ns = perRequest(ct.total_ns, ct.requests);

    // Union of (bucket, shard) cells from both runs.
    for (const StageCell &c : bt.cells) {
        StageDelta row;
        row.bucket = c.bucket;
        row.shard = c.shard;
        row.base_ns = perRequest(c.total_ns, bt.requests);
        if (const StageCell *cc = ct.find(c.bucket, c.shard))
            row.cur_ns = perRequest(cc->total_ns, ct.requests);
        report.rows.push_back(row);
    }
    for (const StageCell &c : ct.cells) {
        if (bt.find(c.bucket, c.shard) != nullptr)
            continue;
        StageDelta row;
        row.bucket = c.bucket;
        row.shard = c.shard;
        row.cur_ns = perRequest(c.total_ns, ct.requests);
        report.rows.push_back(row);
    }
    finishReport(report);

    if (base.profile != nullptr && current.profile != nullptr) {
        for (std::size_t t = 0; t < sim::kEvTagCount; ++t) {
            ProfileDelta pd;
            pd.tag = sim::eventTagName(static_cast<sim::EventTag>(t));
            pd.base_events =
                static_cast<double>(base.profile->tag_events[t]);
            pd.cur_events =
                static_cast<double>(current.profile->tag_events[t]);
            if (pd.base_events != 0.0 || pd.cur_events != 0.0)
                report.profile_rows.push_back(std::move(pd));
        }
    }
    report.base_exemplar_request = base.tail_exemplar_request;
    report.cur_exemplar_request = current.tail_exemplar_request;
    return report;
}

AttributionReport
explainArtifacts(const ArtifactRow &base, const ArtifactRow &current)
{
    AttributionReport report;
    bool any = false;
    for (std::size_t b = 0; b < kPathBucketCount; ++b) {
        const auto bucket = static_cast<PathBucket>(b);
        const std::string key =
            std::string("path_") + pathBucketName(bucket) + "_ns";
        const std::string *bv = base.find(key);
        const std::string *cv = current.find(key);
        if (bv == nullptr && cv == nullptr)
            continue;
        any = true;
        StageDelta row;
        row.bucket = bucket;
        row.shard = kAllShards;
        row.base_ns = bv != nullptr ? std::atof(bv->c_str()) : 0.0;
        row.cur_ns = cv != nullptr ? std::atof(cv->c_str()) : 0.0;
        report.rows.push_back(row);
    }
    if (!any)
        return report;
    report.has_attribution = true;
    for (const StageDelta &row : report.rows) {
        report.base_e2e_ns += row.base_ns;
        report.cur_e2e_ns += row.cur_ns;
    }
    finishReport(report);
    if (const std::string *v = base.find("tail_exemplar_request"))
        report.base_exemplar_request =
            static_cast<std::uint64_t>(std::atof(v->c_str()));
    if (const std::string *v = current.find("tail_exemplar_request"))
        report.cur_exemplar_request =
            static_cast<std::uint64_t>(std::atof(v->c_str()));
    return report;
}

void
writeAttributionReport(std::ostream &os, const AttributionReport &report)
{
    os << "attribution: " << report.headline() << "\n";
    if (!report.has_attribution)
        return;
    os << "  e2e/req: " << report.base_e2e_ns * 1e-3 << "us -> "
       << report.cur_e2e_ns * 1e-3 << "us\n";
    os << "  stage x shard deltas (largest movers first):\n";
    for (const StageDelta &row : report.rows) {
        os << "    " << pathBucketName(row.bucket);
        if (row.shard == kAllShards)
            os << " [all]";
        else if (row.shard == kMainShard)
            os << " [main]";
        else
            os << " [shard " << row.shard << "]";
        os << ": " << row.base_ns * 1e-3 << "us -> " << row.cur_ns * 1e-3
           << "us (" << formatNs(row.delta()) << "/req)\n";
    }
    if (!report.profile_rows.empty()) {
        os << "  simulator event-tag secondaries:\n";
        for (const ProfileDelta &pd : report.profile_rows)
            os << "    " << pd.tag << ": " << pd.base_events << " -> "
               << pd.cur_events << " events\n";
    }
    if (report.base_exemplar_request != 0 ||
        report.cur_exemplar_request != 0)
        os << "  exemplar trace pair: baseline request "
           << report.base_exemplar_request << " vs current request "
           << report.cur_exemplar_request << "\n";
}

} // namespace dri::obs
