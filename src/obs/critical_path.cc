#include "obs/critical_path.h"

#include <algorithm>

namespace dri::obs {

PathBucket
CriticalPath::dominant() const
{
    std::size_t best = static_cast<std::size_t>(PathBucket::Other);
    for (std::size_t b = 0; b < kPathBucketCount; ++b)
        if (bucket_ns[b] > bucket_ns[best])
            best = b;
    return static_cast<PathBucket>(best);
}

namespace {

/**
 * Walk one subtree rooted at @p node. The frontier `cur` starts at the
 * node's end and retreats toward its begin; each step either descends
 * into the last-finishing eligible child (the one whose end gates the
 * frontier) or attributes the remaining gap to the node itself.
 */
void
walkSpan(const std::vector<SpanRecord> &spans,
         const std::vector<std::vector<SpanId>> &children,
         const SpanRecord &node, CriticalPath *out)
{
    sim::SimTime cur = node.end;

    // Children that can gate completion: closed, not cancelled/loser,
    // ending within the node, sorted by end descending.
    std::vector<const SpanRecord *> kids;
    for (const SpanId cid : children[node.id - 1]) {
        const SpanRecord &c = spans[cid - 1];
        if (c.open() || c.cancelled())
            continue;
        if (c.end > node.end || c.begin < node.begin)
            continue; // off-path debris (shouldn't happen for clean kids)
        kids.push_back(&c);
    }
    std::sort(kids.begin(), kids.end(),
              [](const SpanRecord *a, const SpanRecord *b) {
                  if (a->end != b->end)
                      return a->end > b->end;
                  return a->begin > b->begin;
              });

    for (const SpanRecord *c : kids) {
        if (c->end > cur)
            continue; // finished after the frontier: not on the path
        if (c->end < cur) {
            // Gap between this child's completion and the frontier is
            // the node's own time.
            out->segments.push_back({node.kind, bucketOf(node.kind),
                                     node.shard, c->end, cur});
        }
        walkSpan(spans, children, *c, out);
        cur = c->begin;
        if (cur <= node.begin)
            break;
    }
    if (cur > node.begin)
        out->segments.push_back(
            {node.kind, bucketOf(node.kind), node.shard, node.begin, cur});
}

} // namespace

std::vector<CriticalPath>
criticalPaths(const std::vector<SpanRecord> &spans)
{
    std::vector<std::vector<SpanId>> children(spans.size());
    for (const SpanRecord &s : spans)
        if (s.parent != kNoSpan && s.parent <= spans.size())
            children[s.parent - 1].push_back(s.id);

    std::vector<CriticalPath> paths;
    for (const SpanRecord &s : spans) {
        if (s.kind != SpanKind::Request || s.parent != kNoSpan)
            continue;
        if (s.open() || (s.flags & kFlagShed) != 0)
            continue;
        CriticalPath cp;
        cp.request_id = s.request_id;
        cp.total = s.duration();
        walkSpan(spans, children, s, &cp);
        std::sort(cp.segments.begin(), cp.segments.end(),
                  [](const PathSegment &a, const PathSegment &b) {
                      return a.begin < b.begin;
                  });
        for (const PathSegment &seg : cp.segments)
            cp.bucket_ns[static_cast<std::size_t>(seg.bucket)] +=
                seg.duration();
        paths.push_back(std::move(cp));
    }
    return paths;
}

PathProfile
profilePaths(const std::vector<CriticalPath> &paths)
{
    PathProfile prof;
    for (const CriticalPath &p : paths) {
        ++prof.requests;
        prof.total_ns += p.total;
        for (std::size_t b = 0; b < kPathBucketCount; ++b)
            prof.bucket_ns[b] += p.bucket_ns[b];
        ++prof.dominant_count[static_cast<std::size_t>(p.dominant())];
    }
    return prof;
}

ConservationReport
checkConservation(const std::vector<SpanRecord> &spans)
{
    ConservationReport rep;
    rep.total_spans = spans.size();
    for (const SpanRecord &s : spans) {
        if (s.open()) {
            ++rep.open_spans;
            continue;
        }
        if (s.cancelled())
            ++rep.cancelled_spans;
        if (s.kind == SpanKind::Request && s.parent == kNoSpan) {
            ++rep.root_spans;
            continue;
        }
        if (s.parent == kNoSpan || s.parent > spans.size()) {
            ++rep.nesting_violations; // non-root span must have a parent
            continue;
        }
        const SpanRecord &p = spans[s.parent - 1];
        if (s.begin < p.begin) {
            ++rep.nesting_violations;
            continue;
        }
        // Cancelled/loser spans may end after their parent (race debris
        // draining after the request completes); everything else must
        // be fully contained.
        if (!s.cancelled() && !p.open() && s.end > p.end)
            ++rep.nesting_violations;
    }
    return rep;
}

} // namespace dri::obs
