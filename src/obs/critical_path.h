/**
 * @file
 * Per-request critical-path analysis + span-conservation checking.
 *
 * The paper decomposes tail latency into queueing, compute, network and
 * serde buckets from aggregate telemetry; with a span *tree* per request
 * we can do better and attribute each request's end-to-end latency to
 * the chain of spans that actually gated completion. The algorithm is
 * the classic last-finisher walk: starting from the root, repeatedly
 * descend into the child whose end time is the latest one not after the
 * current frontier, attribute the uncovered gap to the parent, and move
 * the frontier to that child's begin. Cancelled and hedge-loser spans
 * are skipped — they are debris of a decided race, not the path. The
 * produced segments partition [root.begin, root.end] exactly, so the
 * bucket totals sum to the request's e2e latency by construction (a
 * property the tests assert).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "obs/span.h"

namespace dri::obs {

/** One segment of a request's critical path. */
struct PathSegment
{
    SpanKind kind = SpanKind::Request;
    PathBucket bucket = PathBucket::Other;
    std::int16_t shard = kMainShard;
    sim::SimTime begin = 0;
    sim::SimTime end = 0;

    sim::Duration duration() const { return end - begin; }
};

/** Critical path of one request. */
struct CriticalPath
{
    std::uint64_t request_id = 0;
    sim::Duration total = 0;                 //!< == root span duration
    sim::Duration bucket_ns[kPathBucketCount] = {};
    std::vector<PathSegment> segments;       //!< begin-time order

    /** Bucket with the largest share of @ref total. */
    PathBucket dominant() const;
};

/**
 * Compute critical paths for every closed, non-shed root span in
 * @p spans. Spans must come from one SpanTracer (ids are tracer-local).
 */
std::vector<CriticalPath> criticalPaths(const std::vector<SpanRecord> &spans);

/** Aggregate bucket attribution across a set of critical paths. */
struct PathProfile
{
    std::uint64_t requests = 0;
    sim::Duration total_ns = 0;
    sim::Duration bucket_ns[kPathBucketCount] = {};
    std::uint64_t dominant_count[kPathBucketCount] = {};

    double bucketShare(PathBucket b) const
    {
        return total_ns > 0 ? static_cast<double>(
                                  bucket_ns[static_cast<std::size_t>(b)]) /
                                  static_cast<double>(total_ns)
                            : 0.0;
    }
};

PathProfile profilePaths(const std::vector<CriticalPath> &paths);

/**
 * Structural invariants over a finished trace. `ok()` is the
 * self-check trace_explorer and the tests gate on:
 *  - every injected request closed exactly one root span;
 *  - no span is still open;
 *  - every non-cancelled child nests inside its parent in sim-time
 *    (cancelled/loser spans may outlive the parent — see SpanFlags).
 */
struct ConservationReport
{
    std::uint64_t total_spans = 0;
    std::uint64_t root_spans = 0;
    std::uint64_t open_spans = 0;
    std::uint64_t nesting_violations = 0;
    std::uint64_t cancelled_spans = 0;

    bool ok(std::uint64_t expected_roots) const
    {
        return root_spans == expected_roots && open_spans == 0 &&
               nesting_violations == 0;
    }
};

ConservationReport checkConservation(const std::vector<SpanRecord> &spans);

} // namespace dri::obs
