#include "obs/span_tracer.h"

namespace dri::obs {

SpanRecord *
SpanTracer::get(SpanId id)
{
    if (id == kNoSpan || id > spans_.size())
        return nullptr;
    return &spans_[id - 1];
}

SpanId
SpanTracer::begin(std::uint64_t request_id, SpanKind kind, SpanId parent,
                  sim::SimTime at, int shard, int net, int batch,
                  std::uint8_t flags)
{
    if (!enabled_)
        return kNoSpan;
    SpanRecord rec;
    rec.request_id = request_id;
    rec.id = static_cast<SpanId>(spans_.size() + 1);
    rec.parent = parent;
    rec.kind = kind;
    rec.flags = flags;
    rec.shard = static_cast<std::int16_t>(shard);
    rec.net = static_cast<std::int16_t>(net);
    rec.batch = static_cast<std::int16_t>(batch);
    rec.begin = at;
    spans_.push_back(rec);
    ++allocations_;
    ++open_;
    return rec.id;
}

void
SpanTracer::end(SpanId id, sim::SimTime at, std::uint8_t add_flags)
{
    SpanRecord *rec = get(id);
    if (rec == nullptr || !rec->open())
        return;
    rec->end = at;
    rec->flags |= add_flags;
    --open_;
}

SpanId
SpanTracer::record(std::uint64_t request_id, SpanKind kind, SpanId parent,
                   sim::SimTime begin, sim::SimTime end, int shard, int net,
                   int batch, std::uint8_t flags)
{
    const SpanId id =
        this->begin(request_id, kind, parent, begin, shard, net, batch, flags);
    this->end(id, end);
    return id;
}

void
SpanTracer::addFlags(SpanId id, std::uint8_t flags)
{
    SpanRecord *rec = get(id);
    if (rec != nullptr)
        rec->flags |= flags;
}

void
SpanTracer::clear()
{
    spans_.clear();
    open_ = 0;
    allocations_ = 0;
}

} // namespace dri::obs
