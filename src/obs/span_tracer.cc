#include "obs/span_tracer.h"

namespace dri::obs {

SpanRecord *
SpanTracer::get(SpanId id)
{
    if (id == kNoSpan || id > spans_.size())
        return nullptr;
    return &spans_[id - 1];
}

SpanRecord *
SpanTracer::resolveSampled(SpanId id, TraceSampler::Tree **tree_out)
{
    *tree_out = nullptr;
    if (id == kNoSpan)
        return nullptr;
    const auto slot =
        static_cast<std::uint32_t>((id >> kLocalBits) & kSlotMask);
    const auto generation =
        static_cast<std::uint32_t>(id >> (kLocalBits + kSlotBits));
    TraceSampler::Tree *tree = sampler_->treeAt(slot);
    if (tree == nullptr || tree->generation != generation) {
        // The tree this handle pointed into was sealed and its slot
        // recycled — this is the late hedge/cancel debris path.
        sampler_->noteStaleSpan();
        return nullptr;
    }
    const std::size_t local = static_cast<std::size_t>(id & kLocalMask);
    if (local == 0 || local > tree->spans.size())
        return nullptr;
    *tree_out = tree;
    return &tree->spans[local - 1];
}

SpanId
SpanTracer::beginSampled(std::uint64_t request_id, SpanKind kind,
                         SpanId parent, sim::SimTime at, int shard, int net,
                         int batch, std::uint8_t flags)
{
    TraceSampler::Tree *tree;
    SpanId local_parent = kNoSpan;
    if (parent == kNoSpan) {
        // Root span: open a fresh tree for this request.
        tree = sampler_->acquireTree(request_id);
    } else {
        SpanRecord *parent_rec = resolveSampled(parent, &tree);
        if (parent_rec == nullptr)
            return kNoSpan; // stale tree: drop the whole debris subtree
        local_parent = parent_rec->id;
    }
    if (tree->spans.size() >= kLocalMask)
        return kNoSpan; // 1M spans in one request tree: never in practice

    SpanRecord rec;
    rec.request_id = request_id;
    rec.id = static_cast<SpanId>(tree->spans.size() + 1);
    rec.parent = local_parent;
    rec.kind = kind;
    rec.flags = flags;
    rec.shard = static_cast<std::int16_t>(shard);
    rec.net = static_cast<std::int16_t>(net);
    rec.batch = static_cast<std::int16_t>(batch);
    rec.begin = at;
    tree->spans.push_back(rec);
    ++tree->open;
    ++allocations_;
    ++open_;
    return encode(tree->generation, tree->slot, rec.id);
}

void
SpanTracer::endSampled(SpanId id, sim::SimTime at, std::uint8_t add_flags)
{
    TraceSampler::Tree *tree;
    SpanRecord *rec = resolveSampled(id, &tree);
    if (rec == nullptr || !rec->open())
        return;
    rec->end = at;
    rec->flags |= add_flags;
    --tree->open;
    --open_;
    if (rec->kind == SpanKind::Request && rec->parent == kNoSpan) {
        sampler_->decide(tree, at);
        last_root_ = tree->keep_class == KeepClass::Recycled
                         ? RootDecision::Dropped
                         : RootDecision::Kept;
    }
    // Seal once decided AND the last span (possibly post-root debris)
    // has closed; until then the tree keeps accepting closes.
    if (tree->decided && tree->open == 0)
        sampler_->seal(tree);
}

SpanId
SpanTracer::begin(std::uint64_t request_id, SpanKind kind, SpanId parent,
                  sim::SimTime at, int shard, int net, int batch,
                  std::uint8_t flags)
{
    if (!enabled_)
        return kNoSpan;
    if (sampler_ != nullptr)
        return beginSampled(request_id, kind, parent, at, shard, net, batch,
                            flags);
    SpanRecord rec;
    rec.request_id = request_id;
    rec.id = static_cast<SpanId>(spans_.size() + 1);
    rec.parent = parent;
    rec.kind = kind;
    rec.flags = flags;
    rec.shard = static_cast<std::int16_t>(shard);
    rec.net = static_cast<std::int16_t>(net);
    rec.batch = static_cast<std::int16_t>(batch);
    rec.begin = at;
    spans_.push_back(rec);
    ++allocations_;
    ++open_;
    return rec.id;
}

void
SpanTracer::end(SpanId id, sim::SimTime at, std::uint8_t add_flags)
{
    if (sampler_ != nullptr) {
        endSampled(id, at, add_flags);
        return;
    }
    SpanRecord *rec = get(id);
    if (rec == nullptr || !rec->open())
        return;
    rec->end = at;
    rec->flags |= add_flags;
    --open_;
    if (rec->kind == SpanKind::Request && rec->parent == kNoSpan)
        last_root_ = RootDecision::Kept; // flat mode retains everything
}

SpanId
SpanTracer::record(std::uint64_t request_id, SpanKind kind, SpanId parent,
                   sim::SimTime begin, sim::SimTime end, int shard, int net,
                   int batch, std::uint8_t flags)
{
    const SpanId id =
        this->begin(request_id, kind, parent, begin, shard, net, batch, flags);
    this->end(id, end);
    return id;
}

void
SpanTracer::addFlags(SpanId id, std::uint8_t flags)
{
    if (sampler_ != nullptr) {
        TraceSampler::Tree *tree;
        SpanRecord *rec = resolveSampled(id, &tree);
        if (rec != nullptr)
            rec->flags |= flags;
        return;
    }
    SpanRecord *rec = get(id);
    if (rec != nullptr)
        rec->flags |= flags;
}

void
SpanTracer::clear()
{
    spans_.clear();
    open_ = 0;
    allocations_ = 0;
    last_root_ = RootDecision::None;
}

} // namespace dri::obs
