/**
 * @file
 * Model partitioner: rewrites a singular model into the distributed form of
 * Fig. 2b under a sharding plan, mirroring the paper's custom partitioning
 * tool (Section III-C): group embedding tables and their operators by
 * shard, insert RPC operators into the main net, and generate new nets for
 * each sparse shard.
 *
 * Guarantees the paper's serving constraints: every sparse-shard net is
 * stateless (depends only on request inputs) and the shard graph is
 * acyclic (main -> sparse only).
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/sharding_plan.h"
#include "graph/net.h"
#include "model/dlrm_builder.h"

namespace dri::core {

/** Name of the net invoked on a sparse shard for one original net. */
std::string shardNetName(int shard_id, int net_id);

/** Blob name of one row-split piece of a table's indices / output. */
std::string splitIdsBlobName(const model::TableSpec &table, int piece);
std::string splitEmbBlobName(const model::TableSpec &table, int piece);

/** The partitioned model. */
struct DistributedModel
{
    const model::BuiltModel *base = nullptr;
    const ShardingPlan *plan = nullptr;

    /** Rewritten main-shard nets, in execution order. */
    std::vector<graph::NetDef> main_nets;

    /** Per sparse shard: its generated nets (one per original net that has
     *  tables there), keyed by shard id. */
    std::map<int, std::vector<graph::NetDef>> shard_nets;

    /** Find a shard net by name; nullptr if absent. */
    const graph::NetDef *findShardNet(int shard_id,
                                      const std::string &name) const;
};

/**
 * Partition `built` under `plan`. A singular plan yields main nets that are
 * clones of the original nets and no shard nets.
 */
DistributedModel partitionModel(const model::BuiltModel &built,
                                const ShardingPlan &plan);

} // namespace dri::core
