#include "core/local_executor.h"

#include <cassert>

namespace dri::core {

LocalRemoteExecutor::LocalRemoteExecutor(const DistributedModel &dm) : dm_(dm)
{
    assert(dm.base && dm.base->spec);
    // Register tables into each shard workspace. Registering all tables is
    // harmless (shared pointers) and keeps the executor independent of the
    // plan's placement details; shard nets only reference their own tables.
    for (const auto &kv : dm.shard_nets) {
        graph::Workspace &ws = shard_ws_[kv.first];
        const auto &spec = *dm.base->spec;
        for (std::size_t i = 0; i < dm.base->tables.size(); ++i)
            ws.addTable(spec.tables[i].name, dm.base->tables[i]);
    }
}

void
LocalRemoteExecutor::beginCall(int shard_id, const std::string &remote_net,
                               const std::string &handle,
                               graph::Workspace &ws,
                               const std::vector<std::string> &inputs,
                               const std::vector<std::string> &outputs)
{
    (void)handle;
    const graph::NetDef *net = dm_.findShardNet(shard_id, remote_net);
    assert(net && "unknown shard net");
    auto ws_it = shard_ws_.find(shard_id);
    assert(ws_it != shard_ws_.end());
    graph::Workspace &remote_ws = ws_it->second;

    // Serialize: copy request blobs into the shard workspace. Shards are
    // stateless between calls apart from their immutable tables.
    for (const auto &name : inputs)
        remote_ws.setBlob(name, ws.blob(name));

    graph::Executor executor(nullptr);
    executor.run(*net, remote_ws);

    // Deserialize: copy response blobs back. Synchronous completion means
    // wait() is a no-op.
    for (const auto &name : outputs)
        ws.setBlob(name, remote_ws.blob(name));
    ++calls_;
}

void
LocalRemoteExecutor::wait(const std::string &handle)
{
    (void)handle;
}

} // namespace dri::core
