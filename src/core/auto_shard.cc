#include "core/auto_shard.h"

#include <algorithm>
#include <cassert>

namespace dri::core {

namespace {

/** Candidate plans honoring the paper's per-model restrictions. */
std::vector<ShardingPlan>
candidatePlans(const model::ModelSpec &spec,
               const std::vector<double> &pooling,
               const AutoShardConstraints &constraints)
{
    std::vector<ShardingPlan> plans;
    plans.push_back(makeOneShard(spec));
    // A model whose largest table exceeds the per-shard capacity target
    // cannot be balanced whole-table-wise; only NSBP's row splitting
    // applies (the paper's DRM3 restriction, Section V-A).
    const double shard_target =
        static_cast<double>(spec.totalCapacityBytes()) /
        static_cast<double>(std::max(1, constraints.max_shards));
    const bool huge_tables =
        static_cast<double>(spec.largestTableBytes()) > shard_target ||
        (constraints.shard_memory_limit_bytes > 0 &&
         spec.largestTableBytes() > constraints.shard_memory_limit_bytes);
    for (int n = 2; n <= constraints.max_shards; ++n) {
        // Huge-table models (DRM3) can only be sharded with NSBP
        // (Section V-A: "existing technical challenges of sharding huge
        // tables" restrict the other strategies).
        if (!huge_tables) {
            plans.push_back(makeCapacityBalanced(spec, n));
            plans.push_back(makeLoadBalanced(spec, n, pooling));
        }
        plans.push_back(
            makeNsbp(spec, n, constraints.shard_memory_limit_bytes));
    }
    return plans;
}

bool
memoryFeasible(const model::ModelSpec &spec, const ShardingPlan &plan,
               std::int64_t limit)
{
    if (limit <= 0)
        return true;
    for (int s = 0; s < plan.numShards(); ++s)
        if (plan.capacityBytes(spec, s) > static_cast<double>(limit))
            return false;
    return true;
}

} // namespace

AutoShardResult
autoShard(const model::ModelSpec &spec,
          const std::vector<workload::Request> &requests,
          const std::vector<double> &pooling,
          const AutoShardConstraints &constraints,
          const ServingConfig &config)
{
    assert(!requests.empty());
    AutoShardResult result;

    // Baseline for overhead computation.
    ServingSimulation base_sim(spec, makeSingular(spec), config);
    const auto base_stats = base_sim.replaySerial(requests);

    for (auto &plan : candidatePlans(spec, pooling, constraints)) {
        CandidateScore score;
        score.memory_feasible = memoryFeasible(
            spec, plan, constraints.shard_memory_limit_bytes);
        if (score.memory_feasible) {
            ServingSimulation sim(spec, plan, config);
            const auto stats = sim.replaySerial(requests);
            score.overhead =
                computeOverhead(plan.label(), base_stats, stats);
            score.p99_ms = latencyQuantiles(stats).p99_ms;
            score.cpu_p50_ms = cpuQuantiles(stats).p50_ms;
            score.meets_compute_budget =
                score.overhead.compute_overhead[0] <=
                constraints.max_compute_overhead;
            score.meets_sla = constraints.sla_p99_ms <= 0.0 ||
                              score.p99_ms <= constraints.sla_p99_ms;
        }
        score.plan = plan;
        result.considered.push_back(std::move(score));
    }

    // Primary objective: lowest P99 overhead among fully conforming plans.
    const CandidateScore *best = nullptr;
    for (const auto &c : result.considered) {
        if (!c.memory_feasible || !c.meets_compute_budget || !c.meets_sla)
            continue;
        if (!best ||
            c.overhead.latency_overhead[2] <
                best->overhead.latency_overhead[2])
            best = &c;
    }
    // Fallback: lowest compute overhead among memory-feasible plans.
    if (!best) {
        for (const auto &c : result.considered) {
            if (!c.memory_feasible)
                continue;
            if (!best ||
                c.overhead.compute_overhead[0] <
                    best->overhead.compute_overhead[0])
                best = &c;
        }
    }
    if (best) {
        result.found = true;
        result.best = best->plan;
        result.best_score = *best;
    }
    return result;
}

} // namespace dri::core
