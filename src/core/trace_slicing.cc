#include "core/trace_slicing.h"

#include <algorithm>
#include <cmath>

namespace dri::core {

std::vector<workload::AccessTrace>
sliceTraceByShard(const ShardingPlan &plan,
                  const workload::AccessTrace &trace)
{
    const std::size_t n_slices =
        plan.isSingular() ? 1
                          : static_cast<std::size_t>(plan.numShards());
    std::vector<workload::AccessTrace> slices(n_slices);
    const int n_tables =
        static_cast<int>(plan.isSingular() ? 0
                                           : plan.assignments().size());

    for (const auto &rec : trace.records()) {
        if (plan.isSingular()) {
            slices[0].add(rec);
            continue;
        }
        if (rec.table_id < 0 || rec.table_id >= n_tables)
            continue; // trace rows for tables this plan does not place
        const auto &asg = plan.assignmentFor(rec.table_id);
        int shard = asg.shards[0];
        if (asg.isSplit()) {
            const auto ways = static_cast<std::int64_t>(asg.ways());
            const std::int64_t piece =
                ((rec.row % ways) + ways) % ways; // row ids are >= 0
            shard = asg.shards[static_cast<std::size_t>(piece)];
        }
        slices[static_cast<std::size_t>(shard)].add(rec);
    }
    return slices;
}

double
ShardCacheModels::aggregateHitRate() const
{
    std::int64_t accesses = 0, hits = 0;
    for (const auto &r : results) {
        accesses += r.total.accesses;
        hits += r.total.hits;
    }
    return accesses > 0
               ? static_cast<double>(hits) / static_cast<double>(accesses)
               : 0.0;
}

ShardCacheModels
buildShardCacheModels(const model::ModelSpec &spec,
                      const ShardingPlan &plan,
                      const workload::AccessTrace &trace,
                      const ShardCacheOptions &options)
{
    ShardCacheModels out;
    const auto slices = sliceTraceByShard(plan, trace);
    out.models.reserve(slices.size());
    out.results.reserve(slices.size());
    out.slice_universe_bytes.reserve(slices.size());

    for (const auto &slice : slices) {
        const std::int64_t universe =
            workload::traceFootprint(spec, slice).universe_bytes;
        std::int64_t capacity = options.capacity_bytes_per_shard;
        if (capacity <= 0)
            capacity = static_cast<std::int64_t>(std::llround(
                options.capacity_fraction * static_cast<double>(universe)));

        cache::TieredCacheConfig cfg;
        cfg.policy = options.policy;
        cfg.capacity_bytes = capacity;
        cfg.warmup_fraction = options.warmup_fraction;
        cfg.admission = options.admission;
        cfg.tinylfu = options.tinylfu;
        cache::TieredCacheSim sim(spec, cfg);
        out.results.push_back(sim.replay(slice));
        out.models.push_back(std::make_shared<cache::CachedLookupModel>(
            out.results.back(), options.costs));
        out.slice_universe_bytes.push_back(universe);
    }
    return out;
}

} // namespace dri::core
