/**
 * @file
 * Sharding plans: the static table-to-shard mapping produced by a sharding
 * strategy (Section III-B). A plan records, for every embedding table,
 * either the single sparse shard holding it or the list of shards its rows
 * are split across (huge tables are partitioned row-wise by modulus,
 * Section III-A1). Shard 0..num_shards-1 are sparse shards; the main shard
 * is implicit.
 */
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "model/model_spec.h"

namespace dri::core {

/** Placement of one table. */
struct TableAssignment
{
    int table_id = 0;
    /**
     * Shards holding this table. Size 1: whole table on one shard.
     * Size > 1: rows split by `row % shards.size()` across the listed
     * shards, in modulus order.
     */
    std::vector<int> shards;

    bool isSplit() const { return shards.size() > 1; }
    std::size_t ways() const { return shards.size(); }
};

/** Per-shard static attributes (the rows of Table II). */
struct ShardSummary
{
    int shard_id = 0;
    double capacity_gib = 0.0;
    /** Whole tables plus split-table pieces resident on the shard. */
    int table_count = 0;
    /** Expected lookups per request routed to this shard. */
    double estimated_pooling = 0.0;
    /** Nets with at least one table (piece) on this shard. */
    std::set<int> nets;
};

/** A complete sharding configuration. */
class ShardingPlan
{
  public:
    ShardingPlan() = default;
    ShardingPlan(std::string strategy, int num_shards,
                 std::vector<TableAssignment> assignments);

    const std::string &strategy() const { return strategy_; }
    /** Number of sparse shards; 0 means singular (non-distributed). */
    int numShards() const { return num_shards_; }
    bool isSingular() const { return num_shards_ == 0; }

    /** Display label, e.g. "load-bal 4 shards". */
    std::string label() const;

    const std::vector<TableAssignment> &assignments() const
    {
        return assignments_;
    }
    const TableAssignment &assignmentFor(int table_id) const;

    /** Table ids with at least a piece on the given shard. */
    std::vector<int> tablesOnShard(int shard_id) const;

    /** Sparse shards hosting tables of the given net. */
    std::set<int> shardsForNet(const model::ModelSpec &spec,
                               int net_id) const;

    /** Logical bytes resident on a shard (split tables contribute 1/ways). */
    double capacityBytes(const model::ModelSpec &spec, int shard_id) const;

    /**
     * Expected request pooling routed to a shard, from per-table pooling
     * estimates indexed by table id (split tables contribute 1/ways).
     */
    double estimatedPooling(const std::vector<double> &per_table_pooling,
                            int shard_id) const;

    /** Table II row set: per-shard capacity, table count, pooling. */
    std::vector<ShardSummary>
    summarize(const model::ModelSpec &spec,
              const std::vector<double> &per_table_pooling) const;

    /**
     * Structural validation: every table assigned exactly once, shard ids
     * in range, split tables use distinct shards, and (if a memory limit is
     * given) no shard exceeds it.
     */
    bool validate(const model::ModelSpec &spec, std::string *error = nullptr,
                  std::int64_t shard_memory_limit = 0) const;

  private:
    std::string strategy_ = "singular";
    int num_shards_ = 0;
    std::vector<TableAssignment> assignments_;
};

} // namespace dri::core
