#include "core/analysis.h"

#include <algorithm>
#include <cassert>

#include "sim/time.h"
#include "stats/quantile.h"

namespace dri::core {

namespace {

/** Requests whose E2E lies in the [lo, hi] quantile window. */
std::vector<const RequestStats *>
window(const std::vector<RequestStats> &stats, double lo, double hi)
{
    assert(!stats.empty());
    stats::QuantileEstimator q;
    for (const auto &s : stats)
        q.add(static_cast<double>(s.e2e));
    const double lo_v = q.quantile(lo);
    const double hi_v = q.quantile(hi);
    std::vector<const RequestStats *> out;
    for (const auto &s : stats) {
        const auto v = static_cast<double>(s.e2e);
        if (v >= lo_v && v <= hi_v)
            out.push_back(&s);
    }
    if (out.empty())
        out.push_back(&stats.front());
    return out;
}

double
meanOf(const std::vector<const RequestStats *> &reqs,
       double (*get)(const RequestStats &))
{
    double acc = 0.0;
    for (const auto *r : reqs)
        acc += get(*r);
    return acc / static_cast<double>(reqs.size());
}

} // namespace

namespace {

LatencyQuantiles
quantilesOf(const stats::QuantileEstimator &q)
{
    LatencyQuantiles out;
    if (q.empty())
        return out;
    out.p50_ms = q.p50();
    out.p90_ms = q.p90();
    out.p99_ms = q.p99();
    out.p999_ms = q.p999();
    return out;
}

} // namespace

LatencyQuantiles
latencyQuantiles(const std::vector<RequestStats> &stats)
{
    stats::QuantileEstimator q;
    for (const auto &s : stats)
        if (!s.shed())
            q.add(sim::toMillis(s.e2e));
    return quantilesOf(q);
}

LatencyQuantiles
cpuQuantiles(const std::vector<RequestStats> &stats)
{
    stats::QuantileEstimator q;
    for (const auto &s : stats)
        if (!s.shed())
            q.add(s.cpuTotalNs() / 1e6);
    return quantilesOf(q);
}

double
shedRate(const std::vector<RequestStats> &stats)
{
    if (stats.empty())
        return 0.0;
    std::size_t shed = 0;
    for (const auto &s : stats)
        if (s.shed())
            ++shed;
    return static_cast<double>(shed) / static_cast<double>(stats.size());
}

OverheadReport
computeOverhead(const std::string &label,
                const std::vector<RequestStats> &baseline,
                const std::vector<RequestStats> &config)
{
    OverheadReport report;
    report.label = label;
    const LatencyQuantiles bl = latencyQuantiles(baseline);
    const LatencyQuantiles cl = latencyQuantiles(config);
    const LatencyQuantiles bc = cpuQuantiles(baseline);
    const LatencyQuantiles cc = cpuQuantiles(config);
    const double blat[3] = {bl.p50_ms, bl.p90_ms, bl.p99_ms};
    const double clat[3] = {cl.p50_ms, cl.p90_ms, cl.p99_ms};
    const double bcpu[3] = {bc.p50_ms, bc.p90_ms, bc.p99_ms};
    const double ccpu[3] = {cc.p50_ms, cc.p90_ms, cc.p99_ms};
    for (int i = 0; i < 3; ++i) {
        report.latency_overhead[i] = (clat[i] - blat[i]) / blat[i];
        report.compute_overhead[i] = (ccpu[i] - bcpu[i]) / bcpu[i];
    }
    return report;
}

double
stackTotal(const Stack &stack)
{
    double total = 0.0;
    for (const auto &kv : stack)
        total += kv.second;
    return total;
}

Stack
latencyStack(const std::vector<RequestStats> &stats)
{
    const auto reqs = window(stats, 0.40, 0.60);
    Stack stack;
    stack.emplace_back("Dense Ops", meanOf(reqs, [](const RequestStats &r) {
                           return sim::toMillis(r.lat_dense);
                       }));
    stack.emplace_back("Embedded Portion",
                       meanOf(reqs, [](const RequestStats &r) {
                           return sim::toMillis(r.lat_embedded);
                       }));
    stack.emplace_back("RPC Ser/De", meanOf(reqs, [](const RequestStats &r) {
                           return sim::toMillis(r.lat_serde);
                       }));
    stack.emplace_back("RPC Service Function",
                       meanOf(reqs, [](const RequestStats &r) {
                           return sim::toMillis(r.lat_service);
                       }));
    stack.emplace_back("Caffe2 Net Overhead",
                       meanOf(reqs, [](const RequestStats &r) {
                           return sim::toMillis(r.lat_net_overhead);
                       }));
    return stack;
}

Stack
embeddedStack(const std::vector<RequestStats> &stats)
{
    const auto reqs = window(stats, 0.40, 0.60);
    Stack stack;
    stack.emplace_back("Caffe2 Sparse Ops",
                       meanOf(reqs, [](const RequestStats &r) {
                           return sim::toMillis(r.emb_sparse_op);
                       }));
    stack.emplace_back("RPC Ser/De", meanOf(reqs, [](const RequestStats &r) {
                           return sim::toMillis(r.emb_serde);
                       }));
    stack.emplace_back("RPC Service Function",
                       meanOf(reqs, [](const RequestStats &r) {
                           return sim::toMillis(r.emb_service);
                       }));
    stack.emplace_back("Caffe2 Net Overhead",
                       meanOf(reqs, [](const RequestStats &r) {
                           return sim::toMillis(r.emb_net_overhead);
                       }));
    stack.emplace_back("Network Latency",
                       meanOf(reqs, [](const RequestStats &r) {
                           return sim::toMillis(r.emb_network);
                       }));
    return stack;
}

Stack
cpuStack(const std::vector<RequestStats> &stats)
{
    const auto reqs = window(stats, 0.40, 0.60);
    Stack stack;
    stack.emplace_back("Caffe2 Ops", meanOf(reqs, [](const RequestStats &r) {
                           return r.cpu_ops_ns / 1e6;
                       }));
    stack.emplace_back("RPC Ser/De", meanOf(reqs, [](const RequestStats &r) {
                           return r.cpu_serde_ns / 1e6;
                       }));
    stack.emplace_back("Service Overhead",
                       meanOf(reqs, [](const RequestStats &r) {
                           return r.cpu_service_ns / 1e6;
                       }));
    return stack;
}

std::vector<double>
perShardOpLatency(const std::vector<RequestStats> &stats, int num_shards)
{
    std::vector<double> out(static_cast<std::size_t>(num_shards), 0.0);
    std::size_t served = 0;
    for (const auto &s : stats) {
        if (s.shed())
            continue;
        ++served;
        for (std::size_t i = 0;
             i < out.size() && i < s.shard_op_ns.size(); ++i)
            out[i] += s.shard_op_ns[i];
    }
    if (served == 0)
        return out;
    for (auto &v : out)
        v /= static_cast<double>(served) * 1e6; // -> ms
    return out;
}

std::vector<std::vector<double>>
perShardOpLatencyByNet(const std::vector<RequestStats> &stats,
                       int num_shards, int num_nets)
{
    std::vector<std::vector<double>> out(
        static_cast<std::size_t>(num_shards),
        std::vector<double>(static_cast<std::size_t>(num_nets), 0.0));
    std::size_t served = 0;
    for (const auto &s : stats) {
        if (s.shed())
            continue;
        ++served;
        for (int sh = 0; sh < num_shards; ++sh)
            for (int n = 0; n < num_nets; ++n) {
                const std::size_t idx =
                    static_cast<std::size_t>(sh) *
                        static_cast<std::size_t>(num_nets) +
                    static_cast<std::size_t>(n);
                if (idx < s.shard_net_op_ns.size())
                    out[static_cast<std::size_t>(sh)]
                       [static_cast<std::size_t>(n)] +=
                        s.shard_net_op_ns[idx];
            }
    }
    if (served == 0)
        return out;
    for (auto &row : out)
        for (auto &v : row)
            v /= static_cast<double>(served) * 1e6;
    return out;
}

namespace {

/**
 * Mean of `get` over served requests only — shed requests never executed,
 * so counting their zeroed measurements would deflate per-request means
 * (consistent with the quantile helpers above).
 */
double
servedMean(const std::vector<RequestStats> &stats,
           double (*get)(const RequestStats &))
{
    double acc = 0.0;
    std::size_t served = 0;
    for (const auto &s : stats)
        if (!s.shed()) {
            acc += get(s);
            ++served;
        }
    return served == 0 ? 0.0 : acc / static_cast<double>(served);
}

} // namespace

double
meanRpcCount(const std::vector<RequestStats> &stats)
{
    return servedMean(stats, [](const RequestStats &s) {
        return static_cast<double>(s.rpc_count);
    });
}

double
meanCpuMs(const std::vector<RequestStats> &stats)
{
    return servedMean(
        stats, [](const RequestStats &s) { return s.cpuTotalNs() / 1e6; });
}

double
meanMainOpMs(const std::vector<RequestStats> &stats)
{
    return servedMean(
        stats, [](const RequestStats &s) { return s.main_op_ns / 1e6; });
}

double
slaViolationRate(const std::vector<RequestStats> &stats, double sla_ms)
{
    if (stats.empty())
        return 0.0;
    // Shed requests are answered by the lower-quality fallback, exactly
    // like SLA-violating ones — both count as quality degradation.
    std::size_t over = 0;
    for (const auto &s : stats)
        if (s.shed() || sim::toMillis(s.e2e) > sla_ms)
            ++over;
    return static_cast<double>(over) / static_cast<double>(stats.size());
}

} // namespace dri::core
