#include "core/partitioner.h"

#include <cassert>
#include <set>

namespace dri::core {

std::string
shardNetName(int shard_id, int net_id)
{
    return "shard" + std::to_string(shard_id) + "_net" +
           std::to_string(net_id);
}

std::string
splitIdsBlobName(const model::TableSpec &table, int piece)
{
    return model::idsBlobName(table) + "_part" + std::to_string(piece);
}

std::string
splitEmbBlobName(const model::TableSpec &table, int piece)
{
    return model::embBlobName(table) + "_part" + std::to_string(piece);
}

const graph::NetDef *
DistributedModel::findShardNet(int shard_id, const std::string &name) const
{
    auto it = shard_nets.find(shard_id);
    if (it == shard_nets.end())
        return nullptr;
    for (const auto &net : it->second)
        if (net.name() == name)
            return &net;
    return nullptr;
}

namespace {

/** Clone an entire net. */
graph::NetDef
cloneNet(const graph::NetDef &src)
{
    graph::NetDef out(src.name());
    for (const auto &op : src.ops())
        out.add(op->clone());
    for (const auto &b : src.externalInputs())
        out.declareInput(b);
    for (const auto &b : src.externalOutputs())
        out.declareOutput(b);
    return out;
}

} // namespace

DistributedModel
partitionModel(const model::BuiltModel &built, const ShardingPlan &plan)
{
    DistributedModel dm;
    dm.base = &built;
    dm.plan = &plan;
    assert(built.spec);
    const model::ModelSpec &spec = *built.spec;

    if (plan.isSingular()) {
        for (const auto &net : built.nets)
            dm.main_nets.push_back(cloneNet(net));
        return dm;
    }

    for (std::size_t ni = 0; ni < built.nets.size(); ++ni) {
        const graph::NetDef &src = built.nets[ni];
        const int net_id = spec.nets[ni].id;

        // Partition the net's ops: SLS ops move to shards, everything else
        // stays. The builder emits all SLS ops contiguously, so the main
        // net keeps a single fan-out/join point.
        graph::NetDef main_net(src.name());
        for (const auto &b : src.externalInputs())
            main_net.declareInput(b);
        for (const auto &b : src.externalOutputs())
            main_net.declareOutput(b);

        // Per-shard groups of (table, piece index or -1 for whole).
        struct RemoteLookup
        {
            const model::TableSpec *table;
            int piece; //!< -1 = whole table
        };
        std::map<int, std::vector<RemoteLookup>> by_shard;
        std::set<int> split_tables;

        for (const auto &op : src.ops()) {
            const auto *sls =
                dynamic_cast<const graph::SparseLengthsSumOp *>(op.get());
            if (!sls)
                continue;
            // Resolve the table spec by name.
            const model::TableSpec *table = nullptr;
            for (const auto &t : spec.tables)
                if (t.name == sls->tableName())
                    table = &t;
            assert(table && "SLS references unknown table");
            const TableAssignment &asg = plan.assignmentFor(table->id);
            if (!asg.isSplit()) {
                by_shard[asg.shards[0]].push_back(RemoteLookup{table, -1});
            } else {
                split_tables.insert(table->id);
                for (std::size_t p = 0; p < asg.shards.size(); ++p)
                    by_shard[asg.shards[p]].push_back(
                        RemoteLookup{table, static_cast<int>(p)});
            }
        }

        // Walk the original ops. Ops before the first SLS are "bottom";
        // at the first SLS, emit splits + RPC fan-out + wait + partial
        // sums; remaining non-SLS ops are "top".
        bool fanout_emitted = false;
        for (const auto &op : src.ops()) {
            const bool is_sls =
                dynamic_cast<const graph::SparseLengthsSumOp *>(op.get()) !=
                nullptr;
            if (!is_sls) {
                main_net.add(op->clone());
                continue;
            }
            if (fanout_emitted)
                continue;
            fanout_emitted = true;

            // 1. Split index lists of row-split tables.
            for (int tid : split_tables) {
                const auto &t =
                    spec.tables[static_cast<std::size_t>(tid)];
                const auto &asg = plan.assignmentFor(tid);
                std::vector<std::string> parts;
                for (std::size_t p = 0; p < asg.ways(); ++p)
                    parts.push_back(
                        splitIdsBlobName(t, static_cast<int>(p)));
                main_net.emplace<graph::SplitIndicesOp>(
                    model::idsBlobName(t), parts);
            }

            // 2. One RPC request per (shard, net).
            std::vector<std::string> handles;
            for (const auto &kv : by_shard) {
                const int shard = kv.first;
                std::vector<std::string> req_inputs;
                std::vector<std::string> req_outputs;
                for (const auto &rl : kv.second) {
                    if (rl.piece < 0) {
                        req_inputs.push_back(model::idsBlobName(*rl.table));
                        req_outputs.push_back(model::embBlobName(*rl.table));
                    } else {
                        req_inputs.push_back(
                            splitIdsBlobName(*rl.table, rl.piece));
                        req_outputs.push_back(
                            splitEmbBlobName(*rl.table, rl.piece));
                    }
                }
                const std::string handle =
                    "h_net" + std::to_string(net_id) + "_s" +
                    std::to_string(shard);
                main_net.emplace<graph::RpcRequestOp>(
                    shard, shardNetName(shard, net_id), handle, req_inputs,
                    req_outputs);
                handles.push_back(handle);
            }

            // 3. Join.
            main_net.emplace<graph::RpcWaitOp>(handles);

            // 4. Combine row-split partial sums.
            for (int tid : split_tables) {
                const auto &t =
                    spec.tables[static_cast<std::size_t>(tid)];
                const auto &asg = plan.assignmentFor(tid);
                std::vector<std::string> parts;
                for (std::size_t p = 0; p < asg.ways(); ++p)
                    parts.push_back(
                        splitEmbBlobName(t, static_cast<int>(p)));
                main_net.emplace<graph::SumOp>(parts,
                                               model::embBlobName(t));
            }
        }
        dm.main_nets.push_back(std::move(main_net));

        // Generate the sparse-shard nets.
        for (const auto &kv : by_shard) {
            const int shard = kv.first;
            graph::NetDef shard_net(shardNetName(shard, net_id));
            for (const auto &rl : kv.second) {
                const std::string ids =
                    rl.piece < 0 ? model::idsBlobName(*rl.table)
                                 : splitIdsBlobName(*rl.table, rl.piece);
                const std::string emb =
                    rl.piece < 0 ? model::embBlobName(*rl.table)
                                 : splitEmbBlobName(*rl.table, rl.piece);
                shard_net.declareInput(ids);
                shard_net.emplace<graph::SparseLengthsSumOp>(rl.table->name,
                                                             ids, emb);
                shard_net.declareOutput(emb);
            }
            dm.shard_nets[shard].push_back(std::move(shard_net));
        }
    }
    return dm;
}

} // namespace dri::core
