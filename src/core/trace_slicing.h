/**
 * @file
 * Per-shard trace slicing: derive each sparse shard's access trace — and
 * from it a measured CachedLookupModel — from the rows the ShardingPlan
 * actually routes to it, instead of estimating every shard's locality
 * from one shared whole-model replay.
 *
 * The distinction matters exactly when sharding is skewed: a shard
 * holding the hot tables sees a more cacheable (more Zipf-concentrated)
 * access stream than a shard holding the long tail, so per-shard hit
 * rates legitimately diverge from the whole-model aggregate. Slices feed
 * ServingConfig::shard_cache_models, which already prices each shard's
 * gathers from its own model.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/lookup_model.h"
#include "cache/tiered_sim.h"
#include "core/sharding_plan.h"
#include "model/model_spec.h"
#include "workload/access_trace.h"

namespace dri::core {

/**
 * Split a whole-model trace into one slice per sparse shard, routing each
 * record the way the plan routes its lookup: whole tables to their
 * owning shard, split tables by `row % ways` in modulus order (the
 * ShardingPlan contract). Records naming tables outside the plan are
 * dropped, matching TieredCacheSim::replay. A singular plan yields one
 * slice holding every in-plan record (the inline-SLS "shard").
 */
std::vector<workload::AccessTrace>
sliceTraceByShard(const ShardingPlan &plan,
                  const workload::AccessTrace &trace);

/** How each shard's slice is replayed into a lookup model. */
struct ShardCacheOptions
{
    cache::Policy policy = cache::Policy::Lru;
    cache::Admission admission = cache::Admission::None;
    cache::TinyLfuConfig tinylfu;
    /**
     * Per-shard DRAM budget as a fraction of that shard's own slice
     * universe (proportional sizing: total budget tracks total traffic).
     */
    double capacity_fraction = 0.2;
    /**
     * Fixed byte budget per shard; overrides capacity_fraction when > 0.
     * This is machine-shaped sizing — every shard host has the same DRAM
     * regardless of the traffic routed at it — and is what makes skewed
     * plans visibly diverge.
     */
    std::int64_t capacity_bytes_per_shard = 0;
    double warmup_fraction = 0.5;
    cache::TierCosts costs;
};

/** Per-shard replay outcome: the models plus the evidence behind them. */
struct ShardCacheModels
{
    /**
     * One model per sparse shard, index-aligned with shard ids — plugs
     * directly into core::ServingConfig::shard_cache_models.
     */
    std::vector<std::shared_ptr<const cache::CachedLookupModel>> models;
    /** Full replay statistics per shard. */
    std::vector<cache::CacheSimResult> results;
    /** Distinct-row byte universe of each shard's slice. */
    std::vector<std::int64_t> slice_universe_bytes;

    /** Access-weighted hit rate across all shards' post-warmup windows. */
    double aggregateHitRate() const;
};

/**
 * Slice the trace by shard and replay each slice through its own
 * byte-budgeted cache. For a singular plan the single "shard" is the
 * main shard's inline SLS tier.
 */
ShardCacheModels
buildShardCacheModels(const model::ModelSpec &spec, const ShardingPlan &plan,
                      const workload::AccessTrace &trace,
                      const ShardCacheOptions &options);

} // namespace dri::core
