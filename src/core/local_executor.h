/**
 * @file
 * Functional RemoteExecutor: executes sparse-shard nets synchronously in
 * process, with one isolated workspace per shard. This is the correctness
 * backend — it proves the partitioned model computes bit-identical outputs
 * to the singular model — while the DES serving engine models timing.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/partitioner.h"
#include "graph/executor.h"

namespace dri::core {

/** In-process sparse-shard service. */
class LocalRemoteExecutor : public graph::RemoteExecutor
{
  public:
    /**
     * @param dm partitioned model whose shard nets will be served. The
     *           DistributedModel must outlive the executor.
     */
    explicit LocalRemoteExecutor(const DistributedModel &dm);

    void beginCall(int shard_id, const std::string &remote_net,
                   const std::string &handle, graph::Workspace &ws,
                   const std::vector<std::string> &inputs,
                   const std::vector<std::string> &outputs) override;

    void wait(const std::string &handle) override;

    /** Calls served so far (for tests and compute accounting). */
    std::size_t callCount() const { return calls_; }

  private:
    const DistributedModel &dm_;
    /** Isolated per-shard workspaces (tables registered once). */
    std::map<int, graph::Workspace> shard_ws_;
    std::size_t calls_ = 0;
};

} // namespace dri::core
