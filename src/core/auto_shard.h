/**
 * @file
 * Automatic sharding (the paper's Section X future work): search the
 * strategy x shard-count space, simulate each candidate against a profiled
 * request sample, and select a plan meeting memory, SLA, and compute
 * budgets. The paper concludes that "an automatic sharding methodology is
 * feasible, but requires sufficient profiling data" — this module is that
 * methodology built on the serving simulation.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/serving.h"
#include "core/strategies.h"

namespace dri::core {

/** Search constraints and objectives. */
struct AutoShardConstraints
{
    /** Usable model memory per sparse server (hard constraint). */
    std::int64_t shard_memory_limit_bytes = 0;
    /** Maximum acceptable P50 compute overhead vs singular (budget). */
    double max_compute_overhead = 0.25;
    /**
     * Optional absolute P99 SLA in milliseconds; 0 disables the absolute
     * target and the search simply minimizes P99 overhead.
     */
    double sla_p99_ms = 0.0;
    /** Largest shard count to consider. */
    int max_shards = 8;
};

/** One evaluated candidate. */
struct CandidateScore
{
    ShardingPlan plan;
    bool memory_feasible = false;
    bool meets_compute_budget = false;
    bool meets_sla = false;
    OverheadReport overhead;
    double p99_ms = 0.0;
    double cpu_p50_ms = 0.0;
};

/** Search outcome. */
struct AutoShardResult
{
    bool found = false;
    ShardingPlan best;
    CandidateScore best_score;
    /** Every candidate evaluated, for reporting. */
    std::vector<CandidateScore> considered;
};

/**
 * Profile-and-search: evaluates singular, 1-shard, and the three paper
 * strategies at 2..max_shards against the given request sample, then picks
 * the memory-feasible plan with the lowest P99 latency overhead among
 * those inside the compute budget (and SLA, when set). Falls back to the
 * lowest-compute feasible plan when nothing meets the budget.
 *
 * @param spec     model under study.
 * @param requests profiled request sample (replayed for every candidate).
 * @param pooling  per-table pooling estimates (Section III-B2).
 * @param constraints search constraints.
 * @param config   serving cost configuration shared by all candidates.
 */
AutoShardResult autoShard(const model::ModelSpec &spec,
                          const std::vector<workload::Request> &requests,
                          const std::vector<double> &pooling,
                          const AutoShardConstraints &constraints,
                          const ServingConfig &config);

} // namespace dri::core
