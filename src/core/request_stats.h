/**
 * @file
 * Per-request measurements produced by the serving simulation. The fields
 * mirror exactly the quantities the paper's cross-layer tracing extracts:
 * E2E latency and its stack (Fig. 8a), the bounding sparse shard's embedded
 * breakdown (Fig. 8b, attributed per Section IV-B), aggregate CPU time by
 * stack layer (Fig. 9), and per-shard operator CPU (Figs. 10-12, 15).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace dri::core {

/** Why admission control rejected a request (None = it was served). */
enum class ShedReason : std::uint8_t
{
    None = 0,
    /** Main-shard admission queue exceeded its configured cap on arrival. */
    QueueFull,
    /** Deadline already blown while waiting for a worker core. */
    DeadlineExceeded,
    /**
     * A sparse RPC exhausted its failover retries against dead,
     * partitioned, or unresolvable replicas (the injected-fault layer);
     * the request is answered by the lower-quality fallback exactly like
     * an admission shed.
     */
    UpstreamFailure,
};

/** Short lower-case reason name for tables and JSON rows. */
inline const char *
shedReasonName(ShedReason reason)
{
    switch (reason) {
    case ShedReason::None:
        return "none";
    case ShedReason::QueueFull:
        return "queue-full";
    case ShedReason::DeadlineExceeded:
        return "deadline";
    case ShedReason::UpstreamFailure:
        return "upstream-failure";
    }
    return "unknown";
}

/** Everything measured about one served request. */
struct RequestStats
{
    std::uint64_t id = 0;
    std::int64_t items = 0;
    int batches = 0;
    int rpc_count = 0;

    // ---- Hedged sparse RPCs (tail mitigation; zero when hedging is off).
    /** Backup requests launched for this request's sparse RPCs. */
    int hedges = 0;
    /** Backups that answered before their primary (tail saves). */
    int hedge_wins = 0;
    /** Replica CPU burned by losing attempts (duplicate work). */
    double hedge_wasted_cpu_ns = 0.0;

    // ---- Pooled-result cache (zero when the result cache is off).
    /** Sparse fan-out requests served from the main-shard result cache. */
    int result_cache_hits = 0;
    /** Fan-out requests that probed the cache and went to the wire. */
    int result_cache_misses = 0;
    /** Response bytes served locally instead of fetched over RPC. */
    std::int64_t result_cache_bytes_saved = 0;

    sim::SimTime arrival = 0;
    sim::SimTime completion = 0;
    sim::Duration e2e = 0;

    /**
     * Load shedding: a shed request never executed (its latency buckets
     * are meaningless beyond queue_wait) and would be answered by the
     * serving tier's lower-quality fallback (Section II). Latency
     * summaries must exclude shed requests; shedRate() accounts them.
     */
    ShedReason shed_reason = ShedReason::None;
    bool shed() const { return shed_reason != ShedReason::None; }

    /**
     * Time spent coalescing in the dynamic batcher before injection
     * (zero outside sched-driven replays). Included in e2e.
     */
    sim::Duration batch_wait = 0;
    /** Original requests merged into the injected request (>= 1). */
    int coalesced = 1;

    // ---- E2E latency stack at the main shard (Fig. 8a). The buckets sum
    //      (with queue_wait) to e2e; lat_dense is the critical-path
    //      residual after the measured buckets.
    sim::Duration queue_wait = 0;
    sim::Duration lat_serde = 0;        //!< request deserde + response serde
    sim::Duration lat_service = 0;      //!< handler boilerplate
    sim::Duration lat_net_overhead = 0; //!< framework scheduling
    sim::Duration lat_embedded = 0;     //!< sparse phase (wait or inline)
    sim::Duration lat_dense = 0;        //!< dense operator critical path

    // ---- Bounding-shard embedded-portion breakdown (Fig. 8b): the slowest
    //      asynchronous sparse request of this request. For singular runs
    //      the embedded portion is pure sparse-operator time.
    sim::Duration emb_sparse_op = 0;
    sim::Duration emb_serde = 0;
    sim::Duration emb_service = 0;
    sim::Duration emb_net_overhead = 0;
    sim::Duration emb_network = 0;
    sim::Duration emb_queue = 0;

    // ---- CPU time by layer, aggregated over all shards (Fig. 9).
    double cpu_ops_ns = 0.0;     //!< dense + sparse operator execution
    double cpu_serde_ns = 0.0;   //!< request/response (de)serialization
    double cpu_service_ns = 0.0; //!< handler + net overhead + dispatch

    double cpuTotalNs() const
    {
        return cpu_ops_ns + cpu_serde_ns + cpu_service_ns;
    }

    // ---- Per sparse shard operator CPU (Figs. 10-12, 15).
    std::vector<double> shard_op_ns;
    /** Indexed shard * num_nets + net. */
    std::vector<double> shard_net_op_ns;
    double main_op_ns = 0.0;
};

} // namespace dri::core
