#include "core/strategies.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace dri::core {

namespace {

/** LPT greedy: assign items (heaviest first) to the least-loaded shard. */
ShardingPlan
greedyBalance(const model::ModelSpec &spec, int num_shards,
              const std::vector<double> &weight, const std::string &name)
{
    assert(num_shards > 0);
    assert(weight.size() == spec.tables.size());

    std::vector<std::size_t> order(spec.tables.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (weight[a] != weight[b])
            return weight[a] > weight[b];
        return a < b; // deterministic tie-break
    });

    std::vector<double> load(static_cast<std::size_t>(num_shards), 0.0);
    std::vector<TableAssignment> assignments;
    assignments.reserve(spec.tables.size());
    for (std::size_t idx : order) {
        const auto lightest = static_cast<int>(
            std::min_element(load.begin(), load.end()) - load.begin());
        TableAssignment a;
        a.table_id = static_cast<int>(idx);
        a.shards = {lightest};
        assignments.push_back(a);
        load[static_cast<std::size_t>(lightest)] += weight[idx];
    }
    return ShardingPlan(name, num_shards, std::move(assignments));
}

} // namespace

std::string
strategyName(Strategy s)
{
    switch (s) {
      case Strategy::Singular:
        return "singular";
      case Strategy::OneShard:
        return "1-shard";
      case Strategy::CapacityBalanced:
        return "cap-bal";
      case Strategy::LoadBalanced:
        return "load-bal";
      case Strategy::Nsbp:
        return "NSBP";
    }
    return "unknown";
}

ShardingPlan
makeSingular(const model::ModelSpec &spec)
{
    (void)spec;
    return ShardingPlan("singular", 0, {});
}

ShardingPlan
makeOneShard(const model::ModelSpec &spec)
{
    std::vector<TableAssignment> assignments;
    assignments.reserve(spec.tables.size());
    for (const auto &t : spec.tables)
        assignments.push_back({t.id, {0}});
    return ShardingPlan("1-shard", 1, std::move(assignments));
}

ShardingPlan
makeCapacityBalanced(const model::ModelSpec &spec, int num_shards)
{
    std::vector<double> bytes;
    bytes.reserve(spec.tables.size());
    for (const auto &t : spec.tables)
        bytes.push_back(static_cast<double>(t.logicalBytes()));
    return greedyBalance(spec, num_shards, bytes,
                         strategyName(Strategy::CapacityBalanced));
}

ShardingPlan
makeLoadBalanced(const model::ModelSpec &spec, int num_shards,
                 const std::vector<double> &pooling_estimates)
{
    return greedyBalance(spec, num_shards, pooling_estimates,
                         strategyName(Strategy::LoadBalanced));
}

ShardingPlan
makeNsbp(const model::ModelSpec &spec, int num_shards,
         std::int64_t huge_table_limit_bytes)
{
    assert(num_shards > 0);

    // A bin holds tables of exactly one net.
    struct Bin
    {
        int net_id;
        double bytes = 0.0;
        std::vector<int> tables;
    };

    const double total =
        static_cast<double>(spec.totalCapacityBytes());
    // Bin size limit with modest slack, mirroring the parameter-server
    // bin sizes used during training (Section III-B3).
    const double limit = total / static_cast<double>(num_shards) * 1.15;

    std::vector<Bin> bins;
    std::vector<int> huge_tables; // row-split later

    for (const auto &net : spec.nets) {
        // First-fit-decreasing within the net.
        auto net_tables = spec.tablesForNet(net.id);
        std::sort(net_tables.begin(), net_tables.end(),
                  [](const model::TableSpec *a, const model::TableSpec *b) {
                      if (a->logicalBytes() != b->logicalBytes())
                          return a->logicalBytes() > b->logicalBytes();
                      return a->id < b->id;
                  });
        for (const auto *t : net_tables) {
            const double bytes = static_cast<double>(t->logicalBytes());
            // A table is "huge" — and must be row-split — when it exceeds
            // either the bin limit or the per-server memory cap.
            const bool over_server =
                huge_table_limit_bytes > 0 &&
                t->logicalBytes() > huge_table_limit_bytes;
            if (bytes > limit || over_server) {
                huge_tables.push_back(t->id);
                continue;
            }
            Bin *fit = nullptr;
            for (auto &b : bins)
                if (b.net_id == net.id && b.bytes + bytes <= limit) {
                    fit = &b;
                    break;
                }
            if (!fit) {
                bins.push_back(Bin{net.id, 0.0, {}});
                fit = &bins.back();
            }
            fit->bytes += bytes;
            fit->tables.push_back(t->id);
        }
    }

    // Shards available after regular bins are placed host the huge tables'
    // row splits. Guarantee at least one shard per huge table.
    const int reserved_for_huge =
        huge_tables.empty()
            ? 0
            : std::max<int>(static_cast<int>(huge_tables.size()),
                            num_shards - static_cast<int>(bins.size()));

    // Too many bins: merge the smallest same-net pair until they fit.
    while (static_cast<int>(bins.size()) + reserved_for_huge > num_shards) {
        int best_i = -1, best_j = -1;
        double best_sum = 0.0;
        for (std::size_t i = 0; i < bins.size(); ++i)
            for (std::size_t j = i + 1; j < bins.size(); ++j) {
                if (bins[i].net_id != bins[j].net_id)
                    continue;
                const double sum = bins[i].bytes + bins[j].bytes;
                if (best_i < 0 || sum < best_sum) {
                    best_i = static_cast<int>(i);
                    best_j = static_cast<int>(j);
                    best_sum = sum;
                }
            }
        assert(best_i >= 0 &&
               "cannot reduce NSBP bins to the requested shard count");
        auto &keep = bins[static_cast<std::size_t>(best_i)];
        auto &drop = bins[static_cast<std::size_t>(best_j)];
        keep.bytes += drop.bytes;
        keep.tables.insert(keep.tables.end(), drop.tables.begin(),
                           drop.tables.end());
        bins.erase(bins.begin() + best_j);
    }

    // Too few bins (more shards than packing produced, and no huge
    // tables to absorb them): split the largest multi-table bin into two
    // capacity-balanced halves until every shard is used.
    while (huge_tables.empty() &&
           static_cast<int>(bins.size()) < num_shards) {
        int victim = -1;
        for (std::size_t i = 0; i < bins.size(); ++i)
            if (bins[i].tables.size() > 1 &&
                (victim < 0 ||
                 bins[i].bytes > bins[static_cast<std::size_t>(victim)].bytes))
                victim = static_cast<int>(i);
        assert(victim >= 0 && "not enough tables to populate every shard");
        Bin &src = bins[static_cast<std::size_t>(victim)];
        // LPT split of the victim's tables into two halves.
        std::sort(src.tables.begin(), src.tables.end(), [&](int a, int b) {
            const auto ba =
                spec.tables[static_cast<std::size_t>(a)].logicalBytes();
            const auto bb =
                spec.tables[static_cast<std::size_t>(b)].logicalBytes();
            if (ba != bb)
                return ba > bb;
            return a < b;
        });
        Bin half{src.net_id, 0.0, {}};
        Bin rest{src.net_id, 0.0, {}};
        for (int t : src.tables) {
            const double bytes = static_cast<double>(
                spec.tables[static_cast<std::size_t>(t)].logicalBytes());
            Bin &target = half.bytes <= rest.bytes ? half : rest;
            target.bytes += bytes;
            target.tables.push_back(t);
        }
        src = std::move(half);
        bins.push_back(std::move(rest));
    }

    // Materialize assignments: bins take the first shards, huge tables
    // split across the remainder.
    std::vector<TableAssignment> assignments(spec.tables.size());
    for (std::size_t i = 0; i < spec.tables.size(); ++i)
        assignments[i].table_id = static_cast<int>(i);

    int next_shard = 0;
    for (const auto &b : bins) {
        for (int t : b.tables)
            assignments[static_cast<std::size_t>(t)].shards = {next_shard};
        ++next_shard;
    }
    if (!huge_tables.empty()) {
        const int remaining = num_shards - next_shard;
        assert(remaining >= static_cast<int>(huge_tables.size()));
        // Distribute remaining shards across huge tables, largest first.
        std::sort(huge_tables.begin(), huge_tables.end(), [&](int a, int b) {
            const auto ba =
                spec.tables[static_cast<std::size_t>(a)].logicalBytes();
            const auto bb =
                spec.tables[static_cast<std::size_t>(b)].logicalBytes();
            if (ba != bb)
                return ba > bb;
            return a < b;
        });
        double huge_total = 0.0;
        for (int t : huge_tables)
            huge_total += static_cast<double>(
                spec.tables[static_cast<std::size_t>(t)].logicalBytes());
        int given = 0;
        for (std::size_t i = 0; i < huge_tables.size(); ++i) {
            const int t = huge_tables[i];
            const double frac =
                static_cast<double>(
                    spec.tables[static_cast<std::size_t>(t)].logicalBytes()) /
                huge_total;
            int ways = (i + 1 == huge_tables.size())
                           ? remaining - given
                           : std::max(1, static_cast<int>(frac * remaining));
            ways = std::min(ways, remaining - given -
                                      static_cast<int>(huge_tables.size() -
                                                       i - 1));
            ways = std::max(ways, 1);
            auto &a = assignments[static_cast<std::size_t>(t)];
            a.shards.clear();
            for (int w = 0; w < ways; ++w)
                a.shards.push_back(next_shard++);
            given += ways;
        }
    }
    return ShardingPlan(strategyName(Strategy::Nsbp), num_shards,
                        std::move(assignments));
}

} // namespace dri::core
