/**
 * @file
 * The sharding strategies of Table I.
 *
 * - singular: distributed inference disabled, whole model on one server.
 * - 1-shard: all embedding tables on one sparse shard (the latency
 *   worst case — nothing parallelizes).
 * - capacity-balanced: greedy placement equalizing per-shard logical bytes.
 * - load-balanced: greedy placement equalizing per-shard estimated pooling
 *   factor (lookups), estimated by sampling requests as in Section III-B2.
 * - net-specific bin-packing (NSBP): tables grouped by net, packed into
 *   size-limited bins; tables larger than the per-server limit are
 *   row-split across the remaining shards (how DRM3's 178.8 GB table is
 *   served).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "core/sharding_plan.h"
#include "model/model_spec.h"

namespace dri::core {

/** Singular (non-distributed) configuration. */
ShardingPlan makeSingular(const model::ModelSpec &spec);

/** Every table on a single sparse shard. */
ShardingPlan makeOneShard(const model::ModelSpec &spec);

/**
 * Capacity-balanced: sort tables by logical bytes descending and assign
 * each to the currently least-loaded shard (LPT greedy).
 */
ShardingPlan makeCapacityBalanced(const model::ModelSpec &spec,
                                  int num_shards);

/**
 * Load-balanced: LPT greedy on estimated per-table pooling factors
 * (indexed by table id, e.g. from RequestGenerator::estimatePoolingFactors).
 */
ShardingPlan makeLoadBalanced(const model::ModelSpec &spec, int num_shards,
                              const std::vector<double> &pooling_estimates);

/**
 * Net-specific bin-packing. Tables are grouped by net and packed
 * first-fit-decreasing into bins limited to ~total/num_shards (with slack);
 * bins never mix nets. Tables exceeding `huge_table_limit_bytes` (per-server
 * usable memory) are row-split across all shards left over after packing.
 * If packing produces more bins than shards, the smallest same-net bins are
 * merged.
 *
 * @param huge_table_limit_bytes tables above this are row-split; pass the
 *        platform's usable model bytes. 0 disables splitting.
 */
ShardingPlan makeNsbp(const model::ModelSpec &spec, int num_shards,
                      std::int64_t huge_table_limit_bytes);

/** Dispatch by strategy name: one of the Table I labels. */
enum class Strategy { Singular, OneShard, CapacityBalanced, LoadBalanced,
                      Nsbp };

/** Short name used in plan labels and bench output. */
std::string strategyName(Strategy s);

} // namespace dri::core
