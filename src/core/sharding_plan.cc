#include "core/sharding_plan.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace dri::core {

ShardingPlan::ShardingPlan(std::string strategy, int num_shards,
                           std::vector<TableAssignment> assignments)
    : strategy_(std::move(strategy)), num_shards_(num_shards),
      assignments_(std::move(assignments))
{
    std::sort(assignments_.begin(), assignments_.end(),
              [](const TableAssignment &a, const TableAssignment &b) {
                  return a.table_id < b.table_id;
              });
}

std::string
ShardingPlan::label() const
{
    if (isSingular())
        return "singular";
    if (strategy_ == "1-shard")
        return "1 shard";
    std::ostringstream os;
    os << strategy_ << " " << num_shards_ << " shards";
    return os.str();
}

const TableAssignment &
ShardingPlan::assignmentFor(int table_id) const
{
    assert(table_id >= 0 &&
           table_id < static_cast<int>(assignments_.size()));
    const auto &a = assignments_[static_cast<std::size_t>(table_id)];
    assert(a.table_id == table_id);
    return a;
}

std::vector<int>
ShardingPlan::tablesOnShard(int shard_id) const
{
    std::vector<int> out;
    for (const auto &a : assignments_)
        for (int s : a.shards)
            if (s == shard_id) {
                out.push_back(a.table_id);
                break;
            }
    return out;
}

std::set<int>
ShardingPlan::shardsForNet(const model::ModelSpec &spec, int net_id) const
{
    std::set<int> shards;
    for (const auto &a : assignments_) {
        const auto &table = spec.tables.at(static_cast<std::size_t>(a.table_id));
        if (table.net_id != net_id)
            continue;
        for (int s : a.shards)
            shards.insert(s);
    }
    return shards;
}

double
ShardingPlan::capacityBytes(const model::ModelSpec &spec, int shard_id) const
{
    double bytes = 0.0;
    for (const auto &a : assignments_) {
        const auto &table = spec.tables.at(static_cast<std::size_t>(a.table_id));
        for (int s : a.shards)
            if (s == shard_id)
                bytes += static_cast<double>(table.logicalBytes()) /
                         static_cast<double>(a.ways());
    }
    return bytes;
}

double
ShardingPlan::estimatedPooling(const std::vector<double> &per_table_pooling,
                               int shard_id) const
{
    double pooling = 0.0;
    for (const auto &a : assignments_) {
        const double table_pooling =
            per_table_pooling.at(static_cast<std::size_t>(a.table_id));
        for (int s : a.shards)
            if (s == shard_id)
                pooling += table_pooling / static_cast<double>(a.ways());
    }
    return pooling;
}

std::vector<ShardSummary>
ShardingPlan::summarize(const model::ModelSpec &spec,
                        const std::vector<double> &per_table_pooling) const
{
    std::vector<ShardSummary> out;
    for (int s = 0; s < num_shards_; ++s) {
        ShardSummary sum;
        sum.shard_id = s;
        sum.capacity_gib = capacityBytes(spec, s) / model::kGiB;
        sum.table_count = static_cast<int>(tablesOnShard(s).size());
        sum.estimated_pooling = estimatedPooling(per_table_pooling, s);
        for (int t : tablesOnShard(s))
            sum.nets.insert(spec.tables.at(static_cast<std::size_t>(t)).net_id);
        out.push_back(sum);
    }
    return out;
}

bool
ShardingPlan::validate(const model::ModelSpec &spec, std::string *error,
                       std::int64_t shard_memory_limit) const
{
    std::ostringstream err;
    bool ok = true;

    if (isSingular()) {
        if (!assignments_.empty()) {
            err << "singular plan must have no assignments; ";
            ok = false;
        }
        if (error)
            *error = err.str();
        return ok;
    }

    if (assignments_.size() != spec.tables.size()) {
        err << "plan covers " << assignments_.size() << " tables, model has "
            << spec.tables.size() << "; ";
        ok = false;
    }
    std::vector<bool> seen(spec.tables.size(), false);
    for (const auto &a : assignments_) {
        if (a.table_id < 0 ||
            a.table_id >= static_cast<int>(spec.tables.size())) {
            err << "bad table id " << a.table_id << "; ";
            ok = false;
            continue;
        }
        if (seen[static_cast<std::size_t>(a.table_id)]) {
            err << "table " << a.table_id << " assigned twice; ";
            ok = false;
        }
        seen[static_cast<std::size_t>(a.table_id)] = true;
        if (a.shards.empty()) {
            err << "table " << a.table_id << " has no shard; ";
            ok = false;
        }
        std::set<int> distinct(a.shards.begin(), a.shards.end());
        if (distinct.size() != a.shards.size()) {
            err << "table " << a.table_id << " split uses repeated shards; ";
            ok = false;
        }
        for (int s : a.shards)
            if (s < 0 || s >= num_shards_) {
                err << "table " << a.table_id << " on out-of-range shard "
                    << s << "; ";
                ok = false;
            }
    }
    for (std::size_t t = 0; t < seen.size(); ++t)
        if (!seen[t]) {
            err << "table " << t << " unassigned; ";
            ok = false;
        }
    if (shard_memory_limit > 0) {
        for (int s = 0; s < num_shards_; ++s) {
            const double bytes = capacityBytes(spec, s);
            if (bytes > static_cast<double>(shard_memory_limit)) {
                err << "shard " << s << " exceeds memory limit; ";
                ok = false;
            }
        }
    }
    if (error)
        *error = err.str();
    return ok;
}

} // namespace dri::core
