#include "core/serving.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <functional>
#include <map>
#include <new>

#include "cache/lookup_model.h"
#include "netsim/message.h"
#include "obs/span_tracer.h"
#include "obs/timeseries.h"
#include "rpc/discovery.h"
#include "sim/pool.h"
#include "stats/flat_hash.h"
#include "stats/summary.h"

namespace dri::core {

namespace {

sim::Duration
scaled(double ns, double cpu_scale)
{
    return static_cast<sim::Duration>(std::llround(ns * cpu_scale));
}

sim::Duration
scaled(sim::Duration ns, double cpu_scale)
{
    return scaled(static_cast<double>(ns), cpu_scale);
}

} // namespace

/** Full simulation state; hidden behind the facade. */
struct ServingSimulation::Impl
{
    // -- Static deployment description ------------------------------------

    /** One RPC fan-out target: the tables of one net on one shard. */
    struct Group
    {
        int shard = 0;
        std::vector<int> whole_tables;
        struct Piece
        {
            int table;
            int piece;
            int ways;
        };
        std::vector<Piece> pieces;
        int tableCount() const
        {
            return static_cast<int>(whole_tables.size() + pieces.size());
        }
        double sum_dims = 0.0;  //!< Σ table dims (response sizing)
        double lookup_ns = 0.0; //!< pooled per-row gather cost
    };

    struct NetInfo
    {
        int net_id = 0;
        double dense_ns_per_item = 0.0;
        double dense_fixed_ns = 0.0;
        std::vector<Group> groups;     //!< empty for singular
        double inline_lookup_ns = 0.0; //!< singular per-row gather cost
    };

    // -- Runtime state ------------------------------------------------------

    struct Active; // forward
    struct RpcOp;  // forward

    struct BatchState
    {
        Active *req = nullptr;
        std::size_t net_idx = 0;
        int batch_id = 0;
        std::int64_t batch_items = 0;
        int pending = 0;
        sim::SimTime dispatch_time = 0;
        sim::SimTime last_response = 0;
        std::int64_t response_bytes = 0;
        /** Top-dense duration, stashed at dispatch for the merge phase. */
        sim::Duration top_dense = 0;
        obs::SpanId sp_batch = obs::kNoSpan; //!< BatchExec span
        obs::SpanId sp_embed = obs::kNoSpan; //!< EmbeddedWait span
        /**
         * The batch's fan-out ops; each holds one reference so the
         * pointers stay valid for mid-flight shed cancellation until
         * destroyBatch() releases them.
         */
        std::vector<RpcOp *> ops;
    };

    /**
     * Execution state of one attempt of a (possibly hedged) RPC, kept on
     * the op so the winning attempt can cancel an executing sibling
     * mid-service (tied requests: the servers tell each other when one
     * finishes, so the loser's remaining busy time is reclaimed).
     */
    struct AttemptExec
    {
        bool executing = false;
        bool finished = false;  //!< ran its busy period to completion
        bool cancelled = false; //!< aborted mid-execution by the winner
        int server = -1;
        /**
         * Server this (re)launch must avoid — the replica a failover
         * retry just timed out against (-1 = no exclusion).
         */
        int exclude = -1;
        /**
         * replica_gen snapshot taken when the attempt entered the
         * server's queue; a mismatch at grant or completion means the
         * replica died (or rebooted) underneath it and the work is lost.
         */
        std::uint32_t server_gen = 0;
        sim::SimTime exec_start = 0;
        sim::Duration busy = 0;
        /** Busy components for proportional refund on cancellation. */
        sim::Duration service = 0, serde = 0, overhead = 0, op_ns = 0;
        std::size_t sidx = 0, nidx = 0;
        obs::SpanId sp_attempt = obs::kNoSpan; //!< RpcAttempt span
        obs::SpanId sp_exec = obs::kNoSpan;    //!< RemoteCompute span
    };

    /**
     * One logical sparse RPC — a fan-out group of one batch — possibly
     * raced by two attempts (primary + hedge). Reference-counted: each
     * in-flight attempt and the pending hedge timer hold one ref; exactly
     * one attempt wins (first to finish remote service) and delivers the
     * response, the rest cancel (before, during, or after execution).
     */
    struct RpcOp
    {
        BatchState *bt = nullptr;
        /**
         * Owning request's id, copied at dispatch: cancelled attempts
         * can outlive the batch (and its Active), so span bookkeeping
         * on those paths must not chase bt->req.
         */
        std::uint64_t request_id = 0;
        const NetInfo *ni = nullptr;
        std::size_t gi = 0;
        std::int64_t lookups = 0;
        std::int64_t req_bytes = 0;
        sim::SimTime dispatched = 0; //!< primary dispatch (client clock)
        int primary_server = -1;     //!< replica the primary landed on
        bool won = false;            //!< an attempt finished remote service
        bool shed = false; //!< won was set by shed poisoning, not a race win
        /** Failover re-dispatches consumed (PerturbationConfig budget). */
        int retries = 0;
        int refs = 0;
        /** Result-cache key this op's winning response is memoized under. */
        rpc::ResultCache::Key cache_key;
        /** Cache epoch at dispatch; a stale epoch blocks the insert. */
        std::uint64_t cache_epoch = 0;
        /** [0] = primary, [1] = hedge. */
        AttemptExec exec[2];
        obs::SpanId sp_op = obs::kNoSpan; //!< RpcOp span
    };

    struct Active
    {
        workload::Request const *req = nullptr;
        RequestStats st;
        int nb = 0;
        std::size_t net_idx = 0;
        int batches_left = 0;
        sim::Duration net_embedded_max = 0;
        /** Per-group request-level lookups for the current net. */
        std::vector<std::int64_t> group_lookups;
        std::int64_t inline_lookups = 0;
        /** Bounding (slowest outstanding) RPC of this request. */
        trace::RpcRecord bounding;
        bool has_bounding = false;
        sim::Duration max_inline_sparse = 0;
        std::function<void(const RequestStats &)> on_complete;

        // Intra-request batch-slot pool (framework worker threads).
        int slots_free = 0;
        std::deque<sim::EventFn> slot_waiters;

        // Mid-flight shed support (AdmissionConfig::cancel_in_flight).
        /** Shed while executing: stats already emitted, machinery drains. */
        bool shed_mid_flight = false;
        /** Final response serde underway; too late to shed usefully. */
        bool finishing = false;
        /** Batches with RPC fan-out currently outstanding. */
        std::vector<BatchState *> live_batches;

        obs::SpanId sp_root = obs::kNoSpan; //!< Request span
        obs::SpanId sp_net = obs::kNoSpan;  //!< current NetPhase span
    };

    /**
     * Mutable context of one RPC attempt — the record being filled in
     * and the attempt's CRN stream — pooled and threaded by pointer
     * through the attempt's event chain. An mt19937_64 is ~2.5 KB, so
     * capturing the stream by value in each chained closure used to cost
     * a heap allocation plus a bulk copy per hop; with the pooled
     * context every hop's capture is a few pointers and fits the
     * engine's inline event buffer.
     */
    struct AttemptCtx
    {
        trace::RpcRecord rec;
        stats::Rng rng{0};
    };

    Impl(const model::ModelSpec &spec, const ShardingPlan &plan,
         const ServingConfig &cfg, trace::TraceCollector &collector)
        : spec(spec), plan(plan), cfg(cfg), collector(collector),
          link(cfg.link), service(cfg.service), rng(cfg.seed),
          hedge_tracker(cfg.hedge.window), result_cache(cfg.result_cache)
    {
        // Cache the tracer pointer once: the hot path pays exactly one
        // null check per emission site when tracing is off.
        tr = (cfg.tracer != nullptr && cfg.tracer->enabled()) ? cfg.tracer
                                                              : nullptr;
        const auto n_shards =
            static_cast<std::size_t>(std::max(plan.numShards(), 0));
        shard_trackers.reserve(n_shards);
        for (std::size_t s = 0; s < n_shards; ++s)
            shard_trackers.emplace_back(cfg.hedge.window);
        shard_primary_rpcs.assign(n_shards, 0);
        shard_hedges.assign(n_shards, 0);
        shard_hedge_wins.assign(n_shards, 0);
        const auto pool = [&](const dc::Platform &platform, int threads) {
            const int t = threads > 0 ? std::min(threads, platform.cores)
                                      : platform.cores;
            return static_cast<std::size_t>(t);
        };
        main_cores = std::make_unique<sim::Resource>(
            engine, pool(cfg.main_platform, cfg.worker_threads), "main");
        const int sparse_threads = cfg.sparse_worker_threads > 0
                                       ? cfg.sparse_worker_threads
                                       : cfg.worker_threads;
        const int default_replicas = std::max(1, cfg.sparse_replicas);
        for (int s = 0; s < plan.numShards(); ++s) {
            int replicas = default_replicas;
            const auto si = static_cast<std::size_t>(s);
            if (si < cfg.sparse_replicas_per_shard.size() &&
                cfg.sparse_replicas_per_shard[si] > 0)
                replicas = cfg.sparse_replicas_per_shard[si];
            for (int r = 0; r < replicas; ++r) {
                directory.registerReplica(
                    s, static_cast<int>(sparse_cores.size()));
                server_shard.push_back(s);
                sparse_cores.push_back(std::make_unique<sim::Resource>(
                    engine, pool(cfg.sparse_platform, sparse_threads),
                    "sparse" + std::to_string(s) + "." + std::to_string(r)));
            }
        }
        peak_queue.assign(sparse_cores.size(), 0);
        replica_dead.assign(sparse_cores.size(), 0);
        replica_gen.assign(sparse_cores.size(), 0);
        replica_degrade.assign(sparse_cores.size(), 1.0);
        shard_partitioned.assign(n_shards, 0);
        directory.setPolicy(cfg.lb_policy, cfg.seed ^ 0x10adbau);
        // Load-aware replica selection reads live queue depth from the
        // worker pools (in-flight + queued), i.e. "outstanding requests".
        directory.setLoadProbe([this](int server) {
            const auto &r = *sparse_cores[static_cast<std::size_t>(server)];
            return r.inUse() + r.queued();
        });
        results = &collected;
        buildNetInfos();
    }

    const model::ModelSpec &spec;
    const ShardingPlan &plan;
    ServingConfig cfg;
    trace::TraceCollector &collector;
    /** Cached span tracer; null when tracing is disabled. */
    obs::SpanTracer *tr = nullptr;

    sim::Engine engine;
    std::unique_ptr<sim::Resource> main_cores;
    /** One worker pool per sparse-shard *replica* (see directory). */
    std::vector<std::unique_ptr<sim::Resource>> sparse_cores;
    rpc::ServiceDirectory directory;
    netsim::LinkModel link;
    rpc::ServiceCostModel service;
    stats::Rng rng;

    std::vector<NetInfo> nets;
    /** Where finished stats land; defaults to `collected` (driver API). */
    std::vector<RequestStats> *results = nullptr;
    /** Results of externally injected requests, drained by takeResults. */
    std::vector<RequestStats> collected;
    /** Peak (in-flight + queued) per replica server, observed at dispatch. */
    std::vector<std::size_t> peak_queue;
    /** Logical shard of each replica server (parallel to sparse_cores). */
    std::vector<int> server_shard;

    // -- Hedging state -------------------------------------------------------

    /** Observed client-side RPC latencies; the hedge deadline's source. */
    rpc::LatencyTracker hedge_tracker;
    /**
     * Per-shard latency windows, used instead of the global tracker when
     * HedgeConfig::per_shard_deadline is set — a heavy-pooling shard's
     * honest latencies then stop inflating every other shard's deadline.
     */
    std::vector<rpc::LatencyTracker> shard_trackers;
    std::uint64_t primary_rpcs = 0;
    std::uint64_t hedges_launched = 0;
    std::uint64_t hedge_wins = 0;
    std::uint64_t hedge_losses = 0;
    std::uint64_t hedge_cancelled = 0;
    std::uint64_t hedge_suppressed = 0;
    /** Per-shard hedge accounting (always tracked; cheap). */
    std::vector<std::uint64_t> shard_primary_rpcs;
    std::vector<std::uint64_t> shard_hedges;
    std::vector<std::uint64_t> shard_hedge_wins;
    /** Replica busy time burned by attempts that lost their race. */
    double wasted_busy_ns = 0.0;

    // -- Pooled-result cache -------------------------------------------------

    rpc::ResultCache result_cache;

    // -- Mid-flight shed state ----------------------------------------------

    /**
     * Requests with an armed shed timer, by request id (ids are unique
     * within a replay). The timer looks its request up here, so a timer
     * firing after completion dereferences nothing stale.
     */
    stats::FlatHashMap<std::uint64_t, Active *> live_requests;
    std::uint64_t shed_cancelled_rpcs = 0;

    // -- Hot-path object pools ----------------------------------------------
    //
    // Per-request in-flight state recycles through typed arenas instead
    // of the general heap. Raw pointers handed to in-flight events stay
    // valid (stable blocks); the existing ref-count / pending-count
    // protocols are the unique release points, so pooling changes only
    // where the memory comes from.

    sim::ObjectPool<Active> active_pool;
    sim::ObjectPool<BatchState> batch_pool;
    sim::ObjectPool<RpcOp> op_pool;
    sim::ObjectPool<AttemptCtx> attempt_pool;

    /**
     * Recycle an Active: destroy + reconstruct for guaranteed-pristine
     * state, salvaging container capacity so a steady-state request
     * allocates nothing.
     */
    void
    releaseActive(Active *a)
    {
        auto gl = std::move(a->group_lookups);
        auto sop = std::move(a->st.shard_op_ns);
        auto snop = std::move(a->st.shard_net_op_ns);
        auto lb = std::move(a->live_batches);
        auto sw = std::move(a->slot_waiters);
        a->~Active();
        new (a) Active();
        gl.clear();
        sop.clear();
        snop.clear();
        lb.clear();
        sw.clear();
        a->group_lookups = std::move(gl);
        a->st.shard_op_ns = std::move(sop);
        a->st.shard_net_op_ns = std::move(snop);
        a->live_batches = std::move(lb);
        a->slot_waiters = std::move(sw);
        active_pool.release(a);
    }

    void
    releaseBatch(BatchState *bt)
    {
        auto ops = std::move(bt->ops);
        bt->~BatchState();
        new (bt) BatchState();
        ops.clear();
        bt->ops = std::move(ops);
        batch_pool.release(bt);
    }

    void
    releaseOp(RpcOp *op)
    {
        op->~RpcOp();
        new (op) RpcOp();
        op_pool.release(op);
    }

    // -- Injected-fault state (runtime control surface) ----------------------
    //
    // All vectors are sized at construction and stay in their inert state
    // (alive, generation 0, degrade 1.0, no partition) unless the control
    // surface is exercised, so fault-free replays take only branch-not-
    // taken checks on these paths.

    /** Dead replica servers (parallel to sparse_cores). */
    std::vector<char> replica_dead;
    /**
     * Replica incarnation, bumped on every kill AND restore: work
     * enqueued under an older generation is lost even if the replica is
     * alive again by the time a core would be granted.
     */
    std::vector<std::uint32_t> replica_gen;
    /** Persistent per-replica slowdown (degradeReplica; 1.0 = healthy). */
    std::vector<double> replica_degrade;
    /** Shards currently partitioned from the main shard. */
    std::vector<char> shard_partitioned;
    FaultStats fault_stats;

    rpc::LatencyTracker &
    trackerFor(int shard)
    {
        if (cfg.hedge.per_shard_deadline && shard >= 0 &&
            static_cast<std::size_t>(shard) < shard_trackers.size())
            return shard_trackers[static_cast<std::size_t>(shard)];
        return hedge_tracker;
    }

    bool
    shedTimersEnabled() const
    {
        return cfg.admission.deadline_ns > 0 &&
               cfg.admission.cancel_in_flight;
    }

    double
    mainScale() const
    {
        return cfg.main_platform.cpu_time_scale;
    }
    double
    sparseScale() const
    {
        return cfg.sparse_platform.cpu_time_scale;
    }

    int
    batchSize() const
    {
        return cfg.batch_size_override > 0 ? cfg.batch_size_override
                                           : spec.default_batch_size;
    }

    /**
     * Per-row gather cost for a table served by `shard` (-1 = main shard /
     * inline SLS). With a cache model configured, the flat coefficient
     * becomes the DRAM-hit cost and misses pay the model's backing-tier
     * cost, weighted by the table's simulated hit rate.
     */
    double
    tableLookupNs(const model::TableSpec &t, int shard = -1) const
    {
        const double flat =
            cfg.lookup_base_ns +
            cfg.lookup_ns_per_row_byte *
                static_cast<double>(t.storedRowBytes());
        const cache::CachedLookupModel *model = nullptr;
        if (shard >= 0 &&
            static_cast<std::size_t>(shard) <
                cfg.shard_cache_models.size() &&
            cfg.shard_cache_models[static_cast<std::size_t>(shard)])
            model =
                cfg.shard_cache_models[static_cast<std::size_t>(shard)]
                    .get();
        else if (cfg.cache_model)
            model = cfg.cache_model.get();
        if (model && model->hasTable(t.id))
            return model->lookupNs(t.id, flat);
        return flat;
    }

    void
    buildNetInfos()
    {
        for (const auto &net_spec : spec.nets) {
            NetInfo ni;
            ni.net_id = net_spec.id;
            ni.dense_ns_per_item = net_spec.dense_ns_per_item;
            ni.dense_fixed_ns = net_spec.dense_fixed_ns;

            // Pooling-weighted gather cost across the net's tables.
            double pool_sum = 0.0, cost_sum = 0.0;
            for (const auto &t : spec.tables) {
                if (t.net_id != net_spec.id)
                    continue;
                const double pool = t.expectedLookups(spec.mean_items);
                pool_sum += pool;
                cost_sum += pool * tableLookupNs(t);
            }
            ni.inline_lookup_ns =
                pool_sum > 0.0 ? cost_sum / pool_sum : cfg.lookup_base_ns;

            if (!plan.isSingular()) {
                std::map<int, Group> groups;
                for (const auto &t : spec.tables) {
                    if (t.net_id != net_spec.id)
                        continue;
                    const auto &asg = plan.assignmentFor(t.id);
                    if (!asg.isSplit()) {
                        Group &g = groups[asg.shards[0]];
                        g.shard = asg.shards[0];
                        g.whole_tables.push_back(t.id);
                    } else {
                        for (std::size_t p = 0; p < asg.shards.size(); ++p) {
                            Group &g = groups[asg.shards[p]];
                            g.shard = asg.shards[p];
                            g.pieces.push_back(Group::Piece{
                                t.id, static_cast<int>(p),
                                static_cast<int>(asg.ways())});
                        }
                    }
                }
                for (auto &kv : groups) {
                    Group &g = kv.second;
                    double pool = 0.0, cost = 0.0;
                    for (int tid : g.whole_tables) {
                        const auto &t =
                            spec.tables[static_cast<std::size_t>(tid)];
                        const double p = t.expectedLookups(spec.mean_items);
                        pool += p;
                        cost += p * tableLookupNs(t, g.shard);
                        g.sum_dims += static_cast<double>(t.dim);
                    }
                    for (const auto &piece : g.pieces) {
                        const auto &t =
                            spec.tables[static_cast<std::size_t>(piece.table)];
                        const double p = t.expectedLookups(spec.mean_items) /
                                         static_cast<double>(piece.ways);
                        pool += p;
                        cost += p * tableLookupNs(t, g.shard);
                        g.sum_dims += static_cast<double>(t.dim);
                    }
                    g.lookup_ns =
                        pool > 0.0 ? cost / pool : cfg.lookup_base_ns;
                    ni.groups.push_back(g);
                }
            }
            nets.push_back(std::move(ni));
        }
    }

    // -- Helpers -------------------------------------------------------------

    void
    span(trace::Layer layer, int shard, int net, int batch,
         sim::SimTime begin, sim::SimTime end, std::uint64_t request_id)
    {
        trace::Span s;
        s.request_id = request_id;
        s.shard_id = shard;
        s.net_id = net;
        s.batch_id = batch;
        s.layer = layer;
        s.begin = begin;
        s.end = end;
        collector.addSpan(s);
    }

    std::int64_t
    batchItems(const Active *a, int b) const
    {
        const std::int64_t base = a->req->items / a->nb;
        const std::int64_t rem = a->req->items % a->nb;
        return base + (b < rem ? 1 : 0);
    }

    /** Split a request-level lookup count across batches. */
    std::int64_t
    batchShare(std::int64_t total, int nb, int b) const
    {
        const std::int64_t base = total / nb;
        const std::int64_t rem = total % nb;
        return base + (b < rem ? 1 : 0);
    }

    /** Grant an intra-request batch slot (FIFO). */
    void
    acquireSlot(Active *a, sim::EventFn fn)
    {
        if (a->slots_free > 0) {
            --a->slots_free;
            fn();
        } else {
            a->slot_waiters.push_back(std::move(fn));
        }
    }

    void
    releaseSlot(Active *a)
    {
        if (!a->slot_waiters.empty()) {
            auto next = std::move(a->slot_waiters.front());
            a->slot_waiters.pop_front();
            engine.schedule(0, sim::kEvGrant, std::move(next));
        } else {
            ++a->slots_free;
        }
    }

    /** Request-level lookups routed to each group of the net. */
    void
    computeNetLookups(Active *a, const NetInfo &ni)
    {
        a->group_lookups.assign(ni.groups.size(), 0);
        a->inline_lookups = 0;
        const auto &lk = a->req->table_lookups;
        if (ni.groups.empty()) {
            for (const auto &t : spec.tables)
                if (t.net_id == ni.net_id)
                    a->inline_lookups +=
                        lk[static_cast<std::size_t>(t.id)];
            return;
        }
        for (std::size_t gi = 0; gi < ni.groups.size(); ++gi) {
            const Group &g = ni.groups[gi];
            std::int64_t total = 0;
            for (int tid : g.whole_tables)
                total += lk[static_cast<std::size_t>(tid)];
            for (const auto &piece : g.pieces) {
                const std::int64_t n =
                    lk[static_cast<std::size_t>(piece.table)];
                const std::int64_t base = n / piece.ways;
                const std::int64_t rem = n % piece.ways;
                // Rotate the remainder by request id so a pooling-factor-1
                // table touches exactly one (rotating) piece per request.
                const auto offset = static_cast<int>(
                    (piece.piece + piece.ways -
                     static_cast<int>(a->req->id %
                                      static_cast<std::uint64_t>(
                                          piece.ways))) %
                    piece.ways);
                total += base + (offset < rem ? 1 : 0);
            }
            a->group_lookups[gi] = total;
        }
    }

    // -- Request lifecycle ----------------------------------------------------

    void
    unregisterLive(Active *a)
    {
        Active **p = live_requests.find(a->st.id);
        if (p != nullptr && *p == a)
            live_requests.erase(a->st.id);
    }

    /** Drop a request without executing it; stats record the reason. */
    void
    shedRequest(Active *a, ShedReason reason)
    {
        unregisterLive(a);
        if (tr)
            tr->end(a->sp_root, engine.now(), obs::kFlagShed);
        a->st.shed_reason = reason;
        a->st.completion = engine.now();
        a->st.e2e = a->st.completion - a->st.arrival;
        results->push_back(a->st);
        const RequestStats st = a->st;
        auto on_complete = std::move(a->on_complete);
        releaseActive(a);
        if (on_complete)
            on_complete(st);
    }

    /** Retire one batch's bookkeeping (ops refs, registry). */
    void
    destroyBatch(BatchState *bt)
    {
        if (tr) {
            // Shed drains reach here with the wait/exec spans still
            // open; close them as cancelled debris.
            tr->end(bt->sp_embed, engine.now(), obs::kFlagCancelled);
            tr->end(bt->sp_batch, engine.now(), obs::kFlagCancelled);
        }
        for (RpcOp *op : bt->ops)
            derefOp(op);
        auto &lb = bt->req->live_batches;
        lb.erase(std::remove(lb.begin(), lb.end(), bt), lb.end());
        releaseBatch(bt);
    }

    /**
     * Refund the unexecuted fraction `f` of an aborted attempt's cpu_*
     * charges from its request's stats. Shared by the hedge-race
     * cancellation (cancelSibling) and the mid-flight shed abort
     * (cancelAttemptForShed), which must reverse the identical buckets
     * the execution path charged.
     */
    void
    refundAttemptCharges(Active *a, const AttemptExec &ex, double f)
    {
        a->st.cpu_service_ns -=
            f * static_cast<double>(ex.service + ex.overhead);
        a->st.cpu_serde_ns -= f * static_cast<double>(ex.serde);
        a->st.cpu_ops_ns -= f * static_cast<double>(ex.op_ns);
        a->st.shard_op_ns[ex.sidx] -= f * static_cast<double>(ex.op_ns);
        a->st.shard_net_op_ns[ex.sidx * spec.nets.size() + ex.nidx] -=
            f * static_cast<double>(ex.op_ns);
    }

    /**
     * Abort one *executing* attempt of a shed request: release its core,
     * stop the clock on its busy period, and settle the request's
     * accounting the way cancelSibling does — refund the unexecuted
     * remainder of the cpu_* charges (only the consumed part was real
     * work) and reverse the hedge-waste pre-charge entirely: a shed
     * abort is not a hedge outcome, so hedge_wasted_cpu_ns stays a pure
     * hedge-race metric (all zero when hedging is off). Must run BEFORE
     * the shed stats are emitted.
     */
    void
    cancelAttemptForShed(RpcOp *op, int idx)
    {
        AttemptExec &ex = op->exec[idx];
        ex.cancelled = true;
        ex.executing = false;
        if (tr) {
            tr->end(ex.sp_exec, engine.now(), obs::kFlagCancelled);
            tr->end(ex.sp_attempt, engine.now(), obs::kFlagCancelled);
        }
        const sim::Duration consumed = engine.now() - ex.exec_start;
        const sim::Duration saved = ex.busy - consumed;
        const double f = ex.busy > 0 ? static_cast<double>(saved) /
                                           static_cast<double>(ex.busy)
                                     : 0.0;
        Active *a = op->bt->req;
        refundAttemptCharges(a, ex, f);
        a->st.hedge_wasted_cpu_ns -= static_cast<double>(ex.busy);
        if (idx == 1)
            ++hedge_cancelled; // conservation: this backup ends "cancelled"
        sparse_cores[static_cast<std::size_t>(ex.server)]->release();
    }

    /**
     * Shed an executing request — deadline blown (cancel_in_flight) or
     * upstream failure (fault layer): cancel every
     * outstanding sparse RPC — queued attempts release their slots at
     * grant, on-wire attempts die on arrival, executing attempts abort
     * now with their charges settled — THEN emit the shed stats (so they
     * carry no phantom pre-charges), then retire the fully-cancelled
     * batches. The remaining main-shard machinery (dense phases already
     * on cores, queued batch grants) drains through shed guards that
     * charge no new work; the Active is deleted once its last batch
     * drains.
     */
    void
    shedMidFlight(Active *a, ShedReason reason)
    {
        a->shed_mid_flight = true;
        unregisterLive(a);

        // 1. Cancel outstanding fan-out and settle accounting. Batch
        // retirement waits until after stats emission because the last
        // batchDone may delete the Active.
        const std::vector<BatchState *> batches = a->live_batches;
        std::vector<int> cancelled_now(batches.size(), 0);
        for (std::size_t bi = 0; bi < batches.size(); ++bi) {
            for (RpcOp *op : batches[bi]->ops) {
                if (op->won)
                    continue; // decided: response delivered or in flight
                op->won = true; // poison: remaining attempts self-cancel
                op->shed = true;
                if (tr)
                    tr->end(op->sp_op, engine.now(), obs::kFlagCancelled);
                ++shed_cancelled_rpcs;
                ++cancelled_now[bi];
                for (int i = 0; i < 2; ++i)
                    if (op->exec[i].executing)
                        cancelAttemptForShed(op, i);
            }
        }

        // 2. Emit the settled stats. The root span closes here, at the
        // moment the client gives up; the remaining machinery drains as
        // cancelled debris spans that may outlive it.
        if (tr)
            tr->end(a->sp_root, engine.now(), obs::kFlagShed);
        a->st.shed_reason = reason;
        a->st.completion = engine.now();
        a->st.e2e = a->st.completion - a->st.arrival;
        results->push_back(a->st);
        const RequestStats st = a->st;
        auto on_complete = std::move(a->on_complete);
        if (on_complete)
            on_complete(st);

        // 3. Retire batches with nothing left in flight.
        for (std::size_t bi = 0; bi < batches.size(); ++bi) {
            BatchState *bt = batches[bi];
            bt->pending -= cancelled_now[bi];
            if (bt->pending == 0 && cancelled_now[bi] > 0) {
                destroyBatch(bt);
                releaseSlot(a);
                batchDone(a);
            }
        }
    }

    /** The armed deadline timer; a is validated via live_requests. */
    void
    shedTimerFired(std::uint64_t id, Active *a)
    {
        Active **p = live_requests.find(id);
        if (p == nullptr || *p != a)
            return; // completed or already shed
        if (a->finishing)
            return; // final response serde underway; let it complete
        shedMidFlight(a, ShedReason::DeadlineExceeded);
    }

    // -- Injected-fault machinery (runtime control surface) ------------------

    /**
     * Propagate a health transition to the service directory after the
     * configured discovery lag. Stale updates are dropped: if the
     * replica's liveness changed again within the lag (kill -> restore),
     * the earlier timer must not flap the directory backwards — the
     * later timer carries the current truth.
     */
    void
    scheduleHealthUpdate(int server, bool healthy)
    {
        const auto apply = [this, server, healthy] {
            const bool dead =
                replica_dead[static_cast<std::size_t>(server)] != 0;
            if (dead == !healthy)
                directory.setServerHealth(server, healthy);
        };
        const sim::Duration lag = cfg.faults.discovery_lag_ns;
        if (lag <= 0)
            apply();
        else
            engine.schedule(lag, sim::kEvTimer, apply);
    }

    void
    killReplica(int server)
    {
        assert(server >= 0 &&
               static_cast<std::size_t>(server) < sparse_cores.size());
        const auto s = static_cast<std::size_t>(server);
        if (replica_dead[s])
            return;
        replica_dead[s] = 1;
        ++replica_gen[s]; // dooms queued and executing work
        ++fault_stats.kills;
        scheduleHealthUpdate(server, false);
    }

    void
    restoreReplica(int server)
    {
        assert(server >= 0 &&
               static_cast<std::size_t>(server) < sparse_cores.size());
        const auto s = static_cast<std::size_t>(server);
        if (!replica_dead[s])
            return;
        replica_dead[s] = 0;
        ++replica_gen[s]; // outage-era work stays lost after revival
        ++fault_stats.restores;
        scheduleHealthUpdate(server, true);
    }

    /**
     * An attempt's target turned out unreachable (dead replica,
     * partition, lost in a crash, or unresolvable shard) and its RPC
     * timeout — or immediate resolution error — has surfaced to the
     * client. Consumes the attempt's op reference: either the failover
     * retry relaunches under the same reference, or the request fails
     * upstream and the reference drops.
     */
    void
    attemptFailed(RpcOp *op, int idx)
    {
        if (op->won) {
            // Race decided while the timeout ran (sibling answered, or
            // the request was shed): this is just debris to drop.
            if (tr)
                tr->end(op->exec[idx].sp_attempt, engine.now(),
                        loseFlags(op) | obs::kFlagFault);
            if (idx == 1)
                ++hedge_cancelled;
            derefOp(op);
            return;
        }
        AttemptExec &ex = op->exec[idx];
        if (tr)
            tr->end(ex.sp_attempt, engine.now(),
                    obs::kFlagCancelled | obs::kFlagFault);
        const int failed_server = ex.server;
        ex = AttemptExec{}; // fresh slot for a potential relaunch
        if (idx == 0 && op->retries < cfg.faults.max_attempt_retries) {
            ++op->retries;
            ++fault_stats.retries;
            Active *a = op->bt->req;
            // Failover re-dispatch: the serialized payload is reused (no
            // second serde charge, like a hedge), but dispatch CPU is
            // paid again and resolution avoids the failed server.
            a->st.cpu_service_ns += static_cast<double>(
                scaled(service.clientDispatchNs(), mainScale()));
            ex.exclude = failed_server;
            launchAttempt(op, /*is_hedge=*/false);
            return; // the relaunched attempt inherits this reference
        }
        if (idx == 1) {
            // A failed hedge never escalates: the primary (and its
            // retries) still own the op; the backup just dissolves.
            ++hedge_cancelled;
            derefOp(op);
            return;
        }
        failUpstream(op->bt->req);
        derefOp(op);
    }

    /**
     * Terminal upstream failure: a sparse RPC exhausted its failover
     * retries. The whole request is shed through the mid-flight drain
     * machinery (outstanding attempts cancel, queued grants drain,
     * charges settle) with ShedReason::UpstreamFailure.
     */
    void
    failUpstream(Active *a)
    {
        if (a->shed_mid_flight || a->finishing)
            return; // already draining, or past the failure point
        ++fault_stats.upstream_failures;
        shedMidFlight(a, ShedReason::UpstreamFailure);
    }

    void
    inject(const workload::Request &req,
           std::function<void(const RequestStats &)> on_complete,
           sim::SimTime arrival = -1)
    {
        Active *a = active_pool.acquire();
        a->req = &req;
        a->st.id = req.id;
        a->st.items = req.items;
        a->nb = static_cast<int>(
            (req.items + batchSize() - 1) / batchSize());
        a->st.batches = a->nb;
        a->st.shard_op_ns.assign(
            static_cast<std::size_t>(std::max(plan.numShards(), 1)), 0.0);
        a->st.shard_net_op_ns.assign(
            static_cast<std::size_t>(std::max(plan.numShards(), 1)) *
                spec.nets.size(),
            0.0);
        a->on_complete = std::move(on_complete);
        a->slots_free = std::max(1, cfg.request_parallelism);
        a->st.arrival = arrival >= 0 ? arrival : engine.now();

        if (tr) {
            a->sp_root = tr->begin(a->st.id, obs::SpanKind::Request,
                                   obs::kNoSpan, a->st.arrival);
            // A backdated arrival means the dynamic batcher held the
            // request while coalescing riders.
            if (a->st.arrival < engine.now())
                tr->record(a->st.id, obs::SpanKind::BatchCoalesce,
                           a->sp_root, a->st.arrival, engine.now());
        }

        // Admission control: cap the main-shard wait queue at arrival.
        if (cfg.admission.max_main_queue > 0 &&
            main_cores->queued() >=
                static_cast<std::size_t>(cfg.admission.max_main_queue)) {
            shedRequest(a, ShedReason::QueueFull);
            return;
        }

        // Mid-flight deadline enforcement: arm a timer that sheds the
        // request and cancels its outstanding sparse RPCs if it is still
        // executing when its deadline passes.
        if (shedTimersEnabled()) {
            live_requests.insert(a->st.id, a);
            const sim::Duration delay = std::max<sim::Duration>(
                0,
                a->st.arrival + cfg.admission.deadline_ns - engine.now());
            const std::uint64_t id = a->st.id;
            engine.schedule(delay, sim::kEvTimer,
                            [this, id, a] { shedTimerFired(id, a); });
        }

        const sim::SimTime q0 = engine.now();
        main_cores->acquire([this, a, q0] {
            // Shed by the mid-flight timer while queued: stats are out,
            // nothing started, so the Active just evaporates.
            if (a->shed_mid_flight) {
                main_cores->release();
                releaseActive(a);
                return;
            }
            a->st.queue_wait += engine.now() - q0;
            // Deadline-aware shedding: don't burn a worker core on a
            // request whose deadline already passed while it queued.
            if (cfg.admission.deadline_ns > 0 &&
                engine.now() - a->st.arrival > cfg.admission.deadline_ns) {
                main_cores->release();
                shedRequest(a, ShedReason::DeadlineExceeded);
                return;
            }
            const sim::Duration handler =
                scaled(service.handlerNs() / 2, mainScale());
            const std::int64_t req_bytes = netsim::rankingRequestBytes(
                spec.request_bytes_per_item, a->req->items,
                a->req->totalLookups());
            const sim::Duration deserde =
                scaled(service.serdeNs(req_bytes), mainScale());
            a->st.lat_service += handler;
            a->st.cpu_service_ns += static_cast<double>(handler);
            a->st.lat_serde += deserde;
            a->st.cpu_serde_ns += static_cast<double>(deserde);
            span(trace::Layer::RequestSerDe, trace::kMainShard, -1, -1,
                 engine.now(), engine.now() + handler + deserde, a->st.id);
            if (tr) {
                if (engine.now() > q0)
                    tr->record(a->st.id, obs::SpanKind::QueueWait,
                               a->sp_root, q0, engine.now());
                tr->record(a->st.id, obs::SpanKind::Deserialize, a->sp_root,
                           engine.now(), engine.now() + handler + deserde);
            }
            engine.schedule(handler + deserde, sim::kEvMainCompute, [this, a] {
                main_cores->release();
                if (a->shed_mid_flight) {
                    // Shed during request deserde; nothing queued.
                    releaseActive(a);
                    return;
                }
                startNet(a);
            });
        });
    }

    void
    startNet(Active *a)
    {
        if (a->net_idx >= nets.size()) {
            finishRequest(a);
            return;
        }
        const NetInfo &ni = nets[a->net_idx];
        computeNetLookups(a, ni);
        a->net_embedded_max = 0;
        a->batches_left = a->nb;
        if (tr)
            a->sp_net =
                tr->begin(a->st.id, obs::SpanKind::NetPhase, a->sp_root,
                          engine.now(), obs::kMainShard, ni.net_id);
        // Framework scheduling cost appears once on the net's critical
        // path (batches pay it in parallel).
        a->st.lat_net_overhead += scaled(
            service.netOverheadNs(static_cast<std::int64_t>(ni.groups.size())),
            mainScale());
        for (int b = 0; b < a->nb; ++b)
            acquireSlot(a, [this, a, b] { startBatch(a, b); });
    }

    void
    startBatch(Active *a, int b)
    {
        if (a->shed_mid_flight) {
            // Slot granted after the shed: the batch never starts.
            releaseSlot(a);
            batchDone(a);
            return;
        }
        const NetInfo *nip0 = &nets[a->net_idx];
        const sim::SimTime q0 = engine.now();
        obs::SpanId sp_batch = obs::kNoSpan;
        if (tr)
            sp_batch = tr->begin(a->st.id, obs::SpanKind::BatchExec,
                                 a->sp_net, q0, obs::kMainShard,
                                 nets[a->net_idx].net_id, b);
        main_cores->acquire([this, a, nip0, b, q0, sp_batch] {
            if (a->shed_mid_flight) {
                if (tr)
                    tr->end(sp_batch, engine.now(), obs::kFlagCancelled);
                main_cores->release();
                releaseSlot(a);
                batchDone(a);
                return;
            }
            if (tr && engine.now() > q0)
                tr->record(a->st.id, obs::SpanKind::QueueWait, sp_batch, q0,
                           engine.now(), obs::kMainShard,
                           nip0->net_id, b);
            const NetInfo &ni = *nip0;
            const std::int64_t bitems = batchItems(a, b);
            const double dense_total =
                ni.dense_ns_per_item * static_cast<double>(bitems) +
                ni.dense_fixed_ns;
            const sim::Duration overhead = scaled(
                service.netOverheadNs(
                    static_cast<std::int64_t>(ni.groups.size())),
                mainScale());
            const sim::Duration bottom =
                scaled(dense_total * cfg.bottom_fraction, mainScale());
            const sim::Duration top =
                scaled(dense_total * (1.0 - cfg.bottom_fraction),
                       mainScale());
            a->st.cpu_service_ns += static_cast<double>(overhead);
            a->st.cpu_ops_ns += static_cast<double>(bottom + top);
            a->st.main_op_ns += static_cast<double>(bottom + top);

            if (ni.groups.empty()) {
                // Singular: SLS runs inline inside the batch.
                const std::int64_t lk =
                    batchShare(a->inline_lookups, a->nb, b);
                const sim::Duration sparse =
                    scaled(static_cast<double>(lk) * ni.inline_lookup_ns,
                           mainScale());
                a->st.cpu_ops_ns += static_cast<double>(sparse);
                a->st.main_op_ns += static_cast<double>(sparse);
                span(trace::Layer::DenseOp, trace::kMainShard, ni.net_id, b,
                     engine.now(), engine.now() + overhead + bottom,
                     a->st.id);
                span(trace::Layer::SparseOp, trace::kMainShard, ni.net_id, b,
                     engine.now() + overhead + bottom,
                     engine.now() + overhead + bottom + sparse, a->st.id);
                span(trace::Layer::DenseOp, trace::kMainShard, ni.net_id, b,
                     engine.now() + overhead + bottom + sparse,
                     engine.now() + overhead + bottom + sparse + top,
                     a->st.id);
                if (tr) {
                    const sim::SimTime t0 = engine.now();
                    tr->record(a->st.id, obs::SpanKind::DenseBottom,
                               sp_batch, t0, t0 + overhead + bottom,
                               obs::kMainShard, ni.net_id, b);
                    tr->record(a->st.id, obs::SpanKind::InlineSparse,
                               sp_batch, t0 + overhead + bottom,
                               t0 + overhead + bottom + sparse,
                               obs::kMainShard, ni.net_id, b);
                    tr->record(a->st.id, obs::SpanKind::DenseTop, sp_batch,
                               t0 + overhead + bottom + sparse,
                               t0 + overhead + bottom + sparse + top,
                               obs::kMainShard, ni.net_id, b);
                }
                engine.schedule(
                    overhead + bottom + sparse + top, sim::kEvMainCompute,
                    [this, a, sparse, sp_batch] {
                        main_cores->release();
                        releaseSlot(a);
                        if (a->shed_mid_flight) {
                            if (tr)
                                tr->end(sp_batch, engine.now(),
                                        obs::kFlagCancelled);
                            batchDone(a);
                            return;
                        }
                        if (tr)
                            tr->end(sp_batch, engine.now());
                        a->net_embedded_max =
                            std::max(a->net_embedded_max, sparse);
                        a->max_inline_sparse =
                            std::max(a->max_inline_sparse, sparse);
                        batchDone(a);
                    });
                return;
            }

            // Distributed: serialize one request per group with work this
            // batch, then release the core while the RPCs are outstanding.
            // Groups with zero lookups are skipped entirely — DRM3's
            // row-split dominant table touches one piece per request, so
            // only ~2 shards are accessed regardless of shard count.
            const NetInfo *nip = &ni;
            std::vector<std::size_t> active;
            sim::Duration send_cpu = 0;
            for (std::size_t gi = 0; gi < ni.groups.size(); ++gi) {
                const Group &g = ni.groups[gi];
                const std::int64_t lk =
                    batchShare(a->group_lookups[gi], a->nb, b);
                if (lk == 0)
                    continue;
                // Pooled-result cache: a fresh memoized response for this
                // (net, group, batch shape) short-circuits the whole RPC —
                // no serde, no wire, no remote queue, no remote gather.
                if (result_cache.enabled()) {
                    const rpc::ResultCache::Key key{
                        ni.net_id, static_cast<int>(gi),
                        rpc::resultSignature(bitems, lk,
                                             a->req->content_hash, b)};
                    if (result_cache.lookup(key, engine.now())) {
                        ++a->st.result_cache_hits;
                        a->st.result_cache_bytes_saved +=
                            netsim::sparseResponseBytes(
                                static_cast<std::int64_t>(g.sum_dims),
                                bitems);
                        if (tr)
                            tr->record(a->st.id,
                                       obs::SpanKind::ResultCacheProbe,
                                       sp_batch, engine.now(), engine.now(),
                                       g.shard, ni.net_id, b,
                                       obs::kFlagCacheHit);
                        continue;
                    }
                    ++a->st.result_cache_misses;
                    if (tr)
                        tr->record(a->st.id, obs::SpanKind::ResultCacheProbe,
                                   sp_batch, engine.now(), engine.now(),
                                   g.shard, ni.net_id, b);
                }
                active.push_back(gi);
                const std::int64_t bytes = netsim::sparseRequestBytes(
                    lk, g.tableCount(), bitems);
                send_cpu += scaled(service.serdeNs(bytes), mainScale()) +
                            scaled(service.clientDispatchNs(), mainScale());
            }
            if (active.empty()) {
                // No sparse work anywhere this batch (or every group hit
                // the result cache): pure dense path.
                if (tr) {
                    const sim::SimTime t0 = engine.now();
                    tr->record(a->st.id, obs::SpanKind::DenseBottom,
                               sp_batch, t0, t0 + overhead + bottom,
                               obs::kMainShard, ni.net_id, b);
                    tr->record(a->st.id, obs::SpanKind::DenseTop, sp_batch,
                               t0 + overhead + bottom,
                               t0 + overhead + bottom + top,
                               obs::kMainShard, ni.net_id, b);
                }
                engine.schedule(overhead + bottom + top, sim::kEvMainCompute,
                                [this, a, sp_batch] {
                    if (tr)
                        tr->end(sp_batch, engine.now(),
                                a->shed_mid_flight ? obs::kFlagCancelled
                                                   : obs::kFlagNone);
                    main_cores->release();
                    releaseSlot(a);
                    batchDone(a);
                });
                return;
            }
            span(trace::Layer::DenseOp, trace::kMainShard, ni.net_id, b,
                 engine.now(), engine.now() + overhead + bottom, a->st.id);
            span(trace::Layer::ClientDispatch, trace::kMainShard, ni.net_id,
                 b, engine.now() + overhead + bottom,
                 engine.now() + overhead + bottom + send_cpu, a->st.id);
            if (tr) {
                const sim::SimTime t0 = engine.now();
                tr->record(a->st.id, obs::SpanKind::DenseBottom, sp_batch,
                           t0, t0 + overhead + bottom, obs::kMainShard,
                           ni.net_id, b);
                tr->record(a->st.id, obs::SpanKind::ClientSerde, sp_batch,
                           t0 + overhead + bottom,
                           t0 + overhead + bottom + send_cpu,
                           obs::kMainShard, ni.net_id, b);
            }
            engine.schedule(
                overhead + bottom + send_cpu, sim::kEvMainCompute,
                [this, a, nip, b, bitems, top, sp_batch,
                 active = std::move(active)] {
                    if (a->shed_mid_flight) {
                        // Shed during the dense phase: the fan-out is
                        // never dispatched.
                        if (tr)
                            tr->end(sp_batch, engine.now(),
                                    obs::kFlagCancelled);
                        main_cores->release();
                        releaseSlot(a);
                        batchDone(a);
                        return;
                    }
                    BatchState *bt = batch_pool.acquire();
                    bt->req = a;
                    bt->net_idx = a->net_idx;
                    bt->batch_id = b;
                    bt->batch_items = bitems;
                    bt->pending = static_cast<int>(active.size());
                    bt->dispatch_time = engine.now();
                    bt->sp_batch = sp_batch;
                    if (tr)
                        bt->sp_embed = tr->begin(
                            a->st.id, obs::SpanKind::EmbeddedWait, sp_batch,
                            engine.now(), obs::kMainShard, nip->net_id, b);
                    a->live_batches.push_back(bt);
                    for (std::size_t gi : active)
                        sendRpc(bt, *nip, gi);
                    // The async RPC ops release the worker CORE (other
                    // requests may use it) but the batch's net execution
                    // blocks on the wait op, so the intra-request slot is
                    // held until the batch completes (Fig. 3 semantics).
                    main_cores->release();
                    // Stash the top-dense time for the merge phase.
                    bt->response_bytes = 0;
                    bt->top_dense = top;
                });
        });
    }

    void
    derefOp(RpcOp *op)
    {
        if (--op->refs == 0)
            releaseOp(op);
    }

    /**
     * Span flags for an attempt self-cancelling after its op was
     * decided: a race decision makes it a loser; a shed poisons the op
     * with no winner, so the attempt is merely cancelled.
     */
    static std::uint8_t
    loseFlags(const RpcOp *op)
    {
        return op->shed ? static_cast<std::uint8_t>(obs::kFlagCancelled)
                        : static_cast<std::uint8_t>(obs::kFlagCancelled |
                                                    obs::kFlagLoser);
    }

    /** Is a backup dispatch within the hedge budget right now? */
    bool
    hedgeBudgetAllows() const
    {
        return static_cast<double>(hedges_launched + 1) <=
               cfg.hedge.max_hedge_fraction *
                   static_cast<double>(primary_rpcs);
    }

    /**
     * Queue-aware suppression: would the backup replica start this
     * attempt promptly? Peeks at the replica resolveBackup would choose;
     * the real resolution happens after the network delay and may differ,
     * but the headroom answer is the same load signal either way.
     */
    bool
    backupHasHeadroom(const RpcOp *op)
    {
        if (cfg.hedge.max_backup_outstanding == 0)
            return true;
        const auto backup = directory.resolveBackup(
            op->ni->groups[op->gi].shard, op->primary_server);
        if (!backup)
            return false;
        const auto &r = *sparse_cores[static_cast<std::size_t>(*backup)];
        return r.inUse() + r.queued() <= cfg.hedge.max_backup_outstanding;
    }

    void
    sendRpc(BatchState *bt, const NetInfo &ni, std::size_t gi)
    {
        Active *a = bt->req;
        const Group &g = ni.groups[gi];
        const std::int64_t lk =
            batchShare(a->group_lookups[gi], a->nb, bt->batch_id);
        const std::int64_t req_bytes =
            netsim::sparseRequestBytes(lk, g.tableCount(), bt->batch_items);
        // Client-side serde/dispatch CPU was spent in startBatch; account it.
        a->st.cpu_serde_ns += service.serdeNs(req_bytes) * mainScale();
        a->st.cpu_service_ns += static_cast<double>(scaled(
            service.clientDispatchNs(), mainScale()));
        ++a->st.rpc_count;
        ++primary_rpcs;
        ++shard_primary_rpcs[static_cast<std::size_t>(g.shard)];

        RpcOp *op = op_pool.acquire();
        op->bt = bt;
        op->request_id = a->st.id;
        op->ni = &ni;
        op->gi = gi;
        op->lookups = lk;
        op->req_bytes = req_bytes;
        op->dispatched = engine.now();
        op->cache_key = rpc::ResultCache::Key{
            ni.net_id, static_cast<int>(gi),
            rpc::resultSignature(bt->batch_items, lk,
                                 a->req->content_hash, bt->batch_id)};
        op->cache_epoch = result_cache.epoch();
        op->refs = 2; // the primary attempt + the batch's ops registry
        if (tr)
            op->sp_op = tr->begin(a->st.id, obs::SpanKind::RpcOp,
                                  bt->sp_embed, engine.now(), g.shard,
                                  ni.net_id, bt->batch_id);
        bt->ops.push_back(op);
        launchAttempt(op, /*is_hedge=*/false);
        maybeScheduleHedge(op);
    }

    /**
     * Arm the hedge timer at dispatch: if the primary is still unresolved
     * when the quantile-tracked deadline passes, race a backup against it
     * on a different replica. The deadline is frozen at dispatch time (the
     * tail-at-scale formulation); the budget is rechecked at fire time so
     * bursts cannot overshoot the cap.
     */
    void
    maybeScheduleHedge(RpcOp *op)
    {
        const rpc::HedgeConfig &hc = cfg.hedge;
        if (!hc.enabled)
            return;
        if (directory.replicaCount(op->ni->groups[op->gi].shard) < 2)
            return;
        const rpc::LatencyTracker &tracker =
            trackerFor(op->ni->groups[op->gi].shard);
        if (tracker.count() < std::max<std::size_t>(1, hc.min_samples))
            return;
        const sim::Duration deadline =
            tracker.deadline(hc.quantile, hc.min_deadline_ns);
        ++op->refs; // the timer (held across re-arms)
        engine.schedule(deadline, sim::kEvTimer,
                        [this, op, deadline] { hedgeTimerFired(op, deadline); });
    }

    void
    hedgeTimerFired(RpcOp *op, sim::Duration deadline)
    {
        if (op->won) {
            derefOp(op);
            return;
        }
        // Primary still on the wire (its one-way delay exceeded the
        // deadline — exactly the big-payload outliers hedging is for):
        // re-arm rather than silently dropping the hedge. The wire delay
        // is finite, so this terminates.
        if (op->primary_server < 0) {
            engine.schedule(deadline, sim::kEvTimer, [this, op, deadline] {
                hedgeTimerFired(op, deadline);
            });
            return;
        }
        // Hedge only if budget remains and the backup would not just
        // sink into another deep queue; count the skip either way so
        // under-hedging is visible in the stats.
        if (hedgeBudgetAllows() && backupHasHeadroom(op)) {
            ++hedges_launched;
            ++shard_hedges[static_cast<std::size_t>(
                op->ni->groups[op->gi].shard)];
            Active *a = op->bt->req;
            ++a->st.hedges;
            // Backup dispatch CPU; the serialized payload is reused,
            // so no second serde charge.
            a->st.cpu_service_ns += static_cast<double>(
                scaled(service.clientDispatchNs(), mainScale()));
            ++op->refs; // the backup attempt
            launchAttempt(op, /*is_hedge=*/true);
        } else {
            ++hedge_suppressed;
        }
        derefOp(op);
    }

    void
    launchAttempt(RpcOp *op, bool is_hedge)
    {
        Active *a = op->bt->req;
        const Group &g = op->ni->groups[op->gi];

        // Common random numbers: every stochastic component of an attempt
        // (wire jitter out/back, interference) draws from a stream that is
        // a pure function of the attempt's identity, not of global draw
        // order. Paired runs — hedging on vs off, one batching policy vs
        // another — then face identical per-attempt randomness, so their
        // deltas measure the policy, not reshuffled noise.
        std::uint64_t salt = a->st.id + 1;
        salt = salt * 0x100000001b3ULL ^
               static_cast<std::uint64_t>(op->ni->net_id + 1);
        salt = salt * 0x100000001b3ULL ^
               static_cast<std::uint64_t>(op->bt->batch_id + 1);
        salt = salt * 0x100000001b3ULL ^ (op->gi + 1);
        salt = salt * 0x100000001b3ULL ^ (is_hedge ? 2u : 1u);
        // Failover relaunches get a fresh identity stream (they are new
        // attempts, not replays of the failed one). retries == 0 on every
        // fault-free path, so the identity streams — and therefore paired
        // runs — are unchanged when no fault fires.
        if (op->retries > 0)
            salt = salt * 0x100000001b3ULL ^
                   static_cast<std::uint64_t>(op->retries + 2);

        AttemptExec &ex = op->exec[is_hedge ? 1 : 0];
        if (tr) {
            ex.sp_attempt = tr->begin(
                a->st.id, obs::SpanKind::RpcAttempt, op->sp_op,
                engine.now(), g.shard, op->ni->net_id, op->bt->batch_id,
                is_hedge ? obs::kFlagHedge : obs::kFlagNone);
        }

        // Main<->shard partition: the payload never reaches the shard;
        // the client's RPC timeout is the only failure signal. Forking
        // the CRN stream waits until past this early return — fork() is
        // a pure function of (seed, salt), so deferral leaves every
        // stream's values intact.
        if (shard_partitioned[static_cast<std::size_t>(g.shard)]) {
            ++fault_stats.partition_drops;
            const int idx = is_hedge ? 1 : 0;
            engine.schedule(cfg.faults.rpc_timeout_ns, sim::kEvTimer,
                            [this, op, idx] { attemptFailed(op, idx); });
            return;
        }

        AttemptCtx *ctx = attempt_pool.acquire();
        ctx->rec = trace::RpcRecord{};
        ctx->rec.request_id = a->st.id;
        ctx->rec.shard_id = g.shard;
        ctx->rec.net_id = op->ni->net_id;
        ctx->rec.batch_id = op->bt->batch_id;
        ctx->rec.dispatched = engine.now();
        ctx->rng = rng.fork(salt);

        const sim::Duration out_delay =
            link.oneWayDelay(op->req_bytes, ctx->rng);
        span(trace::Layer::Network, g.shard, op->ni->net_id,
             op->bt->batch_id, engine.now(), engine.now() + out_delay,
             a->st.id);
        if (tr)
            tr->record(a->st.id, obs::SpanKind::WireOut, ex.sp_attempt,
                       engine.now(), engine.now() + out_delay, g.shard,
                       op->ni->net_id, op->bt->batch_id);
        engine.schedule(out_delay, sim::kEvWire, [this, op, ctx, is_hedge] {
            attemptArrive(op, ctx, is_hedge);
        });
    }

    void
    attemptArrive(RpcOp *op, AttemptCtx *ctx, bool is_hedge)
    {
        // Race already decided while this attempt was on the wire.
        if (op->won) {
            // A shed poisons the op without anyone winning; only a real
            // race decision makes this attempt a loser.
            if (tr)
                tr->end(op->exec[is_hedge ? 1 : 0].sp_attempt, engine.now(),
                        loseFlags(op));
            if (is_hedge)
                ++hedge_cancelled;
            attempt_pool.release(ctx);
            derefOp(op);
            return;
        }
        const Group &g = op->ni->groups[op->gi];
        const int idx = is_hedge ? 1 : 0;
        // A failover retry excludes the server that just failed; hedge
        // backups exclude the primary as always.
        const int exclude =
            op->exec[idx].exclude >= 0
                ? op->exec[idx].exclude
                : (is_hedge ? op->primary_server : -1);
        const std::optional<int> resolved =
            is_hedge ? directory.resolveBackup(g.shard, exclude)
                     : directory.resolve(g.shard, exclude);
        // Every plan shard registers replicas at construction, so with a
        // healthy fleet resolution cannot fail. With injected faults it
        // legitimately can (every live candidate excluded or dead):
        // surface a fast client-side resolution error instead of
        // dropping the RPC (which would silently hang the request).
        if (!resolved) {
            ++fault_stats.resolution_failures;
            attempt_pool.release(ctx);
            attemptFailed(op, idx);
            return;
        }
        const int server = *resolved;
        if (!is_hedge)
            op->primary_server = server;
        const auto srv_idx = static_cast<std::size_t>(server);
        // Dead target (the pre-discovery window, or a backup forced onto
        // a corpse): nothing accepts the connection; the client times
        // out. Hedging and failover retries are what mask this gap.
        if (replica_dead[srv_idx]) {
            ++fault_stats.dead_target_attempts;
            op->exec[idx].server = server; // the retry must avoid it
            attempt_pool.release(ctx);
            engine.schedule(cfg.faults.rpc_timeout_ns, sim::kEvTimer,
                            [this, op, idx] { attemptFailed(op, idx); });
            return;
        }
        op->exec[idx].server_gen = replica_gen[srv_idx];
        const std::size_t depth = sparse_cores[srv_idx]->inUse() +
                                  sparse_cores[srv_idx]->queued() + 1;
        peak_queue[srv_idx] = std::max(peak_queue[srv_idx], depth);
        const sim::SimTime q0 = engine.now();
        sparse_cores[srv_idx]->acquire([this, op, ctx, is_hedge, q0,
                                        server] {
            // Cancelled while queued: the winner returned before this
            // attempt reached a core, so it costs nothing but its slot.
            if (op->won) {
                if (tr) {
                    AttemptExec &ex0 = op->exec[is_hedge ? 1 : 0];
                    tr->record(op->request_id,
                               obs::SpanKind::RemoteQueue, ex0.sp_attempt,
                               q0, engine.now(), ctx->rec.shard_id,
                               ctx->rec.net_id, ctx->rec.batch_id,
                               loseFlags(op));
                    tr->end(ex0.sp_attempt, engine.now(), loseFlags(op));
                }
                sparse_cores[static_cast<std::size_t>(server)]->release();
                if (is_hedge)
                    ++hedge_cancelled;
                attempt_pool.release(ctx);
                derefOp(op);
                return;
            }
            {
                // The replica died (or rebooted) while this attempt sat
                // in its queue: the queued work is lost; the client
                // discovers via its timeout, which has already elapsed
                // by core-grant time.
                const auto sg = static_cast<std::size_t>(server);
                AttemptExec &exg = op->exec[is_hedge ? 1 : 0];
                if (replica_dead[sg] || exg.server_gen != replica_gen[sg]) {
                    sparse_cores[sg]->release();
                    ++fault_stats.lost_in_service;
                    attempt_pool.release(ctx);
                    attemptFailed(op, is_hedge ? 1 : 0);
                    return;
                }
            }
            Active *a2 = op->bt->req;
            const Group &g2 = op->ni->groups[op->gi];
            // Transient interference: this attempt (not the logical RPC)
            // drew a slow event, so a hedged re-roll on another replica
            // escapes it. A persistent degradeReplica() slowdown stacks
            // on top and does NOT re-roll — every attempt on the bad
            // host pays it.
            const double interference =
                cfg.faults.straggler_prob > 0.0 &&
                        ctx->rng.bernoulli(cfg.faults.straggler_prob)
                    ? cfg.faults.straggler_multiplier
                    : 1.0;
            const double remote_scale =
                sparseScale() * interference *
                replica_degrade[static_cast<std::size_t>(server)];
            trace::RpcRecord &rec = ctx->rec;
            rec.remote_queue_ns = engine.now() - q0;
            rec.remote_service_ns =
                scaled(service.handlerNs(), remote_scale);
            rec.remote_serde_ns =
                scaled(service.serdeNs(op->req_bytes), remote_scale);
            rec.remote_net_overhead_ns =
                scaled(service.netOverheadNs(0), remote_scale);
            rec.remote_sparse_op_ns =
                scaled(static_cast<double>(op->lookups) * g2.lookup_ns,
                       remote_scale);
            const std::int64_t resp_bytes = netsim::sparseResponseBytes(
                static_cast<std::int64_t>(g2.sum_dims),
                op->bt->batch_items);
            const sim::Duration resp_serde =
                scaled(service.serdeNs(resp_bytes), remote_scale);
            rec.remote_serde_ns += resp_serde;

            // CPU accounting on the sparse shard — charged for every
            // executing attempt: duplicate hedge work is real work. A
            // mid-execution cancellation refunds the unexecuted part.
            a2->st.cpu_service_ns += static_cast<double>(
                rec.remote_service_ns + rec.remote_net_overhead_ns);
            a2->st.cpu_serde_ns += static_cast<double>(rec.remote_serde_ns);
            a2->st.cpu_ops_ns +=
                static_cast<double>(rec.remote_sparse_op_ns);
            const auto sidx = static_cast<std::size_t>(g2.shard);
            const auto nidx = static_cast<std::size_t>(op->bt->net_idx);
            a2->st.shard_op_ns[sidx] +=
                static_cast<double>(rec.remote_sparse_op_ns);
            a2->st.shard_net_op_ns[sidx * spec.nets.size() + nidx] +=
                static_cast<double>(rec.remote_sparse_op_ns);

            const sim::Duration busy =
                rec.remote_service_ns + rec.remote_serde_ns +
                rec.remote_net_overhead_ns + rec.remote_sparse_op_ns;
            // Pre-charge this attempt's busy time as wasted; the winning
            // attempt reverses it below. A losing attempt may outlive its
            // request (the winner's response completes it), so the loser's
            // completion must not touch request state — only the
            // pre-charge/reversal protocol keeps per-request wasted-work
            // accounting memory-safe.
            a2->st.hedge_wasted_cpu_ns += static_cast<double>(busy);
            AttemptExec &ex = op->exec[is_hedge ? 1 : 0];
            ex.executing = true;
            ex.server = server;
            ex.exec_start = engine.now();
            ex.busy = busy;
            ex.service = rec.remote_service_ns;
            ex.serde = rec.remote_serde_ns;
            ex.overhead = rec.remote_net_overhead_ns;
            ex.op_ns = rec.remote_sparse_op_ns;
            ex.sidx = sidx;
            ex.nidx = nidx;
            span(trace::Layer::SparseOp, g2.shard, op->ni->net_id,
                 op->bt->batch_id, engine.now(), engine.now() + busy,
                 a2->st.id);
            if (tr) {
                if (engine.now() > q0)
                    tr->record(a2->st.id, obs::SpanKind::RemoteQueue,
                               ex.sp_attempt, q0, engine.now(), g2.shard,
                               op->ni->net_id, op->bt->batch_id);
                ex.sp_exec = tr->begin(a2->st.id,
                                       obs::SpanKind::RemoteCompute,
                                       ex.sp_attempt, engine.now(), g2.shard,
                                       op->ni->net_id, op->bt->batch_id);
            }
            engine.schedule(busy, sim::kEvSparseCompute,
                            [this, op, ctx, resp_bytes, busy,
                             is_hedge, server] {
                AttemptExec &self = op->exec[is_hedge ? 1 : 0];
                self.executing = false;
                if (self.cancelled) {
                    // The winner aborted this attempt mid-service and
                    // already released the core and settled accounting.
                    attempt_pool.release(ctx);
                    derefOp(op);
                    return;
                }
                const auto sfd = static_cast<std::size_t>(server);
                if (replica_dead[sfd] ||
                    self.server_gen != replica_gen[sfd]) {
                    // The replica died mid-service: the compute was
                    // genuinely burned (charges stand) but the response
                    // is lost with the replica.
                    self.cancelled = true;
                    sparse_cores[sfd]->release();
                    ++fault_stats.lost_in_service;
                    if (tr)
                        tr->end(self.sp_exec, engine.now(),
                                obs::kFlagCancelled | obs::kFlagFault);
                    attempt_pool.release(ctx);
                    if (op->won) {
                        // A sibling already answered; this was duplicate
                        // work and stays accounted as such.
                        if (tr)
                            tr->end(self.sp_attempt, engine.now(),
                                    loseFlags(op) | obs::kFlagFault);
                        wasted_busy_ns += static_cast<double>(busy);
                        if (is_hedge)
                            ++hedge_losses;
                        derefOp(op);
                        return;
                    }
                    // Reverse the hedge pre-charge: a fault loss is not
                    // a hedge outcome, so hedge_wasted_cpu_ns stays a
                    // pure hedge-race metric.
                    op->bt->req->st.hedge_wasted_cpu_ns -=
                        static_cast<double>(busy);
                    attemptFailed(op, is_hedge ? 1 : 0);
                    return;
                }
                self.finished = true;
                sparse_cores[static_cast<std::size_t>(server)]->release();
                if (op->won) {
                    // Lost the race after executing to completion (the
                    // winner finished in the same event round): wasted
                    // duplicate work. The request may already be
                    // finalized, so only simulation-level counters are
                    // touched here.
                    if (tr) {
                        tr->end(self.sp_exec, engine.now(), obs::kFlagLoser);
                        tr->end(self.sp_attempt, engine.now(),
                                obs::kFlagLoser);
                    }
                    wasted_busy_ns += static_cast<double>(busy);
                    if (is_hedge)
                        ++hedge_losses;
                    attempt_pool.release(ctx);
                    derefOp(op);
                    return;
                }
                if (tr)
                    tr->end(self.sp_exec, engine.now());
                op->won = true;
                op->bt->req->st.hedge_wasted_cpu_ns -=
                    static_cast<double>(busy);
                if (is_hedge) {
                    ++hedge_wins;
                    ++shard_hedge_wins[static_cast<std::size_t>(
                        op->ni->groups[op->gi].shard)];
                    ++op->bt->req->st.hedge_wins;
                }
                cancelSibling(op, is_hedge ? 1 : 0);
                BatchState *bt = op->bt;
                const sim::SimTime dispatched = op->dispatched;
                const rpc::ResultCache::Key ckey = op->cache_key;
                const std::uint64_t cepoch = op->cache_epoch;
                // Span ids survive the op (they index the tracer), so
                // the response path can close the winning attempt and
                // the logical op at arrival without touching the op.
                const obs::SpanId sp_attempt = self.sp_attempt;
                const obs::SpanId sp_op = op->sp_op;
                derefOp(op); // response path only needs the batch
                const sim::Duration back =
                    link.oneWayDelay(resp_bytes, ctx->rng);
                span(trace::Layer::Network, ctx->rec.shard_id,
                     ctx->rec.net_id, ctx->rec.batch_id, engine.now(),
                     engine.now() + back, bt->req->st.id);
                if (tr)
                    tr->record(bt->req->st.id, obs::SpanKind::WireBack,
                               sp_attempt, engine.now(),
                               engine.now() + back, ctx->rec.shard_id,
                               ctx->rec.net_id, ctx->rec.batch_id);
                engine.schedule(back, sim::kEvWire,
                                [this, bt, resp_bytes, ctx, dispatched,
                                 ckey, cepoch, sp_attempt, sp_op] {
                    // The tracker sees the client-observed latency of the
                    // *logical* RPC (primary dispatch to winning
                    // response), which is what the next hedge deadline
                    // must be quantile-of.
                    trackerFor(ctx->rec.shard_id)
                        .add(engine.now() - dispatched);
                    if (tr) {
                        // A response landing after a mid-flight shed is
                        // discarded: its spans close as cancelled debris.
                        const std::uint8_t fl = bt->req->shed_mid_flight
                                                    ? obs::kFlagCancelled
                                                    : obs::kFlagNone;
                        tr->end(sp_attempt, engine.now(), fl);
                        tr->end(sp_op, engine.now(), fl);
                    }
                    // Memoize the pooled response for repeats of this
                    // (net, group, batch shape) — unless the snapshot it
                    // was pooled from was invalidated while on the wire.
                    result_cache.insert(ckey, resp_bytes, engine.now(),
                                        cepoch);
                    responseArrive(bt, resp_bytes, ctx->rec);
                    attempt_pool.release(ctx);
                });
            });
        });
    }

    /**
     * Tied-request cancellation: the winning attempt aborts an executing
     * sibling mid-service, reclaiming the remainder of its busy time (the
     * servers notify each other, so the loser does not run to
     * completion). This is what makes hedging capacity-positive under
     * load — aborting a straggling primary after the fast backup answers
     * refunds most of the straggler's inflated service time. Runs on the
     * winner's completion path, where the request is guaranteed alive.
     */
    void
    cancelSibling(RpcOp *op, int winner_idx)
    {
        AttemptExec &loser = op->exec[1 - winner_idx];
        if (!loser.executing || loser.finished || loser.cancelled)
            return;
        loser.cancelled = true;
        loser.executing = false;
        if (tr) {
            const std::uint8_t fl = obs::kFlagCancelled | obs::kFlagLoser;
            tr->end(loser.sp_exec, engine.now(), fl);
            tr->end(loser.sp_attempt, engine.now(), fl);
        }
        const sim::Duration consumed = engine.now() - loser.exec_start;
        const sim::Duration saved = loser.busy - consumed;
        const double f =
            loser.busy > 0
                ? static_cast<double>(saved) /
                      static_cast<double>(loser.busy)
                : 0.0;
        Active *a = op->bt->req;
        refundAttemptCharges(a, loser, f);
        // The pre-charge covered the full busy period; only the consumed
        // part was actually wasted.
        a->st.hedge_wasted_cpu_ns -= static_cast<double>(saved);
        wasted_busy_ns += static_cast<double>(consumed);
        if (winner_idx == 0)
            ++hedge_losses; // the backup was the aborted attempt
        sparse_cores[static_cast<std::size_t>(loser.server)]->release();
    }

    void
    responseArrive(BatchState *bt, std::int64_t resp_bytes,
                   trace::RpcRecord rec)
    {
        Active *a = bt->req;
        if (a->shed_mid_flight) {
            // The client gave up on this request; the late response is
            // discarded at arrival (no deserde, no top dense).
            if (--bt->pending > 0)
                return;
            destroyBatch(bt);
            releaseSlot(a);
            batchDone(a);
            return;
        }
        rec.completed = engine.now();
        collector.addRpc(rec);
        if (!a->has_bounding ||
            rec.outstanding() > a->bounding.outstanding()) {
            a->bounding = rec;
            a->has_bounding = true;
        }
        bt->response_bytes += resp_bytes;
        bt->last_response = engine.now();
        if (--bt->pending > 0)
            return;

        // All shards answered: deserialize responses + top dense.
        const sim::Duration embedded = bt->last_response - bt->dispatch_time;
        span(trace::Layer::EmbeddedWait, trace::kMainShard,
             nets[bt->net_idx].net_id, bt->batch_id, bt->dispatch_time,
             bt->last_response, a->st.id);
        if (tr)
            tr->end(bt->sp_embed, bt->last_response);
        const sim::SimTime merge0 = engine.now();
        main_cores->acquireFront([this, a, bt, embedded, merge0] {
            if (a->shed_mid_flight) {
                main_cores->release();
                destroyBatch(bt);
                releaseSlot(a);
                batchDone(a);
                return;
            }
            const sim::Duration resp_deserde =
                scaled(service.serdeNs(bt->response_bytes), mainScale());
            const sim::Duration top = bt->top_dense;
            a->st.cpu_serde_ns += static_cast<double>(resp_deserde);
            span(trace::Layer::DenseOp, trace::kMainShard,
                 nets[bt->net_idx].net_id, bt->batch_id, engine.now(),
                 engine.now() + resp_deserde + top, a->st.id);
            if (tr) {
                const int net_id = nets[bt->net_idx].net_id;
                if (engine.now() > merge0)
                    tr->record(a->st.id, obs::SpanKind::QueueWait,
                               bt->sp_batch, merge0, engine.now(),
                               obs::kMainShard, net_id, bt->batch_id);
                tr->record(a->st.id, obs::SpanKind::ResponseDeserde,
                           bt->sp_batch, engine.now(),
                           engine.now() + resp_deserde, obs::kMainShard,
                           net_id, bt->batch_id);
                tr->record(a->st.id, obs::SpanKind::DenseTop, bt->sp_batch,
                           engine.now() + resp_deserde,
                           engine.now() + resp_deserde + top,
                           obs::kMainShard, net_id, bt->batch_id);
            }
            engine.schedule(resp_deserde + top, sim::kEvMainCompute,
                            [this, a, bt, embedded] {
                main_cores->release();
                releaseSlot(a);
                if (a->shed_mid_flight) {
                    destroyBatch(bt);
                    batchDone(a);
                    return;
                }
                if (tr)
                    tr->end(bt->sp_batch, engine.now());
                a->net_embedded_max =
                    std::max(a->net_embedded_max, embedded);
                destroyBatch(bt);
                batchDone(a);
            });
        });
    }

    void
    batchDone(Active *a)
    {
        if (--a->batches_left > 0)
            return;
        if (a->shed_mid_flight) {
            // Last batch of the shed request drained; its stats were
            // emitted at shed time, so the carcass just goes away.
            if (tr)
                tr->end(a->sp_net, engine.now(), obs::kFlagCancelled);
            releaseActive(a);
            return;
        }
        if (tr)
            tr->end(a->sp_net, engine.now());
        a->st.lat_embedded += a->net_embedded_max;
        ++a->net_idx;
        startNet(a);
    }

    void
    finishRequest(Active *a)
    {
        // Past the point of useful shedding: the sparse work is done and
        // only the response serde remains, so the shed timer stands down.
        a->finishing = true;
        const sim::SimTime q0 = engine.now();
        main_cores->acquireFront([this, a, q0] {
            const std::int64_t resp_bytes =
                netsim::rankingResponseBytes(a->req->items);
            const sim::Duration resp_serde =
                scaled(service.serdeNs(resp_bytes), mainScale());
            const sim::Duration handler =
                scaled(service.handlerNs() / 2, mainScale());
            a->st.lat_serde += resp_serde;
            a->st.cpu_serde_ns += static_cast<double>(resp_serde);
            a->st.lat_service += handler;
            a->st.cpu_service_ns += static_cast<double>(handler);
            span(trace::Layer::RequestSerDe, trace::kMainShard, -1, -1,
                 engine.now(), engine.now() + resp_serde + handler,
                 a->st.id);
            if (tr) {
                if (engine.now() > q0)
                    tr->record(a->st.id, obs::SpanKind::QueueWait,
                               a->sp_root, q0, engine.now());
                tr->record(a->st.id, obs::SpanKind::ResponseSerialize,
                           a->sp_root, engine.now(),
                           engine.now() + resp_serde + handler);
            }
            engine.schedule(resp_serde + handler, sim::kEvMainCompute,
                            [this, a] {
                main_cores->release();
                finalize(a);
            });
        });
    }

    void
    finalize(Active *a)
    {
        unregisterLive(a);
        // Root end carries the hedge-win flag so the sampler's flag
        // trigger can keep hedge-win traces; the feed observe comes
        // AFTER the root end (and thus after the sampler's decision),
        // so the rolling tail threshold never includes the request
        // being judged, and the exemplar can record whether that
        // request's trace was actually retained.
        if (tr) {
            tr->end(a->sp_root, engine.now(),
                    a->st.hedge_wins > 0
                        ? static_cast<std::uint8_t>(obs::kFlagHedge)
                        : static_cast<std::uint8_t>(obs::kFlagNone));
        }
        a->st.completion = engine.now();
        a->st.e2e = a->st.completion - a->st.arrival;
        if (cfg.latency_feed != nullptr) {
            const bool kept =
                tr != nullptr && tr->lastRootDecision() ==
                                     obs::SpanTracer::RootDecision::Kept;
            cfg.latency_feed->observe(
                static_cast<double>(a->st.completion) * 1e-9, a->st.e2e,
                a->st.id, kept);
        }
        const sim::Duration accounted =
            a->st.queue_wait + a->st.lat_serde + a->st.lat_service +
            a->st.lat_net_overhead + a->st.lat_embedded;
        a->st.lat_dense = std::max<sim::Duration>(0, a->st.e2e - accounted);

        if (a->has_bounding) {
            a->st.emb_sparse_op = a->bounding.remote_sparse_op_ns;
            a->st.emb_serde = a->bounding.remote_serde_ns;
            a->st.emb_service = a->bounding.remote_service_ns;
            a->st.emb_net_overhead = a->bounding.remote_net_overhead_ns;
            a->st.emb_network = a->bounding.networkLatency();
            a->st.emb_queue = a->bounding.remote_queue_ns;
        } else {
            a->st.emb_sparse_op = a->max_inline_sparse;
        }

        results->push_back(a->st);
        const RequestStats st = a->st;
        auto on_complete = std::move(a->on_complete);
        releaseActive(a);
        if (on_complete)
            on_complete(st);
    }
};

ServingSimulation::ServingSimulation(const model::ModelSpec &spec,
                                     const ShardingPlan &plan,
                                     ServingConfig config)
    : spec_(spec), plan_(plan), config_(config),
      collector_(config.retain_spans)
{
    impl_ = std::make_unique<Impl>(spec_, plan_, config_, collector_);
}

ServingSimulation::~ServingSimulation() = default;

std::size_t
ServingSimulation::fanoutGroupCount() const
{
    std::size_t n = 0;
    for (const auto &ni : impl_->nets)
        n += ni.groups.size();
    return n;
}

std::vector<RequestStats>
ServingSimulation::replaySerial(const std::vector<workload::Request> &requests)
{
    std::vector<RequestStats> results;
    results.reserve(requests.size());
    impl_->results = &results;

    // Chain injections: each request enters when the previous completes.
    std::function<void(std::size_t)> launch = [&](std::size_t i) {
        if (i >= requests.size())
            return;
        impl_->inject(requests[i], [this, &launch, i](const RequestStats &) {
            impl_->engine.schedule(config_.serial_gap_ns, sim::kEvDriver,
                                   [&launch, i] { launch(i + 1); });
        });
    };
    launch(0);
    impl_->engine.run();
    impl_->results = &impl_->collected;
    return results;
}

std::vector<RequestStats>
ServingSimulation::replayOpenLoop(
    const std::vector<workload::Request> &requests, double qps)
{
    assert(qps > 0.0);
    std::vector<RequestStats> results;
    results.reserve(requests.size());
    impl_->results = &results;

    stats::Rng arrivals = impl_->rng.fork(0xa881);
    sim::SimTime t = impl_->engine.now();
    for (const auto &req : requests) {
        t += static_cast<sim::Duration>(
            arrivals.exponential(qps) * static_cast<double>(sim::kSecond));
        impl_->engine.scheduleAt(t, sim::kEvDriver, [this, &req] {
            impl_->inject(req, nullptr);
        });
    }
    impl_->engine.run();
    impl_->results = &impl_->collected;
    return results;
}

sim::Engine &
ServingSimulation::engine()
{
    return impl_->engine;
}

void
ServingSimulation::inject(
    const workload::Request &request,
    std::function<void(const RequestStats &)> on_complete,
    sim::SimTime arrival)
{
    impl_->inject(request, std::move(on_complete), arrival);
}

std::vector<RequestStats>
ServingSimulation::takeResults()
{
    std::vector<RequestStats> out;
    out.swap(impl_->collected);
    return out;
}

std::size_t
ServingSimulation::serverCount() const
{
    return impl_->sparse_cores.size();
}

std::vector<double>
ServingSimulation::serverUtilization() const
{
    const auto elapsed = static_cast<double>(impl_->engine.now());
    std::vector<double> out;
    out.reserve(impl_->sparse_cores.size());
    for (const auto &r : impl_->sparse_cores)
        out.push_back(stats::utilizationFraction(r->busyIntegral(),
                                                 r->capacity(), elapsed));
    return out;
}

double
ServingSimulation::mainUtilization() const
{
    return stats::utilizationFraction(
        impl_->main_cores->busyIntegral(), impl_->main_cores->capacity(),
        static_cast<double>(impl_->engine.now()));
}

std::size_t
ServingSimulation::mainQueueDepth() const
{
    return impl_->main_cores->queued();
}

std::size_t
ServingSimulation::mainIdleWorkers() const
{
    return impl_->main_cores->capacity() - impl_->main_cores->inUse();
}

std::vector<std::size_t>
ServingSimulation::serverPeakQueue() const
{
    return impl_->peak_queue;
}

std::vector<int>
ServingSimulation::serverShards() const
{
    return impl_->server_shard;
}

std::size_t
ServingSimulation::sparseWorkerPoolSize() const
{
    return impl_->sparse_cores.empty()
               ? 0
               : impl_->sparse_cores.front()->capacity();
}

std::vector<double>
ServingSimulation::serverBusyCoreNs() const
{
    std::vector<double> out;
    out.reserve(impl_->sparse_cores.size());
    for (const auto &r : impl_->sparse_cores)
        out.push_back(r->busyIntegral());
    return out;
}

rpc::HedgeStats
ServingSimulation::hedgeStats() const
{
    rpc::HedgeStats h;
    h.primary_rpcs = impl_->primary_rpcs;
    h.hedges = impl_->hedges_launched;
    h.wins = impl_->hedge_wins;
    h.losses = impl_->hedge_losses;
    h.cancelled = impl_->hedge_cancelled;
    h.suppressed = impl_->hedge_suppressed;
    h.wasted_busy_ns = impl_->wasted_busy_ns;
    for (const auto &r : impl_->sparse_cores)
        h.total_busy_ns += r->busyIntegral();
    return h;
}

std::vector<rpc::HedgeStats>
ServingSimulation::perShardHedgeStats() const
{
    std::vector<rpc::HedgeStats> out(impl_->shard_primary_rpcs.size());
    for (std::size_t s = 0; s < out.size(); ++s) {
        out[s].primary_rpcs = impl_->shard_primary_rpcs[s];
        out[s].hedges = impl_->shard_hedges[s];
        out[s].wins = impl_->shard_hedge_wins[s];
    }
    return out;
}

const rpc::ResultCacheStats &
ServingSimulation::resultCacheStats() const
{
    return impl_->result_cache.stats();
}

void
ServingSimulation::invalidateResultCache()
{
    impl_->result_cache.invalidate();
}

void
ServingSimulation::killReplica(int server_id)
{
    impl_->killReplica(server_id);
}

void
ServingSimulation::restoreReplica(int server_id)
{
    impl_->restoreReplica(server_id);
}

void
ServingSimulation::degradeReplica(int server_id, double multiplier)
{
    assert(server_id >= 0 &&
           static_cast<std::size_t>(server_id) <
               impl_->replica_degrade.size());
    assert(multiplier > 0.0);
    impl_->replica_degrade[static_cast<std::size_t>(server_id)] =
        multiplier;
}

void
ServingSimulation::partitionShard(int shard_id, bool partitioned)
{
    assert(shard_id >= 0 &&
           static_cast<std::size_t>(shard_id) <
               impl_->shard_partitioned.size());
    impl_->shard_partitioned[static_cast<std::size_t>(shard_id)] =
        partitioned ? 1 : 0;
}

bool
ServingSimulation::replicaAlive(int server_id) const
{
    assert(server_id >= 0 &&
           static_cast<std::size_t>(server_id) <
               impl_->replica_dead.size());
    return impl_->replica_dead[static_cast<std::size_t>(server_id)] == 0;
}

std::size_t
ServingSimulation::aliveReplicaCount() const
{
    std::size_t n = 0;
    for (char d : impl_->replica_dead)
        n += d == 0 ? 1 : 0;
    return n;
}

const FaultStats &
ServingSimulation::faultStats() const
{
    return impl_->fault_stats;
}

std::uint64_t
ServingSimulation::shedCancelledRpcs() const
{
    return impl_->shed_cancelled_rpcs;
}

} // namespace dri::core
