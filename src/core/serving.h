/**
 * @file
 * The distributed-inference serving simulation (Sections III & V).
 *
 * A ServingSimulation materializes one serving deployment — a main shard
 * plus the sparse shards of a ShardingPlan, each a simulated server with a
 * worker-core pool behind a Thrift-like service — and replays a request
 * stream through it on a discrete-event engine. Request lifecycles follow
 * the paper's pipeline exactly:
 *
 *   main shard:  deserialize -> per net (sequential): per batch (parallel):
 *                net overhead + bottom dense -> sparse phase -> top dense
 *                -> response serialize
 *   sparse phase: inline SLS (singular) or asynchronous RPC fan-out to
 *                every shard holding this net's tables; the worker core is
 *                RELEASED while waiting (async RPC ops), which is what buys
 *                tail latency back under load (Fig. 16)
 *   sparse shard: network -> queue -> handler + deserde + net overhead +
 *                SLS + response serde -> network
 *
 * Timing comes from calibrated cost models; values are not computed (the
 * functional path in core/partitioner + core/local_executor covers
 * numerics). All randomness is seeded.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/request_stats.h"
#include "core/sharding_plan.h"
#include "dc/platform.h"
#include "netsim/link_model.h"
#include "rpc/discovery.h"
#include "rpc/hedge.h"
#include "rpc/result_cache.h"
#include "rpc/service.h"
#include "sim/engine.h"
#include "sim/resource.h"
#include "stats/rng.h"
#include "trace/collector.h"
#include "workload/request_generator.h"

namespace dri::cache {
class CachedLookupModel;
}

namespace dri::obs {
class SpanTracer;
class RollingHistogram;
}

namespace dri::core {

/**
 * Admission control / load shedding at the main shard (src/sched's
 * overload experiments). Both mechanisms are off by default so every
 * pre-existing experiment is unchanged.
 */
struct AdmissionConfig
{
    /**
     * Reject arrivals outright once this many requests are waiting for a
     * main-shard worker core (0 = unbounded queue). The classic
     * queue-length cap: bounds memory and worst-case queueing delay.
     */
    int max_main_queue = 0;
    /**
     * Deadline-aware shedding: a request that is still queued when its
     * age exceeds this deadline is dropped at core-grant time instead of
     * executed (0 = disabled). Sheds exactly the work that could no
     * longer meet its SLO, so capacity is not wasted on doomed requests.
     */
    sim::Duration deadline_ns = 0;
    /**
     * Enforce the deadline *after* admission too: a request whose
     * deadline expires while it is executing is shed mid-flight and its
     * outstanding sparse RPCs are cancelled — queued attempts release
     * their slots, executing attempts abort and refund their remaining
     * busy time (the tied-request mechanism hedging already uses), and
     * in-flight responses are discarded on arrival. Without this, a shed
     * only ever happens before execution, so a doomed request's fan-out
     * keeps burning sparse-tier capacity after the client has given up
     * on it. Requires deadline_ns > 0; off by default.
     */
    bool cancel_in_flight = false;
};

/**
 * Replica misbehavior, transient and injected (off by default). The
 * straggler fields model *stochastic* interference drawn per attempt
 * from the common-random-numbers identity stream; the remaining fields
 * parameterize the *injected* fault paths driven through the runtime
 * control surface (ServingSimulation::killReplica and friends) and the
 * fleet-level fleet::FaultSchedule built on top of it.
 *
 * Purity contract: with a default-constructed PerturbationConfig and no
 * control-surface calls, every fault path is inert — no extra RNG
 * draws, no extra events — so replays are byte-identical to a build
 * without the fault layer (enforced by the stress grid and the fleet
 * fingerprint baselines).
 */
struct PerturbationConfig
{
    /**
     * Transient sparse-server interference: with this probability, an
     * RPC attempt's remote execution runs straggler_multiplier x slower
     * — the co-located-service/NUMA interference that makes one replica
     * momentarily a straggler while its siblings stay fast. This is the
     * tail phenomenon hedging exists to dodge: a re-rolled backup on
     * another replica almost never hits the same slow event. Unlike
     * a degradeReplica() slowdown, this re-rolls on every attempt.
     */
    double straggler_prob = 0.0;
    /** Remote-execution slowdown of an interfered attempt. */
    double straggler_multiplier = 8.0;
    /**
     * Client-side timeout on a sparse RPC attempt whose target is
     * unreachable (dead replica, partitioned shard, work lost in a
     * crash). Reachable targets never consult this — the simulation
     * models their latency explicitly — so it only shapes how long a
     * fault takes to surface as a failover retry or upstream failure.
     */
    sim::Duration rpc_timeout_ns = 20'000'000;
    /**
     * Failover retries per logical sparse RPC before the whole request
     * fails upstream (ShedReason::UpstreamFailure). Each retry re-pays
     * client dispatch CPU and re-resolves excluding the server that
     * just failed.
     */
    int max_attempt_retries = 2;
    /**
     * Lag between killReplica()/restoreReplica() and the service
     * directory reflecting the new health — the detection gap during
     * which discovery still routes primaries at a dead replica and
     * hedging is the only mask.
     */
    sim::Duration discovery_lag_ns = 50'000'000;
};

/**
 * Counters of the injected-fault machinery, one struct per deployment.
 * All zero when the control surface is never exercised.
 */
struct FaultStats
{
    /** killReplica() calls that transitioned a replica to dead. */
    std::uint64_t kills = 0;
    /** restoreReplica() calls that revived a dead replica. */
    std::uint64_t restores = 0;
    /** Attempts dispatched at a dead replica (pre-discovery window). */
    std::uint64_t dead_target_attempts = 0;
    /** Attempts dropped on the wire by a main<->shard partition. */
    std::uint64_t partition_drops = 0;
    /** Attempts whose replica died mid-service (queued or executing). */
    std::uint64_t lost_in_service = 0;
    /** Failover re-dispatches after an attempt failure. */
    std::uint64_t retries = 0;
    /** Attempts that found no resolvable live replica for their shard. */
    std::uint64_t resolution_failures = 0;
    /** Requests shed with ShedReason::UpstreamFailure (retries exhausted). */
    std::uint64_t upstream_failures = 0;
};

/** Deployment + cost-model configuration. */
struct ServingConfig
{
    dc::Platform main_platform = dc::scLarge();
    dc::Platform sparse_platform = dc::scLarge();
    netsim::LinkConfig link;
    rpc::ServiceConfig service;

    /** Base cost of one embedding-row gather (reference platform). */
    double lookup_base_ns = 20.0;
    /** Additional gather cost per stored row byte (locality effect). */
    double lookup_ns_per_row_byte = 0.04;
    /** Fraction of a net's dense time executed before the sparse join. */
    double bottom_fraction = 0.5;
    /** Batch size override; 0 uses the model's production default. */
    int batch_size_override = 0;
    /**
     * Worker threads of the Thrift service on each shard (the pool that
     * executes batches). Smaller than the machine's core count — the rest
     * of the cores belong to the OS and co-located services. 0 means use
     * every platform core. Serial replays never exceed request_parallelism
     * concurrent batches, so this only matters under overlapping load
     * (the Fig. 16 high-QPS experiment).
     */
    int worker_threads = 8;
    /**
     * Worker threads of the Thrift service on each sparse-shard replica;
     * 0 inherits worker_threads. Sparse shards run small pools in
     * practice (they co-locate many shards per host and may use the
     * SC-Small SKU), and small pools are what make the replica
     * load-balancing policy matter under overload.
     */
    int sparse_worker_threads = 0;
    /**
     * Maximum batches of one request executing CPU phases concurrently
     * (the framework's intra-request worker pool). Asynchronous RPC ops
     * release the slot while waiting — the paper's mechanism for hiding
     * sparse work at scale. Large requests exceed this limit and serialize
     * into waves, which is what makes P99 grow ~linearly with request size.
     */
    int request_parallelism = 8;
    /**
     * Replica servers behind each sparse shard, resolved via service
     * discovery (Section III-A2: shards are replicated independently
     * based on load; statelessness lets every request land on a
     * different replica combination).
     */
    int sparse_replicas = 1;
    /**
     * Heterogeneous replica counts indexed by shard id; when non-empty it
     * overrides sparse_replicas per shard (entries < 1 fall back to
     * sparse_replicas). This is what lets sched::ProvisionLoop size each
     * shard's replication from its *measured* load instead of replicating
     * every shard identically.
     */
    std::vector<int> sparse_replicas_per_shard;
    /**
     * Replica-selection policy used by the service directory. The
     * load-aware policies read live per-server queue depth from the sim
     * engine (in-flight + queued work on each replica's worker pool).
     */
    rpc::LoadBalancePolicy lb_policy = rpc::LoadBalancePolicy::RoundRobin;
    /** Main-shard admission control (off by default). */
    AdmissionConfig admission;
    /**
     * Main-shard pooled-result cache (off by default): memoizes whole
     * sparse-RPC responses keyed by (net, table group, batch signature)
     * and serves repeats from local memory, skipping serialization,
     * network, remote queueing, and the remote gather entirely. TTL
     * models embedding-refresh staleness; see rpc/result_cache.h.
     */
    rpc::ResultCacheConfig result_cache;
    /**
     * Hedged sparse RPCs (off by default): a backup request to a second
     * replica when the primary exceeds a quantile-tracked deadline, first
     * response wins, loser cancelled (cancellation is best-effort — an
     * attempt already executing runs to completion as wasted work).
     */
    rpc::HedgeConfig hedge;
    /**
     * Replica perturbations: stochastic stragglers (drawn from the
     * per-attempt common-random-numbers identity stream, so paired
     * policy comparisons face the identical interference process) plus
     * the timeout/retry/discovery-lag knobs of the injected-fault
     * layer. Defaults are fully inert.
     */
    PerturbationConfig faults;

    /**
     * Optional measured-locality model (src/cache). When set, the
     * per-table gather cost blends the platform-calibrated DRAM cost with
     * the model's miss cost by the table's simulated hit rate, instead of
     * charging the flat lookup_base_ns coefficient for every row. Tables
     * the model has no data for keep the flat cost.
     */
    std::shared_ptr<const cache::CachedLookupModel> cache_model;
    /**
     * Per-shard overrides indexed by shard id (entries may be null to fall
     * back to cache_model) — shards replay their own trace slices, so
     * locality legitimately differs per shard. Singular/inline SLS always
     * uses cache_model.
     */
    std::vector<std::shared_ptr<const cache::CachedLookupModel>>
        shard_cache_models;

    std::uint64_t seed = 1234;
    /** Retain raw spans (needed for trace rendering; memory-heavy). */
    bool retain_spans = false;
    /**
     * Optional request-level span tracer (src/obs). When set and
     * enabled, the serving engine emits a nested span tree per request
     * covering the full lifecycle — admission, queue wait, batch
     * coalescing, dense phases, per-shard RPC attempts (primary and
     * hedge, wire/remote-queue/remote-compute), result-cache probes,
     * and the response merge — in simulated time. The tracer is a pure
     * observer: attaching it never changes RequestStats (enforced
     * byte-for-byte by serving_stress_test). Not owned; must outlive
     * the simulation.
     */
    obs::SpanTracer *tracer = nullptr;
    /**
     * Optional rolling in-run latency feed (src/obs). When set, every
     * SERVED request's end-to-end latency (nanoseconds) is pushed into
     * the window at its completion time, so a monitor can ask for the
     * rolling P99 while the replay is still in flight instead of
     * waiting for the final RequestStats ledger. Shed requests are
     * excluded, matching latencyQuantiles(). Pure observer under the
     * same contract as `tracer`: attaching it never changes
     * RequestStats (enforced byte-for-byte by serving_stress_test).
     * Not owned; must outlive the simulation.
     */
    obs::RollingHistogram *latency_feed = nullptr;
    /** Gap between a completion and the next injection in serial replay. */
    sim::Duration serial_gap_ns = 0;
};

/** One deployment of one model under one sharding plan. */
class ServingSimulation
{
  public:
    ServingSimulation(const model::ModelSpec &spec, const ShardingPlan &plan,
                      ServingConfig config);
    ~ServingSimulation();

    ServingSimulation(const ServingSimulation &) = delete;
    ServingSimulation &operator=(const ServingSimulation &) = delete;

    /**
     * Replay requests serially: each is injected when the previous one
     * completes (plus ServingConfig::serial_gap_ns), isolating per-request
     * overheads as in Section VI.
     */
    std::vector<RequestStats>
    replaySerial(const std::vector<workload::Request> &requests);

    /**
     * Replay with open-loop Poisson arrivals at the given rate (the
     * Section VII-A high-QPS experiment).
     */
    std::vector<RequestStats>
    replayOpenLoop(const std::vector<workload::Request> &requests,
                   double qps);

    // -- Low-level driver API (src/sched) ---------------------------------
    //
    // External schedulers (the dynamic batcher, capacity search) drive the
    // simulation directly: schedule injections on engine(), call
    // engine().run(), then collect with takeResults().

    /** The discrete-event engine: clock + scheduler. */
    sim::Engine &engine();

    /**
     * Inject one request at the current simulated time. `on_complete`
     * (may be null) fires with the request's final stats — including shed
     * requests, whose stats carry the shed reason. The request object
     * must outlive its completion.
     *
     * `arrival` (>= 0) backdates the request's recorded arrival — the
     * dynamic batcher passes its oldest rider's queue-entry time so that
     * E2E and the admission deadline both see the time spent coalescing,
     * not just the time since injection.
     */
    void inject(const workload::Request &request,
                std::function<void(const RequestStats &)> on_complete,
                sim::SimTime arrival = -1);

    /** Stats of requests completed via inject() since the last call. */
    std::vector<RequestStats> takeResults();

    // -- Load observability -----------------------------------------------

    /** Replica server worker pools in the deployment (shards x replicas). */
    std::size_t serverCount() const;

    /**
     * Worker-pool utilization per replica server in [0, 1]: busy
     * core-time over capacity x elapsed simulated time.
     */
    std::vector<double> serverUtilization() const;

    /** Main-shard worker-pool utilization in [0, 1]. */
    double mainUtilization() const;

    /**
     * Requests currently waiting for a main-shard worker core. A live
     * congestion signal for queue-aware batching: zero depth with idle
     * workers means a new injection starts immediately.
     */
    std::size_t mainQueueDepth() const;

    /** Main-shard worker cores currently idle. */
    std::size_t mainIdleWorkers() const;

    /**
     * Peak (in-flight + queued) depth observed at each replica server at
     * RPC dispatch, the load-balancing quality signal: a policy that
     * spreads load keeps the max across replicas low.
     */
    std::vector<std::size_t> serverPeakQueue() const;

    /** Logical shard each replica server belongs to (size serverCount()). */
    std::vector<int> serverShards() const;

    /**
     * Cumulative busy core-nanoseconds of each replica server's worker
     * pool — the measured per-shard compute demand ProvisionLoop feeds
     * back into dc::provision.
     */
    std::vector<double> serverBusyCoreNs() const;

    /**
     * Effective worker-pool size of a sparse replica server (the
     * resolved sparse_worker_threads / worker_threads / platform-cores
     * rule). Provisioning sizes replicas against this pool, not the
     * whole SKU. Zero for singular deployments.
     */
    std::size_t sparseWorkerPoolSize() const;

    /** Hedging outcome counters (all zero when hedging is disabled). */
    rpc::HedgeStats hedgeStats() const;

    /**
     * Per-shard hedging counters (primary dispatches, backups, wins),
     * indexed by shard id — the evidence for per-shard hedge deadlines:
     * under a global deadline the hedge rate concentrates on the slow
     * shards; per-shard trackers narrow the spread.
     */
    std::vector<rpc::HedgeStats> perShardHedgeStats() const;

    /** Pooled-result cache counters (all zero when the cache is off). */
    const rpc::ResultCacheStats &resultCacheStats() const;

    // -- Runtime control surface --------------------------------------------
    //
    // Mutation hooks that perturb a live deployment, between or during
    // replays. fleet::FaultSchedule drives these per epoch; chaos tests
    // call them directly. Shared contract:
    //
    //  * Callable at any simulated time — before the first replay or
    //    mid-run from an engine() callback; effects are stamped at
    //    engine().now().
    //  * `server_id` indexes replica servers in serverShards() order
    //    (0 .. serverCount()-1); out-of-range ids are precondition
    //    violations (asserted, undefined in release builds).
    //  * Redundant calls are no-ops: killing a dead replica, restoring a
    //    live one, re-applying an identical degradation or partition
    //    state changes nothing and counts nothing.
    //  * Accounting: compute genuinely burned before a fault lands stays
    //    charged to the requests that issued it; only hedge-race
    //    pre-charges are reversed when an attempt dies mid-service, so
    //    hedge_wasted_cpu_ns remains a pure hedge-outcome metric. Every
    //    fault consequence is counted in faultStats(), and requests that
    //    exhaust their failover retries finish shed with
    //    ShedReason::UpstreamFailure.
    //  * Purity: a deployment whose control surface is never exercised
    //    (and whose PerturbationConfig keeps its fault defaults) replays
    //    byte-identically to a build without the fault layer.

    /**
     * Drop every pooled-result entry — the embedding-refresh hook: call
     * at a snapshot boundary and subsequent lookups repopulate from the
     * new embeddings. Also the snapshot-storm fault primitive.
     */
    void invalidateResultCache();

    /**
     * Crash a replica server: it goes dark instantly. Queued work on its
     * worker pool is lost (surfaces as client timeouts), executing work
     * never responds, and new attempts dispatched at it time out — until
     * PerturbationConfig::discovery_lag_ns elapses and the service
     * directory stops resolving to it. Hedging and failover retries are
     * what mask the gap in between.
     */
    void killReplica(int server_id);

    /**
     * Revive a crashed replica with an empty queue. The directory
     * re-includes it after the same discovery lag; work lost during the
     * outage is not replayed.
     */
    void restoreReplica(int server_id);

    /**
     * Persistent slow-node degradation: every remote execution on this
     * replica runs `multiplier` x slower until re-set to 1.0. Unlike the
     * stochastic straggler_prob transients this does NOT re-roll per
     * attempt — it models a bad host (thermal throttling, noisy
     * neighbor, failing DIMM), the case load-balancing policies and
     * hedging must route around consistently.
     */
    void degradeReplica(int server_id, double multiplier);

    /**
     * Sever (or heal) the network path between the main shard and one
     * sparse shard: attempts launched at the shard while partitioned
     * never reach any replica and surface as client timeouts. Replica
     * health and directory state are untouched — the servers are fine,
     * the route is not.
     */
    void partitionShard(int shard_id, bool partitioned);

    /** Whether a replica server is currently alive (not killed). */
    bool replicaAlive(int server_id) const;

    /** Replica servers currently alive. */
    std::size_t aliveReplicaCount() const;

    /** Injected-fault counters (all zero when faults never fired). */
    const FaultStats &faultStats() const;

    /**
     * Sparse RPC attempts cancelled because their request was shed
     * mid-flight (AdmissionConfig::cancel_in_flight).
     */
    std::uint64_t shedCancelledRpcs() const;

    const trace::TraceCollector &collector() const { return collector_; }
    const ShardingPlan &plan() const { return plan_; }
    const model::ModelSpec &spec() const { return spec_; }

    /** Number of RPC fan-out groups (shard, net) pairs in the deployment. */
    std::size_t fanoutGroupCount() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;

    const model::ModelSpec &spec_;
    ShardingPlan plan_;
    ServingConfig config_;
    trace::TraceCollector collector_;
};

} // namespace dri::core
