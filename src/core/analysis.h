/**
 * @file
 * Post-processing of serving-simulation results into the paper's reported
 * quantities: overhead-vs-singular quantiles (Figs. 6, 7, 16), E2E latency
 * stacks (Fig. 8a, 13a), bounding-shard embedded stacks (Fig. 8b, 11b,
 * 13b), CPU-time stacks (Figs. 9, 14), and per-shard operator latencies
 * (Figs. 10, 11a, 12, 15).
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/request_stats.h"

namespace dri::core {

/** Latency/compute overhead of one configuration vs the singular baseline. */
struct OverheadReport
{
    std::string label;
    /** (config_q - baseline_q) / baseline_q for q in {P50, P90, P99}. */
    double latency_overhead[3] = {0.0, 0.0, 0.0};
    double compute_overhead[3] = {0.0, 0.0, 0.0};
};

/** Quantiles of per-request E2E latency, in milliseconds. */
struct LatencyQuantiles
{
    double p50_ms = 0.0;
    double p90_ms = 0.0;
    double p99_ms = 0.0;
    /** Extreme tail; the overload experiments' headline metric. */
    double p999_ms = 0.0;
};

/**
 * E2E latency quantiles over *served* requests only — shed requests never
 * executed, so their (tiny) residence times would corrupt the tail.
 * Returns zeros if every request was shed.
 */
LatencyQuantiles latencyQuantiles(const std::vector<RequestStats> &stats);

/** Quantiles of per-request total CPU time, in milliseconds. */
LatencyQuantiles cpuQuantiles(const std::vector<RequestStats> &stats);

/** Fraction of requests dropped by admission control. */
double shedRate(const std::vector<RequestStats> &stats);

/** Overhead of `config` vs `baseline` at P50/P90/P99. */
OverheadReport computeOverhead(const std::string &label,
                               const std::vector<RequestStats> &baseline,
                               const std::vector<RequestStats> &config);

/** An ordered (bucket name, milliseconds) stack. */
using Stack = std::vector<std::pair<std::string, double>>;

/** Sum of all bucket values. */
double stackTotal(const Stack &stack);

/**
 * Fig. 8a: E2E latency stack of the median-latency request population
 * (requests with E2E between the 40th and 60th percentile are averaged,
 * which is how a "P50 stack" remains internally consistent).
 */
Stack latencyStack(const std::vector<RequestStats> &stats);

/** Fig. 8b: embedded-portion stack of the bounding sparse shard (P50). */
Stack embeddedStack(const std::vector<RequestStats> &stats);

/** Fig. 9: aggregate CPU-time stack across all shards (P50 population). */
Stack cpuStack(const std::vector<RequestStats> &stats);

/** Mean per-shard sparse-operator CPU per request (Figs. 10-12, 15). */
std::vector<double> perShardOpLatency(const std::vector<RequestStats> &stats,
                                      int num_shards);

/** Same, resolved by net: result[shard][net]. */
std::vector<std::vector<double>>
perShardOpLatencyByNet(const std::vector<RequestStats> &stats,
                       int num_shards, int num_nets);

/** Mean RPC fan-out per request (compute-overhead driver, Fig. 9). */
double meanRpcCount(const std::vector<RequestStats> &stats);

/** Mean total CPU milliseconds per request. */
double meanCpuMs(const std::vector<RequestStats> &stats);

/** Mean CPU milliseconds per request on the main shard's operators. */
double meanMainOpMs(const std::vector<RequestStats> &stats);

/**
 * Fraction of requests whose E2E latency exceeds the SLA. The paper's
 * serving tier drops such requests in favour of a lower-quality fallback
 * (Section II), so this is the quality-degradation rate of a deployment.
 */
double slaViolationRate(const std::vector<RequestStats> &stats,
                        double sla_ms);

} // namespace dri::core
