/**
 * @file
 * Fixed-size object pool for hot-path simulation records.
 *
 * The serving hot path used to allocate and free an Active, several
 * BatchStates, and an RpcOp per attempt on the general heap for every
 * request. ObjectPool hands out default-constructed objects from
 * block-allocated storage with a pointer free list: steady-state
 * acquire/release is a vector push/pop, and block pointers are stable so
 * in-flight events can hold raw pointers across arbitrary scheduling.
 *
 * Protocol: acquire() returns an object in a default-constructed (or
 * caller-recycled) state; release() returns it without destroying it —
 * the caller is responsible for restoring a pristine state first
 * (typically destroy + placement-new, salvaging container capacity).
 * Objects still live at pool destruction are abandoned with their
 * blocks, matching the drained-engine invariant (a completed run holds
 * none).
 */
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace dri::sim {

template <class T, std::size_t BlockSize = 64>
class ObjectPool
{
  public:
    ObjectPool() = default;

    ObjectPool(const ObjectPool &) = delete;
    ObjectPool &operator=(const ObjectPool &) = delete;

    ~ObjectPool()
    {
        for (T *p : free_)
            p->~T();
        for (T *block : blocks_)
            std::allocator<T>().deallocate(block, BlockSize);
    }

    T *
    acquire()
    {
        if (free_.empty())
            grow();
        T *p = free_.back();
        free_.pop_back();
        return p;
    }

    void
    release(T *p)
    {
        free_.push_back(p);
    }

    /** Blocks ever allocated (capacity telemetry). */
    std::size_t blocks() const { return blocks_.size(); }

  private:
    void
    grow()
    {
        T *block = std::allocator<T>().allocate(BlockSize);
        blocks_.push_back(block);
        free_.reserve(free_.size() + BlockSize);
        for (std::size_t i = 0; i < BlockSize; ++i) {
            new (block + i) T();
            free_.push_back(block + i);
        }
    }

    std::vector<T *> free_;
    std::vector<T *> blocks_;
};

} // namespace dri::sim
