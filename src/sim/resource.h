/**
 * @file
 * FIFO resource pools for the DES. A Resource with capacity N models a
 * server's worker-core pool: up to N tasks execute concurrently; further
 * acquirers queue in arrival order. Queueing under load is what produces the
 * paper's high-QPS effects (Fig. 16).
 */
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <string>

#include "sim/engine.h"

namespace dri::sim {

/**
 * Counted resource with FIFO admission.
 *
 * acquire(cb) grants a unit immediately if available, otherwise queues the
 * callback. release() hands the freed unit to the oldest waiter (scheduled
 * as a zero-delay event so granting never reenters the releaser's stack).
 */
class Resource
{
  public:
    using Grant = std::function<void()>;

    Resource(Engine &engine, std::size_t capacity, std::string name = "");

    /** Request a unit; cb runs (now or later) once granted. */
    void acquire(Grant cb);

    /**
     * Request a unit at the head of the wait queue. Used for continuations
     * (e.g. RPC response processing) that real services run at IO priority
     * rather than behind newly admitted work.
     */
    void acquireFront(Grant cb);

    /** Return a unit previously granted. */
    void release();

    std::size_t capacity() const { return capacity_; }
    std::size_t inUse() const { return in_use_; }
    std::size_t queued() const { return waiters_.size(); }
    const std::string &name() const { return name_; }

    /**
     * Cumulative busy time integral (unit-nanoseconds) for utilization
     * accounting: sum over time of inUse().
     */
    double busyIntegral() const;

  private:
    Engine &engine_;
    std::size_t capacity_;
    std::size_t in_use_ = 0;
    std::deque<Grant> waiters_;
    std::string name_;

    // Utilization bookkeeping.
    mutable SimTime last_change_ = 0;
    mutable double busy_integral_ = 0.0;

    void accountTo(SimTime now) const;
};

} // namespace dri::sim
