/**
 * @file
 * FIFO resource pools for the DES. A Resource with capacity N models a
 * server's worker-core pool: up to N tasks execute concurrently; further
 * acquirers queue in arrival order. Queueing under load is what produces the
 * paper's high-QPS effects (Fig. 16).
 */
#pragma once

#include <cassert>
#include <cstddef>
#include <deque>
#include <string>
#include <utility>

#include "sim/engine.h"

namespace dri::sim {

/**
 * Counted resource with FIFO admission.
 *
 * acquire(cb) grants a unit immediately if available, otherwise queues the
 * callback. release() hands the freed unit to the oldest waiter (scheduled
 * as a zero-delay event so granting never reenters the releaser's stack).
 */
class Resource
{
  public:
    /**
     * Grant callbacks share the engine's small-buffer event type, so a
     * queued waiter moves straight into a pooled event slot on release()
     * instead of being re-wrapped (and possibly re-heap-allocated).
     */
    using Grant = EventFn;

    Resource(Engine &engine, std::size_t capacity, std::string name = "");

    /** Request a unit; cb runs (now or later) once granted. */
    void
    acquire(Grant cb)
    {
        if (in_use_ < capacity_) {
            accountTo(engine_.now());
            ++in_use_;
            cb();
        } else {
            waiters_.push_back(std::move(cb));
        }
    }

    /**
     * Request a unit at the head of the wait queue. Used for continuations
     * (e.g. RPC response processing) that real services run at IO priority
     * rather than behind newly admitted work.
     */
    void
    acquireFront(Grant cb)
    {
        if (in_use_ < capacity_) {
            accountTo(engine_.now());
            ++in_use_;
            cb();
        } else {
            waiters_.push_front(std::move(cb));
        }
    }

    /** Return a unit previously granted. */
    void
    release()
    {
        assert(in_use_ > 0);
        accountTo(engine_.now());
        if (waiters_.empty()) {
            --in_use_;
            return;
        }
        // Hand the unit directly to the oldest waiter; in_use_ stays
        // constant.
        Grant next = std::move(waiters_.front());
        waiters_.pop_front();
        engine_.schedule(0, kEvGrant, std::move(next));
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t inUse() const { return in_use_; }
    std::size_t queued() const { return waiters_.size(); }
    const std::string &name() const { return name_; }

    /**
     * Cumulative busy time integral (unit-nanoseconds) for utilization
     * accounting: sum over time of inUse().
     */
    double busyIntegral() const;

  private:
    Engine &engine_;
    std::size_t capacity_;
    std::size_t in_use_ = 0;
    std::deque<Grant> waiters_;
    std::string name_;

    // Utilization bookkeeping.
    mutable SimTime last_change_ = 0;
    mutable double busy_integral_ = 0.0;

    void
    accountTo(SimTime now) const
    {
        busy_integral_ += static_cast<double>(in_use_) *
                          static_cast<double>(now - last_change_);
        last_change_ = now;
    }
};

} // namespace dri::sim
