/**
 * @file
 * Minimal deterministic discrete-event engine.
 *
 * The serving substrate (servers, links, RPC services) is modelled as events
 * on a single priority queue. Ties are broken by insertion order, so a given
 * seed always produces the identical schedule regardless of host platform.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace dri::sim {

/** Callback invoked when an event fires. */
using EventFn = std::function<void()>;

/**
 * The event queue and simulated clock.
 *
 * Usage: schedule work with schedule()/scheduleAt(), then run() until the
 * queue drains (or runUntil() for bounded horizons). Event callbacks may
 * schedule further events; the engine is single-threaded by design.
 */
class Engine
{
  public:
    Engine() = default;

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** Schedule fn to fire after the given (non-negative) delay. */
    void schedule(Duration delay, EventFn fn);

    /** Schedule fn at an absolute time >= now(). */
    void scheduleAt(SimTime when, EventFn fn);

    /** Run until the event queue is empty. Returns events executed. */
    std::size_t run();

    /**
     * Run until the queue is empty or simulated time would exceed the
     * horizon. Events scheduled past the horizon remain queued.
     */
    std::size_t runUntil(SimTime horizon);

    /** Events currently pending. */
    std::size_t pending() const { return queue_.size(); }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Event
    {
        SimTime when;
        std::uint64_t seq; //!< Insertion order; breaks timestamp ties.
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    SimTime now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace dri::sim
