/**
 * @file
 * Minimal deterministic discrete-event engine.
 *
 * The serving substrate (servers, links, RPC services) is modelled as events
 * on a single priority queue. Ties are broken by insertion order, so a given
 * seed always produces the identical schedule regardless of host platform.
 *
 * The engine carries lightweight profiling hooks for the simulator's own
 * performance (not the simulated system's): every event carries a subsystem
 * tag, per-tag counters are always maintained (two array increments), and
 * when profiling is explicitly enabled the engine additionally wall-clocks
 * each callback so bench_sim_throughput can attribute host time to
 * subsystems. Tags never affect ordering — the schedule is byte-identical
 * with or without them.
 */
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace dri::sim {

/** Callback invoked when an event fires. */
using EventFn = std::function<void()>;

/**
 * Subsystem tag attached to every scheduled event, for profiling
 * attribution. Untagged is the default for call sites that predate (or
 * don't care about) profiling.
 */
enum EventTag : std::uint8_t
{
    kEvUntagged = 0,
    kEvMainCompute,   //!< main-shard dense compute / serde busy blocks
    kEvSparseCompute, //!< sparse-replica remote busy blocks
    kEvWire,          //!< network link delays
    kEvTimer,         //!< hedge / shed deadline timers
    kEvGrant,         //!< resource worker-core grants
    kEvDriver,        //!< workload replay / injection drivers
    kEvTagCount,
};

/** Short lower-case tag name (bench output). */
const char *eventTagName(EventTag tag);

/** Simulator self-profile, collected by the engine. */
struct EngineProfile
{
    std::uint64_t scheduled = 0;    //!< events ever scheduled
    std::uint64_t executed = 0;     //!< events ever executed
    std::size_t peak_pending = 0;   //!< high-water mark of the queue
    std::int64_t wall_ns = 0;       //!< host time inside callbacks (profiling on)
    std::array<std::uint64_t, kEvTagCount> tag_events{};
    std::array<std::int64_t, kEvTagCount> tag_wall_ns{};
};

/**
 * The event queue and simulated clock.
 *
 * Usage: schedule work with schedule()/scheduleAt(), then run() until the
 * queue drains (or runUntil() for bounded horizons). Event callbacks may
 * schedule further events; the engine is single-threaded by design.
 */
class Engine
{
  public:
    Engine() = default;

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** Schedule fn to fire after the given (non-negative) delay. */
    void schedule(Duration delay, EventFn fn)
    {
        schedule(delay, kEvUntagged, std::move(fn));
    }

    /** Schedule fn at an absolute time >= now(). */
    void scheduleAt(SimTime when, EventFn fn)
    {
        scheduleAt(when, kEvUntagged, std::move(fn));
    }

    /** Tagged variants: attribute the event to a subsystem. */
    void schedule(Duration delay, EventTag tag, EventFn fn);
    void scheduleAt(SimTime when, EventTag tag, EventFn fn);

    /** Run until the event queue is empty. Returns events executed. */
    std::size_t run();

    /**
     * Run until the queue is empty or simulated time would exceed the
     * horizon. Events scheduled past the horizon remain queued.
     */
    std::size_t runUntil(SimTime horizon);

    /** Events currently pending. */
    std::size_t pending() const { return queue_.size(); }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Enable per-callback wall-clock timing. Off by default because a
     * steady_clock read per event is measurable overhead; counters
     * (scheduled/executed/per-tag/peak-pending) are maintained either
     * way.
     */
    void enableProfiling(bool on) { profiling_ = on; }
    bool profilingEnabled() const { return profiling_; }

    const EngineProfile &profile() const { return profile_; }

  private:
    struct Event
    {
        SimTime when;
        std::uint64_t seq; //!< Insertion order; breaks timestamp ties.
        std::uint8_t tag;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    void dispatch(Event &ev);

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    SimTime now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    bool profiling_ = false;
    EngineProfile profile_;
};

} // namespace dri::sim
