/**
 * @file
 * Minimal deterministic discrete-event engine.
 *
 * The serving substrate (servers, links, RPC services) is modelled as events
 * on a single queue. Ties are broken by insertion order, so a given seed
 * always produces the identical schedule regardless of host platform.
 *
 * Performance shape: callbacks live in a pooled slot arena (fixed-size
 * records on stable blocks, intrusive free list) with small-buffer storage
 * (InlineFn), and the ready order is kept in a 4-ary min-heap of POD
 * {when, seq, slot} entries indexing into the arena (half the sift depth
 * of a binary heap, and the four children of a node share two cache
 * lines). Steady-state scheduling therefore performs zero heap
 * allocations: pushing an event is a slot pop + in-place callable
 * construction + a heap sift over 24-byte entries, and dispatch never
 * moves a callable (slots are invoked in place). Captures larger than the
 * inline buffer fall back to the heap and are counted in
 * EngineProfile::heap_callbacks so the zero-alloc contract stays
 * observable. The (when, seq) comparator is a strict total order, so the
 * dispatch sequence is independent of heap arity or layout.
 *
 * The engine carries lightweight profiling hooks for the simulator's own
 * performance (not the simulated system's): every event carries a subsystem
 * tag, per-tag counters are always maintained (two array increments), and
 * when profiling is explicitly enabled the engine additionally wall-clocks
 * each callback so bench_sim_throughput can attribute host time to
 * subsystems. Tags never affect ordering — the schedule is byte-identical
 * with or without them.
 */
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/inline_fn.h"
#include "sim/time.h"

namespace dri::sim {

/**
 * Callback invoked when an event fires. The inline capacity covers every
 * closure the serving hot path schedules (pooled pointers, ids, a few
 * scalars); anything larger heap-allocates once and is counted.
 */
using EventFn = InlineFn<120>;

/**
 * Subsystem tag attached to every scheduled event, for profiling
 * attribution. Untagged is the default for call sites that predate (or
 * don't care about) profiling.
 */
enum EventTag : std::uint8_t
{
    kEvUntagged = 0,
    kEvMainCompute,   //!< main-shard dense compute / serde busy blocks
    kEvSparseCompute, //!< sparse-replica remote busy blocks
    kEvWire,          //!< network link delays
    kEvTimer,         //!< hedge / shed deadline timers
    kEvGrant,         //!< resource worker-core grants
    kEvDriver,        //!< workload replay / injection drivers
    kEvTagCount,
};

/** Short lower-case tag name (bench output). */
const char *eventTagName(EventTag tag);

/** Simulator self-profile, collected by the engine. */
struct EngineProfile
{
    std::uint64_t scheduled = 0;    //!< events ever scheduled
    std::uint64_t executed = 0;     //!< events ever executed
    std::size_t peak_pending = 0;   //!< high-water mark of the queue
    std::int64_t wall_ns = 0;       //!< host time inside callbacks (profiling on)
    std::array<std::uint64_t, kEvTagCount> tag_events{};
    std::array<std::int64_t, kEvTagCount> tag_wall_ns{};
    std::uint64_t heap_callbacks = 0; //!< captures too big for the inline buffer
    std::uint64_t arena_blocks = 0;   //!< slot blocks ever allocated
};

/**
 * The event queue and simulated clock.
 *
 * Usage: schedule work with schedule()/scheduleAt(), then run() until the
 * queue drains (or runUntil() for bounded horizons). Event callbacks may
 * schedule further events; the engine is single-threaded by design.
 */
class Engine
{
  public:
    Engine() = default;

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** Schedule fn to fire after the given (non-negative) delay. */
    template <class F>
    void
    schedule(Duration delay, F &&fn)
    {
        schedule(delay, kEvUntagged, std::forward<F>(fn));
    }

    /** Schedule fn at an absolute time >= now(). */
    template <class F>
    void
    scheduleAt(SimTime when, F &&fn)
    {
        scheduleAt(when, kEvUntagged, std::forward<F>(fn));
    }

    /** Tagged variants: attribute the event to a subsystem. */
    template <class F>
    void
    schedule(Duration delay, EventTag tag, F &&fn)
    {
        assert(delay >= 0);
        scheduleAt(now_ + delay, tag, std::forward<F>(fn));
    }

    /**
     * Construct the callable directly inside a pooled slot — the hot path.
     */
    template <class F>
    void
    scheduleAt(SimTime when, EventTag tag, F &&fn)
    {
        const std::uint32_t slot = allocSlot();
        if (!slotAt(slot).fn.emplace(std::forward<F>(fn)))
            ++heap_callbacks_;
        pushEntry(when, tag, slot);
    }

    /**
     * Exact-match overloads for an already-built EventFn (e.g. a resource
     * waiter popped from its queue): relocate the payload into the slot
     * instead of nesting one InlineFn inside another.
     */
    void
    schedule(Duration delay, EventTag tag, EventFn &&fn)
    {
        assert(delay >= 0);
        scheduleAt(now_ + delay, tag, std::move(fn));
    }

    void
    scheduleAt(SimTime when, EventTag tag, EventFn &&fn)
    {
        const std::uint32_t slot = allocSlot();
        slotAt(slot).fn = std::move(fn);
        pushEntry(when, tag, slot);
    }

    /** Run until the event queue is empty. Returns events executed. */
    std::size_t run();

    /**
     * Run until the queue is empty or simulated time would exceed the
     * horizon. Events scheduled past the horizon remain queued.
     */
    std::size_t runUntil(SimTime horizon);

    /** Events currently pending. */
    std::size_t pending() const { return heap_.size(); }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Enable per-callback wall-clock timing. Off by default because a
     * clock read per event is measurable overhead; counters
     * (scheduled/executed/per-tag/peak-pending) are maintained either
     * way. On x86 the per-event timestamps are TSC reads converted with
     * a rate calibrated here (one ~100us spin, outside any timed
     * region); elsewhere they fall back to steady_clock.
     */
    void enableProfiling(bool on);
    bool profilingEnabled() const { return profiling_; }

    /**
     * Snapshot of the self-profile. Built on demand: the dispatch loop
     * accumulates raw ticks and the scheduled/executed counters live in
     * their own fields, so reading the profile (cold) pays the tick ->
     * ns conversion instead of every event (hot).
     */
    EngineProfile profile() const;

  private:
    /**
     * Ready-order entry. POD on purpose: heap sifts move 24 bytes and
     * never touch the callable, so comparator and payload can't interact
     * (the old priority_queue moved whole closures and had to const_cast
     * around top()).
     */
    struct Entry
    {
        SimTime when;
        std::uint64_t seq; //!< Insertion order; breaks timestamp ties.
        std::uint32_t slot;
        std::uint8_t tag;
    };

    /** Pooled event record; blocks are stable so invocation is in place. */
    struct Slot
    {
        EventFn fn;
        std::uint32_t next_free = kNoSlot;
    };

    static constexpr std::uint32_t kNoSlot = 0xffffffffu;
    static constexpr std::size_t kSlotsPerBlock = 256;

    static bool
    earlier(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    Slot &
    slotAt(std::uint32_t idx)
    {
        return blocks_[idx / kSlotsPerBlock][idx % kSlotsPerBlock];
    }

    std::uint32_t
    allocSlot()
    {
        if (free_head_ == kNoSlot)
            growArena();
        const std::uint32_t idx = free_head_;
        free_head_ = slotAt(idx).next_free;
        return idx;
    }

    void
    freeSlot(std::uint32_t idx)
    {
        slotAt(idx).next_free = free_head_;
        free_head_ = idx;
    }

    void
    pushEntry(SimTime when, EventTag tag, std::uint32_t slot)
    {
        assert(when >= now_);
        assert(tag < kEvTagCount);
        heap_.push_back(Entry{when, next_seq_++, slot,
                              static_cast<std::uint8_t>(tag)});
        siftUp(heap_.size() - 1);
        if (heap_.size() > peak_pending_)
            peak_pending_ = heap_.size();
    }

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);
    Entry popEntry();
    void growArena();
    void dispatch(const Entry &ev);
    static std::uint64_t profileTicks();

    std::vector<Entry> heap_;
    std::vector<std::unique_ptr<Slot[]>> blocks_;
    std::uint32_t free_head_ = kNoSlot;
    SimTime now_ = 0;
    std::uint64_t next_seq_ = 0; //!< also the count of events ever scheduled
    std::uint64_t executed_ = 0;
    std::size_t peak_pending_ = 0;
    bool profiling_ = false;
    double tick_ns_ = 0.0; //!< profiling tick -> ns rate (0 = uncalibrated)
    std::array<std::uint64_t, kEvTagCount> tag_events_{};
    std::array<std::uint64_t, kEvTagCount> tag_wall_ticks_{};
    std::uint64_t heap_callbacks_ = 0;
    std::uint64_t arena_blocks_ = 0;
};

} // namespace dri::sim
