#include "sim/resource.h"

#include <cassert>
#include <utility>

namespace dri::sim {

Resource::Resource(Engine &engine, std::size_t capacity, std::string name)
    : engine_(engine), capacity_(capacity), name_(std::move(name))
{
    assert(capacity > 0);
}

double
Resource::busyIntegral() const
{
    accountTo(engine_.now());
    return busy_integral_;
}

} // namespace dri::sim
