#include "sim/resource.h"

#include <cassert>
#include <utility>

namespace dri::sim {

Resource::Resource(Engine &engine, std::size_t capacity, std::string name)
    : engine_(engine), capacity_(capacity), name_(std::move(name))
{
    assert(capacity > 0);
}

void
Resource::accountTo(SimTime now) const
{
    busy_integral_ += static_cast<double>(in_use_) *
                      static_cast<double>(now - last_change_);
    last_change_ = now;
}

void
Resource::acquire(Grant cb)
{
    if (in_use_ < capacity_) {
        accountTo(engine_.now());
        ++in_use_;
        cb();
    } else {
        waiters_.push_back(std::move(cb));
    }
}

void
Resource::acquireFront(Grant cb)
{
    if (in_use_ < capacity_) {
        accountTo(engine_.now());
        ++in_use_;
        cb();
    } else {
        waiters_.push_front(std::move(cb));
    }
}

void
Resource::release()
{
    assert(in_use_ > 0);
    accountTo(engine_.now());
    if (waiters_.empty()) {
        --in_use_;
        return;
    }
    // Hand the unit directly to the oldest waiter; in_use_ stays constant.
    Grant next = std::move(waiters_.front());
    waiters_.pop_front();
    engine_.schedule(0, kEvGrant, std::move(next));
}

double
Resource::busyIntegral() const
{
    accountTo(engine_.now());
    return busy_integral_;
}

} // namespace dri::sim
