/**
 * @file
 * Small-buffer callable storage for the event hot path.
 *
 * std::function heap-allocates any capture list bigger than two words,
 * which on the simulator's hot path means one malloc/free pair per
 * scheduled event and per queued resource grant. InlineFn<Cap> stores
 * the callable inline (up to Cap bytes) and only falls back to the heap
 * for oversized captures — every fallback is counted, so the zero-
 * steady-state-allocation contract in sim_perf_test can assert the cap
 * actually covers the serving engine's closures.
 *
 * Move-only, like the closures it carries (pooled pointers, span ids,
 * Rng handles). Invocation is a single indirect call through a static
 * ops table; relocation (deque/engine-slot moves) goes through the same
 * table so non-trivially-movable captures stay correct.
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace dri::sim {

namespace detail {

/** Process-wide count of InlineFn heap fallbacks (relaxed; hot paths
 *  never take it — only captures bigger than the inline cap do). */
inline std::atomic<std::uint64_t> &
inlineFnHeapAllocs()
{
    static std::atomic<std::uint64_t> n{0};
    return n;
}

} // namespace detail

/** Total heap-fallback constructions since process start. */
inline std::uint64_t
inlineFnHeapAllocations()
{
    return detail::inlineFnHeapAllocs().load(std::memory_order_relaxed);
}

template <std::size_t Cap>
class InlineFn
{
  public:
    InlineFn() = default;

    template <class F,
              class = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFn>>>
    InlineFn(F &&f)
    {
        emplace(std::forward<F>(f));
    }

    InlineFn(InlineFn &&o) noexcept { moveFrom(o); }

    InlineFn &
    operator=(InlineFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    InlineFn(const InlineFn &) = delete;
    InlineFn &operator=(const InlineFn &) = delete;

    ~InlineFn() { reset(); }

    /**
     * Install a callable, destroying any current one. Returns true when
     * the capture fit the inline buffer (false = counted heap fallback).
     */
    template <class F>
    bool
    emplace(F &&f)
    {
        using Fn = std::decay_t<F>;
        reset();
        if constexpr (sizeof(Fn) <= Cap &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            new (buf_) Fn(std::forward<F>(f));
            ops_ = &inlineOps<Fn>();
            return true;
        } else {
            *reinterpret_cast<Fn **>(buf_) = new Fn(std::forward<F>(f));
            ops_ = &heapOps<Fn>();
            detail::inlineFnHeapAllocs().fetch_add(
                1, std::memory_order_relaxed);
            return false;
        }
    }

    void
    operator()()
    {
        ops_->invoke(buf_);
    }

    /**
     * Invoke, then destroy, through a single generated function — one
     * indirect call instead of two. The event dispatch loop is
     * megamorphic (a different closure type nearly every event), so each
     * indirect call here is a likely branch mispredict; fusing the pair
     * halves that cost on the hottest loop in the simulator.
     */
    void
    invokeAndReset()
    {
        const Ops *ops = ops_;
        ops_ = nullptr;
        ops->invoke_destroy(buf_);
    }

    explicit operator bool() const { return ops_ != nullptr; }

    void
    reset()
    {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        void (*destroy)(void *);
        void (*relocate)(void *dst, void *src);
        void (*invoke_destroy)(void *);
    };

    template <class Fn>
    static const Ops &
    inlineOps()
    {
        static const Ops ops = {
            [](void *p) { (*static_cast<Fn *>(p))(); },
            [](void *p) { static_cast<Fn *>(p)->~Fn(); },
            [](void *dst, void *src) {
                Fn *s = static_cast<Fn *>(src);
                new (dst) Fn(std::move(*s));
                s->~Fn();
            },
            [](void *p) {
                Fn *f = static_cast<Fn *>(p);
                (*f)();
                f->~Fn();
            },
        };
        return ops;
    }

    template <class Fn>
    static const Ops &
    heapOps()
    {
        static const Ops ops = {
            [](void *p) { (**static_cast<Fn **>(p))(); },
            [](void *p) { delete *static_cast<Fn **>(p); },
            [](void *dst, void *src) {
                *static_cast<Fn **>(dst) = *static_cast<Fn **>(src);
            },
            [](void *p) {
                Fn *f = *static_cast<Fn **>(p);
                (*f)();
                delete f;
            },
        };
        return ops;
    }

    void
    moveFrom(InlineFn &o) noexcept
    {
        ops_ = o.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(buf_, o.buf_);
            o.ops_ = nullptr;
        }
    }

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[Cap];
};

} // namespace dri::sim
