#include "sim/engine.h"

#include <cassert>
#include <utility>

namespace dri::sim {

void
Engine::schedule(Duration delay, EventFn fn)
{
    assert(delay >= 0);
    scheduleAt(now_ + delay, std::move(fn));
}

void
Engine::scheduleAt(SimTime when, EventFn fn)
{
    assert(when >= now_);
    queue_.push(Event{when, next_seq_++, std::move(fn)});
}

std::size_t
Engine::run()
{
    std::size_t n = 0;
    while (!queue_.empty()) {
        // Move the event out before popping so the callback may schedule.
        Event ev = std::move(const_cast<Event &>(queue_.top()));
        queue_.pop();
        now_ = ev.when;
        ev.fn();
        ++n;
        ++executed_;
    }
    return n;
}

std::size_t
Engine::runUntil(SimTime horizon)
{
    std::size_t n = 0;
    while (!queue_.empty() && queue_.top().when <= horizon) {
        Event ev = std::move(const_cast<Event &>(queue_.top()));
        queue_.pop();
        now_ = ev.when;
        ev.fn();
        ++n;
        ++executed_;
    }
    if (now_ < horizon)
        now_ = horizon;
    return n;
}

} // namespace dri::sim
