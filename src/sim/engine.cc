#include "sim/engine.h"

#include <cassert>
#include <chrono>
#include <utility>

namespace dri::sim {

const char *
eventTagName(EventTag tag)
{
    switch (tag) {
    case kEvUntagged: return "untagged";
    case kEvMainCompute: return "main_compute";
    case kEvSparseCompute: return "sparse_compute";
    case kEvWire: return "wire";
    case kEvTimer: return "timer";
    case kEvGrant: return "grant";
    case kEvDriver: return "driver";
    case kEvTagCount: break;
    }
    return "invalid";
}

void
Engine::schedule(Duration delay, EventTag tag, EventFn fn)
{
    assert(delay >= 0);
    scheduleAt(now_ + delay, tag, std::move(fn));
}

void
Engine::scheduleAt(SimTime when, EventTag tag, EventFn fn)
{
    assert(when >= now_);
    assert(tag < kEvTagCount);
    queue_.push(Event{when, next_seq_++, tag, std::move(fn)});
    ++profile_.scheduled;
    if (queue_.size() > profile_.peak_pending)
        profile_.peak_pending = queue_.size();
}

void
Engine::dispatch(Event &ev)
{
    now_ = ev.when;
    ++profile_.tag_events[ev.tag];
    if (profiling_) {
        const auto t0 = std::chrono::steady_clock::now();
        ev.fn();
        const auto t1 = std::chrono::steady_clock::now();
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count();
        profile_.wall_ns += ns;
        profile_.tag_wall_ns[ev.tag] += ns;
    } else {
        ev.fn();
    }
    ++executed_;
    ++profile_.executed;
}

std::size_t
Engine::run()
{
    std::size_t n = 0;
    while (!queue_.empty()) {
        // Move the event out before popping so the callback may schedule.
        Event ev = std::move(const_cast<Event &>(queue_.top()));
        queue_.pop();
        dispatch(ev);
        ++n;
    }
    return n;
}

std::size_t
Engine::runUntil(SimTime horizon)
{
    std::size_t n = 0;
    while (!queue_.empty() && queue_.top().when <= horizon) {
        Event ev = std::move(const_cast<Event &>(queue_.top()));
        queue_.pop();
        dispatch(ev);
        ++n;
    }
    if (now_ < horizon)
        now_ = horizon;
    return n;
}

} // namespace dri::sim
