#include "sim/engine.h"

#include <algorithm>
#include <chrono>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#define DRI_SIM_HAVE_TSC 1
#endif

namespace dri::sim {

namespace {

inline std::int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

const char *
eventTagName(EventTag tag)
{
    switch (tag) {
    case kEvUntagged: return "untagged";
    case kEvMainCompute: return "main_compute";
    case kEvSparseCompute: return "sparse_compute";
    case kEvWire: return "wire";
    case kEvTimer: return "timer";
    case kEvGrant: return "grant";
    case kEvDriver: return "driver";
    case kEvTagCount: break;
    }
    return "invalid";
}

// Heap arity. Four halves the sift depth of a binary heap and keeps each
// node's children within two cache lines of 24-byte entries; the strict
// (when, seq) total order makes the pop sequence identical either way.
static constexpr std::size_t kHeapArity = 4;

void
Engine::siftUp(std::size_t i)
{
    Entry e = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / kHeapArity;
        if (!earlier(e, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = e;
}

void
Engine::siftDown(std::size_t i)
{
    const std::size_t n = heap_.size();
    Entry e = heap_[i];
    for (;;) {
        const std::size_t first = kHeapArity * i + 1;
        if (first >= n)
            break;
        const std::size_t last = std::min(first + kHeapArity, n);
        std::size_t best = first;
        for (std::size_t c = first + 1; c < last; ++c)
            if (earlier(heap_[c], heap_[best]))
                best = c;
        if (!earlier(heap_[best], e))
            break;
        heap_[i] = heap_[best];
        i = best;
    }
    heap_[i] = e;
}

Engine::Entry
Engine::popEntry()
{
    const Entry top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(0);
    return top;
}

void
Engine::growArena()
{
    const std::size_t block = blocks_.size();
    assert(block * kSlotsPerBlock < kNoSlot - kSlotsPerBlock);
    blocks_.push_back(std::make_unique<Slot[]>(kSlotsPerBlock));
    Slot *slots = blocks_.back().get();
    const std::uint32_t base =
        static_cast<std::uint32_t>(block * kSlotsPerBlock);
    for (std::size_t i = 0; i < kSlotsPerBlock; ++i)
        slots[i].next_free = (i + 1 < kSlotsPerBlock)
                                 ? base + static_cast<std::uint32_t>(i) + 1
                                 : kNoSlot;
    free_head_ = base;
    ++arena_blocks_;
}

EngineProfile
Engine::profile() const
{
    EngineProfile p;
    p.scheduled = next_seq_;
    p.executed = executed_;
    p.peak_pending = peak_pending_;
    p.tag_events = tag_events_;
    p.heap_callbacks = heap_callbacks_;
    p.arena_blocks = arena_blocks_;
    // wall_ns is the sum of the converted per-tag values (not a separately
    // converted total), so the tag breakdown partitions it exactly.
    for (std::size_t t = 0; t < kEvTagCount; ++t) {
        p.tag_wall_ns[t] = static_cast<std::int64_t>(
            static_cast<double>(tag_wall_ticks_[t]) * tick_ns_);
        p.wall_ns += p.tag_wall_ns[t];
    }
    return p;
}

std::uint64_t
Engine::profileTicks()
{
#ifdef DRI_SIM_HAVE_TSC
    return __rdtsc();
#else
    return static_cast<std::uint64_t>(steadyNowNs());
#endif
}

void
Engine::enableProfiling(bool on)
{
    profiling_ = on;
    if (!on || tick_ns_ != 0.0)
        return;
#ifdef DRI_SIM_HAVE_TSC
    // Calibrate the TSC -> ns rate against steady_clock over a short
    // spin. Runs once, at enable time, so the cost never lands inside a
    // profiled region. Constant-rate TSC makes a single window enough
    // for the informational wall_ns fields.
    const std::int64_t t0 = steadyNowNs();
    const std::uint64_t c0 = profileTicks();
    std::int64_t t1;
    do {
        t1 = steadyNowNs();
    } while (t1 - t0 < 100000);
    const std::uint64_t c1 = profileTicks();
    tick_ns_ = c1 > c0
                   ? static_cast<double>(t1 - t0) / static_cast<double>(c1 - c0)
                   : 1.0;
#else
    tick_ns_ = 1.0; // profileTicks() already returns nanoseconds
#endif
}

void
Engine::dispatch(const Entry &ev)
{
    now_ = ev.when;
    ++tag_events_[ev.tag];
    // Invoke in place: slot blocks are stable, so the callback may schedule
    // (growing the arena or the heap) without invalidating its own frame.
    // invokeAndReset fuses call + destruction into one indirect call, and
    // the profiled path banks raw ticks (converted to ns at profile()
    // time, off the hot loop).
    EventFn &fn = slotAt(ev.slot).fn;
    if (profiling_) {
        const std::uint64_t c0 = profileTicks();
        fn.invokeAndReset();
        const std::uint64_t c1 = profileTicks();
        tag_wall_ticks_[ev.tag] += c1 - c0;
    } else {
        fn.invokeAndReset();
    }
    freeSlot(ev.slot);
    ++executed_;
}

std::size_t
Engine::run()
{
    std::size_t n = 0;
    while (!heap_.empty()) {
        const Entry ev = popEntry();
        dispatch(ev);
        ++n;
    }
    return n;
}

std::size_t
Engine::runUntil(SimTime horizon)
{
    std::size_t n = 0;
    while (!heap_.empty() && heap_.front().when <= horizon) {
        const Entry ev = popEntry();
        dispatch(ev);
        ++n;
    }
    if (now_ < horizon)
        now_ = horizon;
    return n;
}

} // namespace dri::sim
