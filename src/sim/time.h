/**
 * @file
 * Simulated-time definitions. All simulation timestamps and durations are
 * integer nanoseconds; helpers convert to/from the human units used in
 * reports (microseconds and milliseconds).
 */
#pragma once

#include <cstdint>

namespace dri::sim {

/** Absolute simulated timestamp in nanoseconds since simulation start. */
using SimTime = std::int64_t;

/** Duration in nanoseconds. */
using Duration = std::int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1000;
constexpr Duration kMillisecond = 1000 * 1000;
constexpr Duration kSecond = 1000LL * 1000 * 1000;

constexpr double
toMicros(Duration d)
{
    return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

constexpr double
toMillis(Duration d)
{
    return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

constexpr Duration
fromMicros(double us)
{
    return static_cast<Duration>(us * static_cast<double>(kMicrosecond));
}

constexpr Duration
fromMillis(double ms)
{
    return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}

} // namespace dri::sim
