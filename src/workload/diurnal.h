/**
 * @file
 * Time-varying fleet load: the diurnal request-rate model the autoscaling
 * control plane provisions against.
 *
 * The paper sizes capacity at a single operating point; production
 * recommendation traffic is famously diurnal (daily peak/trough swings of
 * 2x or more) with bursty overlays on top. DiurnalLoadModel captures both
 * as an epoch-indexed target QPS:
 *
 *   forecast(e)  = base * (1 + amplitude * sin(2*pi*e / epochs_per_day))
 *   realized(e)  = forecast(e) * (1 + bursts(e) * (burst_multiplier - 1)
 *                                      * burst_fraction)
 *
 * where bursts(e) is a per-epoch Poisson draw from a seeded stream. The
 * *forecast* is what a predictive autoscaler is allowed to see before the
 * epoch runs; the *realized* rate (bursts included) is what the fleet
 * simulator actually offers. The gap between them is exactly the headroom
 * question autoscaling policies trade off.
 *
 * Per-epoch request streams come from the existing RequestGenerator with
 * an epoch-salted seed, so every policy replays the identical stream for
 * a given epoch (paired comparisons) and reruns are bit-identical. An
 * optional per-net traffic mix shift scales odd-net table lookups up and
 * even-net lookups down across the day, shifting *where* sparse demand
 * lands without changing the request count — the scenario that makes
 * per-shard (rather than fleet-wide) replica vectors matter.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "model/model_spec.h"
#include "workload/request_generator.h"

namespace dri::workload {

/** Diurnal profile + burst overlay parameters. */
struct DiurnalLoadConfig
{
    /** Mean offered rate (the sinusoid's midline), requests/second. */
    double base_qps = 300.0;
    /** Peak = base*(1+amplitude), trough = base*(1-amplitude). */
    double amplitude = 0.5;
    /** Epochs per synthetic day (the sinusoid's period). */
    int epochs_per_day = 24;
    /** Phase offset in epochs (0: epoch 0 sits at the rising midline). */
    double phase_epochs = 0.0;

    /** Expected Poisson burst arrivals per epoch (0 = no bursts). */
    double bursts_per_epoch = 0.0;
    /** Rate multiplier while a burst is active. */
    double burst_multiplier = 2.0;
    /** Fraction of an epoch one burst occupies (caps realized uplift). */
    double burst_fraction = 0.25;

    /**
     * Per-net traffic mix shift amplitude in [0, 1): odd-net table
     * lookups scale by (1 + shift), even-net by (1 - shift), with
     * shift = net_mix_amplitude * sin(2*pi*e / epochs_per_day). Zero
     * disables the shift (single-net models are unaffected either way:
     * scaling every table the same way only rescales pooling).
     */
    double net_mix_amplitude = 0.0;

    /**
     * Recurring ranking contexts: when > 0, every request's feature
     * vector is drawn (uniformly, per-epoch stream) from a fixed pool of
     * this many distinct vectors, under a fresh user id. Production
     * traffic repeats contexts within short horizons — the regime the
     * pooled-result cache exists for — and with content-addressed cache
     * keys only *recurring vectors* (not coincidentally equal shapes)
     * hit. 0 keeps the classic all-distinct stream.
     */
    std::size_t context_pool = 0;

    /** Seed for burst draws and per-epoch request streams. */
    std::uint64_t seed = 0xd1a1;
};

/** Epoch-indexed target-QPS model with deterministic request streams. */
class DiurnalLoadModel
{
  public:
    DiurnalLoadModel(const model::ModelSpec &spec, DiurnalLoadConfig config);

    /** The smooth profile rate — all a predictive policy may see. */
    double forecastQps(int epoch) const;

    /** Highest forecast across a day (what StaticPeak provisions for). */
    double peakForecastQps() const;

    /** Burst arrivals drawn for this epoch (deterministic per seed). */
    int burstCount(int epoch) const;

    /** The rate the fleet simulator actually offers: forecast + bursts. */
    double realizedQps(int epoch) const;

    /**
     * The epoch's request stream: `n` requests from a generator seeded
     * by (seed, epoch), with the per-net mix shift applied and content
     * hashes refreshed. Identical calls return identical streams.
     */
    std::vector<Request> epochRequests(int epoch, std::size_t n) const;

    const DiurnalLoadConfig &config() const { return config_; }
    const model::ModelSpec &spec() const { return spec_; }

  private:
    double mixShift(int epoch) const;

    /** Copied, like CapacityPlanner and FleetSim: a model constructed
     *  from a temporary spec must not dangle. */
    model::ModelSpec spec_;
    DiurnalLoadConfig config_;
};

} // namespace dri::workload
