#include "workload/diurnal.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/hash.h"
#include "stats/rng.h"

namespace dri::workload {

namespace {

constexpr double kTwoPi = 2.0 * 3.14159265358979323846;

/** Small-mean Poisson draw (Knuth); burst rates are O(1) per epoch. */
int
samplePoisson(double mean, stats::Rng &rng)
{
    if (mean <= 0.0)
        return 0;
    const double l = std::exp(-mean);
    double p = 1.0;
    int k = 0;
    do {
        ++k;
        p *= rng.uniform();
    } while (p > l);
    return k - 1;
}

} // namespace

DiurnalLoadModel::DiurnalLoadModel(const model::ModelSpec &spec,
                                   DiurnalLoadConfig config)
    : spec_(spec), config_(config)
{
    assert(config_.base_qps > 0.0);
    assert(config_.amplitude >= 0.0 && config_.amplitude < 1.0);
    assert(config_.epochs_per_day > 0);
    assert(config_.burst_fraction >= 0.0 && config_.burst_fraction <= 1.0);
    assert(config_.net_mix_amplitude >= 0.0 &&
           config_.net_mix_amplitude < 1.0);
}

double
DiurnalLoadModel::forecastQps(int epoch) const
{
    const double t =
        (static_cast<double>(epoch) + config_.phase_epochs) /
        static_cast<double>(config_.epochs_per_day);
    return config_.base_qps * (1.0 + config_.amplitude * std::sin(kTwoPi * t));
}

double
DiurnalLoadModel::peakForecastQps() const
{
    // The continuous peak base*(1+amplitude) may fall between epoch grid
    // points; a static provisioner must cover every epoch it will face,
    // so report the grid maximum over one full day.
    double peak = 0.0;
    for (int e = 0; e < config_.epochs_per_day; ++e)
        peak = std::max(peak, forecastQps(e));
    return peak;
}

int
DiurnalLoadModel::burstCount(int epoch) const
{
    if (config_.bursts_per_epoch <= 0.0)
        return 0;
    // Independent per-epoch stream: draws for epoch e never perturb
    // epoch e+1, so any policy observing any prefix sees identical
    // bursts.
    stats::Rng rng(stats::mix64(
        config_.seed ^ (0xb1a5e5ULL + static_cast<std::uint64_t>(
                                          static_cast<std::uint32_t>(epoch)) *
                                          0x9e3779b97f4a7c15ULL)));
    return samplePoisson(config_.bursts_per_epoch, rng);
}

double
DiurnalLoadModel::realizedQps(int epoch) const
{
    const double uplift = static_cast<double>(burstCount(epoch)) *
                          (config_.burst_multiplier - 1.0) *
                          config_.burst_fraction;
    return forecastQps(epoch) * (1.0 + std::max(0.0, uplift));
}

double
DiurnalLoadModel::mixShift(int epoch) const
{
    if (config_.net_mix_amplitude <= 0.0)
        return 0.0;
    const double t = static_cast<double>(epoch) /
                     static_cast<double>(config_.epochs_per_day);
    return config_.net_mix_amplitude * std::sin(kTwoPi * t);
}

std::vector<Request>
DiurnalLoadModel::epochRequests(int epoch, std::size_t n) const
{
    GeneratorConfig gc;
    gc.seed = stats::mix64(config_.seed +
                           0x5eed0000ULL * static_cast<std::uint64_t>(
                                               static_cast<std::uint32_t>(
                                                   epoch + 1)));
    RequestGenerator gen(spec_, gc);
    std::vector<Request> requests;
    if (config_.context_pool > 0) {
        // Recurring contexts: the pool is seeded by the model seed ONLY
        // (stable across epochs — contexts persist day over day, which
        // is what gives the pooled-result cache cross-epoch continuity
        // to lose at a reconfiguration); the per-epoch stream is the
        // sampling order and the user ids.
        RequestGenerator pool_gen(spec_,
                                  GeneratorConfig{config_.seed ^ 0x9001});
        const auto pool = pool_gen.generate(config_.context_pool);
        stats::Rng pick(gc.seed);
        requests.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            Request req = pool[static_cast<std::size_t>(pick.uniformInt(
                0, static_cast<std::int64_t>(pool.size()) - 1))];
            req.id = (static_cast<std::uint64_t>(
                          static_cast<std::uint32_t>(epoch))
                      << 32) |
                     static_cast<std::uint64_t>(i);
            requests.push_back(std::move(req));
        }
    } else {
        requests = gen.generate(n);
    }

    const double shift = mixShift(epoch);
    if (shift != 0.0) {
        for (auto &req : requests) {
            for (std::size_t t = 0; t < req.table_lookups.size(); ++t) {
                const bool odd = (spec_.tables[t].net_id % 2) != 0;
                const double scale = odd ? 1.0 + shift : 1.0 - shift;
                req.table_lookups[t] = static_cast<std::int32_t>(
                    std::llround(scale * req.table_lookups[t]));
            }
            req.content_hash = req.computeContentHash();
        }
    }
    return requests;
}

} // namespace dri::workload
