#include "workload/request_generator.h"

#include <cassert>
#include <cmath>

#include "stats/hash.h"

namespace dri::workload {

std::int64_t
Request::totalLookups() const
{
    std::int64_t total = 0;
    for (auto n : table_lookups)
        total += n;
    return total;
}

std::int64_t
Request::lookupsForNet(const model::ModelSpec &spec, int net_id) const
{
    assert(table_lookups.size() == spec.tables.size());
    std::int64_t total = 0;
    for (std::size_t i = 0; i < table_lookups.size(); ++i)
        if (spec.tables[i].net_id == net_id)
            total += table_lookups[i];
    return total;
}

std::uint64_t
Request::computeContentHash() const
{
    // Chained splitmix64 over the feature vector. The id is deliberately
    // excluded: content identity is about *what* is ranked, not who
    // asked.
    std::uint64_t h =
        stats::mix64(0x5eedc0deULL ^ static_cast<std::uint64_t>(items));
    for (const auto n : table_lookups)
        h = stats::mix64(h ^ static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(n)));
    return h != 0 ? h : 1; // 0 is reserved for "no content identity"
}

Request
mergeRequests(const std::vector<Request> &parts)
{
    assert(!parts.empty());
    Request merged = parts.front();
    for (std::size_t i = 1; i < parts.size(); ++i) {
        const Request &p = parts[i];
        assert(p.table_lookups.size() == merged.table_lookups.size());
        merged.items += p.items;
        for (std::size_t t = 0; t < merged.table_lookups.size(); ++t)
            merged.table_lookups[t] += p.table_lookups[t];
    }
    // Content identity follows the merged feature vector, so two batches
    // coalescing the same per-table totals share pooled results
    // regardless of which users contributed them.
    merged.content_hash = merged.computeContentHash();
    return merged;
}

RequestGenerator::RequestGenerator(const model::ModelSpec &spec,
                                   GeneratorConfig config)
    : spec_(spec), config_(config), rng_(config.seed),
      items_sampler_(spec.items_alpha, spec.items_min, spec.items_max)
{
}

namespace {

/**
 * Sample a count with the given mean: exact Poisson for small means,
 * Gaussian approximation for large ones (we draw hundreds of counts per
 * request across hundreds of tables).
 */
std::int32_t
sampleCount(double mean, stats::Rng &rng)
{
    if (mean <= 0.0)
        return 0;
    if (mean < 32.0) {
        // Knuth's method.
        const double l = std::exp(-mean);
        double p = 1.0;
        std::int32_t k = 0;
        do {
            ++k;
            p *= rng.uniform();
        } while (p > l);
        return k - 1;
    }
    const double draw = rng.gaussian(mean, std::sqrt(mean));
    return static_cast<std::int32_t>(std::max(0.0, std::round(draw)));
}

} // namespace

Request
RequestGenerator::makeRequest(stats::Rng &rng, std::uint64_t id,
                              double size_scale) const
{
    Request req;
    req.id = id;
    const double items = items_sampler_.sample(rng) * size_scale;
    req.items = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(items)));

    req.table_lookups.resize(spec_.tables.size());
    const double items_d = static_cast<double>(req.items);
    for (std::size_t i = 0; i < spec_.tables.size(); ++i) {
        const auto &t = spec_.tables[i];
        const double mean = t.expectedLookups(items_d);
        if (t.pooling_per_request) {
            // Constant pooling (e.g. DRM3's dominant table: exactly one
            // lookup per request).
            req.table_lookups[i] =
                static_cast<std::int32_t>(std::llround(mean));
        } else {
            req.table_lookups[i] = sampleCount(mean, rng);
        }
    }
    req.content_hash = req.computeContentHash();
    return req;
}

Request
RequestGenerator::next()
{
    double scale = 1.0;
    if (config_.diurnal_amplitude > 0.0) {
        // One synthetic "day" every 1000 requests.
        const double phase = static_cast<double>(next_id_ % 1000) / 1000.0;
        scale = 1.0 + config_.diurnal_amplitude *
                          std::sin(2.0 * 3.14159265358979 * phase);
    }
    return makeRequest(rng_, next_id_++, scale);
}

std::vector<Request>
RequestGenerator::generate(std::size_t n)
{
    std::vector<Request> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(next());
    return out;
}

std::vector<double>
RequestGenerator::estimatePoolingFactors(std::size_t n) const
{
    // Independent stream: sampling must not perturb replayed requests.
    stats::Rng rng = rng_.fork(0xf00d);
    std::vector<double> sums(spec_.tables.size(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const Request req = makeRequest(rng, i, 1.0);
        for (std::size_t t = 0; t < sums.size(); ++t)
            sums[t] += static_cast<double>(req.table_lookups[t]);
    }
    for (auto &s : sums)
        s /= static_cast<double>(n);
    return sums;
}

} // namespace dri::workload
