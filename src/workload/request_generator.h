/**
 * @file
 * Synthetic ranking-request generation (substitution for the paper's
 * production replayer, Section V-B). Requests carry a heavy-tailed item
 * count and per-table lookup counts drawn around each table's pooling
 * factor; the identical request sequence is replayed against every sharding
 * configuration, matching the paper's paired-comparison methodology.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "model/model_spec.h"
#include "stats/distributions.h"
#include "stats/rng.h"

namespace dri::workload {

/** One ranking request. */
struct Request
{
    std::uint64_t id = 0;
    std::int64_t items = 0; //!< candidate items to rank

    /** Lookups per table, indexed by TableSpec::id. */
    std::vector<std::int32_t> table_lookups;

    /**
     * Content identity: a hash of the request's feature vector (items +
     * per-table lookup counts), *excluding* the user-facing id. Two
     * requests from different users with identical feature vectors carry
     * equal hashes — and may therefore share pooled-result-cache entries
     * — while distinct vectors of equal total shape do not. Zero means
     * "no content identity" (hand-built requests): consumers fall back
     * to shape-only keying. The generator and mergeRequests always fill
     * it; call computeContentHash() after mutating a request by hand.
     */
    std::uint64_t content_hash = 0;

    /** Total lookups across all tables. */
    std::int64_t totalLookups() const;

    /** Total lookups restricted to one net's tables. */
    std::int64_t lookupsForNet(const model::ModelSpec &spec,
                               int net_id) const;

    /** Hash of (items, table_lookups); never returns 0. */
    std::uint64_t computeContentHash() const;
};

/**
 * Coalesce several requests into one batched request: items and per-table
 * lookup counts sum; the id is taken from the first part (the oldest
 * request in a dynamic batch names the merged batch). Requires at least
 * one part; all parts must describe the same model (equal table counts).
 */
Request mergeRequests(const std::vector<Request> &parts);

/** Configuration for request synthesis. */
struct GeneratorConfig
{
    std::uint64_t seed = 42;
    /**
     * Diurnal modulation amplitude in [0, 1): scales request sizes
     * sinusoidally across the generated sequence, emulating the paper's
     * five-day evenly sampled request database.
     */
    double diurnal_amplitude = 0.0;
};

/** Generates deterministic request streams for a model. */
class RequestGenerator
{
  public:
    RequestGenerator(const model::ModelSpec &spec, GeneratorConfig config);

    /** Generate the next request. */
    Request next();

    /** Generate a batch of n requests. */
    std::vector<Request> generate(std::size_t n);

    /**
     * Estimate per-table pooling factors by sampling `n` requests, exactly
     * as the paper does (1000-request sample, Section III-B2). Returns mean
     * lookups per request indexed by table id. Does not perturb the main
     * request stream.
     */
    std::vector<double> estimatePoolingFactors(std::size_t n = 1000) const;

    const model::ModelSpec &spec() const { return spec_; }

  private:
    const model::ModelSpec &spec_;
    GeneratorConfig config_;
    stats::Rng rng_;
    stats::BoundedParetoSampler items_sampler_;
    std::uint64_t next_id_ = 0;

    Request makeRequest(stats::Rng &rng, std::uint64_t id,
                        double size_scale) const;
};

} // namespace dri::workload
