#include "workload/access_trace.h"

#include <algorithm>
#include <cassert>
#include <istream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <unordered_set>

#include "stats/distributions.h"

namespace dri::workload {

void
AccessTrace::write(std::ostream &os) const
{
    for (const auto &r : records_)
        os << r.request_id << " " << r.table_id << " " << r.row << "\n";
}

bool
AccessTrace::read(std::istream &is, AccessTrace *out)
{
    assert(out);
    out->records_.clear();
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        AccessRecord rec;
        if (!(ls >> rec.request_id >> rec.table_id >> rec.row))
            return false;
        out->records_.push_back(rec);
    }
    return true;
}

std::vector<std::int64_t>
AccessTrace::accessCounts(std::size_t num_tables) const
{
    std::vector<std::int64_t> counts(num_tables, 0);
    for (const auto &r : records_)
        if (r.table_id >= 0 &&
            static_cast<std::size_t>(r.table_id) < num_tables)
            ++counts[static_cast<std::size_t>(r.table_id)];
    return counts;
}

std::vector<std::int64_t>
AccessTrace::workingSetCurve(int table_id, std::size_t stride) const
{
    assert(stride > 0);
    std::vector<std::int64_t> curve;
    std::set<std::int64_t> seen;
    std::size_t accesses = 0;
    for (const auto &r : records_) {
        if (r.table_id != table_id)
            continue;
        seen.insert(r.row);
        ++accesses;
        if (accesses % stride == 0)
            curve.push_back(static_cast<std::int64_t>(seen.size()));
    }
    return curve;
}

double
AccessTrace::topRowCoverage(int table_id, std::size_t top_n) const
{
    std::map<std::int64_t, std::int64_t> counts;
    std::int64_t total = 0;
    for (const auto &r : records_) {
        if (r.table_id != table_id)
            continue;
        ++counts[r.row];
        ++total;
    }
    if (total == 0)
        return 0.0;
    std::vector<std::int64_t> sorted;
    sorted.reserve(counts.size());
    for (const auto &kv : counts)
        sorted.push_back(kv.second);
    std::sort(sorted.rbegin(), sorted.rend());
    std::int64_t covered = 0;
    for (std::size_t i = 0; i < std::min(top_n, sorted.size()); ++i)
        covered += sorted[i];
    return static_cast<double>(covered) / static_cast<double>(total);
}

AccessTrace
recordTrace(const model::ModelSpec &spec,
            const std::vector<Request> &requests, double popularity_skew,
            std::uint64_t seed)
{
    AccessTrace trace;
    stats::Rng rng(seed);

    // One Zipf sampler per table over a bounded popularity universe: rank
    // r maps to a deterministic pseudo-random row so popular rows are
    // stable across requests.
    constexpr std::size_t kRanks = 4096;
    stats::ZipfSampler zipf(kRanks, popularity_skew);

    for (const auto &req : requests) {
        assert(req.table_lookups.size() == spec.tables.size());
        for (std::size_t t = 0; t < spec.tables.size(); ++t) {
            const auto &table = spec.tables[t];
            for (std::int32_t k = 0; k < req.table_lookups[t]; ++k) {
                const std::size_t rank = zipf.sample(rng);
                // Spread ranks over the table's logical rows via a fixed
                // multiplicative hash (same rank -> same row).
                const std::int64_t row = static_cast<std::int64_t>(
                    (static_cast<std::uint64_t>(rank + 1) *
                     0x9e3779b97f4a7c15ULL) %
                    static_cast<std::uint64_t>(table.rows));
                trace.add(AccessRecord{req.id, static_cast<int>(t), row});
            }
        }
    }
    return trace;
}

AccessTrace
synthesizeMixedTrace(const model::ModelSpec &spec,
                     const MixedTraceConfig &config)
{
    assert(config.table_id >= 0 &&
           static_cast<std::size_t>(config.table_id) < spec.tables.size());
    const auto &table =
        spec.tables[static_cast<std::size_t>(config.table_id)];
    // Disjoint row ranges: the drifting recency window walks the lower
    // half of the table's row space, the Zipf head hashes into the upper
    // half, so neither component pollutes the other's reuse signal.
    const auto half = std::max<std::int64_t>(1, table.rows / 2);
    const auto upper = std::max<std::int64_t>(1, table.rows - half);

    AccessTrace trace;
    stats::Rng rng(config.seed);
    stats::ZipfSampler zipf(config.zipf_ranks, config.zipf_skew);
    const std::size_t stride = std::max<std::size_t>(1, config.drift_stride);

    for (std::size_t i = 0; i < config.accesses; ++i) {
        std::int64_t row = 0;
        if (rng.bernoulli(config.recency_fraction)) {
            const auto base = static_cast<std::int64_t>(i / stride);
            const auto offset = rng.uniformInt(
                0, static_cast<std::int64_t>(config.window_rows) - 1);
            row = (base + offset) % half;
        } else {
            const std::size_t rank = zipf.sample(rng);
            row = half + static_cast<std::int64_t>(
                             (static_cast<std::uint64_t>(rank + 1) *
                              0x9e3779b97f4a7c15ULL) %
                             static_cast<std::uint64_t>(upper));
        }
        trace.add(AccessRecord{static_cast<std::uint64_t>(i),
                               config.table_id, row});
    }
    return trace;
}

TraceFootprint
traceFootprint(const model::ModelSpec &spec, const AccessTrace &trace)
{
    std::vector<std::unordered_set<std::int64_t>> distinct(
        spec.tables.size());
    for (const auto &rec : trace.records())
        if (rec.table_id >= 0 &&
            static_cast<std::size_t>(rec.table_id) < distinct.size())
            distinct[static_cast<std::size_t>(rec.table_id)].insert(rec.row);

    TraceFootprint footprint;
    for (std::size_t t = 0; t < distinct.size(); ++t) {
        const auto rows = static_cast<std::int64_t>(distinct[t].size());
        footprint.distinct_rows += rows;
        footprint.universe_bytes += rows * spec.tables[t].storedRowBytes();
    }
    return footprint;
}

} // namespace dri::workload
