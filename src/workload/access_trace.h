/**
 * @file
 * Embedding-table access traces (Section IX): the paper points academics
 * at trace-driven experimentation — "Bandana used embedding table access
 * traces, which can be collected offline, to reduce effective DRAM
 * requirements... explorations [of] table placement and frequency-based
 * caching are also valuable directions enabled with trace-based analyses."
 *
 * This module records per-table access streams from generated requests
 * (with Zipf-skewed row ids), serializes them to a compact text format,
 * reads them back, and computes the statistics such studies start from:
 * per-table access counts, row popularity skew, and working-set curves
 * (unique rows touched vs. accesses), which directly feed cache-sizing
 * decisions.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "model/model_spec.h"
#include "stats/rng.h"
#include "workload/request_generator.h"

namespace dri::workload {

/** One recorded embedding access. */
struct AccessRecord
{
    std::uint64_t request_id = 0;
    int table_id = 0;
    std::int64_t row = 0;
};

/** An offline embedding-access trace. */
class AccessTrace
{
  public:
    AccessTrace() = default;

    void add(const AccessRecord &record) { records_.push_back(record); }
    const std::vector<AccessRecord> &records() const { return records_; }
    std::size_t size() const { return records_.size(); }

    /** Serialize as one "request table row" line per access. */
    void write(std::ostream &os) const;

    /** Parse the format produced by write(); returns false on malformed
     *  input. */
    static bool read(std::istream &is, AccessTrace *out);

    /** Accesses per table, indexed by table id. */
    std::vector<std::int64_t> accessCounts(std::size_t num_tables) const;

    /**
     * Working-set curve for one table: element i is the number of
     * *distinct* rows touched within the first (i+1) * stride accesses to
     * that table. Concave growth indicates cacheable popularity skew.
     */
    std::vector<std::int64_t> workingSetCurve(int table_id,
                                              std::size_t stride) const;

    /**
     * Fraction of a table's accesses captured by its hottest `top_n`
     * rows — the quantity that justifies frequency-based caching.
     */
    double topRowCoverage(int table_id, std::size_t top_n) const;

  private:
    std::vector<AccessRecord> records_;
};

/**
 * Distinct-row footprint of a trace: rows counted per (table, row) pair,
 * bytes via each table's stored row size — the cacheable universe that
 * capacity fractions and analytic-vs-measured comparisons are taken
 * against. Records naming tables outside the spec are ignored, matching
 * TieredCacheSim::replay.
 */
struct TraceFootprint
{
    std::int64_t distinct_rows = 0;
    std::int64_t universe_bytes = 0;
};

TraceFootprint traceFootprint(const model::ModelSpec &spec,
                              const AccessTrace &trace);

/**
 * Record a trace by expanding requests into row accesses. Row ids within
 * each table follow a Zipf(popularity_skew) distribution over the table's
 * logical rows — embedding traffic is popularity-skewed but heavy-tailed.
 */
AccessTrace recordTrace(const model::ModelSpec &spec,
                        const std::vector<Request> &requests,
                        double popularity_skew, std::uint64_t seed);

/**
 * Parameters of the synthetic mixed recency/frequency trace — the
 * workload that separates adaptive eviction (ARC) from the pure-recency
 * and pure-frequency policies it interpolates between.
 */
struct MixedTraceConfig
{
    std::size_t accesses = 60000;
    int table_id = 0;
    /**
     * Fraction of accesses drawn from the *recency* component: a dense
     * working-set window that drifts forward one row every drift_stride
     * accesses, so rows are re-referenced heavily while the window covers
     * them and never again after it passes. 0 = pure frequency (static
     * Zipf), 1 = pure recency.
     */
    double recency_fraction = 0.5;
    std::size_t window_rows = 512;
    std::size_t drift_stride = 8;
    /** Frequency component: static Zipf over a bounded rank universe. */
    double zipf_skew = 0.8;
    std::size_t zipf_ranks = 4096;
    std::uint64_t seed = 1;
};

/**
 * Synthesize a single-table trace blending a drifting-window recency
 * stream with a static-Zipf frequency stream (per MixedTraceConfig). The
 * two components address disjoint row ranges of the table, so their hit
 * opportunities never alias. Used by the ARC property tests and
 * examples/cache_v2_study.
 */
AccessTrace synthesizeMixedTrace(const model::ModelSpec &spec,
                                 const MixedTraceConfig &config);

} // namespace dri::workload
