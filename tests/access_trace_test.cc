/**
 * @file
 * Tests for the offline embedding-access trace module (Section IX's
 * trace-driven methodology): recording, serialization round-trip, and the
 * cache-study statistics (access counts, working sets, top-row coverage).
 */
#include <gtest/gtest.h>

#include <sstream>

#include "model/generators.h"
#include "workload/access_trace.h"

namespace {

using namespace dri;
using workload::AccessTrace;

model::ModelSpec
smallSpec()
{
    model::ModelSpec spec;
    spec.name = "t";
    spec.mean_items = 10.0;
    spec.items_min = 4.0;
    spec.items_max = 40.0;
    spec.nets = {{0, "n", 1.0, 0.0}};
    for (int i = 0; i < 3; ++i) {
        model::TableSpec t;
        t.id = i;
        t.name = "t" + std::to_string(i);
        t.rows = 100000;
        t.dim = 8;
        t.pooling_per_item = 2.0;
        spec.tables.push_back(t);
    }
    return spec;
}

workload::AccessTrace
makeTrace(const model::ModelSpec &spec, std::size_t n_requests,
          double skew = 0.9)
{
    workload::RequestGenerator gen(spec,
                                   workload::GeneratorConfig{21, 0.0});
    return workload::recordTrace(spec, gen.generate(n_requests), skew, 5);
}

TEST(AccessTrace, RecordsMatchRequestLookups)
{
    const auto spec = smallSpec();
    workload::RequestGenerator gen(spec,
                                   workload::GeneratorConfig{21, 0.0});
    const auto requests = gen.generate(20);
    const auto trace = workload::recordTrace(spec, requests, 0.9, 5);

    std::int64_t expected = 0;
    for (const auto &r : requests)
        expected += r.totalLookups();
    EXPECT_EQ(static_cast<std::int64_t>(trace.size()), expected);

    const auto counts = trace.accessCounts(spec.tables.size());
    std::int64_t sum = 0;
    for (auto c : counts)
        sum += c;
    EXPECT_EQ(sum, expected);
}

TEST(AccessTrace, RowsWithinTableBounds)
{
    const auto spec = smallSpec();
    const auto trace = makeTrace(spec, 30);
    for (const auto &r : trace.records()) {
        EXPECT_GE(r.row, 0);
        EXPECT_LT(r.row,
                  spec.tables[static_cast<std::size_t>(r.table_id)].rows);
    }
}

TEST(AccessTrace, SerializationRoundTrip)
{
    const auto spec = smallSpec();
    const auto trace = makeTrace(spec, 10);
    std::stringstream buffer;
    trace.write(buffer);

    AccessTrace back;
    ASSERT_TRUE(AccessTrace::read(buffer, &back));
    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(back.records()[i].request_id,
                  trace.records()[i].request_id);
        EXPECT_EQ(back.records()[i].table_id, trace.records()[i].table_id);
        EXPECT_EQ(back.records()[i].row, trace.records()[i].row);
    }
}

TEST(AccessTrace, ReadRejectsGarbage)
{
    std::stringstream bad("1 2 not-a-number\n");
    AccessTrace out;
    EXPECT_FALSE(AccessTrace::read(bad, &out));
}

TEST(AccessTrace, WorkingSetCurveConcaveUnderSkew)
{
    const auto spec = smallSpec();
    const auto trace = makeTrace(spec, 400, 0.95);
    const auto curve = trace.workingSetCurve(0, 100);
    ASSERT_GE(curve.size(), 4u);
    // Monotone non-decreasing...
    for (std::size_t i = 1; i < curve.size(); ++i)
        EXPECT_GE(curve[i], curve[i - 1]);
    // ...and concave: later increments smaller than early ones (popular
    // rows repeat), the property frequency-based caching exploits.
    const auto early = curve[1] - curve[0];
    const auto late = curve[curve.size() - 1] - curve[curve.size() - 2];
    EXPECT_LE(late, early);
}

TEST(AccessTrace, TopRowCoverageGrowsWithSkew)
{
    const auto spec = smallSpec();
    const auto flat = makeTrace(spec, 300, 0.1);
    const auto skewed = makeTrace(spec, 300, 1.1);
    const double flat_cov = flat.topRowCoverage(0, 64);
    const double skew_cov = skewed.topRowCoverage(0, 64);
    EXPECT_GT(skew_cov, flat_cov);
    EXPECT_GT(skew_cov, 0.3); // a small hot set captures real mass
    EXPECT_DOUBLE_EQ(flat.topRowCoverage(99, 10), 0.0); // unknown table
}

} // namespace
