/**
 * @file
 * Tests for the future-work extensions (Section X): automatic sharding,
 * the paging-from-disk alternative, sparse-shard replication, SLA
 * accounting, and Chrome trace export.
 */
#include <gtest/gtest.h>

#include "core/auto_shard.h"
#include "dc/paging.h"
#include "model/generators.h"
#include "trace/export.h"
#include "workload/request_generator.h"

namespace {

using namespace dri;

TEST(AutoShard, FindsFeasiblePlanForDrm1)
{
    const auto spec = model::makeDrm1();
    workload::RequestGenerator gen(spec,
                                   workload::GeneratorConfig{3, 0.0});
    const auto requests = gen.generate(120);
    const auto pooling = gen.estimatePoolingFactors(300);

    core::AutoShardConstraints constraints;
    constraints.shard_memory_limit_bytes = dc::scSmall().usableModelBytes();
    constraints.max_compute_overhead = 0.30;
    constraints.max_shards = 8;

    const auto result = core::autoShard(spec, requests, pooling, constraints,
                                        core::ServingConfig{});
    ASSERT_TRUE(result.found);
    // 194 GiB over <= 51 GiB shards requires at least 4 shards.
    EXPECT_GE(result.best.numShards(), 4);
    EXPECT_TRUE(result.best_score.memory_feasible);
    EXPECT_TRUE(result.best_score.meets_compute_budget);
    std::string err;
    EXPECT_TRUE(result.best.validate(spec, &err,
                                     constraints.shard_memory_limit_bytes))
        << err;
    // The 1-shard candidate must have been rejected on memory.
    bool saw_infeasible_one_shard = false;
    for (const auto &c : result.considered)
        if (c.plan.numShards() == 1)
            saw_infeasible_one_shard = !c.memory_feasible;
    EXPECT_TRUE(saw_infeasible_one_shard);
}

TEST(AutoShard, ImpossibleBudgetFallsBackToLeastCompute)
{
    // When no feasible plan meets the compute budget, the search falls
    // back to the memory-feasible plan with the least compute overhead.
    const auto spec = model::makeDrm1();
    workload::RequestGenerator gen(spec, workload::GeneratorConfig{5, 0.0});
    const auto requests = gen.generate(100);
    const auto pooling = gen.estimatePoolingFactors(300);

    core::AutoShardConstraints constraints;
    constraints.shard_memory_limit_bytes = dc::scSmall().usableModelBytes();
    constraints.max_compute_overhead = 0.001; // unattainable
    constraints.max_shards = 8;
    const auto result = core::autoShard(spec, requests, pooling, constraints,
                                        core::ServingConfig{});
    ASSERT_TRUE(result.found);
    EXPECT_FALSE(result.best_score.meets_compute_budget);
    for (const auto &c : result.considered) {
        if (!c.memory_feasible)
            continue;
        EXPECT_LE(result.best_score.overhead.compute_overhead[0],
                  c.overhead.compute_overhead[0] + 1e-9)
            << c.plan.label();
    }
}

TEST(AutoShard, HugeTableModelRestrictedToNsbp)
{
    const auto spec = model::makeDrm3();
    workload::RequestGenerator gen(spec, workload::GeneratorConfig{7, 0.0});
    const auto requests = gen.generate(80);
    const auto pooling = gen.estimatePoolingFactors(200);

    core::AutoShardConstraints constraints;
    constraints.shard_memory_limit_bytes = dc::scLarge().usableModelBytes();
    constraints.max_shards = 8;
    const auto result = core::autoShard(spec, requests, pooling, constraints,
                                        core::ServingConfig{});
    ASSERT_TRUE(result.found);
    for (const auto &c : result.considered) {
        if (c.plan.numShards() >= 2) {
            EXPECT_EQ(c.plan.strategy(), "NSBP") << c.plan.label();
        }
    }
}

TEST(Paging, ResidentFractionAndHitRate)
{
    const auto platform = dc::scLarge(); // ~204.8 GB usable
    const std::int64_t model_bytes = 400LL * 1000 * 1000 * 1000;
    // usable = 0.8 * 256 GiB = ~219.9e9 B; resident = 219.9/400 = 0.55.
    const double f = dc::residentFraction(model_bytes, platform);
    EXPECT_NEAR(f, 0.55, 0.01);
    // Skewed accesses capture more than the resident fraction.
    EXPECT_GT(dc::hitRate(f, 0.6), f);
    EXPECT_DOUBLE_EQ(dc::hitRate(1.0, 0.6), 1.0);
    EXPECT_DOUBLE_EQ(dc::hitRate(0.0, 0.6), 0.0);
    // Uniform accesses: hit rate equals the resident fraction.
    EXPECT_NEAR(dc::hitRate(0.3, 0.0), 0.3, 1e-12);
}

TEST(Paging, LookupCostInterpolatesDramToSsd)
{
    const auto platform = dc::scLarge();
    dc::PagingConfig config;
    // Fully resident: pure DRAM cost.
    EXPECT_NEAR(dc::pagedLookupNs(1LL << 30, platform, config),
                config.dram_lookup_ns, 1e-9);
    // 10x over DRAM: cost dominated by SSD misses but far below pure SSD.
    const double paged =
        dc::pagedLookupNs(2048LL << 30, platform, config);
    EXPECT_GT(paged, 10 * config.dram_lookup_ns);
    EXPECT_LT(paged, config.ssd_lookup_ns);
    // Monotone in model size.
    EXPECT_LT(dc::pagedLookupNs(256LL << 30, platform, config), paged);
}

TEST(Replication, ReplicasReduceQueueingAtHighQps)
{
    const auto spec = model::makeDrm1();
    workload::RequestGenerator gen(spec,
                                   workload::GeneratorConfig{11, 0.0});
    const auto requests = gen.generate(250);
    const auto pooling = gen.estimatePoolingFactors(200);
    const auto plan = core::makeLoadBalanced(spec, 2, pooling);

    core::ServingConfig one;
    one.sparse_replicas = 1;
    core::ServingConfig three;
    three.sparse_replicas = 3;

    core::ServingSimulation sim1(spec, plan, one);
    const auto s1 = sim1.replayOpenLoop(requests, 250.0);
    core::ServingSimulation sim3(spec, plan, three);
    const auto s3 = sim3.replayOpenLoop(requests, 250.0);

    // Replicas absorb sparse-shard queueing; remote queue time shrinks.
    double q1 = 0.0, q3 = 0.0;
    for (const auto &s : s1)
        q1 += static_cast<double>(s.emb_queue);
    for (const auto &s : s3)
        q3 += static_cast<double>(s.emb_queue);
    EXPECT_LE(q3, q1);
}

TEST(Replication, SerialResultsUnaffectedByReplicas)
{
    const auto spec = model::makeDrm2();
    workload::RequestGenerator gen(spec,
                                   workload::GeneratorConfig{13, 0.0});
    const auto requests = gen.generate(30);
    const auto pooling = gen.estimatePoolingFactors(200);
    const auto plan = core::makeLoadBalanced(spec, 2, pooling);

    core::ServingConfig one;
    core::ServingConfig four;
    four.sparse_replicas = 4;
    core::ServingSimulation sim1(spec, plan, one);
    core::ServingSimulation sim4(spec, plan, four);
    const auto a = sim1.replaySerial(requests);
    const auto b = sim4.replaySerial(requests);
    // Serial traffic never queues on sparse shards, so quantiles match to
    // within jitter reuse (identical seeds -> identical draws).
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].e2e, b[i].e2e);
}

TEST(Sla, ViolationRate)
{
    std::vector<core::RequestStats> stats;
    for (int i = 1; i <= 10; ++i) {
        core::RequestStats s;
        s.e2e = sim::fromMillis(static_cast<double>(i));
        stats.push_back(s);
    }
    EXPECT_DOUBLE_EQ(core::slaViolationRate(stats, 5.0), 0.5);
    EXPECT_DOUBLE_EQ(core::slaViolationRate(stats, 100.0), 0.0);
    EXPECT_DOUBLE_EQ(core::slaViolationRate(stats, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(core::slaViolationRate({}, 1.0), 0.0);
}

TEST(ChromeTrace, ExportsValidEventsJson)
{
    trace::TraceCollector collector(true);
    trace::Span s;
    s.request_id = 9;
    s.shard_id = trace::kMainShard;
    s.net_id = 0;
    s.batch_id = 1;
    s.layer = trace::Layer::DenseOp;
    s.begin = 1000;
    s.end = 3000;
    collector.addSpan(s);
    s.shard_id = 2;
    s.layer = trace::Layer::SparseOp;
    collector.addSpan(s);

    const std::string json = trace::chromeTraceJson(collector, 9);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"Dense Ops\""), std::string::npos);
    EXPECT_NE(json.find("\"Caffe2 Sparse Ops\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"pid\": 0"), std::string::npos);  // main shard
    EXPECT_NE(json.find("\"pid\": 3"), std::string::npos);  // shard 2
    // Balanced braces/brackets (cheap well-formedness check).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(ChromeTrace, FiltersByRequest)
{
    trace::TraceCollector collector(true);
    trace::Span s;
    s.request_id = 1;
    s.begin = 0;
    s.end = 10;
    collector.addSpan(s);
    s.request_id = 2;
    collector.addSpan(s);
    const std::string one = trace::chromeTraceJson(collector, 1);
    EXPECT_NE(one.find("\"request\": 1"), std::string::npos);
    EXPECT_EQ(one.find("\"request\": 2"), std::string::npos);
    const std::string all = trace::chromeTraceJson(collector, 0, true);
    EXPECT_NE(all.find("\"request\": 2"), std::string::npos);
}

} // namespace
