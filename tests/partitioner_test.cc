/**
 * @file
 * Tests for the model partitioner and functional distributed execution:
 * the distributed model (RPC ops + shard nets + row-split pieces) must
 * compute bit-identical outputs to the singular model — the correctness
 * contract of capacity-driven sharding.
 */
#include <gtest/gtest.h>

#include "core/local_executor.h"
#include "core/partitioner.h"
#include "core/strategies.h"
#include "graph/executor.h"
#include "model/dlrm_builder.h"
#include "model/generators.h"
#include "stats/rng.h"
#include "tensor/kernels.h"

namespace {

using namespace dri;

/** Small spec with two nets, several tables, and one "huge" table. */
model::ModelSpec
smallSpec()
{
    model::ModelSpec spec;
    spec.name = "small";
    spec.mean_items = 8.0;
    spec.items_min = 2.0;
    spec.items_max = 32.0;
    spec.default_batch_size = 4;
    spec.nets = {{0, "net1", 1000.0, 100.0}, {1, "net2", 1000.0, 100.0}};
    for (int i = 0; i < 8; ++i) {
        model::TableSpec t;
        t.id = i;
        t.name = "small_t" + std::to_string(i);
        t.net_id = i < 4 ? 0 : 1;
        t.rows = (i == 5) ? 4000000 : 2000; // table 5 is the huge one
        t.dim = 8;
        t.pooling_per_item = 2.0;
        spec.tables.push_back(t);
    }
    return spec;
}

/** Populate request inputs into a workspace. */
void
fillInputs(const model::ModelSpec &spec, graph::Workspace &ws,
           std::int64_t items, std::uint64_t seed)
{
    stats::Rng rng(seed);
    auto &dense = ws.createTensor("dense_input");
    dense = tensor::Tensor(items, 4);
    for (std::int64_t i = 0; i < dense.numel(); ++i)
        dense.at(i) = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (const auto &t : spec.tables) {
        auto &ids = ws.createIndexList(model::idsBlobName(t));
        for (std::int64_t item = 0; item < items; ++item) {
            const auto n = rng.uniformInt(0, 4);
            ids.lengths.push_back(static_cast<std::int32_t>(n));
            for (std::int64_t k = 0; k < n; ++k)
                ids.indices.push_back(rng.uniformInt(0, t.rows - 1));
        }
    }
}

/** Run the singular model; returns the final output tensor. */
tensor::Tensor
runSingular(const model::BuiltModel &built, std::int64_t items,
            std::uint64_t seed)
{
    graph::Workspace ws;
    built.prepareWorkspace(ws);
    fillInputs(*built.spec, ws, items, seed);
    graph::Executor exec;
    for (const auto &net : built.nets)
        exec.run(net, ws);
    return ws.tensorBlob(built.outputBlob());
}

/** Run the distributed model through the LocalRemoteExecutor. */
tensor::Tensor
runDistributed(const model::BuiltModel &built,
               const core::ShardingPlan &plan, std::int64_t items,
               std::uint64_t seed)
{
    const auto dm = core::partitionModel(built, plan);
    core::LocalRemoteExecutor remote(dm);
    graph::Workspace ws;
    built.prepareWorkspace(ws);
    fillInputs(*built.spec, ws, items, seed);
    graph::Executor exec(&remote);
    for (const auto &net : dm.main_nets)
        exec.run(net, ws);
    return ws.tensorBlob(built.outputBlob());
}

TEST(Partitioner, SingularPlanClonesNets)
{
    const auto spec = smallSpec();
    const auto built = model::DlrmBuilder(spec, 4, 8, 16, 0x42).build();
    const auto dm = core::partitionModel(built, core::makeSingular(spec));
    EXPECT_EQ(dm.main_nets.size(), built.nets.size());
    EXPECT_TRUE(dm.shard_nets.empty());
    for (std::size_t i = 0; i < dm.main_nets.size(); ++i)
        EXPECT_EQ(dm.main_nets[i].size(), built.nets[i].size());
}

TEST(Partitioner, MovesAllSlsOpsToShards)
{
    const auto spec = smallSpec();
    const auto built = model::DlrmBuilder(spec, 4, 8, 16, 0x42).build();
    const auto plan = core::makeCapacityBalanced(spec, 3);
    const auto dm = core::partitionModel(built, plan);

    std::size_t main_sls = 0, shard_sls = 0, rpc_ops = 0;
    for (const auto &net : dm.main_nets) {
        main_sls += net.countClass(graph::OpClass::Sparse);
        rpc_ops += net.countClass(graph::OpClass::Rpc);
    }
    for (const auto &kv : dm.shard_nets)
        for (const auto &net : kv.second)
            shard_sls += net.countClass(graph::OpClass::Sparse);
    EXPECT_EQ(main_sls, 0u);
    EXPECT_EQ(shard_sls, spec.tables.size());
    EXPECT_GT(rpc_ops, 0u);
}

TEST(Partitioner, ShardNetsAreStateless)
{
    // Every shard-net input is a request blob (ids), never an
    // intermediate of another net — the paper's stateless-shard rule.
    const auto spec = smallSpec();
    const auto built = model::DlrmBuilder(spec, 4, 8, 16, 0x42).build();
    const auto plan = core::makeCapacityBalanced(spec, 2);
    const auto dm = core::partitionModel(built, plan);
    for (const auto &kv : dm.shard_nets)
        for (const auto &net : kv.second)
            for (const auto &in : net.externalInputs())
                EXPECT_EQ(in.rfind("ids_", 0), 0u) << in;
}

/** Property: distributed output == singular output for every strategy. */
class EquivalenceTest : public ::testing::TestWithParam<int>
{
};

TEST_P(EquivalenceTest, CapacityBalancedMatchesSingular)
{
    const auto spec = smallSpec();
    const auto built = model::DlrmBuilder(spec, 4, 8, 16, 0x42).build();
    const auto singular = runSingular(built, 6, 0x111);
    const auto plan = core::makeCapacityBalanced(spec, GetParam());
    const auto dist = runDistributed(built, plan, 6, 0x111);
    EXPECT_LT(tensor::l1Distance(singular, dist), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Shards, EquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(Equivalence, OneShardMatchesSingular)
{
    const auto spec = smallSpec();
    const auto built = model::DlrmBuilder(spec, 4, 8, 16, 0x42).build();
    EXPECT_LT(tensor::l1Distance(
                  runSingular(built, 5, 0x7),
                  runDistributed(built, core::makeOneShard(spec), 5, 0x7)),
              1e-5);
}

TEST(Equivalence, RowSplitHugeTableMatchesSingular)
{
    // NSBP with a tiny "server memory" forces the huge table to row-split;
    // partial SLS sums must recombine exactly.
    const auto spec = smallSpec();
    const auto built = model::DlrmBuilder(spec, 4, 8, 16, 0x42).build();
    const auto plan = core::makeNsbp(spec, 5, 8LL * 1024 * 1024);
    bool any_split = false;
    for (const auto &a : plan.assignments())
        any_split = any_split || a.isSplit();
    ASSERT_TRUE(any_split) << "test requires a row-split table";

    EXPECT_LT(tensor::l1Distance(runSingular(built, 7, 0x99),
                                 runDistributed(built, plan, 7, 0x99)),
              1e-5);
}

TEST(Equivalence, ManySeedsAndSizes)
{
    const auto spec = smallSpec();
    const auto built = model::DlrmBuilder(spec, 4, 8, 16, 0x42).build();
    const auto plan = core::makeCapacityBalanced(spec, 3);
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL})
        for (std::int64_t items : {1LL, 4LL, 13LL})
            EXPECT_LT(tensor::l1Distance(
                          runSingular(built, items, seed),
                          runDistributed(built, plan, items, seed)),
                      1e-5)
                << "seed " << seed << " items " << items;
}

TEST(LocalExecutor, CountsCalls)
{
    const auto spec = smallSpec();
    const auto built = model::DlrmBuilder(spec, 4, 8, 16, 0x42).build();
    const auto plan = core::makeCapacityBalanced(spec, 2);
    const auto dm = core::partitionModel(built, plan);
    core::LocalRemoteExecutor remote(dm);

    graph::Workspace ws;
    built.prepareWorkspace(ws);
    fillInputs(spec, ws, 3, 0x5);
    graph::Executor exec(&remote);
    for (const auto &net : dm.main_nets)
        exec.run(net, ws);
    // One call per (shard, net) with tables present.
    std::size_t expected = 0;
    for (const auto &kv : dm.shard_nets)
        expected += kv.second.size();
    EXPECT_EQ(remote.callCount(), expected);
}

TEST(Partitioner, RpcRequestsCarryCorrectShardTargets)
{
    const auto spec = smallSpec();
    const auto built = model::DlrmBuilder(spec, 4, 8, 16, 0x42).build();
    const auto plan = core::makeCapacityBalanced(spec, 3);
    const auto dm = core::partitionModel(built, plan);
    for (const auto &net : dm.main_nets)
        for (const auto &op : net.ops())
            if (const auto *rpc =
                    dynamic_cast<const graph::RpcRequestOp *>(op.get())) {
                EXPECT_GE(rpc->shardId(), 0);
                EXPECT_LT(rpc->shardId(), 3);
                EXPECT_NE(dm.findShardNet(rpc->shardId(), rpc->remoteNet()),
                          nullptr);
            }
}

} // namespace
