/**
 * @file
 * End-to-end integration tests: small replays that assert the *paper's
 * findings* hold in the reproduction — the qualitative results of
 * Sections VI and VII expressed as invariants.
 */
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/serving.h"
#include "compress/compression.h"
#include "core/strategies.h"
#include "dc/platform.h"
#include "model/generators.h"
#include "workload/request_generator.h"

namespace {

using namespace dri;

struct Fixture
{
    model::ModelSpec spec;
    std::vector<workload::Request> requests;
    std::vector<double> pooling;

    explicit Fixture(model::ModelSpec s, std::size_t n = 300)
        : spec(std::move(s))
    {
        workload::RequestGenerator gen(
            spec, workload::GeneratorConfig{0xfeed, 0.0});
        requests = gen.generate(n);
        pooling = gen.estimatePoolingFactors(500);
    }

    std::vector<core::RequestStats>
    run(const core::ShardingPlan &plan,
        core::ServingConfig config = core::ServingConfig{}) const
    {
        core::ServingSimulation sim(spec, plan, config);
        return sim.replaySerial(requests);
    }
};

TEST(PaperFindings, SerialDistributedAlwaysSlower)
{
    // Section VI: blocking serial requests always perform worse
    // distributed, across P50/P90/P99 (Amdahl bound).
    Fixture f(model::makeDrm1());
    const auto base = f.run(core::makeSingular(f.spec));
    for (const auto &plan :
         {core::makeOneShard(f.spec),
          core::makeLoadBalanced(f.spec, 8, f.pooling),
          core::makeNsbp(f.spec, 4, dc::scLarge().usableModelBytes())}) {
        const auto o =
            core::computeOverhead(plan.label(), base, f.run(plan));
        EXPECT_GT(o.latency_overhead[0], 0.0) << plan.label();
        EXPECT_GT(o.latency_overhead[1], 0.0) << plan.label();
        EXPECT_GT(o.latency_overhead[2], -0.02) << plan.label();
        EXPECT_GT(o.compute_overhead[0], 0.0) << plan.label();
    }
}

TEST(PaperFindings, MoreShardsReduceLatencyOverhead)
{
    Fixture f(model::makeDrm1());
    const auto base = f.run(core::makeSingular(f.spec));
    const auto o1 = core::computeOverhead(
        "1", base, f.run(core::makeOneShard(f.spec)));
    const auto o8 = core::computeOverhead(
        "8", base, f.run(core::makeLoadBalanced(f.spec, 8, f.pooling)));
    EXPECT_LT(o8.latency_overhead[0], o1.latency_overhead[0]);
    // ...but compute overhead moves the other way.
    EXPECT_GT(o8.compute_overhead[0], o1.compute_overhead[0]);
}

TEST(PaperFindings, P99OverheadSmallerThanP50)
{
    // Giant requests are dense/deserde dominated, so tail overheads are
    // more favorable than the median.
    Fixture f(model::makeDrm1());
    const auto base = f.run(core::makeSingular(f.spec));
    const auto o = core::computeOverhead(
        "8", base, f.run(core::makeLoadBalanced(f.spec, 8, f.pooling)));
    EXPECT_LT(o.latency_overhead[2], o.latency_overhead[0]);
}

TEST(PaperFindings, NsbpLeastComputeWorstLatency)
{
    Fixture f(model::makeDrm1());
    const auto base = f.run(core::makeSingular(f.spec));
    const auto load =
        f.run(core::makeLoadBalanced(f.spec, 8, f.pooling));
    const auto nsbp = f.run(
        core::makeNsbp(f.spec, 8, dc::scLarge().usableModelBytes()));

    const auto ol = core::computeOverhead("load", base, load);
    const auto on = core::computeOverhead("nsbp", base, nsbp);
    EXPECT_LT(on.compute_overhead[0], ol.compute_overhead[0]);
    EXPECT_GT(on.latency_overhead[0], ol.latency_overhead[0]);
    EXPECT_LT(core::meanRpcCount(nsbp), core::meanRpcCount(load));
}

TEST(PaperFindings, LoadVsCapacityBalancedInsignificant)
{
    Fixture f(model::makeDrm1());
    const auto base = f.run(core::makeSingular(f.spec));
    const auto ol = core::computeOverhead(
        "load", base, f.run(core::makeLoadBalanced(f.spec, 8, f.pooling)));
    const auto oc = core::computeOverhead(
        "cap", base, f.run(core::makeCapacityBalanced(f.spec, 8)));
    EXPECT_NEAR(ol.latency_overhead[0], oc.latency_overhead[0], 0.05);
}

TEST(PaperFindings, Nsbp2ActsLikeOneShardBound)
{
    // NSBP-2 places ~94% of the pooling work on one shard, bounding P99
    // like the 1-shard configuration.
    Fixture f(model::makeDrm1());
    const auto base = f.run(core::makeSingular(f.spec));
    const auto o1 = core::computeOverhead(
        "1shard", base, f.run(core::makeOneShard(f.spec)));
    const auto o2 = core::computeOverhead(
        "nsbp2", base,
        f.run(core::makeNsbp(f.spec, 2, dc::scLarge().usableModelBytes())));
    EXPECT_NEAR(o2.latency_overhead[2], o1.latency_overhead[2], 0.05);
}

TEST(PaperFindings, Drm3InsensitiveToShardCount)
{
    Fixture f(model::makeDrm3());
    const auto base = f.run(core::makeSingular(f.spec));
    const auto limit = dc::scLarge().usableModelBytes();
    const auto o4 = core::computeOverhead(
        "4", base, f.run(core::makeNsbp(f.spec, 4, limit)));
    const auto o8 = core::computeOverhead(
        "8", base, f.run(core::makeNsbp(f.spec, 8, limit)));
    EXPECT_NEAR(o4.latency_overhead[0], o8.latency_overhead[0], 0.06);
}

TEST(PaperFindings, SingleBatchDistributionBeatsSingular)
{
    // Fig. 13: with one batch per request, 8-shard load-balanced beats
    // singular for DRM1 — sparse work finally outweighs network latency.
    Fixture f(model::makeDrm1(), 200);
    core::ServingConfig config;
    config.batch_size_override = 1 << 20;
    const auto base = f.run(core::makeSingular(f.spec), config);
    const auto dist =
        f.run(core::makeLoadBalanced(f.spec, 8, f.pooling), config);
    const auto o = core::computeOverhead("8", base, dist);
    EXPECT_LT(o.latency_overhead[0], 0.0);
}

TEST(PaperFindings, HighQpsImprovesTailVsSerialOverheads)
{
    // Fig. 16: under a QPS rate that loads the serving tier, distributed
    // P99 improves on singular (negative overhead) — async RPC ops release
    // worker cores during sparse waits and the sparse work is off-box. The
    // paper observes this at 25 QPS on its (slower) production stack; our
    // simulated service is faster, so the load-equivalent point is higher.
    Fixture f(model::makeDrm1(), 600);
    const auto plan = core::makeLoadBalanced(f.spec, 8, f.pooling);

    const auto serial_base = f.run(core::makeSingular(f.spec));
    const auto serial_dist = f.run(plan);
    const auto o_serial =
        core::computeOverhead("serial", serial_base, serial_dist);

    core::ServingSimulation qps_base_sim(f.spec, core::makeSingular(f.spec),
                                         core::ServingConfig{});
    const auto qps_base = qps_base_sim.replayOpenLoop(f.requests, 150.0);
    core::ServingSimulation qps_dist_sim(f.spec, plan,
                                         core::ServingConfig{});
    const auto qps_dist = qps_dist_sim.replayOpenLoop(f.requests, 150.0);
    const auto o_qps = core::computeOverhead("qps", qps_base, qps_dist);

    // Tail overhead flips negative under load and is far below serial.
    EXPECT_LT(o_qps.latency_overhead[2], o_serial.latency_overhead[2]);
    EXPECT_LT(o_qps.latency_overhead[2], 0.0);
}

TEST(PaperFindings, SparseShardsPlatformInsensitive)
{
    // Fig. 15: SC-Small sparse shards match SC-Large per-request latency.
    Fixture f(model::makeDrm1(), 200);
    const auto plan = core::makeLoadBalanced(f.spec, 8, f.pooling);

    core::ServingConfig small_cfg;
    small_cfg.sparse_platform = dc::scSmall();
    const auto on_large = f.run(plan);
    const auto on_small = f.run(plan, small_cfg);
    const auto ql = core::latencyQuantiles(on_large);
    const auto qs = core::latencyQuantiles(on_small);
    EXPECT_NEAR(qs.p50_ms / ql.p50_ms, 1.0, 0.05);
}

TEST(PaperFindings, CompressionInsufficientAlone)
{
    // Table III: 5.56x smaller still exceeds commodity servers.
    auto spec = model::makeDrm1();
    const auto report =
        compress::compressSpec(spec, compress::CompressionPolicy{});
    EXPECT_GT(report.ratio(), 4.0);
    EXPECT_GT(report.compressed_bytes,
              dc::scSmall().usableModelBytes() / 2);
}

} // namespace
