/**
 * @file
 * Tests for compression (Table III semantics) and the data-center module
 * (platforms, capacity feasibility, replication provisioning).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "compress/compression.h"
#include "dc/paging.h"
#include "dc/platform.h"
#include "dc/replication.h"
#include "model/generators.h"

namespace {

using namespace dri;

TEST(Paging, HitRateClampsResidentFraction)
{
    // Out-of-range resident fractions (e.g. from a rounding-error caller)
    // must clamp instead of tripping UB or exceeding [0, 1].
    EXPECT_DOUBLE_EQ(dc::hitRate(-0.25, 0.6), 0.0);
    EXPECT_DOUBLE_EQ(dc::hitRate(1.5, 0.6), 1.0);
    EXPECT_DOUBLE_EQ(dc::hitRate(0.0, 0.6), 0.0);
    EXPECT_DOUBLE_EQ(dc::hitRate(1.0, 0.6), 1.0);
}

TEST(Paging, HitRateHandlesSkewApproachingOne)
{
    // Regression: skew == 1 used to violate the [0, 1) contract; the
    // continuous limit of f^(1-s) as s -> 1 is 1 for any f > 0.
    EXPECT_DOUBLE_EQ(dc::hitRate(0.3, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(dc::hitRate(0.3, 1.5), 1.0);
    EXPECT_DOUBLE_EQ(dc::hitRate(0.0, 1.0), 0.0);
    // Approaching the limit from below stays finite and monotone in skew.
    double prev = 0.0;
    for (const double s : {0.9, 0.99, 0.999, 0.9999}) {
        const double h = dc::hitRate(0.3, s);
        EXPECT_TRUE(std::isfinite(h));
        EXPECT_GE(h, prev);
        EXPECT_LE(h, 1.0);
        prev = h;
    }
    // Negative skew degrades gracefully to uniform (hit rate == fraction).
    EXPECT_DOUBLE_EQ(dc::hitRate(0.3, -2.0), 0.3);
}

TEST(Paging, PagedLookupFiniteAcrossConfigSpace)
{
    const auto platform = dc::scLarge();
    for (const double skew : {0.0, 0.5, 0.99, 1.0, 2.0}) {
        dc::PagingConfig config;
        config.access_skew = skew;
        const double ns = dc::pagedLookupNs(
            4 * platform.usableModelBytes(), platform, config);
        EXPECT_TRUE(std::isfinite(ns));
        EXPECT_GE(ns, config.dram_lookup_ns);
        EXPECT_LE(ns, config.ssd_lookup_ns);
    }
}

TEST(Compression, Drm1RatioNearPaper)
{
    // Table III: 194.46 GB -> 35 GB, 5.56x.
    auto spec = model::makeDrm1();
    const auto report =
        compress::compressSpec(spec, compress::CompressionPolicy{});
    EXPECT_NEAR(report.ratio(), 5.56, 0.6);
    EXPECT_GT(report.tables_int4, 0u);
    EXPECT_GT(report.tables_int8, 0u);
    // The evaluated DRM1 is scaled down to fit one 256 GB server; the
    // production original is "many times larger" (Section V-A) — terabyte
    // scale (Fig. 1). At 10x, the compressed model still exceeds four
    // commodity servers with ~50 GB usable DRAM — the paper's conclusion
    // that compression alone cannot serve these models.
    const std::int64_t production_compressed = report.compressed_bytes * 10;
    EXPECT_GT(production_compressed,
              4 * dc::scSmall().usableModelBytes());
}

TEST(Compression, SpecFieldsUpdatedInPlace)
{
    auto spec = model::makeDrm1();
    compress::compressSpec(spec, compress::CompressionPolicy{});
    for (const auto &t : spec.tables) {
        EXPECT_NE(t.precision, tensor::Precision::Fp32);
        EXPECT_GE(t.prune_fraction, 0.0);
    }
    std::string err;
    EXPECT_TRUE(spec.validate(&err)) << err;
}

TEST(Compression, LargeTablesGetInt4)
{
    auto spec = model::makeDrm3();
    compress::CompressionPolicy policy;
    compress::compressSpec(spec, policy);
    // The 178.8 GB dominant table must be int4 + pruned.
    EXPECT_EQ(spec.tables[0].precision, tensor::Precision::Int4);
    EXPECT_DOUBLE_EQ(spec.tables[0].prune_fraction,
                     policy.large_table_prune_fraction);
}

TEST(Compression, IdempotentAccounting)
{
    auto spec = model::makeDrm2();
    const auto r1 =
        compress::compressSpec(spec, compress::CompressionPolicy{});
    const auto r2 =
        compress::compressSpec(spec, compress::CompressionPolicy{});
    // Uncompressed accounting is based on raw geometry, so both passes
    // report the same totals.
    EXPECT_EQ(r1.uncompressed_bytes, r2.uncompressed_bytes);
    EXPECT_EQ(r1.compressed_bytes, r2.compressed_bytes);
}

TEST(Compression, MaterializedTables)
{
    model::ModelSpec spec;
    spec.name = "t";
    spec.nets = {{0, "n", 1.0, 0.0}};
    model::TableSpec big;
    big.id = 0;
    big.name = "big";
    big.rows = 1000000000LL;
    big.dim = 32;
    big.pooling_per_item = 1.0;
    spec.tables.push_back(big);

    std::vector<std::shared_ptr<tensor::VirtualEmbeddingTable>> tables;
    tables.push_back(std::make_shared<tensor::VirtualEmbeddingTable>(
        big.rows, 8, 1, 64));
    compress::compressTables(spec, tables, compress::CompressionPolicy{});
    EXPECT_EQ(tables[0]->precision(), tensor::Precision::Int4);
    EXPECT_GT(tables[0]->prunedFraction(), 0.0);
}

TEST(Platform, SkuAttributes)
{
    const auto large = dc::scLarge();
    const auto small = dc::scSmall();
    EXPECT_EQ(large.cores, 40);  // 2 x 20
    EXPECT_EQ(small.cores, 36);  // 2 x 18
    EXPECT_EQ(large.dram_bytes, 4 * small.dram_bytes); // 256 vs 64 GB
    EXPECT_GT(small.cpu_time_scale, large.cpu_time_scale); // slower clocks
    EXPECT_GT(large.nic_bandwidth_bytes_per_ns,
              small.nic_bandwidth_bytes_per_ns);
    EXPECT_LT(small.busy_watts, large.busy_watts);
}

TEST(Platform, CostParamsScaleWithClock)
{
    const auto small = dc::scSmall();
    const auto large = dc::scLarge();
    EXPECT_GT(small.costParams().ns_per_flop,
              large.costParams().ns_per_flop);
}

TEST(Capacity, Drm1DoesNotFitAnywhereUncompressed)
{
    // The motivating fact: the model exceeds even SC-Large's usable DRAM
    // before scale-down, hence distributed serving.
    const auto spec = model::makeDrm1();
    dc::ShardDemand whole{"drm1", 1.0, spec.totalCapacityBytes()};
    EXPECT_FALSE(dc::fits(whole, dc::scSmall()));
    EXPECT_TRUE(dc::fits(whole, dc::scLarge())); // 194 GiB vs 204 GiB usable
    dc::ShardDemand shard{"shard", 1.0, spec.totalCapacityBytes() / 8};
    EXPECT_TRUE(dc::fits(shard, dc::scSmall()));
}

TEST(Replication, ReplicasScaleWithQps)
{
    dc::ShardDemand d{"main", 40.0, 1LL << 30}; // 40 ms CPU/request
    const auto platform = dc::scLarge();
    const auto low = dc::provision({d}, platform, 100.0, 0.5);
    const auto high = dc::provision({d}, platform, 10000.0, 0.5);
    EXPECT_EQ(low.shards.size(), 1u);
    EXPECT_GT(high.shards[0].replicas, low.shards[0].replicas);
    // 10000 QPS x 0.04 s = 400 cores; 20 usable per replica -> 20 replicas.
    EXPECT_EQ(high.shards[0].replicas, 20);
    EXPECT_EQ(high.totalMemoryBytes(),
              static_cast<std::int64_t>(20) * (1LL << 30));
}

TEST(Replication, UtilizationBounded)
{
    dc::ShardDemand d{"x", 10.0, 1};
    const auto plan = dc::provision({d}, dc::scLarge(), 777.0, 0.6);
    EXPECT_LE(plan.shards[0].cpu_utilization, 0.6 + 1e-9);
    EXPECT_GT(plan.shards[0].cpu_utilization, 0.0);
    EXPECT_GT(plan.totalPowerWatts(), 0.0);
}

TEST(Replication, DistributedSavesMemoryAtHighQps)
{
    // Section VII-C: replicating the singular model re-replicates all
    // embedding tables; distributed replicates only the dense main shard.
    const auto spec = model::makeDrm1();
    const double total = static_cast<double>(spec.totalCapacityBytes());
    const auto platform = dc::scLarge();
    const double qps = 2000.0;

    dc::ShardDemand singular{"singular", 30.0,
                             static_cast<std::int64_t>(total)};
    std::vector<dc::ShardDemand> dist;
    dist.push_back({"main", 27.0, 256LL << 20}); // dense params only
    for (int s = 0; s < 8; ++s)
        dist.push_back({"sparse", 0.4,
                        static_cast<std::int64_t>(total / 8.0)});

    const auto s_plan = dc::provision({singular}, platform, qps);
    const auto d_plan = dc::provision(dist, platform, qps);
    EXPECT_LT(d_plan.totalMemoryBytes(), s_plan.totalMemoryBytes() / 2);
}

} // namespace
