/**
 * @file
 * Tests for the analysis layer: overhead math, stack construction, and
 * per-shard aggregation over synthetic RequestStats.
 */
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "sim/time.h"

namespace {

using namespace dri;
using core::RequestStats;

RequestStats
makeStats(double e2e_ms, double cpu_ms)
{
    RequestStats s;
    s.e2e = sim::fromMillis(e2e_ms);
    s.cpu_ops_ns = cpu_ms * 1e6;
    return s;
}

TEST(Analysis, LatencyQuantiles)
{
    std::vector<RequestStats> stats;
    for (int i = 1; i <= 100; ++i)
        stats.push_back(makeStats(static_cast<double>(i), 1.0));
    const auto q = core::latencyQuantiles(stats);
    EXPECT_NEAR(q.p50_ms, 50.5, 0.01);
    EXPECT_NEAR(q.p90_ms, 90.1, 0.01);
    EXPECT_NEAR(q.p99_ms, 99.01, 0.01);
}

TEST(Analysis, OverheadVsBaseline)
{
    std::vector<RequestStats> base, config;
    for (int i = 0; i < 100; ++i) {
        base.push_back(makeStats(10.0, 20.0));
        config.push_back(makeStats(11.0, 25.0));
    }
    const auto o = core::computeOverhead("x", base, config);
    EXPECT_NEAR(o.latency_overhead[0], 0.10, 1e-9);
    EXPECT_NEAR(o.latency_overhead[2], 0.10, 1e-9);
    EXPECT_NEAR(o.compute_overhead[0], 0.25, 1e-9);
    EXPECT_EQ(o.label, "x");
}

TEST(Analysis, LatencyStackUsesMedianWindow)
{
    std::vector<RequestStats> stats;
    // 10 small requests with dense=1ms, one huge outlier with dense=100ms.
    for (int i = 0; i < 10; ++i) {
        RequestStats s;
        s.e2e = sim::fromMillis(2.0);
        s.lat_dense = sim::fromMillis(1.0);
        s.lat_embedded = sim::fromMillis(1.0);
        stats.push_back(s);
    }
    RequestStats huge;
    huge.e2e = sim::fromMillis(200.0);
    huge.lat_dense = sim::fromMillis(100.0);
    stats.push_back(huge);

    const auto stack = core::latencyStack(stats);
    // Median window excludes the outlier.
    EXPECT_NEAR(stack[0].second, 1.0, 1e-9); // Dense Ops
    EXPECT_NEAR(stack[1].second, 1.0, 1e-9); // Embedded
    EXPECT_NEAR(core::stackTotal(stack), 2.0, 1e-9);
}

TEST(Analysis, EmbeddedAndCpuStacksCarryBuckets)
{
    std::vector<RequestStats> stats;
    RequestStats s;
    s.e2e = sim::fromMillis(1.0);
    s.emb_sparse_op = sim::fromMillis(0.2);
    s.emb_network = sim::fromMillis(0.5);
    s.cpu_ops_ns = 3e6;
    s.cpu_serde_ns = 2e6;
    s.cpu_service_ns = 1e6;
    stats.push_back(s);

    const auto emb = core::embeddedStack(stats);
    EXPECT_EQ(emb[0].first, "Caffe2 Sparse Ops");
    EXPECT_NEAR(emb[0].second, 0.2, 1e-9);
    EXPECT_EQ(emb[4].first, "Network Latency");
    EXPECT_NEAR(emb[4].second, 0.5, 1e-9);

    const auto cpu = core::cpuStack(stats);
    EXPECT_NEAR(core::stackTotal(cpu), 6.0, 1e-9);
}

TEST(Analysis, PerShardAggregation)
{
    std::vector<RequestStats> stats;
    for (int i = 0; i < 4; ++i) {
        RequestStats s;
        s.e2e = 1;
        s.shard_op_ns = {1e6, 3e6};
        s.shard_net_op_ns = {0.5e6, 0.5e6, 3e6, 0.0};
        stats.push_back(s);
    }
    const auto per_shard = core::perShardOpLatency(stats, 2);
    EXPECT_NEAR(per_shard[0], 1.0, 1e-9);
    EXPECT_NEAR(per_shard[1], 3.0, 1e-9);

    const auto by_net = core::perShardOpLatencyByNet(stats, 2, 2);
    EXPECT_NEAR(by_net[0][0], 0.5, 1e-9);
    EXPECT_NEAR(by_net[1][0], 3.0, 1e-9);
    EXPECT_NEAR(by_net[1][1], 0.0, 1e-9);
}

TEST(Analysis, Means)
{
    std::vector<RequestStats> stats;
    RequestStats a;
    a.e2e = 1;
    a.rpc_count = 4;
    a.cpu_ops_ns = 1e6;
    a.main_op_ns = 0.5e6;
    RequestStats b;
    b.e2e = 1;
    b.rpc_count = 8;
    b.cpu_ops_ns = 3e6;
    b.main_op_ns = 1.5e6;
    stats.push_back(a);
    stats.push_back(b);
    EXPECT_DOUBLE_EQ(core::meanRpcCount(stats), 6.0);
    EXPECT_DOUBLE_EQ(core::meanCpuMs(stats), 2.0);
    EXPECT_DOUBLE_EQ(core::meanMainOpMs(stats), 1.0);
}

TEST(Analysis, EmptyInputsSafe)
{
    std::vector<RequestStats> empty;
    EXPECT_DOUBLE_EQ(core::meanRpcCount(empty), 0.0);
    EXPECT_DOUBLE_EQ(core::meanCpuMs(empty), 0.0);
    const auto per_shard = core::perShardOpLatency(empty, 3);
    EXPECT_EQ(per_shard.size(), 3u);
}

} // namespace
