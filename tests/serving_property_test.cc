/**
 * @file
 * Property sweeps over the serving simulation: invariants that must hold
 * for EVERY (model, strategy, shard count) combination — accounting
 * identities, conservation laws, fan-out formulas, and trace consistency.
 */
#include <gtest/gtest.h>

#include <tuple>

#include "core/serving.h"
#include "core/strategies.h"
#include "dc/platform.h"
#include "model/generators.h"
#include "workload/request_generator.h"

namespace {

using namespace dri;

/** (model index, strategy, shard count). */
using Config = std::tuple<int, core::Strategy, int>;

model::ModelSpec
specFor(int model_idx)
{
    switch (model_idx) {
      case 0:
        return model::makeDrm1();
      case 1:
        return model::makeDrm2();
      default:
        return model::makeDrm3();
    }
}

core::ShardingPlan
planFor(const model::ModelSpec &spec, core::Strategy strategy, int shards)
{
    workload::RequestGenerator gen(spec, workload::GeneratorConfig{1, 0.0});
    switch (strategy) {
      case core::Strategy::Singular:
        return core::makeSingular(spec);
      case core::Strategy::OneShard:
        return core::makeOneShard(spec);
      case core::Strategy::CapacityBalanced:
        return core::makeCapacityBalanced(spec, shards);
      case core::Strategy::LoadBalanced:
        return core::makeLoadBalanced(spec, shards,
                                      gen.estimatePoolingFactors(200));
      case core::Strategy::Nsbp:
        return core::makeNsbp(spec, shards,
                              dc::scLarge().usableModelBytes());
    }
    return core::makeSingular(spec);
}

class ServingPropertyTest : public ::testing::TestWithParam<Config>
{
  protected:
    void
    SetUp() override
    {
        spec_ = specFor(std::get<0>(GetParam()));
        plan_ = planFor(spec_, std::get<1>(GetParam()),
                        std::get<2>(GetParam()));
        workload::RequestGenerator gen(
            spec_, workload::GeneratorConfig{0xabc, 0.0});
        requests_ = gen.generate(40);
    }

    model::ModelSpec spec_;
    core::ShardingPlan plan_;
    std::vector<workload::Request> requests_;
};

TEST_P(ServingPropertyTest, AccountingIdentities)
{
    core::ServingSimulation sim(spec_, plan_, core::ServingConfig{});
    const auto stats = sim.replaySerial(requests_);
    ASSERT_EQ(stats.size(), requests_.size());

    for (const auto &s : stats) {
        // Latency stack sums exactly to E2E.
        EXPECT_EQ(s.queue_wait + s.lat_serde + s.lat_service +
                      s.lat_net_overhead + s.lat_embedded + s.lat_dense,
                  s.e2e);
        // All buckets non-negative.
        EXPECT_GE(s.lat_dense, 0);
        EXPECT_GE(s.lat_embedded, 0);
        EXPECT_GE(s.emb_network, 0);
        EXPECT_GE(s.emb_queue, 0);
        EXPECT_GT(s.cpuTotalNs(), 0.0);
        // Completion after arrival, monotone replay.
        EXPECT_GT(s.completion, s.arrival);
        // Sparse shard op CPU only on existing shards.
        EXPECT_EQ(s.shard_op_ns.size(),
                  static_cast<std::size_t>(
                      std::max(plan_.numShards(), 1)));
        // Per-shard-by-net decomposition sums to the per-shard totals.
        double by_net = 0.0, by_shard = 0.0;
        for (double v : s.shard_net_op_ns)
            by_net += v;
        for (double v : s.shard_op_ns)
            by_shard += v;
        EXPECT_NEAR(by_net, by_shard, 1.0);
    }
}

TEST_P(ServingPropertyTest, RpcFanoutFormula)
{
    core::ServingSimulation sim(spec_, plan_, core::ServingConfig{});
    const auto stats = sim.replaySerial(requests_);
    const auto groups = sim.fanoutGroupCount();
    for (const auto &s : stats) {
        if (plan_.isSingular()) {
            EXPECT_EQ(s.rpc_count, 0);
        } else {
            // At most one RPC per (group, batch); zero-lookup groups are
            // skipped, so <= is the invariant.
            EXPECT_LE(s.rpc_count,
                      static_cast<int>(groups) * s.batches);
            EXPECT_GT(s.rpc_count, 0);
        }
    }
}

TEST_P(ServingPropertyTest, DeterministicReplay)
{
    core::ServingSimulation a(spec_, plan_, core::ServingConfig{});
    core::ServingSimulation b(spec_, plan_, core::ServingConfig{});
    const auto sa = a.replaySerial(requests_);
    const auto sb = b.replaySerial(requests_);
    for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i].e2e, sb[i].e2e);
        EXPECT_EQ(sa[i].rpc_count, sb[i].rpc_count);
        EXPECT_DOUBLE_EQ(sa[i].cpuTotalNs(), sb[i].cpuTotalNs());
    }
}

TEST_P(ServingPropertyTest, TraceSpansStayWithinRequestWindow)
{
    core::ServingConfig config;
    config.retain_spans = true;
    core::ServingSimulation sim(spec_, plan_, config);
    const auto stats = sim.replaySerial(
        std::vector<workload::Request>(requests_.begin(),
                                       requests_.begin() + 5));
    for (const auto &s : stats) {
        for (const auto &span : sim.collector().spansForRequest(s.id)) {
            EXPECT_GE(span.begin, s.arrival);
            EXPECT_LE(span.end, s.completion);
            EXPECT_LE(span.begin, span.end);
        }
        for (const auto &rpc : sim.collector().rpcsForRequest(s.id)) {
            EXPECT_GE(rpc.networkLatency(), 0);
            EXPECT_GE(rpc.dispatched, s.arrival);
            EXPECT_LE(rpc.completed, s.completion);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ServingPropertyTest,
    ::testing::Values(
        // DRM1 across every strategy.
        Config{0, core::Strategy::Singular, 0},
        Config{0, core::Strategy::OneShard, 1},
        Config{0, core::Strategy::CapacityBalanced, 2},
        Config{0, core::Strategy::CapacityBalanced, 8},
        Config{0, core::Strategy::LoadBalanced, 4},
        Config{0, core::Strategy::Nsbp, 2},
        Config{0, core::Strategy::Nsbp, 8},
        // DRM2 spot checks.
        Config{1, core::Strategy::Singular, 0},
        Config{1, core::Strategy::LoadBalanced, 8},
        Config{1, core::Strategy::Nsbp, 4},
        // DRM3 with row-split dominant table.
        Config{2, core::Strategy::Singular, 0},
        Config{2, core::Strategy::OneShard, 1},
        Config{2, core::Strategy::Nsbp, 4},
        Config{2, core::Strategy::Nsbp, 8}));

} // namespace
