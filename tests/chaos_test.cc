/**
 * @file
 * Chaos-layer tests: the ServingSimulation runtime control surface
 * (killReplica / restoreReplica / degradeReplica / partitionShard),
 * fault accounting, determinism under injected faults, and the
 * fleet-level FaultSchedule script type.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "core/serving.h"
#include "core/strategies.h"
#include "fleet/fault_schedule.h"
#include "model/generators.h"
#include "workload/request_generator.h"

namespace {

using namespace dri;

std::vector<workload::Request>
requestsFor(const model::ModelSpec &spec, std::size_t n,
            std::uint64_t seed = 5)
{
    workload::RequestGenerator gen(spec,
                                   workload::GeneratorConfig{seed, 0.0});
    return gen.generate(n);
}

core::ServingConfig
chaosConfig()
{
    core::ServingConfig cfg;
    cfg.seed = 0xc4a05;
    cfg.sparse_replicas = 2;
    return cfg;
}

double
meanE2eMs(const std::vector<core::RequestStats> &stats)
{
    double sum = 0.0;
    std::size_t served = 0;
    for (const auto &s : stats) {
        if (s.shed())
            continue;
        sum += static_cast<double>(s.e2e) / 1e6;
        ++served;
    }
    return served > 0 ? sum / static_cast<double>(served) : 0.0;
}

// ---------------------------------------------------------------------------
// killReplica / restoreReplica.
// ---------------------------------------------------------------------------

TEST(Chaos, KillReplicaRetriesMaskTheLossAndDiscoveryHealsIt)
{
    const auto spec = model::makeDrm2();
    const auto plan = core::makeCapacityBalanced(spec, 4);
    const auto reqs = requestsFor(spec, 40);

    core::ServingSimulation sim(spec, plan, chaosConfig());
    const auto all = sim.serverCount();
    sim.killReplica(0);
    EXPECT_FALSE(sim.replicaAlive(0));
    EXPECT_EQ(sim.aliveReplicaCount(), all - 1);

    const auto stats = sim.replayOpenLoop(reqs, 500.0);
    ASSERT_EQ(stats.size(), reqs.size());
    // Every request still terminates: the dead replica costs timeouts
    // and failover retries, never hung requests.
    const auto &fs = sim.faultStats();
    EXPECT_EQ(fs.kills, 1u);
    EXPECT_GT(fs.dead_target_attempts, 0u);
    EXPECT_GT(fs.retries, 0u);
    // With a sibling replica per shard the retry path serves everything.
    for (const auto &s : stats)
        EXPECT_FALSE(s.shed());
    // 40 req at 500 QPS spans 80 ms > the 50 ms discovery lag: once the
    // directory reacts, primaries stop targeting the dead server — so
    // dead-target attempts stay well below the request count.
    EXPECT_LT(fs.dead_target_attempts, static_cast<std::uint64_t>(
                                           reqs.size() * plan.numShards()));
}

TEST(Chaos, KillAndRestoreAreIdempotentAndSymmetric)
{
    const auto spec = model::makeDrm2();
    const auto plan = core::makeCapacityBalanced(spec, 4);
    core::ServingSimulation sim(spec, plan, chaosConfig());

    sim.killReplica(3);
    sim.killReplica(3); // redundant: no-op
    EXPECT_EQ(sim.faultStats().kills, 1u);
    EXPECT_FALSE(sim.replicaAlive(3));

    sim.restoreReplica(3);
    sim.restoreReplica(3); // redundant: no-op
    EXPECT_EQ(sim.faultStats().restores, 1u);
    EXPECT_TRUE(sim.replicaAlive(3));
    EXPECT_EQ(sim.aliveReplicaCount(), sim.serverCount());

    // A restored fleet serves cleanly again.
    const auto stats = sim.replayOpenLoop(requestsFor(spec, 20), 400.0);
    for (const auto &s : stats)
        EXPECT_FALSE(s.shed());
}

// ---------------------------------------------------------------------------
// degradeReplica.
// ---------------------------------------------------------------------------

TEST(Chaos, DegradedReplicaInflatesLatencyDeterministically)
{
    const auto spec = model::makeDrm2();
    const auto plan = core::makeCapacityBalanced(spec, 4);
    const auto reqs = requestsFor(spec, 30);

    core::ServingSimulation base(spec, plan, chaosConfig());
    const auto fast = base.replayOpenLoop(reqs, 400.0);

    core::ServingSimulation slow(spec, plan, chaosConfig());
    slow.degradeReplica(0, 8.0);
    const auto degraded = slow.replayOpenLoop(reqs, 400.0);

    // Persistent slow node: same draws (CRN), slower service on one
    // replica only — latency strictly worse, nothing shed or killed.
    EXPECT_GT(meanE2eMs(degraded), meanE2eMs(fast));
    EXPECT_EQ(slow.faultStats().kills, 0u);
    for (const auto &s : degraded)
        EXPECT_FALSE(s.shed());

    // Determinism: the degraded run reproduces byte-identically.
    core::ServingSimulation again(spec, plan, chaosConfig());
    again.degradeReplica(0, 8.0);
    const auto rerun = again.replayOpenLoop(reqs, 400.0);
    ASSERT_EQ(rerun.size(), degraded.size());
    for (std::size_t i = 0; i < rerun.size(); ++i)
        EXPECT_EQ(rerun[i].e2e, degraded[i].e2e);
}

// ---------------------------------------------------------------------------
// partitionShard.
// ---------------------------------------------------------------------------

TEST(Chaos, PartitionedShardShedsUpstreamAfterRetriesExhaust)
{
    const auto spec = model::makeDrm2();
    const auto plan = core::makeCapacityBalanced(spec, 4);
    const auto reqs = requestsFor(spec, 12);

    core::ServingSimulation sim(spec, plan, chaosConfig());
    sim.partitionShard(0, true);
    const auto stats = sim.replayOpenLoop(reqs, 300.0);

    // Every fan-out needs shard 0; the partition drops primary AND
    // retry attempts, so requests fail upstream — gracefully shed with
    // the dedicated reason, never hung.
    const auto &fs = sim.faultStats();
    EXPECT_GT(fs.partition_drops, 0u);
    EXPECT_GT(fs.upstream_failures, 0u);
    std::size_t upstream_shed = 0;
    for (const auto &s : stats)
        if (s.shed_reason == core::ShedReason::UpstreamFailure)
            ++upstream_shed;
    EXPECT_GT(upstream_shed, 0u);

    // Healing the partition restores clean service on the same sim.
    sim.partitionShard(0, false);
    const auto healed = sim.replayOpenLoop(requestsFor(spec, 10, 9), 300.0);
    for (const auto &s : healed)
        EXPECT_FALSE(s.shed());
    EXPECT_EQ(sim.faultStats().partition_drops, fs.partition_drops);
}

// ---------------------------------------------------------------------------
// FaultSchedule.
// ---------------------------------------------------------------------------

TEST(FaultSchedule, WindowsAndActiveAt)
{
    fleet::FaultSchedule sched;
    sched.crashReplica(1, 0, /*start=*/2, /*end=*/4)
        .slowReplica(0, 1, 8.0, /*start=*/3, /*end=*/5)
        .snapshotStorm(6, 0.25);
    EXPECT_FALSE(sched.empty());
    EXPECT_EQ(sched.events().size(), 3u);

    EXPECT_TRUE(sched.activeAt(1).empty());
    ASSERT_EQ(sched.activeAt(2).size(), 1u);
    EXPECT_EQ(sched.activeAt(2)[0]->kind, fleet::FaultKind::ReplicaCrash);
    EXPECT_EQ(sched.activeAt(3).size(), 2u);
    // end_epoch is exclusive: the crash heals at epoch 4.
    ASSERT_EQ(sched.activeAt(4).size(), 1u);
    EXPECT_EQ(sched.activeAt(4)[0]->kind, fleet::FaultKind::SlowReplica);
    ASSERT_EQ(sched.activeAt(6).size(), 1u);
    EXPECT_EQ(sched.activeAt(6)[0]->kind, fleet::FaultKind::SnapshotStorm);
}

TEST(FaultSchedule, FingerprintIdentifiesTheScript)
{
    fleet::FaultSchedule a;
    a.crashReplica(0, 1, 2, 3).flashCrowd(2.0, 0.5, 4, 6);
    fleet::FaultSchedule b;
    b.crashReplica(0, 1, 2, 3).flashCrowd(2.0, 0.5, 4, 6);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());

    fleet::FaultSchedule c;
    c.crashReplica(0, 1, 2, 3).flashCrowd(2.0, 0.5, 4, 7);
    EXPECT_NE(a.fingerprint(), c.fingerprint());
    EXPECT_NE(a.fingerprint(), fleet::FaultSchedule{}.fingerprint());
}

TEST(FaultSchedule, KindNamesAndLabels)
{
    EXPECT_STREQ(fleet::faultKindName(fleet::FaultKind::ReplicaCrash),
                 "replica-crash");
    EXPECT_STREQ(fleet::faultKindName(fleet::FaultKind::FlashCrowd),
                 "flash-crowd");
    fleet::FaultEvent ev;
    ev.kind = fleet::FaultKind::Partition;
    EXPECT_EQ(ev.name(), "partition");
    ev.label = "az-link-cut";
    EXPECT_EQ(ev.name(), "az-link-cut");
}

} // namespace
