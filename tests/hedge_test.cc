/**
 * @file
 * Tests for hedged sparse RPCs (rpc/hedge + the serving engine's racing
 * attempts): the latency tracker, hedge bookkeeping invariants, the
 * queue-aware suppression knob, determinism, and the headline properties
 * — hedged P99 no worse than unhedged at >= 90% mean sparse utilization
 * across seeds, and wasted duplicate work bounded by the hedge budget at
 * low load.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "core/analysis.h"
#include "core/serving.h"
#include "core/strategies.h"
#include "model/generators.h"
#include "obs/critical_path.h"
#include "obs/span_tracer.h"
#include "rpc/hedge.h"
#include "sched/capacity_search.h"
#include "workload/request_generator.h"

namespace {

using namespace dri;

std::vector<workload::Request>
testRequests(const model::ModelSpec &spec, std::size_t n)
{
    workload::GeneratorConfig gc;
    gc.seed = 0xbeef;
    workload::RequestGenerator gen(spec, gc);
    return gen.generate(n);
}

core::ShardingPlan
testPlan(const model::ModelSpec &spec)
{
    workload::GeneratorConfig gc;
    gc.seed = 0xbeef;
    workload::RequestGenerator gen(spec, gc);
    return core::makeLoadBalanced(spec, 4, gen.estimatePoolingFactors(500));
}

double
meanUtil(const core::ServingSimulation &sim)
{
    double acc = 0.0;
    const auto util = sim.serverUtilization();
    for (double u : util)
        acc += u;
    return util.empty() ? 0.0 : acc / static_cast<double>(util.size());
}

TEST(LatencyTracker, WindowedQuantiles)
{
    rpc::LatencyTracker tracker(4);
    tracker.add(10);
    tracker.add(20);
    tracker.add(30);
    tracker.add(40);
    EXPECT_EQ(tracker.count(), 4u);
    EXPECT_EQ(tracker.quantile(0.0), 10);
    EXPECT_EQ(tracker.quantile(1.0), 40);
    // Ring overwrite: the oldest samples fall out of the window.
    tracker.add(50);
    tracker.add(60);
    EXPECT_EQ(tracker.count(), 4u);
    EXPECT_EQ(tracker.observed(), 6u);
    EXPECT_EQ(tracker.quantile(0.0), 30);
    EXPECT_EQ(tracker.quantile(1.0), 60);
}

TEST(Hedge, DisabledProducesNoHedgeActivity)
{
    const auto spec = model::makeDrm2();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 100);

    core::ServingSimulation sim(
        spec, plan,
        sched::hedgeStudyConfig(rpc::LoadBalancePolicy::LeastOutstanding,
                                3, /*hedged=*/false));
    const auto stats = sim.replayOpenLoop(requests, 500.0);
    const auto h = sim.hedgeStats();
    EXPECT_GT(h.primary_rpcs, 0u);
    EXPECT_EQ(h.hedges, 0u);
    EXPECT_EQ(h.wins, 0u);
    EXPECT_EQ(h.wasted_busy_ns, 0.0);
    EXPECT_EQ(h.hedgeRate(), 0.0);
    for (const auto &s : stats) {
        EXPECT_EQ(s.hedges, 0);
        EXPECT_EQ(s.hedge_wins, 0);
        EXPECT_EQ(s.hedge_wasted_cpu_ns, 0.0);
    }
}

TEST(Hedge, SingleReplicaCannotHedge)
{
    const auto spec = model::makeDrm2();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 100);

    core::ServingSimulation sim(
        spec, plan,
        sched::hedgeStudyConfig(rpc::LoadBalancePolicy::LeastOutstanding,
                                1, /*hedged=*/true));
    sim.replayOpenLoop(requests, 500.0);
    EXPECT_EQ(sim.hedgeStats().hedges, 0u);
}

TEST(Hedge, OutcomeCountersAreConserved)
{
    const auto spec = model::makeDrm2();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 300);

    core::ServingSimulation sim(
        spec, plan,
        sched::hedgeStudyConfig(rpc::LoadBalancePolicy::LeastOutstanding,
                                3, /*hedged=*/true));
    const auto stats = sim.replayOpenLoop(requests, 1500.0);
    const auto h = sim.hedgeStats();
    ASSERT_GT(h.hedges, 0u);
    // Every launched backup ends exactly one way.
    EXPECT_EQ(h.wins + h.losses + h.cancelled, h.hedges);
    // The budget is a hard cap on the hedge rate.
    EXPECT_LE(h.hedgeRate(), 0.10 + 1e-9);
    // Per-request counters aggregate to the simulation totals.
    std::uint64_t hedges = 0, wins = 0;
    for (const auto &s : stats) {
        ASSERT_GE(s.hedges, 0);
        ASSERT_GE(s.hedge_wins, 0);
        EXPECT_GE(s.hedge_wasted_cpu_ns, -1.0); // rounding-safe
        hedges += static_cast<std::uint64_t>(s.hedges);
        wins += static_cast<std::uint64_t>(s.hedge_wins);
    }
    EXPECT_EQ(hedges, h.hedges);
    EXPECT_EQ(wins, h.wins);
}

TEST(Hedge, BatchedRidersNeverWinWithoutAHedge)
{
    // Regression: apportioning hedges and wins independently by item
    // share could hand a rider a win with zero hedges. Wins are now a
    // sub-share of the rider's assigned hedges.
    const auto spec = model::makeDrm2();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 300);

    core::ServingSimulation sim(
        spec, plan,
        sched::hedgeStudyConfig(rpc::LoadBalancePolicy::LeastOutstanding,
                                3, /*hedged=*/true));
    sched::BatcherConfig bc;
    bc.policy = sched::BatchPolicy::QueueAware;
    const auto stats =
        sched::runBatchedOpenLoop(sim, requests, 1500.0, bc);
    const auto h = sim.hedgeStats();
    ASSERT_GT(h.hedges, 0u);
    std::uint64_t hedges = 0, wins = 0;
    for (const auto &s : stats) {
        EXPECT_LE(s.hedge_wins, s.hedges) << "request " << s.id;
        hedges += static_cast<std::uint64_t>(s.hedges);
        wins += static_cast<std::uint64_t>(s.hedge_wins);
    }
    EXPECT_EQ(hedges, h.hedges);
    EXPECT_EQ(wins, h.wins);
}

TEST(Hedge, HedgedReplayIsDeterministic)
{
    const auto spec = model::makeDrm2();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 200);

    const auto run = [&] {
        core::ServingSimulation sim(
            spec, plan,
            sched::hedgeStudyConfig(
                rpc::LoadBalancePolicy::LeastOutstanding, 3, true));
        return sim.replayOpenLoop(requests, 1500.0);
    };
    const auto a = run();
    const auto b = run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].e2e, b[i].e2e);
        EXPECT_EQ(a[i].hedges, b[i].hedges);
        EXPECT_EQ(a[i].hedge_wins, b[i].hedge_wins);
    }
}

TEST(Hedge, BackupQueueSuppressionReducesHedges)
{
    const auto spec = model::makeDrm2();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 300);

    const auto hedges_with = [&](std::size_t max_backup_outstanding) {
        auto cfg = sched::hedgeStudyConfig(
            rpc::LoadBalancePolicy::LeastOutstanding, 3, true);
        cfg.hedge.max_backup_outstanding = max_backup_outstanding;
        core::ServingSimulation sim(spec, plan, cfg);
        sim.replayOpenLoop(requests, 2200.0);
        return sim.hedgeStats().hedges;
    };
    const auto unconstrained = hedges_with(0);
    const auto suppressed = hedges_with(1);
    ASSERT_GT(unconstrained, 0u);
    // At high load backup queues are rarely nearly-empty, so the
    // suppression knob must cut the hedge volume.
    EXPECT_LT(suppressed, unconstrained / 2);
}

/**
 * The headline property (tail-at-scale, Section VII of the paper's
 * scale-out argument): with transient stragglers, hedging with
 * tied-request cancellation improves the served P99 even with the sparse
 * tier at >= 90% mean measured utilization, across seeds.
 */
TEST(HedgeProperty, HedgedP99NoWorseAtHighUtilizationAcrossSeeds)
{
    const auto spec = model::makeDrm2();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 1000);
    const double qps = 2200.0;

    double util_sum = 0.0;
    int seeds = 0;
    for (const std::uint64_t seed :
         {0xd15c0ull, 0x5eedull, 0xfaceull, 0x1111ull, 0x4444ull}) {
        double p99_off = 0.0, p99_on = 0.0;
        for (const bool hedged : {false, true}) {
            core::ServingSimulation sim(
                spec, plan,
                sched::hedgeStudyConfig(
                    rpc::LoadBalancePolicy::LeastOutstanding, 3, hedged,
                    seed));
            const auto stats = sim.replayOpenLoop(requests, qps);
            const auto q = core::latencyQuantiles(stats);
            if (hedged) {
                p99_on = q.p99_ms;
            } else {
                p99_off = q.p99_ms;
                const double u = meanUtil(sim);
                EXPECT_GE(u, 0.85) << "seed=" << seed;
                util_sum += u;
                ++seeds;
            }
        }
        EXPECT_LE(p99_on, p99_off) << "seed=" << seed;
    }
    // "High load" means it: the tier runs at >= 90% mean utilization
    // over the studied seeds (each >= 85%).
    EXPECT_GE(util_sum / seeds, 0.90);
}

/**
 * Regression for the admission-control follow-up: a request shed
 * mid-flight must cancel its outstanding sparse RPCs — and once it is
 * shed, no further sparse busy-core time may be charged. One request,
 * slow gathers, a deadline that expires while the fan-out is on the
 * sparse tier: at shed time every outstanding attempt is cancelled
 * (queued ones release their slots, executing ones abort), so the
 * sparse-tier busy integral observed inside the completion callback
 * equals the final one exactly.
 */
TEST(ShedCancel, NoSparseBusyTimeChargedAfterMidFlightShed)
{
    const auto spec = model::makeDrm2();
    const auto plan = core::makeCapacityBalanced(spec, 4);
    const auto requests = testRequests(spec, 1);

    auto cfg = sched::sparseBoundStudyConfig(
        rpc::LoadBalancePolicy::LeastOutstanding, 2);
    cfg.lookup_base_ns = 4000.0; // slow gathers: RPCs outlast the deadline
    cfg.admission.deadline_ns = 2 * sim::kMillisecond;
    cfg.admission.cancel_in_flight = true;

    core::ServingSimulation sim(spec, plan, cfg);
    double busy_at_shed = -1.0;
    core::RequestStats shed_stats;
    sim.inject(requests[0], [&](const core::RequestStats &s) {
        shed_stats = s;
        double busy = 0.0;
        for (const double v : sim.serverBusyCoreNs())
            busy += v;
        busy_at_shed = busy;
    });
    sim.engine().run();

    EXPECT_EQ(shed_stats.shed_reason, core::ShedReason::DeadlineExceeded);
    EXPECT_GT(shed_stats.rpc_count, 0); // the fan-out really was in flight
    EXPECT_GT(sim.shedCancelledRpcs(), 0u);
    // Shed-cancelled work is not hedge waste: with hedging disabled the
    // hedge counters stay all-zero even through mid-flight aborts — at
    // the simulation level AND in the emitted per-request stats (the
    // attempt pre-charges must be settled before the shed stats go out).
    EXPECT_EQ(sim.hedgeStats().wasted_busy_ns, 0.0);
    EXPECT_EQ(shed_stats.hedges, 0);
    EXPECT_NEAR(shed_stats.hedge_wasted_cpu_ns, 0.0, 1.0);
    // The settled cpu_* buckets hold only work actually consumed.
    EXPECT_GE(shed_stats.cpu_ops_ns, 0.0);
    EXPECT_GE(shed_stats.cpu_serde_ns, 0.0);
    EXPECT_GE(shed_stats.cpu_service_ns, 0.0);
    ASSERT_GE(busy_at_shed, 0.0);
    double busy_final = 0.0;
    for (const double v : sim.serverBusyCoreNs())
        busy_final += v;
    EXPECT_DOUBLE_EQ(busy_at_shed, busy_final);
}

/**
 * Capacity view of the same fix: at overload with a strict deadline,
 * cancelling the sheds' outstanding RPCs reclaims real sparse-tier busy
 * time versus letting the doomed fan-outs run to completion.
 */
TEST(ShedCancel, CancellationReclaimsSparseBusyUnderOverload)
{
    const auto spec = model::makeDrm2();
    const auto plan = core::makeCapacityBalanced(spec, 4);
    const auto requests = testRequests(spec, 300);

    double busy[2] = {0.0, 0.0};
    std::uint64_t cancelled[2] = {0, 0};
    int sheds_with_rpcs = 0;
    for (const bool cancel : {false, true}) {
        auto cfg = sched::sparseBoundStudyConfig(
            rpc::LoadBalancePolicy::LeastOutstanding, 2);
        cfg.admission.deadline_ns = 15 * sim::kMillisecond;
        cfg.admission.cancel_in_flight = cancel;
        core::ServingSimulation sim(spec, plan, cfg);
        const auto stats = sim.replayOpenLoop(requests, 1800.0);
        ASSERT_EQ(stats.size(), requests.size());
        for (const double v : sim.serverBusyCoreNs())
            busy[cancel ? 1 : 0] += v;
        cancelled[cancel ? 1 : 0] = sim.shedCancelledRpcs();
        if (cancel) {
            for (const auto &s : stats)
                if (s.shed() && s.rpc_count > 0)
                    ++sheds_with_rpcs;
        }
    }
    EXPECT_EQ(cancelled[0], 0u);
    EXPECT_GT(cancelled[1], 0u);
    EXPECT_GT(sheds_with_rpcs, 0);
    // Reclaimed capacity must be substantial, not rounding noise.
    EXPECT_LT(busy[1], 0.8 * busy[0]);
}

/**
 * Per-shard hedge deadlines: under a capacity-balanced plan the shards'
 * pooling (and so their honest RPC latency) differs, and one global
 * quantile over-hedges the slow shards while starving the fast ones.
 * Per-shard trackers must narrow the hedge-rate spread across shards,
 * per seed and on average.
 */
TEST(HedgeProperty, PerShardDeadlineNarrowsHedgeRateSpread)
{
    const auto spec = model::makeDrm2();
    const auto plan = core::makeCapacityBalanced(spec, 4);
    const auto requests = testRequests(spec, 600);

    const auto spreadFor = [&](bool per_shard, std::uint64_t seed) {
        auto cfg = sched::hedgeStudyConfig(
            rpc::LoadBalancePolicy::LeastOutstanding, 3, true, seed);
        cfg.hedge.per_shard_deadline = per_shard;
        core::ServingSimulation sim(spec, plan, cfg);
        sim.replayOpenLoop(requests, 1500.0);
        const auto per = sim.perShardHedgeStats();
        double lo = 1.0, hi = 0.0;
        std::uint64_t hedges = 0;
        for (const auto &h : per) {
            lo = std::min(lo, h.hedgeRate());
            hi = std::max(hi, h.hedgeRate());
            hedges += h.hedges;
        }
        EXPECT_GT(hedges, 0u) << "per_shard=" << per_shard;
        // Per-shard counters must aggregate to the global ones.
        EXPECT_EQ(hedges, sim.hedgeStats().hedges);
        return hi - lo;
    };

    double global_sum = 0.0, per_shard_sum = 0.0;
    for (const std::uint64_t seed : {0xd15c0ull, 0x5eedull, 0xfaceull}) {
        const double g = spreadFor(false, seed);
        const double p = spreadFor(true, seed);
        EXPECT_LT(p, g) << "seed=" << seed;
        global_sum += g;
        per_shard_sum += p;
    }
    // On average the narrowing is decisive, not marginal.
    EXPECT_LT(per_shard_sum, 0.5 * global_sum);
}

/**
 * Regression for the span-closure inconsistency the observability layer
 * surfaced: hedged-loser attempts and attempts cancelled mid-execution
 * used to leave their spans dangling open. Every RPC attempt (primary,
 * hedge winner, hedge loser, wire-cancelled) must close: the trace ends
 * with zero open spans, one RpcAttempt span per launched attempt, and
 * every loser/cancelled attempt carries the matching flag with a real
 * end time.
 */
TEST(HedgeTrace, LoserAndCancelledAttemptsCloseTheirSpans)
{
    const auto spec = model::makeDrm2();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 300);

    auto cfg = sched::hedgeStudyConfig(
        rpc::LoadBalancePolicy::LeastOutstanding, 3, /*hedged=*/true);
    obs::SpanTracer tracer;
    cfg.tracer = &tracer;
    core::ServingSimulation sim(spec, plan, cfg);
    sim.replayOpenLoop(requests, 1500.0);
    const auto h = sim.hedgeStats();
    ASSERT_GT(h.hedges, 0u);

    EXPECT_EQ(tracer.openCount(), 0u);
    const auto rep = obs::checkConservation(tracer.spans());
    EXPECT_TRUE(rep.ok(requests.size()))
        << "roots=" << rep.root_spans << " open=" << rep.open_spans
        << " violations=" << rep.nesting_violations;

    std::uint64_t attempts = 0, hedge_attempts = 0, losers = 0;
    for (const auto &s : tracer.spans()) {
        EXPECT_FALSE(s.open()) << "span " << s.id << " kind "
                               << obs::spanKindName(s.kind);
        if (s.kind != obs::SpanKind::RpcAttempt)
            continue;
        ++attempts;
        if ((s.flags & obs::kFlagHedge) != 0)
            ++hedge_attempts;
        if ((s.flags & obs::kFlagLoser) != 0) {
            ++losers;
            EXPECT_GE(s.end, s.begin);
        }
    }
    // One attempt span per launched attempt: primaries + backups.
    EXPECT_EQ(attempts, h.primary_rpcs + h.hedges);
    EXPECT_EQ(hedge_attempts, h.hedges);
    // Races were decided, so somebody lost (wins imply losers).
    if (h.wins > 0)
        EXPECT_GT(losers, 0u);
}

/**
 * Same closure contract under mid-flight shed cancellation: the
 * poisoned fan-out's attempts close flagged Cancelled, and the trace
 * still conserves (the shed root closes flagged Shed).
 */
TEST(HedgeTrace, MidFlightShedClosesCancelledAttemptSpans)
{
    const auto spec = model::makeDrm2();
    const auto plan = core::makeCapacityBalanced(spec, 4);
    const auto requests = testRequests(spec, 300);

    auto cfg = sched::sparseBoundStudyConfig(
        rpc::LoadBalancePolicy::LeastOutstanding, 2);
    cfg.admission.deadline_ns = 15 * sim::kMillisecond;
    cfg.admission.cancel_in_flight = true;
    obs::SpanTracer tracer;
    cfg.tracer = &tracer;
    core::ServingSimulation sim(spec, plan, cfg);
    const auto stats = sim.replayOpenLoop(requests, 1800.0);
    ASSERT_GT(sim.shedCancelledRpcs(), 0u);

    EXPECT_EQ(tracer.openCount(), 0u);
    const auto rep = obs::checkConservation(tracer.spans());
    EXPECT_TRUE(rep.ok(requests.size()))
        << "roots=" << rep.root_spans << " open=" << rep.open_spans
        << " violations=" << rep.nesting_violations;
    EXPECT_GT(rep.cancelled_spans, 0u);

    // Shed roots carry the Shed flag; their count matches the stats.
    std::uint64_t shed_roots = 0, cancelled_closed = 0;
    for (const auto &s : tracer.spans()) {
        if (s.kind == obs::SpanKind::Request &&
            (s.flags & obs::kFlagShed) != 0)
            ++shed_roots;
        if ((s.flags & obs::kFlagCancelled) != 0) {
            EXPECT_FALSE(s.open());
            ++cancelled_closed;
        }
    }
    std::uint64_t shed_requests = 0;
    for (const auto &s : stats)
        shed_requests += s.shed() ? 1 : 0;
    EXPECT_EQ(shed_roots, shed_requests);
    EXPECT_GT(cancelled_closed, 0u);
}

/** Wasted duplicate work stays below the configured budget at low load. */
TEST(HedgeProperty, WastedWorkBoundedByBudgetAtLowLoad)
{
    const auto spec = model::makeDrm2();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 1000);

    for (const std::uint64_t seed :
         {0xd15c0ull, 0x5eedull, 0xfaceull, 0x1111ull, 0x2222ull}) {
        auto cfg = sched::hedgeStudyConfig(
            rpc::LoadBalancePolicy::LeastOutstanding, 3, true, seed);
        core::ServingSimulation sim(spec, plan, cfg);
        sim.replayOpenLoop(requests, 300.0);
        const auto h = sim.hedgeStats();
        ASSERT_GT(h.hedges, 0u) << "seed=" << seed;
        EXPECT_LE(h.wastedFraction(), cfg.hedge.max_hedge_fraction)
            << "seed=" << seed;
    }
}

} // namespace
