/**
 * @file
 * Tests for hedged sparse RPCs (rpc/hedge + the serving engine's racing
 * attempts): the latency tracker, hedge bookkeeping invariants, the
 * queue-aware suppression knob, determinism, and the headline properties
 * — hedged P99 no worse than unhedged at >= 90% mean sparse utilization
 * across seeds, and wasted duplicate work bounded by the hedge budget at
 * low load.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "core/analysis.h"
#include "core/serving.h"
#include "core/strategies.h"
#include "model/generators.h"
#include "rpc/hedge.h"
#include "sched/capacity_search.h"
#include "workload/request_generator.h"

namespace {

using namespace dri;

std::vector<workload::Request>
testRequests(const model::ModelSpec &spec, std::size_t n)
{
    workload::GeneratorConfig gc;
    gc.seed = 0xbeef;
    workload::RequestGenerator gen(spec, gc);
    return gen.generate(n);
}

core::ShardingPlan
testPlan(const model::ModelSpec &spec)
{
    workload::GeneratorConfig gc;
    gc.seed = 0xbeef;
    workload::RequestGenerator gen(spec, gc);
    return core::makeLoadBalanced(spec, 4, gen.estimatePoolingFactors(500));
}

double
meanUtil(const core::ServingSimulation &sim)
{
    double acc = 0.0;
    const auto util = sim.serverUtilization();
    for (double u : util)
        acc += u;
    return util.empty() ? 0.0 : acc / static_cast<double>(util.size());
}

TEST(LatencyTracker, WindowedQuantiles)
{
    rpc::LatencyTracker tracker(4);
    tracker.add(10);
    tracker.add(20);
    tracker.add(30);
    tracker.add(40);
    EXPECT_EQ(tracker.count(), 4u);
    EXPECT_EQ(tracker.quantile(0.0), 10);
    EXPECT_EQ(tracker.quantile(1.0), 40);
    // Ring overwrite: the oldest samples fall out of the window.
    tracker.add(50);
    tracker.add(60);
    EXPECT_EQ(tracker.count(), 4u);
    EXPECT_EQ(tracker.observed(), 6u);
    EXPECT_EQ(tracker.quantile(0.0), 30);
    EXPECT_EQ(tracker.quantile(1.0), 60);
}

TEST(Hedge, DisabledProducesNoHedgeActivity)
{
    const auto spec = model::makeDrm2();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 100);

    core::ServingSimulation sim(
        spec, plan,
        sched::hedgeStudyConfig(rpc::LoadBalancePolicy::LeastOutstanding,
                                3, /*hedged=*/false));
    const auto stats = sim.replayOpenLoop(requests, 500.0);
    const auto h = sim.hedgeStats();
    EXPECT_GT(h.primary_rpcs, 0u);
    EXPECT_EQ(h.hedges, 0u);
    EXPECT_EQ(h.wins, 0u);
    EXPECT_EQ(h.wasted_busy_ns, 0.0);
    EXPECT_EQ(h.hedgeRate(), 0.0);
    for (const auto &s : stats) {
        EXPECT_EQ(s.hedges, 0);
        EXPECT_EQ(s.hedge_wins, 0);
        EXPECT_EQ(s.hedge_wasted_cpu_ns, 0.0);
    }
}

TEST(Hedge, SingleReplicaCannotHedge)
{
    const auto spec = model::makeDrm2();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 100);

    core::ServingSimulation sim(
        spec, plan,
        sched::hedgeStudyConfig(rpc::LoadBalancePolicy::LeastOutstanding,
                                1, /*hedged=*/true));
    sim.replayOpenLoop(requests, 500.0);
    EXPECT_EQ(sim.hedgeStats().hedges, 0u);
}

TEST(Hedge, OutcomeCountersAreConserved)
{
    const auto spec = model::makeDrm2();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 300);

    core::ServingSimulation sim(
        spec, plan,
        sched::hedgeStudyConfig(rpc::LoadBalancePolicy::LeastOutstanding,
                                3, /*hedged=*/true));
    const auto stats = sim.replayOpenLoop(requests, 1500.0);
    const auto h = sim.hedgeStats();
    ASSERT_GT(h.hedges, 0u);
    // Every launched backup ends exactly one way.
    EXPECT_EQ(h.wins + h.losses + h.cancelled, h.hedges);
    // The budget is a hard cap on the hedge rate.
    EXPECT_LE(h.hedgeRate(), 0.10 + 1e-9);
    // Per-request counters aggregate to the simulation totals.
    std::uint64_t hedges = 0, wins = 0;
    for (const auto &s : stats) {
        ASSERT_GE(s.hedges, 0);
        ASSERT_GE(s.hedge_wins, 0);
        EXPECT_GE(s.hedge_wasted_cpu_ns, -1.0); // rounding-safe
        hedges += static_cast<std::uint64_t>(s.hedges);
        wins += static_cast<std::uint64_t>(s.hedge_wins);
    }
    EXPECT_EQ(hedges, h.hedges);
    EXPECT_EQ(wins, h.wins);
}

TEST(Hedge, BatchedRidersNeverWinWithoutAHedge)
{
    // Regression: apportioning hedges and wins independently by item
    // share could hand a rider a win with zero hedges. Wins are now a
    // sub-share of the rider's assigned hedges.
    const auto spec = model::makeDrm2();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 300);

    core::ServingSimulation sim(
        spec, plan,
        sched::hedgeStudyConfig(rpc::LoadBalancePolicy::LeastOutstanding,
                                3, /*hedged=*/true));
    sched::BatcherConfig bc;
    bc.policy = sched::BatchPolicy::QueueAware;
    const auto stats =
        sched::runBatchedOpenLoop(sim, requests, 1500.0, bc);
    const auto h = sim.hedgeStats();
    ASSERT_GT(h.hedges, 0u);
    std::uint64_t hedges = 0, wins = 0;
    for (const auto &s : stats) {
        EXPECT_LE(s.hedge_wins, s.hedges) << "request " << s.id;
        hedges += static_cast<std::uint64_t>(s.hedges);
        wins += static_cast<std::uint64_t>(s.hedge_wins);
    }
    EXPECT_EQ(hedges, h.hedges);
    EXPECT_EQ(wins, h.wins);
}

TEST(Hedge, HedgedReplayIsDeterministic)
{
    const auto spec = model::makeDrm2();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 200);

    const auto run = [&] {
        core::ServingSimulation sim(
            spec, plan,
            sched::hedgeStudyConfig(
                rpc::LoadBalancePolicy::LeastOutstanding, 3, true));
        return sim.replayOpenLoop(requests, 1500.0);
    };
    const auto a = run();
    const auto b = run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].e2e, b[i].e2e);
        EXPECT_EQ(a[i].hedges, b[i].hedges);
        EXPECT_EQ(a[i].hedge_wins, b[i].hedge_wins);
    }
}

TEST(Hedge, BackupQueueSuppressionReducesHedges)
{
    const auto spec = model::makeDrm2();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 300);

    const auto hedges_with = [&](std::size_t max_backup_outstanding) {
        auto cfg = sched::hedgeStudyConfig(
            rpc::LoadBalancePolicy::LeastOutstanding, 3, true);
        cfg.hedge.max_backup_outstanding = max_backup_outstanding;
        core::ServingSimulation sim(spec, plan, cfg);
        sim.replayOpenLoop(requests, 2200.0);
        return sim.hedgeStats().hedges;
    };
    const auto unconstrained = hedges_with(0);
    const auto suppressed = hedges_with(1);
    ASSERT_GT(unconstrained, 0u);
    // At high load backup queues are rarely nearly-empty, so the
    // suppression knob must cut the hedge volume.
    EXPECT_LT(suppressed, unconstrained / 2);
}

/**
 * The headline property (tail-at-scale, Section VII of the paper's
 * scale-out argument): with transient stragglers, hedging with
 * tied-request cancellation improves the served P99 even with the sparse
 * tier at >= 90% mean measured utilization, across seeds.
 */
TEST(HedgeProperty, HedgedP99NoWorseAtHighUtilizationAcrossSeeds)
{
    const auto spec = model::makeDrm2();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 1000);
    const double qps = 2200.0;

    double util_sum = 0.0;
    int seeds = 0;
    for (const std::uint64_t seed :
         {0xd15c0ull, 0x5eedull, 0xfaceull, 0x1111ull, 0x4444ull}) {
        double p99_off = 0.0, p99_on = 0.0;
        for (const bool hedged : {false, true}) {
            core::ServingSimulation sim(
                spec, plan,
                sched::hedgeStudyConfig(
                    rpc::LoadBalancePolicy::LeastOutstanding, 3, hedged,
                    seed));
            const auto stats = sim.replayOpenLoop(requests, qps);
            const auto q = core::latencyQuantiles(stats);
            if (hedged) {
                p99_on = q.p99_ms;
            } else {
                p99_off = q.p99_ms;
                const double u = meanUtil(sim);
                EXPECT_GE(u, 0.85) << "seed=" << seed;
                util_sum += u;
                ++seeds;
            }
        }
        EXPECT_LE(p99_on, p99_off) << "seed=" << seed;
    }
    // "High load" means it: the tier runs at >= 90% mean utilization
    // over the studied seeds (each >= 85%).
    EXPECT_GE(util_sum / seeds, 0.90);
}

/** Wasted duplicate work stays below the configured budget at low load. */
TEST(HedgeProperty, WastedWorkBoundedByBudgetAtLowLoad)
{
    const auto spec = model::makeDrm2();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 1000);

    for (const std::uint64_t seed :
         {0xd15c0ull, 0x5eedull, 0xfaceull, 0x1111ull, 0x2222ull}) {
        auto cfg = sched::hedgeStudyConfig(
            rpc::LoadBalancePolicy::LeastOutstanding, 3, true, seed);
        core::ServingSimulation sim(spec, plan, cfg);
        sim.replayOpenLoop(requests, 300.0);
        const auto h = sim.hedgeStats();
        ASSERT_GT(h.hedges, 0u) << "seed=" << seed;
        EXPECT_LE(h.wastedFraction(), cfg.hedge.max_hedge_fraction)
            << "seed=" << seed;
    }
}

} // namespace
