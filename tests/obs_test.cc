/**
 * @file
 * Unit tests for the observability layer (src/obs): span tracer
 * semantics (including the zero-allocation-when-disabled contract),
 * critical-path extraction on a hand-built span tree, conservation
 * checking, Chrome trace export sanity, and the metrics registry's
 * edge cases (duplicate registration, kind clashes, histogram bucket
 * boundaries, snapshot determinism).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/chrome_trace.h"
#include "obs/critical_path.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"

namespace {

using namespace dri;
using obs::SpanKind;

// ---------------------------------------------------------------------------
// SpanTracer
// ---------------------------------------------------------------------------

TEST(SpanTracer, DisabledTracerPerformsZeroAllocations)
{
    obs::SpanTracer tracer(/*enabled=*/false);
    const auto root = tracer.begin(1, SpanKind::Request, obs::kNoSpan, 0);
    EXPECT_EQ(root, obs::kNoSpan);
    // Every other call must degrade to a no-op on the kNoSpan handle.
    tracer.end(root, 100);
    tracer.addFlags(root, obs::kFlagShed);
    const auto rec =
        tracer.record(1, SpanKind::QueueWait, root, 0, 50);
    EXPECT_EQ(rec, obs::kNoSpan);
    // The contract tests rely on: a counter, not a timing heuristic.
    EXPECT_EQ(tracer.allocations(), 0u);
    EXPECT_TRUE(tracer.spans().empty());
    EXPECT_EQ(tracer.openCount(), 0u);
}

TEST(SpanTracer, BeginEndLifecycle)
{
    obs::SpanTracer tracer;
    const auto root = tracer.begin(7, SpanKind::Request, obs::kNoSpan, 10);
    ASSERT_NE(root, obs::kNoSpan);
    EXPECT_EQ(tracer.openCount(), 1u);

    const auto child =
        tracer.begin(7, SpanKind::QueueWait, root, 10, /*shard=*/2);
    EXPECT_EQ(tracer.openCount(), 2u);
    tracer.end(child, 30);
    EXPECT_EQ(tracer.openCount(), 1u);
    // Double-end is a no-op, not a corruption.
    tracer.end(child, 99);
    EXPECT_EQ(tracer.openCount(), 1u);
    tracer.end(root, 50, obs::kFlagShed);
    EXPECT_EQ(tracer.openCount(), 0u);

    ASSERT_EQ(tracer.spans().size(), 2u);
    const auto &r = tracer.spans()[0];
    const auto &c = tracer.spans()[1];
    EXPECT_EQ(r.request_id, 7u);
    EXPECT_EQ(r.begin, 10);
    EXPECT_EQ(r.end, 50);
    EXPECT_EQ(r.flags, obs::kFlagShed);
    EXPECT_EQ(c.parent, root);
    EXPECT_EQ(c.shard, 2);
    EXPECT_EQ(c.end, 30);
    EXPECT_GT(tracer.allocations(), 0u);
}

// ---------------------------------------------------------------------------
// Critical path + conservation on a hand-built span tree
// ---------------------------------------------------------------------------

/**
 * One request, one sequential lifecycle, one remote RPC chain:
 *
 *   Request [0,100]
 *     QueueWait [0,10]            queue
 *     Deserialize [10,20]         serde
 *     NetPhase [20,90]
 *       BatchExec [20,90]
 *         DenseBottom [20,30]     compute
 *         EmbeddedWait [30,80]
 *           RpcOp [30,80]
 *             RpcAttempt [30,80]
 *               WireOut [30,40]       network
 *               RemoteQueue [40,50]   queue
 *               RemoteCompute [50,70] compute
 *               WireBack [70,80]      network
 *         DenseTop [80,90]        compute
 *     ResponseSerialize [90,100]  serde
 *
 * The last-finisher walk must partition [0,100] exactly into
 * queue=20, serde=20, compute=40, network=20.
 */
obs::SpanTracer
buildCanonicalTree()
{
    obs::SpanTracer t;
    const auto root = t.record(1, SpanKind::Request, obs::kNoSpan, 0, 100);
    t.record(1, SpanKind::QueueWait, root, 0, 10);
    t.record(1, SpanKind::Deserialize, root, 10, 20);
    const auto net = t.record(1, SpanKind::NetPhase, root, 20, 90);
    const auto batch = t.record(1, SpanKind::BatchExec, net, 20, 90);
    t.record(1, SpanKind::DenseBottom, batch, 20, 30);
    const auto wait = t.record(1, SpanKind::EmbeddedWait, batch, 30, 80);
    const auto op = t.record(1, SpanKind::RpcOp, wait, 30, 80);
    const auto att = t.record(1, SpanKind::RpcAttempt, op, 30, 80);
    t.record(1, SpanKind::WireOut, att, 30, 40);
    t.record(1, SpanKind::RemoteQueue, att, 40, 50);
    t.record(1, SpanKind::RemoteCompute, att, 50, 70);
    t.record(1, SpanKind::WireBack, att, 70, 80);
    t.record(1, SpanKind::DenseTop, batch, 80, 90);
    t.record(1, SpanKind::ResponseSerialize, root, 90, 100);
    return t;
}

TEST(CriticalPath, SegmentsPartitionRootExactly)
{
    const auto tracer = buildCanonicalTree();
    const auto paths = obs::criticalPaths(tracer.spans());
    ASSERT_EQ(paths.size(), 1u);
    const auto &p = paths[0];
    EXPECT_EQ(p.request_id, 1u);
    EXPECT_EQ(p.total, 100);

    // Segments tile [0, 100] with no gaps or overlaps, in time order.
    ASSERT_FALSE(p.segments.empty());
    sim::SimTime cursor = 0;
    sim::Duration sum = 0;
    for (const auto &seg : p.segments) {
        EXPECT_EQ(seg.begin, cursor);
        EXPECT_GE(seg.end, seg.begin);
        cursor = seg.end;
        sum += seg.duration();
    }
    EXPECT_EQ(cursor, 100);
    EXPECT_EQ(sum, p.total);

    using B = obs::PathBucket;
    EXPECT_EQ(p.bucket_ns[static_cast<std::size_t>(B::Queue)], 20);
    EXPECT_EQ(p.bucket_ns[static_cast<std::size_t>(B::Serde)], 20);
    EXPECT_EQ(p.bucket_ns[static_cast<std::size_t>(B::Compute)], 40);
    EXPECT_EQ(p.bucket_ns[static_cast<std::size_t>(B::Network)], 20);
    EXPECT_EQ(p.dominant(), B::Compute);

    sim::Duration bucket_sum = 0;
    for (std::size_t b = 0; b < obs::kPathBucketCount; ++b)
        bucket_sum += p.bucket_ns[b];
    EXPECT_EQ(bucket_sum, p.total);

    const auto profile = obs::profilePaths(paths);
    EXPECT_EQ(profile.requests, 1u);
    EXPECT_EQ(profile.total_ns, 100);
    EXPECT_DOUBLE_EQ(profile.bucketShare(B::Compute), 0.4);
}

TEST(CriticalPath, CancelledAndLoserSpansAreExcluded)
{
    auto tracer = buildCanonicalTree();
    // A hedge loser that outlived the request: closed, flagged, longer
    // than everything else. It must not hijack the last-finisher walk.
    const auto op = tracer.spans()[7].id; // RpcOp
    tracer.record(1, SpanKind::RpcAttempt, op, 35, 300, /*shard=*/3, -1,
                  -1, obs::kFlagHedge | obs::kFlagLoser);
    const auto paths = obs::criticalPaths(tracer.spans());
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0].total, 100);
    using B = obs::PathBucket;
    EXPECT_EQ(paths[0].bucket_ns[static_cast<std::size_t>(B::Compute)], 40);
}

TEST(Conservation, CleanTreePasses)
{
    const auto tracer = buildCanonicalTree();
    const auto rep = obs::checkConservation(tracer.spans());
    EXPECT_EQ(rep.total_spans, 15u);
    EXPECT_EQ(rep.root_spans, 1u);
    EXPECT_EQ(rep.open_spans, 0u);
    EXPECT_EQ(rep.nesting_violations, 0u);
    EXPECT_TRUE(rep.ok(1));
    EXPECT_FALSE(rep.ok(2));
}

TEST(Conservation, DetectsOpenSpans)
{
    obs::SpanTracer t;
    const auto root = t.begin(1, SpanKind::Request, obs::kNoSpan, 0);
    t.begin(1, SpanKind::QueueWait, root, 0); // never ended
    t.end(root, 100);
    const auto rep = obs::checkConservation(t.spans());
    EXPECT_EQ(rep.open_spans, 1u);
    EXPECT_FALSE(rep.ok(1));
}

TEST(Conservation, DetectsNestingViolations)
{
    obs::SpanTracer t;
    const auto root = t.record(1, SpanKind::Request, obs::kNoSpan, 10, 100);
    // Child escapes its parent on both sides without a cancel flag.
    t.record(1, SpanKind::QueueWait, root, 0, 120);
    const auto rep = obs::checkConservation(t.spans());
    EXPECT_GT(rep.nesting_violations, 0u);
    EXPECT_FALSE(rep.ok(1));

    // The same overhang IS legal for cancelled/loser debris.
    obs::SpanTracer t2;
    const auto r2 = t2.record(1, SpanKind::Request, obs::kNoSpan, 10, 100);
    t2.record(1, SpanKind::RpcAttempt, r2, 10, 120, obs::kMainShard, -1,
              -1, obs::kFlagCancelled);
    const auto rep2 = obs::checkConservation(t2.spans());
    EXPECT_EQ(rep2.nesting_violations, 0u);
    EXPECT_EQ(rep2.cancelled_spans, 1u);
    EXPECT_TRUE(rep2.ok(1));
}

TEST(ChromeTrace, EmitsCompleteEventsForClosedSpans)
{
    auto tracer = buildCanonicalTree();
    tracer.begin(2, SpanKind::Request, obs::kNoSpan, 500); // open: skipped
    const std::string json = obs::chromeTraceJson(tracer.spans());
    EXPECT_EQ(json.front(), '[');
    // 15 closed spans -> 15 "X" events; the open root is skipped.
    std::size_t events = 0, pos = 0;
    while ((pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos) {
        ++events;
        ++pos;
    }
    EXPECT_EQ(events, 15u);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);
    EXPECT_NE(json.find("main-shard"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, DuplicateRegistrationReturnsSameHandle)
{
    obs::MetricsRegistry reg;
    obs::Counter &a = reg.counter("requests");
    obs::Counter &b = reg.counter("requests");
    EXPECT_EQ(&a, &b);
    a.inc(3);
    b.inc(4);
    EXPECT_EQ(a.value(), 7);
    EXPECT_EQ(reg.size(), 1u);

    obs::Histogram &h1 = reg.histogram("lat");
    obs::Histogram &h2 = reg.histogram("lat");
    EXPECT_EQ(&h1, &h2);
    // Handles are stable across later registrations (deque storage).
    for (int i = 0; i < 100; ++i)
        reg.gauge("g" + std::to_string(i));
    EXPECT_EQ(&reg.counter("requests"), &a);
    EXPECT_EQ(&reg.histogram("lat"), &h1);
}

TEST(MetricsRegistry, KindClashThrows)
{
    obs::MetricsRegistry reg;
    reg.counter("x");
    EXPECT_THROW(reg.gauge("x"), std::logic_error);
    EXPECT_THROW(reg.histogram("x"), std::logic_error);
    reg.gauge("y");
    EXPECT_THROW(reg.counter("y"), std::logic_error);
}

TEST(MetricsRegistry, SnapshotsAreDeterministic)
{
    const auto drive = [](obs::MetricsRegistry &reg) {
        reg.counter("served").inc(42);
        reg.gauge("qps").set(1500.5);
        auto &h = reg.histogram("wait_us");
        for (int i = 1; i <= 1000; ++i)
            h.observe(i);
        reg.takeSnapshot(60.0);
        reg.counter("served").inc(8);
        reg.takeSnapshot(120.0);
    };
    obs::MetricsRegistry a, b;
    drive(a);
    drive(b);
    ASSERT_EQ(a.snapshots().size(), 2u);
    ASSERT_EQ(a.snapshots().size(), b.snapshots().size());
    for (std::size_t i = 0; i < a.snapshots().size(); ++i) {
        const auto &sa = a.snapshots()[i];
        const auto &sb = b.snapshots()[i];
        EXPECT_EQ(sa.t, sb.t);
        ASSERT_EQ(sa.values.size(), sb.values.size());
        for (std::size_t j = 0; j < sa.values.size(); ++j) {
            EXPECT_EQ(sa.values[j].first, sb.values[j].first);
            EXPECT_EQ(sa.values[j].second, sb.values[j].second);
        }
    }
    // Registration order is snapshot order — counter first.
    EXPECT_EQ(a.snapshots()[0].values[0].first, "served");
    EXPECT_EQ(a.snapshots()[0].values[0].second, 42.0);
    EXPECT_EQ(a.snapshots()[1].values[0].second, 50.0);

    std::ostringstream ja, jb;
    a.writeJsonl(ja);
    b.writeJsonl(jb);
    EXPECT_EQ(ja.str(), jb.str());
    EXPECT_NE(ja.str().find("\"t\":60"), std::string::npos);
    EXPECT_NE(ja.str().find("\"wait_us.p50\":"), std::string::npos);
}

TEST(Histogram, BucketBoundariesRoundTrip)
{
    const obs::Histogram h(/*sub_bucket_bits=*/2); // sub = 4
    // Values below 2^bits land in exact unit buckets.
    for (std::int64_t v = 0; v < 4; ++v) {
        EXPECT_EQ(h.bucketIndex(v), static_cast<std::size_t>(v));
        EXPECT_EQ(h.bucketLowerBound(static_cast<std::size_t>(v)), v);
    }
    // First log range: [4,8) in unit buckets of width 1 << 0.
    EXPECT_EQ(h.bucketIndex(4), 4u);
    EXPECT_EQ(h.bucketIndex(7), 7u);
    // Second log range: [8,16) in buckets of width 2.
    EXPECT_EQ(h.bucketIndex(8), 8u);
    EXPECT_EQ(h.bucketIndex(9), 8u);
    EXPECT_EQ(h.bucketIndex(10), 9u);
    EXPECT_EQ(h.bucketLowerBound(8), 8);
    EXPECT_EQ(h.bucketLowerBound(9), 10);
    // Negative observations clamp to zero.
    EXPECT_EQ(h.bucketIndex(-5), 0u);

    // Round-trip property across several decades: the lower bound maps
    // back to its own bucket and never exceeds the value.
    for (std::int64_t v : {0LL, 1LL, 3LL, 4LL, 5LL, 15LL, 16LL, 17LL,
                           1000LL, 123456LL, 1LL << 40}) {
        const std::size_t idx = h.bucketIndex(v);
        const std::int64_t lo = h.bucketLowerBound(idx);
        EXPECT_LE(lo, v) << v;
        EXPECT_EQ(h.bucketIndex(lo), idx) << v;
    }
}

TEST(Histogram, QuantilesBoundedRelativeError)
{
    obs::Histogram h(/*sub_bucket_bits=*/5);
    for (std::int64_t v = 1; v <= 100000; ++v)
        h.observe(v);
    EXPECT_EQ(h.count(), 100000u);
    EXPECT_EQ(h.min(), 1);
    EXPECT_EQ(h.max(), 100000);
    EXPECT_DOUBLE_EQ(h.mean(), 50000.5);
    // Log-linear bucketing guarantees <= 2^-5 relative error downward.
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
        const auto est = static_cast<double>(h.quantile(q));
        const double exact = q * 100000.0;
        EXPECT_LE(est, exact + 1.0) << q;
        EXPECT_GE(est, exact * (1.0 - 1.0 / 32.0) - 1.0) << q;
    }
    EXPECT_EQ(h.quantile(0.0), 1);
    // p100 reports the max's bucket lower bound, clamped into the
    // observed range — within one bucket width of the true max.
    EXPECT_LE(h.quantile(1.0), 100000);
    EXPECT_GE(h.quantile(1.0), 100000 - (100000 >> 5));
}

TEST(Histogram, ValueAtQuantileInterpolatesWithinTheBucket)
{
    obs::Histogram h(/*sub_bucket_bits=*/5);
    for (std::int64_t v = 1; v <= 100000; ++v)
        h.observe(v);
    // The interpolated inverse is bounded by the same relative error as
    // the bucketed quantile, but two-sided: within one bucket width
    // (2^-5 of the value) of the exact order statistic.
    for (const double q : {0.1, 0.25, 0.5, 0.9, 0.99, 0.999}) {
        const double est = h.valueAtQuantile(q);
        const double exact = q * 100000.0;
        EXPECT_NEAR(est, exact, exact / 32.0 + 1.0) << q;
        // Never below the bucketed (lower-bound) quantile's bucket.
        EXPECT_GE(est + 1e-9,
                  static_cast<double>(h.quantile(q)) * (1.0 - 1.0 / 32.0))
            << q;
    }
    // Monotone in q.
    double prev = h.valueAtQuantile(0.0);
    for (double q = 0.05; q <= 1.0; q += 0.05) {
        const double cur = h.valueAtQuantile(q);
        EXPECT_GE(cur, prev) << q;
        prev = cur;
    }
    // Clamped to the observed extremes at the ends.
    EXPECT_GE(h.valueAtQuantile(0.0), 1.0);
    EXPECT_LE(h.valueAtQuantile(1.0), 100000.0);
}

TEST(Histogram, ValueAtQuantileEdgeCases)
{
    obs::Histogram empty(5);
    EXPECT_DOUBLE_EQ(empty.valueAtQuantile(0.5), 0.0);

    // Single value: every quantile is that value (clamping pins the
    // interpolation to the [min, max] = [v, v] range).
    obs::Histogram one(5);
    one.observe(777);
    for (const double q : {0.0, 0.5, 1.0})
        EXPECT_DOUBLE_EQ(one.valueAtQuantile(q), 777.0) << q;

    // Two spread values: interpolation never leaves [min, max] even
    // with empty buckets between them, and out-of-range q clamps.
    obs::Histogram two(5);
    two.observe(10);
    two.observe(1000);
    EXPECT_GE(two.valueAtQuantile(-1.0), 10.0);
    EXPECT_LE(two.valueAtQuantile(2.0), 1000.0);
    EXPECT_DOUBLE_EQ(two.valueAtQuantile(0.0), 10.0);
}

TEST(Histogram, MergeEqualsWholeStream)
{
    obs::Histogram whole(5), left(5), right(5);
    for (std::int64_t v = 0; v < 5000; ++v) {
        const std::int64_t x = (v * 2654435761LL) % 1000003;
        whole.observe(x);
        (v % 2 == 0 ? left : right).observe(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_EQ(left.sum(), whole.sum());
    EXPECT_EQ(left.min(), whole.min());
    EXPECT_EQ(left.max(), whole.max());
    for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
        EXPECT_EQ(left.quantile(q), whole.quantile(q)) << q;

    obs::Histogram other_bits(3);
    EXPECT_THROW(left.merge(other_bits), std::logic_error);
}

} // namespace
