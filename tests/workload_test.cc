/**
 * @file
 * Tests for the workload generator: determinism, request-size bounds,
 * pooling-factor estimation (the Section III-B2 sampling methodology), and
 * the per-table semantics (item-scaled vs per-request pooling).
 */
#include <gtest/gtest.h>

#include "model/generators.h"
#include "stats/quantile.h"
#include "workload/request_generator.h"

namespace {

using namespace dri;
using workload::GeneratorConfig;
using workload::Request;
using workload::RequestGenerator;

TEST(RequestGenerator, DeterministicForSeed)
{
    const auto spec = model::makeDrm1();
    RequestGenerator g1(spec, GeneratorConfig{42, 0.0});
    RequestGenerator g2(spec, GeneratorConfig{42, 0.0});
    const auto a = g1.generate(50);
    const auto b = g2.generate(50);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].items, b[i].items);
        EXPECT_EQ(a[i].table_lookups, b[i].table_lookups);
    }
}

TEST(RequestGenerator, DifferentSeedsDiffer)
{
    const auto spec = model::makeDrm2();
    RequestGenerator g1(spec, GeneratorConfig{1, 0.0});
    RequestGenerator g2(spec, GeneratorConfig{2, 0.0});
    EXPECT_NE(g1.next().items, g2.next().items);
}

TEST(RequestGenerator, ItemsWithinSpecBounds)
{
    const auto spec = model::makeDrm1();
    RequestGenerator gen(spec, GeneratorConfig{7, 0.0});
    for (const auto &req : gen.generate(2000)) {
        EXPECT_GE(req.items,
                  static_cast<std::int64_t>(spec.items_min) - 1);
        EXPECT_LE(req.items,
                  static_cast<std::int64_t>(spec.items_max) + 1);
        EXPECT_EQ(req.table_lookups.size(), spec.tables.size());
    }
}

TEST(RequestGenerator, IdsAreSequential)
{
    const auto spec = model::makeDrm3();
    RequestGenerator gen(spec, GeneratorConfig{9, 0.0});
    const auto reqs = gen.generate(10);
    for (std::size_t i = 0; i < reqs.size(); ++i)
        EXPECT_EQ(reqs[i].id, i);
}

TEST(RequestGenerator, Drm3DominantTableExactlyOneLookup)
{
    const auto spec = model::makeDrm3();
    RequestGenerator gen(spec, GeneratorConfig{11, 0.0});
    for (const auto &req : gen.generate(200))
        EXPECT_EQ(req.table_lookups[0], 1); // pooling factor 1 per request
}

TEST(RequestGenerator, LookupsScaleWithItems)
{
    const auto spec = model::makeDrm1();
    RequestGenerator gen(spec, GeneratorConfig{13, 0.0});
    const auto reqs = gen.generate(3000);
    const Request *small = &reqs[0];
    const Request *big = &reqs[0];
    for (const auto &r : reqs) {
        if (r.items < small->items)
            small = &r;
        if (r.items > big->items)
            big = &r;
    }
    ASSERT_GT(big->items, small->items * 4);
    EXPECT_GT(big->totalLookups(), small->totalLookups() * 3);
}

TEST(RequestGenerator, PoolingEstimateMatchesSpec)
{
    const auto spec = model::makeDrm1();
    RequestGenerator gen(spec, GeneratorConfig{17, 0.0});
    const auto pooling = gen.estimatePoolingFactors(1000);
    ASSERT_EQ(pooling.size(), spec.tables.size());
    double total = 0.0;
    for (double p : pooling)
        total += p;
    // Sampled total pooling per request should be near the spec's
    // analytic expectation (Table II: ~138943 summed over shards).
    EXPECT_NEAR(total, spec.expectedPoolingPerRequest(),
                spec.expectedPoolingPerRequest() * 0.15);
}

TEST(RequestGenerator, PoolingEstimateDoesNotPerturbStream)
{
    const auto spec = model::makeDrm2();
    RequestGenerator g1(spec, GeneratorConfig{21, 0.0});
    RequestGenerator g2(spec, GeneratorConfig{21, 0.0});
    (void)g2.estimatePoolingFactors(100);
    EXPECT_EQ(g1.next().items, g2.next().items);
}

TEST(RequestGenerator, NetLookupSplit)
{
    const auto spec = model::makeDrm1();
    RequestGenerator gen(spec, GeneratorConfig{23, 0.0});
    const auto req = gen.next();
    EXPECT_EQ(req.lookupsForNet(spec, 0) + req.lookupsForNet(spec, 1),
              req.totalLookups());
    // Net 1 is the hot net (~94% of pooling).
    EXPECT_GT(req.lookupsForNet(spec, 0), req.lookupsForNet(spec, 1));
}

TEST(RequestGenerator, DiurnalModulationChangesSizes)
{
    const auto spec = model::makeDrm1();
    RequestGenerator flat(spec, GeneratorConfig{31, 0.0});
    RequestGenerator wavy(spec, GeneratorConfig{31, 0.5});
    const auto a = flat.generate(1000);
    const auto b = wavy.generate(1000);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_diff = any_diff || a[i].items != b[i].items;
    EXPECT_TRUE(any_diff);
}

TEST(RequestGenerator, HeavyTailP99OverP50)
{
    const auto spec = model::makeDrm1();
    RequestGenerator gen(spec, GeneratorConfig{37, 0.0});
    stats::QuantileEstimator q;
    for (const auto &r : gen.generate(5000))
        q.add(static_cast<double>(r.items));
    EXPECT_GT(q.p99() / q.p50(), 4.0);
}

} // namespace
