/**
 * @file
 * Property tests tying the trace-driven cache simulator back to the
 * analytic paging model: the LRU hit rate measured on a Zipf trace must
 * converge to the closed-form dc::hitRate curve as the cache approaches
 * the working set (the degenerate case the subsystem generalizes), and
 * basic monotonicity/ordering properties must hold across policies.
 */
#include <gtest/gtest.h>

#include "cache/tiered_sim.h"
#include "dc/paging.h"
#include "model/generators.h"
#include "workload/access_trace.h"
#include "workload/request_generator.h"

namespace {

using namespace dri;
using cache::Policy;

struct Fixture
{
    model::ModelSpec spec = model::makeCacheStudySpec();
    workload::AccessTrace trace;
    std::int64_t universe_bytes = 0;

    explicit Fixture(double skew, std::uint64_t seed = 17,
                     std::size_t n_requests = 600)
    {
        workload::RequestGenerator gen(spec,
                                       workload::GeneratorConfig{seed});
        trace = workload::recordTrace(spec, gen.generate(n_requests), skew,
                                      seed);
        universe_bytes = workload::traceFootprint(spec, trace).universe_bytes;
    }

    double
    hitRate(Policy policy, double fraction) const
    {
        const auto capacity = static_cast<std::int64_t>(
            fraction * static_cast<double>(universe_bytes));
        return cache::replayTrace(spec, trace, policy, capacity)
            .overallHitRate();
    }
};

TEST(CacheProperty, LruConvergesToAnalyticCurve)
{
    // The acceptance bar for the subsystem: at cache sizes approaching
    // the working set, simulated LRU reproduces the analytic skew curve
    // within 5% absolute (three sizes; the formula is the
    // frequency-stationary bound, which recency-based LRU approaches
    // from below as eviction pressure vanishes).
    const double skew = 0.6;
    const Fixture fx(skew);
    for (const double f : {0.75, 0.85, 0.95}) {
        const double analytic = dc::hitRate(f, skew);
        const double simulated = fx.hitRate(Policy::Lru, f);
        EXPECT_NEAR(simulated, analytic, 0.05)
            << "resident fraction " << f;
        // LRU never beats the frequency-stationary bound (small slack for
        // trace noise).
        EXPECT_LE(simulated, analytic + 0.01);
    }
}

TEST(CacheProperty, LruConvergesAcrossSkews)
{
    for (const double skew : {0.3, 0.8}) {
        const Fixture fx(skew);
        for (const double f : {0.8, 0.9}) {
            EXPECT_NEAR(fx.hitRate(Policy::Lru, f), dc::hitRate(f, skew),
                        0.05)
                << "skew " << skew << " fraction " << f;
        }
    }
}

TEST(CacheProperty, HitRateMonotoneInCapacity)
{
    const Fixture fx(0.6);
    for (const auto policy :
         {Policy::Lru, Policy::Lfu, Policy::TwoQueue}) {
        double prev = -1.0;
        for (const double f : {0.1, 0.2, 0.4, 0.8}) {
            const double h = fx.hitRate(policy, f);
            EXPECT_GE(h, prev) << cache::policyName(policy) << " at " << f;
            prev = h;
        }
        // Full-universe cache: only warmup-window evictions remain, so
        // the post-warmup hit rate is essentially perfect.
        EXPECT_GT(fx.hitRate(policy, 1.0), 0.99);
    }
}

TEST(CacheProperty, FrequencyPoliciesBeatLruAtSmallBudgets)
{
    // Static Zipf popularity is LFU's home turf; 2Q's protected queue
    // gets most of that benefit. This is the policy-dependent separation
    // the flat analytic coefficient cannot express.
    const Fixture fx(0.8);
    for (const double f : {0.05, 0.1, 0.2}) {
        const double lru = fx.hitRate(Policy::Lru, f);
        EXPECT_GT(fx.hitRate(Policy::Lfu, f), lru) << "fraction " << f;
        EXPECT_GT(fx.hitRate(Policy::TwoQueue, f), lru)
            << "fraction " << f;
    }
}

} // namespace
