/**
 * @file
 * Tests for the DES serving engine: determinism, stack accounting
 * identities, RPC fan-out counts, batching, platform scaling, and the
 * open-loop replayer.
 */
#include <gtest/gtest.h>

#include "core/serving.h"
#include "core/strategies.h"
#include "model/generators.h"
#include "workload/request_generator.h"

namespace {

using namespace dri;

std::vector<workload::Request>
requestsFor(const model::ModelSpec &spec, std::size_t n,
            std::uint64_t seed = 5)
{
    workload::RequestGenerator gen(spec,
                                   workload::GeneratorConfig{seed, 0.0});
    return gen.generate(n);
}

std::vector<double>
poolingFor(const model::ModelSpec &spec)
{
    workload::RequestGenerator gen(spec, workload::GeneratorConfig{99, 0.0});
    return gen.estimatePoolingFactors(300);
}

TEST(Serving, SerialReplayDeterministic)
{
    const auto spec = model::makeDrm2();
    const auto reqs = requestsFor(spec, 40);
    const auto plan = core::makeCapacityBalanced(spec, 4);
    core::ServingConfig config;
    config.seed = 7;

    core::ServingSimulation sim1(spec, plan, config);
    core::ServingSimulation sim2(spec, plan, config);
    const auto a = sim1.replaySerial(reqs);
    const auto b = sim2.replaySerial(reqs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].e2e, b[i].e2e);
        EXPECT_DOUBLE_EQ(a[i].cpuTotalNs(), b[i].cpuTotalNs());
    }
}

TEST(Serving, AllRequestsComplete)
{
    const auto spec = model::makeDrm1();
    const auto reqs = requestsFor(spec, 25);
    for (const auto &plan :
         {core::makeSingular(spec), core::makeOneShard(spec),
          core::makeCapacityBalanced(spec, 8)}) {
        core::ServingSimulation sim(spec, plan, core::ServingConfig{});
        const auto stats = sim.replaySerial(reqs);
        ASSERT_EQ(stats.size(), reqs.size()) << plan.label();
        for (const auto &s : stats) {
            EXPECT_GT(s.e2e, 0) << plan.label();
            EXPECT_GT(s.cpuTotalNs(), 0.0) << plan.label();
        }
    }
}

TEST(Serving, LatencyStackSumsToE2e)
{
    const auto spec = model::makeDrm1();
    const auto reqs = requestsFor(spec, 30);
    for (const auto &plan :
         {core::makeSingular(spec), core::makeCapacityBalanced(spec, 4)}) {
        core::ServingSimulation sim(spec, plan, core::ServingConfig{});
        for (const auto &s : sim.replaySerial(reqs)) {
            const auto sum = s.queue_wait + s.lat_serde + s.lat_service +
                             s.lat_net_overhead + s.lat_embedded +
                             s.lat_dense;
            EXPECT_EQ(sum, s.e2e) << plan.label();
        }
    }
}

TEST(Serving, SingularHasNoRpcsOrNetwork)
{
    const auto spec = model::makeDrm2();
    const auto reqs = requestsFor(spec, 20);
    core::ServingSimulation sim(spec, core::makeSingular(spec),
                                core::ServingConfig{});
    for (const auto &s : sim.replaySerial(reqs)) {
        EXPECT_EQ(s.rpc_count, 0);
        EXPECT_EQ(s.emb_network, 0);
        EXPECT_GT(s.emb_sparse_op, 0); // inline SLS is the embedded portion
        for (double v : s.shard_op_ns)
            EXPECT_DOUBLE_EQ(v, 0.0);
    }
    EXPECT_EQ(sim.collector().rpcs().size(), 0u);
}

TEST(Serving, RpcFanoutMatchesGroupsTimesBatches)
{
    const auto spec = model::makeDrm1(); // every shard hosts both nets
    const auto reqs = requestsFor(spec, 10);
    const auto plan = core::makeCapacityBalanced(spec, 4);
    core::ServingSimulation sim(spec, plan, core::ServingConfig{});
    EXPECT_EQ(sim.fanoutGroupCount(), 8u); // 4 shards x 2 nets
    const auto stats = sim.replaySerial(reqs);
    for (const auto &s : stats)
        EXPECT_EQ(s.rpc_count, s.batches * 8);
}

TEST(Serving, DistributedSlowerThanSingularSerial)
{
    const auto spec = model::makeDrm1();
    const auto reqs = requestsFor(spec, 60);
    core::ServingConfig config;
    core::ServingSimulation base(spec, core::makeSingular(spec), config);
    core::ServingSimulation dist(spec, core::makeOneShard(spec), config);
    const auto b = base.replaySerial(reqs);
    const auto d = dist.replaySerial(reqs);
    double b_sum = 0.0, d_sum = 0.0;
    for (std::size_t i = 0; i < b.size(); ++i) {
        b_sum += static_cast<double>(b[i].e2e);
        d_sum += static_cast<double>(d[i].e2e);
    }
    EXPECT_GT(d_sum, b_sum); // Amdahl bound: serial distributed is slower
}

TEST(Serving, ComputeGrowsWithShardCount)
{
    const auto spec = model::makeDrm1();
    const auto reqs = requestsFor(spec, 40);
    const auto pooling = poolingFor(spec);
    double prev = 0.0;
    for (int n : {1, 2, 4, 8}) {
        const auto plan =
            n == 1 ? core::makeOneShard(spec)
                   : core::makeLoadBalanced(spec, n, pooling);
        core::ServingSimulation sim(spec, plan, core::ServingConfig{});
        const auto stats = sim.replaySerial(reqs);
        double cpu = 0.0;
        for (const auto &s : stats)
            cpu += s.cpuTotalNs();
        EXPECT_GT(cpu, prev) << n << " shards";
        prev = cpu;
    }
}

TEST(Serving, NetworkLatencyPositiveAndDominant)
{
    // The paper: network latency exceeds operator latency on sparse shards
    // for distributed configurations (Fig. 8b). A distribution-level
    // property — individual requests may draw unlucky jitter — so the
    // dominance check compares means while positivity holds per request.
    const auto spec = model::makeDrm1();
    const auto reqs = requestsFor(spec, 50);
    const auto plan = core::makeCapacityBalanced(spec, 8);
    core::ServingSimulation sim(spec, plan, core::ServingConfig{});
    double net = 0.0, op = 0.0;
    for (const auto &s : sim.replaySerial(reqs)) {
        EXPECT_GT(s.emb_network, 0);
        net += static_cast<double>(s.emb_network);
        op += static_cast<double>(s.emb_sparse_op);
    }
    EXPECT_GT(net, op);
}

TEST(Serving, BatchCountFollowsBatchSize)
{
    const auto spec = model::makeDrm1(); // default batch 64
    auto reqs = requestsFor(spec, 5);
    core::ServingConfig config;
    core::ServingSimulation sim(spec, core::makeSingular(spec), config);
    for (const auto &s : sim.replaySerial(reqs)) {
        const auto expect =
            (s.items + spec.default_batch_size - 1) /
            spec.default_batch_size;
        EXPECT_EQ(s.batches, expect);
    }

    config.batch_size_override = 1 << 20;
    core::ServingSimulation single(spec, core::makeSingular(spec), config);
    for (const auto &s : single.replaySerial(reqs))
        EXPECT_EQ(s.batches, 1);
}

TEST(Serving, SlowerPlatformScalesCpu)
{
    const auto spec = model::makeDrm2();
    const auto reqs = requestsFor(spec, 30);
    const auto plan = core::makeCapacityBalanced(spec, 4);

    core::ServingConfig fast;
    core::ServingConfig slow;
    slow.sparse_platform.cpu_time_scale = 2.0;

    core::ServingSimulation f(spec, plan, fast);
    core::ServingSimulation s(spec, plan, slow);
    const auto fs = f.replaySerial(reqs);
    const auto ss = s.replaySerial(reqs);
    double f_op = 0.0, s_op = 0.0;
    for (std::size_t i = 0; i < fs.size(); ++i)
        for (std::size_t sh = 0; sh < fs[i].shard_op_ns.size(); ++sh) {
            f_op += fs[i].shard_op_ns[sh];
            s_op += ss[i].shard_op_ns[sh];
        }
    EXPECT_NEAR(s_op / f_op, 2.0, 0.05);
}

TEST(Serving, OpenLoopCompletesAllAndQueues)
{
    const auto spec = model::makeDrm1();
    const auto reqs = requestsFor(spec, 60);
    core::ServingSimulation sim(spec, core::makeSingular(spec),
                                core::ServingConfig{});
    const auto stats = sim.replayOpenLoop(reqs, 200.0); // aggressive rate
    ASSERT_EQ(stats.size(), reqs.size());
    for (const auto &s : stats)
        EXPECT_GT(s.e2e, 0);
}

TEST(Serving, Drm3TouchesTwoShards)
{
    const auto spec = model::makeDrm3();
    const auto reqs = requestsFor(spec, 30);
    const auto plan =
        core::makeNsbp(spec, 8, dc::scLarge().usableModelBytes());
    core::ServingSimulation sim(spec, plan, core::ServingConfig{});
    for (const auto &s : sim.replaySerial(reqs)) {
        int touched = 0;
        for (double v : s.shard_op_ns)
            touched += v > 0.0 ? 1 : 0;
        EXPECT_LE(touched, 2 * s.batches);
        EXPECT_GE(touched, 1);
    }
}

TEST(Serving, SpanRetentionFollowsConfig)
{
    const auto spec = model::makeDrm2();
    const auto reqs = requestsFor(spec, 3);
    const auto plan = core::makeCapacityBalanced(spec, 2);

    core::ServingConfig no_spans;
    core::ServingSimulation a(spec, plan, no_spans);
    a.replaySerial(reqs);
    EXPECT_EQ(a.collector().spans().size(), 0u);
    EXPECT_GT(a.collector().spanCount(), 0u);

    core::ServingConfig with_spans;
    with_spans.retain_spans = true;
    core::ServingSimulation b(spec, plan, with_spans);
    b.replaySerial(reqs);
    EXPECT_GT(b.collector().spans().size(), 0u);
}

TEST(Serving, SerialGapShiftsArrivals)
{
    const auto spec = model::makeDrm3();
    const auto reqs = requestsFor(spec, 5);
    core::ServingConfig gap;
    gap.serial_gap_ns = 10 * sim::kMillisecond;
    core::ServingSimulation sim(spec, core::makeSingular(spec), gap);
    const auto stats = sim.replaySerial(reqs);
    for (std::size_t i = 1; i < stats.size(); ++i)
        EXPECT_GE(stats[i].arrival,
                  stats[i - 1].completion + gap.serial_gap_ns);
}

} // namespace
