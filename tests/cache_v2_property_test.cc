/**
 * @file
 * Property tests for cache v2 (ARC + TinyLFU admission):
 *
 *  - ARC is adaptive: at least min(LRU, LFU) and within epsilon of the
 *    better of the two on pure-recency and pure-frequency traces, and
 *    essentially the best of both on a mixed trace.
 *  - TinyLFU admission never lowers the hit rate on a Zipf trace at an
 *    equal byte budget (up to a one-access admission lag), for every
 *    eviction policy it wraps.
 *  - Structural invariants: byte budgets and ghost-list bounds hold at
 *    every access; the 4-bit sketch stays bounded and actually ages.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "cache/admission.h"
#include "cache/tiered_sim.h"
#include "model/generators.h"
#include "workload/access_trace.h"
#include "workload/request_generator.h"

namespace {

using namespace dri;
using cache::Admission;
using cache::Policy;

const double kBudgets[] = {0.05, 0.1, 0.2, 0.4};

workload::AccessTrace
zipfTrace(const model::ModelSpec &spec, double skew, std::uint64_t seed)
{
    workload::RequestGenerator gen(spec, workload::GeneratorConfig{seed});
    return workload::recordTrace(spec, gen.generate(600), skew, seed);
}

workload::AccessTrace
driftTrace(const model::ModelSpec &spec, double recency_fraction)
{
    workload::MixedTraceConfig mc;
    mc.recency_fraction = recency_fraction;
    return workload::synthesizeMixedTrace(spec, mc);
}

double
hitRate(const model::ModelSpec &spec, const workload::AccessTrace &trace,
        std::int64_t universe, Policy policy, double fraction,
        Admission admission = Admission::None)
{
    const auto cap = static_cast<std::int64_t>(
        fraction * static_cast<double>(universe));
    return cache::replayTrace(spec, trace, policy, cap, 0.5, admission)
        .overallHitRate();
}

/**
 * The adaptivity property: on traces where LRU and LFU disagree wildly,
 * ARC lands at least at the worse of the two (with a hair of slack) and
 * within 3% absolute of the better — on BOTH extremes, which no static
 * policy achieves.
 */
TEST(ArcProperty, TracksBestOfLruLfuOnPureTraces)
{
    const auto spec = model::makeCacheStudySpec();
    struct Case
    {
        const char *name;
        workload::AccessTrace trace;
    };
    const Case cases[] = {
        {"pure-frequency", zipfTrace(spec, 0.8, 17)},
        {"pure-recency", driftTrace(spec, 1.0)},
    };
    for (const auto &c : cases) {
        const auto universe =
            workload::traceFootprint(spec, c.trace).universe_bytes;
        for (const double f : kBudgets) {
            const double lru = hitRate(spec, c.trace, universe, Policy::Lru, f);
            const double lfu = hitRate(spec, c.trace, universe, Policy::Lfu, f);
            const double arc = hitRate(spec, c.trace, universe, Policy::Arc, f);
            EXPECT_GE(arc, std::min(lru, lfu) - 0.01)
                << c.name << " f=" << f;
            EXPECT_GE(arc, std::max(lru, lfu) - 0.03)
                << c.name << " f=" << f << " lru=" << lru
                << " lfu=" << lfu << " arc=" << arc;
        }
        // The extremes really are extremes: the policies disagree by a
        // wide margin somewhere, or the test proves nothing.
        const double lru = hitRate(spec, c.trace, universe, Policy::Lru, 0.1);
        const double lfu = hitRate(spec, c.trace, universe, Policy::Lfu, 0.1);
        EXPECT_GT(std::abs(lru - lfu), 0.05) << c.name;
    }
}

TEST(ArcProperty, NearBestOnMixedTrace)
{
    const auto spec = model::makeCacheStudySpec();
    const auto trace = driftTrace(spec, 0.5);
    const auto universe =
        workload::traceFootprint(spec, trace).universe_bytes;
    for (const double f : kBudgets) {
        const double lru = hitRate(spec, trace, universe, Policy::Lru, f);
        const double lfu = hitRate(spec, trace, universe, Policy::Lfu, f);
        const double arc = hitRate(spec, trace, universe, Policy::Arc, f);
        // Beats the worse of the two clearly, and is within 1% of the
        // better — adaptivity is worth having on mixed traffic.
        EXPECT_GT(arc, std::min(lru, lfu) + 0.05) << "f=" << f;
        EXPECT_GE(arc, std::max(lru, lfu) - 0.01) << "f=" << f;
    }
}

TEST(ArcProperty, HitRateMonotoneInCapacity)
{
    const auto spec = model::makeCacheStudySpec();
    const auto trace = driftTrace(spec, 0.5);
    const auto universe =
        workload::traceFootprint(spec, trace).universe_bytes;
    double prev = -1.0;
    for (const double f : {0.05, 0.1, 0.2, 0.4, 0.8, 1.0}) {
        const double h = hitRate(spec, trace, universe, Policy::Arc, f);
        EXPECT_GE(h, prev - 1e-9) << "f=" << f;
        prev = h;
    }
}

/**
 * The admission property from the issue: TinyLFU admission never lowers
 * the hit rate on a Zipf trace vs. no filter at an equal byte budget.
 * The 0.002 slack covers the doorkeeper's one-access admission lag (a
 * warm row's second access can still miss where an unfiltered cache
 * would have admitted it on the first); measured deltas beyond that are
 * real regressions.
 */
TEST(TinyLfuProperty, NeverLowersHitRateOnZipfTraces)
{
    const auto spec = model::makeCacheStudySpec();
    for (const std::uint64_t seed : {17ull, 99ull}) {
        for (const double skew : {0.6, 0.8}) {
            const auto trace = zipfTrace(spec, skew, seed);
            const auto universe =
                workload::traceFootprint(spec, trace).universe_bytes;
            for (const auto policy : {Policy::Lru, Policy::Lfu,
                                      Policy::TwoQueue, Policy::Arc}) {
                for (const double f : kBudgets) {
                    const double plain =
                        hitRate(spec, trace, universe, policy, f);
                    const double filtered =
                        hitRate(spec, trace, universe, policy, f,
                                Admission::TinyLfu);
                    EXPECT_GE(filtered, plain - 0.002)
                        << cache::policyName(policy) << " skew=" << skew
                        << " f=" << f << " seed=" << seed;
                }
            }
        }
    }
}

/**
 * The W-TinyLFU property from the issue: on drifting-window traces —
 * where the plain doorkeeper measurably hurts (every fresh row pays the
 * admission lag, and the window drifts a fresh row in every
 * drift_stride accesses) — the LRU admission window plus the adaptive
 * climber recover the unfiltered hit rate to within 3% absolute, while
 * plain TinyLFU stays far behind. Not-worse on the drifting trace is
 * exactly what the ROADMAP said the old property tests merely
 * "tolerated".
 */
TEST(WTinyLfuProperty, NotWorseOnDriftingWindowTraces)
{
    const auto spec = model::makeCacheStudySpec();
    for (const double recency : {1.0, 0.5}) {
        const auto trace = driftTrace(spec, recency);
        const auto universe =
            workload::traceFootprint(spec, trace).universe_bytes;
        for (const double f : {0.1, 0.2, 0.4}) {
            const double plain =
                hitRate(spec, trace, universe, Policy::Lru, f);
            const double doorkeeper = hitRate(
                spec, trace, universe, Policy::Lru, f, Admission::TinyLfu);
            const double windowed = hitRate(
                spec, trace, universe, Policy::Lru, f, Admission::WTinyLfu);
            // Not worse than no admission (the lag is gone)...
            EXPECT_GE(windowed, plain - 0.03)
                << "recency=" << recency << " f=" << f;
            // ...and decisively better than the bare doorkeeper.
            EXPECT_GE(windowed, doorkeeper + 0.02)
                << "recency=" << recency << " f=" << f
                << " doorkeeper=" << doorkeeper << " windowed=" << windowed;
        }
    }
}

/** The window must not give back the doorkeeper's Zipf win either. */
TEST(WTinyLfuProperty, StaysCloseOnZipfTraces)
{
    const auto spec = model::makeCacheStudySpec();
    for (const std::uint64_t seed : {17ull, 99ull}) {
        const auto trace = zipfTrace(spec, 0.8, seed);
        const auto universe =
            workload::traceFootprint(spec, trace).universe_bytes;
        for (const auto policy : {Policy::Lru, Policy::Arc}) {
            for (const double f : kBudgets) {
                const double plain =
                    hitRate(spec, trace, universe, policy, f);
                const double windowed = hitRate(spec, trace, universe,
                                                policy, f,
                                                Admission::WTinyLfu);
                EXPECT_GE(windowed, plain - 0.03)
                    << cache::policyName(policy) << " f=" << f
                    << " seed=" << seed;
            }
        }
    }
}

TEST(TinyLfuProperty, FiltersOneHitWondersUnderPressure)
{
    const auto spec = model::makeCacheStudySpec();
    // The mixed trace's drifting window is full of first-touch rows: the
    // doorkeeper must actually veto some admissions (and the veto count
    // must be visible in the stats), while the unfiltered replay vetoes
    // nothing.
    const auto trace = driftTrace(spec, 0.5);
    const auto universe =
        workload::traceFootprint(spec, trace).universe_bytes;
    const auto cap =
        static_cast<std::int64_t>(0.1 * static_cast<double>(universe));
    const auto plain =
        cache::replayTrace(spec, trace, Policy::Lru, cap, 0.5);
    const auto filtered = cache::replayTrace(spec, trace, Policy::Lru, cap,
                                             0.5, Admission::TinyLfu);
    EXPECT_EQ(plain.total.admission_rejects, 0);
    EXPECT_GT(filtered.total.admission_rejects, 0);
    // Vetoed misses are still misses: counters stay conserved.
    EXPECT_EQ(filtered.total.accesses,
              filtered.total.hits + filtered.total.misses);
}

/** Budget + ghost-list invariants hold after EVERY access, not just at
 *  the end of a replay. */
TEST(CacheInvariants, BudgetAndGhostBoundsHoldThroughout)
{
    const auto spec = model::makeCacheStudySpec();
    const auto trace = driftTrace(spec, 0.5);
    const auto row_bytes = spec.tables[0].storedRowBytes();
    const std::int64_t cap = 64 * 1024;

    for (const auto policy :
         {Policy::Lru, Policy::Lfu, Policy::TwoQueue, Policy::Arc}) {
        auto c = cache::makeCache(policy, cap);
        std::int64_t max_used = 0, max_ghost = 0;
        for (const auto &r : trace.records()) {
            c->access(r.table_id, r.row, row_bytes);
            max_used = std::max(max_used, c->usedBytes());
            max_ghost = std::max(max_ghost, c->ghostBytes());
        }
        EXPECT_LE(max_used, cap) << cache::policyName(policy);
        if (policy == Policy::TwoQueue) {
            EXPECT_LE(max_ghost, cap / 2);
        }
        if (policy == Policy::Arc) {
            EXPECT_LE(max_ghost, 2 * cap);
        }
        // The stats identity holds for every policy.
        EXPECT_EQ(c->stats().accesses,
                  c->stats().hits + c->stats().misses);
    }
}

TEST(TinyLfuSketch, CountsSaturateAndHalvingDecaysThem)
{
    cache::TinyLfuConfig cfg;
    cfg.counters = 256;
    cfg.sample_period = 1024;
    cache::TinyLfuFilter sketch(cfg);

    // A never-seen key estimates 0 and is refused admission.
    EXPECT_EQ(sketch.estimate(7, 777), 0);
    EXPECT_FALSE(sketch.admit(7, 777, 128));

    // A hot key hammered far past the 4-bit range never estimates
    // above 15 (saturation), no matter the access count.
    for (int i = 0; i < 900; ++i) {
        sketch.onAccess(0, 42);
        ASSERT_LE(sketch.estimate(0, 42), 15);
    }
    EXPECT_EQ(sketch.estimate(0, 42), 15);
    EXPECT_TRUE(sketch.admit(0, 42, 128));

    // Stop touching the hot key; after >= 2 aging periods its estimate
    // has halved at least twice (15 -> 7 -> 3): the sketch tracks the
    // recent window, not all of history.
    const std::uint64_t agings_before = sketch.agings();
    for (int i = 0; i < 2200; ++i)
        sketch.onAccess(1, i);
    EXPECT_GE(sketch.agings(), agings_before + 2);
    EXPECT_LE(sketch.estimate(0, 42), 3);
}

TEST(AdmissionWrapper, DelegatesResidencyAndPolicy)
{
    auto cache = cache::makeCacheWithAdmission(Policy::TwoQueue, 4096,
                                               Admission::TinyLfu);
    EXPECT_EQ(cache->policy(), Policy::TwoQueue);
    EXPECT_EQ(cache->capacityBytes(), 4096);
    // Free space: even a first-touch row is admitted (no pressure).
    EXPECT_FALSE(cache->access(0, 1, 128));
    EXPECT_TRUE(cache->contains(0, 1));
    EXPECT_TRUE(cache->access(0, 1, 128));
    EXPECT_EQ(cache->stats().hits, 1);
    EXPECT_EQ(cache->stats().accesses, 2);
}

} // namespace
