/**
 * @file
 * Unit and property tests for the stats substrate: RNG determinism,
 * distribution moments, exact quantiles, histograms, running summaries.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "stats/distributions.h"
#include "stats/histogram.h"
#include "stats/quantile.h"
#include "stats/rng.h"
#include "stats/summary.h"
#include "stats/table_printer.h"

namespace {

using namespace dri::stats;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff = any_diff || a.uniform() != b.uniform();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, ForkIsIndependentOfParentDraws)
{
    Rng a(7);
    Rng fork_before = a.fork(1);
    a.uniform();
    a.uniform();
    Rng fork_after = a.fork(1);
    EXPECT_DOUBLE_EQ(fork_before.uniform(), fork_after.uniform());
}

TEST(Rng, ForkSaltsProduceDistinctStreams)
{
    Rng a(7);
    Rng f1 = a.fork(1), f2 = a.fork(2);
    EXPECT_NE(f1.uniform(), f2.uniform());
}

TEST(Rng, UniformIntBounds)
{
    Rng a(3);
    for (int i = 0; i < 1000; ++i) {
        const auto v = a.uniformInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, BernoulliExtremes)
{
    Rng a(5);
    EXPECT_FALSE(a.bernoulli(0.0));
    EXPECT_TRUE(a.bernoulli(1.0));
}

TEST(Lognormal, MedianIsMedian)
{
    Rng rng(11);
    LognormalSampler s(4.0, 0.5);
    std::vector<double> draws;
    for (int i = 0; i < 20000; ++i)
        draws.push_back(s.sample(rng));
    std::nth_element(draws.begin(), draws.begin() + 10000, draws.end());
    EXPECT_NEAR(draws[10000], 4.0, 0.15);
}

TEST(Lognormal, ZeroSigmaIsConstant)
{
    Rng rng(1);
    LognormalSampler s(3.0, 0.0);
    EXPECT_DOUBLE_EQ(s.sample(rng), 3.0);
}

TEST(Lognormal, AnalyticMean)
{
    LognormalSampler s(2.0, 0.8);
    EXPECT_NEAR(s.mean(), 2.0 * std::exp(0.5 * 0.64), 1e-12);
}

TEST(BoundedPareto, SamplesWithinBounds)
{
    Rng rng(13);
    BoundedParetoSampler s(1.1, 10.0, 1000.0);
    for (int i = 0; i < 5000; ++i) {
        const double v = s.sample(rng);
        EXPECT_GE(v, 10.0 * 0.999);
        EXPECT_LE(v, 1000.0 * 1.001);
    }
}

TEST(BoundedPareto, HeavyTailHasLargeP99OverP50)
{
    Rng rng(17);
    BoundedParetoSampler s(1.1, 50.0, 6000.0);
    QuantileEstimator q;
    for (int i = 0; i < 50000; ++i)
        q.add(s.sample(rng));
    EXPECT_GT(q.p99() / q.p50(), 5.0);
}

TEST(BoundedPareto, DegenerateRange)
{
    Rng rng(19);
    BoundedParetoSampler s(2.0, 5.0, 5.0);
    EXPECT_DOUBLE_EQ(s.sample(rng), 5.0);
}

TEST(Zipf, RankZeroMostPopular)
{
    Rng rng(23);
    ZipfSampler s(100, 1.2);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[s.sample(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[0], counts[50]);
}

TEST(Zipf, AllRanksReachable)
{
    Rng rng(29);
    ZipfSampler s(5, 0.5);
    std::vector<int> counts(5, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[s.sample(rng)];
    for (int c : counts)
        EXPECT_GT(c, 0);
}

TEST(Poisson, MeanGapMatchesRate)
{
    Rng rng(31);
    PoissonProcess p(25.0);
    double total = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        total += p.nextGapSeconds(rng);
    EXPECT_NEAR(total / n, 1.0 / 25.0, 0.002);
}

TEST(Quantile, ExactAgainstSortedSamples)
{
    QuantileEstimator q;
    for (int i = 100; i >= 1; --i)
        q.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(q.min(), 1.0);
    EXPECT_DOUBLE_EQ(q.max(), 100.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.5), 50.5);
    EXPECT_NEAR(q.p99(), 99.01, 1e-9);
}

TEST(Quantile, SingleSample)
{
    QuantileEstimator q;
    q.add(7.0);
    EXPECT_DOUBLE_EQ(q.p50(), 7.0);
    EXPECT_DOUBLE_EQ(q.p99(), 7.0);
}

TEST(Quantile, MeanAndSum)
{
    QuantileEstimator q;
    q.addAll({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(q.mean(), 2.5);
    EXPECT_DOUBLE_EQ(q.sum(), 10.0);
}

TEST(Quantile, InterleavedAddAndQuery)
{
    QuantileEstimator q;
    q.add(3.0);
    q.add(1.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
    q.add(2.0);
    EXPECT_DOUBLE_EQ(q.p50(), 2.0);
}

TEST(Quantile, ClearResets)
{
    QuantileEstimator q;
    q.add(1.0);
    q.clear();
    EXPECT_TRUE(q.empty());
}

/**
 * Merged per-shard estimators answer every query exactly like one
 * estimator fed the whole stream — the property that lets fleet
 * segments aggregate tails without centralizing samples.
 */
TEST(Quantile, MergedShardsMatchWholeStream)
{
    Rng rng(0x5eed);
    QuantileEstimator whole;
    QuantileEstimator shards[4];
    for (int i = 0; i < 4000; ++i) {
        const double v = rng.gaussian(10.0, 5.0);
        whole.add(v);
        shards[i % 4].add(v);
    }
    QuantileEstimator merged;
    for (const auto &s : shards)
        merged.merge(s);
    ASSERT_EQ(merged.count(), whole.count());
    for (double p = 0.0; p <= 1.0; p += 0.01)
        EXPECT_DOUBLE_EQ(merged.quantile(p), whole.quantile(p)) << p;
    EXPECT_DOUBLE_EQ(merged.p999(), whole.p999());
    // Both buffers are sorted after the queries above, so the sums run
    // in the same order and must agree to the bit.
    EXPECT_DOUBLE_EQ(merged.sum(), whole.sum());
}

TEST(Quantile, MergeEdgeCases)
{
    QuantileEstimator a, empty;
    a.addAll({3.0, 1.0, 2.0});
    // Merging an empty estimator changes nothing.
    a.merge(empty);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.p50(), 2.0);
    // Merging INTO an empty estimator adopts the samples.
    empty.merge(a);
    EXPECT_EQ(empty.count(), 3u);
    EXPECT_DOUBLE_EQ(empty.p50(), 2.0);
    // Self-merge doubles the stream without corrupting it.
    a.merge(a);
    EXPECT_EQ(a.count(), 6u);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
    EXPECT_DOUBLE_EQ(a.p50(), 2.0);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
}

/** Property: quantiles are monotone in q. */
class QuantileMonotoneTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(QuantileMonotoneTest, MonotoneInQ)
{
    Rng rng(GetParam());
    QuantileEstimator q;
    for (int i = 0; i < 500; ++i)
        q.add(rng.gaussian(10.0, 5.0));
    double prev = q.quantile(0.0);
    for (double p = 0.05; p <= 1.0; p += 0.05) {
        const double v = q.quantile(p);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotoneTest,
                         ::testing::Values(1, 2, 3, 42, 99, 123456));

TEST(Histogram, CountsAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-5.0);  // clamps to first bin
    h.add(0.5);
    h.add(9.5);
    h.add(50.0); // clamps to last bin
    EXPECT_EQ(h.totalCount(), 4u);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(9), 2u);
}

TEST(Histogram, FractionsSumToOne)
{
    Histogram h(0.0, 1.0, 7);
    Rng rng(37);
    for (int i = 0; i < 1000; ++i)
        h.add(rng.uniform());
    double total = 0.0;
    for (std::size_t b = 0; b < h.binCount(); ++b)
        total += h.fraction(b);
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_NEAR(h.cumulativeFraction(h.binCount() - 1), 1.0, 1e-12);
}

TEST(Histogram, LogScaleBins)
{
    Histogram h(1.0, 1000.0, 3, Histogram::Scale::Log);
    EXPECT_NEAR(h.binLo(0), 1.0, 1e-9);
    EXPECT_NEAR(h.binLo(1), 10.0, 1e-6);
    EXPECT_NEAR(h.binLo(2), 100.0, 1e-4);
    h.add(5.0);
    EXPECT_EQ(h.count(0), 1u);
    h.add(500.0);
    EXPECT_EQ(h.count(2), 1u);
}

TEST(Histogram, RenderContainsCounts)
{
    Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    const std::string out = h.render();
    EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(Summary, WelfordMatchesDirect)
{
    RunningSummary s;
    Rng rng(41);
    std::vector<double> vals;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.gaussian(5.0, 2.0);
        vals.push_back(v);
        s.add(v);
    }
    double mean = 0.0;
    for (double v : vals)
        mean += v;
    mean /= vals.size();
    double var = 0.0;
    for (double v : vals)
        var += (v - mean) * (v - mean);
    var /= vals.size();
    EXPECT_NEAR(s.mean(), mean, 1e-9);
    EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(Summary, MergeEqualsSequential)
{
    Rng rng(43);
    RunningSummary all, a, b;
    for (int i = 0; i < 500; ++i) {
        const double v = rng.uniform(0.0, 100.0);
        all.add(v);
        (i % 2 == 0 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty)
{
    RunningSummary a, b;
    a.add(1.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Quantile, P999TracksExtremeTail)
{
    QuantileEstimator q;
    for (int i = 1; i <= 10000; ++i)
        q.add(static_cast<double>(i));
    EXPECT_NEAR(q.p999(), 9991.0, 1.0);
    EXPECT_GT(q.p999(), q.p99());
    EXPECT_GT(q.p99(), q.p90());
}

TEST(Summary, UtilizationFraction)
{
    // 8 workers busy half the time over 1000 ns: 4000 unit-ns busy.
    EXPECT_DOUBLE_EQ(utilizationFraction(4000.0, 8, 1000.0), 0.5);
    EXPECT_DOUBLE_EQ(utilizationFraction(0.0, 8, 1000.0), 0.0);
    // Clamped: rounding can push the integral past capacity x elapsed.
    EXPECT_DOUBLE_EQ(utilizationFraction(9000.0, 8, 1000.0), 1.0);
    // Degenerate inputs don't divide by zero.
    EXPECT_DOUBLE_EQ(utilizationFraction(100.0, 0, 1000.0), 0.0);
    EXPECT_DOUBLE_EQ(utilizationFraction(100.0, 8, 0.0), 0.0);
}

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t({"a", "bb"});
    t.addRow({"xxxx", "y"});
    const std::string out = t.render();
    EXPECT_NE(out.find("a     bb"), std::string::npos);
    EXPECT_NE(out.find("xxxx  y"), std::string::npos);
}

TEST(TablePrinter, NumberFormatting)
{
    EXPECT_EQ(TablePrinter::num(1.23456, 2), "1.23");
    EXPECT_EQ(TablePrinter::pct(0.073, 1), "+7.3%");
    EXPECT_EQ(TablePrinter::pct(-0.01, 1), "-1.0%");
}

// ---------------------------------------------------------------------------
// QuantileEstimator rolling mode.
// ---------------------------------------------------------------------------

/**
 * Self-consistency: a rolling estimator over a stream answers exactly
 * what a fresh estimator fed only the last `capacity` samples would —
 * every query, at every point in the stream.
 */
TEST(Quantile, RollingWindowMatchesFreshEstimatorOverTheTail)
{
    Rng rng(0xabcdef);
    QuantileEstimator rolling(/*rolling_capacity=*/100);
    EXPECT_EQ(rolling.rollingCapacity(), 100u);
    std::vector<double> all;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.gaussian(50.0, 20.0);
        all.push_back(v);
        rolling.add(v);
        if ((i + 1) % 137 != 0 && i != 999)
            continue;
        QuantileEstimator fresh;
        const std::size_t n = std::min<std::size_t>(100, all.size());
        for (std::size_t j = all.size() - n; j < all.size(); ++j)
            fresh.add(all[j]);
        ASSERT_EQ(rolling.count(), fresh.count()) << i;
        for (const double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
            EXPECT_DOUBLE_EQ(rolling.quantile(p), fresh.quantile(p))
                << i << " q=" << p;
        // Same live samples in the same arrival order: bitwise-equal
        // running sums, not just close ones.
        EXPECT_DOUBLE_EQ(rolling.sum(), fresh.sum()) << i;
        EXPECT_DOUBLE_EQ(rolling.mean(), fresh.mean()) << i;
    }
}

TEST(Quantile, SetRollingCapacityTrimsOldestImmediately)
{
    QuantileEstimator q;
    q.addAll({1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
    q.setRollingCapacity(3);
    EXPECT_EQ(q.count(), 3u);
    EXPECT_DOUBLE_EQ(q.min(), 4.0);
    EXPECT_DOUBLE_EQ(q.p50(), 5.0);
    // Growing the capacity does not resurrect evicted samples.
    q.setRollingCapacity(10);
    EXPECT_EQ(q.count(), 3u);
    q.add(7.0);
    EXPECT_EQ(q.count(), 4u);
    EXPECT_DOUBLE_EQ(q.min(), 4.0);
}

TEST(Quantile, RollingCapacityZeroRestoresUnboundedRetention)
{
    QuantileEstimator q(2);
    q.addAll({1.0, 2.0, 3.0});
    EXPECT_EQ(q.count(), 2u);
    q.setRollingCapacity(0);
    for (double v = 4.0; v <= 20.0; v += 1.0)
        q.add(v);
    EXPECT_EQ(q.count(), 19u);
    // Samples evicted while rolling stay gone.
    EXPECT_DOUBLE_EQ(q.min(), 2.0);
}

TEST(Quantile, RollingClearEmptiesButKeepsTheCapacity)
{
    QuantileEstimator q(3);
    q.addAll({1.0, 2.0, 3.0, 4.0});
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.rollingCapacity(), 3u);
    q.addAll({5.0, 6.0, 7.0, 8.0});
    EXPECT_EQ(q.count(), 3u);
    EXPECT_DOUBLE_EQ(q.min(), 6.0);
}

TEST(Quantile, MergeAbsorbsOnlyTheLiveWindow)
{
    QuantileEstimator other(2);
    other.addAll({1.0, 2.0, 3.0, 4.0, 5.0}); // live window: {4, 5}
    QuantileEstimator a;
    a.add(10.0);
    a.merge(other);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.min(), 4.0);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
    // Merging INTO a rolling estimator evicts overflow like add().
    QuantileEstimator windowed(2);
    windowed.merge(a);
    EXPECT_EQ(windowed.count(), 2u);
}

} // namespace
