/**
 * @file
 * Tests for the cross-layer tracing framework: span semantics, CPU/wall
 * classification, the paper's network-latency attribution identity
 * (Section IV-B), collection, and ASCII rendering.
 */
#include <gtest/gtest.h>

#include "trace/collector.h"
#include "trace/render.h"
#include "trace/span.h"

namespace {

using namespace dri::trace;

TEST(Span, DurationAndNames)
{
    Span s;
    s.begin = 100;
    s.end = 250;
    EXPECT_EQ(s.duration(), 150);
    EXPECT_EQ(layerName(Layer::Network), "Network Latency");
    EXPECT_EQ(layerName(Layer::EmbeddedWait), "Embedded Portion");
}

TEST(Span, CpuClassification)
{
    EXPECT_TRUE(layerIsCpu(Layer::DenseOp));
    EXPECT_TRUE(layerIsCpu(Layer::SparseOp));
    EXPECT_TRUE(layerIsCpu(Layer::RequestSerDe));
    EXPECT_FALSE(layerIsCpu(Layer::Network));
    EXPECT_FALSE(layerIsCpu(Layer::EmbeddedWait));
    EXPECT_FALSE(layerIsCpu(Layer::QueueWait));
}

TEST(RpcRecord, NetworkLatencyIdentity)
{
    // Network latency = outstanding at main shard minus remote E2E —
    // exactly the paper's clock-skew-free measurement.
    RpcRecord rec;
    rec.dispatched = 1000;
    rec.completed = 2000;
    rec.remote_queue_ns = 50;
    rec.remote_serde_ns = 100;
    rec.remote_service_ns = 150;
    rec.remote_net_overhead_ns = 100;
    rec.remote_sparse_op_ns = 200;
    EXPECT_EQ(rec.outstanding(), 1000);
    EXPECT_EQ(rec.remoteE2e(), 600);
    EXPECT_EQ(rec.networkLatency(), 400);
}

TEST(Collector, RetainsSpansWhenAsked)
{
    TraceCollector keep(true);
    TraceCollector drop(false);
    Span s;
    s.request_id = 1;
    keep.addSpan(s);
    drop.addSpan(s);
    EXPECT_EQ(keep.spans().size(), 1u);
    EXPECT_EQ(drop.spans().size(), 0u);
    EXPECT_EQ(keep.spanCount(), 1u);
    EXPECT_EQ(drop.spanCount(), 1u); // counted even when dropped
}

TEST(Collector, FiltersByRequest)
{
    TraceCollector c(true);
    for (std::uint64_t id : {1u, 2u, 1u, 3u, 1u}) {
        Span s;
        s.request_id = id;
        s.begin = static_cast<dri::sim::SimTime>(id * 10);
        s.end = s.begin + 1;
        c.addSpan(s);
    }
    EXPECT_EQ(c.spansForRequest(1).size(), 3u);
    EXPECT_EQ(c.spansForRequest(9).size(), 0u);

    RpcRecord r;
    r.request_id = 2;
    c.addRpc(r);
    EXPECT_EQ(c.rpcsForRequest(2).size(), 1u);
    EXPECT_EQ(c.rpcsForRequest(1).size(), 0u);
}

TEST(Collector, SpansSortedByBeginTime)
{
    TraceCollector c(true);
    for (int t : {30, 10, 20}) {
        Span s;
        s.request_id = 7;
        s.begin = t;
        s.end = t + 5;
        c.addSpan(s);
    }
    const auto spans = c.spansForRequest(7);
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0].begin, 10);
    EXPECT_EQ(spans[2].begin, 30);
}

TEST(Collector, ClearResets)
{
    TraceCollector c(true);
    c.addSpan(Span{});
    c.addRpc(RpcRecord{});
    c.clear();
    EXPECT_EQ(c.spans().size(), 0u);
    EXPECT_EQ(c.rpcs().size(), 0u);
    EXPECT_EQ(c.spanCount(), 0u);
}

TEST(Render, ProducesTimelineWithShards)
{
    TraceCollector c(true);
    Span main_span;
    main_span.request_id = 42;
    main_span.shard_id = kMainShard;
    main_span.net_id = 0;
    main_span.batch_id = 0;
    main_span.layer = Layer::DenseOp;
    main_span.begin = 0;
    main_span.end = 1000;
    c.addSpan(main_span);

    Span remote;
    remote.request_id = 42;
    remote.shard_id = 2;
    remote.net_id = 0;
    remote.batch_id = 0;
    remote.layer = Layer::SparseOp;
    remote.begin = 200;
    remote.end = 600;
    c.addSpan(remote);

    const std::string out = renderRequestTrace(c, 42, 60);
    EXPECT_NE(out.find("main shard"), std::string::npos);
    EXPECT_NE(out.find("sparse shard 2"), std::string::npos);
    EXPECT_NE(out.find("D"), std::string::npos);
    EXPECT_NE(out.find("S"), std::string::npos);
}

TEST(Render, EmptyRequestExplains)
{
    TraceCollector c(true);
    const std::string out = renderRequestTrace(c, 1);
    EXPECT_NE(out.find("no spans"), std::string::npos);
}

} // namespace
