/**
 * @file
 * Tests for the scheduling subsystem (src/sched): dynamic batching,
 * admission control / load shedding, replica load-balancing properties,
 * and the SLO-driven capacity search.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "core/analysis.h"
#include "core/serving.h"
#include "core/strategies.h"
#include "model/generators.h"
#include "sched/batcher.h"
#include "sched/capacity_search.h"
#include "sched/provision_loop.h"
#include "workload/request_generator.h"

namespace {

using namespace dri;

model::ModelSpec
testSpec()
{
    return model::makeDrm2();
}

std::vector<workload::Request>
testRequests(const model::ModelSpec &spec, std::size_t n)
{
    workload::GeneratorConfig gc;
    gc.seed = 0xbeef;
    workload::RequestGenerator gen(spec, gc);
    return gen.generate(n);
}

core::ShardingPlan
testPlan(const model::ModelSpec &spec)
{
    workload::GeneratorConfig gc;
    gc.seed = 0xbeef;
    workload::RequestGenerator gen(spec, gc);
    return core::makeLoadBalanced(spec, 4, gen.estimatePoolingFactors(500));
}

/** The shared overload-study deployment (sparse tier is the bottleneck). */
core::ServingConfig
sparseBoundConfig(int replicas, rpc::LoadBalancePolicy policy,
                  std::uint64_t seed = 0xd15c0)
{
    return sched::sparseBoundStudyConfig(policy, replicas, seed);
}

TEST(MergeRequests, SumsItemsAndLookups)
{
    const auto spec = testSpec();
    const auto reqs = testRequests(spec, 3);
    const auto merged = workload::mergeRequests(reqs);
    EXPECT_EQ(merged.id, reqs[0].id);
    EXPECT_EQ(merged.items, reqs[0].items + reqs[1].items + reqs[2].items);
    EXPECT_EQ(merged.totalLookups(), reqs[0].totalLookups() +
                                         reqs[1].totalLookups() +
                                         reqs[2].totalLookups());
    for (std::size_t t = 0; t < merged.table_lookups.size(); ++t)
        EXPECT_EQ(merged.table_lookups[t], reqs[0].table_lookups[t] +
                                               reqs[1].table_lookups[t] +
                                               reqs[2].table_lookups[t]);
}

TEST(DynamicBatcher, ExpandsMergedStatsPerOriginalRequest)
{
    const auto spec = testSpec();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 20);

    core::ServingConfig cfg;
    cfg.seed = 0xd15c0;
    core::ServingSimulation sim(spec, plan, cfg);

    sched::BatcherConfig bc;
    bc.policy = sched::BatchPolicy::TimeoutCapped;
    bc.max_queue_delay_ns = 2 * sim::kMillisecond;
    const auto stats = sched::runBatchedOpenLoop(sim, requests, 2000.0, bc);

    ASSERT_EQ(stats.size(), requests.size());
    // Every original request id appears exactly once, with its own items.
    std::vector<std::uint64_t> ids;
    for (const auto &s : stats) {
        ids.push_back(s.id);
        const auto &orig = requests[s.id];
        EXPECT_EQ(s.items, orig.items);
        EXPECT_GE(s.batch_wait, 0);
        EXPECT_GE(s.coalesced, 1);
        EXPECT_GE(s.e2e, s.batch_wait);
    }
    std::sort(ids.begin(), ids.end());
    for (std::size_t i = 0; i < ids.size(); ++i)
        EXPECT_EQ(ids[i], i);
}

TEST(DynamicBatcher, SizeCappedCoalescesAtHighRate)
{
    const auto spec = testSpec();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 60);

    core::ServingConfig cfg;
    cfg.seed = 0xd15c0;
    core::ServingSimulation sim(spec, plan, cfg);

    sched::DynamicBatcher batcher(sim, [] {
        sched::BatcherConfig bc;
        bc.policy = sched::BatchPolicy::SizeCapped;
        bc.max_batch_items = 512; // ~5 mean DRM2 requests
        return bc;
    }());
    for (const auto &req : requests)
        batcher.offer(req); // all at t=0: pure size-triggered flushes
    batcher.flush();
    sim.engine().run();

    EXPECT_GT(batcher.meanCoalesced(), 1.5);
    EXPECT_LT(batcher.batchesInjected(), requests.size());
    EXPECT_EQ(batcher.takeStats().size(), requests.size());
}

TEST(DynamicBatcher, AdaptiveFlushesImmediatelyAtLowRate)
{
    const auto spec = testSpec();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 40);

    // At 20 QPS the batch cannot plausibly fill within the delay bound,
    // so adaptive degenerates to no batching (typically 1 request per
    // injection) while timeout-capped holds every batch the full delay.
    sched::BatcherConfig adaptive;
    adaptive.policy = sched::BatchPolicy::Adaptive;
    adaptive.max_batch_items = 4096;
    adaptive.max_queue_delay_ns = 20 * sim::kMillisecond;
    sched::BatcherConfig timeout = adaptive;
    timeout.policy = sched::BatchPolicy::TimeoutCapped;

    core::ServingConfig cfg;
    cfg.seed = 0xd15c0;
    core::ServingSimulation sim_a(spec, plan, cfg);
    const auto stats_a =
        sched::runBatchedOpenLoop(sim_a, requests, 20.0, adaptive);
    core::ServingSimulation sim_t(spec, plan, cfg);
    const auto stats_t =
        sched::runBatchedOpenLoop(sim_t, requests, 20.0, timeout);

    const auto qa = core::latencyQuantiles(stats_a);
    const auto qt = core::latencyQuantiles(stats_t);
    EXPECT_LT(qa.p50_ms, qt.p50_ms);

    // Once the rate estimate exists, adaptive flushes immediately; only
    // the bootstrap batch may wait the full deadline.
    std::vector<sim::Duration> waits;
    for (const auto &s : stats_a)
        waits.push_back(s.batch_wait);
    std::sort(waits.begin(), waits.end());
    EXPECT_LT(waits[waits.size() / 2], sim::kMillisecond);
}

TEST(Sched, BatchedReplayIsDeterministic)
{
    const auto spec = testSpec();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 150);

    const auto run = [&] {
        core::ServingSimulation sim(
            spec, plan,
            sparseBoundConfig(2, rpc::LoadBalancePolicy::PowerOfTwoChoices));
        sched::BatcherConfig bc;
        bc.policy = sched::BatchPolicy::Adaptive;
        return sched::runBatchedOpenLoop(sim, requests, 500.0, bc);
    };
    const auto a = run();
    const auto b = run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].e2e, b[i].e2e);
        EXPECT_EQ(a[i].batch_wait, b[i].batch_wait);
        EXPECT_EQ(a[i].coalesced, b[i].coalesced);
    }
}

TEST(Admission, QueueCapShedsUnderOverload)
{
    const auto spec = testSpec();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 300);

    core::ServingConfig cfg;
    cfg.seed = 0xd15c0;
    cfg.admission.max_main_queue = 4;
    core::ServingSimulation sim(spec, plan, cfg);
    // Far past saturation for an 8-worker main shard.
    const auto stats = sim.replayOpenLoop(requests, 2000.0);

    ASSERT_EQ(stats.size(), requests.size());
    const double rate = core::shedRate(stats);
    EXPECT_GT(rate, 0.05);
    EXPECT_LT(rate, 1.0);
    for (const auto &s : stats) {
        if (s.shed()) {
            EXPECT_EQ(s.shed_reason, core::ShedReason::QueueFull);
        }
    }

    // Quantiles must come from served requests only: the shed entries'
    // near-zero residence times would otherwise deflate the percentiles.
    const auto q = core::latencyQuantiles(stats);
    std::size_t served_below = 0, served = 0;
    for (const auto &s : stats)
        if (!s.shed()) {
            ++served;
            if (sim::toMillis(s.e2e) <= q.p50_ms)
                ++served_below;
        }
    ASSERT_GT(served, 0u);
    EXPECT_NEAR(static_cast<double>(served_below) /
                    static_cast<double>(served),
                0.5, 0.05);
}

TEST(Admission, DeadlineShedDropsOnlyLateRequests)
{
    const auto spec = testSpec();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 300);

    core::ServingConfig cfg;
    cfg.seed = 0xd15c0;
    cfg.admission.deadline_ns = 5 * sim::kMillisecond;
    core::ServingSimulation sim(spec, plan, cfg);
    const auto stats = sim.replayOpenLoop(requests, 2000.0);

    const double rate = core::shedRate(stats);
    EXPECT_GT(rate, 0.0);
    for (const auto &s : stats) {
        if (s.shed()) {
            EXPECT_EQ(s.shed_reason, core::ShedReason::DeadlineExceeded);
            EXPECT_GT(s.e2e, 5 * sim::kMillisecond);
        }
    }

    // No admission control: same load, nothing shed.
    core::ServingConfig open = cfg;
    open.admission = core::AdmissionConfig{};
    core::ServingSimulation sim2(spec, plan, open);
    EXPECT_EQ(core::shedRate(sim2.replayOpenLoop(requests, 2000.0)), 0.0);
}

TEST(Admission, DeadlineSeesBatcherWait)
{
    // A size-capped batcher that only flushes at end-of-stream makes
    // every rider wait far past the deadline *inside the batcher*. The
    // injection backdates arrival to the oldest rider, so deadline-aware
    // shedding must fire even though the main-shard queue wait is ~0.
    const auto spec = testSpec();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 50);

    core::ServingConfig cfg;
    cfg.seed = 0xd15c0;
    cfg.admission.deadline_ns = 30 * sim::kMillisecond;
    core::ServingSimulation sim(spec, plan, cfg);

    sched::BatcherConfig bc;
    bc.policy = sched::BatchPolicy::SizeCapped;
    bc.max_batch_items = 1 << 30; // never size-triggered
    bc.max_batch_requests = 0;
    // 100 QPS over 50 requests: the stream spans ~500 ms, so the oldest
    // rider's age dwarfs the 30 ms deadline at the end-of-stream flush.
    const auto stats = sched::runBatchedOpenLoop(sim, requests, 100.0, bc);

    ASSERT_EQ(stats.size(), requests.size());
    EXPECT_GT(core::shedRate(stats), 0.9);
    for (const auto &s : stats) {
        if (s.shed()) {
            EXPECT_EQ(s.shed_reason, core::ShedReason::DeadlineExceeded);
        }
    }
}

/**
 * Property: with live queue-depth information, power-of-two-choices never
 * builds a deeper worst-case replica backlog than blind round-robin on
 * the same heavy-tailed request stream, across seeds and rates around
 * the sparse tier's saturation point.
 */
TEST(LoadBalanceProperty, PowerOfTwoNeverExceedsRoundRobinMaxQueue)
{
    const auto spec = testSpec();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 400);

    const auto max_peak = [&](rpc::LoadBalancePolicy policy,
                              std::uint64_t seed, double qps) {
        core::ServingSimulation sim(spec, plan,
                                    sparseBoundConfig(3, policy, seed));
        sim.replayOpenLoop(requests, qps);
        const auto peaks = sim.serverPeakQueue();
        return *std::max_element(peaks.begin(), peaks.end());
    };

    for (const std::uint64_t seed : {0xd15c0ull, 0x5eedull, 0xfaceull})
        for (const double qps : {500.0, 800.0}) {
            const auto rr =
                max_peak(rpc::LoadBalancePolicy::RoundRobin, seed, qps);
            const auto p2c = max_peak(
                rpc::LoadBalancePolicy::PowerOfTwoChoices, seed, qps);
            EXPECT_LE(p2c, rr) << "seed=" << seed << " qps=" << qps;
        }
}

TEST(LoadBalance, LeastOutstandingImprovesTailUnderOverload)
{
    const auto spec = testSpec();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 400);

    const auto p99 = [&](rpc::LoadBalancePolicy policy) {
        core::ServingSimulation sim(spec, plan,
                                    sparseBoundConfig(3, policy));
        return core::latencyQuantiles(sim.replayOpenLoop(requests, 800.0))
            .p99_ms;
    };
    EXPECT_LT(p99(rpc::LoadBalancePolicy::LeastOutstanding),
              p99(rpc::LoadBalancePolicy::RoundRobin));
}

TEST(CapacitySearch, FindsFeasibleBoundary)
{
    const auto spec = testSpec();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 300);

    sched::CapacitySearchConfig sc;
    sc.slo.p99_ms = 60.0;
    sc.qps_lo = 50.0;
    sc.qps_hi = 2000.0;
    sc.grid_step = 1.15;

    sched::CapacitySearch search(
        spec, plan,
        sparseBoundConfig(2, rpc::LoadBalancePolicy::LeastOutstanding),
        sc);
    const auto result = search.run(requests);
    ASSERT_GT(result.max_qps, 0.0);
    ASSERT_LT(result.max_qps, 2000.0);
    // The returned rate was actually probed feasible, and some higher
    // probe was infeasible.
    bool found = false, infeasible_above = false;
    for (const auto &p : result.probes) {
        if (p.qps == result.max_qps && p.feasible)
            found = true;
        if (p.qps > result.max_qps && !p.feasible)
            infeasible_above = true;
    }
    EXPECT_TRUE(found);
    EXPECT_TRUE(infeasible_above);
}

TEST(DynamicBatcher, QueueAwareFlushesImmediatelyWhenMainIdle)
{
    const auto spec = testSpec();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 40);

    // At 20 QPS the main pool is idle when each request arrives, so the
    // queue-aware policy must behave like no batching while
    // timeout-capped holds every batch the full delay bound.
    sched::BatcherConfig qaware;
    qaware.policy = sched::BatchPolicy::QueueAware;
    qaware.max_batch_items = 4096;
    qaware.max_queue_delay_ns = 20 * sim::kMillisecond;
    sched::BatcherConfig timeout = qaware;
    timeout.policy = sched::BatchPolicy::TimeoutCapped;

    core::ServingConfig cfg;
    cfg.seed = 0xd15c0;
    core::ServingSimulation sim_q(spec, plan, cfg);
    const auto stats_q =
        sched::runBatchedOpenLoop(sim_q, requests, 20.0, qaware);
    core::ServingSimulation sim_t(spec, plan, cfg);
    const auto stats_t =
        sched::runBatchedOpenLoop(sim_t, requests, 20.0, timeout);

    EXPECT_LT(core::latencyQuantiles(stats_q).p50_ms,
              core::latencyQuantiles(stats_t).p50_ms);
    for (const auto &s : stats_q)
        EXPECT_LT(s.batch_wait, sim::kMillisecond);
}

TEST(DynamicBatcher, QueueAwareCoalescesUnderBacklog)
{
    const auto spec = testSpec();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 200);

    // Past the main pool's knee a backlog persists, so the queue-aware
    // policy holds arrivals and batches form "for free" while the
    // adaptive policy (arrival-rate driven, large cap) barely coalesces.
    const auto coalesced = [&](sched::BatchPolicy policy) {
        sched::BatcherConfig bc;
        bc.policy = policy;
        bc.max_batch_items = 1024;
        bc.max_queue_delay_ns = 10 * sim::kMillisecond;
        core::ServingConfig cfg;
        cfg.seed = 0xd15c0;
        core::ServingSimulation sim(spec, plan, cfg);
        const auto stats =
            sched::runBatchedOpenLoop(sim, requests, 400.0, bc);
        double batches = 0.0;
        for (const auto &s : stats)
            batches += 1.0 / static_cast<double>(s.coalesced);
        return static_cast<double>(stats.size()) / batches;
    };
    EXPECT_GT(coalesced(sched::BatchPolicy::QueueAware),
              coalesced(sched::BatchPolicy::Adaptive));
    EXPECT_GT(coalesced(sched::BatchPolicy::QueueAware), 1.2);
}

TEST(Serving, HeterogeneousReplicaVectorShapesTheDeployment)
{
    const auto spec = testSpec();
    const auto plan = testPlan(spec); // 4 shards

    core::ServingConfig cfg;
    cfg.seed = 0xd15c0;
    cfg.sparse_replicas = 2; // fallback for unlisted shards
    cfg.sparse_replicas_per_shard = {3, 1, 2, 4};
    core::ServingSimulation sim(spec, plan, cfg);

    EXPECT_EQ(sim.serverCount(), 10u);
    const auto shards = sim.serverShards();
    std::vector<int> per_shard(4, 0);
    for (int s : shards)
        ++per_shard[static_cast<std::size_t>(s)];
    EXPECT_EQ(per_shard, (std::vector<int>{3, 1, 2, 4}));
}

TEST(ProvisionLoop, EvenReplicaSplitSpreadsTheBudget)
{
    EXPECT_EQ(sched::evenReplicaSplit(8, 4), (std::vector<int>{2, 2, 2, 2}));
    EXPECT_EQ(sched::evenReplicaSplit(10, 4),
              (std::vector<int>{3, 3, 2, 2}));
    EXPECT_EQ(sched::evenReplicaSplit(2, 4), (std::vector<int>{1, 1, 1, 1}));
}

TEST(ProvisionLoop, ConvergesToLoadProportionalFixedPoint)
{
    const auto spec = testSpec();
    // Capacity-balanced: equal bytes, skewed compute — the plan where
    // per-shard replica counts should differ.
    const auto plan = core::makeCapacityBalanced(spec, 4);
    const auto requests = testRequests(spec, 300);

    sched::ProvisionLoopConfig pc;
    pc.qps = 600.0;
    pc.target_utilization = 0.6;
    sched::ProvisionLoop loop(
        spec, plan,
        sparseBoundConfig(2, rpc::LoadBalancePolicy::LeastOutstanding),
        pc);
    const auto result = loop.run(requests);

    ASSERT_TRUE(result.converged);
    ASSERT_EQ(result.replicas.size(), 4u);
    // The fixed point reproduces itself under one more evaluation.
    const auto again = loop.evaluate(result.replicas, requests);
    EXPECT_EQ(again.provisioned, result.replicas);
    // Demand measurements are per-shard and positive.
    for (double c : result.trace.back().shard_cpu_ms_per_request)
        EXPECT_GT(c, 0.0);

    // At equal budget, load-proportional replication must not lose to
    // the even split on served P99.
    const auto even = sched::evenReplicaSplit(result.totalReplicas(),
                                              plan.numShards());
    const auto baseline = loop.evaluate(even, requests);
    EXPECT_LE(result.p99_ms, baseline.p99_ms);
}

TEST(CapacitySearch, ProbeReportsHedgeColumns)
{
    const auto spec = testSpec();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 200);

    sched::CapacitySearchConfig sc;
    sc.slo.p99_ms = 200.0;
    sched::CapacitySearch search(
        spec, plan,
        sched::hedgeStudyConfig(rpc::LoadBalancePolicy::LeastOutstanding,
                                3, /*hedged=*/true),
        sc);
    const auto probe = search.probe(1500.0, requests);
    EXPECT_GT(probe.hedge_rate, 0.0);
    EXPECT_LE(probe.hedge_rate, 0.10 + 1e-9);
    EXPECT_GE(probe.hedge_wasted_frac, 0.0);

    sched::CapacitySearch unhedged(
        spec, plan,
        sched::hedgeStudyConfig(rpc::LoadBalancePolicy::LeastOutstanding,
                                3, /*hedged=*/false),
        sc);
    EXPECT_EQ(unhedged.probe(1500.0, requests).hedge_rate, 0.0);
}

TEST(CapacitySearch, CapacityMonotoneInReplicas)
{
    const auto spec = testSpec();
    const auto plan = testPlan(spec);
    const auto requests = testRequests(spec, 300);

    sched::CapacitySearchConfig sc;
    sc.slo.p99_ms = 60.0;
    sc.qps_lo = 50.0;
    sc.qps_hi = 2000.0;
    sc.grid_step = 1.15;

    double prev = 0.0;
    for (const int replicas : {1, 2, 3}) {
        sched::CapacitySearch search(
            spec, plan,
            sparseBoundConfig(replicas,
                              rpc::LoadBalancePolicy::LeastOutstanding),
            sc);
        const double cap = search.run(requests).max_qps;
        EXPECT_GE(cap, prev) << "replicas=" << replicas;
        prev = cap;
    }
    EXPECT_GT(prev, 0.0);
}

} // namespace
