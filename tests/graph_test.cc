/**
 * @file
 * Tests for the operator-graph substrate: workspace blob semantics,
 * operator execution, SplitIndices partition properties, net construction,
 * the sequential executor, and the micro cost model.
 */
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "graph/cost_model.h"
#include "graph/executor.h"
#include "graph/net.h"
#include "graph/operators.h"
#include "graph/workspace.h"

namespace {

using namespace dri::graph;
using dri::tensor::Tensor;
using dri::tensor::VirtualEmbeddingTable;

TEST(Workspace, TensorBlobRoundTrip)
{
    Workspace ws;
    EXPECT_FALSE(ws.has("x"));
    ws.createTensor("x") = Tensor::fromVector({1, 2, 3});
    EXPECT_TRUE(ws.has("x"));
    EXPECT_EQ(ws.tensorBlob("x").numel(), 3);
    ws.remove("x");
    EXPECT_FALSE(ws.has("x"));
}

TEST(Workspace, IndexListBlob)
{
    Workspace ws;
    auto &ids = ws.createIndexList("ids");
    ids.indices = {1, 2, 3};
    ids.lengths = {2, 1};
    EXPECT_EQ(ws.indexListBlob("ids").totalLookups(), 3);
    EXPECT_EQ(ws.indexListBlob("ids").segments(), 2);
}

TEST(Workspace, GenericBlobCopy)
{
    Workspace a, b;
    a.createTensor("t") = Tensor::fromVector({5});
    b.setBlob("t", a.blob("t"));
    EXPECT_FLOAT_EQ(b.tensorBlob("t").at(0), 5.0f);
}

TEST(Workspace, TableRegistry)
{
    Workspace ws;
    auto table = std::make_shared<VirtualEmbeddingTable>(100, 4, 1, 32);
    ws.addTable("tab", table);
    EXPECT_TRUE(ws.hasTable("tab"));
    EXPECT_EQ(ws.table("tab").dim(), 4);
}

TEST(Operators, FcReluSigmoidPipeline)
{
    Workspace ws;
    ws.createTensor("in") = Tensor::fromMatrix(1, 2, {1, -1});
    ws.createTensor("w") = Tensor::fromMatrix(1, 2, {2, 2});
    ws.createTensor("b") = Tensor::fromVector({0});
    ExecContext ctx{ws, nullptr};

    FullyConnectedOp fc("in", "w", "b", "h");
    fc.run(ctx);
    EXPECT_FLOAT_EQ(ws.tensorBlob("h").at(0), 0.0f);

    ws.tensorBlob("h").at(0) = -3.0f;
    ReluOp relu("h");
    relu.run(ctx);
    EXPECT_FLOAT_EQ(ws.tensorBlob("h").at(0), 0.0f);

    SigmoidOp sig("h");
    sig.run(ctx);
    EXPECT_FLOAT_EQ(ws.tensorBlob("h").at(0), 0.5f);
}

TEST(Operators, SlsOpPoolsTable)
{
    Workspace ws;
    auto table = std::make_shared<VirtualEmbeddingTable>(1000, 4, 9, 64);
    ws.addTable("tab", table);
    auto &ids = ws.createIndexList("ids");
    ids.indices = {5, 6};
    ids.lengths = {2};
    ExecContext ctx{ws, nullptr};
    SparseLengthsSumOp sls("tab", "ids", "emb");
    sls.run(ctx);
    EXPECT_EQ(ws.tensorBlob("emb").rows(), 1);
    EXPECT_EQ(ws.tensorBlob("emb").cols(), 4);
    EXPECT_EQ(sls.tableName(), "tab");
    EXPECT_EQ(sls.opClass(), OpClass::Sparse);
}

TEST(Operators, SplitIndicesPartitionsByModulus)
{
    Workspace ws;
    auto &ids = ws.createIndexList("ids");
    ids.indices = {0, 1, 2, 3, 4, 5, 6};
    ids.lengths = {4, 3};
    ExecContext ctx{ws, nullptr};
    SplitIndicesOp split("ids", {"p0", "p1", "p2"});
    split.run(ctx);

    std::set<std::int64_t> seen;
    std::int64_t total = 0;
    for (int w = 0; w < 3; ++w) {
        const auto &part =
            ws.indexListBlob("p" + std::to_string(w));
        EXPECT_EQ(part.lengths.size(), 2u); // segment structure preserved
        for (auto idx : part.indices) {
            EXPECT_EQ(idx % 3, w);
            seen.insert(idx);
        }
        total += part.totalLookups();
        // Per-segment lengths consistent with index counts.
        std::int64_t len_sum = 0;
        for (auto l : part.lengths)
            len_sum += l;
        EXPECT_EQ(len_sum, part.totalLookups());
    }
    EXPECT_EQ(total, 7);
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Operators, SumCombinesPartials)
{
    Workspace ws;
    ws.createTensor("a") = Tensor::fromVector({1, 2});
    ws.createTensor("b") = Tensor::fromVector({3, 4});
    ExecContext ctx{ws, nullptr};
    SumOp sum({"a", "b"}, "out");
    sum.run(ctx);
    EXPECT_FLOAT_EQ(ws.tensorBlob("out").at(1), 6.0f);
}

TEST(Operators, CloneProducesEqualBehaviour)
{
    Workspace ws;
    ws.createTensor("in") = Tensor::fromMatrix(1, 2, {1, 2});
    ws.createTensor("w") = Tensor::fromMatrix(1, 2, {1, 1});
    ws.createTensor("b") = Tensor::fromVector({0});
    ExecContext ctx{ws, nullptr};

    FullyConnectedOp fc("in", "w", "b", "out");
    auto copy = fc.clone();
    copy->run(ctx);
    EXPECT_FLOAT_EQ(ws.tensorBlob("out").at(0), 3.0f);
    EXPECT_EQ(copy->type(), "FC");
}

TEST(Net, CountsAndTables)
{
    NetDef net("n");
    net.emplace<ReluOp>("x");
    net.emplace<SparseLengthsSumOp>("tabA", "ids", "e1");
    net.emplace<SparseLengthsSumOp>("tabB", "ids2", "e2");
    EXPECT_EQ(net.size(), 3u);
    EXPECT_EQ(net.countClass(OpClass::Sparse), 2u);
    EXPECT_EQ(net.referencedTables(),
              (std::vector<std::string>{"tabA", "tabB"}));
}

TEST(Executor, RunsSequentiallyWithObserver)
{
    Workspace ws;
    ws.createTensor("x") = Tensor::fromVector({-1.0f});
    NetDef net("n");
    net.emplace<ReluOp>("x");
    net.emplace<SigmoidOp>("x");

    std::vector<std::string> types;
    Executor exec;
    exec.run(net, ws,
             [&](const Operator &op) { types.push_back(op.type()); });
    EXPECT_EQ(types, (std::vector<std::string>{"Relu", "Sigmoid"}));
    EXPECT_FLOAT_EQ(ws.tensorBlob("x").at(0), 0.5f);
}

TEST(CostModel, FcWorkScalesWithDims)
{
    Workspace ws;
    ws.createTensor("in") = Tensor(4, 8);
    ws.createTensor("w") = Tensor(16, 8);
    ws.createTensor("b") = Tensor(16);
    FullyConnectedOp fc("in", "w", "b", "out");
    const Work w = estimateWork(fc, ws);
    EXPECT_DOUBLE_EQ(w.flops, 2.0 * 4 * 8 * 16);
}

TEST(CostModel, SlsWorkCountsLookups)
{
    Workspace ws;
    ws.addTable("tab",
                std::make_shared<VirtualEmbeddingTable>(1000, 8, 1, 64));
    auto &ids = ws.createIndexList("ids");
    ids.indices = {1, 2, 3, 4, 5};
    ids.lengths = {5};
    SparseLengthsSumOp sls("tab", "ids", "emb");
    const Work w = estimateWork(sls, ws);
    EXPECT_DOUBLE_EQ(w.lookups, 5.0);
    EXPECT_DOUBLE_EQ(w.bytes, 5.0 * 8 * 4);
}

TEST(CostModel, WorkToNsMonotone)
{
    CostParams params;
    Work small{100.0, 100.0, 1.0};
    Work big{10000.0, 10000.0, 100.0};
    EXPECT_LT(workToNs(small, params), workToNs(big, params));
    EXPECT_GE(workToNs(Work{}, params),
              static_cast<dri::sim::Duration>(params.op_dispatch_ns));
}

TEST(CostModel, NetEstimateSkipsRpcOps)
{
    Workspace ws;
    ws.createTensor("x") = Tensor::fromVector({1.0f});
    NetDef with_rpc("a");
    with_rpc.emplace<ReluOp>("x");
    with_rpc.emplace<RpcRequestOp>(0, "net", "h",
                                   std::vector<std::string>{"x"},
                                   std::vector<std::string>{"y"});
    NetDef without("b");
    without.emplace<ReluOp>("x");
    CostParams params;
    EXPECT_EQ(estimateNetNs(with_rpc, ws, params),
              estimateNetNs(without, ws, params));
}

TEST(OpClassNames, AllDistinct)
{
    std::set<std::string> names;
    for (auto c : {OpClass::Dense, OpClass::Sparse, OpClass::Activations,
                   OpClass::FeatureTransform, OpClass::MemoryTransform,
                   OpClass::ScaleClip, OpClass::Hash, OpClass::Fill,
                   OpClass::Rpc})
        names.insert(opClassName(c));
    EXPECT_EQ(names.size(), 9u);
}

} // namespace
